(* REF fixtures: an escaping ref cell vs an eliminate_ref'd scan loop. *)

let escaping () =
  let r = ref 0 in
  r

let eliminated n =
  let i = ref 0 in
  let s = ref 0 in
  while !i < n do
    s := !s + !i;
    incr i
  done;
  !s

let buffer n = Bytes.create n
