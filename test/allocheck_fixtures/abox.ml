(* BOX fixtures: bare-float returns and freshly computed float args. *)

let acc = [| 0.0 |]

let calc x = x *. 2.0

let store x = acc.(0) <- x

let ret_box x = calc x

let fresh_arg () = store (calc 1.0)

let passthrough x = store x
