(* Transitive-reach, assume-boundary and call-table fixtures. *)

let helper n = Array.make n 0

let trusted n = helper n

let fmt_path n = Printf.sprintf "drop %d" n

let boxed x = Int64.add x 1L

let unboxed x y = Int64.compare x y
