(* Block-construction fixtures: tuples, records, variants, arrays. *)

type r = { a : int; b : int }

let pair x y = (x, y)

let mk x = { a = x; b = 0 }

let update r = { r with b = 1 }

let some x = Some x

let cons x xs = x :: xs

let lit x = [| x; x |]

let empty_arr () = ([||] : int array)

let none () = None
