(* Escape fixtures: module-level publication, cross-cell fields, DLS. *)

type cell = { mutable ob_ready : bool; mutable priv : int }

type box = { mutable cells : int array }

let shared : (int, int) Hashtbl.t = Hashtbl.create 8

let slots = [| 0 |]

let gbox = { cells = [| 0 |] }

let dkey = Domain.DLS.new_key (fun () -> 0)

let publish k v = Hashtbl.replace shared k v

let bump () = slots.(0) <- slots.(0) + 1

let through () = gbox.cells.(0) <- 1

let mark c = c.ob_ready <- true

let local_ok c = c.priv <- 1

let fresh_ok () =
  let t = Hashtbl.create 4 in
  Hashtbl.replace t 1 2;
  t

let outbox c = c.ob_ready <- true

let noted c =
  (* alloc: escape-ok — coordinator-side writer fixture *)
  c.ob_ready <- true

let dls () = Domain.DLS.set dkey 1
