(* Suppression fixtures: claimed cold comments, and a stale one. *)

let cold_path x =
  (* alloc: cold — one-time registration fixture *)
  Some x

let trailing x = Some x (* alloc: cold — same-line fixture *)

let stale () =
  (* alloc: cold — suppresses nothing *)
  ()
