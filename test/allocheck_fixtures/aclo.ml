(* CLO fixtures: capture vs static closures, partial application. *)

let base = 10

let capture n =
  let f = fun x -> x + n in
  f 1

let static_fn () =
  let g = fun x -> x + 1 in
  g base

let add3 a b c = a + b + c

let partial () = add3 1 2
