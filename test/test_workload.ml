(* Tests for the workload generators themselves, plus resource-scaling and
   fault-injection scenarios built on them. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel
open Lrp_workload

(* --- generators ---------------------------------------------------------- *)

let test_blast_source_rate () =
  let cfg = Kernel.default_config Kernel.Ni_lrp in
  let w, client, server = World.pair ~cfg () in
  ignore (Blast.start_sink server ~port:9000 ());
  let src =
    Blast.start_source (World.engine w) (Kernel.nic client)
      ~src:(Kernel.ip_address client)
      ~dst:(Kernel.ip_address server, 9000)
      ~rate:5_000. ~size:14 ~until:(Time.sec 1.) ()
  in
  World.run w ~until:(Time.sec 1.);
  Alcotest.(check bool)
    (Printf.sprintf "source held its rate (%d sent)" src.Blast.sent)
    true
    (src.Blast.sent >= 4_990 && src.Blast.sent <= 5_010)

let test_synflood_unique_tuples () =
  (* Every SYN must look like a new connection: distinct (src, port)
     pairs across a large window. *)
  let eng = Engine.create () in
  let fab = Fabric.create eng () in
  let a = Fabric.make_nic fab ~name:"a" ~ip:1 ~ifq_limit:10_000 () in
  let b = Fabric.make_nic fab ~name:"b" ~ip:2 () in
  let seen = Hashtbl.create 512 in
  let dups = ref 0 in
  Nic.set_rx_handler b (fun pkt ->
      match pkt.Packet.body with
      | Packet.Tcp (h, _) ->
          let key = (Packet.src pkt, h.Packet.tsrc_port) in
          if Hashtbl.mem seen key then incr dups else Hashtbl.replace seen key ()
      | _ -> ());
  ignore
    (Synflood.start eng a ~dst:(2, 99) ~rate:10_000. ~until:(Time.ms 200.) ());
  Engine.run eng ~until:(Time.ms 300.);
  Alcotest.(check int) "no duplicate flood tuples in 2000 SYNs" 0 !dups;
  Alcotest.(check bool) "flood actually ran" true (Hashtbl.length seen > 1_500)

let test_http_server_serves () =
  let cfg = Kernel.default_config Kernel.Soft_lrp in
  let w, client, server = World.pair ~cfg () in
  let srv = Http.start_server server ~port:80 () in
  let cli = Http.start_clients client ~dst:(Kernel.ip_address server, 80) ~n:2 () in
  World.run w ~until:(Time.sec 2.);
  Alcotest.(check bool)
    (Printf.sprintf "served %d transfers" srv.Http.served)
    true
    (srv.Http.served > 20);
  Alcotest.(check int) "client and server agree" srv.Http.served
    cli.Http.completed;
  Alcotest.(check int) "no failures at idle" 0 cli.Http.failed

let test_udp_window_tool () =
  let cfg = Kernel.default_config Kernel.Bsd in
  let w, client, server = World.pair ~cfg () in
  let r =
    Udp_window.run w ~sender:client ~receiver:server ~port:5002 ~size:8192
      ~window:8 ~total:200 ~until:(Time.sec 30.) ()
  in
  Alcotest.(check int) "all datagrams delivered (window paces the sender)"
    200 r.Udp_window.datagrams;
  Alcotest.(check bool)
    (Printf.sprintf "throughput plausible (%.1f Mbit/s)" (Udp_window.mbps r))
    true
    (Udp_window.mbps r > 30. && Udp_window.mbps r < 150.)

(* --- NI channel scaling (paper section 4.2 discussion) ------------------- *)

let channel_count kern =
  List.length (Kernel.channels kern)

let test_ni_lrp_channel_scaling () =
  (* "NI-LRP ... deallocat[es] an NI channel as soon as the associated TCP
     connection enters the TIME_WAIT state", so channel slots stay bounded
     under connection churn even while TIME_WAIT lingers. *)
  let run arch =
    let cfg =
      { (Kernel.default_config arch) with Kernel.time_wait = Time.sec 30. }
    in
    let w, client, server = World.pair ~cfg () in
    ignore
      (Cpu.spawn (Kernel.cpu server) ~name:"srv" (fun self ->
           let lsock = Api.socket_stream server in
           Api.tcp_listen server ~self lsock ~port:80 ~backlog:8;
           let rec loop () =
             let conn = Api.tcp_accept server ~self lsock in
             (match Api.tcp_recv server ~self conn ~max:4096 with
              | `Data _ -> ignore (Api.tcp_send server ~self conn (Payload.synthetic 100))
              | `Eof -> ());
             Api.close server ~self conn;
             loop ()
           in
           try loop () with Api.Socket_closed -> ()));
    ignore
      (Cpu.spawn (Kernel.cpu client) ~name:"cli" (fun self ->
           for _ = 1 to 20 do
             let sock = Api.socket_stream client in
             (match
                Api.tcp_connect client ~self sock
                  ~remote:(Kernel.ip_address server, 80)
              with
              | `Ok ->
                  ignore (Api.tcp_send client ~self sock (Payload.synthetic 10));
                  (match Api.tcp_recv client ~self sock ~max:4096 with
                   | `Data _ | `Eof -> ());
                  Api.close client ~self sock
              | `Refused -> ())
           done));
    World.run w ~until:(Time.sec 20.);
    channel_count server
  in
  let ni = run Kernel.Ni_lrp in
  (* 20 sequential connections, all in TIME_WAIT (30s) at measurement time.
     NI-LRP must have deallocated their channels already. *)
  Alcotest.(check bool)
    (Printf.sprintf "NI-LRP channel count stays bounded (%d)" ni)
    true
    (ni < 10)

(* --- fault injection: fragment loss --------------------------------------- *)

let test_fragment_loss_times_out_cleanly () =
  (* Lose ~a third of all frames while blasting fragmented datagrams:
     incomplete reassemblies must be pruned (no unbounded growth) and
     intact datagrams still flow. *)
  let cfg = Kernel.default_config Kernel.Soft_lrp in
  let w, client, server = World.pair ~cfg () in
  Fabric.set_loss_rate (World.fabric w) 0.3;
  let got = ref 0 in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
         let sock = Api.socket_dgram server in
         Api.bind server sock ~owner:(Some self) ~port:5000;
         let rec loop () =
           let _dg = Api.recvfrom server ~self sock in
           incr got;
           loop ()
         in
         try loop () with Api.Socket_closed -> ()));
  ignore
    (Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
         let sock = Api.socket_dgram client in
         ignore (Api.bind_ephemeral client sock ~owner:(Some self));
         for _ = 1 to 100 do
           Api.sendto client ~self sock
             ~dst:(Kernel.ip_address server, 5000)
             (Payload.synthetic 20_000);
           Proc.sleep_for (Time.ms 2.)
         done));
  (* Run long enough for the 30 s reassembly timeout to prune stragglers. *)
  World.run w ~until:(Time.sec 40.);
  Alcotest.(check bool)
    (Printf.sprintf "some datagrams survived (%d/100)" !got)
    true
    (!got > 10 && !got < 95);
  Alcotest.(check int) "no reassembly state leaked" 0
    (Lrp_proto.Ip.Reasm.pending_count server.Kernel.reasm);
  Alcotest.(check bool) "incomplete datagrams were pruned" true
    (Lrp_proto.Ip.Reasm.timed_out server.Kernel.reasm > 0)

let suite =
  [ Alcotest.test_case "blast source holds its rate" `Quick test_blast_source_rate;
    Alcotest.test_case "SYN flood tuples are unique" `Quick
      test_synflood_unique_tuples;
    Alcotest.test_case "HTTP server + clients" `Quick test_http_server_serves;
    Alcotest.test_case "sliding-window UDP tool" `Quick test_udp_window_tool;
    Alcotest.test_case "NI-LRP channels scale under connection churn" `Slow
      test_ni_lrp_channel_scaling;
    Alcotest.test_case "fragment loss prunes cleanly" `Slow
      test_fragment_loss_times_out_cleanly ]
