(* End-to-end UDP tests across all four architectures: delivery, latency,
   blast behaviour, early discard. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel
open Lrp_workload

let archs =
  [ Kernel.Bsd; Kernel.Soft_lrp; Kernel.Ni_lrp; Kernel.Early_demux ]

let for_all_archs f () =
  List.iter (fun arch -> f arch (Kernel.default_config arch)) archs

let test_udp_delivery arch cfg =
  let w, client, server = World.pair ~cfg () in
  let received = ref [] in
  let _server_proc =
    Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
        let sock = Api.socket_dgram server in
        Api.bind server sock ~owner:(Some self) ~port:5000;
        for _ = 1 to 3 do
          let dg = Api.recvfrom server ~self sock in
          received := Payload.length dg.Api.dg_payload :: !received
        done)
  in
  let _client_proc =
    Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
        let sock = Api.socket_dgram client in
        ignore (Api.bind_ephemeral client sock ~owner:(Some self));
        List.iter
          (fun n ->
            Api.sendto client ~self sock
              ~dst:(Kernel.ip_address server, 5000)
              (Payload.synthetic n);
            Proc.sleep_for (Time.ms 1.))
          [ 10; 20; 30 ])
  in
  World.run w ~until:(Time.sec 1.);
  Alcotest.(check (list int))
    (Printf.sprintf "%s: three datagrams in order" (Kernel.arch_name arch))
    [ 10; 20; 30 ] (List.rev !received)

let test_udp_pingpong arch cfg =
  let w, client, server = World.pair ~cfg () in
  ignore (Pingpong.start_server server ~port:7);
  let cl =
    Pingpong.start_client client ~dst:(Kernel.ip_address server, 7) ~rounds:50 ()
  in
  World.run w ~until:(Time.sec 2.);
  Alcotest.(check int)
    (Printf.sprintf "%s: all rounds completed" (Kernel.arch_name arch))
    50 cl.Pingpong.rounds_done;
  let rtt = Lrp_stats.Stats.Samples.median cl.Pingpong.rtts in
  Alcotest.(check bool)
    (Printf.sprintf "%s: RTT plausible (%.0f us)" (Kernel.arch_name arch) rtt)
    true
    (rtt > 100. && rtt < 3_000.)

let test_blast_delivers_at_low_rate arch cfg =
  let w, client, server = World.pair ~cfg () in
  let sink = Blast.start_sink server ~port:9000 () in
  let src =
    Blast.start_source (World.engine w) (Kernel.nic client)
      ~src:(Kernel.ip_address client)
      ~dst:(Kernel.ip_address server, 9000)
      ~rate:1_000. ~size:14 ~until:(Time.sec 1.) ()
  in
  World.run w ~until:(Time.sec 1.2);
  Alcotest.(check bool)
    (Printf.sprintf "%s: low-rate blast mostly delivered (%d/%d)"
       (Kernel.arch_name arch) sink.Blast.received src.Blast.sent)
    true
    (sink.Blast.received > src.Blast.sent * 95 / 100)

let test_early_discard_lrp () =
  (* Under LRP, an overloaded socket sheds load at its NI channel. *)
  let cfg = Kernel.default_config Kernel.Ni_lrp in
  let w, client, server = World.pair ~cfg () in
  (* A sink that consumes very slowly. *)
  let sock = Api.socket_dgram server in
  let consumed = ref 0 in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"slow-sink" (fun self ->
         Api.bind server sock ~owner:(Some self) ~port:9000;
         let rec loop () =
           let _dg = Api.recvfrom server ~self sock in
           incr consumed;
           Proc.sleep_for (Time.ms 10.);
           loop ()
         in
         loop ()));
  ignore
    (Blast.start_source (World.engine w) (Kernel.nic client)
       ~src:(Kernel.ip_address client)
       ~dst:(Kernel.ip_address server, 9000)
       ~rate:5_000. ~size:14 ~until:(Time.sec 1.) ());
  World.run w ~until:(Time.sec 1.);
  let discards = Kernel.early_discards server in
  Alcotest.(check bool)
    (Printf.sprintf "NI-LRP: overload shed at the channel (%d discards)" discards)
    true
    (discards > 3_000);
  (* And crucially: at zero host CPU cost. *)
  Alcotest.(check bool) "NI-LRP: no interrupt CPU burned on discards" true
    (Cpu.time_hard (Kernel.cpu server) < Time.ms 50.)

let test_bsd_ipq_drops_under_flood () =
  (* BSD drops at the shared IP queue once softints cannot keep up. *)
  let cfg = Kernel.default_config Kernel.Bsd in
  let w, client, server = World.pair ~cfg () in
  ignore (Blast.start_sink server ~port:9000 ());
  ignore
    (Blast.start_source (World.engine w) (Kernel.nic client)
       ~src:(Kernel.ip_address client)
       ~dst:(Kernel.ip_address server, 9000)
       ~rate:25_000. ~size:14 ~until:(Time.sec 1.) ());
  World.run w ~until:(Time.sec 1.);
  let st = Kernel.stats server in
  Alcotest.(check bool)
    (Printf.sprintf "BSD: IP-queue drops under flood (%d)" st.Kernel.ipq_drops)
    true
    (st.Kernel.ipq_drops > 0)

let test_traffic_separation_lrp () =
  (* A flood aimed at one socket must not cause loss on another (LRP);
     under BSD the shared IP queue couples them. *)
  let run arch =
    let cfg = Kernel.default_config arch in
    let w = World.make () in
    let client = World.add_host w ~name:"client" cfg in
    let blaster = World.add_host w ~name:"blaster" cfg in
    let server = World.add_host w ~name:"server" cfg in
    ignore (Pingpong.start_server server ~port:7);
    ignore (Blast.start_sink server ~port:9000 ());
    ignore
      (Blast.start_source (World.engine w) (Kernel.nic blaster)
         ~src:(Kernel.ip_address blaster)
         ~dst:(Kernel.ip_address server, 9000)
         ~rate:18_000. ~size:14 ~until:(Time.sec 2.) ());
    let cl =
      Pingpong.start_client client ~dst:(Kernel.ip_address server, 7)
        ~rounds:100 ()
    in
    World.run w ~until:(Time.sec 2.);
    cl.Pingpong.rounds_done
  in
  let lrp_rounds = run Kernel.Ni_lrp in
  Alcotest.(check int) "NI-LRP: ping-pong survives a flood to another socket"
    100 lrp_rounds

let suite =
  [ Alcotest.test_case "udp delivery (all archs)" `Quick
      (for_all_archs test_udp_delivery);
    Alcotest.test_case "udp ping-pong (all archs)" `Quick
      (for_all_archs test_udp_pingpong);
    Alcotest.test_case "low-rate blast delivered (all archs)" `Slow
      (for_all_archs test_blast_delivers_at_low_rate);
    Alcotest.test_case "LRP early discard sheds load at the NI" `Slow
      test_early_discard_lrp;
    Alcotest.test_case "BSD drops at the shared IP queue" `Slow
      test_bsd_ipq_drops_under_flood;
    Alcotest.test_case "LRP traffic separation" `Slow
      test_traffic_separation_lrp ]
