(* Unit tests for the TCP state machine in isolation, using a loop-back
   harness: two connections wired through in-memory queues with an explicit
   virtual clock, no CPU model.  This pins down protocol behaviour
   independent of the kernel architectures. *)

open Lrp_net
open Lrp_proto

(* ------------------------------------------------------------------ *)
(* Harness                                                              *)
(* ------------------------------------------------------------------ *)

type harness = {
  mutable now : float;
  mutable wire_ab : (float * Packet.t) list;  (* in-flight a->b, (arrival, pkt) *)
  mutable wire_ba : (float * Packet.t) list;
  mutable timers : (float * Tcp.timer * int) list;
      (* (deadline, timer, generation at arm time); a stop or re-arm bumps
         the timer's generation, so stale entries fire as no-ops *)
  latency : float;
  mutable drop_next : int;  (* drop the next n frames (loss injection) *)
  mutable events : string list;
}

let mk_harness ?(latency = 100.) () =
  { now = 0.; wire_ab = []; wire_ba = []; timers = []; latency;
    drop_next = 0; events = [] }

let log h fmt = Printf.ksprintf (fun s -> h.events <- s :: h.events) fmt

let mk_env h ~dir =
  let emit pkt =
    if h.drop_next > 0 then h.drop_next <- h.drop_next - 1
    else begin
      let entry = (h.now +. h.latency, pkt) in
      match dir with
      | `Ab -> h.wire_ab <- h.wire_ab @ [ entry ]
      | `Ba -> h.wire_ba <- h.wire_ba @ [ entry ]
    end
  in
  { Tcp.now = (fun () -> h.now);
    emit;
    start_timer =
      (fun tm delay ->
        h.timers <- (h.now +. delay, tm, Tcp.timer_gen tm) :: h.timers);
    stop_timer = (fun _ -> () (* generation check drops stale entries *));
    on_readable = (fun c -> log h "readable:%d" c.Tcp.id);
    on_writable = (fun _ -> ());
    on_established = (fun c -> log h "established:%d" c.Tcp.id);
    on_accept_ready = (fun _ c -> log h "accept:%d" c.Tcp.id);
    on_syn_received = (fun _ _ -> ());
    on_connect_failed = (fun c -> log h "connfail:%d" c.Tcp.id);
    on_reset = (fun c -> log h "reset:%d" c.Tcp.id);
    on_time_wait = (fun _ -> ());
    on_closed = (fun c -> log h "closed:%d" c.Tcp.id);
    mss = 1460;
    time_wait_duration = 1_000_000.;
    initial_rto = 500_000.;
    max_syn_retries = 3 }

(* Advance virtual time, delivering wire packets and firing timers in
   order.  [route] maps an inbound packet to the connection that should
   receive it. *)
let run h ~until ~route_a ~route_b =
  let rec step () =
    (* earliest pending event *)
    let next_wire l = List.fold_left (fun acc (t, _) -> min acc t) infinity l in
    let next_timer =
      List.fold_left (fun acc (t, tm, gen) ->
          if Tcp.timer_armed tm && Tcp.timer_gen tm = gen then min acc t
          else acc)
        infinity h.timers
    in
    let t = min (min (next_wire h.wire_ab) (next_wire h.wire_ba)) next_timer in
    if t <= until then begin
      h.now <- t;
      (* deliver due frames a->b *)
      let due, rest = List.partition (fun (at, _) -> at <= t) h.wire_ab in
      h.wire_ab <- rest;
      List.iter (fun (_, pkt) -> match route_b pkt with
          | Some c -> Tcp.input c pkt
          | None -> ()) due;
      let due, rest = List.partition (fun (at, _) -> at <= t) h.wire_ba in
      h.wire_ba <- rest;
      List.iter (fun (_, pkt) -> match route_a pkt with
          | Some c -> Tcp.input c pkt
          | None -> ()) due;
      (* fire due timers (stale entries are dropped by the gen check) *)
      let due, rest = List.partition (fun (at, _, _) -> at <= t) h.timers in
      h.timers <- rest;
      List.iter (fun (_, tm, gen) -> Tcp.timer_fired tm ~gen) due;
      step ()
    end
    else h.now <- until
  in
  step ()

(* Simpler: wire routing via the env's on_syn_received to capture the
   child. *)
let make_pair ?latency ?(backlog = 4) () =
  let h = mk_harness ?latency () in
  let env_a = mk_env h ~dir:`Ab in
  let env_b = mk_env h ~dir:`Ba in
  let child = ref None in
  let env_b = { env_b with Tcp.on_syn_received = (fun _ c -> child := Some c) } in
  let listener = Tcp.create_listener env_b ~local_ip:2 ~local_port:80 ~backlog () in
  let client = Tcp.create_active env_a ~local_ip:1 ~local_port:5000 ~remote:(2, 80) () in
  let route_a _ = Some client in
  let route_b _ = match !child with Some c -> Some c | None -> Some listener in
  (h, client, listener, child, route_a, route_b)

(* ------------------------------------------------------------------ *)
(* Tests                                                                *)
(* ------------------------------------------------------------------ *)

let test_handshake () =
  let h, client, listener, child, route_a, route_b = make_pair () in
  run h ~until:10_000. ~route_a ~route_b;
  Alcotest.(check string) "client established" "ESTABLISHED"
    (Tcp.state_name (Tcp.state client));
  (match !child with
   | Some c ->
       Alcotest.(check string) "server established" "ESTABLISHED"
         (Tcp.state_name (Tcp.state c))
   | None -> Alcotest.fail "no child connection");
  Alcotest.(check bool) "accept queue has the child" true
    (Tcp.accept_ready listener)

let test_data_transfer () =
  let h, client, _listener, child, route_a, route_b = make_pair () in
  run h ~until:10_000. ~route_a ~route_b;
  let server = Option.get !child in
  (match Tcp.send client (Payload.of_string "hello world") with
   | `Sent 11 -> ()
   | _ -> Alcotest.fail "send failed");
  run h ~until:20_000. ~route_a ~route_b;
  (match Tcp.recv server ~max:100 with
   | `Data p ->
       Alcotest.(check string) "payload" "hello world"
         (Bytes.to_string (Payload.to_bytes p))
   | `Eof | `Wait -> Alcotest.fail "expected data")

let test_mss_segmentation () =
  let h, client, _listener, child, route_a, route_b = make_pair () in
  run h ~until:10_000. ~route_a ~route_b;
  let server = Option.get !child in
  ignore (Tcp.send client (Payload.synthetic 5_000));
  run h ~until:100_000. ~route_a ~route_b;
  Alcotest.(check int) "all bytes arrive" 5_000 server.Tcp.rcvq_bytes;
  Alcotest.(check bool) "multiple segments used" true (client.Tcp.segs_sent >= 4)

let test_retransmit_on_loss () =
  let h, client, _listener, child, route_a, route_b = make_pair () in
  run h ~until:10_000. ~route_a ~route_b;
  let server = Option.get !child in
  h.drop_next <- 1 (* lose the next data segment *);
  ignore (Tcp.send client (Payload.of_string "precious"));
  run h ~until:3_000_000. ~route_a ~route_b;
  Alcotest.(check int) "data recovered via retransmit" 8 server.Tcp.rcvq_bytes;
  Alcotest.(check bool) "a retransmission happened" true (client.Tcp.retransmits >= 1)

let test_out_of_order_delivery () =
  (* Two segments; the first is lost and retransmitted, so the second
     arrives out of order and must be buffered. *)
  let h, client, _listener, child, route_a, route_b = make_pair () in
  run h ~until:10_000. ~route_a ~route_b;
  let server = Option.get !child in
  (* Send two segments back to back, losing only the first. *)
  h.drop_next <- 1;
  ignore (Tcp.send client (Payload.synthetic 1_460));
  ignore (Tcp.send client (Payload.synthetic 100));
  run h ~until:5_000_000. ~route_a ~route_b;
  Alcotest.(check int) "both segments eventually in order" 1_560
    server.Tcp.rcvq_bytes

let test_flow_control_window () =
  (* A receiver with a small buffer that never reads: the sender must stop
     at the advertised window. *)
  let h = mk_harness () in
  let env_a = mk_env h ~dir:`Ab in
  let env_b = mk_env h ~dir:`Ba in
  let child = ref None in
  let env_b = { env_b with Tcp.on_syn_received = (fun _ c -> child := Some c) } in
  let _listener =
    Tcp.create_listener env_b ~local_ip:2 ~local_port:80 ~rcv_buf_limit:4_000
      ~backlog:4 ()
  in
  let client =
    Tcp.create_active env_a ~local_ip:1 ~local_port:5000 ~remote:(2, 80)
      ~sndq_limit:100_000 ()
  in
  let route_a _ = Some client in
  let route_b _ = match !child with Some c -> Some c | None -> Some _listener in
  run h ~until:10_000. ~route_a ~route_b;
  ignore (Tcp.send client (Payload.synthetic 50_000));
  run h ~until:1_000_000. ~route_a ~route_b;
  let server = Option.get !child in
  Alcotest.(check bool)
    (Printf.sprintf "receiver holds at most its buffer (%d)" server.Tcp.rcvq_bytes)
    true
    (server.Tcp.rcvq_bytes <= 4_000);
  Alcotest.(check bool) "sender stopped at the window" true
    (client.Tcp.snd_nxt - client.Tcp.snd_una <= 4_096);
  (* Now the receiver drains; the window reopens; more data flows. *)
  (match Tcp.recv server ~max:4_000 with
   | `Data _ -> ()
   | `Eof | `Wait -> Alcotest.fail "expected data");
  run h ~until:10_000_000. ~route_a ~route_b;
  Alcotest.(check bool) "transfer progressed after window update" true
    (server.Tcp.bytes_rcvd > 4_000)

let test_slow_start_growth () =
  let h, client, _listener, child, route_a, route_b = make_pair () in
  run h ~until:10_000. ~route_a ~route_b;
  ignore !child;
  let cwnd0 = client.Tcp.cwnd in
  ignore (Tcp.send client (Payload.synthetic 8_000));
  run h ~until:1_000_000. ~route_a ~route_b;
  Alcotest.(check bool) "cwnd grew during slow start" true (client.Tcp.cwnd > cwnd0)

let test_rto_backoff_collapses_cwnd () =
  let h, client, _listener, child, route_a, route_b = make_pair () in
  run h ~until:10_000. ~route_a ~route_b;
  ignore !child;
  ignore (Tcp.send client (Payload.synthetic 4_000));
  run h ~until:200_000. ~route_a ~route_b;
  let cwnd_grown = client.Tcp.cwnd in
  (* Now lose everything for a while: the retransmission timeout must
     collapse cwnd to one MSS. *)
  h.drop_next <- 100;
  ignore (Tcp.send client (Payload.synthetic 4_000));
  run h ~until:2_000_000. ~route_a ~route_b;
  Alcotest.(check bool) "cwnd collapsed after RTO" true
    (client.Tcp.cwnd < cwnd_grown);
  Alcotest.(check (float 0.)) "cwnd = 1 MSS" 1460. client.Tcp.cwnd

let test_graceful_close () =
  let h, client, _listener, child, route_a, route_b = make_pair () in
  run h ~until:10_000. ~route_a ~route_b;
  let server = Option.get !child in
  Tcp.close client;
  run h ~until:50_000. ~route_a ~route_b;
  Alcotest.(check string) "server side saw FIN -> CLOSE_WAIT" "CLOSE_WAIT"
    (Tcp.state_name (Tcp.state server));
  (match Tcp.recv server ~max:10 with
   | `Eof -> ()
   | `Data _ | `Wait -> Alcotest.fail "expected EOF");
  Tcp.close server;
  run h ~until:500_000. ~route_a ~route_b;
  Alcotest.(check string) "client in TIME_WAIT" "TIME_WAIT"
    (Tcp.state_name (Tcp.state client));
  Alcotest.(check string) "server closed" "CLOSED"
    (Tcp.state_name (Tcp.state server));
  (* TIME_WAIT expires. *)
  run h ~until:5_000_000. ~route_a ~route_b;
  Alcotest.(check string) "client closed after 2MSL" "CLOSED"
    (Tcp.state_name (Tcp.state client))

let test_fin_with_pending_data () =
  (* close() with unsent data: the FIN must ride after all data. *)
  let h, client, _listener, child, route_a, route_b = make_pair () in
  run h ~until:10_000. ~route_a ~route_b;
  let server = Option.get !child in
  ignore (Tcp.send client (Payload.synthetic 10_000));
  Tcp.close client;
  run h ~until:5_000_000. ~route_a ~route_b;
  Alcotest.(check int) "all data arrived before FIN" 10_000 server.Tcp.bytes_rcvd;
  Alcotest.(check bool) "server saw the FIN" true server.Tcp.fin_received

let test_syn_backlog_drop () =
  let h = mk_harness () in
  let env_b = mk_env h ~dir:`Ba in
  let listener = Tcp.create_listener env_b ~local_ip:2 ~local_port:80 ~backlog:2 () in
  (* Three SYNs from distinct sources; the third must be dropped. *)
  for i = 1 to 3 do
    let syn =
      Packet.tcp ~src:(100 + i) ~dst:2 ~src_port:1000 ~dst_port:80 ~seq:0
        ~ack_no:0 ~flags:(Packet.flags ~syn:true ()) ~window:1000
        (Payload.synthetic 0)
    in
    Tcp.input listener syn
  done;
  Alcotest.(check int) "two embryonic" 2 listener.Tcp.syn_pending;
  Alcotest.(check int) "one dropped at backlog" 1 listener.Tcp.syn_drops_backlog

let test_syn_retry_gives_up () =
  (* Active open with every packet dropped: retries then fails. *)
  let h = mk_harness () in
  let env_a = mk_env h ~dir:`Ab in
  h.drop_next <- max_int;
  let client = Tcp.create_active env_a ~local_ip:1 ~local_port:5000 ~remote:(2, 80) () in
  let route _ = None in
  run h ~until:20_000_000. ~route_a:route ~route_b:route;
  Alcotest.(check string) "gave up -> CLOSED" "CLOSED" (Tcp.state_name (Tcp.state client));
  Alcotest.(check bool) "failure reported" true
    (List.mem (Printf.sprintf "connfail:%d" client.Tcp.id) h.events)

let test_rst_teardown () =
  let h, client, _listener, child, route_a, route_b = make_pair () in
  run h ~until:10_000. ~route_a ~route_b;
  let server = Option.get !child in
  Tcp.abort client;
  run h ~until:50_000. ~route_a ~route_b;
  Alcotest.(check string) "server reset to CLOSED" "CLOSED"
    (Tcp.state_name (Tcp.state server));
  Alcotest.(check bool) "reset event seen" true
    (List.mem (Printf.sprintf "reset:%d" server.Tcp.id) h.events)

let test_send_on_closed () =
  let h = mk_harness () in
  let env_a = mk_env h ~dir:`Ab in
  let client = Tcp.create_active env_a ~local_ip:1 ~local_port:5000 ~remote:(2, 80) () in
  Tcp.close client;
  match Tcp.send client (Payload.synthetic 10) with
  | `Closed -> ()
  | `Sent _ | `Full -> Alcotest.fail "send on closed connection must fail"

(* Integrity under random loss in the harness (complements the e2e test). *)
let prop_transfer_integrity_under_loss =
  QCheck.Test.make ~count:25 ~name:"tcp: stream intact under random early drops"
    QCheck.(int_range 0 5)
    (fun drops ->
      let h, client, _listener, child, route_a, route_b = make_pair () in
      run h ~until:10_000. ~route_a ~route_b;
      let server = Option.get !child in
      h.drop_next <- drops;
      ignore (Tcp.send client (Payload.synthetic 20_000));
      run h ~until:30_000_000. ~route_a ~route_b;
      server.Tcp.bytes_rcvd = 20_000)

let qsuite = [ QCheck_alcotest.to_alcotest prop_transfer_integrity_under_loss ]

let suite =
  [ Alcotest.test_case "three-way handshake" `Quick test_handshake;
    Alcotest.test_case "data transfer" `Quick test_data_transfer;
    Alcotest.test_case "MSS segmentation" `Quick test_mss_segmentation;
    Alcotest.test_case "retransmit on loss" `Quick test_retransmit_on_loss;
    Alcotest.test_case "out-of-order buffering" `Quick test_out_of_order_delivery;
    Alcotest.test_case "flow-control window" `Quick test_flow_control_window;
    Alcotest.test_case "slow-start growth" `Quick test_slow_start_growth;
    Alcotest.test_case "RTO collapses cwnd" `Quick test_rto_backoff_collapses_cwnd;
    Alcotest.test_case "graceful close / TIME_WAIT" `Quick test_graceful_close;
    Alcotest.test_case "FIN after pending data" `Quick test_fin_with_pending_data;
    Alcotest.test_case "SYN backlog drop" `Quick test_syn_backlog_drop;
    Alcotest.test_case "SYN retry gives up" `Quick test_syn_retry_gives_up;
    Alcotest.test_case "RST teardown" `Quick test_rst_teardown;
    Alcotest.test_case "send on closed connection" `Quick test_send_on_closed ]
  @ qsuite

(* --- more edge cases -------------------------------------------------- *)

let test_simultaneous_close () =
  let h, client, _listener, child, route_a, route_b = make_pair () in
  run h ~until:10_000. ~route_a ~route_b;
  let server = Option.get !child in
  (* Both ends close at the same instant: FINs cross on the wire. *)
  Tcp.close client;
  Tcp.close server;
  run h ~until:30_000_000. ~route_a ~route_b;
  Alcotest.(check bool)
    (Printf.sprintf "both ends reach CLOSED/TIME_WAIT (client %s, server %s)"
       (Tcp.state_name (Tcp.state client))
       (Tcp.state_name (Tcp.state server)))
    true
    (List.mem (Tcp.state client) [ Tcp.Closed ]
     && List.mem (Tcp.state server) [ Tcp.Closed ])

let test_persist_probe_resolves_zero_window () =
  (* The receiver's window closes and the window-update ack is lost: the
     persist timer must eventually probe and re-learn the open window. *)
  let h = mk_harness () in
  let env_a = mk_env h ~dir:`Ab in
  let env_b = mk_env h ~dir:`Ba in
  let child = ref None in
  let env_b = { env_b with Tcp.on_syn_received = (fun _ c -> child := Some c) } in
  let _listener =
    Tcp.create_listener env_b ~local_ip:2 ~local_port:80 ~rcv_buf_limit:2_000
      ~backlog:4 ()
  in
  let client =
    Tcp.create_active env_a ~local_ip:1 ~local_port:5000 ~remote:(2, 80)
      ~sndq_limit:100_000 ()
  in
  let route_a _ = Some client in
  let route_b _ = match !child with Some c -> Some c | None -> Some _listener in
  run h ~until:10_000. ~route_a ~route_b;
  let server = Option.get !child in
  ignore (Tcp.send client (Payload.synthetic 10_000));
  run h ~until:500_000. ~route_a ~route_b;
  (* Receiver buffer is now full; drain it but LOSE the window update. *)
  h.drop_next <- 1;
  (match Tcp.recv server ~max:2_000 with
   | `Data _ -> ()
   | `Eof | `Wait -> Alcotest.fail "expected buffered data");
  (* Only the persist probe can restart the transfer. *)
  run h ~until:60_000_000. ~route_a ~route_b;
  (match Tcp.recv server ~max:100_000 with
   | `Data _ | `Eof -> ()
   | `Wait -> ());
  run h ~until:120_000_000. ~route_a ~route_b;
  Alcotest.(check bool)
    (Printf.sprintf "transfer progressed past the stall (%d rcvd)"
       server.Tcp.bytes_rcvd)
    true
    (server.Tcp.bytes_rcvd > 2_000)

let test_listener_ignores_stray_ack () =
  let h = mk_harness () in
  let env_b = mk_env h ~dir:`Ba in
  let listener = Tcp.create_listener env_b ~local_ip:2 ~local_port:80 ~backlog:2 () in
  let stray =
    Packet.tcp ~src:50 ~dst:2 ~src_port:999 ~dst_port:80 ~seq:100 ~ack_no:200
      ~flags:(Packet.flags ~ack:true ()) ~window:1000 (Payload.synthetic 0)
  in
  Tcp.input listener stray;
  Alcotest.(check int) "no embryonic connection created" 0 listener.Tcp.syn_pending;
  Alcotest.(check string) "listener unchanged" "LISTEN"
    (Tcp.state_name (Tcp.state listener))

let suite =
  suite
  @ [ Alcotest.test_case "simultaneous close" `Quick test_simultaneous_close;
      Alcotest.test_case "persist probe resolves a lost window update" `Quick
        test_persist_probe_resolves_zero_window;
      Alcotest.test_case "listener ignores stray ACKs" `Quick
        test_listener_ignores_stray_ack ]
