(* Tests for the sharded multi-host simulation: Shardsim's epoch
   protocol (including the lookahead-boundary case), the spine-leaf
   topology's uplink conservation law, per-engine id streams, and — the
   tentpole contract — shard-count invariance of the cluster experiment's
   digest, asserted both on fixed parameters and over random topologies. *)

open Lrp_engine
open Lrp_net
open Lrp_kernel
open Lrp_workload
open Lrp_experiments

(* --- Shardsim unit behaviour ------------------------------------------- *)

let mk_cells n = Array.init n (fun i -> Engine.create ~seed:(100 + i) ())

let no_exchange () = 0

let test_shardsim_validation () =
  Alcotest.check_raises "zero cells"
    (Invalid_argument "Shardsim.create: no cells") (fun () ->
      ignore
        (Shardsim.create ~lookahead:1. ~exchange:no_exchange (mk_cells 0)));
  Alcotest.check_raises "zero lookahead"
    (Invalid_argument "Shardsim.create: lookahead must be positive and finite")
    (fun () ->
      ignore
        (Shardsim.create ~lookahead:0. ~exchange:no_exchange (mk_cells 2)));
  Alcotest.check_raises "infinite lookahead"
    (Invalid_argument "Shardsim.create: lookahead must be positive and finite")
    (fun () ->
      ignore
        (Shardsim.create ~lookahead:infinity ~exchange:no_exchange
           (mk_cells 2)))

let test_shardsim_clamping () =
  let shards_of n cells =
    Shardsim.shards
      (Shardsim.create ~shards:n ~lookahead:1. ~exchange:no_exchange
         (mk_cells cells))
  in
  Alcotest.(check int) "clamped down to cell count" 3 (shards_of 16 3);
  Alcotest.(check int) "clamped up to one" 1 (shards_of 0 3);
  Alcotest.(check int) "in range untouched" 2 (shards_of 2 4)

(* The boundary case of the conservative-lookahead argument: a cross-cell
   message sent at time [t] lands at exactly [t + lookahead] — the edge of
   the epoch's safe bound — and collides with a local event scheduled at
   the same instant.  The run must be byte-identical at shards 1 and 2,
   with the pre-existing local event firing before the barrier-injected
   arrival (engine FIFO order at equal keys). *)
let run_boundary shards =
  let lookahead = 100. in
  let cells = mk_cells 2 in
  let logs = Array.init 2 (fun _ -> Buffer.create 256) in
  (* Per-cell outboxes: cell [i]'s handlers write only slot [i]; the
     exchange closure (coordinator, at barriers) drains them all. *)
  let outboxes : (int * float * int) list array = Array.make 2 [] in
  let tgts =
    Array.init 2 (fun i ->
        Engine.target cells.(i) (fun hop ->
            Buffer.add_string logs.(i)
              (Printf.sprintf "cell%d hop%d @%.1f\n" i hop
                 (Engine.now cells.(i)));
            if hop < 3 then
              outboxes.(i) <-
                (1 - i, Engine.now cells.(i) +. lookahead, hop + 1)
                :: outboxes.(i)))
  in
  ignore
    (Engine.schedule cells.(0) ~at:0. (fun () ->
         Buffer.add_string logs.(0) "cell0 send @0.0\n";
         outboxes.(0) <- [ (1, lookahead, 1) ]));
  (* The collision: a local event at exactly the first arrival time. *)
  ignore
    (Engine.schedule cells.(1) ~at:lookahead (fun () ->
         Buffer.add_string logs.(1) "cell1 local @100.0\n"));
  let exchange () =
    let moved = ref 0 in
    for src = 0 to 1 do
      List.iter
        (fun (dst, at, hop) ->
          incr moved;
          ignore (Engine.schedule_to cells.(dst) ~at tgts.(dst) hop))
        (List.rev outboxes.(src));
      outboxes.(src) <- []
    done;
    !moved
  in
  let sim = Shardsim.create ~shards ~lookahead ~exchange cells in
  Shardsim.run sim ~until:450.;
  ( Buffer.contents logs.(0) ^ Buffer.contents logs.(1),
    Shardsim.epochs sim,
    Shardsim.messages sim,
    Shardsim.events_total sim )

let test_lookahead_boundary () =
  let log1, epochs1, msgs1, events1 = run_boundary 1 in
  let log2, epochs2, msgs2, events2 = run_boundary 2 in
  Alcotest.(check string) "logs identical at shards 1 and 2" log1 log2;
  Alcotest.(check int) "epochs identical" epochs1 epochs2;
  Alcotest.(check int) "messages identical" msgs1 msgs2;
  Alcotest.(check int) "events identical" events1 events2;
  Alcotest.(check int) "the full ping-pong crossed" 3 msgs1;
  Alcotest.(check string) "local event precedes the boundary arrival"
    "cell0 send @0.0\ncell0 hop2 @200.0\ncell1 local @100.0\n\
     cell1 hop1 @100.0\ncell1 hop3 @300.0\n"
    log1

(* --- per-engine id streams --------------------------------------------- *)

let test_idspace_per_engine () =
  let e1 = Engine.create ~seed:1 () in
  let e2 = Engine.create ~seed:2 () in
  Idspace.use (Engine.ids e1);
  let a = Idspace.next_pkt_ident () in
  Idspace.use (Engine.ids e2);
  let b = Idspace.next_pkt_ident () in
  Idspace.use (Engine.ids e1);
  let c = Idspace.next_pkt_ident () in
  Alcotest.(check int) "fresh stream starts at 1" 1 a;
  Alcotest.(check int) "second engine has its own stream" 1 b;
  Alcotest.(check int) "first stream resumes where it left off" 2 c

(* --- uplink conservation over a small topology ------------------------- *)

let test_uplink_conservation () =
  let cfg = Kernel.default_config Kernel.Soft_lrp in
  let topo = Topology.spine_leaf ~seed:7 ~racks:2 ~hosts_per_rack:2 ~cfg () in
  let until = Time.ms 20. in
  for r = 0 to 1 do
    Topology.on_cell topo r (fun (cell : Topology.cell) ->
        Array.iter
          (fun k -> ignore (Blast.start_sink k ~port:9000 ()))
          cell.Topology.kernels;
        let k = cell.Topology.kernels.(0) in
        ignore
          (Blast.start_source cell.Topology.engine (Kernel.nic k)
             ~src:(Kernel.ip_address k)
             ~dst:(Topology.host_ip ~rack:(1 - r) ~slot:0, 9000)
             ~rate:1_000. ~size:32 ~until ()))
  done;
  ignore (Topology.run ~shards:2 topo ~until);
  let sent, received, backlog =
    Array.fold_left
      (fun (s, r, b) (c : Topology.cell) ->
        let u = Fabric.uplink_stats c.Topology.fabric in
        ( s + u.Fabric.up_sent,
          r + u.Fabric.up_received,
          b + u.Fabric.up_backlog ))
      (0, 0, 0) (Topology.cells topo)
  in
  Alcotest.(check bool) "spine carried traffic" true (sent > 0);
  Alcotest.(check int) "conservation: sent = received + backlog" sent
    (received + backlog);
  Alcotest.(check int) "fully drained after the run" 0 backlog

(* --- the tentpole contract: shard-count invariance --------------------- *)

let quick_run ?(seed = 42) ?(racks = 3) ?(hosts_per_rack = 2) ~shards () =
  Cluster.run ~seed ~racks ~hosts_per_rack ~shards ~rate:1_500.
    ~duration:(Time.ms 25.) ()

let test_digest_parity () =
  let r1 = quick_run ~shards:1 () in
  Alcotest.(check bool) "traffic flowed" true (r1.Cluster.delivered > 0);
  Alcotest.(check bool) "spine exercised" true (r1.Cluster.cross_frames > 0);
  Alcotest.(check bool) "recorder dump non-empty" true
    (String.length r1.Cluster.dump > 0);
  List.iter
    (fun shards ->
      let r = quick_run ~shards () in
      let name what = Printf.sprintf "shards %d: %s" shards what in
      Alcotest.(check string) (name "dump") r1.Cluster.dump r.Cluster.dump;
      Alcotest.(check int64) (name "digest") r1.Cluster.digest r.Cluster.digest;
      Alcotest.(check int) (name "epochs") r1.Cluster.epochs r.Cluster.epochs;
      Alcotest.(check int) (name "events") r1.Cluster.events r.Cluster.events;
      Alcotest.(check string) (name "report") (Cluster.report r1)
        (Cluster.report r))
    [ 2; 3 ]

(* Random topology and workload parameters: the digest must not depend on
   the shard count, including shard counts above the rack count. *)
let prop_shard_invariance =
  QCheck.Test.make ~count:6 ~name:"cluster digest invariant in shard count"
    QCheck.(
      triple (int_range 0 1_000) (int_range 1 3) (int_range 1 3))
    (fun (seed, racks, hosts_per_rack) ->
      let digest shards =
        (Cluster.run ~seed ~racks ~hosts_per_rack ~shards ~rate:1_200.
           ~duration:(Time.ms 10.) ())
          .Cluster.digest
      in
      let d1 = digest 1 in
      Int64.equal d1 (digest 2) && Int64.equal d1 (digest 8))

let suite =
  [ Alcotest.test_case "Shardsim rejects bad arguments" `Quick
      test_shardsim_validation;
    Alcotest.test_case "Shardsim clamps the shard count" `Quick
      test_shardsim_clamping;
    Alcotest.test_case "lookahead-boundary arrival is deterministic" `Quick
      test_lookahead_boundary;
    Alcotest.test_case "id streams are per-engine" `Quick
      test_idspace_per_engine;
    Alcotest.test_case "uplink conserves frames across the spine" `Quick
      test_uplink_conservation;
    Alcotest.test_case "cluster digest identical at shards 1/2/3" `Slow
      test_digest_parity;
    QCheck_alcotest.to_alcotest prop_shard_invariance ]
