(* Kernel-level tests: syscall semantics, ICMP, fragmentation end-to-end,
   the UDP helper thread, mbuf accounting, and per-architecture drop
   bookkeeping. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel
open Lrp_workload

let archs = [ Kernel.Bsd; Kernel.Soft_lrp; Kernel.Ni_lrp; Kernel.Early_demux ]

let for_all_archs f () =
  List.iter (fun arch -> f arch (Kernel.default_config arch)) archs

(* --- ICMP ---------------------------------------------------------------- *)

let test_icmp_echo arch cfg =
  (* Ping the server: BSD answers in softint context; LRP's protocol-proxy
     daemon answers from the ICMP channel (section 3.5). *)
  let w, client, server = World.pair ~cfg () in
  let got_reply = ref false in
  Nic.set_rx_handler (Kernel.nic client) (fun pkt ->
      match pkt.Packet.body with
      | Packet.Icmp (Packet.Echo_reply, _) -> got_reply := true
      | _ -> ());
  ignore
    (Engine.schedule (World.engine w) ~at:100. (fun () ->
         ignore
           (Nic.transmit (Kernel.nic client)
              (Packet.icmp ~src:(Kernel.ip_address client)
                 ~dst:(Kernel.ip_address server) Packet.Echo_request
                 (Payload.synthetic 32)))));
  World.run w ~until:(Time.sec 1.);
  Alcotest.(check bool)
    (Printf.sprintf "%s: echo reply received" (Kernel.arch_name arch))
    true !got_reply

(* --- UDP fragmentation end-to-end ----------------------------------------- *)

let test_udp_fragmentation_e2e arch cfg =
  (* A 20 kB datagram over a 9180-byte MTU: 3 fragments, reassembled by
     the receiver (lazily, for LRP — exercising the special fragment
     channel). *)
  let w, client, server = World.pair ~cfg () in
  let got = ref None in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
         let sock = Api.socket_dgram server in
         Api.bind server sock ~owner:(Some self) ~port:5000;
         let dg = Api.recvfrom server ~self sock in
         got := Some (Payload.length dg.Api.dg_payload)));
  ignore
    (Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
         let sock = Api.socket_dgram client in
         ignore (Api.bind_ephemeral client sock ~owner:(Some self));
         Api.sendto client ~self sock
           ~dst:(Kernel.ip_address server, 5000)
           (Payload.synthetic 20_000)));
  World.run w ~until:(Time.sec 2.);
  Alcotest.(check (option int))
    (Printf.sprintf "%s: 20kB datagram reassembled" (Kernel.arch_name arch))
    (Some 20_000) !got

let test_fragments_in_both_channels () =
  (* Under LRP, the first fragment demuxes to the socket channel and later
     fragments to the special fragment channel; reassembly pulls them
     together. *)
  let cfg = Kernel.default_config Kernel.Ni_lrp in
  let w, client, server = World.pair ~cfg () in
  let got = ref 0 in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
         let sock = Api.socket_dgram server in
         Api.bind server sock ~owner:(Some self) ~port:5000;
         for _ = 1 to 3 do
           let dg = Api.recvfrom server ~self sock in
           got := !got + Payload.length dg.Api.dg_payload
         done));
  ignore
    (Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
         let sock = Api.socket_dgram client in
         ignore (Api.bind_ephemeral client sock ~owner:(Some self));
         for _ = 1 to 3 do
           Api.sendto client ~self sock
             ~dst:(Kernel.ip_address server, 5000)
             (Payload.synthetic 30_000);
           Proc.sleep_for (Time.ms 20.)
         done));
  World.run w ~until:(Time.sec 2.);
  Alcotest.(check int) "all three large datagrams arrived" 90_000 !got

(* --- helper thread --------------------------------------------------------- *)

let test_helper_preprocesses_when_idle () =
  (* Section 3.3: an otherwise idle CPU performs protocol processing via the
     minimal-priority thread, so a process that is waiting on something
     else (here: a disk-like sleep) still finds a ready datagram.  We
     inject while the receiver sleeps and the CPU idles, then check the
     datagram was deposited on the socket queue by the helper before the
     receiver asked. *)
  let cfg = Kernel.default_config Kernel.Ni_lrp in
  let w, client, server = World.pair ~cfg () in
  let sock = Api.socket_dgram server in
  let ready_before_recv = ref false in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"busy-rx" (fun self ->
         Api.bind server sock ~owner:(Some self) ~port:5000;
         (* Blocked on "I/O" for 50 ms while a packet arrives; the CPU is
            otherwise idle. *)
         Proc.sleep_for (Time.ms 50.);
         ready_before_recv := not (Queue.is_empty sock.Socket.udp_rcv);
         let _dg = Api.recvfrom server ~self sock in
         ()));
  ignore
    (Engine.schedule (World.engine w) ~at:(Time.ms 10.) (fun () ->
         ignore
           (Nic.transmit (Kernel.nic client)
              (Packet.udp ~src:(Kernel.ip_address client)
                 ~dst:(Kernel.ip_address server) ~src_port:9 ~dst_port:5000
                 (Payload.synthetic 14)))));
  World.run w ~until:(Time.sec 1.);
  Alcotest.(check bool) "helper had pre-processed the datagram" true
    !ready_before_recv

let test_helper_disabled () =
  (* With the helper off, the packet waits raw in the channel until the
     receive call processes it lazily. *)
  let cfg = { (Kernel.default_config Kernel.Ni_lrp) with Kernel.udp_helper = false } in
  let w, client, server = World.pair ~cfg () in
  let sock = Api.socket_dgram server in
  let chan_depth = ref (-1) in
  let got = ref false in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"busy-rx" (fun self ->
         Api.bind server sock ~owner:(Some self) ~port:5000;
         Proc.sleep_for (Time.ms 50.);
         (match sock.Socket.chan with
          | Some ch -> chan_depth := Lrp_core.Channel.length ch
          | None -> ());
         let _dg = Api.recvfrom server ~self sock in
         got := true));
  ignore
    (Engine.schedule (World.engine w) ~at:(Time.ms 10.) (fun () ->
         ignore
           (Nic.transmit (Kernel.nic client)
              (Packet.udp ~src:(Kernel.ip_address client)
                 ~dst:(Kernel.ip_address server) ~src_port:9 ~dst_port:5000
                 (Payload.synthetic 14)))));
  World.run w ~until:(Time.sec 1.);
  Alcotest.(check int) "raw packet waited in the channel" 1 !chan_depth;
  Alcotest.(check bool) "lazy processing delivered it" true !got

(* --- misc syscall semantics ------------------------------------------------ *)

let test_recvfrom_timeout () =
  let cfg = Kernel.default_config Kernel.Soft_lrp in
  let w, _client, server = World.pair ~cfg () in
  let result = ref (Some 0) in
  let woke_at = ref 0. in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
         let sock = Api.socket_dgram server in
         Api.bind server sock ~owner:(Some self) ~port:5000;
         (match Api.recvfrom_timeout server ~self sock ~timeout:(Time.ms 5.) with
          | Some dg -> result := Some (Payload.length dg.Api.dg_payload)
          | None -> result := None);
         woke_at := Engine.now (World.engine w)));
  World.run w ~until:(Time.sec 1.);
  Alcotest.(check (option int)) "timed out with None" None !result;
  Alcotest.(check bool)
    (Printf.sprintf "woke near the deadline (%.0f us)" !woke_at)
    true
    (!woke_at >= Time.ms 5. && !woke_at < Time.ms 7.)

let test_sendto_autobinds () =
  let cfg = Kernel.default_config Kernel.Bsd in
  let w, client, server = World.pair ~cfg () in
  let reply_port = ref 0 in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
         let sock = Api.socket_dgram server in
         Api.bind server sock ~owner:(Some self) ~port:5000;
         let dg = Api.recvfrom server ~self sock in
         reply_port := snd dg.Api.dg_from));
  ignore
    (Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
         let sock = Api.socket_dgram client in
         (* No bind: sendto must allocate an ephemeral port. *)
         Api.sendto client ~self sock
           ~dst:(Kernel.ip_address server, 5000)
           (Payload.synthetic 5)));
  World.run w ~until:(Time.sec 1.);
  Alcotest.(check bool)
    (Printf.sprintf "ephemeral source port assigned (%d)" !reply_port)
    true
    (!reply_port >= 20_000)

let test_double_bind_rejected () =
  let cfg = Kernel.default_config Kernel.Bsd in
  let w, _client, server = World.pair ~cfg () in
  let raised = ref false in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"p" (fun self ->
         let a = Api.socket_dgram server in
         let b = Api.socket_dgram server in
         Api.bind server a ~owner:(Some self) ~port:5000;
         (try Api.bind server b ~owner:(Some self) ~port:5000
          with Invalid_argument _ -> raised := true)));
  World.run w ~until:(Time.ms 10.);
  Alcotest.(check bool) "second bind rejected" true !raised

let test_close_wakes_blocked_receiver () =
  let cfg = Kernel.default_config Kernel.Ni_lrp in
  let w, _client, server = World.pair ~cfg () in
  let got_exn = ref false in
  let sock = Api.socket_dgram server in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
         Api.bind server sock ~owner:(Some self) ~port:5000;
         try ignore (Api.recvfrom server ~self sock)
         with Api.Socket_closed -> got_exn := true));
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"closer" (fun self ->
         Proc.sleep_for (Time.ms 5.);
         Api.close server ~self sock));
  World.run w ~until:(Time.sec 1.);
  Alcotest.(check bool) "blocked receiver saw Socket_closed" true !got_exn

let test_port_reusable_after_close () =
  let cfg = Kernel.default_config Kernel.Soft_lrp in
  let w, _client, server = World.pair ~cfg () in
  let ok = ref false in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"p" (fun self ->
         let a = Api.socket_dgram server in
         Api.bind server a ~owner:(Some self) ~port:5000;
         Api.close server ~self a;
         let b = Api.socket_dgram server in
         Api.bind server b ~owner:(Some self) ~port:5000;
         ok := true));
  World.run w ~until:(Time.ms 10.);
  Alcotest.(check bool) "port rebindable after close" true !ok

(* --- drop bookkeeping ------------------------------------------------------- *)

let test_edemux_early_drop_counted () =
  let cfg = Kernel.default_config Kernel.Early_demux in
  let w, client, server = World.pair ~cfg () in
  (* No socket bound at all: every packet is an interrupt-time discard. *)
  ignore
    (Blast.start_source (World.engine w) (Kernel.nic client)
       ~src:(Kernel.ip_address client)
       ~dst:(Kernel.ip_address server, 5000)
       ~rate:1_000. ~size:14 ~until:(Time.ms 100.) ());
  World.run w ~until:(Time.ms 200.);
  Alcotest.(check bool) "early drops counted" true
    ((Kernel.stats server).Kernel.edemux_early_drops > 50)

let test_lrp_unmatched_udp_drops () =
  let cfg = Kernel.default_config Kernel.Ni_lrp in
  let w, client, server = World.pair ~cfg () in
  ignore
    (Blast.start_source (World.engine w) (Kernel.nic client)
       ~src:(Kernel.ip_address client)
       ~dst:(Kernel.ip_address server, 5000)
       ~rate:1_000. ~size:14 ~until:(Time.ms 100.) ());
  World.run w ~until:(Time.ms 200.);
  Alcotest.(check bool) "unmatched packets dropped at demux" true
    ((Kernel.stats server).Kernel.demux_drops > 50);
  (* And at zero host-CPU cost under NI demux. *)
  Alcotest.(check (float 1.)) "no host CPU burned" 0.
    (Cpu.time_hard (Kernel.cpu server))

let test_mbuf_balance () =
  (* After a BSD run with consumed traffic, the mbuf pool must drain back
     to (near) empty: every alloc has a matching free. *)
  let cfg = Kernel.default_config Kernel.Bsd in
  let w, client, server = World.pair ~cfg () in
  ignore (Blast.start_sink server ~port:9000 ());
  ignore
    (Blast.start_source (World.engine w) (Kernel.nic client)
       ~src:(Kernel.ip_address client)
       ~dst:(Kernel.ip_address server, 9000)
       ~rate:2_000. ~size:14 ~until:(Time.ms 500.) ());
  World.run w ~until:(Time.sec 1.);
  Alcotest.(check int) "mbuf pool drained" 0 (Mbuf.in_use (Kernel.mbufs server));
  Alcotest.(check bool) "pool was actually used" true
    (Mbuf.peak (Kernel.mbufs server) > 0);
  Alcotest.(check int) "no allocation failures (as in the paper)" 0
    (Mbuf.failures (Kernel.mbufs server))

(* --- determinism -------------------------------------------------------------- *)

let test_determinism () =
  let run () =
    let cfg = Kernel.default_config Kernel.Soft_lrp in
    let w, client, server = World.pair ~cfg () in
    let sink = Blast.start_sink server ~port:9000 () in
    ignore
      (Blast.start_source (World.engine w) (Kernel.nic client)
         ~src:(Kernel.ip_address client)
         ~dst:(Kernel.ip_address server, 9000)
         ~rate:12_000. ~size:14 ~until:(Time.ms 500.) ());
    World.run w ~until:(Time.ms 600.);
    (sink.Blast.received, Kernel.early_discards server,
     Engine.events_executed (World.engine w))
  in
  let a = run () and b = run () in
  Alcotest.(check (triple int int int)) "identical runs" a b

let suite =
  [ Alcotest.test_case "icmp echo (all archs)" `Quick (for_all_archs test_icmp_echo);
    Alcotest.test_case "udp fragmentation e2e (all archs)" `Quick
      (for_all_archs test_udp_fragmentation_e2e);
    Alcotest.test_case "fragments split across channels" `Quick
      test_fragments_in_both_channels;
    Alcotest.test_case "helper preprocesses when CPU is idle" `Quick
      test_helper_preprocesses_when_idle;
    Alcotest.test_case "helper disabled leaves raw packets queued" `Quick
      test_helper_disabled;
    Alcotest.test_case "recvfrom with timeout" `Quick test_recvfrom_timeout;
    Alcotest.test_case "sendto auto-binds" `Quick test_sendto_autobinds;
    Alcotest.test_case "double bind rejected" `Quick test_double_bind_rejected;
    Alcotest.test_case "close wakes blocked receiver" `Quick
      test_close_wakes_blocked_receiver;
    Alcotest.test_case "port reusable after close" `Quick
      test_port_reusable_after_close;
    Alcotest.test_case "early-demux drop bookkeeping" `Quick
      test_edemux_early_drop_counted;
    Alcotest.test_case "LRP unmatched-packet drops" `Quick
      test_lrp_unmatched_udp_drops;
    Alcotest.test_case "mbuf pool balances" `Quick test_mbuf_balance;
    Alcotest.test_case "simulation is deterministic" `Quick test_determinism ]
