(* Tests for the protocol library: the demultiplexer (including the
   byte-level/structural equivalence property the NI firmware relies on),
   IP fragmentation/reassembly, and PCB tables. *)

open Lrp_net
open Lrp_proto

(* --- demux ------------------------------------------------------------- *)

let mk_udp ?(src = 11) ?(sport = 1000) ?(dport = 2000) ?(len = 14) () =
  Packet.udp ~src ~dst:99 ~src_port:sport ~dst_port:dport (Payload.synthetic len)

let mk_tcp ?(src = 11) ?(sport = 1000) ?(dport = 80) ?(syn = false)
    ?(ack = false) ?(len = 0) () =
  Packet.tcp ~src ~dst:99 ~src_port:sport ~dst_port:dport ~seq:1 ~ack_no:2
    ~flags:(Packet.flags ~syn ~ack ()) ~window:100 (Payload.synthetic len)

let test_flow_udp () =
  match Demux.flow_of_packet (mk_udp ()) with
  | Demux.Udp_flow { src; src_port; dst_port } ->
      Alcotest.(check int) "src" 11 src;
      Alcotest.(check int) "sport" 1000 src_port;
      Alcotest.(check int) "dport" 2000 dst_port
  | _ -> Alcotest.fail "expected udp flow"

let test_flow_tcp_syn () =
  match Demux.flow_of_packet (mk_tcp ~syn:true ()) with
  | Demux.Tcp_flow { syn_only; _ } ->
      Alcotest.(check bool) "syn-only" true syn_only
  | _ -> Alcotest.fail "expected tcp flow"

let test_flow_tcp_synack_not_syn_only () =
  match Demux.flow_of_packet (mk_tcp ~syn:true ~ack:true ()) with
  | Demux.Tcp_flow { syn_only; _ } ->
      Alcotest.(check bool) "syn+ack is not connection request" false syn_only
  | _ -> Alcotest.fail "expected tcp flow"

let test_flow_fragments () =
  let big = mk_udp ~len:20_000 () in
  let frags = Ip.fragment big ~mtu:9180 in
  Alcotest.(check int) "three fragments" 3 (List.length frags);
  (match frags with
   | first :: rest ->
       (* First fragment carries the transport header: demuxable. *)
       (match Demux.flow_of_packet first with
        | Demux.Udp_flow { dst_port; _ } ->
            Alcotest.(check int) "first fragment demuxes to port" 2000 dst_port
        | _ -> Alcotest.fail "first fragment should demux as UDP");
       (* Later fragments cannot be demultiplexed to an endpoint. *)
       List.iter
         (fun f ->
           match Demux.flow_of_packet f with
           | Demux.Frag_flow { src; _ } -> Alcotest.(check int) "src" 11 src
           | _ -> Alcotest.fail "non-first fragment must be Frag_flow")
         rest
   | [] -> Alcotest.fail "no fragments")

(* The core classifier property: the byte-level classifier (what would run
   in NI firmware) agrees with the structural one on every packet shape. *)
let prop_demux_bytes_equals_struct =
  let gen =
    QCheck.Gen.(
      let* kind = int_range 0 3 in
      let* src = int_range 1 0xfffff in
      let* sport = int_range 1 65535 in
      let* dport = int_range 1 65535 in
      let* len = int_range 0 200 in
      let* syn = bool in
      let* ack = bool in
      return (kind, src, sport, dport, len, syn, ack))
  in
  QCheck.Test.make ~count:400
    ~name:"demux: byte-level classifier == structural classifier"
    (QCheck.make gen)
    (fun (kind, src, sport, dport, len, syn, ack) ->
      let pkt =
        match kind with
        | 0 -> Packet.udp ~src ~dst:9 ~src_port:sport ~dst_port:dport (Payload.synthetic len)
        | 1 ->
            Packet.tcp ~src ~dst:9 ~src_port:sport ~dst_port:dport ~seq:7
              ~ack_no:8 ~flags:(Packet.flags ~syn ~ack ()) ~window:100
              (Payload.synthetic len)
        | 2 -> Packet.icmp ~src ~dst:9 Packet.Echo_request (Payload.synthetic len)
        | _ ->
            (* a fragment *)
            let big = Packet.udp ~src ~dst:9 ~src_port:sport ~dst_port:dport (Payload.synthetic 25_000) in
            List.nth (Ip.fragment big ~mtu:9180) 1
      in
      Demux.equal_flow
        (Demux.flow_of_packet pkt)
        (Demux.flow_of_bytes (Codec.encode pkt)))

let test_flow_of_bytes_garbage () =
  (* Garbage classifies as Other, never raises. *)
  match Demux.flow_of_bytes (Bytes.make 40 'x') with
  | Demux.Other_flow _ -> ()
  | _ -> Alcotest.fail "garbage should be Other_flow"

(* --- IP fragmentation / reassembly -------------------------------------- *)

let test_fragment_sizes () =
  let pkt = mk_udp ~len:20_000 () in
  let frags = Ip.fragment pkt ~mtu:9180 in
  List.iter
    (fun f ->
      Alcotest.(check bool) "each fragment fits mtu" true
        (Packet.wire_bytes f <= 9180))
    frags;
  let total =
    List.fold_left (fun acc f -> acc + Packet.payload_length f) 0 frags
  in
  Alcotest.(check int) "payload conserved" 20_000 total

let test_fragment_small_passthrough () =
  let pkt = mk_udp ~len:100 () in
  match Ip.fragment pkt ~mtu:9180 with
  | [ p ] -> Alcotest.(check bool) "unchanged" true (p == pkt)
  | _ -> Alcotest.fail "small packet should not fragment"

let test_reasm_in_order () =
  let r = Ip.Reasm.create () in
  let pkt = mk_udp ~len:20_000 () in
  let frags = Ip.fragment pkt ~mtu:9180 in
  let results = List.map (fun f -> Ip.Reasm.insert r ~now:0. f) frags in
  let completions = List.filter_map Fun.id results in
  Alcotest.(check int) "one completion" 1 (List.length completions);
  Alcotest.(check int) "only at the last fragment" 0
    (List.length (List.filter_map Fun.id (List.filteri (fun i _ -> i < List.length results - 1) results)))

let prop_reasm_any_order =
  QCheck.Test.make ~count:100 ~name:"reasm: completes in any arrival order"
    QCheck.(pair (int_range 10_000 60_000) small_int)
    (fun (len, seed) ->
      let r = Ip.Reasm.create () in
      let pkt = mk_udp ~len () in
      let frags = Array.of_list (Ip.fragment pkt ~mtu:9180) in
      let rng = Lrp_engine.Rng.create seed in
      Lrp_engine.Rng.shuffle rng frags;
      let completions =
        Array.to_list frags
        |> List.filter_map (fun f -> Ip.Reasm.insert r ~now:0. f)
      in
      match completions with
      | [ whole ] -> Packet.payload_length whole = len
      | _ -> false)

let test_reasm_interleaved_datagrams () =
  (* Fragments of two datagrams interleaved: both complete. *)
  let r = Ip.Reasm.create () in
  let a = mk_udp ~len:20_000 ~sport:1 () in
  let b = mk_udp ~len:20_000 ~sport:2 () in
  let fa = Ip.fragment a ~mtu:9180 and fb = Ip.fragment b ~mtu:9180 in
  let interleaved = List.concat (List.map2 (fun x y -> [ x; y ]) fa fb) in
  let completions = List.filter_map (fun f -> Ip.Reasm.insert r ~now:0. f) interleaved in
  Alcotest.(check int) "both complete" 2 (List.length completions)

let test_reasm_timeout () =
  let r = Ip.Reasm.create ~timeout:1_000. () in
  let pkt = mk_udp ~len:20_000 () in
  (match Ip.fragment pkt ~mtu:9180 with
   | f :: _ -> ignore (Ip.Reasm.insert r ~now:0. f)
   | [] -> Alcotest.fail "no fragments");
  Alcotest.(check int) "pending" 1 (Ip.Reasm.pending_count r);
  let pruned = Ip.Reasm.prune r ~now:2_000. in
  Alcotest.(check int) "pruned" 1 pruned;
  Alcotest.(check int) "nothing pending" 0 (Ip.Reasm.pending_count r);
  Alcotest.(check int) "timeout counted" 1 (Ip.Reasm.timed_out r)

let test_reasm_duplicate_fragments () =
  let r = Ip.Reasm.create () in
  let pkt = mk_udp ~len:20_000 () in
  let frags = Ip.fragment pkt ~mtu:9180 in
  (* Insert the first fragment twice, then the rest. *)
  (match frags with
   | f :: _ -> ignore (Ip.Reasm.insert r ~now:0. f)
   | [] -> ());
  let completions = List.filter_map (fun f -> Ip.Reasm.insert r ~now:0. f) frags in
  Alcotest.(check int) "still exactly one completion" 1 (List.length completions)

(* --- PCB tables ---------------------------------------------------------- *)

let test_pcb_udp () =
  let t = Pcb.create () in
  Pcb.bind_udp t ~port:53 "dns";
  Alcotest.(check (option string)) "bound port found" (Some "dns")
    (Pcb.lookup_udp t ~remote:(1, 1000) ~port:53);
  Alcotest.(check (option string)) "unbound port misses" None
    (Pcb.lookup_udp t ~remote:(1, 1000) ~port:54);
  Pcb.connect_udp t ~remote:(2, 2000) ~port:53 "dns-conn";
  Alcotest.(check (option string)) "connected match preferred" (Some "dns-conn")
    (Pcb.lookup_udp t ~remote:(2, 2000) ~port:53);
  Alcotest.(check (option string)) "other remotes get wildcard" (Some "dns")
    (Pcb.lookup_udp t ~remote:(3, 3000) ~port:53)

let test_pcb_udp_rebind_rejected () =
  let t = Pcb.create () in
  Pcb.bind_udp t ~port:53 "a";
  Alcotest.check_raises "double bind" (Invalid_argument "Pcb.bind_udp: port in use")
    (fun () -> Pcb.bind_udp t ~port:53 "b")

let test_pcb_tcp () =
  let t = Pcb.create () in
  Pcb.listen_tcp t ~port:80 "listener";
  Pcb.insert_tcp t ~remote:(5, 5000) ~port:80 "conn";
  Alcotest.(check (option string)) "exact match wins" (Some "conn")
    (Pcb.lookup_tcp t ~remote:(5, 5000) ~port:80);
  Alcotest.(check (option string)) "fallback to listener" (Some "listener")
    (Pcb.lookup_tcp t ~remote:(6, 6000) ~port:80);
  Pcb.remove_tcp t ~remote:(5, 5000) ~port:80;
  Alcotest.(check (option string)) "removed conn falls back" (Some "listener")
    (Pcb.lookup_tcp t ~remote:(5, 5000) ~port:80);
  Alcotest.(check int) "count" 0 (Pcb.tcp_count t)

let test_pcb_lookup_cost () =
  let t = Pcb.create () in
  Pcb.bind_udp t ~port:53 "dns";
  let before = Pcb.lookup_cost_cells t in
  ignore (Pcb.lookup_udp t ~remote:(1, 1) ~port:53);
  Alcotest.(check bool) "lookups cost cells" true (Pcb.lookup_cost_cells t > before)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_demux_bytes_equals_struct; prop_reasm_any_order ]

let suite =
  [ Alcotest.test_case "udp flow extraction" `Quick test_flow_udp;
    Alcotest.test_case "tcp syn flow" `Quick test_flow_tcp_syn;
    Alcotest.test_case "syn-ack is not syn-only" `Quick test_flow_tcp_synack_not_syn_only;
    Alcotest.test_case "fragment flows" `Quick test_flow_fragments;
    Alcotest.test_case "garbage classifies as Other" `Quick test_flow_of_bytes_garbage;
    Alcotest.test_case "fragment sizes respect MTU" `Quick test_fragment_sizes;
    Alcotest.test_case "small packets pass through" `Quick test_fragment_small_passthrough;
    Alcotest.test_case "reassembly in order" `Quick test_reasm_in_order;
    Alcotest.test_case "reassembly of interleaved datagrams" `Quick
      test_reasm_interleaved_datagrams;
    Alcotest.test_case "reassembly timeout pruning" `Quick test_reasm_timeout;
    Alcotest.test_case "duplicate fragments" `Quick test_reasm_duplicate_fragments;
    Alcotest.test_case "pcb udp binding" `Quick test_pcb_udp;
    Alcotest.test_case "pcb rejects double bind" `Quick test_pcb_udp_rebind_rejected;
    Alcotest.test_case "pcb tcp exact + listen" `Quick test_pcb_tcp;
    Alcotest.test_case "pcb lookup cost accounting" `Quick test_pcb_lookup_cost ]
  @ qsuite

(* --- classifier robustness: fuzzing -------------------------------------- *)

(* The classifier runs in NI firmware / interrupt context in the real
   system: it must never raise, whatever bytes arrive off the wire. *)
let prop_classifier_never_raises =
  QCheck.Test.make ~count:500 ~name:"demux: random bytes never crash the classifier"
    QCheck.(pair small_int (int_range 0 120))
    (fun (seed, len) ->
      let rng = Lrp_engine.Rng.create seed in
      let b = Bytes.init len (fun _ -> Char.chr (Lrp_engine.Rng.int rng 256)) in
      match Demux.flow_of_bytes b with
      | Demux.Udp_flow _ | Demux.Tcp_flow _ | Demux.Frag_flow _
      | Demux.Icmp_flow | Demux.Other_flow _ -> true)

(* Bit-flip fuzzing: take a valid packet, flip one byte, classify. *)
let prop_classifier_survives_bitflips =
  QCheck.Test.make ~count:300 ~name:"demux: bit-flipped packets never crash"
    QCheck.(pair small_int (int_range 0 60))
    (fun (seed, pos) ->
      let pkt = mk_tcp ~syn:true ~len:20 () in
      let b = Codec.encode pkt in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 + (seed land 0xfe))));
      match Demux.flow_of_bytes b with
      | Demux.Udp_flow _ | Demux.Tcp_flow _ | Demux.Frag_flow _
      | Demux.Icmp_flow | Demux.Other_flow _ -> true)

let qsuite2 =
  List.map QCheck_alcotest.to_alcotest
    [ prop_classifier_never_raises; prop_classifier_survives_bitflips ]

let suite = suite @ qsuite2
