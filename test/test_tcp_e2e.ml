(* End-to-end TCP tests across architectures: handshake, stream integrity,
   retransmission under injected loss, backlog behaviour, teardown. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_proto
open Lrp_kernel
open Lrp_workload

let archs =
  [ Kernel.Bsd; Kernel.Soft_lrp; Kernel.Ni_lrp; Kernel.Early_demux ]

let for_all_archs f () =
  List.iter (fun arch -> f arch (Kernel.default_config arch)) archs

(* Echo server: accepts one connection, echoes until EOF. *)
let start_echo_server kern ~port ~connections =
  let accepted = ref 0 in
  ignore
    (Cpu.spawn (Kernel.cpu kern) ~name:"echo-srv" (fun self ->
         let lsock = Api.socket_stream kern in
         Api.tcp_listen kern ~self lsock ~port ~backlog:8;
         for _ = 1 to connections do
           let conn = Api.tcp_accept kern ~self lsock in
           incr accepted;
           let rec echo () =
             match Api.tcp_recv kern ~self conn ~max:65_536 with
             | `Data payload ->
                 (match Api.tcp_send kern ~self conn payload with
                  | `Ok -> echo ()
                  | `Closed -> ())
             | `Eof -> ()
           in
           echo ();
           Api.close kern ~self conn
         done));
  accepted

let test_handshake_and_echo arch cfg =
  let w, client, server = World.pair ~cfg () in
  let _accepted = start_echo_server server ~port:80 ~connections:1 in
  let echoed = ref None in
  let connected = ref false in
  ignore
    (Cpu.spawn (Kernel.cpu client) ~name:"cl" (fun self ->
         let sock = Api.socket_stream client in
         match
           Api.tcp_connect client ~self sock
             ~remote:(Kernel.ip_address server, 80)
         with
         | `Refused -> ()
         | `Ok ->
             connected := true;
             (match
                Api.tcp_send client ~self sock (Payload.of_string "hello, lrp!")
              with
              | `Ok -> (
                  match Api.tcp_recv client ~self sock ~max:1024 with
                  | `Data p ->
                      echoed := Some (Bytes.to_string (Payload.to_bytes p));
                      Api.close client ~self sock
                  | `Eof -> ())
              | `Closed -> ())));
  World.run w ~until:(Time.sec 5.);
  Alcotest.(check bool)
    (Printf.sprintf "%s: connected" (Kernel.arch_name arch))
    true !connected;
  Alcotest.(check (option string))
    (Printf.sprintf "%s: echo round-trip" (Kernel.arch_name arch))
    (Some "hello, lrp!") !echoed

(* Bulk transfer with byte-level integrity checking.  [loss] is the
   legacy whole-fabric uniform loss; [faults] configures the per-link
   fault-injection pipeline on every link (both directions). *)
let bulk_transfer ?(loss = 0.) ?faults ~arch ~bytes () =
  let cfg = Kernel.default_config arch in
  let w, client, server = World.pair ~cfg () in
  if loss > 0. then Fabric.set_loss_rate (World.fabric w) loss;
  (match faults with
   | Some f -> Fabric.set_faults (World.fabric w) f
   | None -> ());
  let received = Buffer.create bytes in
  let done_at = ref None in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
         let lsock = Api.socket_stream server in
         Api.tcp_listen server ~self lsock ~port:5001 ~backlog:4;
         let conn = Api.tcp_accept server ~self lsock in
         let rec drain () =
           match Api.tcp_recv server ~self conn ~max:65_536 with
           | `Data p ->
               Buffer.add_bytes received (Payload.to_bytes p);
               drain ()
           | `Eof -> ()
         in
         drain ();
         Api.close server ~self conn;
         done_at := Some (Engine.now (World.engine w))));
  (* Deterministic pseudo-random payload so corruption/reordering shows. *)
  let data =
    Bytes.init bytes (fun i -> Char.chr ((i * 131 + (i lsr 8) * 17) land 0xff))
  in
  ignore
    (Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
         let sock = Api.socket_stream client in
         match
           Api.tcp_connect client ~self sock
             ~remote:(Kernel.ip_address server, 5001)
         with
         | `Refused -> ()
         | `Ok ->
             ignore (Api.tcp_send client ~self sock (Payload.of_bytes data));
             Api.close client ~self sock));
  World.run w ~until:(Time.sec 120.);
  (Bytes.to_string data, Buffer.contents received, !done_at)

let test_bulk_integrity arch _cfg =
  let sent, received, done_at = bulk_transfer ~arch ~bytes:200_000 () in
  Alcotest.(check bool)
    (Printf.sprintf "%s: transfer completed" (Kernel.arch_name arch))
    true (done_at <> None);
  Alcotest.(check bool)
    (Printf.sprintf "%s: 200kB stream intact" (Kernel.arch_name arch))
    true
    (String.equal sent received)

let test_bulk_integrity_under_loss () =
  (* 2% random frame loss: retransmission must still deliver the exact
     stream, under both BSD and LRP processing models. *)
  List.iter
    (fun arch ->
      let sent, received, done_at = bulk_transfer ~loss:0.02 ~arch ~bytes:100_000 () in
      Alcotest.(check bool)
        (Printf.sprintf "%s: lossy transfer completed" (Kernel.arch_name arch))
        true (done_at <> None);
      Alcotest.(check bool)
        (Printf.sprintf "%s: stream intact under 2%% loss" (Kernel.arch_name arch))
        true
        (String.equal sent received))
    [ Kernel.Bsd; Kernel.Soft_lrp ]

let test_bulk_integrity_under_faults () =
  (* 5% loss plus reordering on every link, all four architectures: the
     retransmission and resequencing machinery must still deliver the
     exact byte stream. *)
  let faults =
    Fabric.Faults.make ~loss:0.05 ~reorder:0.2 ~reorder_span:3 ()
  in
  List.iter
    (fun arch ->
      let sent, received, done_at =
        bulk_transfer ~faults ~arch ~bytes:100_000 ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: faulty transfer completed" (Kernel.arch_name arch))
        true (done_at <> None);
      Alcotest.(check bool)
        (Printf.sprintf "%s: stream byte-exact under 5%% loss + reordering"
           (Kernel.arch_name arch))
        true
        (String.equal sent received))
    archs

let test_many_sequential_connections arch cfg =
  (* Exercises TIME_WAIT turnover and port allocation. *)
  let cfg = { cfg with Kernel.time_wait = Time.ms 500. } in
  let w, client, server = World.pair ~cfg () in
  let _ = start_echo_server server ~port:80 ~connections:10 in
  let ok = ref 0 in
  ignore
    (Cpu.spawn (Kernel.cpu client) ~name:"cl" (fun self ->
         for _ = 1 to 10 do
           let sock = Api.socket_stream client in
           match
             Api.tcp_connect client ~self sock
               ~remote:(Kernel.ip_address server, 80)
           with
           | `Refused -> ()
           | `Ok -> (
               match Api.tcp_send client ~self sock (Payload.synthetic 100) with
               | `Ok -> (
                   match Api.tcp_recv client ~self sock ~max:1024 with
                   | `Data p when Payload.length p = 100 ->
                       incr ok;
                       Api.close client ~self sock
                   | `Data _ | `Eof -> Api.close client ~self sock)
               | `Closed -> ())
         done));
  World.run w ~until:(Time.sec 30.);
  Alcotest.(check int)
    (Printf.sprintf "%s: 10 sequential connections served" (Kernel.arch_name arch))
    10 !ok

let test_connect_refused arch cfg =
  (* Connecting to a port with no listener: the server sends RST. *)
  let w, client, server = World.pair ~cfg () in
  let result = ref None in
  ignore
    (Cpu.spawn (Kernel.cpu client) ~name:"cl" (fun self ->
         let sock = Api.socket_stream client in
         let r =
           Api.tcp_connect client ~self sock
             ~remote:(Kernel.ip_address server, 4321)
         in
         result := Some r));
  World.run w ~until:(Time.sec 30.);
  Alcotest.(check bool)
    (Printf.sprintf "%s: connection refused" (Kernel.arch_name arch))
    true
    (!result = Some `Refused)

let test_backlog_overflow_drops_syns () =
  (* A listener whose backlog is never drained: exactly [backlog] embryonic
     connections form; further SYNs are dropped.  Under LRP they are dropped
     at the (disabled) channel. *)
  List.iter
    (fun arch ->
      let cfg = Kernel.default_config arch in
      let w, client, server = World.pair ~cfg () in
      (* Dummy server: listens but never accepts. *)
      let listener = ref None in
      ignore
        (Cpu.spawn (Kernel.cpu server) ~name:"dummy" (fun self ->
             let lsock = Api.socket_stream server in
             Api.tcp_listen server ~self lsock ~port:99 ~backlog:5;
             listener := Some lsock;
             Proc.block (Proc.waitq "forever")));
      (* Clients that connect and never finish (server can't accept). *)
      for i = 1 to 12 do
        ignore
          (Cpu.spawn (Kernel.cpu client) ~name:(Printf.sprintf "c%d" i)
             (fun self ->
               let sock = Api.socket_stream client in
               ignore
                 (Api.tcp_connect client ~self sock
                    ~remote:(Kernel.ip_address server, 99))))
      done;
      World.run w ~until:(Time.sec 3.);
      match !listener with
      | Some lsock ->
          let conn =
            match lsock.Lrp_kernel.Socket.tcp with
            | Some c -> c
            | None -> Alcotest.fail "no listener conn"
          in
          let embryonic = conn.Tcp.syn_pending + Queue.length conn.Tcp.accept_queue in
          Alcotest.(check bool)
            (Printf.sprintf "%s: embryonic connections capped at backlog (%d)"
               (Kernel.arch_name arch) embryonic)
            true (embryonic <= 5);
          if Kernel.is_lrp arch then begin
            let discarded_disabled =
              List.fold_left
                (fun acc ch -> acc + Lrp_core.Channel.discarded_disabled ch)
                0 (Kernel.channels server)
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s: SYNs died at the disabled channel (%d)"
                 (Kernel.arch_name arch) discarded_disabled)
              true (discarded_disabled > 0)
          end
      | None -> Alcotest.fail "listener did not start")
    [ Kernel.Bsd; Kernel.Soft_lrp ]

let test_tcp_processing_charged_to_receiver () =
  (* Under SOFT-LRP, TCP receive processing accrues to the receiving
     process's scheduler usage (via its APP thread), not to a bystander. *)
  let cfg = Kernel.default_config Kernel.Soft_lrp in
  let w, client, server = World.pair ~cfg () in
  (* A bystander process that just burns CPU on the server. *)
  let bystander = Spinner.start (Kernel.cpu server) ~nice:0 ~name:"bystander" () in
  let receiver = ref None in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
         receiver := Some self;
         let lsock = Api.socket_stream server in
         Api.tcp_listen server ~self lsock ~port:5001 ~backlog:4;
         let conn = Api.tcp_accept server ~self lsock in
         let rec drain () =
           match Api.tcp_recv server ~self conn ~max:65_536 with
           | `Data _ -> drain ()
           | `Eof -> ()
         in
         drain ()));
  ignore
    (Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
         let sock = Api.socket_stream client in
         match
           Api.tcp_connect client ~self sock
             ~remote:(Kernel.ip_address server, 5001)
         with
         | `Refused -> ()
         | `Ok ->
             ignore (Api.tcp_send client ~self sock (Payload.synthetic 3_000_000));
             Api.close client ~self sock));
  World.run w ~until:(Time.sec 10.);
  match !receiver with
  | None -> Alcotest.fail "receiver did not start"
  | Some rx ->
      let rx_ticks = Lrp_sched.Sched.ticks_charged rx.Proc.thread in
      let by_ticks = Lrp_sched.Sched.ticks_charged bystander.Proc.thread in
      (* The bystander must still get the lion's share of CPU (it computes
         continuously), but the receiver must have been charged a
         non-trivial amount for its protocol processing. *)
      Alcotest.(check bool)
        (Printf.sprintf "receiver charged for protocol work (rx=%d by=%d)"
           rx_ticks by_ticks)
        true
        (rx_ticks > 0 && by_ticks > rx_ticks)

let suite =
  [ Alcotest.test_case "handshake + echo (all archs)" `Quick
      (for_all_archs test_handshake_and_echo);
    Alcotest.test_case "bulk stream integrity (all archs)" `Slow
      (for_all_archs test_bulk_integrity);
    Alcotest.test_case "bulk integrity under 2% loss" `Slow
      test_bulk_integrity_under_loss;
    Alcotest.test_case "bulk integrity under 5% loss + reordering (all archs)"
      `Slow test_bulk_integrity_under_faults;
    Alcotest.test_case "sequential connections / TIME_WAIT turnover" `Slow
      (for_all_archs test_many_sequential_connections);
    Alcotest.test_case "connect to dead port is refused" `Quick
      (for_all_archs test_connect_refused);
    Alcotest.test_case "listen backlog overflow drops SYNs" `Slow
      test_backlog_overflow_drops_syns;
    Alcotest.test_case "LRP charges TCP processing to the receiver" `Slow
      test_tcp_processing_charged_to_receiver ]
