(* Tests for the 4.3BSD decay-usage scheduler. *)

module Sched = Lrp_sched.Sched
open Lrp_engine

let mk () = Sched.create ()

let test_new_thread_priority () =
  let s = mk () in
  let th = Sched.add_thread s ~name:"a" () in
  Alcotest.(check int) "fresh thread at PUSER" Sched.priority_user
    (Sched.priority th);
  Alcotest.(check bool) "starts sleeping" true (Sched.is_sleeping th)

let test_nice_worsens_priority () =
  let s = mk () in
  let a = Sched.add_thread s ~name:"a" ~nice:0 () in
  let b = Sched.add_thread s ~name:"b" ~nice:20 () in
  Alcotest.(check bool) "nice thread has worse (larger) priority" true
    (Sched.priority b > Sched.priority a);
  Alcotest.(check int) "nice +20 adds 40" (Sched.priority_user + 40)
    (Sched.priority b)

let test_pick_best_priority () =
  let s = mk () in
  let a = Sched.add_thread s ~name:"a" ~nice:10 () in
  let b = Sched.add_thread s ~name:"b" () in
  Sched.make_runnable s ~now:0. a;
  Sched.make_runnable s ~now:0. b;
  (match Sched.pick s with
   | Some th -> Alcotest.(check string) "picks low-nice thread" "b" (Sched.name th)
   | None -> Alcotest.fail "expected a runnable thread");
  Alcotest.(check int) "runnable count" 2 (Sched.runnable_count s)

let test_fifo_among_equals () =
  let s = mk () in
  let a = Sched.add_thread s ~name:"a" () in
  let b = Sched.add_thread s ~name:"b" () in
  Sched.make_runnable s ~now:0. a;
  Sched.make_runnable s ~now:0. b;
  (match Sched.pick s with
   | Some th -> Alcotest.(check string) "first enqueued wins ties" "a" (Sched.name th)
   | None -> Alcotest.fail "expected a runnable thread");
  Sched.requeue s a;
  (match Sched.pick s with
   | Some th -> Alcotest.(check string) "requeue rotates" "b" (Sched.name th)
   | None -> Alcotest.fail "expected a runnable thread")

let test_charge_tick_worsens_priority () =
  let s = mk () in
  let a = Sched.add_thread s ~name:"a" () in
  Sched.make_runnable s ~now:0. a;
  let before = Sched.priority a in
  for _ = 1 to 40 do
    Sched.charge_tick s a
  done;
  Alcotest.(check bool) "p_cpu accumulated" true (Sched.p_cpu a >= 40.);
  Alcotest.(check bool) "priority got worse" true (Sched.priority a > before);
  Alcotest.(check int) "40 ticks -> PUSER+10" (Sched.priority_user + 10)
    (Sched.priority a)

let test_priority_clamped () =
  let s = mk () in
  let a = Sched.add_thread s ~name:"a" ~nice:20 () in
  for _ = 1 to 10_000 do
    Sched.charge_tick s a
  done;
  Alcotest.(check int) "clamped at 127" 127 (Sched.priority a)

let test_decay_reduces_usage () =
  let s = mk () in
  let a = Sched.add_thread s ~name:"a" () in
  Sched.make_runnable s ~now:0. a;
  for _ = 1 to 100 do
    Sched.charge_tick s a
  done;
  let before = Sched.p_cpu a in
  Sched.decay s;
  Alcotest.(check bool) "usage decayed" true (Sched.p_cpu a < before)

let test_wakeup_boost () =
  (* A thread that slept for seconds comes back with decayed usage, hence
     better priority than a compute-bound peer: the BSD I/O-boost. *)
  let s = mk () in
  let sleeper = Sched.add_thread s ~name:"sleeper" () in
  let hog = Sched.add_thread s ~name:"hog" () in
  Sched.make_runnable s ~now:0. sleeper;
  Sched.make_runnable s ~now:0. hog;
  (* Both burn CPU for a while. *)
  for _ = 1 to 200 do
    Sched.charge_tick s sleeper;
    Sched.charge_tick s hog
  done;
  (* Build a nonzero load average so the wakeup decay has something to do. *)
  Sched.decay s;
  for _ = 1 to 100 do
    Sched.charge_tick s sleeper;
    Sched.charge_tick s hog
  done;
  Sched.sleep s ~now:(Time.sec 1.) sleeper;
  Sched.make_runnable s ~now:(Time.sec 9.) sleeper;
  Alcotest.(check bool) "sleeper priority better after long sleep" true
    (Sched.priority sleeper < Sched.priority hog)

let test_should_preempt () =
  let s = mk () in
  let a = Sched.add_thread s ~name:"a" () in
  let b = Sched.add_thread s ~name:"b" () in
  Sched.make_runnable s ~now:0. a;
  Sched.make_runnable s ~now:0. b;
  Alcotest.(check bool) "equal priority does not preempt" false
    (Sched.should_preempt s ~current:a);
  for _ = 1 to 80 do
    Sched.charge_tick s a
  done;
  Alcotest.(check bool) "worse current is preempted" true
    (Sched.should_preempt s ~current:a)

let test_quantum () =
  let s = mk () in
  let a = Sched.add_thread s ~name:"a" () in
  Sched.make_runnable s ~now:0. a;
  for _ = 1 to Sched.quantum_ticks - 1 do
    Sched.charge_tick s a
  done;
  Alcotest.(check bool) "not yet expired" false (Sched.quantum_expired a);
  Sched.charge_tick s a;
  Alcotest.(check bool) "expired after quantum_ticks" true (Sched.quantum_expired a);
  Sched.reset_quantum a;
  Alcotest.(check bool) "reset" false (Sched.quantum_expired a)

let test_account_redirection () =
  (* The LRP APP thread: charges accrue to the owner and the APP thread's
     priority mirrors the owner's. *)
  let s = mk () in
  let owner = Sched.add_thread s ~name:"owner" () in
  let app = Sched.add_thread s ~name:"app" () in
  Sched.set_account app (Some owner);
  for _ = 1 to 120 do
    Sched.charge_tick s app
  done;
  Alcotest.(check bool) "owner was charged" true (Sched.p_cpu owner >= 120.);
  Alcotest.(check (float 0.)) "app's own p_cpu unchanged" 0. (Sched.p_cpu app);
  Alcotest.(check int) "app priority mirrors owner" (Sched.priority owner)
    (Sched.priority app);
  Alcotest.(check int) "owner got the tick count" 120 (Sched.ticks_charged owner)

let test_exit_thread () =
  let s = mk () in
  let a = Sched.add_thread s ~name:"a" () in
  Sched.make_runnable s ~now:0. a;
  Sched.exit_thread s a;
  Alcotest.(check int) "no runnables" 0 (Sched.runnable_count s);
  Alcotest.(check bool) "pick is none" true (Sched.pick s = None)

let test_load_average_tracks_runnables () =
  let s = mk () in
  let mk_run name =
    let th = Sched.add_thread s ~name () in
    Sched.make_runnable s ~now:0. th
  in
  mk_run "a";
  mk_run "b";
  mk_run "c";
  for _ = 1 to 50 do
    Sched.decay s
  done;
  Alcotest.(check bool) "load average converges to 3" true
    (Float.abs (Sched.load_average s -. 3.) < 0.05)

(* Property: decay is monotone — more load means usage is retained longer. *)
let prop_decay_monotone =
  QCheck.Test.make ~count:100 ~name:"sched: higher p_cpu stays higher after decay"
    QCheck.(pair (int_range 0 200) (int_range 0 200))
    (fun (u1, u2) ->
      let s = mk () in
      let a = Sched.add_thread s ~name:"a" () in
      let b = Sched.add_thread s ~name:"b" () in
      (* Inject usage via ticks. *)
      for _ = 1 to u1 do Sched.charge_tick s a done;
      for _ = 1 to u2 do Sched.charge_tick s b done;
      Sched.decay s;
      (* weakly monotone: decay (a scale by a common factor) preserves
         ordering, but may collapse it to equality at zero load *)
      (not (u1 >= u2)) || Sched.p_cpu a >= Sched.p_cpu b)

let suite =
  [ Alcotest.test_case "fresh thread priority" `Quick test_new_thread_priority;
    Alcotest.test_case "nice worsens priority" `Quick test_nice_worsens_priority;
    Alcotest.test_case "pick chooses best priority" `Quick test_pick_best_priority;
    Alcotest.test_case "FIFO among equal priorities" `Quick test_fifo_among_equals;
    Alcotest.test_case "ticks worsen priority" `Quick test_charge_tick_worsens_priority;
    Alcotest.test_case "priority clamped at 127" `Quick test_priority_clamped;
    Alcotest.test_case "decay reduces usage" `Quick test_decay_reduces_usage;
    Alcotest.test_case "long sleepers get a wakeup boost" `Quick test_wakeup_boost;
    Alcotest.test_case "should_preempt" `Quick test_should_preempt;
    Alcotest.test_case "quantum expiry" `Quick test_quantum;
    Alcotest.test_case "APP-style account redirection" `Quick test_account_redirection;
    Alcotest.test_case "exit removes thread" `Quick test_exit_thread;
    Alcotest.test_case "load average tracks runnables" `Quick
      test_load_average_tracks_runnables ]
  @ [ QCheck_alcotest.to_alcotest prop_decay_monotone ]
