(* Tests for the structured tracing + metrics subsystem: ring-buffer
   semantics, sink well-formedness, the stage-latency report, and — most
   importantly — that tracing never perturbs simulation results. *)

open Lrp_trace
open Lrp_experiments

let clock = ref 0.

let make_tracer ?capacity () =
  clock := 0.;
  let t = Trace.create ?capacity ~name:"test" ~now:(fun () -> !clock) () in
  Trace.set_enabled t true;
  t

(* --- ring buffer ------------------------------------------------------- *)

let test_ring_overwrite () =
  let t = make_tracer ~capacity:4 () in
  for i = 1 to 6 do
    clock := float_of_int i;
    Trace.nic_rx t ~pkt:i ~bytes:100
  done;
  Alcotest.(check int) "length capped" 4 (Trace.length t);
  Alcotest.(check int) "overwritten" 2 (Trace.dropped t);
  let pkts =
    List.map
      (function
        | _, _, Trace.Nic_rx { pkt; _ } -> pkt
        | _ -> Alcotest.fail "unexpected event")
      (Trace.events t)
  in
  Alcotest.(check (list int)) "oldest overwritten first" [ 3; 4; 5; 6 ] pkts

let test_disabled_records_nothing () =
  clock := 0.;
  let t = Trace.create ~name:"off" ~now:(fun () -> !clock) () in
  Trace.nic_rx t ~pkt:1 ~bytes:100;
  Trace.softint_begin t ~pkt:1;
  Trace.notef t "costly %d" (1 + 1);
  Alcotest.(check int) "disabled tracer stays empty" 0 (Trace.length t);
  let n = Trace.null () in
  Trace.nic_rx n ~pkt:1 ~bytes:100;
  Alcotest.(check int) "null tracer stays empty" 0 (Trace.length n)

let test_class_filter () =
  let t = make_tracer () in
  Trace.set_filter t [ Trace.Sched_events ];
  Trace.nic_rx t ~pkt:1 ~bytes:100;
  Trace.ctx_switch t ~from_pid:1 ~to_pid:2;
  Trace.note t "hello";
  Alcotest.(check int) "only sched recorded" 1 (Trace.length t);
  match Trace.events t with
  | [ (_, _, Trace.Ctx_switch _) ] -> ()
  | _ -> Alcotest.fail "expected the ctx-switch event only"

let test_event_ordering () =
  let t = make_tracer () in
  List.iter
    (fun ts ->
      clock := ts;
      Trace.nic_rx t ~pkt:(int_of_float ts) ~bytes:14)
    [ 1.; 2.; 5.; 9. ];
  let stamps = List.map (fun (ts, _, _) -> ts) (Trace.events t) in
  Alcotest.(check (list (float 0.)))
    "events come back oldest-first" [ 1.; 2.; 5.; 9. ] stamps;
  let seqs = List.map (fun (_, seq, _) -> seq) (Trace.events t) in
  Alcotest.(check (list int)) "sequence numbers increase" [ 0; 1; 2; 3 ] seqs

(* --- sinks ------------------------------------------------------------- *)

let test_chrome_roundtrip () =
  let t = make_tracer () in
  clock := 1.;
  Trace.nic_rx t ~pkt:7 ~bytes:42;
  Trace.intr_enter t ~level:Trace.Hard ~label:"rx-intr";
  clock := 3.;
  Trace.intr_exit t ~level:Trace.Hard ~label:"rx-intr";
  Trace.demux t ~pkt:7 ~chan:2 ~flow:9000;
  clock := 5.;
  Trace.sock_enqueue t ~pkt:7 ~sock:3;
  Trace.note t "with \"quotes\" and\nnewline";
  let buf = Buffer.create 256 in
  Trace.to_chrome buf t;
  match Json.parse (Buffer.contents buf) with
  | Error e -> Alcotest.fail ("chrome JSON does not parse: " ^ e)
  | Ok doc -> (
      match Json.member "traceEvents" doc with
      | Some (Json.Arr evs) ->
          Alcotest.(check bool) "has events" true (List.length evs > 0);
          List.iter
            (fun ev ->
              match (Json.member "ph" ev, Json.member "pid" ev) with
              | Some (Json.Str _), Some (Json.Num _) -> ()
              | _ -> Alcotest.fail "event missing ph/pid")
            evs
      | _ -> Alcotest.fail "no traceEvents array")

let test_chrome_spans_balanced_under_overwrite () =
  (* A ring that wrapped mid-span must not emit an unmatched "E". *)
  let t = make_tracer ~capacity:3 () in
  clock := 1.;
  Trace.intr_enter t ~level:Trace.Soft ~label:"softnet";
  clock := 2.;
  Trace.intr_exit t ~level:Trace.Soft ~label:"softnet";
  clock := 3.;
  Trace.intr_enter t ~level:Trace.Soft ~label:"softnet";
  clock := 4.;
  Trace.intr_exit t ~level:Trace.Soft ~label:"softnet";
  (* capacity 3: the first enter fell off; first event is now an exit *)
  Alcotest.(check int) "ring wrapped" 1 (Trace.dropped t);
  let buf = Buffer.create 256 in
  Trace.to_chrome buf t;
  match Json.parse (Buffer.contents buf) with
  | Error e -> Alcotest.fail ("chrome JSON does not parse: " ^ e)
  | Ok doc ->
      let evs =
        match Json.member "traceEvents" doc with
        | Some a -> Json.to_list a
        | None -> []
      in
      let count ph =
        List.length
          (List.filter
             (fun ev -> Json.member "ph" ev = Some (Json.Str ph))
             evs)
      in
      Alcotest.(check int) "balanced begin/end" (count "B") (count "E")

let test_csv_and_text () =
  let t = make_tracer () in
  Trace.nic_rx t ~pkt:1 ~bytes:14;
  Trace.note t "a,b\"c";
  let csv = Buffer.create 128 in
  Trace.to_csv csv t;
  let lines = String.split_on_char '\n' (String.trim (Buffer.contents csv)) in
  Alcotest.(check int) "header + one row per event" 3 (List.length lines);
  Alcotest.(check string)
    "header" "seq,ts_us,class,event,pkt,a,b,detail" (List.hd lines);
  let txt = Buffer.create 128 in
  Trace.to_text txt t;
  Alcotest.(check bool) "text mentions nic-rx" true
    (String.length (Buffer.contents txt) > 0)

(* --- JSON parser ------------------------------------------------------- *)

let test_json_parser () =
  (match Json.parse {| {"a": [1, 2.5, true, null, "x\ny"], "b": {}} |} with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("valid JSON rejected: " ^ e));
  (match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated JSON accepted");
  match Json.parse "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

(* --- metrics ----------------------------------------------------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "rx.frames" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter value" 5 (Metrics.counter_value c);
  let c' = Metrics.counter m "rx.frames" in
  Metrics.incr c';
  Alcotest.(check int) "same name, same counter" 6 (Metrics.counter_value c);
  Metrics.gauge m "a.gauge" (fun () -> 7.5);
  let h = Metrics.histogram m "lat" in
  Metrics.observe h 10.;
  Metrics.observe h 20.;
  let snap = Metrics.snapshot m in
  let names = List.map fst snap in
  Alcotest.(check (list string))
    "snapshot sorted by name"
    (List.sort compare names) names;
  Alcotest.(check (float 1e-9)) "gauge sampled" 7.5 (List.assoc "a.gauge" snap);
  Alcotest.(check (float 1e-9)) "counter" 6. (List.assoc "rx.frames" snap);
  Alcotest.(check (float 1e-9)) "hist count" 2. (List.assoc "lat.count" snap);
  Alcotest.(check (float 1e-9)) "hist mean" 15. (List.assoc "lat.mean" snap)

(* --- simulation integration ------------------------------------------- *)

let seed = Common.default_seed
let dur = Lrp_engine.Time.ms 150.

let check_point msg (a : Fig3.point) (b : Fig3.point) =
  Alcotest.(check (float 0.)) (msg ^ ": offered") a.Fig3.offered b.Fig3.offered;
  Alcotest.(check (float 0.))
    (msg ^ ": delivered") a.Fig3.delivered b.Fig3.delivered;
  Alcotest.(check int) (msg ^ ": discards") a.Fig3.discards b.Fig3.discards;
  Alcotest.(check int) (msg ^ ": ipq_drops") a.Fig3.ipq_drops b.Fig3.ipq_drops

let test_tracing_is_free_of_side_effects () =
  (* The same seeded run must produce bit-identical datapoints whether the
     tracer is recording or not: tracing observes, never perturbs. *)
  List.iter
    (fun sys ->
      let plain = Fig3.measure ~seed sys ~rate:9_000. ~duration:dur in
      let traced, tracer, _ =
        Fig3.measure_traced ~seed sys ~rate:9_000. ~duration:dur
      in
      check_point (Common.system_name sys) plain traced;
      Alcotest.(check bool)
        (Common.system_name sys ^ ": recorded events")
        true
        (Trace.length tracer > 0))
    [ Common.Bsd; Common.Ni_lrp ]

let test_jobs_determinism_with_tracing () =
  (* fig3-style sweep: fan the same traced tasks over 1 and 4 domains and
     require identical points (per-kernel tracers cannot race). *)
  let tasks =
    [ (Common.Bsd, 6_000.); (Common.Bsd, 12_000.); (Common.Ni_lrp, 6_000.);
      (Common.Ni_lrp, 12_000.) ]
  in
  let sweep jobs =
    Common.sweep ~jobs
      (fun i (sys, rate) ->
        let p, _, _ =
          Fig3.measure_traced
            ~seed:(Common.job_seed ~seed ~index:i)
            sys ~rate ~duration:dur
        in
        p)
      tasks
  in
  List.iter2 (check_point "jobs 1 vs 4") (sweep 1) (sweep 4)

let test_stage_latency_report () =
  (* The paper's architectural claim, visible in the stage breakdown:
     BSD does protocol work in software interrupts; LRP does it in the
     receiver's context. *)
  let module S = Lrp_stats.Stats.Samples in
  let stages sys =
    let _, tracer, _ = Fig3.measure_traced ~seed sys ~rate:8_000. ~duration:dur in
    let r = Trace.Report.stage_latency (Trace.events tracer) in
    Alcotest.(check bool)
      (Common.system_name sys ^ ": packets traced")
      true (r.Trace.Report.packets > 0);
    r.Trace.Report.stages
  in
  let bsd = stages Common.Bsd in
  let softint = List.assoc "softint-proto" bsd in
  Alcotest.(check bool) "BSD: softint-proto present" true (S.count softint > 0);
  Alcotest.(check bool) "BSD: softint-proto > 0us" true (S.mean softint > 0.);
  Alcotest.(check int)
    "BSD: no proc-proto" 0
    (S.count (List.assoc "proc-proto" bsd));
  let lrp = stages Common.Ni_lrp in
  Alcotest.(check int)
    "NI-LRP: no softint-proto" 0
    (S.count (List.assoc "softint-proto" lrp));
  let proc = List.assoc "proc-proto" lrp in
  Alcotest.(check bool) "NI-LRP: proc-proto present" true (S.count proc > 0);
  Alcotest.(check bool) "NI-LRP: proc-proto > 0us" true (S.mean proc > 0.)

let test_kernel_metrics_snapshot () =
  let _, _, snap = Fig3.measure_traced ~seed Common.Bsd ~rate:8_000. ~duration:dur in
  let get k =
    match List.assoc_opt k snap with
    | Some v -> v
    | None -> Alcotest.fail ("metric missing: " ^ k)
  in
  Alcotest.(check bool) "rx_frames counted" true (get "kernel.rx_frames" > 0.);
  Alcotest.(check bool)
    "deliveries counted" true
    (get "kernel.udp_delivered" > 0.);
  Alcotest.(check bool) "nic saw packets" true (get "nic.rx_packets" > 0.);
  Alcotest.(check bool)
    "cpu softint time accrued" true
    (get "cpu.time_soft_us" > 0.);
  let names = List.map fst snap in
  Alcotest.(check (list string))
    "snapshot sorted" (List.sort compare names) names

let suite =
  [ Alcotest.test_case "ring overwrite" `Quick test_ring_overwrite;
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "class filter" `Quick test_class_filter;
    Alcotest.test_case "event ordering" `Quick test_event_ordering;
    Alcotest.test_case "chrome JSON round-trips" `Quick test_chrome_roundtrip;
    Alcotest.test_case "chrome spans balanced after overwrite" `Quick
      test_chrome_spans_balanced_under_overwrite;
    Alcotest.test_case "csv and text sinks" `Quick test_csv_and_text;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "tracing does not perturb results" `Quick
      test_tracing_is_free_of_side_effects;
    Alcotest.test_case "traced sweep: jobs 1 = jobs 4" `Quick
      test_jobs_determinism_with_tracing;
    Alcotest.test_case "stage-latency report (BSD vs NI-LRP)" `Quick
      test_stage_latency_report;
    Alcotest.test_case "kernel metrics snapshot" `Quick
      test_kernel_metrics_snapshot ]
