(* Tests for the trace-driven invariant oracle: clean streams pass,
   specific violations are caught, duplication-by-the-network is tolerated,
   and — crucially — a deliberately-buggy mock kernel that double-delivers
   a packet is flagged, guarding against a vacuously-green checker. *)

open Lrp_check
module Trace = Lrp_trace.Trace

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A tracer with a dummy clock; events carry the times we fake. *)
let tracer ?capacity () =
  let tr = Trace.create ?capacity ~name:"mock" ~now:(fun () -> 0.) () in
  Trace.set_enabled tr true;
  tr

(* --- a tiny mock kernel ------------------------------------------------- *)

(* Receives packets and emits the lifecycle a correct LRP-style kernel
   would: nic-rx, demux, proto-deliver, sock-enqueue, copyout.  [bug]
   selects a deliberate misbehaviour. *)
type bug = Correct | Double_deliver of int | Ghost_enqueue of int

let mock_kernel ?(bug = Correct) tr pkts =
  List.iter
    (fun pkt ->
      Trace.nic_rx tr ~pkt ~bytes:100;
      Trace.demux tr ~pkt ~chan:1 ~flow:7;
      Trace.proto_deliver tr ~pkt ~conn:(-1) ~in_proc:true;
      Trace.sock_enqueue tr ~pkt ~sock:3;
      (match bug with
       | Double_deliver p when p = pkt ->
           (* The bug under test: one packet deposited twice. *)
           Trace.sock_enqueue tr ~pkt ~sock:3
       | Correct | Double_deliver _ | Ghost_enqueue _ -> ());
      Trace.syscall_copyout tr ~pkt ~sock:3 ~bytes:100)
    pkts;
  match bug with
  | Ghost_enqueue p ->
      (* Deliver a packet that never arrived. *)
      Trace.proto_deliver tr ~pkt:p ~conn:(-1) ~in_proc:true;
      Trace.sock_enqueue tr ~pkt:p ~sock:3
  | Correct | Double_deliver _ -> ()

let test_clean_stream_passes () =
  let tr = tracer () in
  mock_kernel tr [ 1; 2; 3; 4; 5 ];
  let v = Oracle.check_tracer ~require_demux:true tr in
  Alcotest.(check bool) "clean stream is ok" true v.Oracle.ok;
  Alcotest.(check int) "5 packets" 5 v.Oracle.packets;
  Alcotest.(check int) "5 arrivals" 5 v.Oracle.arrivals;
  Alcotest.(check int) "5 enqueued" 5 v.Oracle.enqueued

let test_mock_buggy_kernel_flagged () =
  (* The oracle's own self-check: a kernel that double-delivers packet 2
     must be caught. *)
  let tr = tracer () in
  mock_kernel ~bug:(Double_deliver 2) tr [ 1; 2; 3 ];
  let v = Oracle.check_tracer tr in
  Alcotest.(check bool) "double delivery flagged" false v.Oracle.ok;
  Alcotest.(check bool) "violation names double delivery of packet 2" true
    (List.exists
       (fun s -> contains_sub s "double delivery" && contains_sub s "packet 2")
       v.Oracle.violations)

let test_ghost_enqueue_flagged () =
  let tr = tracer () in
  mock_kernel ~bug:(Ghost_enqueue 99) tr [ 1; 2 ];
  let v = Oracle.check_tracer tr in
  Alcotest.(check bool) "ghost packet flagged" false v.Oracle.ok

let test_network_duplication_tolerated () =
  (* The network presented packet 1 twice; delivering it twice is correct
     behaviour, not a violation. *)
  let tr = tracer () in
  let deliver () =
    Trace.nic_rx tr ~pkt:1 ~bytes:100;
    Trace.demux tr ~pkt:1 ~chan:1 ~flow:7;
    Trace.proto_deliver tr ~pkt:1 ~conn:(-1) ~in_proc:true;
    Trace.sock_enqueue tr ~pkt:1 ~sock:3
  in
  deliver ();
  deliver ();
  let v = Oracle.check_tracer ~require_demux:true tr in
  Alcotest.(check bool) "dup-arrival dup-delivery is ok" true v.Oracle.ok;
  (* A third delivery of a twice-arrived packet is a bug again. *)
  Trace.sock_enqueue tr ~pkt:1 ~sock:3;
  let v = Oracle.check_tracer ~require_demux:true tr in
  Alcotest.(check bool) "over-delivery beyond arrivals flagged" false
    v.Oracle.ok

let test_enqueue_without_proto_flagged () =
  let tr = tracer () in
  Trace.nic_rx tr ~pkt:1 ~bytes:100;
  Trace.sock_enqueue tr ~pkt:1 ~sock:3;
  let v = Oracle.check_tracer tr in
  Alcotest.(check bool) "enqueue without proto-deliver flagged" false
    v.Oracle.ok

let test_require_demux () =
  let tr = tracer () in
  Trace.nic_rx tr ~pkt:1 ~bytes:100;
  Trace.proto_deliver tr ~pkt:1 ~conn:(-1) ~in_proc:false;
  Trace.sock_enqueue tr ~pkt:1 ~sock:3;
  (* BSD has no demux step: fine without, flagged with. *)
  Alcotest.(check bool) "ok without require_demux" true
    (Oracle.check_tracer ~require_demux:false tr).Oracle.ok;
  Alcotest.(check bool) "flagged with require_demux" false
    (Oracle.check_tracer ~require_demux:true tr).Oracle.ok

let test_copyout_exceeding_enqueues_flagged () =
  let tr = tracer () in
  mock_kernel tr [ 1 ];
  Trace.syscall_copyout tr ~pkt:1 ~sock:3 ~bytes:100;
  let v = Oracle.check_tracer tr in
  Alcotest.(check bool) "double copyout flagged" false v.Oracle.ok

let test_ring_wrap_inconclusive () =
  let tr = tracer ~capacity:4 () in
  mock_kernel tr [ 1; 2; 3; 4; 5 ];
  let v = Oracle.check_tracer tr in
  Alcotest.(check bool) "wrapped ring reported" true v.Oracle.ring_wrapped;
  Alcotest.(check bool) "wrapped ring does not fail" true v.Oracle.ok

(* --- oracle against the real kernels (fault-free smoke) ----------------- *)

let test_real_kernels_pass_oracle () =
  let open Lrp_sim in
  let open Lrp_kernel in
  List.iter
    (fun arch ->
      let cfg = Kernel.default_config arch in
      let w, client, server = Lrp_workload.World.pair ~cfg () in
      let tr = Kernel.tracer server in
      Trace.set_enabled tr true;
      Trace.set_filter tr [ Trace.Packet_events ];
      ignore
        (Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
             let sock = Api.socket_dgram server in
             Api.bind server sock ~owner:(Some self) ~port:5000;
             for _ = 1 to 20 do
               ignore (Api.recvfrom server ~self sock)
             done));
      ignore
        (Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
             let sock = Api.socket_dgram client in
             ignore (Api.bind_ephemeral client sock ~owner:(Some self));
             for _ = 1 to 20 do
               Api.sendto client ~self sock
                 ~dst:(Kernel.ip_address server, 5000)
                 (Lrp_net.Payload.synthetic 64);
               Proc.sleep_for (Lrp_engine.Time.ms 1.)
             done));
      Lrp_workload.World.run w ~until:(Lrp_engine.Time.sec 1.);
      let require_demux = arch <> Kernel.Bsd in
      let v = Oracle.check_tracer ~require_demux tr in
      Alcotest.(check bool)
        (Printf.sprintf "%s: oracle green on fault-free UDP (%s)"
           (Kernel.arch_name arch)
           (String.concat "; " v.Oracle.violations))
        true v.Oracle.ok;
      Alcotest.(check bool)
        (Printf.sprintf "%s: oracle saw traffic" (Kernel.arch_name arch))
        true
        (v.Oracle.arrivals >= 20 && v.Oracle.enqueued >= 20))
    [ Kernel.Bsd; Kernel.Soft_lrp; Kernel.Ni_lrp; Kernel.Early_demux ]

let suite =
  [ Alcotest.test_case "clean stream passes" `Quick test_clean_stream_passes;
    Alcotest.test_case "mock buggy kernel (double delivery) flagged" `Quick
      test_mock_buggy_kernel_flagged;
    Alcotest.test_case "ghost enqueue flagged" `Quick test_ghost_enqueue_flagged;
    Alcotest.test_case "network duplication tolerated" `Quick
      test_network_duplication_tolerated;
    Alcotest.test_case "enqueue without proto-deliver flagged" `Quick
      test_enqueue_without_proto_flagged;
    Alcotest.test_case "require_demux distinguishes BSD from LRP" `Quick
      test_require_demux;
    Alcotest.test_case "copyout beyond enqueues flagged" `Quick
      test_copyout_exceeding_enqueues_flagged;
    Alcotest.test_case "wrapped ring is inconclusive, not red" `Quick
      test_ring_wrap_inconclusive;
    Alcotest.test_case "real kernels pass the oracle (fault-free)" `Quick
      test_real_kernels_pass_oracle ]
