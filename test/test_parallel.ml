(* Tests for the domain pool and for the determinism contract of
   parallel experiment sweeps. *)

open Lrp_parallel

let test_map_order () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "results in submission order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs))

let test_map_empty_and_singleton () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map pool succ [ 7 ]))

let test_exception_propagates () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.check_raises "worker exception reaches the caller"
        (Failure "boom")
        (fun () ->
          ignore
            (Pool.map pool
               (fun x -> if x = 5 then failwith "boom" else x)
               (List.init 10 Fun.id)));
      (* The pool survives a failed batch. *)
      Alcotest.(check (list int)) "pool reusable after failure" [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_map_reduce () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check int) "sum of squares" 285
        (Pool.map_reduce pool
           ~map:(fun x -> x * x)
           ~reduce:( + ) ~init:0
           (List.init 10 Fun.id)))

let test_single_domain_inline () =
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "one domain" 1 (Pool.domains pool);
      Alcotest.(check (list string)) "inline map" [ "1"; "2"; "3" ]
        (Pool.map pool string_of_int [ 1; 2; 3 ]))

let test_pool_reuse_across_batches () =
  Pool.with_pool ~domains:2 (fun pool ->
      for i = 1 to 5 do
        Alcotest.(check (list int))
          (Printf.sprintf "batch %d" i)
          (List.init 20 (fun x -> x + i))
          (Pool.map pool (fun x -> x + i) (List.init 20 Fun.id))
      done)

(* Workers are a process-wide shared set: repeated pool brackets must
   reuse the spawned domains, not respawn them. *)
let test_workers_survive_pool_brackets () =
  Pool.with_pool ~domains:3 (fun p -> ignore (Pool.map p succ [ 1; 2; 3 ]));
  let spawned = Pool.spawned_domains () in
  Alcotest.(check bool) "workers were spawned" true (spawned >= 2);
  for _ = 1 to 3 do
    Pool.with_pool ~domains:3 (fun p -> ignore (Pool.map p succ [ 1; 2; 3 ]))
  done;
  Alcotest.(check int) "no respawn across brackets" spawned
    (Pool.spawned_domains ())

(* --- team epoch barrier ------------------------------------------------ *)

let test_team_runs_every_member () =
  let team = Team.create ~size:3 in
  Alcotest.(check int) "size" 3 (Team.size team);
  let hits = Array.make 3 0 in
  for _ = 1 to 50 do
    Team.run team (fun i -> hits.(i) <- hits.(i) + 1)
  done;
  Team.shutdown team;
  Alcotest.(check (array int)) "every member ran every epoch"
    [| 50; 50; 50 |] hits

let test_team_exception_and_shutdown () =
  let team = Team.create ~size:2 in
  Alcotest.check_raises "member exception reaches the caller"
    (Failure "member-boom")
    (fun () -> Team.run team (fun i -> if i = 1 then failwith "member-boom"));
  let ok = Array.make 2 false in
  Team.run team (fun i -> ok.(i) <- true);
  Alcotest.(check (array bool)) "team survives a failed epoch"
    [| true; true |] ok;
  Team.shutdown team;
  Team.shutdown team;
  Alcotest.check_raises "run after shutdown is an error"
    (Invalid_argument "Team.run: team is shut down")
    (fun () -> Team.run team ignore)

let test_team_size_one_inline () =
  let team = Team.create ~size:0 in
  Alcotest.(check int) "size clamps to 1" 1 (Team.size team);
  let ran = ref false in
  Team.run team (fun i ->
      Alcotest.(check int) "caller is member 0" 0 i;
      ran := true);
  Alcotest.(check bool) "ran inline" true !ran;
  Team.shutdown team

(* The tentpole contract: a sweep's results do not depend on how many
   domains it ran on, because each simulation runs in its own engine
   seeded from (root seed, job index). *)
let test_fig3_jobs_deterministic () =
  let open Lrp_experiments in
  let r1 = Fig3.run ~quick:true ~jobs:1 () in
  let r4 = Fig3.run ~quick:true ~jobs:4 () in
  Alcotest.(check bool) "fig3 quick: jobs 1 = jobs 4" true (r1 = r4)

let test_table2_jobs_deterministic () =
  let open Lrp_experiments in
  let r1 = Table2.run ~quick:true ~jobs:1 () in
  let r3 = Table2.run ~quick:true ~jobs:3 () in
  Alcotest.(check bool) "table2 quick: jobs 1 = jobs 3" true (r1 = r3)

(* The same contract under fault injection: a fault-injected sweep (one
   seeded fuzz-style run per datapoint) must be identical at any job
   count.  Each run's fault draws come from its own fabric's split RNG,
   never from shared state, so domain interleaving cannot leak in. *)
let faulty_datapoint seed =
  let open Lrp_engine in
  let open Lrp_kernel in
  let open Lrp_workload in
  let cfg = Kernel.default_config Kernel.Ni_lrp in
  let w, client, server = World.pair ~seed ~cfg () in
  let script = Lrp_check.Fault_script.generate ~seed ~duration_us:(Time.ms 100.) in
  Lrp_check.Fault_script.apply script ~fabric:(World.fabric w)
    ~engine:(World.engine w);
  let sink = Blast.start_sink server ~port:9000 () in
  let src =
    Blast.start_source (World.engine w) (Kernel.nic client)
      ~src:(Kernel.ip_address client)
      ~dst:(Kernel.ip_address server, 9000)
      ~rate:2_000. ~size:64 ~until:(Time.ms 100.) ()
  in
  World.run w ~until:(Time.ms 150.);
  let fs = Lrp_net.Fabric.fault_stats (World.fabric w) in
  (seed, src.Blast.sent, sink.Blast.received, fs.Lrp_net.Fabric.fault_lost,
   fs.Lrp_net.Fabric.duplicated, fs.Lrp_net.Fabric.corrupted,
   fs.Lrp_net.Fabric.reordered)

let test_fault_sweep_jobs_deterministic () =
  let seeds = List.init 8 Fun.id in
  let sweep domains =
    Pool.with_pool ~domains (fun pool -> Pool.map pool faulty_datapoint seeds)
  in
  let r1 = sweep 1 and r4 = sweep 4 in
  Alcotest.(check bool)
    "fault-injected sweep: jobs 1 = jobs 4 per datapoint" true (r1 = r4);
  (* And the runs actually exercised the fault pipeline. *)
  Alcotest.(check bool) "sweep saw fault activity" true
    (List.exists (fun (_, _, _, l, d, c, r) -> l + d + c + r > 0) r1)

let suite =
  [ Alcotest.test_case "map keeps submission order" `Quick test_map_order;
    Alcotest.test_case "map on empty and singleton lists" `Quick
      test_map_empty_and_singleton;
    Alcotest.test_case "worker exceptions propagate" `Quick
      test_exception_propagates;
    Alcotest.test_case "map_reduce folds in order" `Quick test_map_reduce;
    Alcotest.test_case "one-domain pool runs inline" `Quick
      test_single_domain_inline;
    Alcotest.test_case "pool is reusable across batches" `Quick
      test_pool_reuse_across_batches;
    Alcotest.test_case "pool brackets reuse spawned domains" `Quick
      test_workers_survive_pool_brackets;
    Alcotest.test_case "team barrier runs every member" `Quick
      test_team_runs_every_member;
    Alcotest.test_case "team exceptions and shutdown" `Quick
      test_team_exception_and_shutdown;
    Alcotest.test_case "size-one team runs inline" `Quick
      test_team_size_one_inline;
    Alcotest.test_case "fig3 results independent of jobs" `Slow
      test_fig3_jobs_deterministic;
    Alcotest.test_case "table2 results independent of jobs" `Slow
      test_table2_jobs_deterministic;
    Alcotest.test_case "fault-injected sweep independent of jobs" `Slow
      test_fault_sweep_jobs_deterministic ]
