(* Tests for the domain pool and for the determinism contract of
   parallel experiment sweeps. *)

open Lrp_parallel

let test_map_order () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "results in submission order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs))

let test_map_empty_and_singleton () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map pool succ [ 7 ]))

let test_exception_propagates () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.check_raises "worker exception reaches the caller"
        (Failure "boom")
        (fun () ->
          ignore
            (Pool.map pool
               (fun x -> if x = 5 then failwith "boom" else x)
               (List.init 10 Fun.id)));
      (* The pool survives a failed batch. *)
      Alcotest.(check (list int)) "pool reusable after failure" [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_map_reduce () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check int) "sum of squares" 285
        (Pool.map_reduce pool
           ~map:(fun x -> x * x)
           ~reduce:( + ) ~init:0
           (List.init 10 Fun.id)))

let test_single_domain_inline () =
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "one domain" 1 (Pool.domains pool);
      Alcotest.(check (list string)) "inline map" [ "1"; "2"; "3" ]
        (Pool.map pool string_of_int [ 1; 2; 3 ]))

let test_pool_reuse_across_batches () =
  Pool.with_pool ~domains:2 (fun pool ->
      for i = 1 to 5 do
        Alcotest.(check (list int))
          (Printf.sprintf "batch %d" i)
          (List.init 20 (fun x -> x + i))
          (Pool.map pool (fun x -> x + i) (List.init 20 Fun.id))
      done)

(* The tentpole contract: a sweep's results do not depend on how many
   domains it ran on, because each simulation runs in its own engine
   seeded from (root seed, job index). *)
let test_fig3_jobs_deterministic () =
  let open Lrp_experiments in
  let r1 = Fig3.run ~quick:true ~jobs:1 () in
  let r4 = Fig3.run ~quick:true ~jobs:4 () in
  Alcotest.(check bool) "fig3 quick: jobs 1 = jobs 4" true (r1 = r4)

let test_table2_jobs_deterministic () =
  let open Lrp_experiments in
  let r1 = Table2.run ~quick:true ~jobs:1 () in
  let r3 = Table2.run ~quick:true ~jobs:3 () in
  Alcotest.(check bool) "table2 quick: jobs 1 = jobs 3" true (r1 = r3)

let suite =
  [ Alcotest.test_case "map keeps submission order" `Quick test_map_order;
    Alcotest.test_case "map on empty and singleton lists" `Quick
      test_map_empty_and_singleton;
    Alcotest.test_case "worker exceptions propagate" `Quick
      test_exception_propagates;
    Alcotest.test_case "map_reduce folds in order" `Quick test_map_reduce;
    Alcotest.test_case "one-domain pool runs inline" `Quick
      test_single_domain_inline;
    Alcotest.test_case "pool is reusable across batches" `Quick
      test_pool_reuse_across_batches;
    Alcotest.test_case "fig3 results independent of jobs" `Slow
      test_fig3_jobs_deterministic;
    Alcotest.test_case "table2 results independent of jobs" `Slow
      test_table2_jobs_deterministic ]
