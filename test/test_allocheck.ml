(* Tests for lrp_allocheck: every finding kind fires on its compiled
   fixture, the eliminate_ref and static-closure negatives hold,
   suppressions claim (and stale ones report), the escape pass flags
   publication and honours sanctions, the JSON report matches the
   committed golden file, and — the gate itself — the live tree is
   finding-free.

   Unlike the lint fixtures, these are *compiled*: the analyzer reads
   the .cmt output of the test/allocheck_fixtures libraries, so the
   fixture runs exercise the same cmt-loading path as the live gate. *)

open Lrp_allocheck
module Finding = Lrp_report.Finding

(* Locate the repo root from wherever the test binary runs (dune runtest
   uses _build/default/test; `dune exec test/main.exe` uses the caller's
   cwd).  ROADMAP.md is not copied into _build, so requiring it pins the
   real source root rather than the build mirror. *)
let repo_root () =
  let rec up dir n =
    if n = 0 then Alcotest.fail "cannot locate repo root from cwd"
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "ROADMAP.md")
    then dir
    else up (Filename.concat dir Filename.parent_dir_name) (n - 1)
  in
  up (Sys.getcwd ()) 8

let fixture_cmts = "_build/default/test/allocheck_fixtures"

let alloc_entries =
  [
    "Aclo.capture"; "Aclo.static_fn"; "Aclo.partial";
    "Abox.ret_box"; "Abox.fresh_arg"; "Abox.passthrough";
    "Ablocks.pair"; "Ablocks.mk"; "Ablocks.update"; "Ablocks.some";
    "Ablocks.cons"; "Ablocks.lit"; "Ablocks.empty_arr"; "Ablocks.none";
    "Aref.escaping"; "Aref.eliminated"; "Aref.buffer";
    "Acall.trusted"; "Acall.fmt_path"; "Acall.boxed"; "Acall.unboxed";
    "Asup.cold_path"; "Asup.trailing"; "Asup.stale";
  ]

let fixture_cfg =
  {
    Aconfig.empty with
    Aconfig.cmt_dirs = [ fixture_cmts ];
    Aconfig.entries = alloc_entries;
    Aconfig.follow_dirs = [ "test/allocheck_fixtures" ];
    Aconfig.escape_dirs = [ "test/allocheck_fixtures/esc" ];
    Aconfig.cross_cell_fields = [ "ob_ready" ];
    Aconfig.escape_sanctions = [ "Aesc.outbox" ];
  }

(* One driver run shared by the per-kind tests. *)
let master = lazy (Adriver.run ~root:(repo_root ()) fixture_cfg)

let in_file name =
  let findings, _ = Lazy.force master in
  List.filter (fun f -> Filename.basename f.Finding.file = name) findings

let rules_lines fs = List.map (fun f -> (f.Finding.rule, f.Finding.line)) fs

let check_rl name expected fs =
  Alcotest.(check (list (pair string int))) name expected (rules_lines fs)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec at i = i + n <= m && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* --- one fixture per finding kind -------------------------------------- *)

let test_clo () =
  check_rl "capturing closure and partial application fire; static lambda does not"
    [ ("CLO", 6); ("CLO", 15) ]
    (in_file "aclo.ml")

let test_box () =
  let fs = in_file "abox.ml" in
  check_rl
    "bare-float return and freshly computed float argument fire; \
     variable passthrough does not"
    [ ("BOX", 9); ("BOX", 11); ("BOX", 11) ]
    fs;
  Alcotest.(check bool) "return finding names the callee" true
    (List.exists (fun f -> contains f.Finding.msg "Abox.calc") fs)

let test_blocks () =
  check_rl
    "tuple, record, functional update, Some, cons and array literal fire; \
     empty array and None do not"
    [ ("TUP", 5); ("REC", 7); ("REC", 9); ("VAR", 11); ("VAR", 13); ("ARR", 15) ]
    (in_file "ablocks.ml")

let test_ref () =
  check_rl "escaping ref and Bytes.create fire; eliminate_ref loop does not"
    [ ("REF", 4); ("REF", 16) ]
    (in_file "aref.ml")

let test_call () =
  check_rl
    "transitively reached Array.make, format machinery and boxed Int64 \
     arithmetic fire; exempt Int64.compare does not"
    [ ("CALL", 3); ("FMT", 7); ("CALL", 9) ]
    (in_file "acall.ml")

let test_sup () =
  check_rl "claimed suppressions silence; the stale one is a finding"
    [ ("SUP", 10) ]
    (in_file "asup.ml")

(* --- driver scoping ----------------------------------------------------- *)

let test_assume () =
  let cfg =
    {
      fixture_cfg with
      Aconfig.entries = [ "Acall.trusted" ];
      Aconfig.assume = [ "Acall.helper" ];
      Aconfig.escape_dirs = [];
    }
  in
  let findings, stats = Adriver.run ~root:(repo_root ()) cfg in
  check_rl "assumed boundary is not descended into" [] findings;
  Alcotest.(check int) "only the entry is analyzed" 1
    stats.Adriver.funcs_analyzed

let test_allocating_extra () =
  let cfg =
    {
      fixture_cfg with
      Aconfig.entries = [ "Acall.unboxed" ];
      Aconfig.escape_dirs = [];
      Aconfig.allocating_extra = [ "Int64.compare" ];
    }
  in
  let findings, _ = Adriver.run ~root:(repo_root ()) cfg in
  check_rl "conf-extended call table fires" [ ("CALL", 11) ] findings

let test_cfg_unresolved () =
  let cfg =
    { Aconfig.empty with Aconfig.cmt_dirs = [ fixture_cmts ];
      Aconfig.entries = [ "Nowhere.nothing" ] }
  in
  let findings, _ = Adriver.run ~root:(repo_root ()) cfg in
  (match findings with
  | [ f ] ->
      Alcotest.(check string) "rule" "CFG" f.Finding.rule;
      Alcotest.(check string) "reported against the conf" "allocheck.conf"
        f.Finding.file
  | fs -> Alcotest.failf "expected one CFG finding, got %d" (List.length fs))

(* --- escape pass -------------------------------------------------------- *)

let test_escape () =
  let fs = in_file "aesc.ml" in
  check_rl
    "global table, global array, field-chain root, cross-cell field and \
     DLS fire; locals, sanctioned and suppressed writers do not"
    [ ("ESC", 15); ("ESC", 17); ("ESC", 19); ("ESC", 21); ("ESC", 36) ]
    fs;
  let msg n =
    match List.nth_opt fs n with
    | Some f -> f.Finding.msg
    | None -> ""
  in
  Alcotest.(check bool) "names the published global" true
    (contains (msg 0) "'shared'");
  Alcotest.(check bool) "root traced through the field chain" true
    (contains (msg 2) "'gbox'");
  Alcotest.(check bool) "cross-cell field named" true
    (contains (msg 3) "'ob_ready'");
  Alcotest.(check bool) "DLS store flagged" true
    (contains (msg 4) "Domain.DLS.set")

(* --- conf parser -------------------------------------------------------- *)

let test_conf_parse () =
  let text =
    "# comment\n\
     cmt-dir _build/default/lib\n\
     entry Engine.run_batch   # trailing comment\n\
     follow lib/engine\n\
     assume Trace.dump\n\
     escape-dir lib/net\n\
     cross-cell-field ob_pkt\n\
     escape-sanction Fabric.uplink_forward\n\
     allocating List.map\n"
  in
  (match Aconfig.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok c ->
      Alcotest.(check (list string)) "cmt dirs" [ "_build/default/lib" ]
        c.Aconfig.cmt_dirs;
      Alcotest.(check (list string)) "entries" [ "Engine.run_batch" ]
        c.Aconfig.entries;
      Alcotest.(check (list string)) "follow" [ "lib/engine" ]
        c.Aconfig.follow_dirs;
      Alcotest.(check (list string)) "assume" [ "Trace.dump" ] c.Aconfig.assume;
      Alcotest.(check (list string)) "escape dirs" [ "lib/net" ]
        c.Aconfig.escape_dirs;
      Alcotest.(check (list string)) "cross fields" [ "ob_pkt" ]
        c.Aconfig.cross_cell_fields;
      Alcotest.(check (list string)) "sanctions" [ "Fabric.uplink_forward" ]
        c.Aconfig.escape_sanctions;
      Alcotest.(check (list string)) "allocating" [ "List.map" ]
        c.Aconfig.allocating_extra);
  match Aconfig.parse "entry A.b\nbogus-directive x\n" with
  | Error e ->
      Alcotest.(check bool) "error names the line" true (contains e "line 2")
  | Ok _ -> Alcotest.fail "unknown directive must not parse"

(* --- report format ------------------------------------------------------ *)

let test_golden_json () =
  let findings, _ = Lazy.force master in
  let got = Finding.to_json (Finding.sort findings) in
  let golden_path =
    Filename.concat (repo_root ()) "test/allocheck_fixtures/golden.json"
  in
  (* ALLOCHECK_GOLDEN_REGEN=1 dune test rewrites the golden file in
     place; review the diff before committing it. *)
  if Sys.getenv_opt "ALLOCHECK_GOLDEN_REGEN" <> None then
    Out_channel.with_open_bin golden_path (fun oc ->
        Out_channel.output_string oc got);
  let want = In_channel.with_open_bin golden_path In_channel.input_all in
  (match Lrp_trace.Json.parse got with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "allocheck JSON does not parse: %s" e);
  Alcotest.(check string) "golden JSON report" want got

(* --- the gate: zero findings on the live tree --------------------------- *)

let test_self_check () =
  let root = repo_root () in
  let cfg =
    match Aconfig.load (Filename.concat root "allocheck.conf") with
    | Ok c -> c
    | Error e -> Alcotest.failf "allocheck.conf does not load: %s" e
  in
  let findings, stats = Adriver.run ~root cfg in
  (* Guard against a silently-degenerate run: the live gate covers many
     entry points, their transitive callees, and every cell-resident
     function. *)
  Alcotest.(check bool) "loaded a real build (.cmt count)" true
    (stats.Adriver.cmt_files >= 80);
  Alcotest.(check bool) "walked the hot paths" true
    (stats.Adriver.funcs_analyzed >= 90);
  Alcotest.(check bool) "escape-checked the cell dirs" true
    (stats.Adriver.escape_funcs >= 500);
  match findings with
  | [] -> ()
  | fs ->
      Alcotest.failf "live tree has %d allocheck findings:\n%s"
        (List.length fs)
        (String.concat "\n" (List.map Finding.to_text fs))

let suite =
  [
    Alcotest.test_case "CLO fires on captures and partial application" `Quick
      test_clo;
    Alcotest.test_case "BOX fires on float boundaries" `Quick test_box;
    Alcotest.test_case "TUP/REC/VAR/ARR fire on block construction" `Quick
      test_blocks;
    Alcotest.test_case "REF fires unless eliminate_ref applies" `Quick
      test_ref;
    Alcotest.test_case "CALL/FMT fire through the call graph" `Quick test_call;
    Alcotest.test_case "unused alloc suppression is a finding" `Quick test_sup;
    Alcotest.test_case "assume cuts the walk at the boundary" `Quick
      test_assume;
    Alcotest.test_case "allocating directive extends the call table" `Quick
      test_allocating_extra;
    Alcotest.test_case "unresolved entry is a CFG finding" `Quick
      test_cfg_unresolved;
    Alcotest.test_case "ESC fires on escapes, honours sanctions" `Quick
      test_escape;
    Alcotest.test_case "conf parser round-trips directives" `Quick
      test_conf_parse;
    Alcotest.test_case "golden JSON report" `Quick test_golden_json;
    Alcotest.test_case "self-check: live tree is allocation-clean" `Quick
      test_self_check;
  ]
