(* Multicast (paper section 3.1: group members share one NI channel) and
   connected-UDP filtering tests. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel
open Lrp_workload

let group = Packet.ip_of_quad 224 0 0 9

let archs = [ Kernel.Bsd; Kernel.Soft_lrp; Kernel.Ni_lrp ]

let test_two_members_one_host () =
  List.iter
    (fun arch ->
      let cfg = Kernel.default_config arch in
      let w, client, server = World.pair ~cfg () in
      let got_a = ref 0 and got_b = ref 0 in
      let member counter name =
        ignore
          (Cpu.spawn (Kernel.cpu server) ~name (fun self ->
               let sock = Api.socket_dgram server in
               Api.join_group server sock ~owner:(Some self) ~group ~port:6666;
               for _ = 1 to 3 do
                 let dg = Api.recvfrom server ~self sock in
                 counter := !counter + Payload.length dg.Api.dg_payload
               done))
      in
      member got_a "member-a";
      member got_b "member-b";
      ignore
        (Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
             let sock = Api.socket_dgram client in
             ignore (Api.bind_ephemeral client sock ~owner:(Some self));
             for _ = 1 to 3 do
               Api.sendto client ~self sock ~dst:(group, 6666)
                 (Payload.synthetic 100);
               Proc.sleep_for (Time.ms 5.)
             done));
      World.run w ~until:(Time.sec 1.);
      Alcotest.(check int)
        (Printf.sprintf "%s: member A got all datagrams" (Kernel.arch_name arch))
        300 !got_a;
      Alcotest.(check int)
        (Printf.sprintf "%s: member B got all datagrams" (Kernel.arch_name arch))
        300 !got_b)
    archs

let test_members_share_one_channel () =
  let cfg = Kernel.default_config Kernel.Ni_lrp in
  let w, _client, server = World.pair ~cfg () in
  let before = List.length (Kernel.channels server) in
  for i = 1 to 3 do
    ignore
      (Cpu.spawn (Kernel.cpu server) ~name:(Printf.sprintf "m%d" i) (fun self ->
           let sock = Api.socket_dgram server in
           Api.join_group server sock ~owner:(Some self) ~group ~port:6666;
           Proc.block (Proc.waitq "forever")))
  done;
  World.run w ~until:(Time.ms 10.);
  Alcotest.(check int) "three members added exactly one channel" (before + 1)
    (List.length (Kernel.channels server))

let test_multicast_across_hosts () =
  let cfg = Kernel.default_config Kernel.Soft_lrp in
  let w = World.make () in
  let sender = World.add_host w ~name:"sender" cfg in
  let h1 = World.add_host w ~name:"h1" cfg in
  let h2 = World.add_host w ~name:"h2" cfg in
  let got = ref 0 in
  List.iter
    (fun kern ->
      ignore
        (Cpu.spawn (Kernel.cpu kern) ~name:"member" (fun self ->
             let sock = Api.socket_dgram kern in
             Api.join_group kern sock ~owner:(Some self) ~group ~port:6666;
             let _dg = Api.recvfrom kern ~self sock in
             incr got)))
    [ h1; h2 ];
  ignore
    (Cpu.spawn (Kernel.cpu sender) ~name:"tx" (fun self ->
         let sock = Api.socket_dgram sender in
         ignore (Api.bind_ephemeral sender sock ~owner:(Some self));
         Api.sendto sender ~self sock ~dst:(group, 6666) (Payload.synthetic 10)));
  World.run w ~until:(Time.sec 1.);
  Alcotest.(check int) "both hosts' members received the datagram" 2 !got

let test_leave_group () =
  let cfg = Kernel.default_config Kernel.Ni_lrp in
  let w, client, server = World.pair ~cfg () in
  let got = ref 0 in
  let sock = Api.socket_dgram server in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"member" (fun self ->
         Api.join_group server sock ~owner:(Some self) ~group ~port:6666;
         let _dg = Api.recvfrom server ~self sock in
         incr got;
         Api.leave_group server sock ~port:6666));
  ignore
    (Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
         let csock = Api.socket_dgram client in
         ignore (Api.bind_ephemeral client csock ~owner:(Some self));
         Api.sendto client ~self csock ~dst:(group, 6666) (Payload.synthetic 10);
         Proc.sleep_for (Time.ms 50.);
         Api.sendto client ~self csock ~dst:(group, 6666) (Payload.synthetic 10)));
  World.run w ~until:(Time.sec 1.);
  Alcotest.(check int) "only the pre-leave datagram arrived" 1 !got;
  Alcotest.(check int) "channel deallocated after last leave" 0
    (Lrp_core.Chantab.udp_channel_count (Kernel.chantab server))

let test_join_requires_multicast_addr () =
  let cfg = Kernel.default_config Kernel.Ni_lrp in
  let w, _client, server = World.pair ~cfg () in
  let raised = ref false in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"p" (fun self ->
         let sock = Api.socket_dgram server in
         try Api.join_group server sock ~owner:(Some self)
               ~group:(Packet.ip_of_quad 10 0 0 1) ~port:6666
         with Invalid_argument _ -> raised := true));
  World.run w ~until:(Time.ms 10.);
  Alcotest.(check bool) "unicast group address rejected" true !raised

(* --- connected-UDP filtering ----------------------------------------- *)

let test_connected_udp_filters () =
  List.iter
    (fun arch ->
      let cfg = Kernel.default_config arch in
      let w = World.make () in
      let peer = World.add_host w ~name:"peer" cfg in
      let stranger = World.add_host w ~name:"stranger" cfg in
      let server = World.add_host w ~name:"server" cfg in
      let from = ref [] in
      ignore
        (Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
             let sock = Api.socket_dgram server in
             Api.bind server sock ~owner:(Some self) ~port:5000;
             (* Connect to the peer: datagrams from anyone else must be
                filtered out. *)
             Api.udp_connect server sock
               ~remote:(Kernel.ip_address peer, 7001);
             for _ = 1 to 2 do
               let dg = Api.recvfrom server ~self sock in
               from := fst dg.Api.dg_from :: !from
             done));
      let send kern ~port ~at =
        ignore
          (Engine.schedule (World.engine w) ~at (fun () ->
               ignore
                 (Nic.transmit (Kernel.nic kern)
                    (Packet.udp ~src:(Kernel.ip_address kern)
                       ~dst:(Kernel.ip_address server) ~src_port:port
                       ~dst_port:5000 (Payload.synthetic 14)))))
      in
      send stranger ~port:7001 ~at:(Time.ms 1.);
      send peer ~port:7001 ~at:(Time.ms 2.);
      send stranger ~port:7001 ~at:(Time.ms 3.);
      send peer ~port:7001 ~at:(Time.ms 4.);
      World.run w ~until:(Time.ms 500.);
      Alcotest.(check (list int))
        (Printf.sprintf "%s: only the peer's datagrams arrive"
           (Kernel.arch_name arch))
        [ Kernel.ip_address peer; Kernel.ip_address peer ]
        (List.rev !from);
      Alcotest.(check bool)
        (Printf.sprintf "%s: filtering counted" (Kernel.arch_name arch))
        true
        ((Kernel.stats server).Kernel.rx_wrong_peer >= 2))
    archs

let suite =
  [ Alcotest.test_case "two members, one host" `Quick test_two_members_one_host;
    Alcotest.test_case "members share one NI channel" `Quick
      test_members_share_one_channel;
    Alcotest.test_case "multicast across hosts" `Quick test_multicast_across_hosts;
    Alcotest.test_case "leave group deallocates the channel" `Quick
      test_leave_group;
    Alcotest.test_case "join requires a class-D address" `Quick
      test_join_requires_multicast_addr;
    Alcotest.test_case "connected UDP filters foreign peers" `Quick
      test_connected_udp_filters ]
