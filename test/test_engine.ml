(* Unit and property tests for the discrete-event engine. *)

open Lrp_engine

let check_float = Alcotest.(check (float 1e-9))

let test_time_units () =
  check_float "ms" 1_000. (Time.ms 1.);
  check_float "sec" 1_000_000. (Time.sec 1.);
  check_float "to_sec" 2.5 (Time.to_sec (Time.sec 2.5));
  check_float "to_ms" 42. (Time.to_ms (Time.us 42_000.))

let test_schedule_order () =
  let eng = Engine.create () in
  let log = ref [] in
  let record tag () = log := tag :: !log in
  ignore (Engine.schedule eng ~at:30. (record "c"));
  ignore (Engine.schedule eng ~at:10. (record "a"));
  ignore (Engine.schedule eng ~at:20. (record "b"));
  Engine.run eng ~until:100.;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock advanced to until" 100. (Engine.now eng)

let test_fifo_ties () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Engine.schedule eng ~at:5. (fun () -> log := i :: !log))
  done;
  Engine.run eng ~until:10.;
  Alcotest.(check (list int)) "fifo among equal keys"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule eng ~at:10. (fun () -> fired := true) in
  Alcotest.(check bool) "pending" true (Engine.is_pending eng h);
  Engine.cancel eng h;
  Alcotest.(check bool) "not pending" false (Engine.is_pending eng h);
  Engine.cancel eng h (* double cancel is a no-op *);
  Engine.run eng ~until:100.;
  Alcotest.(check bool) "cancelled event did not fire" false !fired;
  Alcotest.(check int) "no live events" 0 (Engine.pending_events eng)

let test_schedule_from_event () =
  let eng = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule eng ~at:10. (fun () ->
         times := Engine.now eng :: !times;
         ignore
           (Engine.schedule_after eng ~delay:5. (fun () ->
                times := Engine.now eng :: !times))));
  Engine.run eng ~until:100.;
  Alcotest.(check (list (float 1e-9))) "chained" [ 10.; 15. ] (List.rev !times)

let test_schedule_past_rejected () =
  let eng = Engine.create () in
  ignore (Engine.schedule eng ~at:50. (fun () -> ()));
  Engine.run eng ~until:60.;
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Engine.schedule: at=10.000 is before now=60.000")
    (fun () -> ignore (Engine.schedule eng ~at:10. (fun () -> ())))

let test_run_while () =
  let eng = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Engine.schedule_after eng ~delay:1. tick)
  in
  ignore (Engine.schedule eng ~at:0. tick);
  Engine.run_while eng (fun () -> !count < 5) ~until:1000.;
  Alcotest.(check int) "stopped by predicate" 5 !count

let test_run_while_clock_on_early_stop () =
  let eng = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Engine.schedule_after eng ~delay:1. tick)
  in
  ignore (Engine.schedule eng ~at:0. tick);
  Engine.run_while eng (fun () -> !count < 5) ~until:1000.;
  (* The predicate stopped the loop at the fifth event (t=4); the clock
     must not have jumped ahead to [until]. *)
  check_float "clock stays at the last fired event" 4. (Engine.now eng);
  (* ... so continuing the simulation before [until] is still legal. *)
  ignore (Engine.schedule eng ~at:10. (fun () -> ()));
  Engine.run eng ~until:20.;
  check_float "resumed run advances normally" 20. (Engine.now eng)

let test_reschedule_periodic () =
  let eng = Engine.create () in
  let count = ref 0 in
  let times = ref [] in
  let handle = ref None in
  let tick () =
    incr count;
    times := Engine.now eng :: !times;
    if !count < 4 then
      match !handle with
      | Some h -> Engine.reschedule_after eng h ~delay:10.
      | None -> ()
  in
  handle := Some (Engine.schedule eng ~at:10. tick);
  Engine.run eng ~until:1000.;
  Alcotest.(check int) "fired four times" 4 !count;
  Alcotest.(check (list (float 1e-9)))
    "periodic timestamps" [ 10.; 20.; 30.; 40. ] (List.rev !times);
  Alcotest.(check int) "nothing left pending" 0 (Engine.pending_events eng)

let test_reschedule_outside_callback () =
  let eng = Engine.create () in
  let h = Engine.schedule eng ~at:10. (fun () -> ()) in
  Alcotest.check_raises "re-arm only valid while firing"
    (Invalid_argument
       "Engine.reschedule: handle is not the currently-firing event")
    (fun () -> Engine.reschedule eng h ~at:20.)

let test_stale_handle_safety () =
  let eng = Engine.create () in
  (* Fire an event; its slot goes back on the free stack. *)
  let h1 = Engine.schedule eng ~at:10. (fun () -> ()) in
  Engine.run eng ~until:20.;
  Alcotest.(check bool) "fired handle no longer pending" false
    (Engine.is_pending eng h1);
  (* The very next schedule recycles that slot; the stale handle must not
     be able to touch the new occupant. *)
  let fired = ref false in
  let h2 = Engine.schedule eng ~at:30. (fun () -> fired := true) in
  Engine.cancel eng h1;
  Alcotest.(check bool) "stale cancel left the new event pending" true
    (Engine.is_pending eng h2);
  Engine.run eng ~until:40.;
  Alcotest.(check bool) "new event fired" true !fired

let test_events_executed () =
  let eng = Engine.create () in
  for i = 1 to 7 do
    ignore (Engine.schedule eng ~at:(float_of_int i) (fun () -> ()))
  done;
  Engine.run eng ~until:100.;
  Alcotest.(check int) "executed" 7 (Engine.events_executed eng)

(* --- property tests ------------------------------------------------- *)

let prop_heap_sorted =
  QCheck.Test.make ~count:300 ~name:"eheap pops keys in nondecreasing order"
    QCheck.(list (float_bound_exclusive 1e6))
    (fun keys ->
      let h = Eheap.create () in
      List.iteri (fun i k -> Eheap.add h ~key:k i) keys;
      let rec drain acc =
        match Eheap.pop h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      let out = drain [] in
      out = List.sort compare keys)

let prop_heap_fifo_on_equal =
  QCheck.Test.make ~count:200 ~name:"eheap is FIFO for equal keys"
    QCheck.(small_nat)
    (fun n ->
      let h = Eheap.create () in
      for i = 0 to n - 1 do
        Eheap.add h ~key:1. i
      done;
      let rec drain acc =
        match Eheap.pop h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      drain [] = List.init n (fun i -> i))

(* Model-based test of the mixed-operation behaviour: a stable sorted
   association list is the reference.  Few distinct keys force FIFO ties;
   long op lists push the heap past its initial 16 slots; occasional
   [clear]s check reuse after reset. *)
let prop_heap_model =
  QCheck.Test.make ~count:500 ~name:"eheap agrees with a sorted-list model"
    QCheck.(list small_nat)
    (fun ops ->
      let h = Eheap.create () in
      let model = ref [] in
      let next_id = ref 0 in
      let ok = ref true in
      let stable_insert key id =
        let rec ins = function
          | (k, v) :: tl when k <= key -> (k, v) :: ins tl
          | rest -> (key, id) :: rest
        in
        model := ins !model
      in
      List.iter
        (fun n ->
          if n mod 13 = 12 then begin
            Eheap.clear h;
            model := []
          end
          else if n mod 3 = 2 then begin
            let expect =
              match !model with
              | [] -> None
              | x :: tl ->
                  model := tl;
                  Some x
            in
            if Eheap.pop h <> expect then ok := false
          end
          else begin
            let key = float_of_int (n mod 8) in
            let id = !next_id in
            incr next_id;
            Eheap.add h ~key id;
            stable_insert key id
          end)
        ops;
      let rec drain () =
        match (Eheap.pop h, !model) with
        | None, [] -> true
        | Some got, expect :: tl when got = expect ->
            model := tl;
            drain ()
        | _ -> false
      in
      !ok && drain ())

let test_heap_growth () =
  (* Push well past the initial 16-slot capacity and drain in order. *)
  let h = Eheap.create () in
  for i = 199 downto 0 do
    Eheap.add h ~key:(float_of_int i) i
  done;
  Alcotest.(check int) "length" 200 (Eheap.length h);
  for i = 0 to 199 do
    match Eheap.pop h with
    | Some (k, v) ->
        check_float "key order" (float_of_int i) k;
        Alcotest.(check int) "value order" i v
    | None -> Alcotest.fail "heap drained early"
  done;
  Alcotest.(check bool) "empty at the end" true (Eheap.pop h = None)

let prop_rng_deterministic =
  QCheck.Test.make ~count:100 ~name:"rng: same seed, same stream"
    QCheck.(small_int)
    (fun seed ->
      let a = Rng.create seed and b = Rng.create seed in
      List.init 20 (fun _ -> Rng.bits64 a) = List.init 20 (fun _ -> Rng.bits64 b))

let prop_rng_int_bounds =
  QCheck.Test.make ~count:200 ~name:"rng: int stays within bound"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      List.for_all
        (fun _ ->
          let v = Rng.int r bound in
          v >= 0 && v < bound)
        (List.init 50 Fun.id))

let prop_rng_uniform_bounds =
  QCheck.Test.make ~count:200 ~name:"rng: uniform in [0,1)"
    QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      List.for_all
        (fun _ ->
          let v = Rng.uniform r in
          v >= 0. && v < 1.)
        (List.init 50 Fun.id))

let prop_rng_exponential_positive =
  QCheck.Test.make ~count:200 ~name:"rng: exponential draws are nonnegative"
    QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      List.for_all
        (fun _ -> Rng.exponential r ~mean:100. >= 0.)
        (List.init 50 Fun.id))

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.bits64 a) in
  let ys = List.init 10 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_split_seed () =
  let a = Rng.split_seed ~seed:42 ~index:0 in
  let b = Rng.split_seed ~seed:42 ~index:1 in
  Alcotest.(check bool) "different indices differ" true (a <> b);
  Alcotest.(check int) "deterministic" a (Rng.split_seed ~seed:42 ~index:0);
  Alcotest.(check bool) "nonnegative" true (a >= 0 && b >= 0);
  Alcotest.(check bool) "child differs from parent-as-seed" true
    (a <> 42);
  (* Derived streams must actually be distinct. *)
  let ra = Rng.create a and rb = Rng.create b in
  Alcotest.(check bool) "independent streams" true
    (List.init 10 (fun _ -> Rng.bits64 ra)
    <> List.init 10 (fun _ -> Rng.bits64 rb));
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Rng.split_seed: index must be nonnegative") (fun () ->
      ignore (Rng.split_seed ~seed:42 ~index:(-1)))

let test_rng_exponential_mean () =
  let r = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:50.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f within 5%% of 50" mean)
    true
    (mean > 47.5 && mean < 52.5)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_heap_sorted; prop_heap_fifo_on_equal; prop_heap_model;
      prop_rng_deterministic; prop_rng_int_bounds; prop_rng_uniform_bounds;
      prop_rng_exponential_positive ]

let suite =
  [ Alcotest.test_case "time units" `Quick test_time_units;
    Alcotest.test_case "events run in time order" `Quick test_schedule_order;
    Alcotest.test_case "equal timestamps are FIFO" `Quick test_fifo_ties;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "events can schedule events" `Quick test_schedule_from_event;
    Alcotest.test_case "scheduling in the past is rejected" `Quick
      test_schedule_past_rejected;
    Alcotest.test_case "run_while stops on predicate" `Quick test_run_while;
    Alcotest.test_case "run_while early stop leaves the clock" `Quick
      test_run_while_clock_on_early_stop;
    Alcotest.test_case "reschedule re-arms a periodic event" `Quick
      test_reschedule_periodic;
    Alcotest.test_case "reschedule outside the callback is rejected" `Quick
      test_reschedule_outside_callback;
    Alcotest.test_case "stale handles cannot touch recycled slots" `Quick
      test_stale_handle_safety;
    Alcotest.test_case "eheap grows past its initial capacity" `Quick
      test_heap_growth;
    Alcotest.test_case "events_executed counts" `Quick test_events_executed;
    Alcotest.test_case "rng split gives a distinct stream" `Quick
      test_rng_split_independent;
    Alcotest.test_case "rng split_seed derives stable child seeds" `Quick
      test_rng_split_seed;
    Alcotest.test_case "rng exponential has the right mean" `Slow
      test_rng_exponential_mean ]
  @ qsuite
