(* Integration tests: scaled-down versions of every paper experiment,
   asserting the *shapes* the paper reports — orderings, plateaus,
   collapses — not absolute numbers. *)

open Lrp_experiments

let find_point points rate =
  List.find (fun p -> p.Fig3.offered = rate) points

let test_fig3_shapes () =
  let rows = Fig3.run ~quick:true () in
  let by sys = List.find (fun r -> r.Fig3.system = sys) rows in
  let bsd = by Common.Bsd and ni = by Common.Ni_lrp in
  let soft = by Common.Soft_lrp and ed = by Common.Early_demux in
  (* BSD: throughput at 20k collapses far below its peak (livelock). *)
  let bsd_peak =
    List.fold_left (fun acc p -> Float.max acc p.Fig3.delivered) 0. bsd.Fig3.points
  in
  let bsd_20k = (find_point bsd.Fig3.points 20_000.).Fig3.delivered in
  Alcotest.(check bool)
    (Printf.sprintf "BSD livelock: 20k rate %.0f << peak %.0f" bsd_20k bsd_peak)
    true
    (bsd_20k < 0.2 *. bsd_peak);
  (* NI-LRP: flat at its maximum — 20k point within 5% of its peak. *)
  let ni_peak =
    List.fold_left (fun acc p -> Float.max acc p.Fig3.delivered) 0. ni.Fig3.points
  in
  let ni_20k = (find_point ni.Fig3.points 20_000.).Fig3.delivered in
  Alcotest.(check bool)
    (Printf.sprintf "NI-LRP stable: %.0f vs peak %.0f" ni_20k ni_peak)
    true
    (ni_20k > 0.95 *. ni_peak);
  (* Peak ordering and ratios: NI-LRP > SOFT-LRP > BSD, with NI-LRP
     30-80 % above BSD (paper: +51 %) and SOFT-LRP 15-50 % above
     (paper: +32 %). *)
  let soft_peak =
    List.fold_left (fun acc p -> Float.max acc p.Fig3.delivered) 0. soft.Fig3.points
  in
  Alcotest.(check bool)
    (Printf.sprintf "peaks: ni=%.0f soft=%.0f bsd=%.0f" ni_peak soft_peak bsd_peak)
    true
    (ni_peak > soft_peak && soft_peak > bsd_peak);
  Alcotest.(check bool) "NI-LRP peak 30-80% above BSD" true
    (ni_peak /. bsd_peak > 1.3 && ni_peak /. bsd_peak < 1.8);
  Alcotest.(check bool) "SOFT-LRP peak 15-50% above BSD" true
    (soft_peak /. bsd_peak > 1.15 && soft_peak /. bsd_peak < 1.5);
  (* SOFT-LRP declines but slowly: at 20k still above BSD's collapse. *)
  let soft_20k = (find_point soft.Fig3.points 20_000.).Fig3.delivered in
  Alcotest.(check bool) "SOFT-LRP degrades gracefully" true
    (soft_20k > 0.55 *. soft_peak);
  (* Early-Demux: stable-ish but well below SOFT-LRP under overload
     (paper: 40-65 %). *)
  let ed_20k = (find_point ed.Fig3.points 20_000.).Fig3.delivered in
  Alcotest.(check bool)
    (Printf.sprintf "Early-Demux %.0f is 35-75%% of SOFT-LRP %.0f under overload"
       ed_20k soft_20k)
    true
    (ed_20k > 0.35 *. soft_20k && ed_20k < 0.75 *. soft_20k);
  (* Early discard engaged for the LRP kernels at overload. *)
  Alcotest.(check bool) "NI-LRP discarded at the channel" true
    ((find_point ni.Fig3.points 20_000.).Fig3.discards > 0);
  (* BSD dropped at the shared IP queue at extreme rates. *)
  Alcotest.(check bool) "BSD dropped at the IP queue" true
    ((find_point bsd.Fig3.points 20_000.).Fig3.ipq_drops > 0)

let test_mlfrr_ordering () =
  let bsd = Fig3.mlfrr ~quick:true Common.Bsd in
  let soft = Fig3.mlfrr ~quick:true Common.Soft_lrp in
  Alcotest.(check bool)
    (Printf.sprintf "MLFRR: SOFT-LRP %.0f exceeds BSD %.0f by 15-70%%" soft bsd)
    true
    (soft /. bsd > 1.15 && soft /. bsd < 1.7)

let test_fig4_shapes () =
  let rows = Fig4.run ~quick:true () in
  let by sys = List.find (fun r -> r.Fig4.system = sys) rows in
  let bsd = by Common.Bsd and ni = by Common.Ni_lrp and soft = by Common.Soft_lrp in
  let rtt_at row rate =
    (List.find (fun p -> p.Fig4.bg_rate = rate) row.Fig4.points).Fig4.rtt_us
  in
  (* BSD's latency rises much more under load than NI-LRP's. *)
  let bsd_rise = rtt_at bsd 14_000. -. rtt_at bsd 0. in
  let ni_rise = rtt_at ni 14_000. -. rtt_at ni 0. in
  Alcotest.(check bool)
    (Printf.sprintf "BSD rise %.0fus > NI-LRP rise %.0fus" bsd_rise ni_rise)
    true
    (bsd_rise > 4. *. Float.max 1. ni_rise);
  (* SOFT-LRP sits between. *)
  let soft_rise = rtt_at soft 14_000. -. rtt_at soft 0. in
  Alcotest.(check bool) "SOFT-LRP rise below BSD's" true (soft_rise < bsd_rise);
  (* LRP never loses a probe: traffic separation. *)
  List.iter
    (fun row ->
      List.iter
        (fun p ->
          Alcotest.(check int)
            (Printf.sprintf "%s: no probe loss at %.0f pkts/s"
               (Common.system_name row.Fig4.system) p.Fig4.bg_rate)
            0 p.Fig4.lost)
        row.Fig4.points)
    [ ni; soft ]

let test_table1_shapes () =
  let rows = Table1.run ~quick:true () in
  let by sys = List.find (fun r -> r.Table1.system = sys) rows in
  let sunos = by Common.Sunos_fore and bsd = by Common.Bsd in
  let ni = by Common.Ni_lrp and soft = by Common.Soft_lrp in
  (* SunOS/Fore is the slowest system on every metric. *)
  Alcotest.(check bool) "SunOS worst RTT" true
    (sunos.Table1.rtt_us > bsd.Table1.rtt_us
     && sunos.Table1.rtt_us > ni.Table1.rtt_us);
  Alcotest.(check bool) "SunOS worst UDP throughput" true
    (sunos.Table1.udp_mbps < bsd.Table1.udp_mbps);
  (* LRP's low-load performance is comparable to BSD: laziness costs
     nothing when there is no overload.  (Band 30%: our cost model carries
     BSD's eager-path overheads statically, so its idle RTT sits ~20-25%
     above LRP's, where the paper measured near-parity at idle with the
     gap appearing only under load.) *)
  let close a b = Float.abs (a -. b) /. b < 0.30 in
  Alcotest.(check bool) "NI-LRP RTT comparable to BSD" true
    (close ni.Table1.rtt_us bsd.Table1.rtt_us);
  Alcotest.(check bool) "SOFT-LRP RTT comparable to BSD" true
    (close soft.Table1.rtt_us bsd.Table1.rtt_us);
  Alcotest.(check bool) "LRP UDP throughput >= BSD" true
    (ni.Table1.udp_mbps >= 0.95 *. bsd.Table1.udp_mbps);
  Alcotest.(check bool) "LRP TCP throughput comparable to BSD" true
    (close ni.Table1.tcp_mbps bsd.Table1.tcp_mbps);
  (* Sanity: everything actually ran. *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s produced numbers" (Common.system_name r.Table1.system))
        true
        (r.Table1.rtt_us > 0. && r.Table1.udp_mbps > 0. && r.Table1.tcp_mbps > 0.))
    rows

let test_table2_shapes () =
  let rows = Table2.run ~quick:true () in
  let by sys = List.find (fun r -> r.Table2.system = sys) rows in
  let bsd = by Common.Bsd and soft = by Common.Soft_lrp and ni = by Common.Ni_lrp in
  (* The worker completes sooner under LRP. *)
  Alcotest.(check bool)
    (Printf.sprintf "worker elapsed: BSD %.2f > SOFT %.2f >= NI %.2f"
       bsd.Table2.worker_elapsed_s soft.Table2.worker_elapsed_s
       ni.Table2.worker_elapsed_s)
    true
    (bsd.Table2.worker_elapsed_s > soft.Table2.worker_elapsed_s
     && soft.Table2.worker_elapsed_s >= 0.95 *. ni.Table2.worker_elapsed_s);
  (* ... at an equal or better RPC rate. *)
  Alcotest.(check bool) "LRP RPC rate not worse" true
    (soft.Table2.rpcs_per_sec >= 0.97 *. bsd.Table2.rpcs_per_sec);
  (* The worker's CPU share is better under LRP (fair accounting). *)
  Alcotest.(check bool)
    (Printf.sprintf "worker share: LRP %.2f > BSD %.2f" ni.Table2.worker_share
       bsd.Table2.worker_share)
    true
    (ni.Table2.worker_share > bsd.Table2.worker_share +. 0.02)

let test_fig5_shapes () =
  let rows = Fig5.run ~quick:true () in
  let by sys = List.find (fun r -> r.Fig5.system = sys) rows in
  let bsd = by Common.Bsd and soft = by Common.Soft_lrp in
  let at row rate =
    (List.find (fun p -> p.Fig5.syn_rate = rate) row.Fig5.points).Fig5.http_per_sec
  in
  (* Comparable baseline throughput. *)
  Alcotest.(check bool) "baselines comparable" true
    (Float.abs (at bsd 0. -. at soft 0.) /. at soft 0. < 0.2);
  (* BSD collapses under the flood. *)
  Alcotest.(check bool)
    (Printf.sprintf "BSD livelocked at 20k SYN/s (%.1f op/s)" (at bsd 20_000.))
    true
    (at bsd 20_000. < 0.1 *. at bsd 0.);
  (* SOFT-LRP holds a large fraction of its maximum (paper: ~50 %). *)
  Alcotest.(check bool)
    (Printf.sprintf "SOFT-LRP keeps %.0f%% at 20k SYN/s"
       (100. *. at soft 20_000. /. at soft 0.))
    true
    (at soft 20_000. > 0.35 *. at soft 0.);
  (* The flood died on the channel, not in the server's CPU. *)
  let p20 = List.find (fun p -> p.Fig5.syn_rate = 20_000.) soft.Fig5.points in
  Alcotest.(check bool) "SYNs discarded early at the channel" true
    (p20.Fig5.syn_discards > 10_000)

let suite =
  [ Alcotest.test_case "Figure 3 shapes (throughput vs load)" `Slow test_fig3_shapes;
    Alcotest.test_case "MLFRR ordering" `Slow test_mlfrr_ordering;
    Alcotest.test_case "Figure 4 shapes (latency under load)" `Slow test_fig4_shapes;
    Alcotest.test_case "Table 1 shapes (baseline performance)" `Slow test_table1_shapes;
    Alcotest.test_case "Table 2 shapes (RPC fairness)" `Slow test_table2_shapes;
    Alcotest.test_case "Figure 5 shapes (SYN flood)" `Slow test_fig5_shapes ]
