(* Tests for the packed flight recorder, the CPU accounting ledger and
   the livelock/overload detector: ring semantics of the SoA recorder,
   lossless packed -> typed decoding, binary dump round-trips, the
   non-perturbation contract (recorder on/off and --jobs 1 vs 4 produce
   byte-identical figure data), ledger conservation against the CPU
   model's own clocks, the paper's misaccounting contrast, and the
   detector's BSD-fires / LRP-silent discrimination. *)

open Lrp_engine
open Lrp_net
open Lrp_sim
open Lrp_kernel
open Lrp_workload
open Lrp_experiments
module Trace = Lrp_trace.Trace
module Precorder = Lrp_trace.Precorder
module Overload = Lrp_check.Overload

(* --- packed ring semantics --------------------------------------------- *)

let test_precorder_wrap () =
  let clock = [| 0. |] in
  let p = Precorder.create ~capacity:8 ~clock () in
  for i = 0 to 19 do
    clock.(0) <- float_of_int i;
    Precorder.record p ~kind:0 ~ident:i ~a:(i * 2) ~b:(i * 3)
  done;
  Alcotest.(check int) "length capped at capacity" 8 (Precorder.length p);
  Alcotest.(check int) "dropped counts overwrites" 12 (Precorder.dropped p);
  Alcotest.(check int) "recorded is monotone" 20 (Precorder.recorded p);
  let seen = ref [] in
  Precorder.iter p (fun ~ts ~seq ~kind:_ ~ident ~a ~b ->
      seen := (ts, seq, ident, a, b) :: !seen);
  let seen = List.rev !seen in
  Alcotest.(check int) "iter visits the survivors" 8 (List.length seen);
  List.iteri
    (fun off (ts, seq, ident, a, b) ->
      let i = 12 + off in
      Alcotest.(check (float 0.)) "timestamp survives" (float_of_int i) ts;
      Alcotest.(check int) "sequence reconstructed" i seq;
      Alcotest.(check int) "ident survives" i ident;
      Alcotest.(check (pair int int)) "packed args survive" (i * 2, i * 3)
        (a, b))
    seen

let test_precorder_arg_sentinel () =
  let clock = [| 0. |] in
  let p = Precorder.create ~capacity:4 ~clock () in
  Precorder.record p ~kind:1 ~ident:(-1) ~a:(-1) ~b:Precorder.arg_max;
  Precorder.iter p (fun ~ts:_ ~seq:_ ~kind:_ ~ident ~a ~b ->
      Alcotest.(check int) "-1 ident round-trips" (-1) ident;
      Alcotest.(check int) "-1 arg round-trips" (-1) a;
      Alcotest.(check int) "arg_max round-trips" Precorder.arg_max b)

(* --- packed -> typed decode -------------------------------------------- *)

(* Emit one event of every constructor through [t], advancing the given
   clock cell so timestamps are distinct. *)
let emit_all t clock =
  let tick ts = clock.(0) <- ts in
  tick 1.;
  Trace.nic_rx t ~pkt:7 ~bytes:1500;
  Trace.demux t ~pkt:7 ~chan:3 ~flow:9000;
  tick 2.;
  Trace.ipq_enqueue t ~pkt:7 ~qlen:4;
  Trace.ipq_drop t ~pkt:8 ~qlen:64;
  Trace.early_discard t ~pkt:9 ~chan:3;
  tick 3.5;
  Trace.softint_begin t ~pkt:7;
  Trace.proto_deliver t ~pkt:7 ~conn:11 ~in_proc:false;
  Trace.proto_deliver t ~pkt:7 ~conn:(-1) ~in_proc:true;
  Trace.softint_end t ~pkt:7;
  tick 4.;
  Trace.sock_enqueue t ~pkt:7 ~sock:2;
  Trace.sock_drop t ~pkt:10 ~sock:2;
  Trace.syscall_copyout t ~pkt:7 ~sock:2 ~bytes:1472;
  Trace.csum_drop t ~pkt:11;
  Trace.mbuf_drop t ~pkt:12;
  tick 5.;
  Trace.intr_enter t ~level:Trace.Hard ~label:"rx-intr";
  Trace.intr_exit t ~level:Trace.Hard ~label:"rx-intr";
  Trace.intr_enter t ~level:Trace.Soft ~label:"softnet";
  Trace.intr_exit t ~level:Trace.Soft ~label:"softnet";
  tick 6.;
  Trace.ctx_switch t ~from_pid:1 ~to_pid:2;
  Trace.thread_state t ~pid:2 ~state:Trace.Spawned;
  Trace.thread_state t ~pid:2 ~state:Trace.Runnable;
  Trace.thread_state t ~pid:2 ~state:Trace.Sleeping;
  Trace.thread_state t ~pid:2 ~state:Trace.Exited;
  tick 7.;
  Trace.note t "checkpoint";
  Trace.notef t "formatted %d" 42;
  Trace.alarm t ~alarm:Trace.Overload ~a:200 ~b:30;
  Trace.alarm t ~alarm:Trace.Livelock ~a:200 ~b:95;
  Trace.alarm t ~alarm:Trace.Starvation ~a:2 ~b:95;
  Trace.alarm t ~alarm:Trace.Queue_watermark ~a:1 ~b:64

let make_typed () =
  let clock = [| 0. |] in
  let t = Trace.create ~name:"typed" ~now:(fun () -> clock.(0)) () in
  Trace.set_enabled t true;
  (t, clock)

let make_packed () =
  let clock = [| 0. |] in
  let t = Trace.create ~name:"packed" ~now:(fun () -> clock.(0)) () in
  Trace.use_packed t ~clock;
  Trace.set_enabled t true;
  (t, clock)

let test_packed_typed_equal () =
  let typed, tclock = make_typed () in
  let packed, pclock = make_packed () in
  emit_all typed tclock;
  emit_all packed pclock;
  Alcotest.(check bool) "packed backend is installed" true
    (Trace.packed packed <> None);
  Alcotest.(check int) "same event count" (Trace.length typed)
    (Trace.length packed);
  Alcotest.(check bool) "packed decodes to the typed stream" true
    (Trace.events typed = Trace.events packed)

(* --- binary dump round-trip -------------------------------------------- *)

let test_dump_roundtrip () =
  let packed, clock = make_packed () in
  emit_all packed clock;
  let p =
    match Trace.packed packed with Some p -> p | None -> assert false
  in
  let file = Filename.temp_file "lrprec" ".bin" in
  Precorder.write_dump p file;
  let q =
    match Precorder.read_dump file with
    | Ok q -> q
    | Error e -> Alcotest.fail ("read_dump: " ^ e)
  in
  Sys.remove file;
  Alcotest.(check int) "length survives the dump" (Precorder.length p)
    (Precorder.length q);
  Alcotest.(check bool) "decoded events identical" true
    (Trace.events_of_precorder p = Trace.events_of_precorder q);
  Alcotest.(check bool) "dump events match the typed view" true
    (Trace.events_of_precorder q = Trace.events packed)

let test_dump_rejects_garbage () =
  (match Precorder.of_string "not a dump" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match Precorder.of_string "LRPREC01\x01\x02" with
  | Ok _ -> Alcotest.fail "truncated dump accepted"
  | Error _ -> ()

(* --- non-perturbation: recorder on/off, any --jobs --------------------- *)

let point = Alcotest.testable (fun fmt (p : Fig3.point) ->
    Format.fprintf fmt "{offered=%.1f delivered=%.1f}" p.Fig3.offered
      p.Fig3.delivered)
    ( = )

let test_recorder_does_not_perturb () =
  List.iter
    (fun sys ->
      let off = Fig3.measure sys ~rate:12_000. ~duration:(Time.ms 300.) in
      let on_, tracer, _metrics =
        Fig3.measure_traced sys ~rate:12_000. ~duration:(Time.ms 300.)
      in
      Alcotest.check point
        (Common.system_name sys ^ ": datapoint identical with recorder on")
        off on_;
      Alcotest.(check bool)
        (Common.system_name sys ^ ": the recorder actually recorded")
        true
        (Trace.length tracer > 0))
    [ Common.Bsd; Common.Soft_lrp ]

let test_accounting_jobs_invariant () =
  let a = Accounting.run ~quick:true ~jobs:1 () in
  let b = Accounting.run ~quick:true ~jobs:4 () in
  Alcotest.(check bool) "ledger rows identical at --jobs 1 and 4" true
    (a.Accounting.arch_rows = b.Accounting.arch_rows);
  Alcotest.(check bool) "detector rows identical at --jobs 1 and 4" true
    (a.Accounting.det_rows = b.Accounting.det_rows)

(* --- ledger conservation ----------------------------------------------- *)

let run_blast sys ~rate ~duration =
  let cfg = Common.config_of_system sys in
  let w, client, server = World.pair ~cfg () in
  let sink = Blast.start_sink server ~port:9000 () in
  ignore
    (Blast.start_source (World.engine w) (Kernel.nic client)
       ~src:(Kernel.ip_address client)
       ~dst:(Kernel.ip_address server, 9000)
       ~rate ~size:14 ~until:duration ());
  World.run w ~until:duration;
  (server, sink)

let check_close what expected actual =
  let tol = 1e-6 *. Float.max 1. (Float.abs expected) in
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: ledger %.9g vs cpu %.9g" what actual expected

let test_ledger_conservation () =
  List.iter
    (fun sys ->
      let server, _ = run_blast sys ~rate:10_000. ~duration:(Time.ms 300.) in
      let cpu = Kernel.cpu server in
      let led = Cpu.ledger cpu in
      let name = Common.system_name sys in
      check_close (name ^ " Intr = time_hard") (Cpu.time_hard cpu)
        (Ledger.total led Ledger.Intr);
      check_close (name ^ " Soft = time_soft") (Cpu.time_soft cpu)
        (Ledger.total led Ledger.Soft);
      check_close
        (name ^ " Proto+App = time_user")
        (Cpu.time_user cpu)
        (Ledger.total led Ledger.Proto +. Ledger.total led Ledger.App);
      check_close
        (name ^ " grand total = busy cycles")
        (Cpu.time_hard cpu +. Cpu.time_soft cpu +. Cpu.time_user cpu)
        (Ledger.grand_total led);
      (* Per-row columns sum back to the class totals. *)
      let by_rows =
        List.fold_left
          (fun acc (r : Ledger.row) ->
            acc +. r.Ledger.intr_victim +. r.Ledger.soft_victim
            +. r.Ledger.proto +. r.Ledger.app)
          0. (Ledger.rows led)
      in
      check_close (name ^ " rows sum to grand total")
        (Ledger.grand_total led) by_rows)
    [ Common.Bsd; Common.Ni_lrp; Common.Soft_lrp ]

(* --- the paper's accounting contrast ----------------------------------- *)

let test_misaccounting_contrast () =
  let bsd =
    Accounting.measure_arch Common.Bsd ~rate:8_000. ~duration:(Time.ms 300.)
  in
  let ni =
    Accounting.measure_arch Common.Ni_lrp ~rate:8_000. ~duration:(Time.ms 300.)
  in
  Alcotest.(check bool) "BSD mischarges most interrupt work" true
    (bsd.Accounting.mischarged > 5. *. ni.Accounting.mischarged);
  Alcotest.(check bool) "BSD does no receiver-context protocol work" true
    (bsd.Accounting.receiver_proto = 0.);
  Alcotest.(check bool) "NI-LRP charges protocol work to the receiver" true
    (ni.Accounting.receiver_proto > 0.)

(* --- detector discrimination ------------------------------------------- *)

let test_detector_discriminates () =
  let rate = 14_000. and duration = Time.ms 500. in
  let bsd = Accounting.measure_detector Common.Bsd ~rate ~duration in
  let lrp = Accounting.measure_detector Common.Soft_lrp ~rate ~duration in
  let brep = bsd.Accounting.d_report and lrep = lrp.Accounting.d_report in
  Alcotest.(check bool) "BSD livelocks under a 14k pkts/s blast" true
    (brep.Overload.livelock_windows > 0);
  Alcotest.(check bool) "BSD collapse is also an overload" true
    (brep.Overload.overload_windows >= brep.Overload.livelock_windows);
  Alcotest.(check bool) "SOFT-LRP never livelocks at the same load" true
    (lrep.Overload.livelock_windows = 0);
  Alcotest.(check bool) "SOFT-LRP keeps interrupt share low" true
    (lrep.Overload.peak_intr_share < 0.8);
  Alcotest.(check bool) "SOFT-LRP out-delivers BSD" true
    (lrp.Accounting.d_delivered > bsd.Accounting.d_delivered)

let test_detector_silent_when_healthy () =
  let cfg = Common.config_of_system Common.Soft_lrp in
  let w, client, server = World.pair ~cfg () in
  let det = Overload.attach server in
  let _sink = Blast.start_sink server ~port:9000 () in
  ignore
    (Blast.start_source (World.engine w) (Kernel.nic client)
       ~src:(Kernel.ip_address client)
       ~dst:(Kernel.ip_address server, 9000)
       ~rate:4_000. ~size:14 ~until:(Time.ms 500.) ());
  World.run w ~until:(Time.ms 500.);
  Overload.detach det;
  let rep = Overload.report det in
  Alcotest.(check int) "no overload at a healthy rate" 0
    rep.Overload.overload_windows;
  Alcotest.(check int) "no starvation at a healthy rate" 0
    rep.Overload.starved_windows;
  Alcotest.(check bool) "windows were actually judged" true
    (rep.Overload.judged > 0)

(* --- detector alarms land in the flight recorder ----------------------- *)

let test_alarms_recorded () =
  let cfg = Common.config_of_system Common.Bsd in
  let w, client, server = World.pair ~cfg () in
  Kernel.set_tracing server true;
  Trace.set_filter (Kernel.tracer server) [ Trace.Note_events ];
  let det = Overload.attach server in
  let _sink = Blast.start_sink server ~port:9000 () in
  ignore
    (Blast.start_source (World.engine w) (Kernel.nic client)
       ~src:(Kernel.ip_address client)
       ~dst:(Kernel.ip_address server, 9000)
       ~rate:20_000. ~size:14 ~until:(Time.ms 500.) ());
  World.run w ~until:(Time.ms 500.);
  Overload.detach det;
  let events = Trace.events (Kernel.tracer server) in
  let count k =
    List.length
      (List.filter
         (function
           | _, _, Trace.Alarm { alarm; _ } -> alarm = k | _ -> false)
         events)
  in
  let rep = Overload.report det in
  Alcotest.(check int) "every overload window left an alarm event"
    rep.Overload.overload_windows (count Trace.Overload);
  Alcotest.(check int) "every livelock window left an alarm event"
    rep.Overload.livelock_windows (count Trace.Livelock);
  Alcotest.(check bool) "queue watermarks were recorded" true
    (count Trace.Queue_watermark > 0)

(* --- slot-based demux agrees with the boxing resolver ------------------ *)

let test_resolve_slot_agrees () =
  let tab = Lrp_core.Chantab.create () in
  let ch p = Lrp_core.Channel.create ~name:(Printf.sprintf "ch%d" p) () in
  Lrp_core.Chantab.add_udp tab ~port:53 (ch 53);
  Lrp_core.Chantab.add_udp tab ~port:9000 (ch 9000);
  let peer = Packet.ip_of_quad 10 0 0 1 in
  let self = Packet.ip_of_quad 10 0 0 2 in
  Lrp_core.Chantab.add_tcp tab ~src:peer ~src_port:1234 ~dst_port:80 (ch 80);
  Lrp_core.Chantab.add_tcp_listen tab ~port:80 (ch 8080);
  let udp_hit =
    Packet.udp ~src:peer ~dst:self ~src_port:4000 ~dst_port:9000
      (Payload.synthetic 14)
  in
  let udp_miss =
    Packet.udp ~src:peer ~dst:self ~src_port:4000 ~dst_port:12345
      (Payload.synthetic 14)
  in
  let tcp_hit =
    Packet.tcp ~src:peer ~dst:self ~src_port:1234 ~dst_port:80 ~seq:1
      ~ack_no:0 ~flags:(Packet.flags ~ack:true ()) ~window:1000
      (Payload.synthetic 14)
  in
  let tcp_syn =
    Packet.tcp ~src:peer ~dst:self ~src_port:5678 ~dst_port:80 ~seq:1
      ~ack_no:0 ~flags:(Packet.flags ~syn:true ()) ~window:1000
      (Payload.synthetic 0)
  in
  let icmp_pkt =
    Packet.icmp ~src:peer ~dst:self Packet.Echo_request (Payload.synthetic 8)
  in
  let tail_frag =
    { Packet.ip = udp_hit.Packet.ip;
      body = Packet.Fragment { whole = udp_hit; foff = 8; flen = 6;
                               last = true } }
  in
  List.iter
    (fun (label, pkt) ->
      let slot = Lrp_core.Chantab.resolve_slot tab pkt in
      match Lrp_core.Chantab.resolve_packet tab pkt with
      | None ->
          Alcotest.(check int)
            (label ^ ": slot_none iff resolve_packet misses")
            Lrp_core.Chantab.slot_none slot
      | Some c ->
          Alcotest.(check bool) (label ^ ": slot decodes to the same channel")
            true
            (Lrp_core.Chantab.channel_of_slot tab slot == c))
    [ ("udp hit", udp_hit); ("udp miss", udp_miss); ("tcp hit", tcp_hit);
      ("tcp syn -> listener", tcp_syn); ("icmp", icmp_pkt);
      ("tail fragment", tail_frag) ]

let suite =
  [ Alcotest.test_case "packed ring wraps and reconstructs sequences" `Quick
      test_precorder_wrap;
    Alcotest.test_case "packed args keep -1 sentinel and arg_max" `Quick
      test_precorder_arg_sentinel;
    Alcotest.test_case "packed ring decodes to the typed event stream" `Quick
      test_packed_typed_equal;
    Alcotest.test_case "binary dump round-trips losslessly" `Quick
      test_dump_roundtrip;
    Alcotest.test_case "dump reader rejects malformed input" `Quick
      test_dump_rejects_garbage;
    Alcotest.test_case "recorder on/off gives identical datapoints" `Quick
      test_recorder_does_not_perturb;
    Alcotest.test_case "accounting tables identical at --jobs 1 and 4" `Quick
      test_accounting_jobs_invariant;
    Alcotest.test_case "ledger conserves every simulated cycle" `Quick
      test_ledger_conservation;
    Alcotest.test_case "BSD mischarges, LRP bills the receiver" `Quick
      test_misaccounting_contrast;
    Alcotest.test_case "detector: BSD livelocks, SOFT-LRP does not" `Quick
      test_detector_discriminates;
    Alcotest.test_case "detector stays silent at healthy load" `Quick
      test_detector_silent_when_healthy;
    Alcotest.test_case "alarms and watermarks land in the recorder" `Quick
      test_alarms_recorded;
    Alcotest.test_case "resolve_slot agrees with resolve_packet" `Quick
      test_resolve_slot_agrees ]
