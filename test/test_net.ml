(* Unit and property tests for the network substrate: payloads, packets,
   wire codec, mbuf pool, NIC and fabric timing. *)

open Lrp_engine
open Lrp_net

(* --- payload ----------------------------------------------------------- *)

let test_payload_basics () =
  let p = Payload.synthetic ~tag:7 100 in
  Alcotest.(check int) "length" 100 (Payload.length p);
  Alcotest.(check (option int)) "tag" (Some 7) (Payload.tag p);
  let b = Payload.of_string "hello" in
  Alcotest.(check int) "bytes length" 5 (Payload.length b);
  Alcotest.(check (option int)) "no tag" None (Payload.tag b)

let prop_payload_sub_concat =
  QCheck.Test.make ~count:200 ~name:"payload: sub+concat reassembles"
    QCheck.(pair (int_range 1 500) (int_range 1 499))
    (fun (len, cut) ->
      let cut = cut mod len in
      QCheck.assume (cut > 0);
      let p = Payload.synthetic ~tag:3 len in
      let a = Payload.sub p 0 cut and b = Payload.sub p cut (len - cut) in
      Payload.equal (Payload.concat [ a; b ]) p)

let prop_payload_bytes_roundtrip =
  QCheck.Test.make ~count:200 ~name:"payload: synthetic and bytes views agree"
    QCheck.(pair small_nat (int_range 0 300))
    (fun (tag, len) ->
      let p = Payload.synthetic ~tag len in
      Bytes.length (Payload.to_bytes p) = len)

let test_payload_sub_out_of_range () =
  let p = Payload.synthetic 10 in
  Alcotest.check_raises "sub out of range"
    (Invalid_argument "Payload.sub: out of range") (fun () ->
      ignore (Payload.sub p 5 6))

(* --- packet ------------------------------------------------------------ *)

let test_wire_bytes () =
  let pkt =
    Packet.udp ~src:1 ~dst:2 ~src_port:10 ~dst_port:20 (Payload.synthetic 100)
  in
  Alcotest.(check int) "udp wire size" (20 + 8 + 100) (Packet.wire_bytes pkt);
  let t =
    Packet.tcp ~src:1 ~dst:2 ~src_port:10 ~dst_port:20 ~seq:0 ~ack_no:0
      ~flags:(Packet.flags ()) ~window:0 (Payload.synthetic 100)
  in
  Alcotest.(check int) "tcp wire size" (20 + 20 + 100) (Packet.wire_bytes t)

let test_ports_accessor () =
  let pkt = Packet.udp ~src:1 ~dst:2 ~src_port:10 ~dst_port:20 (Payload.synthetic 4) in
  Alcotest.(check (option (pair int int))) "udp ports" (Some (10, 20))
    (Packet.ports pkt);
  Alcotest.(check bool) "is_udp" true (Packet.is_udp pkt);
  Alcotest.(check bool) "not tcp" false (Packet.is_tcp pkt)

let test_ip_pp () =
  let s = Fmt.str "%a" Packet.pp_ip (Packet.ip_of_quad 10 0 0 12) in
  Alcotest.(check string) "dotted quad" "10.0.0.12" s

let test_ip_of_quad_range_check () =
  (* Every octet position must be range-checked individually (a precedence
     bug once masked only the last one). *)
  Alcotest.(check int) "max quad" 0xffffffff (Packet.ip_of_quad 255 255 255 255);
  List.iteri
    (fun pos quad ->
      let a, b, c, d = quad in
      Alcotest.check_raises
        (Printf.sprintf "octet %d out of range rejected" pos)
        (Invalid_argument "ip_of_quad")
        (fun () -> ignore (Packet.ip_of_quad a b c d)))
    [ (256, 0, 0, 0); (0, 256, 0, 0); (0, 0, 256, 0); (0, 0, 0, 256) ];
  Alcotest.check_raises "negative octet rejected"
    (Invalid_argument "ip_of_quad")
    (fun () -> ignore (Packet.ip_of_quad 0 (-1) 0 0))

(* --- codec ------------------------------------------------------------- *)

let sample_udp ?(len = 64) () =
  Packet.udp ~src:(Packet.ip_of_quad 10 0 0 1) ~dst:(Packet.ip_of_quad 10 0 0 2)
    ~src_port:1234 ~dst_port:80
    (Payload.of_bytes (Bytes.init len (fun i -> Char.chr (i land 0xff))))

let test_codec_udp_roundtrip () =
  let pkt = sample_udp () in
  let b = Codec.encode pkt in
  let d = Codec.decode b in
  Alcotest.(check int) "proto" Codec.ipproto_udp d.Codec.d_proto;
  Alcotest.(check (option int)) "src port" (Some 1234) d.Codec.d_src_port;
  Alcotest.(check (option int)) "dst port" (Some 80) d.Codec.d_dst_port;
  Alcotest.(check int) "src ip" (Packet.ip_of_quad 10 0 0 1) d.Codec.d_src;
  Alcotest.(check bytes) "payload" (Payload.to_bytes (Payload.of_bytes (Bytes.init 64 (fun i -> Char.chr (i land 0xff)))))
    d.Codec.d_payload

let test_codec_tcp_roundtrip () =
  let pkt =
    Packet.tcp ~src:3 ~dst:4 ~src_port:5555 ~dst_port:80 ~seq:12345
      ~ack_no:6789 ~flags:(Packet.flags ~syn:true ~ack:true ()) ~window:8192
      (Payload.of_string "GET /")
  in
  let d = Codec.decode (Codec.encode pkt) in
  Alcotest.(check int) "proto" Codec.ipproto_tcp d.Codec.d_proto;
  Alcotest.(check (option int)) "seq" (Some 12345) d.Codec.d_seq;
  Alcotest.(check (option int)) "ack" (Some 6789) d.Codec.d_ack;
  Alcotest.(check (option int)) "window" (Some 8192) d.Codec.d_window;
  (match d.Codec.d_tcp_flags with
   | Some f ->
       Alcotest.(check bool) "syn" true f.Packet.syn;
       Alcotest.(check bool) "ack flag" true f.Packet.ack;
       Alcotest.(check bool) "fin" false f.Packet.fin
   | None -> Alcotest.fail "missing tcp flags")

let test_codec_rejects_corruption () =
  let b = Codec.encode (sample_udp ()) in
  Bytes.set b 12 (Char.chr (Char.code (Bytes.get b 12) lxor 0xff));
  Alcotest.check_raises "ip checksum detects corruption"
    (Codec.Bad_packet "IP checksum") (fun () -> ignore (Codec.decode b))

let test_codec_short_packet () =
  Alcotest.check_raises "short header rejected"
    (Codec.Bad_packet "short IP header") (fun () ->
      ignore (Codec.decode (Bytes.create 10)))

let prop_codec_udp_roundtrip =
  QCheck.Test.make ~count:200 ~name:"codec: udp encode/decode round-trips"
    QCheck.(quad (int_range 0 65535) (int_range 0 65535) (int_range 0 400) small_nat)
    (fun (sp, dp, len, tag) ->
      let pkt =
        Packet.udp ~src:(tag land 0xffffff) ~dst:42 ~src_port:sp ~dst_port:dp
          (Payload.synthetic ~tag len)
      in
      let d = Codec.decode (Codec.encode pkt) in
      d.Codec.d_src_port = Some sp && d.Codec.d_dst_port = Some dp
      && Bytes.length d.Codec.d_payload = len
      && Bytes.equal d.Codec.d_payload (Payload.to_bytes (Payload.synthetic ~tag len)))

let test_internet_checksum_zero () =
  (* Verifying a checksummed header yields 0. *)
  let pkt = sample_udp () in
  let b = Codec.encode pkt in
  Alcotest.(check int) "header verifies" 0
    (Codec.internet_checksum b ~off:0 ~len:20)

(* --- mbuf -------------------------------------------------------------- *)

let test_mbuf_alloc_free () =
  let m = Mbuf.create ~capacity:10 () in
  Alcotest.(check bool) "alloc ok" true (Mbuf.alloc m ~bytes:100);
  Alcotest.(check int) "one mbuf used" 1 (Mbuf.in_use m);
  Alcotest.(check bool) "alloc big" true (Mbuf.alloc m ~bytes:1000);
  Alcotest.(check int) "8 mbufs for 1000B at 128B" 9 (Mbuf.in_use m);
  Alcotest.(check bool) "pool exhausted" false (Mbuf.alloc m ~bytes:300);
  Alcotest.(check int) "failure counted" 1 (Mbuf.failures m);
  Mbuf.free m ~bytes:1000;
  Alcotest.(check int) "freed" 1 (Mbuf.in_use m);
  Alcotest.(check int) "peak tracked" 9 (Mbuf.peak m)

let test_mbuf_over_free () =
  let m = Mbuf.create ~capacity:10 () in
  ignore (Mbuf.alloc m ~bytes:10);
  Alcotest.check_raises "over-free detected"
    (Invalid_argument "Mbuf.free: more mbufs freed than in use") (fun () ->
      Mbuf.free m ~bytes:1000)

(* --- nic / fabric timing ------------------------------------------------ *)

let test_fabric_delivery_time () =
  let eng = Engine.create () in
  let fab = Fabric.create eng ~bandwidth_mbps:155. ~prop_delay:5. ~switch_latency:10. () in
  let a = Fabric.make_nic fab ~name:"a" ~ip:1 ~cellify:false () in
  let _b = Fabric.make_nic fab ~name:"b" ~ip:2 ~cellify:false () in
  let arrived = ref (-1.) in
  (match Fabric.make_nic fab ~name:"c" ~ip:3 () with
   | _ -> ());
  Nic.set_rx_handler _b (fun _ -> arrived := Engine.now eng);
  let pkt = Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.synthetic 972) in
  (* 1000 wire bytes at 19.375 B/us = 51.6us; + 51.6 switch port + 10 + 5 *)
  ignore (Nic.transmit a pkt);
  Engine.run eng ~until:(Time.ms 10.);
  Alcotest.(check bool)
    (Printf.sprintf "arrival time plausible (%.1f us)" !arrived)
    true
    (!arrived > 100. && !arrived < 130.)

let test_nic_ifq_overflow () =
  let eng = Engine.create () in
  let fab = Fabric.create eng () in
  let a = Fabric.make_nic fab ~name:"a" ~ip:1 ~ifq_limit:4 () in
  let _b = Fabric.make_nic fab ~name:"b" ~ip:2 () in
  let pkt = Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.synthetic 9000) in
  (* Burst of 10 large packets: the 4-deep interface queue must drop some
     (the first is in transmission, 4 queue, rest drop). *)
  let accepted = ref 0 in
  for _ = 1 to 10 do
    if Nic.transmit a pkt then incr accepted
  done;
  Alcotest.(check int) "five accepted (1 transmitting + 4 queued)" 5 !accepted;
  Alcotest.(check int) "drops counted" 5 (Nic.stats a).Nic.tx_drops

(* The TX path is arena-backed: descriptors are held from transmit to
   tx-done, recycled after, and never perturb the frames themselves. *)
let test_tx_arena_recycles () =
  let eng = Engine.create () in
  let nic = Nic.create eng ~name:"a" ~ip:1 () in
  let delivered = ref [] in
  Nic.set_deliver nic (fun pkt -> delivered := pkt :: !delivered);
  let pkts =
    List.init 5 (fun i ->
        Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2
          (Payload.synthetic (100 * (i + 1))))
  in
  List.iter (fun p -> ignore (Nic.transmit nic p)) pkts;
  let a = Nic.tx_arena nic in
  Alcotest.(check int) "queued frames hold descriptors" 4 (Parena.live a);
  Engine.drain eng;
  Alcotest.(check int) "all descriptors recycled after drain" 0
    (Parena.live a);
  Alcotest.(check bool) "peak saw the burst" true (Parena.peak a >= 4);
  Alcotest.(check int) "all frames delivered" 5 (List.length !delivered);
  List.iter2
    (fun p q ->
      Alcotest.(check bool) "frames pass through physically unchanged" true
        (p == q))
    pkts
    (List.rev !delivered)

let test_fabric_no_route_drop () =
  let eng = Engine.create () in
  let fab = Fabric.create eng () in
  let a = Fabric.make_nic fab ~name:"a" ~ip:1 () in
  let pkt = Packet.udp ~src:1 ~dst:99 ~src_port:1 ~dst_port:2 (Payload.synthetic 10) in
  ignore (Nic.transmit a pkt);
  Engine.run eng ~until:(Time.ms 1.);
  Alcotest.(check int) "unroutable frame dropped" 1 (Fabric.drops fab)

let test_fabric_loss_injection () =
  let eng = Engine.create () in
  let fab = Fabric.create eng () in
  let a = Fabric.make_nic fab ~name:"a" ~ip:1 ~ifq_limit:300 () in
  let b = Fabric.make_nic fab ~name:"b" ~ip:2 () in
  Fabric.set_loss_rate fab 0.5;
  let got = ref 0 in
  Nic.set_rx_handler b (fun _ -> incr got);
  for _ = 1 to 200 do
    ignore
      (Nic.transmit a
         (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.synthetic 10)))
  done;
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check bool)
    (Printf.sprintf "roughly half delivered (%d/200)" !got)
    true
    (!got > 60 && !got < 140)

let test_serialization_ordering () =
  (* Two frames to the same destination keep FIFO order and are separated
     by at least the serialisation time. *)
  let eng = Engine.create () in
  let fab = Fabric.create eng () in
  let a = Fabric.make_nic fab ~name:"a" ~ip:1 () in
  let b = Fabric.make_nic fab ~name:"b" ~ip:2 () in
  let log = ref [] in
  Nic.set_rx_handler b (fun pkt ->
      log := (Packet.payload_length pkt, Engine.now eng) :: !log);
  ignore (Nic.transmit a (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.synthetic 1000)));
  ignore (Nic.transmit a (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.synthetic 2000)));
  Engine.run eng ~until:(Time.ms 10.);
  match List.rev !log with
  | [ (1000, t1); (2000, t2) ] ->
      Alcotest.(check bool) "order preserved and serialised" true (t2 > t1 +. 50.)
  | _ -> Alcotest.fail "expected two arrivals in order"

(* --- content checksum / corruption -------------------------------------- *)

let test_packet_checksum () =
  let u = sample_udp () in
  Alcotest.(check bool) "fresh udp verifies" true (Packet.verify u);
  (match Packet.corrupt u ~at:17 ~xor:0x40 with
   | Some bad ->
       Alcotest.(check bool) "corrupted udp fails verify" false (Packet.verify bad)
   | None -> Alcotest.fail "udp with payload must be corruptible");
  let t =
    Packet.tcp ~src:1 ~dst:2 ~src_port:10 ~dst_port:20 ~seq:5 ~ack_no:9
      ~flags:(Packet.flags ~ack:true ()) ~window:100 (Payload.synthetic 0)
  in
  Alcotest.(check bool) "pure ack verifies" true (Packet.verify t);
  (match Packet.corrupt t ~at:0 ~xor:0x1 with
   | Some bad ->
       Alcotest.(check bool) "corrupted pure ack fails verify" false
         (Packet.verify bad)
   | None -> Alcotest.fail "pure ack must be corruptible (ack_no)");
  let empty = Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.synthetic 0) in
  Alcotest.(check bool) "empty udp not corruptible" true
    (Packet.corrupt empty ~at:0 ~xor:1 = None);
  (* Retransmits of the same content checksum identically (ident differs). *)
  let mk () = Packet.udp ~src:1 ~dst:2 ~src_port:3 ~dst_port:4 (Payload.synthetic ~tag:9 50) in
  Alcotest.(check int) "content checksum ident-independent"
    (Packet.checksum (mk ())) (Packet.checksum (mk ()))

let prop_byte_sum_closed_form =
  QCheck.Test.make ~count:300 ~name:"payload: synthetic byte_sum matches bytes"
    QCheck.(pair (int_range 0 1000) (int_range 0 700))
    (fun (len, tag) ->
      let p = Payload.synthetic ~tag len in
      Payload.byte_sum p
      = Bytes.fold_left (fun acc c -> acc + Char.code c) 0 (Payload.to_bytes p))

let prop_corruption_always_detected =
  QCheck.Test.make ~count:300 ~name:"packet: any single corruption fails verify"
    QCheck.(triple (int_range 1 2000) small_nat small_nat)
    (fun (len, at, xor) ->
      let pkt =
        Packet.udp ~src:7 ~dst:8 ~src_port:1 ~dst_port:2
          (Payload.synthetic ~tag:(at land 0xff) len)
      in
      match Packet.corrupt pkt ~at ~xor with
      | Some bad -> Packet.verify pkt && not (Packet.verify bad)
      | None -> false)

(* --- fault injection ----------------------------------------------------- *)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

let test_fault_setters_validate () =
  let eng = Engine.create () in
  let fab = Fabric.create eng () in
  let _a = Fabric.make_nic fab ~name:"a" ~ip:1 () in
  expect_invalid "loss_rate > 1" (fun () -> Fabric.set_loss_rate fab 1.5);
  expect_invalid "loss_rate < 0" (fun () -> Fabric.set_loss_rate fab (-0.1));
  expect_invalid "loss_rate nan" (fun () -> Fabric.set_loss_rate fab Float.nan);
  Fabric.set_loss_rate fab 0.;
  Fabric.set_loss_rate fab 1.;
  expect_invalid "faults loss > 1" (fun () ->
      Fabric.set_faults fab (Fabric.Faults.make ~loss:1.01 ()));
  expect_invalid "faults dup < 0" (fun () ->
      Fabric.set_faults fab (Fabric.Faults.make ~dup:(-0.5) ()));
  expect_invalid "faults corrupt nan" (fun () ->
      Fabric.set_faults fab (Fabric.Faults.make ~corrupt:Float.nan ()));
  expect_invalid "reorder_span < 1" (fun () ->
      Fabric.set_faults fab (Fabric.Faults.make ~reorder_span:0 ()));
  expect_invalid "jitter < 0" (fun () ->
      Fabric.set_faults fab (Fabric.Faults.make ~jitter_us:(-1.) ()));
  expect_invalid "unknown port" (fun () ->
      Fabric.set_link_faults fab ~ip:99 Fabric.Faults.none)

(* Two-host world: send [n] tagged datagrams from a to b, return the tags
   in arrival order plus the packets themselves. *)
let fault_world ?(n = 200) faults =
  let eng = Engine.create () in
  let fab = Fabric.create eng () in
  let a = Fabric.make_nic fab ~name:"a" ~ip:1 ~ifq_limit:1000 () in
  let b = Fabric.make_nic fab ~name:"b" ~ip:2 () in
  Fabric.set_link_faults fab ~ip:2 faults;
  let got = ref [] in
  Nic.set_rx_handler b (fun pkt -> got := pkt :: !got);
  for i = 1 to n do
    ignore
      (Nic.transmit a
         (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2
            (Payload.synthetic ~tag:i 64)))
  done;
  Engine.run eng ~until:(Time.sec 1.);
  (fab, List.rev !got)

let check_conserved fab =
  let s = Fabric.fault_stats fab in
  Alcotest.(check int) "link frame conservation"
    (s.Fabric.offered + s.Fabric.duplicated)
    (s.Fabric.delivered + Fabric.drops fab + s.Fabric.held_now);
  Alcotest.(check int) "no frames parked after run" 0 s.Fabric.held_now

let test_fault_edge_zero () =
  (* loss 0.0 delivers everything. *)
  let fab, got = fault_world (Fabric.Faults.make ~loss:0.0 ()) in
  Alcotest.(check int) "all 200 delivered" 200 (List.length got);
  Alcotest.(check int) "no fault losses" 0 (Fabric.fault_stats fab).Fabric.fault_lost;
  check_conserved fab

let test_fault_edge_one () =
  (* loss 1.0 drops everything, and the counters account for every frame. *)
  let fab, got = fault_world (Fabric.Faults.make ~loss:1.0 ()) in
  Alcotest.(check int) "nothing delivered" 0 (List.length got);
  let s = Fabric.fault_stats fab in
  Alcotest.(check int) "all 200 counted lost" 200 s.Fabric.fault_lost;
  check_conserved fab

let test_fault_dup () =
  let fab, got = fault_world (Fabric.Faults.make ~dup:1.0 ()) in
  Alcotest.(check int) "every frame doubled" 400 (List.length got);
  Alcotest.(check int) "dups counted" 200 (Fabric.fault_stats fab).Fabric.duplicated;
  check_conserved fab

let test_fault_corrupt () =
  let fab, got = fault_world (Fabric.Faults.make ~corrupt:1.0 ()) in
  Alcotest.(check int) "all delivered (corruption is not loss)" 200
    (List.length got);
  Alcotest.(check int) "corruptions counted" 200
    (Fabric.fault_stats fab).Fabric.corrupted;
  Alcotest.(check bool) "every arrival fails verify" true
    (List.for_all (fun p -> not (Packet.verify p)) got);
  check_conserved fab

let test_fault_reorder () =
  let fab, got = fault_world (Fabric.Faults.make ~reorder:0.3 ~reorder_span:4 ()) in
  (* Reordering must not lose anything: held frames are released by
     overtaking traffic or the flush timeout. *)
  Alcotest.(check int) "all 200 delivered" 200 (List.length got);
  let tags = List.filter_map (fun p -> Payload.tag (match p.Packet.body with
      | Packet.Udp (_, pl) -> pl
      | _ -> Payload.synthetic 0)) got in
  Alcotest.(check bool) "arrival order actually differs" true
    (tags <> List.sort compare tags);
  (* Bounded displacement: a frame can arrive at most reorder_span + dups
     positions late; just sanity-check the multiset is intact. *)
  Alcotest.(check (list int)) "no tag lost or duplicated"
    (List.init 200 (fun i -> i + 1))
    (List.sort compare tags);
  check_conserved fab

let test_fault_ge_burst_loss () =
  (* A channel that is perfect in Good state and awful in Bad state must
     lose something but not everything, and stay conserved. *)
  let fab, got =
    fault_world
      (Fabric.Faults.make ~ge_loss_good:0. ~ge_loss_bad:0.9 ~ge_p_gb:0.1
         ~ge_p_bg:0.3 ())
  in
  let n = List.length got in
  Alcotest.(check bool)
    (Printf.sprintf "bursty loss in (0, 200) range (%d)" n)
    true
    (n > 0 && n < 200);
  check_conserved fab

let test_fault_jitter_delivers_all () =
  let fab, got = fault_world (Fabric.Faults.make ~jitter_us:500. ()) in
  Alcotest.(check int) "all delivered under jitter" 200 (List.length got);
  check_conserved fab

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_payload_sub_concat; prop_payload_bytes_roundtrip;
      prop_codec_udp_roundtrip; prop_byte_sum_closed_form;
      prop_corruption_always_detected ]

let suite =
  [ Alcotest.test_case "payload basics" `Quick test_payload_basics;
    Alcotest.test_case "payload sub out of range" `Quick test_payload_sub_out_of_range;
    Alcotest.test_case "wire byte counts" `Quick test_wire_bytes;
    Alcotest.test_case "ports accessor" `Quick test_ports_accessor;
    Alcotest.test_case "ip pretty printer" `Quick test_ip_pp;
    Alcotest.test_case "ip_of_quad range check per octet" `Quick
      test_ip_of_quad_range_check;
    Alcotest.test_case "codec udp round-trip" `Quick test_codec_udp_roundtrip;
    Alcotest.test_case "codec tcp round-trip" `Quick test_codec_tcp_roundtrip;
    Alcotest.test_case "codec rejects corrupted header" `Quick
      test_codec_rejects_corruption;
    Alcotest.test_case "codec rejects short packet" `Quick test_codec_short_packet;
    Alcotest.test_case "internet checksum verifies" `Quick test_internet_checksum_zero;
    Alcotest.test_case "mbuf alloc/free/exhaustion" `Quick test_mbuf_alloc_free;
    Alcotest.test_case "mbuf over-free detected" `Quick test_mbuf_over_free;
    Alcotest.test_case "fabric delivery timing" `Quick test_fabric_delivery_time;
    Alcotest.test_case "interface queue overflow" `Quick test_nic_ifq_overflow;
    Alcotest.test_case "tx arena recycles descriptors" `Quick
      test_tx_arena_recycles;
    Alcotest.test_case "unroutable frames dropped" `Quick test_fabric_no_route_drop;
    Alcotest.test_case "loss injection" `Quick test_fabric_loss_injection;
    Alcotest.test_case "serialisation preserves order" `Quick
      test_serialization_ordering;
    Alcotest.test_case "packet content checksum" `Quick test_packet_checksum;
    Alcotest.test_case "fault setters validate ranges" `Quick
      test_fault_setters_validate;
    Alcotest.test_case "fault edge: loss 0.0 delivers all" `Quick
      test_fault_edge_zero;
    Alcotest.test_case "fault edge: loss 1.0 drops all" `Quick
      test_fault_edge_one;
    Alcotest.test_case "fault: duplication" `Quick test_fault_dup;
    Alcotest.test_case "fault: corruption detectable" `Quick test_fault_corrupt;
    Alcotest.test_case "fault: bounded reorder, nothing lost" `Quick
      test_fault_reorder;
    Alcotest.test_case "fault: Gilbert-Elliott burst loss" `Quick
      test_fault_ge_burst_loss;
    Alcotest.test_case "fault: jitter delivers all" `Quick
      test_fault_jitter_delivers_all ]
  @ qsuite
