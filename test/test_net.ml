(* Unit and property tests for the network substrate: payloads, packets,
   wire codec, mbuf pool, NIC and fabric timing. *)

open Lrp_engine
open Lrp_net

(* --- payload ----------------------------------------------------------- *)

let test_payload_basics () =
  let p = Payload.synthetic ~tag:7 100 in
  Alcotest.(check int) "length" 100 (Payload.length p);
  Alcotest.(check (option int)) "tag" (Some 7) (Payload.tag p);
  let b = Payload.of_string "hello" in
  Alcotest.(check int) "bytes length" 5 (Payload.length b);
  Alcotest.(check (option int)) "no tag" None (Payload.tag b)

let prop_payload_sub_concat =
  QCheck.Test.make ~count:200 ~name:"payload: sub+concat reassembles"
    QCheck.(pair (int_range 1 500) (int_range 1 499))
    (fun (len, cut) ->
      let cut = cut mod len in
      QCheck.assume (cut > 0);
      let p = Payload.synthetic ~tag:3 len in
      let a = Payload.sub p 0 cut and b = Payload.sub p cut (len - cut) in
      Payload.equal (Payload.concat [ a; b ]) p)

let prop_payload_bytes_roundtrip =
  QCheck.Test.make ~count:200 ~name:"payload: synthetic and bytes views agree"
    QCheck.(pair small_nat (int_range 0 300))
    (fun (tag, len) ->
      let p = Payload.synthetic ~tag len in
      Bytes.length (Payload.to_bytes p) = len)

let test_payload_sub_out_of_range () =
  let p = Payload.synthetic 10 in
  Alcotest.check_raises "sub out of range"
    (Invalid_argument "Payload.sub: out of range") (fun () ->
      ignore (Payload.sub p 5 6))

(* --- packet ------------------------------------------------------------ *)

let test_wire_bytes () =
  let pkt =
    Packet.udp ~src:1 ~dst:2 ~src_port:10 ~dst_port:20 (Payload.synthetic 100)
  in
  Alcotest.(check int) "udp wire size" (20 + 8 + 100) (Packet.wire_bytes pkt);
  let t =
    Packet.tcp ~src:1 ~dst:2 ~src_port:10 ~dst_port:20 ~seq:0 ~ack_no:0
      ~flags:(Packet.flags ()) ~window:0 (Payload.synthetic 100)
  in
  Alcotest.(check int) "tcp wire size" (20 + 20 + 100) (Packet.wire_bytes t)

let test_ports_accessor () =
  let pkt = Packet.udp ~src:1 ~dst:2 ~src_port:10 ~dst_port:20 (Payload.synthetic 4) in
  Alcotest.(check (option (pair int int))) "udp ports" (Some (10, 20))
    (Packet.ports pkt);
  Alcotest.(check bool) "is_udp" true (Packet.is_udp pkt);
  Alcotest.(check bool) "not tcp" false (Packet.is_tcp pkt)

let test_ip_pp () =
  let s = Fmt.str "%a" Packet.pp_ip (Packet.ip_of_quad 10 0 0 12) in
  Alcotest.(check string) "dotted quad" "10.0.0.12" s

let test_ip_of_quad_range_check () =
  (* Every octet position must be range-checked individually (a precedence
     bug once masked only the last one). *)
  Alcotest.(check int) "max quad" 0xffffffff (Packet.ip_of_quad 255 255 255 255);
  List.iteri
    (fun pos quad ->
      let a, b, c, d = quad in
      Alcotest.check_raises
        (Printf.sprintf "octet %d out of range rejected" pos)
        (Invalid_argument "ip_of_quad")
        (fun () -> ignore (Packet.ip_of_quad a b c d)))
    [ (256, 0, 0, 0); (0, 256, 0, 0); (0, 0, 256, 0); (0, 0, 0, 256) ];
  Alcotest.check_raises "negative octet rejected"
    (Invalid_argument "ip_of_quad")
    (fun () -> ignore (Packet.ip_of_quad 0 (-1) 0 0))

(* --- codec ------------------------------------------------------------- *)

let sample_udp ?(len = 64) () =
  Packet.udp ~src:(Packet.ip_of_quad 10 0 0 1) ~dst:(Packet.ip_of_quad 10 0 0 2)
    ~src_port:1234 ~dst_port:80
    (Payload.of_bytes (Bytes.init len (fun i -> Char.chr (i land 0xff))))

let test_codec_udp_roundtrip () =
  let pkt = sample_udp () in
  let b = Codec.encode pkt in
  let d = Codec.decode b in
  Alcotest.(check int) "proto" Codec.ipproto_udp d.Codec.d_proto;
  Alcotest.(check (option int)) "src port" (Some 1234) d.Codec.d_src_port;
  Alcotest.(check (option int)) "dst port" (Some 80) d.Codec.d_dst_port;
  Alcotest.(check int) "src ip" (Packet.ip_of_quad 10 0 0 1) d.Codec.d_src;
  Alcotest.(check bytes) "payload" (Payload.to_bytes (Payload.of_bytes (Bytes.init 64 (fun i -> Char.chr (i land 0xff)))))
    d.Codec.d_payload

let test_codec_tcp_roundtrip () =
  let pkt =
    Packet.tcp ~src:3 ~dst:4 ~src_port:5555 ~dst_port:80 ~seq:12345
      ~ack_no:6789 ~flags:(Packet.flags ~syn:true ~ack:true ()) ~window:8192
      (Payload.of_string "GET /")
  in
  let d = Codec.decode (Codec.encode pkt) in
  Alcotest.(check int) "proto" Codec.ipproto_tcp d.Codec.d_proto;
  Alcotest.(check (option int)) "seq" (Some 12345) d.Codec.d_seq;
  Alcotest.(check (option int)) "ack" (Some 6789) d.Codec.d_ack;
  Alcotest.(check (option int)) "window" (Some 8192) d.Codec.d_window;
  (match d.Codec.d_tcp_flags with
   | Some f ->
       Alcotest.(check bool) "syn" true f.Packet.syn;
       Alcotest.(check bool) "ack flag" true f.Packet.ack;
       Alcotest.(check bool) "fin" false f.Packet.fin
   | None -> Alcotest.fail "missing tcp flags")

let test_codec_rejects_corruption () =
  let b = Codec.encode (sample_udp ()) in
  Bytes.set b 12 (Char.chr (Char.code (Bytes.get b 12) lxor 0xff));
  Alcotest.check_raises "ip checksum detects corruption"
    (Codec.Bad_packet "IP checksum") (fun () -> ignore (Codec.decode b))

let test_codec_short_packet () =
  Alcotest.check_raises "short header rejected"
    (Codec.Bad_packet "short IP header") (fun () ->
      ignore (Codec.decode (Bytes.create 10)))

let prop_codec_udp_roundtrip =
  QCheck.Test.make ~count:200 ~name:"codec: udp encode/decode round-trips"
    QCheck.(quad (int_range 0 65535) (int_range 0 65535) (int_range 0 400) small_nat)
    (fun (sp, dp, len, tag) ->
      let pkt =
        Packet.udp ~src:(tag land 0xffffff) ~dst:42 ~src_port:sp ~dst_port:dp
          (Payload.synthetic ~tag len)
      in
      let d = Codec.decode (Codec.encode pkt) in
      d.Codec.d_src_port = Some sp && d.Codec.d_dst_port = Some dp
      && Bytes.length d.Codec.d_payload = len
      && Bytes.equal d.Codec.d_payload (Payload.to_bytes (Payload.synthetic ~tag len)))

let test_internet_checksum_zero () =
  (* Verifying a checksummed header yields 0. *)
  let pkt = sample_udp () in
  let b = Codec.encode pkt in
  Alcotest.(check int) "header verifies" 0
    (Codec.internet_checksum b ~off:0 ~len:20)

(* --- mbuf -------------------------------------------------------------- *)

let test_mbuf_alloc_free () =
  let m = Mbuf.create ~capacity:10 () in
  Alcotest.(check bool) "alloc ok" true (Mbuf.alloc m ~bytes:100);
  Alcotest.(check int) "one mbuf used" 1 (Mbuf.in_use m);
  Alcotest.(check bool) "alloc big" true (Mbuf.alloc m ~bytes:1000);
  Alcotest.(check int) "8 mbufs for 1000B at 128B" 9 (Mbuf.in_use m);
  Alcotest.(check bool) "pool exhausted" false (Mbuf.alloc m ~bytes:300);
  Alcotest.(check int) "failure counted" 1 (Mbuf.failures m);
  Mbuf.free m ~bytes:1000;
  Alcotest.(check int) "freed" 1 (Mbuf.in_use m);
  Alcotest.(check int) "peak tracked" 9 (Mbuf.peak m)

let test_mbuf_over_free () =
  let m = Mbuf.create ~capacity:10 () in
  ignore (Mbuf.alloc m ~bytes:10);
  Alcotest.check_raises "over-free detected"
    (Invalid_argument "Mbuf.free: more mbufs freed than in use") (fun () ->
      Mbuf.free m ~bytes:1000)

(* --- nic / fabric timing ------------------------------------------------ *)

let test_fabric_delivery_time () =
  let eng = Engine.create () in
  let fab = Fabric.create eng ~bandwidth_mbps:155. ~prop_delay:5. ~switch_latency:10. () in
  let a = Fabric.make_nic fab ~name:"a" ~ip:1 ~cellify:false () in
  let _b = Fabric.make_nic fab ~name:"b" ~ip:2 ~cellify:false () in
  let arrived = ref (-1.) in
  (match Fabric.make_nic fab ~name:"c" ~ip:3 () with
   | _ -> ());
  Nic.set_rx_handler _b (fun _ -> arrived := Engine.now eng);
  let pkt = Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.synthetic 972) in
  (* 1000 wire bytes at 19.375 B/us = 51.6us; + 51.6 switch port + 10 + 5 *)
  ignore (Nic.transmit a pkt);
  Engine.run eng ~until:(Time.ms 10.);
  Alcotest.(check bool)
    (Printf.sprintf "arrival time plausible (%.1f us)" !arrived)
    true
    (!arrived > 100. && !arrived < 130.)

let test_nic_ifq_overflow () =
  let eng = Engine.create () in
  let fab = Fabric.create eng () in
  let a = Fabric.make_nic fab ~name:"a" ~ip:1 ~ifq_limit:4 () in
  let _b = Fabric.make_nic fab ~name:"b" ~ip:2 () in
  let pkt = Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.synthetic 9000) in
  (* Burst of 10 large packets: the 4-deep interface queue must drop some
     (the first is in transmission, 4 queue, rest drop). *)
  let accepted = ref 0 in
  for _ = 1 to 10 do
    if Nic.transmit a pkt then incr accepted
  done;
  Alcotest.(check int) "five accepted (1 transmitting + 4 queued)" 5 !accepted;
  Alcotest.(check int) "drops counted" 5 (Nic.stats a).Nic.tx_drops

let test_fabric_no_route_drop () =
  let eng = Engine.create () in
  let fab = Fabric.create eng () in
  let a = Fabric.make_nic fab ~name:"a" ~ip:1 () in
  let pkt = Packet.udp ~src:1 ~dst:99 ~src_port:1 ~dst_port:2 (Payload.synthetic 10) in
  ignore (Nic.transmit a pkt);
  Engine.run eng ~until:(Time.ms 1.);
  Alcotest.(check int) "unroutable frame dropped" 1 (Fabric.drops fab)

let test_fabric_loss_injection () =
  let eng = Engine.create () in
  let fab = Fabric.create eng () in
  let a = Fabric.make_nic fab ~name:"a" ~ip:1 ~ifq_limit:300 () in
  let b = Fabric.make_nic fab ~name:"b" ~ip:2 () in
  Fabric.set_loss_rate fab 0.5;
  let got = ref 0 in
  Nic.set_rx_handler b (fun _ -> incr got);
  for _ = 1 to 200 do
    ignore
      (Nic.transmit a
         (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.synthetic 10)))
  done;
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check bool)
    (Printf.sprintf "roughly half delivered (%d/200)" !got)
    true
    (!got > 60 && !got < 140)

let test_serialization_ordering () =
  (* Two frames to the same destination keep FIFO order and are separated
     by at least the serialisation time. *)
  let eng = Engine.create () in
  let fab = Fabric.create eng () in
  let a = Fabric.make_nic fab ~name:"a" ~ip:1 () in
  let b = Fabric.make_nic fab ~name:"b" ~ip:2 () in
  let log = ref [] in
  Nic.set_rx_handler b (fun pkt ->
      log := (Packet.payload_length pkt, Engine.now eng) :: !log);
  ignore (Nic.transmit a (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.synthetic 1000)));
  ignore (Nic.transmit a (Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2 (Payload.synthetic 2000)));
  Engine.run eng ~until:(Time.ms 10.);
  match List.rev !log with
  | [ (1000, t1); (2000, t2) ] ->
      Alcotest.(check bool) "order preserved and serialised" true (t2 > t1 +. 50.)
  | _ -> Alcotest.fail "expected two arrivals in order"

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_payload_sub_concat; prop_payload_bytes_roundtrip;
      prop_codec_udp_roundtrip ]

let suite =
  [ Alcotest.test_case "payload basics" `Quick test_payload_basics;
    Alcotest.test_case "payload sub out of range" `Quick test_payload_sub_out_of_range;
    Alcotest.test_case "wire byte counts" `Quick test_wire_bytes;
    Alcotest.test_case "ports accessor" `Quick test_ports_accessor;
    Alcotest.test_case "ip pretty printer" `Quick test_ip_pp;
    Alcotest.test_case "ip_of_quad range check per octet" `Quick
      test_ip_of_quad_range_check;
    Alcotest.test_case "codec udp round-trip" `Quick test_codec_udp_roundtrip;
    Alcotest.test_case "codec tcp round-trip" `Quick test_codec_tcp_roundtrip;
    Alcotest.test_case "codec rejects corrupted header" `Quick
      test_codec_rejects_corruption;
    Alcotest.test_case "codec rejects short packet" `Quick test_codec_short_packet;
    Alcotest.test_case "internet checksum verifies" `Quick test_internet_checksum_zero;
    Alcotest.test_case "mbuf alloc/free/exhaustion" `Quick test_mbuf_alloc_free;
    Alcotest.test_case "mbuf over-free detected" `Quick test_mbuf_over_free;
    Alcotest.test_case "fabric delivery timing" `Quick test_fabric_delivery_time;
    Alcotest.test_case "interface queue overflow" `Quick test_nic_ifq_overflow;
    Alcotest.test_case "unroutable frames dropped" `Quick test_fabric_no_route_drop;
    Alcotest.test_case "loss injection" `Quick test_fabric_loss_injection;
    Alcotest.test_case "serialisation preserves order" `Quick
      test_serialization_ordering ]
  @ qsuite
