(* The modern receiver back-ends (NAPI, NAPI-GRO, RSS) and the
   experiment built on them.

   - GRO is byte-stream-preserving: the application sees exactly the
     bytes plain NAPI would deliver, including under wire-level
     reorder / duplication / loss, and the trace oracle accounts every
     merged segment against a real arrival;
   - the overload detector discriminates NAPI from BSD: at a rate
     where BSD livelocks, a budgeted NAPI kernel is merely overloaded
     (poll cycles retired in ksoftirqd process context), while a
     pathologically high budget keeps polling at softirq level and
     livelock fires again;
   - RSS steering is a pure hash — stable across calls and spreading
     flows over the rings — and the modern experiment is byte-identical
     at any [--jobs];
   - the reorder experiment's inversion counter is correct. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel
open Lrp_workload
open Lrp_check
open Lrp_experiments
module Trace = Lrp_trace.Trace

(* --- inversion counting ------------------------------------------------- *)

let naive_inversions a =
  let n = Array.length a and c = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if a.(i) > a.(j) then incr c
    done
  done;
  !c

let test_count_inversions_unit () =
  let check name arr expect =
    Alcotest.(check int) name expect (Modern.count_inversions arr)
  in
  check "empty" [||] 0;
  check "sorted" [| 0; 1; 2; 3 |] 0;
  check "reversed" [| 3; 2; 1; 0 |] 6;
  check "one swap" [| 1; 0; 3; 2 |] 2;
  check "duplicates" [| 2; 2; 1 |] 2

let prop_count_inversions =
  QCheck.Test.make ~count:100 ~name:"modern: mergesort inversions = naive"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 64) (int_range 0 32))
    (fun l ->
      let a = Array.of_list l in
      naive_inversions a = Modern.count_inversions (Array.copy a))

(* --- GRO byte-stream preservation --------------------------------------- *)

(* One UDP blast with wire faults, returning the application-level
   delivery sequence: per datagram, (packet ident relative to the first
   NIC arrival, payload length), in recv order.  Idents are normalised
   against the first arrival because the global ident counter differs
   between runs; the wire-side arrival stream itself is seed-determined
   and identical across architectures. *)
let udp_delivery_sequence ~arch ~seed ~faults =
  let cfg = Kernel.default_config arch in
  let w, client, server = World.pair ~seed ~cfg () in
  let tr = Kernel.tracer server in
  Trace.set_enabled tr true;
  Trace.set_filter tr [ Trace.Packet_events ];
  Fabric.set_link_faults (World.fabric w) ~ip:(Kernel.ip_address server) faults;
  let got = ref [] in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"collect" (fun self ->
         let sock = Api.socket_dgram server in
         Api.bind server sock ~owner:(Some self) ~port:9000;
         let rec loop () =
           let dg = Api.recvfrom server ~self sock in
           got :=
             (dg.Api.dg_pkt, Payload.length dg.Api.dg_payload) :: !got;
           loop ()
         in
         try loop () with Api.Socket_closed -> ()));
  ignore
    (Blast.start_source (World.engine w) (Kernel.nic client)
       ~src:(Kernel.ip_address client)
       ~dst:(Kernel.ip_address server, 9000)
       ~rate:3_000. ~size:64 ~until:(Time.ms 100.) ());
  (* Slack past the send window so reorder-held frames flush. *)
  World.run w ~until:(Time.ms 160.);
  let v = Oracle.check_tracer ~require_demux:false tr in
  let first_arrival =
    List.find_map
      (function _, _, Trace.Nic_rx e -> Some e.pkt | _ -> None)
      (Trace.events tr)
  in
  let base = match first_arrival with Some p -> p | None -> 0 in
  let seq =
    List.rev_map
      (fun (pkt, len) -> ((pkt - base) land 0xffff, len))
      !got
  in
  (seq, v)

let prop_gro_udp_stream =
  QCheck.Test.make ~count:12
    ~name:"modern: NAPI-GRO delivers NAPI's exact datagram sequence"
    QCheck.(
      quad small_int (int_range 0 10) (int_range 0 10) (int_range 0 10))
    (fun (seed, loss_pct, dup_pct, reorder_pct) ->
      let faults =
        Fabric.Faults.make
          ~loss:(float_of_int loss_pct /. 100.)
          ~dup:(float_of_int dup_pct /. 100.)
          ~reorder:(float_of_int reorder_pct /. 100.)
          ~reorder_span:6 ()
      in
      let seq_napi, v_napi =
        udp_delivery_sequence ~arch:Kernel.Napi ~seed ~faults
      in
      let seq_gro, v_gro =
        udp_delivery_sequence ~arch:Kernel.Napi_gro ~seed ~faults
      in
      if not v_napi.Oracle.ok then
        QCheck.Test.fail_reportf "NAPI oracle: %a" Oracle.pp_verdict v_napi;
      if not v_gro.Oracle.ok then
        QCheck.Test.fail_reportf "GRO oracle: %a" Oracle.pp_verdict v_gro;
      if seq_napi = [] then QCheck.Test.fail_report "no datagrams delivered";
      seq_napi = seq_gro)

(* TCP: GRO really merges here (payloads glued, checksum recomputed), so
   stream integrity is the load-bearing check.  Under a random fault
   script both kernels must surface a prefix of the sent stream, and a
   completed transfer must match byte for byte. *)
let tcp_run ?(tune = fun c -> c) ~arch ~seed ~bytes () =
  let cfg = tune (Kernel.default_config arch) in
  let w, client, server = World.pair ~cfg () in
  let tr = Kernel.tracer server in
  Trace.set_enabled tr true;
  Trace.set_filter tr [ Trace.Packet_events ];
  let script = Fault_script.generate ~seed ~duration_us:(Time.sec 1.) in
  Fault_script.apply script ~fabric:(World.fabric w) ~engine:(World.engine w);
  let received = Buffer.create bytes in
  let done_at = ref None in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
         let lsock = Api.socket_stream server in
         Api.tcp_listen server ~self lsock ~port:5001 ~backlog:4;
         let conn = Api.tcp_accept server ~self lsock in
         let rec drain () =
           match Api.tcp_recv server ~self conn ~max:65_536 with
           | `Data p ->
               Buffer.add_bytes received (Payload.to_bytes p);
               drain ()
           | `Eof -> ()
         in
         drain ();
         Api.close server ~self conn;
         done_at := Some (Engine.now (World.engine w))));
  let data =
    Bytes.init bytes (fun i -> Char.chr ((i * 131 + (i lsr 8) * 17) land 0xff))
  in
  ignore
    (Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
         let sock = Api.socket_stream client in
         match
           Api.tcp_connect client ~self sock
             ~remote:(Kernel.ip_address server, 5001)
         with
         | `Refused -> ()
         | `Ok ->
             ignore (Api.tcp_send client ~self sock (Payload.of_bytes data));
             Api.close client ~self sock));
  World.run w ~until:(Time.sec 30.);
  let v = Oracle.check_tracer ~require_demux:false tr in
  let merges =
    List.fold_left
      (fun n -> function _, _, Trace.Gro_merge _ -> n + 1 | _ -> n)
      0 (Trace.events tr)
  in
  (Bytes.to_string data, Buffer.contents received, !done_at, v, merges)

let is_prefix ~full s =
  String.length s <= String.length full
  && String.equal (String.sub full 0 (String.length s)) s

let prop_gro_tcp_stream =
  QCheck.Test.make ~count:6
    ~name:"modern: GRO-merged TCP stream intact under fault scripts"
    QCheck.small_int
    (fun seed ->
      List.for_all
        (fun arch ->
          let sent, received, done_at, v, _ =
            tcp_run ~arch ~seed ~bytes:20_000 ()
          in
          if not v.Oracle.ok then
            QCheck.Test.fail_reportf "%s oracle: %a" (Kernel.arch_name arch)
              Oracle.pp_verdict v;
          if not (is_prefix ~full:sent received) then
            QCheck.Test.fail_reportf "%s: received not a prefix of sent"
              (Kernel.arch_name arch);
          if done_at <> None && not (String.equal sent received) then
            QCheck.Test.fail_reportf "%s: completed but bytes differ"
              (Kernel.arch_name arch);
          true)
        [ Kernel.Napi; Kernel.Napi_gro ])

(* A clean-fabric bulk transfer must actually aggregate.  GRO trains
   form from what one poll batch holds, and — as on real NICs — batches
   only grow past one frame when interrupt moderation holds the IRQ
   across several arrivals, so the test turns the coalescing knobs up.
   The oracle checks each merge against an arrival. *)
let test_gro_merges_on_bulk () =
  let tune c =
    { c with Kernel.coalesce_pkts = 16; Kernel.coalesce_us = 500. }
  in
  let sent, received, done_at, v, merges =
    tcp_run ~tune ~arch:Kernel.Napi_gro ~seed:1_000_000 ~bytes:200_000 ()
  in
  Alcotest.(check bool) "oracle ok" true v.Oracle.ok;
  Alcotest.(check bool) "transfer completed" true (done_at <> None);
  Alcotest.(check string) "stream intact" sent received;
  Alcotest.(check bool)
    (Printf.sprintf "segments were merged (%d)" merges)
    true (merges > 0)

(* --- detector discrimination -------------------------------------------- *)

(* One 600 ms blast point at [rate], returning the delivered count and
   the detector report. *)
let overload_point ~arch ~rate ?(budget = 64) () =
  let cfg = { (Kernel.default_config arch) with Kernel.napi_budget = budget } in
  let w, client, server = World.pair ~seed:42 ~cfg () in
  let det = Overload.attach server in
  let sink = Blast.start_sink server ~port:9000 () in
  let until = Time.ms 600. in
  ignore
    (Blast.start_source (World.engine w) (Kernel.nic client)
       ~src:(Kernel.ip_address client)
       ~dst:(Kernel.ip_address server, 9000)
       ~rate ~size:14 ~until ());
  World.run w ~until;
  (sink.Blast.received, Overload.report det)

let test_detector_discrimination () =
  let rate = 20_000. in
  let bsd_recv, bsd = overload_point ~arch:Kernel.Bsd ~rate () in
  let napi_recv, napi = overload_point ~arch:Kernel.Napi ~rate () in
  let path_recv, path =
    overload_point ~arch:Kernel.Napi ~rate ~budget:1_000_000 ()
  in
  (* BSD: the classic receive livelock, interrupt share pinned. *)
  Alcotest.(check bool) "BSD livelocks" true (bsd.Overload.livelock_windows > 0);
  Alcotest.(check bool) "BSD collapses" true (bsd_recv < napi_recv / 4);
  (* Budgeted NAPI: overloaded (it sheds), but poll cycles retire in
     ksoftirqd process context, so no livelock verdict — and the poll
     ledger shows where the cycles went. *)
  Alcotest.(check int) "NAPI budget=64 never livelocked" 0
    napi.Overload.livelock_windows;
  Alcotest.(check bool) "NAPI overloaded (shedding, not dead)" true
    (napi.Overload.overload_windows > 0);
  Alcotest.(check bool) "NAPI sustains a plateau" true (napi_recv > 3_000);
  Alcotest.(check bool) "NAPI poll share visible" true
    (napi.Overload.peak_poll_share > 0.5);
  (* Pathological budget: the episode never reaches it, polling never
     leaves softirq level, and the detector reads it as BSD-style
     livelock — but the poll loop still retires a trickle. *)
  Alcotest.(check bool) "huge budget livelocks again" true
    (path.Overload.livelock_windows > 0);
  Alcotest.(check bool) "huge budget: bounded collapse, not zero" true
    (path_recv > 0 && path_recv < napi_recv / 2)

(* --- RSS ----------------------------------------------------------------- *)

let test_rss_steer_stable () =
  let mk i =
    Packet.udp ~src:(0x0a00_0001 + (i land 1)) ~dst:0x0a00_0002
      ~src_port:(2_000 + i) ~dst_port:9_000
      (Payload.synthetic 64)
  in
  let flows = List.init 64 mk in
  let steer p = Kernel.rss_steer p ~queues:4 in
  let a = List.map steer flows and b = List.map steer flows in
  Alcotest.(check (list int)) "steering is a pure function" a b;
  List.iter
    (fun q -> Alcotest.(check bool) "queue id in range" true (q >= 0 && q < 4))
    a;
  let used = List.sort_uniq compare a in
  Alcotest.(check bool)
    (Printf.sprintf "64 flows spread over %d/4 queues" (List.length used))
    true
    (List.length used >= 3);
  (* Same-flow packets must stay on one ring (per-flow FIFO). *)
  let p1 = mk 7 and p2 = mk 7 in
  Alcotest.(check int) "same flow, same queue" (steer p1) (steer p2)

(* The experiment itself is deterministic at any [--jobs]: same rows,
   same reorder points, byte for byte. *)
let test_modern_jobs_identical () =
  let rates = [ 8_000.; 25_000. ] in
  let r1 = Modern.run ~quick:false ~rates ~jobs:1 () in
  let r4 = Modern.run ~quick:false ~rates ~jobs:4 () in
  Alcotest.(check bool) "throughput rows identical at jobs 1 vs 4" true
    (r1 = r4);
  let sweep = [ 0.; 1_000. ] in
  let p1 = Modern.run_reorder ~sweep ~jobs:1 () in
  let p4 = Modern.run_reorder ~sweep ~jobs:4 () in
  Alcotest.(check bool) "reorder points identical at jobs 1 vs 4" true
    (p1 = p4);
  (* And the shapes the experiment exists to show, from the same rows. *)
  let find sys r = List.find (fun (x : Modern.row) -> x.Modern.system = sys) r in
  let at rate (r : Modern.row) =
    (List.find (fun (p : Fig3.point) -> p.Fig3.offered = rate) r.Modern.points)
      .Fig3.delivered
  in
  let bsd = find Common.Bsd r1 and napi = find Common.Napi r1 in
  let gro = find Common.Napi_gro r1 and soft = find Common.Soft_lrp r1 in
  Alcotest.(check bool) "BSD collapses at 25k" true (at 25_000. bsd < 500.);
  Alcotest.(check bool) "NAPI sustains at 25k" true (at 25_000. napi > 4_000.);
  Alcotest.(check bool) "NAPI-GRO beats SOFT-LRP at 25k" true
    (at 25_000. gro > at 25_000. soft);
  (* Coalescing held to the timer: a longer hold-off strictly adds
     cross-flow inversions, and with no hold-off delivery is in arrival
     order. *)
  let inv f =
    (List.find
       (fun (p : Modern.reorder_point) ->
         p.Modern.coalesce_us = f && not p.Modern.fabric_faults)
       p1)
      .Modern.inversions
  in
  Alcotest.(check int) "no hold-off, no inversions" 0 (inv 0.);
  Alcotest.(check bool) "1 ms hold-off reorders across flows" true
    (inv 1_000. > inv 0.)

let suite =
  [ Alcotest.test_case "inversion counter unit cases" `Quick
      test_count_inversions_unit;
    QCheck_alcotest.to_alcotest prop_count_inversions;
    QCheck_alcotest.to_alcotest prop_gro_udp_stream;
    QCheck_alcotest.to_alcotest prop_gro_tcp_stream;
    Alcotest.test_case "GRO merges on clean bulk transfer" `Slow
      test_gro_merges_on_bulk;
    Alcotest.test_case "detector separates NAPI from BSD livelock" `Slow
      test_detector_discrimination;
    Alcotest.test_case "RSS steering is stable and spreads flows" `Quick
      test_rss_steer_stable;
    Alcotest.test_case "modern experiment byte-identical at any --jobs" `Slow
      test_modern_jobs_identical ]
