(* Tests for lrp_lint: every rule family fires on its fixture, the
   suppression mechanism works (and reports stale exemptions), the JSON
   report matches the committed golden file, and — the gate itself — the
   live tree is finding-free. *)

open Lrp_lint

(* Locate the repo root from wherever the test binary runs (dune runtest
   uses _build/default/test; `dune exec test/main.exe` uses the caller's
   cwd).  ROADMAP.md is not copied into _build, so requiring it pins the
   real source root rather than the build mirror. *)
let repo_root () =
  let rec up dir n =
    if n = 0 then Alcotest.fail "cannot locate repo root from cwd"
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "ROADMAP.md")
    then dir
    else up (Filename.concat dir Filename.parent_dir_name) (n - 1)
  in
  up (Sys.getcwd ()) 8

let fixture_dir () = Filename.concat (repo_root ()) "test/lint_fixtures"
let fixture name = Filename.concat (fixture_dir ()) name

(* Fixture runs widen the C1/P1 scope to the fixture directory (in the
   real config those rules only apply under lib/) and register the
   polymorphic-compare fixture's type in the D3 per-rule config. *)
let fixture_config =
  {
    Config.default with
    Config.stateful_scope = [ "lib"; "lint_fixtures" ];
    Config.d3_files =
      ("lint_fixtures/d3_polycompare.ml", [ "pt" ]) :: Config.default.Config.d3_files;
    Config.d4_dirs = "test/lint_fixtures" :: Config.default.Config.d4_dirs;
    (* The C2 fixture sits in its own subdirectory: widening c2_dirs to the
       whole fixture tree would re-flag the C1 fixture's sanctioned
       [Atomic.make]. *)
    Config.c2_dirs = "lint_fixtures/c2" :: Config.default.Config.c2_dirs;
  }

let run_fixture ?(config = fixture_config) name =
  fst (Driver.run ~config [ fixture name ])

let rules fs = List.map (fun f -> f.Finding.rule) fs

let check_rules name expected fs =
  Alcotest.(check (list string)) name expected (rules fs)

(* --- one fixture per rule family -------------------------------------- *)

let test_d1 () =
  let fs = run_fixture "d1_time.ml" in
  check_rules "three D1 findings" [ "D1"; "D1"; "D1" ] fs;
  let lines = List.map (fun f -> f.Finding.line) fs in
  Alcotest.(check (list int)) "at the offending lines" [ 3; 5; 7 ] lines

let test_d2 () =
  let fs = run_fixture "d2_hashiter.ml" in
  check_rules "fold, iter and to_seq all fire" [ "D2"; "D2"; "D2" ] fs

let test_d3_marshal () =
  let fs = run_fixture "d3_marshal.ml" in
  check_rules "Marshal banned everywhere" [ "D3" ] fs

let test_d3_polycompare () =
  let fs = run_fixture "d3_polycompare.ml" in
  check_rules "bare compare and unapplied (=) fire; infix scalar does not"
    [ "D3"; "D3" ] fs;
  (* The rule is config-driven: without the per-file entry it is silent. *)
  let fs' = run_fixture ~config:Config.default "d3_polycompare.ml" in
  check_rules "not in config: no findings" [] fs'

let test_d4 () =
  let fs = run_fixture "d4_hashkey.ml" in
  check_rules "tuple and record keys fire; named and int keys do not"
    [ "D4"; "D4" ] fs;
  Alcotest.(check (list int))
    "at the two literal-key probes" [ 5; 7 ]
    (List.map (fun f -> f.Finding.line) fs);
  (* Scope-driven: outside the hot-path directories the rule is silent. *)
  let fs' = run_fixture ~config:Config.default "d4_hashkey.ml" in
  check_rules "out of scope: no findings" [] fs'

let test_c1 () =
  let fs = run_fixture "c1_ref.ml" in
  check_rules "ref and Hashtbl.create fire; Atomic, suppressed and local do not"
    [ "C1"; "C1" ] fs;
  Alcotest.(check (list int))
    "at the two unsuppressed bindings" [ 3; 5 ]
    (List.map (fun f -> f.Finding.line) fs)

let test_c2 () =
  let fs = run_fixture "c2/shared.ml" in
  check_rules
    "nested maker, array literal and Atomic fire; head-level maker stays C1"
    [ "C2"; "C2"; "C2"; "C1" ] fs;
  Alcotest.(check (list int))
    "at the offending bindings" [ 5; 7; 9; 12 ]
    (List.map (fun f -> f.Finding.line) fs);
  (* Scope-driven: outside the cell-parallel directories neither C2 nor
     C1 applies, so the shared-ok exemption is reported as stale. *)
  let fs' = run_fixture ~config:Config.default "c2/shared.ml" in
  check_rules "out of scope: only the now-stale suppression" [ "SUP" ] fs'

let test_p1 () =
  let fs = run_fixture "p1_print.ml" in
  check_rules "printf and print_endline fire" [ "P1"; "P1" ] fs;
  (* Out of the stateful scope (the real config only covers lib/), the
     same file is clean: executables may print. *)
  let fs' = run_fixture ~config:Config.default "p1_print.ml" in
  check_rules "out of scope: no findings" [] fs'

let test_sup_unused () =
  let fs = run_fixture "sup_unused.ml" in
  check_rules "stale suppression is a finding" [ "SUP" ] fs

let test_clean () = check_rules "clean file" [] (run_fixture "clean.ml")

(* --- L1 over the dune fixture ------------------------------------------ *)

let test_l1 () =
  let text = In_channel.with_open_bin (fixture "dune.l1fixture") In_channel.input_all in
  let stanzas = Dunefile.stanzas_of text in
  let fs =
    Finding.sort
      (Layers.check ~config:Config.default ~file:"dune.l1fixture" stanzas)
  in
  check_rules "upward dep, unranked lib, unranked dep; executables exempt"
    [ "L1"; "L1"; "L1" ] fs;
  let msgs = String.concat "\n" (List.map (fun f -> f.Finding.msg) fs) in
  let contains needle =
    let n = String.length needle and m = String.length msgs in
    let rec at i = i + n <= m && (String.sub msgs i n = needle || at (i + 1)) in
    at 0
  in
  let has needle = Alcotest.(check bool) needle true (contains needle) in
  has "lrp_net (rank 3) depends on lrp_experiments (rank 8)";
  has "lrp_mystery has no rank";
  has "lrp_kernel depends on lrp_unranked"

let test_dunefile_parser () =
  let text =
    "; comment\n\
     (library (name a) (libraries b c))\n\
     (executables (names x y) (libraries z))\n\
     (rule (action (run foo)))\n"
  in
  let st = Dunefile.stanzas_of text in
  Alcotest.(check int) "three stanzas" 3 (List.length st);
  let names = List.map (fun s -> s.Dunefile.name) st in
  Alcotest.(check (list string)) "names" [ "a"; "x"; "y" ] names;
  let lib = List.hd st in
  Alcotest.(check (list string)) "libraries" [ "b"; "c" ] lib.Dunefile.libraries

(* --- suppression mechanics --------------------------------------------- *)

let test_suppress_claim () =
  let text =
    "let a = 1\n\
     (* lint: unordered-ok — same line *) let b = 2\n\
     (* lint: domain-local — next line *)\n\
     let c = 3\n"
  in
  let t = Suppress.scan text in
  Alcotest.(check bool) "same-line claim" true
    (Suppress.claim t ~rule:"D2" ~line:2);
  Alcotest.(check bool) "next-line claim" true
    (Suppress.claim t ~rule:"C1" ~line:4);
  Alcotest.(check bool) "wrong tag does not claim" false
    (Suppress.claim t ~rule:"P1" ~line:2);
  Alcotest.(check bool) "far line does not claim" false
    (Suppress.claim t ~rule:"D2" ~line:9);
  Alcotest.(check int) "both claimed, none unused" 0
    (List.length (Suppress.unused t ~file:"x.ml"))

(* --- report format ------------------------------------------------------ *)

let relativize root f =
  let prefix = Filename.concat root "test/" in
  let file = f.Finding.file in
  let file =
    if String.length file > String.length prefix
       && String.sub file 0 (String.length prefix) = prefix
    then String.sub file (String.length prefix) (String.length file - String.length prefix)
    else file
  in
  { f with Finding.file }

let test_golden_json () =
  let root = repo_root () in
  let findings, _ = Driver.run ~config:fixture_config [ fixture_dir () ] in
  let findings = Finding.sort (List.map (relativize root) findings) in
  let got = Finding.to_json findings in
  let golden_path = fixture "golden.json" in
  (* LINT_GOLDEN_REGEN=1 dune test rewrites the golden file in place;
     review the diff before committing it. *)
  if Sys.getenv_opt "LINT_GOLDEN_REGEN" <> None then
    Out_channel.with_open_bin golden_path (fun oc ->
        Out_channel.output_string oc got);
  let want = In_channel.with_open_bin golden_path In_channel.input_all in
  (* The report must also be well-formed JSON by the repo's own parser. *)
  (match Lrp_trace.Json.parse got with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "lint JSON does not parse: %s" e);
  Alcotest.(check string) "golden JSON report" want got

let test_json_escaping () =
  let f =
    Finding.v ~rule:"D1" ~file:"a\"b.ml" ~line:1 ~col:0 "msg with \"quotes\"\nand newline"
  in
  let json = Finding.to_json [ f ] in
  (match Lrp_trace.Json.parse json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "escaped JSON does not parse: %s" e);
  let contains needle =
    let n = String.length needle and m = String.length json in
    let rec at i = i + n <= m && (String.sub json i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "quotes escaped" true (contains "\\\"quotes\\\"");
  Alcotest.(check bool) "newline escaped" true (contains "\\n")

let test_config_matching () =
  Alcotest.(check bool) "suffix match with ../ prefix" true
    (Config.has_suffix_path "../lib/core/det.ml" "lib/core/det.ml");
  Alcotest.(check bool) "exact path matches itself" true
    (Config.has_suffix_path "lib/core/det.ml" "lib/core/det.ml");
  Alcotest.(check bool) "no partial-component match" false
    (Config.has_suffix_path "lib/core/notdet.ml" "det.ml");
  Alcotest.(check bool) "scope by component" true
    (Config.in_scope "/abs/repo/lib/net/fabric.ml" [ "lib" ]);
  Alcotest.(check bool) "bin not in lib scope" false
    (Config.in_scope "bin/lrp_lint.ml" [ "lib" ])

(* --- the gate: zero findings on the live tree -------------------------- *)

let test_self_check () =
  let root = repo_root () in
  let dirs = List.map (Filename.concat root) [ "lib"; "bin"; "bench" ] in
  List.iter
    (fun d ->
      if not (Sys.file_exists d) then
        Alcotest.failf "self-check: missing directory %s" d)
    dirs;
  let findings, stats = Driver.run dirs in
  (* Guard against a silently-degenerate scan: the tree has dozens of
     modules and one dune file per library/executable directory. *)
  Alcotest.(check bool) "scanned a real tree (.ml count)" true
    (stats.Driver.ml_files >= 55);
  Alcotest.(check bool) "scanned the dune files" true
    (stats.Driver.dune_files >= 14);
  match findings with
  | [] -> ()
  | fs ->
      Alcotest.failf "live tree has %d lint findings:\n%s" (List.length fs)
        (String.concat "\n" (List.map Finding.to_text fs))

let suite =
  [
    Alcotest.test_case "D1 fires on ambient time/randomness" `Quick test_d1;
    Alcotest.test_case "D2 fires on unordered Hashtbl iteration" `Quick test_d2;
    Alcotest.test_case "D3 fires on Marshal" `Quick test_d3_marshal;
    Alcotest.test_case "D3 poly compare is config-driven" `Quick
      test_d3_polycompare;
    Alcotest.test_case "D4 fires on structural Hashtbl keys" `Quick test_d4;
    Alcotest.test_case "C1 fires on module-level state" `Quick test_c1;
    Alcotest.test_case "C2 fires on nested shard-shared state" `Quick test_c2;
    Alcotest.test_case "P1 fires on stdout writes in scope" `Quick test_p1;
    Alcotest.test_case "unused suppression is a finding" `Quick test_sup_unused;
    Alcotest.test_case "clean file has zero findings" `Quick test_clean;
    Alcotest.test_case "L1 fires on layer violations" `Quick test_l1;
    Alcotest.test_case "dune stanza parser" `Quick test_dunefile_parser;
    Alcotest.test_case "suppression claim mechanics" `Quick test_suppress_claim;
    Alcotest.test_case "golden JSON report" `Quick test_golden_json;
    Alcotest.test_case "JSON escaping round-trips" `Quick test_json_escaping;
    Alcotest.test_case "config path matching" `Quick test_config_matching;
    Alcotest.test_case "self-check: live tree is finding-free" `Quick
      test_self_check;
  ]
