(* Edge-case and equivalence tests for the two-tier timer wheel.

   The wheel's constants (lib/engine/twheel.ml): 3 levels of 256 buckets,
   16 us level-0 granularity, so the horizon seen from tick 0 is
   2^24 * 16 = 268435456 us.  Events at or beyond the horizon overflow to
   the comparison heap; everything else rides the O(1) buckets.  These
   tests pin the routing split at the boundary, handle validity across
   cascade migrations, the filter drop for cancelled bucket residents, and
   — the load-bearing one — that a wheel engine and a pure-heap engine
   produce identical fire traces for arbitrary schedule/cancel/reschedule
   scripts. *)

open Lrp_engine

let check_float = Alcotest.(check (float 1e-9))

(* 2^24 ticks * 16 us: first key (from tick 0) that must overflow. *)
let horizon = 268_435_456.

let stats e = Engine.timer_stats e

let test_horizon_boundary () =
  let eng = Engine.create () in
  let s0 = stats eng in
  let log = ref [] in
  let ev tag = fun () -> log := (tag, Engine.now eng) :: !log in
  (* 20 us: tick 1 from tick 0 — past the due edge, so it buckets. *)
  ignore (Engine.schedule eng ~at:20. (ev "near"));
  ignore (Engine.schedule eng ~at:(horizon -. 16.) (ev "last-bucket"));
  ignore (Engine.schedule eng ~at:horizon (ev "at-horizon"));
  ignore (Engine.schedule eng ~at:(horizon +. 1.) (ev "past-horizon"));
  let s1 = stats eng in
  Alcotest.(check int) "two schedules ride the wheel" 2
    (s1.Engine.routed_wheel - s0.Engine.routed_wheel);
  Alcotest.(check int) "horizon and beyond go to the heap" 2
    (s1.Engine.routed_heap - s0.Engine.routed_heap);
  Engine.run eng ~until:(horizon *. 2.);
  Alcotest.(check (list string)) "fired in key order"
    [ "near"; "last-bucket"; "at-horizon"; "past-horizon" ]
    (List.rev_map fst !log);
  check_float "horizon event fired on time" horizon
    (List.assoc "at-horizon" !log)

let test_due_tick_routes_to_heap () =
  (* Keys inside the current 16-us tick are due "now": they skip the
     bucket they would immediately be poured out of and go straight to
     the heap.  Keys in the next tick still ride the wheel. *)
  let eng = Engine.create () in
  let s0 = stats eng in
  let log = ref [] in
  ignore (Engine.schedule eng ~at:0. (fun () -> log := "t0" :: !log));
  ignore (Engine.schedule eng ~at:15.9 (fun () -> log := "t15.9" :: !log));
  ignore (Engine.schedule eng ~at:16. (fun () -> log := "t16" :: !log));
  let s1 = stats eng in
  Alcotest.(check int) "due-tick schedules go straight to the heap" 2
    (s1.Engine.routed_heap - s0.Engine.routed_heap);
  Alcotest.(check int) "next-tick schedule rides the wheel" 1
    (s1.Engine.routed_wheel - s0.Engine.routed_wheel);
  Engine.run eng ~until:100.;
  Alcotest.(check (list string)) "fired in key order"
    [ "t0"; "t15.9"; "t16" ] (List.rev !log)

let test_reschedule_across_boundary () =
  (* One periodic event that re-arms itself from the wheel into the
     overflow heap and back into the wheel.  The slot and thunk are reused
     throughout; only the routing changes. *)
  let eng = Engine.create () in
  let times = ref [] in
  let h = ref Engine.none in
  let count = ref 0 in
  h :=
    Engine.schedule eng ~at:10. (fun () ->
        times := Engine.now eng :: !times;
        incr count;
        if !count = 1 then Engine.reschedule_after eng !h ~delay:1e9
        else if !count = 2 then Engine.reschedule_after eng !h ~delay:10.);
  Engine.run eng ~until:2e9;
  Alcotest.(check (list (float 1e-9)))
    "wheel -> heap -> wheel re-arm timestamps"
    [ 10.; 1_000_000_010.; 1_000_000_020. ]
    (List.rev !times);
  Alcotest.(check int) "slot fully retired" 0 (Engine.pending_events eng)

let test_cancel_in_bucket_dropped_at_pour () =
  let eng = Engine.create () in
  let s0 = stats eng in
  let fired = ref [] in
  (* 5e6 us = tick 312500: above 2^16, so a level-2 resident. *)
  let e = Engine.schedule eng ~at:5_000_000. (fun () -> fired := "e" :: !fired) in
  ignore (Engine.schedule eng ~at:5_000_016. (fun () -> fired := "f" :: !fired));
  Engine.cancel eng e;
  Engine.run eng ~until:6_000_000.;
  Alcotest.(check (list string)) "cancelled resident never fires" [ "f" ]
    (List.rev !fired);
  let s1 = stats eng in
  Alcotest.(check bool) "filter dropped it at pour, not via the heap" true
    (s1.Engine.pour_skipped - s0.Engine.pour_skipped >= 1);
  (* The pour freed the slot; the next schedule may recycle it.  The stale
     handle's generation must not let it touch the new occupant. *)
  let ok = ref false in
  let g = Engine.schedule_after eng ~delay:10. (fun () -> ok := true) in
  Engine.cancel eng e;
  Alcotest.(check bool) "stale cancel leaves recycled slot pending" true
    (Engine.is_pending eng g);
  Engine.run eng ~until:7_000_000.;
  Alcotest.(check bool) "recycled event fired" true !ok

let test_handle_valid_across_cascade () =
  (* A far event migrates level 2 -> level 1 -> level 0 as intermediate
     pops turn the wheel; its handle must stay pending (and cancellable)
     through every migration. *)
  let eng = Engine.create () in
  let far = ref Engine.none in
  let observations = ref [] in
  let observe () = observations := Engine.is_pending eng !far :: !observations in
  far := Engine.schedule eng ~at:5_000_000. (fun () -> ());
  List.iter
    (fun t -> ignore (Engine.schedule eng ~at:t observe))
    [ 100_000.; 1_000_000.; 2_500_000.; 4_900_000. ];
  Engine.run eng ~until:4_950_000.;
  Alcotest.(check (list bool)) "pending at every migration stage"
    [ true; true; true; true ] !observations;
  Engine.cancel eng !far;
  Engine.run eng ~until:6_000_000.;
  Alcotest.(check int) "cancel after migration still lands" 0
    (Engine.pending_events eng)

let test_step_on_all_cancelled_queue () =
  (* A queue holding only cancelled wheel residents: [step] must report
     emptiness, not trip over the filter draining the last live entry.
     The key sits in tick 1 (20 us) so the entry is a bucket resident —
     due-tick keys route straight to the heap and are lazily dropped at
     pop instead. *)
  let eng = Engine.create () in
  let h = Engine.schedule eng ~at:20. (fun () -> ()) in
  Engine.cancel eng h;
  Alcotest.(check bool) "step sees an (effectively) empty queue" false
    (Engine.step eng);
  Alcotest.(check int) "nothing pending" 0 (Engine.pending_events eng)

let test_fifo_ties_in_far_bucket () =
  (* Five events share one key in a high-level bucket; two are cancelled
     before the bucket pours.  Survivors must fire in schedule order. *)
  let eng = Engine.create () in
  let log = ref [] in
  let hs =
    List.init 5 (fun i ->
        Engine.schedule eng ~at:1_000_000. (fun () -> log := i :: !log))
  in
  Engine.cancel eng (List.nth hs 1);
  Engine.cancel eng (List.nth hs 3);
  Engine.run eng ~until:2_000_000.;
  Alcotest.(check (list int)) "FIFO among survivors" [ 0; 2; 4 ]
    (List.rev !log)

(* --- wheel-vs-heap equivalence property ----------------------------- *)

(* Interpret an op script against one engine, returning the fire trace.
   Delays span every wheel level plus the overflow heap; every 8th
   schedule is a self-rescheduling periodic that re-arms twice, so the
   script also exercises slot reuse across the wheel/heap boundary. *)
let run_script ~pure_heap ops =
  let eng = Engine.create ~pure_heap () in
  let log = ref [] in
  let handles = ref [] in
  let next_id = ref 0 in
  let scales = [| 1.; 16.; 300.; 70_000.; 2.0e7; 3.0e8 |] in
  List.iter
    (fun n ->
      match n mod 4 with
      | 0 | 1 ->
          let delay = float_of_int (1 + (n mod 17)) *. scales.(n mod 6) in
          let id = !next_id in
          incr next_id;
          if n mod 8 = 0 then begin
            let remaining = ref 2 in
            let h = ref Engine.none in
            h :=
              Engine.schedule_after eng ~delay (fun () ->
                  log := (Engine.now eng, id) :: !log;
                  if !remaining > 0 then begin
                    decr remaining;
                    Engine.reschedule_after eng !h ~delay
                  end);
            handles := !h :: !handles
          end
          else
            handles :=
              Engine.schedule_after eng ~delay (fun () ->
                  log := (Engine.now eng, id) :: !log)
              :: !handles
      | 2 -> (
          match !handles with
          | [] -> ()
          | l -> Engine.cancel eng (List.nth l (n mod List.length l)))
      | _ ->
          Engine.run eng
            ~until:(Engine.now eng +. (float_of_int (n mod 1000) *. 50.)))
    ops;
  Engine.run eng ~until:1e15;
  List.rev !log

let prop_wheel_heap_equivalent =
  QCheck.Test.make ~count:200
    ~name:"wheel engine and pure-heap engine produce identical fire traces"
    QCheck.(list small_nat)
    (fun ops ->
      run_script ~pure_heap:false ops = run_script ~pure_heap:true ops)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_wheel_heap_equivalent ]

let suite =
  [ Alcotest.test_case "routing splits exactly at the wheel horizon" `Quick
      test_horizon_boundary;
    Alcotest.test_case "due-tick schedules route straight to the heap" `Quick
      test_due_tick_routes_to_heap;
    Alcotest.test_case "reschedule crosses the wheel/heap boundary" `Quick
      test_reschedule_across_boundary;
    Alcotest.test_case "cancelled bucket resident is dropped at pour" `Quick
      test_cancel_in_bucket_dropped_at_pour;
    Alcotest.test_case "handle stays valid across cascade migration" `Quick
      test_handle_valid_across_cascade;
    Alcotest.test_case "step on an all-cancelled queue reports empty" `Quick
      test_step_on_all_cancelled_queue;
    Alcotest.test_case "FIFO ties survive a high-level bucket pour" `Quick
      test_fifo_ties_in_far_bucket ]
  @ qsuite
