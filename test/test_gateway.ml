(* IP-forwarding / gateway tests (paper section 3.5 and the firewall
   motivation of section 2.3): a multi-homed host forwards between two
   networks; under LRP the forwarding daemon's priority bounds the
   resources transit traffic can take. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel
open Lrp_workload

(* Two networks glued by a gateway.  Hosts: client on net A, server on
   net B. *)
let make_topology arch ?(fwd_nice = 0) () =
  let engine = Engine.create () in
  let net_a = Fabric.create engine () in
  let net_b = Fabric.create engine () in
  let cfg = Kernel.default_config arch in
  let gw_cfg = { cfg with Kernel.forwarding = true; Kernel.fwd_nice = fwd_nice } in
  let client =
    Kernel.create engine net_a ~name:"client" ~ip:(Packet.ip_of_quad 10 0 0 10)
      cfg
  in
  let gw =
    Kernel.create engine net_a ~name:"gw" ~ip:(Packet.ip_of_quad 10 0 0 1)
      gw_cfg
  in
  ignore
    (Kernel.add_interface gw net_b ~ip:(Packet.ip_of_quad 10 0 1 1) ());
  let server =
    Kernel.create engine net_b ~name:"server" ~ip:(Packet.ip_of_quad 10 0 1 20)
      cfg
  in
  (* Off-link frames on each network go to the gateway's attachment. *)
  Fabric.set_default_gateway net_a ~ip:(Packet.ip_of_quad 10 0 0 1);
  Fabric.set_default_gateway net_b ~ip:(Packet.ip_of_quad 10 0 1 1);
  (engine, client, gw, server)

let archs = [ Kernel.Bsd; Kernel.Soft_lrp; Kernel.Ni_lrp; Kernel.Early_demux ]

let test_udp_through_gateway () =
  List.iter
    (fun arch ->
      let engine, client, gw, server = make_topology arch () in
      let got = ref None in
      ignore
        (Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
             let sock = Api.socket_dgram server in
             Api.bind server sock ~owner:(Some self) ~port:5000;
             let dg = Api.recvfrom server ~self sock in
             got := Some dg.Api.dg_from));
      ignore
        (Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
             let sock = Api.socket_dgram client in
             ignore (Api.bind_ephemeral client sock ~owner:(Some self));
             Api.sendto client ~self sock
               ~dst:(Kernel.ip_address server, 5000)
               (Payload.synthetic 64)));
      Engine.run engine ~until:(Time.sec 1.);
      (match !got with
       | Some (from_ip, _) ->
           Alcotest.(check int)
             (Printf.sprintf "%s: datagram crossed the gateway"
                (Kernel.arch_name arch))
             (Kernel.ip_address client) from_ip
       | None ->
           Alcotest.fail
             (Printf.sprintf "%s: datagram lost" (Kernel.arch_name arch)));
      Alcotest.(check bool)
        (Printf.sprintf "%s: forwarding counted" (Kernel.arch_name arch))
        true
        ((Kernel.stats gw).Kernel.forwarded >= 1))
    archs

let test_tcp_through_gateway () =
  List.iter
    (fun arch ->
      let engine, client, _gw, server = make_topology arch () in
      let echoed = ref None in
      ignore
        (Cpu.spawn (Kernel.cpu server) ~name:"srv" (fun self ->
             let lsock = Api.socket_stream server in
             Api.tcp_listen server ~self lsock ~port:80 ~backlog:4;
             let conn = Api.tcp_accept server ~self lsock in
             (match Api.tcp_recv server ~self conn ~max:4096 with
              | `Data p -> ignore (Api.tcp_send server ~self conn p)
              | `Eof -> ());
             Api.close server ~self conn));
      ignore
        (Cpu.spawn (Kernel.cpu client) ~name:"cli" (fun self ->
             let sock = Api.socket_stream client in
             match
               Api.tcp_connect client ~self sock
                 ~remote:(Kernel.ip_address server, 80)
             with
             | `Refused -> ()
             | `Ok ->
                 ignore (Api.tcp_send client ~self sock (Payload.of_string "hi"));
                 (match Api.tcp_recv client ~self sock ~max:100 with
                  | `Data p ->
                      echoed := Some (Bytes.to_string (Payload.to_bytes p))
                  | `Eof -> ());
                 Api.close client ~self sock));
      Engine.run engine ~until:(Time.sec 10.);
      Alcotest.(check (option string))
        (Printf.sprintf "%s: TCP echo across two networks" (Kernel.arch_name arch))
        (Some "hi") !echoed)
    [ Kernel.Bsd; Kernel.Soft_lrp; Kernel.Ni_lrp ]

let test_non_gateway_drops_transit () =
  (* A host that is not forwarding must drop transit packets (and count
     them), not deliver or crash. *)
  let engine = Engine.create () in
  let net = Fabric.create engine () in
  let cfg = Kernel.default_config Kernel.Soft_lrp in
  let a = Kernel.create engine net ~name:"a" ~ip:(Packet.ip_of_quad 10 0 0 10) cfg in
  let b = Kernel.create engine net ~name:"b" ~ip:(Packet.ip_of_quad 10 0 0 11) cfg in
  Fabric.set_default_gateway net ~ip:(Kernel.ip_address b);
  (* Address off this network: the switch hands it to b, which is not a
     gateway. *)
  ignore
    (Engine.schedule engine ~at:10. (fun () ->
         ignore
           (Nic.transmit (Kernel.nic a)
              (Packet.udp ~src:(Kernel.ip_address a)
                 ~dst:(Packet.ip_of_quad 10 9 9 9) ~src_port:1 ~dst_port:2
                 (Payload.synthetic 14)))));
  Engine.run engine ~until:(Time.ms 100.);
  Alcotest.(check int) "transit packet dropped and counted" 1
    (Kernel.stats b).Kernel.fwd_drops

let test_lrp_gateway_flood_fairness () =
  (* The paper's firewall motivation: under LRP, the forwarding daemon's
     priority bounds the CPU transit floods can take, so a local server
     process keeps running; under BSD, forwarding happens at softint
     priority and starves it. *)
  let run arch =
    let engine, client, gw, _server = make_topology arch ~fwd_nice:0 () in
    ignore client;
    (* A local application on the gateway itself. *)
    let app_progress = ref 0. in
    ignore
      (Cpu.spawn (Kernel.cpu gw) ~name:"local-app" (fun _self ->
           let rec loop () =
             Proc.compute 1_000.;
             app_progress := !app_progress +. 1_000.;
             loop ()
           in
           loop ()));
    (* A transit flood through the gateway. *)
    ignore
      (Blast.start_source engine (Kernel.nic client)
         ~src:(Kernel.ip_address client)
         ~dst:(Packet.ip_of_quad 10 0 1 20, 9000)
         ~rate:20_000. ~size:14 ~until:(Time.sec 1.) ());
    Engine.run engine ~until:(Time.sec 1.);
    !app_progress /. Time.sec 1.
  in
  let bsd = run Kernel.Bsd in
  let lrp = run Kernel.Soft_lrp in
  Alcotest.(check bool)
    (Printf.sprintf
       "local app keeps a much larger share under LRP (%.2f vs %.2f)" lrp bsd)
    true
    (lrp > 2. *. Float.max 0.01 bsd && lrp > 0.15)

let suite =
  [ Alcotest.test_case "UDP through the gateway (all archs)" `Quick
      test_udp_through_gateway;
    Alcotest.test_case "TCP through the gateway" `Quick test_tcp_through_gateway;
    Alcotest.test_case "non-gateway drops transit packets" `Quick
      test_non_gateway_drops_transit;
    Alcotest.test_case "LRP gateway keeps local apps alive under flood" `Slow
      test_lrp_gateway_flood_fairness ]
