(* Tests for the measurement helpers. *)

open Lrp_stats.Stats

let test_summary () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "count" 5 (Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 3. (Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Summary.minimum s);
  Alcotest.(check (float 1e-9)) "max" 5. (Summary.maximum s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.) (Summary.stddev s)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check (float 0.)) "empty mean" 0. (Summary.mean s);
  Alcotest.(check (float 0.)) "empty stddev" 0. (Summary.stddev s)

let test_samples_percentiles () =
  let s = Samples.create () in
  for i = 1 to 100 do
    Samples.add s (float_of_int i)
  done;
  Alcotest.(check (float 1.)) "median" 50. (Samples.median s);
  Alcotest.(check (float 1.)) "p90" 90. (Samples.percentile s 90.);
  Alcotest.(check (float 0.)) "p0 = min" 1. (Samples.percentile s 0.);
  Alcotest.(check (float 0.)) "p100 = max" 100. (Samples.percentile s 100.);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Samples.mean s)

let test_samples_edge_cases () =
  let empty = Samples.create () in
  Alcotest.(check int) "empty count" 0 (Samples.count empty);
  Alcotest.(check bool) "empty median is nan" true
    (Float.is_nan (Samples.median empty));
  Alcotest.(check bool) "empty mean is nan" true
    (Float.is_nan (Samples.mean empty));
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Samples.percentile empty 99.));
  let one = Samples.create () in
  Samples.add one 42.;
  Alcotest.(check (float 0.)) "single median" 42. (Samples.median one);
  Alcotest.(check (float 0.)) "single p0" 42. (Samples.percentile one 0.);
  Alcotest.(check (float 0.)) "single p100" 42. (Samples.percentile one 100.);
  (* interleaving reads and writes must keep the sort cache coherent *)
  let s = Samples.create () in
  Samples.add s 3.;
  Samples.add s 1.;
  Alcotest.(check (float 0.)) "sorted on read" 1. (Samples.percentile s 0.);
  Samples.add s 0.5;
  Alcotest.(check (float 0.)) "cache invalidated by add" 0.5
    (Samples.percentile s 0.);
  Alcotest.(check (float 0.)) "max after growth" 3.
    (Samples.percentile s 100.);
  Alcotest.(check int) "count tracks adds" 3 (Samples.count s)

let test_rate_meter () =
  let r = Rate.create () in
  for _ = 1 to 50 do
    Rate.mark r
  done;
  (* 50 events in half a second -> 100/s *)
  Alcotest.(check (float 1e-6)) "rate" 100. (Rate.rate r ~now:500_000.);
  Alcotest.(check int) "window reset" 0 (Rate.total_since_reset r)

let test_unit_helpers () =
  Alcotest.(check (float 1e-9)) "mbps: 1 byte/us = 8 Mbit/s" 8.
    (Lrp_stats.Stats.mbps ~bytes:1_000_000 ~us:1_000_000.);
  Alcotest.(check (float 1e-9)) "pps" 1_000.
    (Lrp_stats.Stats.pps ~packets:1_000 ~us:1_000_000.)

let prop_percentile_monotone =
  QCheck.Test.make ~count:100 ~name:"stats: percentiles are monotone"
    QCheck.(list_of_size (QCheck.Gen.int_range 2 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Samples.create () in
      List.iter (Samples.add s) xs;
      Samples.percentile s 25. <= Samples.percentile s 75.)

let suite =
  [ Alcotest.test_case "summary statistics" `Quick test_summary;
    Alcotest.test_case "empty summary" `Quick test_summary_empty;
    Alcotest.test_case "sample percentiles" `Quick test_samples_percentiles;
    Alcotest.test_case "sample edge cases" `Quick test_samples_edge_cases;
    Alcotest.test_case "rate meter" `Quick test_rate_meter;
    Alcotest.test_case "unit helpers" `Quick test_unit_helpers ]
  @ [ QCheck_alcotest.to_alcotest prop_percentile_monotone ]
