(* Tests for the process/CPU model: coroutine effects, dispatch levels,
   preemption, accounting. *)

open Lrp_engine
open Lrp_sim

let mk () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~name:"host" () in
  (eng, cpu)

let test_single_compute () =
  let eng, cpu = mk () in
  let done_at = ref (-1.) in
  let _p =
    Cpu.spawn cpu ~name:"worker" (fun _self ->
        Proc.compute 1_000.;
        done_at := Engine.now eng)
  in
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check (float 1e-6)) "work completed after 1000us" 1_000. !done_at;
  Alcotest.(check (float 1e-6)) "user time charged" 1_000. (Cpu.time_user cpu)

let test_sequential_computes () =
  let eng, cpu = mk () in
  let marks = ref [] in
  ignore
    (Cpu.spawn cpu ~name:"worker" (fun _ ->
         Proc.compute 100.;
         marks := Engine.now eng :: !marks;
         Proc.compute 250.;
         marks := Engine.now eng :: !marks));
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check (list (float 1e-6))) "marks" [ 100.; 350. ] (List.rev !marks)

let test_two_procs_share_cpu () =
  (* Two equal compute-bound processes must finish in roughly twice the
     standalone time, interleaved by the quantum. *)
  let eng, cpu = mk () in
  let finish = Hashtbl.create 4 in
  let spawn_one name =
    ignore
      (Cpu.spawn cpu ~name (fun _ ->
           Proc.compute (Time.sec 1.);
           Hashtbl.replace finish name (Engine.now eng)))
  in
  spawn_one "a";
  spawn_one "b";
  Engine.run eng ~until:(Time.sec 5.);
  let fa = Hashtbl.find finish "a" and fb = Hashtbl.find finish "b" in
  Alcotest.(check bool) "both finish near 2s" true
    (Time.to_sec fa > 1.8 && Time.to_sec fa < 2.2
     && Time.to_sec fb > 1.8 && Time.to_sec fb < 2.2);
  Alcotest.(check bool) "many context switches happened" true
    (Cpu.context_switches cpu > 10)

let test_block_wakeup () =
  let eng, cpu = mk () in
  let wq = Proc.waitq "test" in
  let woke_at = ref (-1.) in
  ignore
    (Cpu.spawn cpu ~name:"sleeper" (fun _ ->
         Proc.block wq;
         woke_at := Engine.now eng));
  ignore
    (Engine.schedule eng ~at:500. (fun () -> ignore (Cpu.wakeup_one cpu wq)));
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check (float 1e-6)) "woken at 500" 500. !woke_at

let test_wakeup_all () =
  let eng, cpu = mk () in
  let wq = Proc.waitq "test" in
  let woken = ref 0 in
  for i = 1 to 3 do
    ignore
      (Cpu.spawn cpu ~name:(Printf.sprintf "s%d" i) (fun _ ->
           Proc.block wq;
           incr woken))
  done;
  ignore (Engine.schedule eng ~at:100. (fun () -> ignore (Cpu.wakeup_all cpu wq)));
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check int) "all woken" 3 !woken

let test_wakeup_one_is_fifo () =
  let eng, cpu = mk () in
  let wq = Proc.waitq "test" in
  let order = ref [] in
  for i = 1 to 3 do
    ignore
      (Cpu.spawn cpu ~name:(Printf.sprintf "s%d" i) (fun _ ->
           Proc.block wq;
           order := i :: !order))
  done;
  ignore (Engine.schedule eng ~at:100. (fun () -> ignore (Cpu.wakeup_one cpu wq)));
  ignore (Engine.schedule eng ~at:200. (fun () -> ignore (Cpu.wakeup_one cpu wq)));
  ignore (Engine.schedule eng ~at:300. (fun () -> ignore (Cpu.wakeup_one cpu wq)));
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check (list int)) "FIFO wake order" [ 1; 2; 3 ] (List.rev !order)

let test_sleep_for () =
  let eng, cpu = mk () in
  let woke_at = ref (-1.) in
  ignore
    (Cpu.spawn cpu ~name:"sleeper" (fun _ ->
         Proc.sleep_for (Time.ms 3.);
         woke_at := Engine.now eng));
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check (float 1e-6)) "slept 3ms" (Time.ms 3.) !woke_at

let test_hard_preempts_user () =
  let eng, cpu = mk () in
  let user_done = ref (-1.) in
  let intr_done = ref (-1.) in
  ignore
    (Cpu.spawn cpu ~name:"worker" (fun _ ->
         Proc.compute 1_000.;
         user_done := Engine.now eng));
  ignore
    (Engine.schedule eng ~at:200. (fun () ->
         Cpu.post_hard cpu ~cost:300. (fun () -> intr_done := Engine.now eng)));
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check (float 1e-6)) "interrupt ran immediately" 500. !intr_done;
  Alcotest.(check (float 1e-6)) "user delayed by interrupt" 1_300. !user_done;
  Alcotest.(check (float 1e-6)) "hard time" 300. (Cpu.time_hard cpu)

let test_hard_preempts_soft () =
  let eng, cpu = mk () in
  let log = ref [] in
  ignore
    (Engine.schedule eng ~at:0. (fun () ->
         Cpu.post_soft cpu ~cost:1_000. (fun () ->
             log := ("soft", Engine.now eng) :: !log)));
  ignore
    (Engine.schedule eng ~at:100. (fun () ->
         Cpu.post_hard cpu ~cost:50. (fun () ->
             log := ("hard", Engine.now eng) :: !log)));
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check (list (pair string (float 1e-6))))
    "hard finishes first; soft resumes and finishes late"
    [ ("hard", 150.); ("soft", 1_050.) ]
    (List.rev !log)

let test_soft_preempts_user_only () =
  let eng, cpu = mk () in
  let user_done = ref (-1.) in
  ignore
    (Cpu.spawn cpu ~name:"worker" (fun _ ->
         Proc.compute 400.;
         user_done := Engine.now eng));
  ignore
    (Engine.schedule eng ~at:100. (fun () ->
         Cpu.post_soft cpu ~cost:200. (fun () -> ())));
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check (float 1e-6)) "user resumed after softint" 600. !user_done;
  Alcotest.(check (float 1e-6)) "soft time" 200. (Cpu.time_soft cpu)

let test_interrupt_storm_starves_user () =
  (* The livelock mechanism in miniature: interrupt work arriving faster
     than it can be processed leaves zero CPU for processes. *)
  let eng, cpu = mk () in
  let progressed = ref 0. in
  ignore
    (Cpu.spawn cpu ~name:"victim" (fun _ ->
         let rec loop () =
           Proc.compute 100.;
           progressed := !progressed +. 100.;
           loop ()
         in
         loop ()));
  (* 100us of hard-interrupt work every 80us: oversubscribed. *)
  let rec storm () =
    Cpu.post_hard cpu ~cost:100. (fun () -> ());
    if Engine.now eng < Time.ms 50. then
      ignore (Engine.schedule_after eng ~delay:80. storm)
  in
  ignore (Engine.schedule eng ~at:1_000. storm);
  Engine.run eng ~until:(Time.ms 60.);
  Alcotest.(check bool)
    (Printf.sprintf "victim starved (progressed %.0fus of ~1000us)" !progressed)
    true
    (!progressed <= 1_100.)

let test_priority_preemption () =
  (* A woken thread with much better priority preempts a CPU hog. *)
  let eng, cpu = mk () in
  let wq = Proc.waitq "wq" in
  let woke = ref (-1.) in
  ignore
    (Cpu.spawn cpu ~name:"hog" ~nice:10 (fun _ ->
         let rec loop () =
           Proc.compute 1_000.;
           loop ()
         in
         loop ()));
  ignore
    (Cpu.spawn cpu ~name:"interactive" (fun _ ->
         Proc.block wq;
         Proc.compute 10.;
         woke := Engine.now eng));
  ignore (Engine.schedule eng ~at:50_500. (fun () -> ignore (Cpu.wakeup_one cpu wq)));
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check bool)
    (Printf.sprintf "interactive ran promptly (at %.0fus)" !woke)
    true
    (!woke >= 50_510. && !woke < 52_000.)

let test_ctx_switch_penalty () =
  (* With a working-set penalty, alternating processes pay cache reloads:
     total completion takes longer than the pure compute time. *)
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~ctx_switch_cost:50. ~name:"host" () in
  let finish = ref Time.zero in
  let spawn_one name =
    ignore
      (Cpu.spawn cpu ~name ~working_set:500. (fun _ ->
           Proc.compute (Time.sec 0.5);
           if Engine.now eng > !finish then finish := Engine.now eng))
  in
  spawn_one "a";
  spawn_one "b";
  Engine.run eng ~until:(Time.sec 5.);
  let overhead = Time.to_sec !finish -. 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "switch overhead visible (%.3fs extra)" overhead)
    true
    (overhead > 0.003);
  Alcotest.(check bool) "overhead accounted" true
    (Cpu.time_user cpu > Time.sec 1.)

let test_tick_misaccounting () =
  (* Interrupt time is charged to the interrupted process: a process that
     merely coexists with an interrupt storm accumulates p_cpu. *)
  let eng, cpu = mk () in
  let victim =
    Cpu.spawn cpu ~name:"victim" (fun _ ->
        let rec loop () =
          Proc.compute 1_000.;
          loop ()
        in
        loop ())
  in
  (* Interrupt work eats 90% of the CPU. *)
  let rec storm () =
    Cpu.post_hard cpu ~cost:900. (fun () -> ());
    if Engine.now eng < Time.ms 900. then
      ignore (Engine.schedule_after eng ~delay:1_000. storm)
  in
  ignore (Engine.schedule eng ~at:0. storm);
  Engine.run eng ~until:(Time.ms 990.);
  let ticks = Lrp_sched.Sched.ticks_charged victim.Proc.thread in
  (* ~99 ticks happen in 990ms; the victim only ran ~10% of the time but is
     charged for nearly all of them. *)
  Alcotest.(check bool)
    (Printf.sprintf "victim charged %d ticks despite ~10%% CPU" ticks)
    true
    (ticks > 80)

let test_join () =
  let eng, cpu = mk () in
  let joined_at = ref (-1.) in
  let child =
    Cpu.spawn cpu ~name:"child" (fun _ -> Proc.compute 700.)
  in
  ignore
    (Cpu.spawn cpu ~name:"parent" (fun _ ->
         Cpu.join child;
         joined_at := Engine.now eng));
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check (float 1e-6)) "joined when child exited" 700. !joined_at;
  Alcotest.(check bool) "child exited" true child.Proc.exited;
  Alcotest.(check int) "only parent was reaped too" 0 (Cpu.proc_count cpu)

let test_join_exited () =
  let eng, cpu = mk () in
  let ok = ref false in
  let child = Cpu.spawn cpu ~name:"child" (fun _ -> ()) in
  ignore
    (Cpu.spawn cpu ~name:"parent" (fun _ ->
         Proc.sleep_for 100.;
         Cpu.join child;
         (* joining an already-dead process returns immediately *)
         ok := true));
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check bool) "join on exited child returns" true !ok

let test_yield_round_robin () =
  let eng, cpu = mk () in
  let log = ref [] in
  let spawn_one name =
    ignore
      (Cpu.spawn cpu ~name (fun _ ->
           for _ = 1 to 3 do
             Proc.compute 10.;
             log := name :: !log;
             Proc.yield ()
           done))
  in
  spawn_one "a";
  spawn_one "b";
  Engine.run eng ~until:(Time.sec 1.);
  Alcotest.(check (list string)) "yield alternates"
    [ "a"; "b"; "a"; "b"; "a"; "b" ]
    (List.rev !log)

let test_idle_time () =
  let eng, cpu = mk () in
  ignore (Cpu.spawn cpu ~name:"w" (fun _ -> Proc.compute 1_000.));
  Engine.run eng ~until:(Time.ms 10.);
  Alcotest.(check (float 1.)) "idle = elapsed - busy" 9_000. (Cpu.time_idle cpu);
  Alcotest.(check bool) "utilization = 10%" true
    (Float.abs (Cpu.utilization cpu -. 0.1) < 0.01)

let test_zero_cost_work () =
  let eng, cpu = mk () in
  let ran = ref false in
  ignore
    (Engine.schedule eng ~at:10. (fun () ->
         Cpu.post_hard cpu ~cost:0. (fun () -> ran := true)));
  Engine.run eng ~until:(Time.ms 1.);
  Alcotest.(check bool) "zero-cost interrupt action ran" true !ran

let suite =
  [ Alcotest.test_case "single compute" `Quick test_single_compute;
    Alcotest.test_case "sequential computes" `Quick test_sequential_computes;
    Alcotest.test_case "two procs share the CPU" `Quick test_two_procs_share_cpu;
    Alcotest.test_case "block / wakeup_one" `Quick test_block_wakeup;
    Alcotest.test_case "wakeup_all" `Quick test_wakeup_all;
    Alcotest.test_case "wakeup_one is FIFO" `Quick test_wakeup_one_is_fifo;
    Alcotest.test_case "sleep_for" `Quick test_sleep_for;
    Alcotest.test_case "hard interrupt preempts user" `Quick test_hard_preempts_user;
    Alcotest.test_case "hard preempts soft" `Quick test_hard_preempts_soft;
    Alcotest.test_case "soft preempts user only" `Quick test_soft_preempts_user_only;
    Alcotest.test_case "interrupt storm starves processes" `Quick
      test_interrupt_storm_starves_user;
    Alcotest.test_case "wakeup preempts worse-priority hog" `Quick
      test_priority_preemption;
    Alcotest.test_case "context-switch / cache penalty" `Quick test_ctx_switch_penalty;
    Alcotest.test_case "tick mis-accounting charges the interrupted" `Quick
      test_tick_misaccounting;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "join on exited process" `Quick test_join_exited;
    Alcotest.test_case "yield round-robins" `Quick test_yield_round_robin;
    Alcotest.test_case "idle time accounting" `Quick test_idle_time;
    Alcotest.test_case "zero-cost interrupt work" `Quick test_zero_cost_work ]
