(* Tests for the LRP core: NI channels and the channel table. *)

open Lrp_net
open Lrp_proto
open Lrp_core

let pkt ?(src = 1) ?(sport = 10) ?(dport = 20) () =
  Packet.udp ~src ~dst:2 ~src_port:sport ~dst_port:dport (Payload.synthetic 14)

(* --- channel ------------------------------------------------------------ *)

let test_channel_fifo () =
  let ch = Channel.create ~limit:8 ~name:"t" () in
  (match Channel.enqueue ch (pkt ~sport:1 ()) with
   | Channel.Queued `Was_empty -> ()
   | _ -> Alcotest.fail "first enqueue reports empty transition");
  (match Channel.enqueue ch (pkt ~sport:2 ()) with
   | Channel.Queued `Was_nonempty -> ()
   | _ -> Alcotest.fail "second enqueue reports nonempty");
  (match Channel.dequeue ch with
   | Some p ->
       Alcotest.(check (option (pair int int))) "fifo order" (Some (1, 20))
         (Packet.ports p)
   | None -> Alcotest.fail "dequeue");
  Alcotest.(check int) "length" 1 (Channel.length ch)

let test_channel_early_discard () =
  let ch = Channel.create ~limit:2 ~name:"t" () in
  ignore (Channel.enqueue ch (pkt ()));
  ignore (Channel.enqueue ch (pkt ()));
  (match Channel.enqueue ch (pkt ()) with
   | Channel.Discarded -> ()
   | Channel.Queued _ -> Alcotest.fail "expected early discard at full queue");
  Alcotest.(check int) "discard counted" 1 (Channel.discarded ch);
  Alcotest.(check int) "enqueued counted" 2 (Channel.enqueued ch)

let test_channel_processing_gate () =
  let ch = Channel.create ~limit:8 ~name:"t" () in
  Channel.disable_processing ch;
  (match Channel.enqueue ch (pkt ()) with
   | Channel.Discarded -> ()
   | Channel.Queued _ -> Alcotest.fail "disabled channel must discard");
  Alcotest.(check int) "disabled discard counted" 1 (Channel.discarded_disabled ch);
  Channel.enable_processing ch;
  (match Channel.enqueue ch (pkt ()) with
   | Channel.Queued _ -> ()
   | Channel.Discarded -> Alcotest.fail "re-enabled channel must accept")

let test_channel_interrupt_flag () =
  let ch = Channel.create ~name:"t" () in
  Alcotest.(check bool) "initially off" false (Channel.interrupt_requested ch);
  Channel.request_interrupt ch;
  Alcotest.(check bool) "on" true (Channel.interrupt_requested ch);
  Channel.clear_interrupt_request ch;
  Alcotest.(check bool) "off" false (Channel.interrupt_requested ch)

let test_channel_extract () =
  let ch = Channel.create ~name:"t" () in
  ignore (Channel.enqueue ch (pkt ~sport:1 ()));
  ignore (Channel.enqueue ch (pkt ~sport:2 ()));
  ignore (Channel.enqueue ch (pkt ~sport:3 ()));
  let odd =
    Channel.extract ch (fun p ->
        match Packet.ports p with Some (sp, _) -> sp mod 2 = 1 | None -> false)
  in
  Alcotest.(check int) "two extracted" 2 (List.length odd);
  Alcotest.(check int) "one left" 1 (Channel.length ch);
  (match Channel.dequeue ch with
   | Some p ->
       Alcotest.(check (option (pair int int))) "the even one remains"
         (Some (2, 20)) (Packet.ports p)
   | None -> Alcotest.fail "dequeue")

(* --- chantab ------------------------------------------------------------- *)

let test_chantab_udp_resolution () =
  let tab = Chantab.create () in
  let ch = Channel.create ~name:"udp:20" () in
  Chantab.add_udp tab ~port:20 ch;
  (match Chantab.resolve tab (Demux.flow_of_packet (pkt ())) with
   | Some c -> Alcotest.(check int) "right channel" (Channel.id ch) (Channel.id c)
   | None -> Alcotest.fail "expected resolution");
  (match Chantab.resolve tab (Demux.flow_of_packet (pkt ~dport:99 ())) with
   | None -> ()
   | Some _ -> Alcotest.fail "unbound port must not resolve");
  Alcotest.(check int) "miss counted" 1 (Chantab.unmatched tab)

let tcp_pkt ?(src = 7) ?(sport = 1000) ?(dport = 80) ?(syn = false) ?(ack = true) () =
  Packet.tcp ~src ~dst:2 ~src_port:sport ~dst_port:dport ~seq:0 ~ack_no:0
    ~flags:(Packet.flags ~syn ~ack ()) ~window:100 (Payload.synthetic 0)

let test_chantab_tcp_resolution () =
  let tab = Chantab.create () in
  let listen_ch = Channel.create ~name:"listen:80" () in
  let conn_ch = Channel.create ~name:"conn" () in
  Chantab.add_tcp_listen tab ~port:80 listen_ch;
  Chantab.add_tcp tab ~src:7 ~src_port:1000 ~dst_port:80 conn_ch;
  (* Established-connection segment: exact channel. *)
  (match Chantab.resolve tab (Demux.flow_of_packet (tcp_pkt ())) with
   | Some c -> Alcotest.(check int) "exact match" (Channel.id conn_ch) (Channel.id c)
   | None -> Alcotest.fail "no resolution");
  (* Fresh SYN from another source: listen channel. *)
  (match Chantab.resolve tab (Demux.flow_of_packet (tcp_pkt ~src:8 ~syn:true ~ack:false ())) with
   | Some c -> Alcotest.(check int) "listen match" (Channel.id listen_ch) (Channel.id c)
   | None -> Alcotest.fail "no resolution");
  (* Non-SYN from unknown source: no channel (dropped / RST daemon). *)
  (match Chantab.resolve tab (Demux.flow_of_packet (tcp_pkt ~src:9 ())) with
   | None -> ()
   | Some _ -> Alcotest.fail "stray segment must not match the listener")

let test_chantab_fragment_channel () =
  let tab = Chantab.create () in
  let big = Packet.udp ~src:1 ~dst:2 ~src_port:1 ~dst_port:9 (Payload.synthetic 20_000) in
  match Ip.fragment big ~mtu:9180 with
  | _first :: second :: _ ->
      (match Chantab.resolve tab (Demux.flow_of_packet second) with
       | Some c ->
           Alcotest.(check int) "special fragment channel"
             (Channel.id (Chantab.frag_channel tab)) (Channel.id c)
       | None -> Alcotest.fail "fragments must go to the fragment channel")
  | _ -> Alcotest.fail "expected fragments"

let test_chantab_icmp_channel () =
  let tab = Chantab.create () in
  let ping = Packet.icmp ~src:1 ~dst:2 Packet.Echo_request (Payload.synthetic 8) in
  match Chantab.resolve tab (Demux.flow_of_packet ping) with
  | Some c ->
      Alcotest.(check int) "proxy daemon channel"
        (Channel.id (Chantab.icmp_channel tab)) (Channel.id c)
  | None -> Alcotest.fail "ICMP must resolve to the daemon channel"

let test_chantab_removal () =
  let tab = Chantab.create () in
  let ch = Channel.create ~name:"udp:20" () in
  Chantab.add_udp tab ~port:20 ch;
  Chantab.remove_udp tab ~port:20;
  Alcotest.(check bool) "removed port does not resolve" true
    (Chantab.resolve tab (Demux.flow_of_packet (pkt ())) = None);
  Alcotest.(check int) "no channels left" 0 (Chantab.udp_channel_count tab)

(* --- flowtab ------------------------------------------------------------ *)

let test_flowtab_million () =
  let tab = Flowtab.create ~dummy:(-1) () in
  let n = 1_000_000 in
  for i = 0 to n - 1 do
    Flowtab.add_new tab ~hi:i ~lo:(i * 31) i
  done;
  Alcotest.(check int) "length" n (Flowtab.length tab);
  let ok = ref true in
  for i = 0 to n - 1 do
    let s = Flowtab.find tab ~hi:i ~lo:(i * 31) in
    if s < 0 || Flowtab.value tab s <> i then ok := false
  done;
  Alcotest.(check bool) "all million keys present with their values" true !ok;
  (* robin hood keeps the longest probe sequence short even at 7/8 load *)
  Alcotest.(check bool) "clustering bound" true (Flowtab.max_probe tab < 64);
  for i = 0 to n - 1 do
    if i land 1 = 0 then ignore (Flowtab.remove tab ~hi:i ~lo:(i * 31))
  done;
  Alcotest.(check int) "half removed" (n / 2) (Flowtab.length tab);
  let ok = ref true in
  for i = 0 to n - 1 do
    let found = Flowtab.find tab ~hi:i ~lo:(i * 31) >= 0 in
    if found <> (i land 1 = 1) then ok := false
  done;
  Alcotest.(check bool) "survivors exactly the odd keys" true !ok

(* Iteration must be a pure function of the insert/remove sequence: the
   demux table is iterated for reporting, and a parallel sweep (--jobs 4)
   must observe the same order as a serial one (--jobs 1).  Build the
   same table on the main domain and on spawned domains and compare the
   full iteration transcript. *)
let test_flowtab_iteration_deterministic () =
  let build () =
    let tab = Flowtab.create ~dummy:(-1) () in
    let r = ref 12345 in
    let next () =
      r := ((!r * 1103515245) + 12345) land 0x3FFFFFFF;
      !r
    in
    for i = 0 to 4_999 do
      let hi = next () land 0xFFFF and lo = next () land 0xFFFF in
      if i land 7 = 3 then ignore (Flowtab.remove tab ~hi ~lo)
      else Flowtab.add tab ~hi ~lo i
    done;
    let out = ref [] in
    Flowtab.iter (fun ~hi ~lo v -> out := (hi, lo, v) :: !out) tab;
    List.rev !out
  in
  let here = build () in
  Alcotest.(check bool) "non-trivial table" true (List.length here > 1_000);
  let domains = Array.init 3 (fun _ -> Domain.spawn build) in
  Array.iter
    (fun d ->
      Alcotest.(check bool) "iteration order identical on a spawned domain"
        true (Domain.join d = here))
    domains

(* Property: a flowtab driven by a random add/remove/find script agrees
   with an association-list model at every step and in its final
   contents. *)
let prop_flowtab_matches_model =
  let op = QCheck.(triple (int_range 0 2) (int_range 0 15) (int_range 0 15)) in
  QCheck.Test.make ~count:300 ~name:"flowtab agrees with an assoc-list model"
    (QCheck.list op)
    (fun ops ->
      let tab = Flowtab.create ~dummy:(-1) () in
      let model = ref [] in
      let drop hi lo =
        List.filter (fun (h, l, _) -> not (h = hi && l = lo)) !model
      in
      List.iteri
        (fun i (op, hi, lo) ->
          match op with
          | 0 ->
              Flowtab.add tab ~hi ~lo i;
              model := (hi, lo, i) :: drop hi lo
          | 1 ->
              let removed = Flowtab.remove tab ~hi ~lo in
              let present =
                List.exists (fun (h, l, _) -> h = hi && l = lo) !model
              in
              if removed <> present then
                QCheck.Test.fail_report "remove disagrees with model";
              model := drop hi lo
          | _ ->
              let got = Flowtab.find_opt tab ~hi ~lo in
              let want =
                List.find_map
                  (fun (h, l, v) -> if h = hi && l = lo then Some v else None)
                  !model
              in
              if got <> want then
                QCheck.Test.fail_report "find disagrees with model")
        ops;
      let dump = ref [] in
      Flowtab.iter (fun ~hi ~lo v -> dump := (hi, lo, v) :: !dump) tab;
      let sort = List.sort compare in
      Flowtab.length tab = List.length !model && sort !dump = sort !model)

(* Property: resolution of a UDP flow agrees with a plain PCB lookup oracle
   over random bind sets. *)
let prop_chantab_matches_pcb =
  QCheck.Test.make ~count:200 ~name:"chantab: udp resolution == pcb oracle"
    QCheck.(pair (list (int_range 1 40)) (int_range 1 40))
    (fun (ports, probe) ->
      let tab = Chantab.create () in
      let oracle = Hashtbl.create 8 in
      List.iter
        (fun port ->
          if not (Hashtbl.mem oracle port) then begin
            Hashtbl.replace oracle port ();
            Chantab.add_udp tab ~port (Channel.create ~name:"c" ())
          end)
        ports;
      let flow = Demux.flow_of_packet (pkt ~dport:probe ()) in
      (Chantab.resolve tab flow <> None) = Hashtbl.mem oracle probe)

let qsuite =
  [ QCheck_alcotest.to_alcotest prop_chantab_matches_pcb;
    QCheck_alcotest.to_alcotest prop_flowtab_matches_model ]

let suite =
  [ Alcotest.test_case "channel FIFO + transitions" `Quick test_channel_fifo;
    Alcotest.test_case "channel early discard" `Quick test_channel_early_discard;
    Alcotest.test_case "channel processing gate" `Quick test_channel_processing_gate;
    Alcotest.test_case "channel interrupt flag" `Quick test_channel_interrupt_flag;
    Alcotest.test_case "channel extract" `Quick test_channel_extract;
    Alcotest.test_case "chantab udp resolution" `Quick test_chantab_udp_resolution;
    Alcotest.test_case "chantab tcp exact/listen" `Quick test_chantab_tcp_resolution;
    Alcotest.test_case "chantab fragment channel" `Quick test_chantab_fragment_channel;
    Alcotest.test_case "chantab icmp daemon channel" `Quick test_chantab_icmp_channel;
    Alcotest.test_case "chantab removal" `Quick test_chantab_removal;
    Alcotest.test_case "flowtab at a million flows" `Quick test_flowtab_million;
    Alcotest.test_case "flowtab iteration is deterministic across domains"
      `Quick test_flowtab_iteration_deterministic ]
  @ qsuite
