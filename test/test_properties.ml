(* Cross-cutting property tests: conservation laws of the CPU model,
   long-run scheduler fairness, TCP stream integrity under randomised
   application behaviour, and engine ordering under random self-scheduling. *)

open Lrp_engine
open Lrp_sim

(* --- engine: time ordering under random self-scheduling ----------------- *)

let prop_engine_time_ordering =
  QCheck.Test.make ~count:50 ~name:"engine: events fire in time order"
    QCheck.(pair small_int (int_range 1 50))
    (fun (seed, n) ->
      let eng = Engine.create ~seed () in
      let rng = Rng.create seed in
      let times = ref [] in
      let rec spawn_random depth =
        if depth < 3 then
          for _ = 1 to n / (depth + 1) do
            ignore
              (Engine.schedule_after eng ~delay:(Rng.float rng 1_000.) (fun () ->
                   times := Engine.now eng :: !times;
                   spawn_random (depth + 1)))
          done
      in
      spawn_random 0;
      Engine.run eng ~until:10_000.;
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | [ _ ] | [] -> true
      in
      sorted (List.rev !times))

(* --- CPU model: time conservation --------------------------------------- *)

let prop_cpu_time_conservation =
  QCheck.Test.make ~count:25 ~name:"cpu: hard+soft+user+idle = elapsed"
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, nprocs) ->
      let eng = Engine.create ~seed () in
      let cpu = Cpu.create eng ~ctx_switch_cost:10. ~name:"c" () in
      let rng = Rng.create (seed + 1) in
      for i = 1 to nprocs do
        let busy = 50. +. Rng.float rng 500. in
        let idle = Rng.float rng 300. in
        ignore
          (Cpu.spawn cpu ~name:(Printf.sprintf "p%d" i) (fun _ ->
               for _ = 1 to 20 do
                 Proc.compute busy;
                 Proc.sleep_for idle
               done))
      done;
      (* Random interrupt load on top. *)
      let rec storm k =
        if k > 0 then
          ignore
            (Engine.schedule_after eng ~delay:(Rng.float rng 500.) (fun () ->
                 Cpu.post_hard cpu ~cost:(Rng.float rng 50.) (fun () -> ());
                 Cpu.post_soft cpu ~cost:(Rng.float rng 80.) (fun () -> ());
                 storm (k - 1)))
      in
      storm 40;
      let horizon = Time.ms 100. in
      Engine.run eng ~until:horizon;
      let total =
        Cpu.time_hard cpu +. Cpu.time_soft cpu +. Cpu.time_user cpu
        +. Cpu.time_idle cpu
      in
      Float.abs (total -. horizon) < 1e-3)

(* --- scheduler: long-run fairness ---------------------------------------- *)

let test_equal_procs_get_equal_shares () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~name:"c" () in
  let procs =
    List.init 4 (fun i ->
        Cpu.spawn cpu ~name:(Printf.sprintf "p%d" i) (fun _ ->
            let rec loop () =
              Proc.compute 500.;
              loop ()
            in
            loop ()))
  in
  Engine.run eng ~until:(Time.sec 10.);
  List.iter
    (fun (p : Proc.t) ->
      let share = p.Proc.cpu_time /. Time.sec 10. in
      Alcotest.(check bool)
        (Printf.sprintf "%s share %.3f within 25%% of fair" p.Proc.name share)
        true
        (share > 0.25 *. 0.75 && share < 0.25 *. 1.25))
    procs

let test_nice_gets_less () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~name:"c" () in
  let mk nice name =
    Cpu.spawn cpu ~name ~nice (fun _ ->
        let rec loop () =
          Proc.compute 500.;
          loop ()
        in
        loop ())
  in
  let normal = mk 0 "normal" in
  let niced = mk 10 "niced" in
  Engine.run eng ~until:(Time.sec 10.);
  Alcotest.(check bool)
    (Printf.sprintf "nice +10 got %.2fs vs %.2fs"
       (Time.to_sec niced.Proc.cpu_time)
       (Time.to_sec normal.Proc.cpu_time))
    true
    (niced.Proc.cpu_time < 0.8 *. normal.Proc.cpu_time
     && niced.Proc.cpu_time > 0.)

let test_interactive_latency_preserved_under_load () =
  (* A mostly-sleeping process must get the CPU promptly when it wakes,
     even with compute-bound competition: the essence of decay-usage
     scheduling. *)
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~name:"c" () in
  for i = 1 to 2 do
    ignore
      (Cpu.spawn cpu ~name:(Printf.sprintf "hog%d" i) (fun _ ->
           let rec loop () =
             Proc.compute 1_000.;
             loop ()
           in
           loop ()))
  done;
  let wait_latency = Lrp_stats.Stats.Samples.create () in
  ignore
    (Cpu.spawn cpu ~name:"interactive" (fun _ ->
         for _ = 1 to 50 do
           Proc.sleep_for (Time.ms 100.);
           let t0 = Engine.now eng in
           Proc.compute 100.;
           Lrp_stats.Stats.Samples.add wait_latency (Engine.now eng -. t0 -. 100.)
         done));
  Engine.run eng ~until:(Time.sec 10.);
  let p90 = Lrp_stats.Stats.Samples.percentile wait_latency 90. in
  Alcotest.(check bool)
    (Printf.sprintf "interactive dispatch p90 = %.0f us" p90)
    true
    (p90 < Time.ms 15.)

(* --- TCP: integrity under randomised application write patterns ---------- *)

let prop_tcp_random_writes =
  QCheck.Test.make ~count:20 ~name:"tcp: random write sizes arrive intact"
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 12) (int_range 1 5_000)))
    (fun (seed, sizes) ->
      QCheck.assume (sizes <> []);
      let open Lrp_net in
      let open Lrp_kernel in
      let open Lrp_workload in
      let cfg = Kernel.default_config Kernel.Soft_lrp in
      let w = World.make ~seed () in
      let client = World.add_host w ~name:"client" cfg in
      let server = World.add_host w ~name:"server" cfg in
      let received = Buffer.create 1024 in
      let eof = ref false in
      ignore
        (Lrp_sim.Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
             let lsock = Api.socket_stream server in
             Api.tcp_listen server ~self lsock ~port:80 ~backlog:2;
             let conn = Api.tcp_accept server ~self lsock in
             let rec drain () =
               match Api.tcp_recv server ~self conn ~max:65_536 with
               | `Data p ->
                   Buffer.add_bytes received (Payload.to_bytes p);
                   drain ()
               | `Eof -> eof := true
             in
             drain ()));
      let sent = Buffer.create 1024 in
      ignore
        (Lrp_sim.Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
             let sock = Api.socket_stream client in
             match
               Api.tcp_connect client ~self sock
                 ~remote:(Kernel.ip_address server, 80)
             with
             | `Refused -> ()
             | `Ok ->
                 List.iteri
                   (fun i n ->
                     let data =
                       Bytes.init n (fun j -> Char.chr ((i + (j * 7)) land 0xff))
                     in
                     Buffer.add_bytes sent data;
                     ignore (Api.tcp_send client ~self sock (Payload.of_bytes data)))
                   sizes;
                 Api.close client ~self sock));
      World.run w ~until:(Time.sec 60.);
      !eof && String.equal (Buffer.contents sent) (Buffer.contents received))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_engine_time_ordering; prop_cpu_time_conservation;
      prop_tcp_random_writes ]

let suite =
  [ Alcotest.test_case "equal processes share equally" `Slow
      test_equal_procs_get_equal_shares;
    Alcotest.test_case "nice +10 yields CPU" `Slow test_nice_gets_less;
    Alcotest.test_case "interactive latency under compute load" `Slow
      test_interactive_latency_preserved_under_load ]
  @ qsuite
