(* Fixture: rule D3 — polymorphic comparison in a module whose record
   type carries floats (this file is named in the per-rule config by the
   test; without that config entry the rule stays quiet). *)

type pt = { x : float; mutable hits : int }

let sort_pts pts = List.sort compare pts

let eq_pt : pt -> pt -> bool = ( = )

(* Applied scalar comparison is fine even here: *)
let positive p = p.x > 0. && p.hits = 0
