(* Fixture: a clean module — zero findings expected. *)

type t = { mutable n : int }

let make () = { n = 0 }

let bump t = t.n <- t.n + 1

let sum tbl = List.fold_left ( + ) 0 (List.map snd tbl)
