(* Fixture: rule D3 — Marshal is never representation-stable. *)

let save x = Marshal.to_string x []
