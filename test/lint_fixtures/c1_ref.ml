(* Fixture: rule C1 — module-level mutable state. *)

let hits = ref 0

let cache : (int, string) Hashtbl.t = Hashtbl.create 16

(* The sanctioned form: *)
let total = Atomic.make 0

(* A justified exemption: *)
(* lint: domain-local — scratch buffer, reset at the start of every run *)
let scratch = Buffer.create 64

(* Function-local state is not module state: *)
let count xs =
  let n = ref 0 in
  List.iter (fun _ -> incr n) xs;
  !n

let use () = (hits, cache, total, scratch)
