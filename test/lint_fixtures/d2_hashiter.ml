(* Fixture: rule D2 — unordered hash-table iteration. *)

let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let dump tbl f = Hashtbl.iter f tbl

let stream tbl = Hashtbl.to_seq tbl
