(* Fixture: rule C2 — shard-shared mutable state on cell-parallel layers. *)

type pool = { slots : int array; mutable live : int }

let pool = { slots = Array.make 64 0; live = 0 }

let seqs = [| 0; 1; 2 |]

let counter = Atomic.make 0

(* A head-level maker is C1's finding, not double-reported: *)
let hits = ref 0

(* A justified exemption: *)
(* lint: shared-ok — read-only after initialisation *)
let table = [| 1; 2; 3 |]

(* Per-call state is not shared: *)
let fresh () = { slots = Array.make 8 0; live = 0 }

let use () = (pool, seqs, counter, hits, table, fresh ())
