(* Fixture: rule D4 — structural (tuple/record) Hashtbl keys. *)

type r = { a : int; b : int }

let lookup tbl ip sport dport = Hashtbl.find_opt tbl (ip, sport, dport)

let store tbl k v = Hashtbl.replace tbl { a = k; b = v } v

(* Key passed by name: allowed (the construction site is what D4 flags). *)
let probe tbl key = Hashtbl.mem tbl key

(* Int-keyed probes are the sanctioned form. *)
let direct tbl port = Hashtbl.find_opt tbl port
