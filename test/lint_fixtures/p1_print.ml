(* Fixture: rule P1 — stdout writes in library code. *)

let report x = Printf.printf "result: %d\n" x

let shout () = print_endline "done"
