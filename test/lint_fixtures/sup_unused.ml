(* Fixture: rule SUP — a suppression that suppresses nothing is itself a
   finding. *)

(* lint: unordered-ok — stale: the Hashtbl.iter below was removed *)
let nothing_here = 42
