(* Fixture: rule D1 — ambient time and randomness. *)

let wall () = Sys.time ()

let stamp () = Unix.gettimeofday ()

let roll () = Random.int 6
