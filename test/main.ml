let () =
  Alcotest.run "lrp"
    [ ("engine", Test_engine.suite);
      ("twheel", Test_twheel.suite);
      ("sched", Test_sched.suite);
      ("sim", Test_sim.suite);
      ("net", Test_net.suite);
      ("proto", Test_proto.suite);
      ("tcp-unit", Test_tcp_unit.suite);
      ("udp-e2e", Test_udp_e2e.suite);
      ("tcp-e2e", Test_tcp_e2e.suite);
      ("core", Test_core.suite);
      ("kernel", Test_kernel.suite);
      ("multicast", Test_multicast.suite);
      ("gateway", Test_gateway.suite);
      ("stats", Test_stats.suite);
      ("trace", Test_trace.suite);
      ("workload", Test_workload.suite);
      ("properties", Test_properties.suite);
      ("parallel", Test_parallel.suite);
      ("cluster", Test_cluster.suite);
      ("experiments", Test_experiments.suite);
      ("check", Test_check.suite);
      ("recorder", Test_recorder.suite);
      ("fuzz", Test_fuzz.suite);
      ("modern", Test_modern.suite);
      ("lint", Test_lint.suite);
      ("allocheck", Test_allocheck.suite) ]
