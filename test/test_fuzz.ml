(* Differential fuzz harness: random fault scripts (deterministic in their
   seed) replayed across all seven kernel architectures under the same
   workload.  Every run must satisfy the trace oracle; TCP runs must also
   keep byte-stream integrity.  A failing run writes its script to
   [_fuzz_failures/] as a repro artifact — replay by re-running the seed.

   The seed count is fixed so CI is reproducible; set LRP_FUZZ_SEEDS to
   widen the matrix (the extended-fuzz CI job does). *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel
open Lrp_workload
open Lrp_check
module Trace = Lrp_trace.Trace

let archs =
  [ Kernel.Bsd; Kernel.Soft_lrp; Kernel.Ni_lrp; Kernel.Early_demux;
    Kernel.Napi; Kernel.Napi_gro; Kernel.Rss ]

(* BSD and the NAPI-family back-ends run eager protocol processing with
   no demux step; the LRP architectures must demultiplex before any
   socket enqueue. *)
let require_demux = function
  | Kernel.Bsd | Kernel.Napi | Kernel.Napi_gro | Kernel.Rss -> false
  | Kernel.Soft_lrp | Kernel.Ni_lrp | Kernel.Early_demux -> true

let n_seeds =
  match int_of_string_opt (try Sys.getenv "LRP_FUZZ_SEEDS" with Not_found -> "") with
  | Some n when n > 0 -> n
  | _ -> 50

let failures_dir = "_fuzz_failures"

(* Repro artifacts: the fault script as JSON, and — when the kernel's
   tracer runs on the packed backend (the default) — the flight
   recorder's binary dump, so the post-mortem event stream ships with
   the failing seed. *)
let save_failure ?tracer script arch =
  if not (Sys.file_exists failures_dir) then Sys.mkdir failures_dir 0o755;
  let base =
    Printf.sprintf "%s/seed_%d_%s" failures_dir script.Fault_script.seed
      (Kernel.arch_name arch)
  in
  Fault_script.save script (base ^ ".json");
  (match tracer with
  | Some tr -> (
      match Trace.packed tr with
      | Some p -> Lrp_trace.Precorder.write_dump p (base ^ ".lrprec")
      | None -> ())
  | None -> ());
  base ^ ".json"

let fail_run ?tracer script arch what =
  let path = save_failure ?tracer script arch in
  Alcotest.fail
    (Printf.sprintf "seed %d on %s: %s (script saved to %s)"
       script.Fault_script.seed (Kernel.arch_name arch) what path)

(* One UDP blast under a fault script; oracle checked on the receiver. *)
let udp_fuzz_run ~arch ~seed =
  let cfg = Kernel.default_config arch in
  let w, client, server = World.pair ~cfg () in
  let tr = Kernel.tracer server in
  Trace.set_enabled tr true;
  Trace.set_filter tr [ Trace.Packet_events ];
  let script = Fault_script.generate ~seed ~duration_us:(Time.ms 100.) in
  Fault_script.apply script ~fabric:(World.fabric w)
    ~engine:(World.engine w);
  let sink = Blast.start_sink server ~port:9000 () in
  let src =
    Blast.start_source (World.engine w) (Kernel.nic client)
      ~src:(Kernel.ip_address client)
      ~dst:(Kernel.ip_address server, 9000)
      ~rate:2_000. ~size:64 ~until:(Time.ms 100.) ()
  in
  (* Slack past the send window so reorder-held frames flush. *)
  World.run w ~until:(Time.ms 150.);
  let v = Oracle.check_tracer ~require_demux:(require_demux arch) tr in
  (script, v, src.Blast.sent, sink.Blast.received, tr)

let test_udp_fuzz_matrix () =
  for seed = 0 to n_seeds - 1 do
    List.iter
      (fun arch ->
        let script, v, sent, _received, tr = udp_fuzz_run ~arch ~seed in
        if sent = 0 then fail_run ~tracer:tr script arch "source sent nothing";
        if v.Oracle.ring_wrapped then
          fail_run ~tracer:tr script arch "trace ring wrapped";
        if not v.Oracle.ok then
          fail_run ~tracer:tr script arch
            (Format.asprintf "oracle violation: %a" Oracle.pp_verdict v))
      archs
  done

(* One TCP bulk transfer under a fault script.  Loss, burst loss,
   duplication, corruption (caught by the checksum-verify drop path),
   reordering and jitter may all occur; TCP must never surface bytes out
   of order or corrupted, so the received stream is always a prefix of the
   sent stream, and equal to it if the transfer completed. *)
let tcp_fuzz_run ~arch ~seed ~bytes =
  let cfg = Kernel.default_config arch in
  let w, client, server = World.pair ~cfg () in
  let tr = Kernel.tracer server in
  Trace.set_enabled tr true;
  Trace.set_filter tr [ Trace.Packet_events ];
  let script = Fault_script.generate ~seed ~duration_us:(Time.sec 1.) in
  Fault_script.apply script ~fabric:(World.fabric w)
    ~engine:(World.engine w);
  let received = Buffer.create bytes in
  let done_at = ref None in
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"rx" (fun self ->
         let lsock = Api.socket_stream server in
         Api.tcp_listen server ~self lsock ~port:5001 ~backlog:4;
         let conn = Api.tcp_accept server ~self lsock in
         let rec drain () =
           match Api.tcp_recv server ~self conn ~max:65_536 with
           | `Data p ->
               Buffer.add_bytes received (Payload.to_bytes p);
               drain ()
           | `Eof -> ()
         in
         drain ();
         Api.close server ~self conn;
         done_at := Some (Engine.now (World.engine w))));
  let data =
    Bytes.init bytes (fun i -> Char.chr ((i * 131 + (i lsr 8) * 17) land 0xff))
  in
  ignore
    (Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
         let sock = Api.socket_stream client in
         match
           Api.tcp_connect client ~self sock
             ~remote:(Kernel.ip_address server, 5001)
         with
         | `Refused -> ()
         | `Ok ->
             ignore (Api.tcp_send client ~self sock (Payload.of_bytes data));
             Api.close client ~self sock));
  World.run w ~until:(Time.sec 30.);
  let v = Oracle.check_tracer ~require_demux:(require_demux arch) tr in
  (script, v, Bytes.to_string data, Buffer.contents received, !done_at, tr)

let is_prefix ~full s =
  String.length s <= String.length full
  && String.equal (String.sub full 0 (String.length s)) s

let test_tcp_fuzz_matrix () =
  (* A subset of the seed space: bulk runs are ~100x the cost of a UDP
     blast, and the UDP matrix already covers every seed. *)
  let tcp_seeds = max 8 (n_seeds / 4) in
  for seed = 0 to tcp_seeds - 1 do
    List.iter
      (fun arch ->
        let script, v, sent, received, done_at, tr =
          tcp_fuzz_run ~arch ~seed ~bytes:20_000
        in
        if v.Oracle.ring_wrapped then
          fail_run ~tracer:tr script arch "trace ring wrapped";
        if not v.Oracle.ok then
          fail_run ~tracer:tr script arch
            (Format.asprintf "oracle violation: %a" Oracle.pp_verdict v);
        if not (is_prefix ~full:sent received) then
          fail_run ~tracer:tr script arch
            "received stream is not a prefix of the sent stream";
        if done_at <> None && not (String.equal sent received) then
          fail_run ~tracer:tr script arch
            (Printf.sprintf
               "transfer completed but only %d/%d bytes match"
               (String.length received) (String.length sent)))
      archs
  done

(* Packet / socket / connection / channel ids come from process-global
   counters, so two runs in the same process see different raw ids.
   Renumber each id space by first appearance so event streams from
   equivalent runs compare equal. *)
let canon_events evs =
  let renumber () =
    let tbl = Hashtbl.create 256 in
    let next = ref 0 in
    fun id ->
      if id < 0 then id
      else
        match Hashtbl.find_opt tbl id with
        | Some v -> v
        | None ->
            incr next;
            Hashtbl.add tbl id !next;
            !next
  in
  let c = renumber () and sk = renumber () in
  let cn = renumber () and ch = renumber () and fl = renumber () in
  List.map
    (fun (t, seq, ev) ->
      let ev =
        match ev with
        | Trace.Nic_rx e -> Trace.Nic_rx { e with pkt = c e.pkt }
        | Trace.Demux e ->
            Trace.Demux { pkt = c e.pkt; chan = ch e.chan; flow = fl e.flow }
        | Trace.Ipq_enqueue e -> Trace.Ipq_enqueue { e with pkt = c e.pkt }
        | Trace.Ipq_drop e -> Trace.Ipq_drop { e with pkt = c e.pkt }
        | Trace.Early_discard e ->
            Trace.Early_discard { pkt = c e.pkt; chan = ch e.chan }
        | Trace.Softint_begin e -> Trace.Softint_begin { pkt = c e.pkt }
        | Trace.Softint_end e -> Trace.Softint_end { pkt = c e.pkt }
        | Trace.Proto_deliver e ->
            Trace.Proto_deliver { e with pkt = c e.pkt; conn = cn e.conn }
        | Trace.Sock_enqueue e ->
            Trace.Sock_enqueue { pkt = c e.pkt; sock = sk e.sock }
        | Trace.Sock_drop e ->
            Trace.Sock_drop { pkt = c e.pkt; sock = sk e.sock }
        | Trace.Syscall_copyout e ->
            Trace.Syscall_copyout { e with pkt = c e.pkt; sock = sk e.sock }
        | Trace.Csum_drop e -> Trace.Csum_drop { pkt = c e.pkt }
        | Trace.Mbuf_drop e -> Trace.Mbuf_drop { pkt = c e.pkt }
        | Trace.Gro_merge e ->
            Trace.Gro_merge { pkt = c e.pkt; into = c e.into }
        | Trace.Gro_flush e -> Trace.Gro_flush { e with pkt = c e.pkt }
        | (Trace.Intr_enter _ | Trace.Intr_exit _ | Trace.Ctx_switch _
          | Trace.Thread_state _ | Trace.Note _ | Trace.Alarm _
          | Trace.Poll_begin _ | Trace.Poll_end _ | Trace.Coalesce_fire _)
          as other -> other
      in
      (t, seq, ev))
    evs

(* A configured-but-all-zero fault state must be byte-identical to an
   unconfigured fabric: same deliveries, same virtual timestamps, same
   trace event stream (modulo the global ident counter).  This is the
   determinism contract that keeps every experiment datapoint unchanged
   when faults are off. *)
let test_none_faults_byte_identical () =
  List.iter
    (fun arch ->
      let run ~configure =
        let cfg = Kernel.default_config arch in
        let w, client, server = World.pair ~cfg () in
        let tr = Kernel.tracer server in
        Trace.set_enabled tr true;
        (* Packet events only: scheduler events carry process ids, yet
           another global id space. *)
        Trace.set_filter tr [ Trace.Packet_events ];
        if configure then Fabric.set_faults (World.fabric w) Fabric.Faults.none;
        let sink = Blast.start_sink server ~port:9000 () in
        let src =
          Blast.start_source (World.engine w) (Kernel.nic client)
            ~src:(Kernel.ip_address client)
            ~dst:(Kernel.ip_address server, 9000)
            ~rate:5_000. ~size:128 ~until:(Time.ms 50.) ()
        in
        World.run w ~until:(Time.ms 80.);
        (src.Blast.sent, sink.Blast.received, Trace.events tr)
      in
      let sent_a, recv_a, ev_a = run ~configure:false in
      let sent_b, recv_b, ev_b = run ~configure:true in
      Alcotest.(check (pair int int))
        (Printf.sprintf "%s: counts identical with Faults.none"
           (Kernel.arch_name arch))
        (sent_a, recv_a) (sent_b, recv_b);
      Alcotest.(check bool)
        (Printf.sprintf "%s: trace streams byte-identical with Faults.none"
           (Kernel.arch_name arch))
        true
        (canon_events ev_a = canon_events ev_b))
    archs

(* Same seed, same arch, run twice: outcome identical — scripts and fault
   draws are deterministic, so a failure seed is always reproducible. *)
let test_fuzz_run_reproducible () =
  List.iter
    (fun arch ->
      let _, v1, s1, r1, _ = udp_fuzz_run ~arch ~seed:7 in
      let _, v2, s2, r2, _ = udp_fuzz_run ~arch ~seed:7 in
      Alcotest.(check (pair int int))
        (Printf.sprintf "%s: replayed run identical" (Kernel.arch_name arch))
        (s1, r1) (s2, r2);
      Alcotest.(check bool)
        (Printf.sprintf "%s: replayed verdict identical" (Kernel.arch_name arch))
        true
        (v1.Oracle.arrivals = v2.Oracle.arrivals
        && v1.Oracle.enqueued = v2.Oracle.enqueued
        && v1.Oracle.ok = v2.Oracle.ok))
    [ Kernel.Bsd; Kernel.Ni_lrp ]

let suite =
  [ Alcotest.test_case
      (Printf.sprintf "UDP fault scripts x 7 archs, oracle green (%d seeds)"
         n_seeds)
      `Slow test_udp_fuzz_matrix;
    Alcotest.test_case "TCP fault scripts x 7 archs, stream prefix + oracle"
      `Slow test_tcp_fuzz_matrix;
    Alcotest.test_case "Faults.none is byte-identical to unconfigured" `Quick
      test_none_faults_byte_identical;
    Alcotest.test_case "fuzz runs are reproducible per seed" `Quick
      test_fuzz_run_reproducible ]
