(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 4), the MLFRR measurement, and the design-choice
   ablations; `micro` additionally runs Bechamel microbenchmarks of the
   simulator's hot paths.

   Usage:
     dune exec bench/main.exe                 # everything, full scale
     dune exec bench/main.exe -- --quick      # everything, reduced scale
     dune exec bench/main.exe -- table1 fig3  # a subset
     dune exec bench/main.exe -- micro        # Bechamel microbenchmarks *)

open Lrp_experiments

let quick = ref false

(* ------------------------------------------------------------------ *)
(* Paper experiments                                                    *)
(* ------------------------------------------------------------------ *)

let bench_table1 () = Table1.print (Table1.run ~quick:!quick ())

let bench_fig3 () = Fig3.print (Fig3.run ~quick:!quick ())

let bench_mlfrr () =
  Fig3.print_mlfrr
    (List.map
       (fun sys -> (sys, Fig3.mlfrr ~quick:!quick sys))
       [ Common.Bsd; Common.Soft_lrp; Common.Ni_lrp ])

let bench_fig4 () = Fig4.print (Fig4.run ~quick:!quick ())

let bench_table2 () = Table2.print (Table2.run ~quick:!quick ())

let bench_fig5 () = Fig5.print (Fig5.run ~quick:!quick ())

let bench_ablate_discard () = Ablations.print_discard (Ablations.discard ())

let bench_ablate_accounting () =
  Ablations.print_accounting (Ablations.accounting ())

let bench_ablate_demux () = Ablations.print_demux_cost (Ablations.demux_cost ())

(* Extension (paper section 3.5): an IP gateway under transit flood. *)
let bench_gateway () =
  let open Lrp_engine in
  let open Lrp_net in
  let open Lrp_kernel in
  let open Lrp_workload in
  Common.print_title
    "Extension: IP gateway under transit flood (section 3.5)";
  Printf.printf "  %-14s %12s %12s %16s\n" "rate (pkts/s)" "BSD fwd/s"
    "LRP fwd/s" "LRP local share";
  List.iter
    (fun rate ->
      let run arch =
        let engine = Engine.create () in
        let net_a = Fabric.create engine () in
        let net_b = Fabric.create engine () in
        let cfg = Kernel.default_config arch in
        let gw_cfg = { cfg with Kernel.forwarding = true } in
        let client =
          Kernel.create engine net_a ~name:"client"
            ~ip:(Packet.ip_of_quad 10 0 0 10) cfg
        in
        let gw =
          Kernel.create engine net_a ~name:"gw"
            ~ip:(Packet.ip_of_quad 10 0 0 1) gw_cfg
        in
        ignore
          (Kernel.add_interface gw net_b ~ip:(Packet.ip_of_quad 10 0 1 1) ());
        let server =
          Kernel.create engine net_b ~name:"server"
            ~ip:(Packet.ip_of_quad 10 0 1 20) cfg
        in
        Fabric.set_default_gateway net_a ~ip:(Packet.ip_of_quad 10 0 0 1);
        Fabric.set_default_gateway net_b ~ip:(Packet.ip_of_quad 10 0 1 1);
        let app = Spinner.start (Kernel.cpu gw) ~nice:0 ~name:"local-app" () in
        ignore (Blast.start_sink server ~port:9000 ());
        ignore
          (Blast.start_source engine (Kernel.nic client)
             ~src:(Kernel.ip_address client)
             ~dst:(Kernel.ip_address server, 9000)
             ~rate ~size:14 ~until:(Time.sec 1.) ());
        Engine.run engine ~until:(Time.sec 1.);
        (float_of_int (Kernel.stats gw).Kernel.forwarded,
         app.Lrp_sim.Proc.cpu_time /. Time.sec 1.)
      in
      let bsd_fwd, _ = run Kernel.Bsd in
      let lrp_fwd, lrp_share = run Kernel.Soft_lrp in
      Printf.printf "  %-14.0f %12.0f %12.0f %15.1f%%\n" rate bsd_fwd lrp_fwd
        (100. *. lrp_share))
    [ 2_000.; 8_000.; 14_000.; 20_000. ];
  Printf.printf
    "\n  BSD forwards at softint priority (and livelocks, taking local\n\
    \  processes with it); LRP's forwarding daemon shares the CPU like any\n\
    \  process.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the hot paths                            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let open Lrp_engine in
  let open Lrp_net in
  let open Lrp_proto in
  let pkt =
    Packet.udp ~src:(Packet.ip_of_quad 10 0 0 1)
      ~dst:(Packet.ip_of_quad 10 0 0 2) ~src_port:1234 ~dst_port:80
      (Payload.synthetic 14)
  in
  let bytes = Codec.encode pkt in
  let chan = Lrp_core.Channel.create ~limit:64 ~name:"bench" () in
  let heap = Eheap.create () in
  let rng = Rng.create 1 in
  let sched = Lrp_sched.Sched.create () in
  let threads =
    List.init 8 (fun i ->
        let th =
          Lrp_sched.Sched.add_thread sched ~name:(Printf.sprintf "t%d" i) ()
        in
        Lrp_sched.Sched.make_runnable sched ~now:0. th;
        th)
  in
  let tab = Lrp_core.Chantab.create () in
  Lrp_core.Chantab.add_udp tab ~port:80
    (Lrp_core.Channel.create ~name:"u80" ());
  [ Test.make ~name:"demux/flow_of_packet (hot path)"
      (Staged.stage (fun () -> ignore (Demux.flow_of_packet pkt)));
    Test.make ~name:"demux/flow_of_bytes (NI firmware form)"
      (Staged.stage (fun () -> ignore (Demux.flow_of_bytes bytes)));
    Test.make ~name:"chantab/resolve"
      (Staged.stage
         (let flow = Demux.flow_of_packet pkt in
          fun () -> ignore (Lrp_core.Chantab.resolve tab flow)));
    Test.make ~name:"codec/encode"
      (Staged.stage (fun () -> ignore (Codec.encode pkt)));
    Test.make ~name:"codec/decode"
      (Staged.stage (fun () -> ignore (Codec.decode bytes)));
    Test.make ~name:"channel/enqueue+dequeue"
      (Staged.stage (fun () ->
           ignore (Lrp_core.Channel.enqueue chan pkt);
           ignore (Lrp_core.Channel.dequeue chan)));
    Test.make ~name:"eheap/add+pop"
      (Staged.stage (fun () ->
           Eheap.add heap ~key:(Rng.uniform rng) ();
           ignore (Eheap.pop heap)));
    Test.make ~name:"sched/pick (8 runnable)"
      (Staged.stage (fun () -> ignore (Lrp_sched.Sched.pick sched)));
    Test.make ~name:"sched/charge_tick"
      (Staged.stage
         (let th = List.hd threads in
          fun () -> Lrp_sched.Sched.charge_tick sched th));
    Test.make ~name:"rng/bits64"
      (Staged.stage (fun () -> ignore (Rng.bits64 rng))) ]

let bench_micro () =
  let open Bechamel in
  Common.print_title "Microbenchmarks (Bechamel, ns per run)";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let analysed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "  %-44s %10.1f ns\n" name ns
          | Some _ | None -> Printf.printf "  %-44s (no estimate)\n" name)
        analysed)
    (micro_tests ())

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let all_benches =
  [ ("table1", bench_table1); ("fig3", bench_fig3); ("mlfrr", bench_mlfrr);
    ("fig4", bench_fig4); ("table2", bench_table2); ("fig5", bench_fig5);
    ("ablate-discard", bench_ablate_discard);
    ("ablate-accounting", bench_ablate_accounting);
    ("ablate-demux", bench_ablate_demux); ("gateway", bench_gateway);
    ("micro", bench_micro) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "--quick" then begin
          quick := true;
          false
        end
        else true)
      args
  in
  let selected =
    match args with
    | [] -> List.map fst all_benches
    | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n all_benches) then begin
              Printf.eprintf "unknown bench %S; available: %s\n" n
                (String.concat ", " (List.map fst all_benches));
              exit 1
            end)
          names;
        names
  in
  Printf.printf
    "LRP (OSDI'96) reproduction — regenerating the paper's evaluation%s\n"
    (if !quick then " (quick mode)" else "");
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      let f = List.assoc name all_benches in
      let s = Unix.gettimeofday () in
      f ();
      Printf.printf "  [%s finished in %.1fs wall time]\n" name
        (Unix.gettimeofday () -. s))
    selected;
  Printf.printf "\nTotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
