(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 4), the MLFRR measurement, and the design-choice
   ablations; `micro` additionally runs Bechamel microbenchmarks of the
   simulator's hot paths.

   Usage:
     dune exec bench/main.exe                    # everything, full scale
     dune exec bench/main.exe -- --quick         # everything, reduced scale
     dune exec bench/main.exe -- table1 fig3     # a subset
     dune exec bench/main.exe -- --jobs 4        # fan simulations over 4 domains
     dune exec bench/main.exe -- --json out.json # also dump every datapoint
     dune exec bench/main.exe -- micro           # Bechamel microbenchmarks

   Results are independent of --jobs: every simulation runs in its own
   engine seeded deterministically from the root seed and its job index. *)

open Lrp_experiments

let quick = ref false
let jobs = ref (Domain.recommended_domain_count ())
let json_path = ref None
let baseline_out = ref "BENCH_10.json"
let seed = Common.default_seed

(* ------------------------------------------------------------------ *)
(* Minimal JSON emitter (no external dependency)                        *)
(* ------------------------------------------------------------------ *)

type json =
  | Bool of bool
  | Num of float
  | Int of int
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let rec write_json buf = function
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Num f ->
      (* JSON has no NaN/Infinity; map them to null. *)
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s ->
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | '\t' -> Buffer.add_string buf "\\t"
          | c when Char.code c < 0x20 ->
              Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write_json buf v)
        items;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write_json buf (Str k);
          Buffer.add_char buf ':';
          write_json buf v)
        kvs;
      Buffer.add_char buf '}'

let json_to_string v =
  let buf = Buffer.create 4096 in
  write_json buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Paper experiments.  Each bench prints its human-readable output and
   returns the underlying datapoints as JSON.                           *)
(* ------------------------------------------------------------------ *)

let sysname = Common.system_name

let bench_table1 () =
  let rows = Table1.run ~quick:!quick ~jobs:!jobs ~seed () in
  Table1.print rows;
  Arr
    (List.map
       (fun r ->
         Obj
           [ ("system", Str (sysname r.Table1.system));
             ("rtt_us", Num r.Table1.rtt_us);
             ("udp_mbps", Num r.Table1.udp_mbps);
             ("tcp_mbps", Num r.Table1.tcp_mbps) ])
       rows)

let bench_fig3 () =
  let rows = Fig3.run ~quick:!quick ~jobs:!jobs ~seed () in
  Fig3.print rows;
  Arr
    (List.map
       (fun r ->
         Obj
           [ ("system", Str (sysname r.Fig3.system));
             ( "points",
               Arr
                 (List.map
                    (fun p ->
                      Obj
                        [ ("offered", Num p.Fig3.offered);
                          ("delivered", Num p.Fig3.delivered);
                          ("discards", Int p.Fig3.discards);
                          ("ipq_drops", Int p.Fig3.ipq_drops) ])
                    r.Fig3.points) ) ])
       rows)

let bench_modern () =
  let rows = Modern.run ~quick:!quick ~jobs:!jobs ~seed () in
  Modern.print rows;
  let reorder = Modern.run_reorder ~quick:!quick ~jobs:!jobs ~seed () in
  Modern.print_reorder reorder;
  Obj
    [ ( "throughput",
        Arr
          (List.map
             (fun r ->
               Obj
                 [ ("system", Str (sysname r.Modern.system));
                   ( "points",
                     Arr
                       (List.map
                          (fun p ->
                            Obj
                              [ ("offered", Num p.Fig3.offered);
                                ("delivered", Num p.Fig3.delivered);
                                ("discards", Int p.Fig3.discards);
                                ("ipq_drops", Int p.Fig3.ipq_drops) ])
                          r.Modern.points) ) ])
             rows) );
      ( "coalesce_reorder",
        Arr
          (List.map
             (fun p ->
               Obj
                 [ ("coalesce_us", Num p.Modern.coalesce_us);
                   ("fabric_faults", Bool p.Modern.fabric_faults);
                   ("observed", Int p.Modern.observed);
                   ("inversions", Int p.Modern.inversions);
                   ("per_kpkt", Num p.Modern.per_kpkt) ])
             reorder) ) ]

let bench_mlfrr () =
  let rows =
    Fig3.mlfrr_all ~quick:!quick ~jobs:!jobs ~seed
      [ Common.Bsd; Common.Soft_lrp; Common.Ni_lrp ]
  in
  Fig3.print_mlfrr rows;
  Arr
    (List.map
       (fun (sys, rate) ->
         Obj [ ("system", Str (sysname sys)); ("mlfrr", Num rate) ])
       rows)

let bench_fig4 () =
  let rows = Fig4.run ~quick:!quick ~jobs:!jobs ~seed () in
  Fig4.print rows;
  Arr
    (List.map
       (fun r ->
         Obj
           [ ("system", Str (sysname r.Fig4.system));
             ( "points",
               Arr
                 (List.map
                    (fun p ->
                      Obj
                        [ ("bg_rate", Num p.Fig4.bg_rate);
                          ("rtt_us", Num p.Fig4.rtt_us);
                          ("rtt_mean", Num p.Fig4.rtt_mean);
                          ("rtt_p99", Num p.Fig4.rtt_p99);
                          ("probes", Int p.Fig4.probes);
                          ("lost", Int p.Fig4.lost) ])
                    r.Fig4.points) ) ])
       rows)

let bench_table2 () =
  let rows = Table2.run ~quick:!quick ~jobs:!jobs ~seed () in
  Table2.print rows;
  Arr
    (List.map
       (fun r ->
         Obj
           [ ("system", Str (sysname r.Table2.system));
             ("class", Str (Lrp_workload.Rpc.cls_name r.Table2.cls));
             ("worker_elapsed_s", Num r.Table2.worker_elapsed_s);
             ("rpcs_per_sec", Num r.Table2.rpcs_per_sec);
             ("worker_share", Num r.Table2.worker_share) ])
       rows)

let bench_fig5 () =
  let rows = Fig5.run ~quick:!quick ~jobs:!jobs ~seed () in
  Fig5.print rows;
  Arr
    (List.map
       (fun r ->
         Obj
           [ ("system", Str (sysname r.Fig5.system));
             ( "points",
               Arr
                 (List.map
                    (fun p ->
                      Obj
                        [ ("syn_rate", Num p.Fig5.syn_rate);
                          ("http_per_sec", Num p.Fig5.http_per_sec);
                          ("failed", Int p.Fig5.failed);
                          ("syn_discards", Int p.Fig5.syn_discards) ])
                    r.Fig5.points) ) ])
       rows)

let bench_ablate_discard () =
  let rows = Ablations.discard ~jobs:!jobs ~seed () in
  Ablations.print_discard rows;
  Arr
    (List.map
       (fun r ->
         Obj
           [ ("bounded", Bool r.Ablations.bounded);
             ("delivered", Num r.Ablations.delivered);
             ("discards", Int r.Ablations.discards);
             ("backlog", Int r.Ablations.backlog);
             ("queue_delay_ms", Num r.Ablations.queue_delay_ms) ])
       rows)

let bench_ablate_accounting () =
  let rows = Ablations.accounting ~jobs:!jobs ~seed () in
  Ablations.print_accounting rows;
  Arr
    (List.map
       (fun r ->
         Obj
           [ ("fair", Bool r.Ablations.fair);
             ("hog_progress", Num r.Ablations.hog_progress);
             ("receiver_share", Num r.Ablations.receiver_share);
             ("receiver_billed", Num r.Ablations.receiver_billed) ])
       rows)

let bench_accounting () =
  let r = Accounting.run ~quick:!quick ~jobs:!jobs ~seed () in
  Accounting.print r;
  let module Overload = Lrp_check.Overload in
  Obj
    [ ( "ledger",
        Arr
          (List.map
             (fun (a : Accounting.arch_row) ->
               Obj
                 [ ("system", Str (sysname a.Accounting.system));
                   ("offered", Int a.Accounting.offered);
                   ("delivered", Int a.Accounting.delivered);
                   ("intr_total_us", Num a.Accounting.intr_total);
                   ("mischarged_us", Num a.Accounting.mischarged);
                   ("victim_mis_us", Num a.Accounting.victim_mis);
                   ("receiver_proto_us", Num a.Accounting.receiver_proto);
                   ("app_total_us", Num a.Accounting.app_total) ])
             r.Accounting.arch_rows) );
      ( "detector",
        Arr
          (List.map
             (fun (d : Accounting.det_row) ->
               let rep = d.Accounting.d_report in
               Obj
                 [ ("system", Str (sysname d.Accounting.d_system));
                   ("rate", Num d.Accounting.d_rate);
                   ("offered", Int d.Accounting.d_offered);
                   ("delivered", Int d.Accounting.d_delivered);
                   ("windows", Int rep.Overload.samples);
                   ("judged", Int rep.Overload.judged);
                   ("overload_windows", Int rep.Overload.overload_windows);
                   ("livelock_windows", Int rep.Overload.livelock_windows);
                   ("starved_windows", Int rep.Overload.starved_windows);
                   ("worst_delivery", Num rep.Overload.worst_delivery);
                   ("peak_intr_share", Num rep.Overload.peak_intr_share);
                   ("ipq_hwm", Int rep.Overload.ipq_hwm);
                   ("chan_hwm", Int rep.Overload.chan_hwm);
                   ("sock_hwm", Int rep.Overload.sock_hwm) ])
             r.Accounting.det_rows) ) ]

let bench_ablate_demux () =
  let rows = Ablations.demux_cost ~jobs:!jobs ~seed () in
  Ablations.print_demux_cost rows;
  Arr
    (List.map
       (fun r ->
         Obj
           [ ("demux_us", Num r.Ablations.demux_us);
             ("delivered", Num r.Ablations.delivered) ])
       rows)

(* Extension (paper section 3.5): an IP gateway under transit flood.
   Each (rate, architecture) cell is an independent simulation, so the
   grid fans out over the domain pool like the paper experiments. *)
let bench_gateway () =
  let open Lrp_engine in
  let open Lrp_net in
  let open Lrp_kernel in
  let open Lrp_workload in
  let measure ~seed arch rate =
    let engine = Engine.create ~seed () in
    let net_a = Fabric.create engine () in
    let net_b = Fabric.create engine () in
    let cfg = Kernel.default_config arch in
    let gw_cfg = { cfg with Kernel.forwarding = true } in
    let client =
      Kernel.create engine net_a ~name:"client"
        ~ip:(Packet.ip_of_quad 10 0 0 10) cfg
    in
    let gw =
      Kernel.create engine net_a ~name:"gw"
        ~ip:(Packet.ip_of_quad 10 0 0 1) gw_cfg
    in
    ignore (Kernel.add_interface gw net_b ~ip:(Packet.ip_of_quad 10 0 1 1) ());
    let server =
      Kernel.create engine net_b ~name:"server"
        ~ip:(Packet.ip_of_quad 10 0 1 20) cfg
    in
    Fabric.set_default_gateway net_a ~ip:(Packet.ip_of_quad 10 0 0 1);
    Fabric.set_default_gateway net_b ~ip:(Packet.ip_of_quad 10 0 1 1);
    let app = Spinner.start (Kernel.cpu gw) ~nice:0 ~name:"local-app" () in
    ignore (Blast.start_sink server ~port:9000 ());
    ignore
      (Blast.start_source engine (Kernel.nic client)
         ~src:(Kernel.ip_address client)
         ~dst:(Kernel.ip_address server, 9000)
         ~rate ~size:14 ~until:(Time.sec 1.) ());
    Engine.run engine ~until:(Time.sec 1.);
    (float_of_int (Kernel.stats gw).Kernel.forwarded,
     app.Lrp_sim.Proc.cpu_time /. Time.sec 1.)
  in
  let rates = [ 2_000.; 8_000.; 14_000.; 20_000. ] in
  let tasks =
    List.concat_map
      (fun rate -> [ (rate, Kernel.Bsd); (rate, Kernel.Soft_lrp) ])
      rates
  in
  let cells =
    Common.sweep ~jobs:!jobs
      (fun i (rate, arch) ->
        measure ~seed:(Common.job_seed ~seed ~index:i) arch rate)
      tasks
  in
  let cell rate arch =
    let rec find ts cs =
      match (ts, cs) with
      | (r, a) :: _, v :: _ when r = rate && a = arch -> v
      | _ :: ts, _ :: cs -> find ts cs
      | _ -> assert false
    in
    find tasks cells
  in
  Common.print_title
    "Extension: IP gateway under transit flood (section 3.5)";
  Printf.printf "  %-14s %12s %12s %16s\n" "rate (pkts/s)" "BSD fwd/s"
    "LRP fwd/s" "LRP local share";
  let rows =
    List.map
      (fun rate ->
        let bsd_fwd, _ = cell rate Kernel.Bsd in
        let lrp_fwd, lrp_share = cell rate Kernel.Soft_lrp in
        Printf.printf "  %-14.0f %12.0f %12.0f %15.1f%%\n" rate bsd_fwd
          lrp_fwd (100. *. lrp_share);
        Obj
          [ ("rate", Num rate); ("bsd_fwd_per_sec", Num bsd_fwd);
            ("lrp_fwd_per_sec", Num lrp_fwd);
            ("lrp_local_share", Num lrp_share) ])
      rates
  in
  Printf.printf
    "\n  BSD forwards at softint priority (and livelocks, taking local\n\
    \  processes with it); LRP's forwarding daemon shares the CPU like any\n\
    \  process.\n";
  Arr rows

(* Observability: trace one fig3 point per architecture with the server
   kernel's structured tracer on, and report the per-packet stage-latency
   breakdown plus the full metrics snapshot.  The paper's architectural
   claim shows up directly: BSD spends its protocol time in
   ["softint-proto"] (software-interrupt context), LRP moves it to
   ["proc-proto"] (receiver's own context, charged to it). *)
let bench_trace () =
  let open Lrp_trace in
  let module S = Lrp_stats.Stats.Samples in
  Common.print_title
    "Trace: per-packet stage latency (fig3 point, tracing enabled)";
  let duration =
    if !quick then Lrp_engine.Time.ms 200. else Lrp_engine.Time.ms 500.
  in
  let rate = 8_000. in
  let rows =
    List.map
      (fun sys ->
        let point, tracer, metrics =
          Fig3.measure_traced ~seed sys ~rate ~duration
        in
        let report = Trace.Report.stage_latency (Trace.events tracer) in
        Printf.printf
          "\n  [%s] offered %.0f p/s, delivered %.0f p/s; %d events \
           buffered (%d overwritten)\n"
          (sysname sys) point.Fig3.offered point.Fig3.delivered
          (Trace.length tracer) (Trace.dropped tracer);
        Format.printf "%a@." Trace.Report.pp report;
        let stage_json (name, s) =
          Obj
            [ ("stage", Str name); ("count", Int (S.count s));
              ("mean_us", Num (S.mean s));
              ("p50_us", Num (S.percentile s 50.));
              ("p99_us", Num (S.percentile s 99.)) ]
        in
        Obj
          [ ("system", Str (sysname sys));
            ("offered", Num point.Fig3.offered);
            ("delivered", Num point.Fig3.delivered);
            ("packets", Int report.Trace.Report.packets);
            ("events", Int (Trace.length tracer));
            ("overwritten", Int (Trace.dropped tracer));
            ("stages", Arr (List.map stage_json report.Trace.Report.stages));
            ( "metrics",
              Obj (List.map (fun (k, v) -> (k, Num v)) metrics) ) ])
      [ Common.Bsd; Common.Soft_lrp; Common.Ni_lrp ]
  in
  Arr rows

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the hot paths                            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let open Lrp_engine in
  let open Lrp_net in
  let open Lrp_proto in
  let pkt =
    Packet.udp ~src:(Packet.ip_of_quad 10 0 0 1)
      ~dst:(Packet.ip_of_quad 10 0 0 2) ~src_port:1234 ~dst_port:80
      (Payload.synthetic 14)
  in
  let bytes = Codec.encode pkt in
  let chan = Lrp_core.Channel.create ~limit:64 ~name:"bench" () in
  let heap = Eheap.create () in
  let rng = Rng.create 1 in
  let sched = Lrp_sched.Sched.create () in
  let threads =
    List.init 8 (fun i ->
        let th =
          Lrp_sched.Sched.add_thread sched ~name:(Printf.sprintf "t%d" i) ()
        in
        Lrp_sched.Sched.make_runnable sched ~now:0. th;
        th)
  in
  let tab = Lrp_core.Chantab.create () in
  Lrp_core.Chantab.add_udp tab ~port:80
    (Lrp_core.Channel.create ~name:"u80" ());
  (* Engine hot path: slot-table recycling means the schedule/fire cycle
     reuses one event record at steady state. *)
  let engine = Engine.create () in
  (* Periodic re-arm: one handle is kept alive forever; each step fires
     the thunk which reschedules itself via the same handle. *)
  let rearm_engine = Engine.create () in
  let rearm_handle = ref None in
  let rearm_tick () =
    match !rearm_handle with
    | Some h -> Engine.reschedule_after rearm_engine h ~delay:1.0
    | None -> ()
  in
  let () =
    rearm_handle := Some (Engine.schedule_after rearm_engine ~delay:1.0 rearm_tick)
  in
  (* Typed fast path: the dispatcher is registered once; each event stores
     only (target id, argument) in the slot table — no closure, so the
     steady-state schedule/fire cycle allocates zero minor words. *)
  let typed_engine = Engine.create () in
  let typed_sink = ref 0 in
  let typed_tgt = Engine.target typed_engine (fun v -> typed_sink := v) in
  (* Capturing-thunk counterpart: the same work expressed as a closure
     over [v], paying one closure allocation per event. *)
  let thunk_engine = Engine.create () in
  let thunk_sink = ref 0 in
  (* Timer churn, the dominant TCP pattern: schedule two timers, cancel
     one before it fires.  The wheel drops the cancelled entry in O(1) at
     bucket-pour time; a pure heap pays the sift on the way in and again
     when the dead entry reaches the top. *)
  let churn_wheel = Engine.create () in
  let churn_heap = Engine.create ~pure_heap:true () in
  let churn eng () =
    ignore (Engine.schedule_after eng ~delay:50. ignore);
    let b = Engine.schedule_after eng ~delay:100. ignore in
    Engine.cancel eng b;
    ignore (Engine.step eng);
    ignore (Engine.step eng)
  in
  (* Fabric delivery with and without a configured (but all-zero) fault
     state: the cost of the fault-injection guard on the fault-free path. *)
  let fab_pair ~faults =
    let eng = Engine.create () in
    let fab = Fabric.create eng () in
    let a = Fabric.make_nic fab ~name:"a" ~ip:(Packet.ip_of_quad 10 0 0 1) () in
    let b = Fabric.make_nic fab ~name:"b" ~ip:(Packet.ip_of_quad 10 0 0 2) () in
    Nic.set_rx_handler a ignore;
    Nic.set_rx_handler b ignore;
    if faults then Fabric.set_faults fab Fabric.Faults.none;
    let fpkt =
      Packet.udp ~src:(Nic.ip a) ~dst:(Nic.ip b) ~src_port:1234 ~dst_port:80
        (Payload.synthetic 64)
    in
    fun () ->
      Fabric.forward fab fpkt;
      ignore (Engine.step eng)
  in
  let fab_plain = fab_pair ~faults:false in
  let fab_zero = fab_pair ~faults:true in
  [ Test.make ~name:"demux/flow_of_packet (hot path)"
      (Staged.stage (fun () -> ignore (Demux.flow_of_packet pkt)));
    Test.make ~name:"demux/flow_of_bytes (NI firmware form)"
      (Staged.stage (fun () -> ignore (Demux.flow_of_bytes bytes)));
    Test.make ~name:"chantab/resolve"
      (Staged.stage
         (let flow = Demux.flow_of_packet pkt in
          fun () -> ignore (Lrp_core.Chantab.resolve tab flow)));
    Test.make ~name:"codec/encode"
      (Staged.stage (fun () -> ignore (Codec.encode pkt)));
    Test.make ~name:"codec/decode"
      (Staged.stage (fun () -> ignore (Codec.decode bytes)));
    Test.make ~name:"channel/enqueue+dequeue"
      (Staged.stage (fun () ->
           ignore (Lrp_core.Channel.enqueue chan pkt);
           ignore (Lrp_core.Channel.dequeue chan)));
    Test.make ~name:"eheap/add+pop"
      (Staged.stage (fun () ->
           Eheap.add heap ~key:(Rng.uniform rng) 0;
           ignore (Eheap.pop heap)));
    Test.make ~name:"engine/schedule+fire (slot reuse)"
      (Staged.stage (fun () ->
           ignore (Engine.schedule_after engine ~delay:1.0 ignore);
           ignore (Engine.step engine)));
    Test.make ~name:"engine/periodic re-arm (reschedule_after)"
      (Staged.stage (fun () -> ignore (Engine.step rearm_engine)));
    Test.make ~name:"engine/schedule_to+fire (typed target)"
      (Staged.stage (fun () ->
           ignore
             (Engine.schedule_to_after typed_engine ~delay:1.0 typed_tgt 7);
           ignore (Engine.step typed_engine)));
    Test.make ~name:"engine/schedule+fire (capturing thunk)"
      (Staged.stage (fun () ->
           let v = !thunk_sink + 1 in
           ignore
             (Engine.schedule_after thunk_engine ~delay:1.0 (fun () ->
                  thunk_sink := v));
           ignore (Engine.step thunk_engine)));
    Test.make ~name:"engine/timer churn (wheel)"
      (Staged.stage (churn churn_wheel));
    Test.make ~name:"engine/timer churn (pure heap)"
      (Staged.stage (churn churn_heap));
    Test.make ~name:"sched/pick (8 runnable)"
      (Staged.stage (fun () -> ignore (Lrp_sched.Sched.pick sched)));
    Test.make ~name:"sched/charge_tick"
      (Staged.stage
         (let th = List.hd threads in
          fun () -> Lrp_sched.Sched.charge_tick sched th));
    Test.make ~name:"packet/content checksum verify"
      (Staged.stage (fun () -> ignore (Packet.verify pkt)));
    Test.make ~name:"fabric/forward+deliver (no fault state)"
      (Staged.stage fab_plain);
    Test.make ~name:"fabric/forward+deliver (Faults.none configured)"
      (Staged.stage fab_zero);
    Test.make ~name:"rng/bits64"
      (Staged.stage (fun () -> ignore (Rng.bits64 rng))) ]

(* Measure one Bechamel test; returns (name, ns/run, minor words/run). *)
let measure_micro test =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  let instances =
    [ Toolkit.Instance.monotonic_clock; Toolkit.Instance.minor_allocated ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results =
    Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
  in
  let estimate instance =
    let analysed = Analyze.all ols instance results in
    Lrp_det.Det.fold_sorted
      (fun _name est acc ->
        match Analyze.OLS.estimates est with
        | Some [ v ] -> Some v
        | Some _ | None -> acc)
      analysed None
  in
  let ns = estimate Toolkit.Instance.monotonic_clock in
  let words = estimate Toolkit.Instance.minor_allocated in
  let name =
    (* the single test inside the group carries the real name *)
    match Test.elements test with
    | [ e ] -> Test.Elt.name e
    | _ -> "?"
  in
  (name, Option.value ns ~default:nan, Option.value words ~default:nan)

let bench_micro () =
  Common.print_title "Microbenchmarks (Bechamel, per run)";
  Printf.printf "  %-44s %12s %14s\n" "" "time" "minor alloc";
  let rows =
    List.map
      (fun test ->
        let name, ns, words = measure_micro test in
        Printf.printf "  %-44s %9.1f ns %8.1f words\n" name ns words;
        Obj
          [ ("name", Str name);
            ("ns_per_run", Num ns);
            ("minor_words_per_run", Num words) ])
      (micro_tests ())
  in
  Arr rows

(* Flow-table scaling: the packed-key robin-hood table under the four
   operations the demultiplexer performs, at populations from a busy
   server (1 K flows) to a pathological one (1 M).  Keys are synthetic
   but distinct; the miss probes use keys guaranteed absent.  Per-op
   times are loop averages — at these iteration counts a timer read per
   op would dominate. *)
let bench_demux () =
  Common.print_title "Flow-table scaling (packed-key robin-hood probes)";
  let sizes =
    if !quick then [ 1_000; 100_000 ] else [ 1_000; 100_000; 1_000_000 ]
  in
  Printf.printf "  %-10s %12s %12s %12s %12s\n" "flows" "insert" "hit"
    "miss" "delete";
  let sink = ref 0 in
  let rows =
    List.map
      (fun n ->
        let tab = Lrp_core.Flowtab.create ~dummy:0 () in
        (* hi is unique per key, so the pairs are distinct even when the
           packed ports in lo collide. *)
        let key_hi i = i + 1 in
        let key_lo i =
          ((i * 7 land 0xffff) lsl 16) lor (i * 13 land 0xffff)
        in
        let per_op f =
          let t0 = Unix.gettimeofday () in
          f ();
          (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
        in
        let insert_ns =
          per_op (fun () ->
              for i = 0 to n - 1 do
                Lrp_core.Flowtab.add_new tab ~hi:(key_hi i) ~lo:(key_lo i) i
              done)
        in
        let hit_ns =
          per_op (fun () ->
              for i = 0 to n - 1 do
                sink :=
                  !sink + Lrp_core.Flowtab.find tab ~hi:(key_hi i) ~lo:(key_lo i)
              done)
        in
        let miss_ns =
          per_op (fun () ->
              for i = 0 to n - 1 do
                (* key_hi never exceeds n, so hi + n + 1 is always absent *)
                sink :=
                  !sink
                  + Lrp_core.Flowtab.find tab ~hi:(key_hi i + n + 1)
                      ~lo:(key_lo i)
              done)
        in
        let delete_ns =
          per_op (fun () ->
              for i = 0 to n - 1 do
                ignore
                  (Lrp_core.Flowtab.remove tab ~hi:(key_hi i) ~lo:(key_lo i))
              done)
        in
        if Lrp_core.Flowtab.length tab <> 0 then
          failwith "bench demux: table not empty after delete pass";
        Printf.printf "  %-10d %9.1f ns %9.1f ns %9.1f ns %9.1f ns\n" n
          insert_ns hit_ns miss_ns delete_ns;
        Obj
          [ ("flows", Int n); ("insert_ns", Num insert_ns);
            ("hit_ns", Num hit_ns); ("miss_ns", Num miss_ns);
            ("delete_ns", Num delete_ns) ])
      sizes
  in
  Arr rows

(* Committed perf baseline (BENCH_10.json).  Measures the engine hot paths
   that the two-tier scheduler is responsible for, plus one end-to-end
   wall-clock figure, and writes them to [!baseline_out] for the CI
   regression gate (bench/check_baseline.ml compares a fresh snapshot
   against the committed file with generous tolerances).

   Unlike the Bechamel microbenches above, these loops measure minor
   allocation directly from [Gc.minor_words] deltas — the typed fast
   path's 0.0 words/event is an acceptance criterion, so the number must
   be an exact count, not a regression estimate. *)
let bench_baseline () =
  let open Lrp_engine in
  Common.print_title "Perf baseline (engine hot paths + fig3 wall-clock)";
  let time_and_words ~n f =
    (* Warm-up: enough cycles that every one-time growth — slot table,
       wheel bucket arrays, heap arrays — happens outside the measured
       window.  One call is not enough: the first *bucketed* event may
       come thousands of cycles in (due-tick events heap-route), and its
       bucket array growth would otherwise read as steady-state alloc. *)
    for _ = 1 to 20_000 do
      ignore (f ())
    done;
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (f ())
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let dw = Gc.minor_words () -. w0 in
    (dt *. 1e9 /. float_of_int n, dw /. float_of_int n)
  in
  let reps = 300_000 in
  (* Closure fast path: the thunk is a static function, so the slot-table
     recycling makes the whole schedule/fire cycle allocation-free. *)
  let eng_sched = Engine.create () in
  let schedule_fire () =
    ignore (Engine.schedule_after eng_sched ~delay:1.0 ignore);
    Engine.step eng_sched
  in
  (* Typed fast path: (target id, argument) in the slot table, no closure
     even though the event carries an argument. *)
  let eng_typed = Engine.create () in
  let typed_sink = ref 0 in
  let typed_tgt = Engine.target eng_typed (fun v -> typed_sink := v) in
  let typed_fastpath () =
    ignore (Engine.schedule_to_after eng_typed ~delay:1.0 typed_tgt 7);
    Engine.step eng_typed
  in
  (* The same argument-carrying event as a capturing closure: what every
     per-packet schedule cost before the typed path existed. *)
  let eng_thunk = Engine.create () in
  let thunk_sink = ref 0 in
  let capturing_thunk () =
    let v = !thunk_sink + 1 in
    ignore
      (Engine.schedule_after eng_thunk ~delay:1.0 (fun () -> thunk_sink := v));
    Engine.step eng_thunk
  in
  (* Demux probe: the per-packet classification + packed-key flow-table
     lookup the NI (or interrupt handler) performs on every arrival.  The
     table holds a realistic server port set; the probe hits. *)
  let demux_tab = Lrp_core.Chantab.create () in
  let () =
    for p = 1 to 64 do
      Lrp_core.Chantab.add_udp demux_tab ~port:p
        (Lrp_core.Channel.create ~name:(Printf.sprintf "bench-p%d" p) ())
    done
  in
  let demux_pkt =
    Lrp_net.Packet.udp
      ~src:(Lrp_net.Packet.ip_of_quad 10 0 0 1)
      ~dst:(Lrp_net.Packet.ip_of_quad 10 0 0 2)
      ~src_port:1234 ~dst_port:7
      (Lrp_net.Payload.synthetic 64)
  in
  let demux_probe () =
    ignore (Lrp_core.Chantab.resolve_slot demux_tab demux_pkt)
  in
  (* Arena RX: NI-channel admission and consumption through the handle
     ring — descriptor acquire into the shared arena, FIFO pop, release.
     The whole cycle must stay at 0.0 words/packet. *)
  let rx_arena = Lrp_net.Parena.create () in
  let rx_chan =
    Lrp_core.Channel.create ~arena:rx_arena ~limit:64 ~name:"bench-rx" ()
  in
  let arena_rx () =
    ignore (Lrp_core.Channel.enqueue_code rx_chan demux_pkt);
    ignore (Lrp_core.Channel.pop rx_chan)
  in
  (* Arena TX: the driver's if_output through the NIC's descriptor arena
     — handle-ring push, cached-footprint drain, tx-done fire into a
     no-op fabric.  Like arena RX, the whole cycle must stay at 0.0
     words/packet. *)
  let eng_tx = Engine.create () in
  let tx_nic =
    Lrp_net.Nic.create eng_tx ~name:"bench-tx"
      ~ip:(Lrp_net.Packet.ip_of_quad 10 0 0 9) ()
  in
  let tx_arena () =
    ignore (Lrp_net.Nic.transmit tx_nic demux_pkt);
    Engine.step eng_tx
  in
  (* Recorder on the hot path: the same arena RX cycle plus the packed
     flight-recorder emit the NIC path performs per packet.  The packed
     backend is four word stores into SoA ring columns, so the whole
     traced cycle must stay at 0.0 words/event and close to bare
     [arena_rx] time (check_baseline pins the ratio). *)
  let rec_clock = [| 0. |] in
  let rec_tracer =
    Lrp_trace.Trace.create ~name:"bench-recorder"
      ~now:(fun () -> rec_clock.(0))
      ()
  in
  let () =
    Lrp_trace.Trace.use_packed rec_tracer ~clock:rec_clock;
    Lrp_trace.Trace.set_enabled rec_tracer true
  in
  let tracing_on_arena_rx () =
    ignore (Lrp_core.Channel.enqueue_code rx_chan demux_pkt);
    Lrp_trace.Trace.nic_rx rec_tracer ~pkt:42 ~bytes:64;
    ignore (Lrp_core.Channel.pop rx_chan)
  in
  (* Ledger charge: the always-on accounting write behind every CPU
     charge — float-array arithmetic plus one int-keyed probe, with the
     row already warmed so the steady state is allocation-free. *)
  let bench_ledger = Lrp_sim.Ledger.create () in
  let () =
    Lrp_sim.Ledger.charge bench_ledger Lrp_sim.Ledger.Proto ~pid:1 ~flow:3 0.;
    Lrp_sim.Ledger.charge bench_ledger Lrp_sim.Ledger.Intr ~pid:(-1) ~flow:(-1)
      0.
  in
  let ledger_overhead () =
    Lrp_sim.Ledger.charge bench_ledger Lrp_sim.Ledger.Proto ~pid:1 ~flow:3 0.1;
    Lrp_sim.Ledger.charge bench_ledger Lrp_sim.Ledger.Intr ~pid:(-1) ~flow:(-1)
      0.1
  in
  (* Batched dispatch: 64 same-deadline events admitted through the typed
     path and drained by one [Engine.drain] call — the engine dispatches
     equal-key runs as a batch, so the per-event cost amortises the pop
     machinery across the run.  Reported per event. *)
  let eng_batch = Engine.create () in
  let batch_sink = ref 0 in
  let batch_tgt = Engine.target eng_batch (fun v -> batch_sink := v) in
  let batch_n = 64 in
  let batch_dispatch () =
    for i = 1 to batch_n do
      ignore (Engine.schedule_to_after eng_batch ~delay:1.0 batch_tgt i)
    done;
    Engine.drain eng_batch
  in
  (* Periodic re-arm: one slot and one thunk for the clock's lifetime. *)
  let eng_rearm = Engine.create () in
  let rearm_handle = ref Engine.none in
  let () =
    rearm_handle :=
      Engine.schedule_after eng_rearm ~delay:1.0 (fun () ->
          Engine.reschedule_after eng_rearm !rearm_handle ~delay:1.0)
  in
  let periodic_rearm () = Engine.step eng_rearm in
  (* Staged re-arm: the grace-poll / coalesce-timer idiom — the deadline
     staged through the engine's float cell, the (target, argument) pair
     through the slot table.  The whole arm+fire cycle must stay at 0.0
     words/event (the thunk form it replaced paid ~7 words per arm). *)
  let eng_staged = Engine.create () in
  let staged_sink = ref 0 in
  let staged_tgt = Engine.target eng_staged (fun v -> staged_sink := v) in
  let staged_rearm () =
    (Engine.deadline_cell eng_staged).(0) <-
      (Engine.clock_cell eng_staged).(0) +. 1.0;
    ignore (Engine.schedule_to_staged eng_staged staged_tgt 7);
    Engine.step eng_staged
  in
  (* RX coalescing: a sub-threshold train arming the NIC's hold-off
     timer, the timer firing into the kernel's kick, and the poll
     draining the ring — the cycle rebuilt on the staged path so a
     sub-threshold train allocates nothing. *)
  let eng_rxq = Engine.create () in
  let rxq_nic =
    Lrp_net.Nic.create eng_rxq ~name:"bench-rxq"
      ~ip:(Lrp_net.Packet.ip_of_quad 10 0 0 8) ()
  in
  let () =
    Lrp_net.Nic.configure_rx_queues rxq_nic ~queues:1 ~ring:64
      ~coalesce_pkts:64 ~coalesce_us:5.
      ~steer:(fun _ -> 0)
      ~kick:(fun q -> Lrp_net.Nic.rxq_disable_intr rxq_nic q)
  in
  let rxq_coalesce () =
    Lrp_net.Nic.receive rxq_nic demux_pkt;
    ignore (Engine.step eng_rxq);
    ignore (Lrp_net.Nic.rxq_pop rxq_nic 0);
    Lrp_net.Nic.rxq_enable_intr rxq_nic 0
  in
  (* Timer churn at depth: a cancel-heavy schedule stream (7 of 8 timers
     are cancelled before firing — the TCP retransmit pattern).  Under the
     wheel, dead entries are dropped in O(1) when their bucket pours and
     the heap stays small; a pure heap sifts every corpse in and out, and
     grows with every lingering cancellation. *)
  (* Timer churn in the regime the wheel is built for (and the one the
     paper's TCP stack generates): a deep standing population of pending
     retransmit timers, re-armed on every ACK — cancel the old RTO,
     schedule a fresh one ~200 ms out — while the clock creeps forward in
     small steps.  Per re-arm the pure heap pays an O(log n) sift at
     schedule and another at the lazy-cancel pop; the wheel pays an O(1)
     bucket push and an O(1) filtered drop when the bucket pours. *)
  let bulk_churn ~pure_heap () =
    let eng = Engine.create ~pure_heap () in
    let standing = 50_000 in
    let handles = Array.make standing Engine.none in
    for i = 0 to standing - 1 do
      handles.(i) <-
        Engine.schedule_after eng
          ~delay:(200_000. +. float_of_int (i land 4095))
          ignore
    done;
    let n = 200_000 in
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      let c = i mod standing in
      Engine.cancel eng handles.(c);
      handles.(c) <-
        Engine.schedule_after eng
          ~delay:(200_000. +. float_of_int (i land 4095))
          ignore;
      (* the ACK itself: a short event fires and nudges the clock *)
      if i land 63 = 0 then begin
        ignore (Engine.schedule_after eng ~delay:10. ignore);
        ignore (Engine.step eng)
      end
    done;
    Engine.run eng ~until:(Engine.now eng +. 1e9);
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  in
  Printf.printf "  %-44s %12s %14s\n" "" "time" "minor alloc";
  let measure key label f =
    let ns, words = time_and_words ~n:reps f in
    Printf.printf "  %-44s %9.1f ns %8.1f words\n" label ns words;
    (key, ns, words)
  in
  (* Like [measure], but [f] performs [per] events per call; report per
     event so the entry is comparable with the others. *)
  let measure_scaled key label ~per f =
    let ns, words = time_and_words ~n:(reps / per) f in
    let per = float_of_int per in
    let ns = ns /. per and words = words /. per in
    Printf.printf "  %-44s %9.1f ns %8.1f words\n" label ns words;
    (key, ns, words)
  in
  let entries =
    [ measure "schedule_fire" "engine/schedule+fire (static thunk)"
        schedule_fire;
      measure "typed_fastpath" "engine/schedule_to+fire (typed target)"
        typed_fastpath;
      measure "capturing_thunk" "engine/schedule+fire (capturing thunk)"
        capturing_thunk;
      measure "demux_probe" "demux/classify+flow-table probe (hit)"
        demux_probe;
      measure "arena_rx" "channel/arena enqueue_code+pop" arena_rx;
      measure "tx_arena" "nic/arena transmit+tx-done (cached bytes)"
        tx_arena;
      measure "tracing_on_arena_rx" "channel/arena rx + packed recorder"
        tracing_on_arena_rx;
      measure "ledger_overhead" "cpu/ledger charge (warm rows, x2)"
        ledger_overhead;
      measure_scaled "batch_dispatch" "engine/batched dispatch (64-run)"
        ~per:batch_n batch_dispatch;
      measure "periodic_rearm" "engine/periodic re-arm (reschedule_after)"
        periodic_rearm;
      measure "staged_rearm" "engine/staged re-arm (schedule_to_staged)"
        staged_rearm;
      measure "rxq_coalesce" "nic/coalesce arm+fire+poll (staged timer)"
        rxq_coalesce;
      (let ns = bulk_churn ~pure_heap:false () in
       Printf.printf "  %-44s %9.1f ns\n" "engine/bulk timer churn (wheel)" ns;
       ("timer_churn_wheel", ns, 0.));
      (let ns = bulk_churn ~pure_heap:true () in
       Printf.printf "  %-44s %9.1f ns\n" "engine/bulk timer churn (pure heap)"
         ns;
       ("timer_churn_pure_heap", ns, 0.)) ]
  in
  let _, sched_ns, _ =
    List.find (fun (k, _, _) -> k = "schedule_fire") entries
  in
  let events_per_sec = 1e9 /. sched_ns in
  let t0 = Unix.gettimeofday () in
  ignore (Fig3.run ~quick:true ~jobs:1 ~seed ());
  let fig3_wall = Unix.gettimeofday () -. t0 in
  Printf.printf "  %-44s %9.0f events/s\n" "engine throughput" events_per_sec;
  Printf.printf "  %-44s %11.2f s\n" "fig3 (quick, 1 job) wall-clock" fig3_wall;
  (* Sharded cluster: the 64-host spine-leaf topology at 1 and 8 shards.
     The digests must match — byte-identical results are the shard
     engine's contract.  [speedup_available] (total events over the epoch
     schedule's critical path) is deterministic and machine-independent,
     so CI gates on it even on a 1-core runner; measured wall speedup is
     recorded with the core count for context and only judged on
     machines with enough cores to show it. *)
  let run_cluster shards =
    let t0 = Unix.gettimeofday () in
    let r = Cluster.run ~shards ~duration:(if !quick then 50_000. else 200_000.) () in
    (r, Unix.gettimeofday () -. t0)
  in
  let c1, cwall1 = run_cluster 1 in
  let c8, cwall8 = run_cluster 8 in
  let ceps1 = float_of_int c1.Cluster.events /. cwall1 in
  let ceps8 = float_of_int c8.Cluster.events /. cwall8 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  %-44s %9.0f events/s\n" "cluster 8x8 (1 shard)" ceps1;
  Printf.printf "  %-44s %9.0f events/s\n" "cluster 8x8 (8 shards)" ceps8;
  Printf.printf "  %-44s %11s\n" "cluster digests (1 vs 8 shards)"
    (if Int64.equal c1.Cluster.digest c8.Cluster.digest then "identical"
     else "MISMATCH");
  Printf.printf "  %-44s %10.2fx (measured %.2fx on %d cores)\n"
    "cluster speedup available"
    (Cluster.speedup_available c8)
    (cwall1 /. cwall8) cores;
  let doc =
    Obj
      [ ("schema", Int 1);
        ( "entries",
          Arr
            (List.map
               (fun (key, ns, words) ->
                 Obj
                   [ ("name", Str key);
                     ("ns_per_event", Num ns);
                     ("minor_words_per_event", Num words) ])
               entries) );
        ("events_per_sec", Num events_per_sec);
        ("fig3_quick_wall_s", Num fig3_wall);
        ( "cluster",
          Obj
            [ ("racks", Int c1.Cluster.racks);
              ("hosts_per_rack", Int c1.Cluster.hosts_per_rack);
              ("events", Int c1.Cluster.events);
              ("digest_shards1", Str (Printf.sprintf "%Lx" c1.Cluster.digest));
              ("digest_shards8", Str (Printf.sprintf "%Lx" c8.Cluster.digest));
              ("events_per_sec_shards1", Num ceps1);
              ("events_per_sec_shards8", Num ceps8);
              ("speedup_available", Num (Cluster.speedup_available c8));
              ("speedup_measured", Num (cwall1 /. cwall8));
              ("cores", Int cores) ] ) ]
  in
  let oc = open_out !baseline_out in
  output_string oc (json_to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  Wrote %s\n" !baseline_out;
  doc

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

(* Shard-count sweep of the cluster experiment: the digest column must be
   constant (byte-identical results at any shard count) while the
   critical path shrinks with the partition. *)
let bench_cluster () =
  Common.print_title "Sharded cluster (spine-leaf, shard-count sweep)";
  let duration = if !quick then 50_000. else 200_000. in
  Printf.printf "  %-8s %12s %14s %12s %16s\n" "shards" "wall" "events/s"
    "avail." "digest";
  let rows =
    List.map
      (fun shards ->
        let t0 = Unix.gettimeofday () in
        let r = Cluster.run ~shards ~duration () in
        let wall = Unix.gettimeofday () -. t0 in
        let eps = float_of_int r.Cluster.events /. wall in
        Printf.printf "  %-8d %10.3f s %12.0f %10.2fx %16Lx\n" shards wall
          eps (Cluster.speedup_available r) r.Cluster.digest;
        Obj
          [ ("shards", Int shards);
            ("wall_s", Num wall);
            ("events_per_sec", Num eps);
            ("speedup_available", Num (Cluster.speedup_available r));
            ("digest", Str (Printf.sprintf "%Lx" r.Cluster.digest)) ])
      [ 1; 2; 4; 8 ]
  in
  Arr rows

let all_benches =
  [ ("table1", bench_table1); ("fig3", bench_fig3);
    ("modern", bench_modern); ("mlfrr", bench_mlfrr);
    ("fig4", bench_fig4); ("table2", bench_table2); ("fig5", bench_fig5);
    ("accounting", bench_accounting);
    ("ablate-discard", bench_ablate_discard);
    ("ablate-accounting", bench_ablate_accounting);
    ("ablate-demux", bench_ablate_demux); ("gateway", bench_gateway);
    ("trace", bench_trace); ("micro", bench_micro);
    ("demux", bench_demux); ("cluster", bench_cluster);
    ("baseline", bench_baseline) ]

let usage () =
  Printf.eprintf
    "usage: main.exe [--quick] [--jobs N] [--json PATH] [--baseline-out \
     PATH] [bench ...]\n\
     available benches: %s\n"
    (String.concat ", " (List.map fst all_benches));
  exit 1

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        quick := true;
        parse acc rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse acc rest
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
            exit 1)
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse acc rest
    | "--baseline-out" :: path :: rest ->
        baseline_out := path;
        parse acc rest
    | ("--jobs" | "--json" | "--baseline-out") :: [] | "--help" :: _
    | "-h" :: _ ->
        usage ()
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
        Printf.eprintf "unknown option %S\n" a;
        usage ()
    | name :: rest -> parse (name :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let selected =
    match args with
    | [] -> List.map fst all_benches
    | names ->
        List.iter
          (fun n -> if not (List.mem_assoc n all_benches) then usage ())
          names;
        names
  in
  Printf.printf
    "LRP (OSDI'96) reproduction — regenerating the paper's evaluation%s \
     (%d job%s)\n"
    (if !quick then " (quick mode)" else "")
    !jobs
    (if !jobs = 1 then "" else "s");
  let t0 = Unix.gettimeofday () in
  let results =
    List.map
      (fun name ->
        let f = List.assoc name all_benches in
        let s = Unix.gettimeofday () in
        let data = f () in
        let wall = Unix.gettimeofday () -. s in
        Printf.printf "  [%s finished in %.1fs wall time]\n" name wall;
        (name, Obj [ ("wall_s", Num wall); ("data", data) ]))
      selected
  in
  let total = Unix.gettimeofday () -. t0 in
  Printf.printf "\nTotal wall time: %.1fs\n" total;
  match !json_path with
  | None -> ()
  | Some path ->
      let doc =
        Obj
          [ ("quick", Bool !quick); ("jobs", Int !jobs); ("seed", Int seed);
            ("total_wall_s", Num total); ("experiments", Obj results) ]
      in
      let oc = open_out path in
      output_string oc (json_to_string doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "Wrote %s\n" path
