(* CI regression gate: compare a fresh perf-baseline snapshot against the
   committed BENCH_10.json.

     dune exec bench/check_baseline.exe -- BENCH_10.json BENCH_run.json

   Per-entry tolerances are deliberately generous — CI machines are noisy
   and shared — so only order-of-magnitude regressions fail the build:

   - per-event time may grow up to [time_ratio]x the committed value;
   - per-event minor allocation may grow by at most [words_slack] words
     (this is the tight one: the typed fast path's whole point is 0.0
     words/event, and an accidental closure would add 3+; the
     capturing_thunk entry gates the one path that is *allowed* to
     allocate, so a second accidental closure there also fails);
   - fig3 wall-clock may grow up to [time_ratio]x.

   Aggregate engine throughput gets a tighter leash ([eps_ratio]): it is
   the min-of-trials estimator over the hottest loop in the tree, much
   less noisy than any single entry, so a drop past base/[eps_ratio]
   means a real regression, not scheduler jitter.

   Two flight-recorder invariants are additionally checked *within* the
   fresh snapshot (immune to machine-to-machine drift): the traced arena
   RX cycle must allocate nothing (the packed recorder is plain word
   stores) and may cost at most [recorder_ratio]x the bare cycle plus a
   small absolute slack for timer granularity.

   Exit status: 0 all checks pass, 1 regression, 2 usage/parse error. *)

let time_ratio = 4.0
let eps_ratio = 1.5
let words_slack = 0.5
let recorder_ratio = 1.5
let recorder_slack_ns = 5.0

(* Cluster gates: the deterministic critical-path speedup the 8-shard
   partition must expose (machine-independent), and the wall-clock
   speedup required when the runner actually has >= 8 cores. *)
let min_speedup_available = 4.0
let min_speedup_measured = 2.0

open Lrp_trace

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.parse s with
  | Ok v -> v
  | Error e -> die "%s: %s" path e

let num path doc key =
  match Json.member key doc with
  | Some (Json.Num f) -> f
  | _ -> die "%s: missing numeric field %S" path key

let entry_map path doc =
  match Json.member "entries" doc with
  | Some (Json.Arr es) ->
      List.map
        (fun e ->
          match Json.member "name" e with
          | Some (Json.Str name) ->
              (name, (num path e "ns_per_event", num path e "minor_words_per_event"))
          | _ -> die "%s: entry without a name" path)
        es
  | _ -> die "%s: missing entries array" path

let failures = ref 0

let check ~label ~ok fmt =
  Printf.ksprintf
    (fun detail ->
      if ok then Printf.printf "  ok    %-38s %s\n" label detail
      else begin
        incr failures;
        Printf.printf "  FAIL  %-38s %s\n" label detail
      end)
    fmt

let () =
  let committed_path, fresh_path =
    match Sys.argv with
    | [| _; a; b |] -> (a, b)
    | _ -> die "usage: check_baseline.exe COMMITTED.json FRESH.json"
  in
  let committed = load committed_path and fresh = load fresh_path in
  Printf.printf "Baseline check: %s (fresh) vs %s (committed)\n" fresh_path
    committed_path;
  let base_entries = entry_map committed_path committed in
  let fresh_entries = entry_map fresh_path fresh in
  List.iter
    (fun (name, (base_ns, base_words)) ->
      match List.assoc_opt name fresh_entries with
      | None -> check ~label:name ~ok:false "missing from fresh snapshot"
      | Some (ns, words) ->
          check ~label:(name ^ " time") ~ok:(ns <= base_ns *. time_ratio)
            "%.1f ns vs %.1f ns (limit %.0fx)" ns base_ns time_ratio;
          check
            ~label:(name ^ " alloc")
            ~ok:(words <= base_words +. words_slack)
            "%.2f words vs %.2f words (slack %.1f)" words base_words
            words_slack)
    base_entries;
  (* Flight-recorder hot-path invariants, judged within the fresh run so
     they hold on any machine, not just one resembling the committed
     baseline's. *)
  (match
     ( List.assoc_opt "arena_rx" fresh_entries,
       List.assoc_opt "tracing_on_arena_rx" fresh_entries )
   with
  | Some (bare_ns, _), Some (ns, words) ->
      check ~label:"recorder alloc" ~ok:(words <= 0.05)
        "%.2f words/event (must stay ~0)" words;
      check ~label:"recorder overhead"
        ~ok:(ns <= (bare_ns *. recorder_ratio) +. recorder_slack_ns)
        "%.1f ns vs %.1f ns bare (limit %.1fx + %.0f ns)" ns bare_ns
        recorder_ratio recorder_slack_ns
  | _ ->
      check ~label:"recorder entries" ~ok:false
        "arena_rx / tracing_on_arena_rx missing from fresh snapshot");
  let base_eps = num committed_path committed "events_per_sec" in
  let eps = num fresh_path fresh "events_per_sec" in
  check ~label:"events_per_sec" ~ok:(eps >= base_eps /. eps_ratio)
    "%.0f vs %.0f (floor 1/%.1f)" eps base_eps eps_ratio;
  let base_wall = num committed_path committed "fig3_quick_wall_s" in
  let wall = num fresh_path fresh "fig3_quick_wall_s" in
  check ~label:"fig3_quick_wall_s" ~ok:(wall <= base_wall *. time_ratio)
    "%.2f s vs %.2f s (limit %.0fx)" wall base_wall time_ratio;
  (* Sharded-cluster gates.  Digest parity and the critical-path speedup
     are deterministic and machine-independent, so they are judged hard
     on any runner; the measured wall speedup depends on the core count,
     so it is gated only when the fresh snapshot was taken on a machine
     with enough cores to show it. *)
  let cluster_of path doc =
    match Json.member "cluster" doc with
    | Some c -> c
    | None -> die "%s: missing cluster object" path
  in
  let str path doc key =
    match Json.member key doc with
    | Some (Json.Str s) -> s
    | _ -> die "%s: missing string field %S" path key
  in
  let base_cluster = cluster_of committed_path committed in
  let fresh_cluster = cluster_of fresh_path fresh in
  let d1 = str fresh_path fresh_cluster "digest_shards1" in
  let d8 = str fresh_path fresh_cluster "digest_shards8" in
  check ~label:"cluster digest parity" ~ok:(String.equal d1 d8)
    "shards1=%s shards8=%s (must be byte-identical)" d1 d8;
  let base_avail = num committed_path base_cluster "speedup_available" in
  let avail = num fresh_path fresh_cluster "speedup_available" in
  check ~label:"cluster speedup available (committed)"
    ~ok:(base_avail >= min_speedup_available)
    "%.2fx (floor %.1fx)" base_avail min_speedup_available;
  check ~label:"cluster speedup available (fresh)"
    ~ok:(avail >= min_speedup_available)
    "%.2fx (floor %.1fx)" avail min_speedup_available;
  let base_ceps = num committed_path base_cluster "events_per_sec_shards1" in
  let ceps = num fresh_path fresh_cluster "events_per_sec_shards1" in
  check ~label:"cluster events_per_sec" ~ok:(ceps >= base_ceps /. time_ratio)
    "%.0f vs %.0f (floor 1/%.0f)" ceps base_ceps time_ratio;
  let cores = num fresh_path fresh_cluster "cores" in
  let measured = num fresh_path fresh_cluster "speedup_measured" in
  if cores >= 8. then
    check ~label:"cluster speedup measured"
      ~ok:(measured >= min_speedup_measured)
      "%.2fx on %.0f cores (floor %.1fx)" measured cores min_speedup_measured
  else
    Printf.printf "  skip  %-38s %.2fx on %.0f cores (gated at >= 8)\n"
      "cluster speedup measured" measured cores;
  if !failures > 0 then begin
    Printf.printf "%d regression check(s) failed.\n" !failures;
    exit 1
  end;
  print_endline "All baseline checks passed."
