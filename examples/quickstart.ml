(* Quickstart: build a two-host world, exchange UDP datagrams and a TCP
   stream over the simulated network, and read out basic statistics.

   Run with:  dune exec examples/quickstart.exe *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel
open Lrp_workload

let () =
  (* A world is an engine plus an ATM-like switching fabric.  Hosts get a
     kernel each; here both run the NI-LRP architecture.  Swap
     [Kernel.Ni_lrp] for [Kernel.Bsd], [Kernel.Soft_lrp] or
     [Kernel.Early_demux] to compare. *)
  let w = World.make () in
  let cfg = Kernel.default_config Kernel.Ni_lrp in
  let alice = World.add_host w ~name:"alice" cfg in
  let bob = World.add_host w ~name:"bob" cfg in

  (* --- a UDP echo server on bob ------------------------------------- *)
  ignore
    (Cpu.spawn (Kernel.cpu bob) ~name:"echo" (fun self ->
         let sock = Api.socket_dgram bob in
         Api.bind bob sock ~owner:(Some self) ~port:7;
         (* Echo forever: receive (with lazy protocol processing, since
            this is an LRP kernel) and send straight back. *)
         let rec loop () =
           let dg = Api.recvfrom bob ~self sock in
           Api.sendto bob ~self sock ~dst:dg.Api.dg_from dg.Api.dg_payload;
           loop ()
         in
         loop ()));

  (* --- a UDP client on alice ---------------------------------------- *)
  ignore
    (Cpu.spawn (Kernel.cpu alice) ~name:"client" (fun self ->
         let sock = Api.socket_dgram alice in
         ignore (Api.bind_ephemeral alice sock ~owner:(Some self));
         for i = 1 to 3 do
           let t0 = Engine.now (World.engine w) in
           Api.sendto alice ~self sock
             ~dst:(Kernel.ip_address bob, 7)
             (Payload.synthetic (100 * i));
           let reply = Api.recvfrom alice ~self sock in
           Printf.printf "udp echo %d: %d bytes back in %.0f us\n" i
             (Payload.length reply.Api.dg_payload)
             (Engine.now (World.engine w) -. t0)
         done));

  (* --- a TCP exchange ------------------------------------------------ *)
  ignore
    (Cpu.spawn (Kernel.cpu bob) ~name:"tcp-srv" (fun self ->
         let lsock = Api.socket_stream bob in
         Api.tcp_listen bob ~self lsock ~port:80 ~backlog:4;
         let conn = Api.tcp_accept bob ~self lsock in
         (match Api.tcp_recv bob ~self conn ~max:4096 with
          | `Data req ->
              Printf.printf "tcp server: got %d-byte request\n"
                (Payload.length req);
              ignore (Api.tcp_send bob ~self conn (Payload.of_string "pong"))
          | `Eof -> ());
         Api.close bob ~self conn));
  ignore
    (Cpu.spawn (Kernel.cpu alice) ~name:"tcp-cli" (fun self ->
         let sock = Api.socket_stream alice in
         match Api.tcp_connect alice ~self sock ~remote:(Kernel.ip_address bob, 80) with
         | `Refused -> print_endline "tcp: connection refused?!"
         | `Ok ->
             ignore (Api.tcp_send alice ~self sock (Payload.of_string "ping"));
             (match Api.tcp_recv alice ~self sock ~max:4096 with
              | `Data p ->
                  Printf.printf "tcp client: reply %S\n"
                    (Bytes.to_string (Payload.to_bytes p))
              | `Eof -> ());
             Api.close alice ~self sock));

  (* Run the virtual world for one simulated second. *)
  World.run w ~until:(Time.sec 1.);

  Printf.printf "\nsimulated %.3f s in %d engine events\n"
    (Time.to_sec (Engine.now (World.engine w)))
    (Engine.events_executed (World.engine w));
  Printf.printf "bob's CPU: %.1f%% busy, %d context switches\n"
    (100. *. Cpu.utilization (Kernel.cpu bob))
    (Cpu.context_switches (Kernel.cpu bob))
