(* Web server under attack: an NCSA-style process-per-request HTTP server
   saturated by eight clients while a SYN flood hammers another port on the
   same machine (the paper's Figure 5 scenario).

   Run with:  dune exec examples/web_server.exe *)

open Lrp_engine
open Lrp_sim
open Lrp_kernel
open Lrp_workload

let serve arch ~syn_rate =
  let cfg =
    { (Kernel.default_config arch) with Kernel.time_wait = Time.ms 500. }
  in
  let w = World.make () in
  let server = World.add_host w ~name:"server" cfg in
  let clients = World.add_host w ~name:"clients" cfg in
  let attacker = World.add_host w ~name:"attacker" cfg in
  let _httpd = Http.start_server server ~port:80 () in
  (* The victim: a listener that never accepts, like the paper's dummy
     server. *)
  ignore
    (Cpu.spawn (Kernel.cpu server) ~name:"dummy" (fun self ->
         let lsock = Api.socket_stream server in
         Api.tcp_listen server ~self lsock ~port:99 ~backlog:5;
         Proc.block (Proc.waitq "forever")));
  let stats = Http.start_clients clients ~dst:(Kernel.ip_address server, 80) ~n:8 () in
  if syn_rate > 0. then
    ignore
      (Synflood.start (World.engine w) (Kernel.nic attacker)
         ~dst:(Kernel.ip_address server, 99)
         ~rate:syn_rate ~until:(Time.sec 10.) ());
  World.run w ~until:(Time.sec 2.);
  let base = stats.Http.completed in
  World.run w ~until:(Time.sec 6.);
  float_of_int (stats.Http.completed - base) /. 4.

let () =
  print_endline "HTTP transfers/sec while a SYN flood hits another port:\n";
  Printf.printf "  %-14s %12s %12s\n" "SYN rate" "4.4BSD" "SOFT-LRP";
  List.iter
    (fun rate ->
      let bsd = serve Kernel.Bsd ~syn_rate:rate in
      let lrp = serve Kernel.Soft_lrp ~syn_rate:rate in
      Printf.printf "  %-14.0f %12.1f %12.1f\n" rate bsd lrp)
    [ 0.; 5_000.; 10_000.; 20_000. ];
  print_endline
    "\nUnder BSD, SYN processing at software-interrupt priority starves\n\
     the HTTP server processes.  Under LRP, once the dummy listener's\n\
     backlog fills, its channel is disabled and the flood dies at the\n\
     interrupt handler without touching HTTP traffic."
