(* Fairness demo: a compute-bound worker sharing a machine with two busy
   RPC servers (the paper's Table 2 workload).  Under BSD, network
   processing is charged to whoever happens to be running and the eager
   path burns more of the machine, so the worker takes much longer than
   its fair share would suggest; under LRP, protocol work is charged to the
   receivers and the worker finishes close to the ideal.

   Run with:  dune exec examples/fair_share.exe *)

open Lrp_engine
open Lrp_kernel
open Lrp_workload

let run arch =
  let cfg = Kernel.default_config arch in
  let w = World.make () in
  let client = World.add_host w ~name:"client" cfg in
  let server = World.add_host w ~name:"server" cfg in
  let r = Rpc.run w ~server ~client ~cls:Rpc.Fast ~worker_cpu:(Time.sec 3.) () in
  (Time.to_sec (Rpc.worker_elapsed r), Rpc.worker_share r, Rpc.rpc_rate r)

let () =
  print_endline
    "Worker: 3 s of CPU, competing with two saturated RPC servers.\n\
     Ideal fair completion: 9 s (1/3 share).\n";
  Printf.printf "  %-10s %14s %14s %12s\n" "system" "elapsed (s)" "CPU share"
    "RPCs/sec";
  List.iter
    (fun arch ->
      let elapsed, share, rate = run arch in
      Printf.printf "  %-10s %14.2f %13.1f%% %12.0f\n" (Kernel.arch_name arch)
        elapsed (100. *. share) rate)
    [ Kernel.Bsd; Kernel.Soft_lrp; Kernel.Ni_lrp ]
