(* Overload demo: what happens to a UDP server as the offered load climbs
   past its capacity — eager (BSD) versus lazy (LRP) receiver processing.
   This is the paper's headline experiment (Figure 3) in miniature.

   Run with:  dune exec examples/overload_demo.exe *)

open Lrp_engine
open Lrp_kernel
open Lrp_workload

let measure arch rate =
  let cfg = Kernel.default_config arch in
  let w, client, server = World.pair ~cfg () in
  let sink = Blast.start_sink server ~port:9000 () in
  ignore
    (Blast.start_source (World.engine w) (Kernel.nic client)
       ~src:(Kernel.ip_address client)
       ~dst:(Kernel.ip_address server, 9000)
       ~rate ~size:14 ~until:(Time.sec 1.) ());
  World.run w ~until:(Time.sec 1.);
  (float_of_int sink.Blast.received, Kernel.early_discards server,
   (Kernel.stats server).Kernel.ipq_drops)

let () =
  print_endline "Offered load sweep: 14-byte UDP blast for 1 simulated second";
  print_endline "(delivered = datagrams the server process actually consumed)\n";
  Printf.printf "  %-10s %12s %12s %14s %10s\n" "rate" "BSD" "NI-LRP"
    "early-discard" "ipq-drops";
  List.iter
    (fun rate ->
      let bsd, _, ipq = measure Kernel.Bsd rate in
      let lrp, discards, _ = measure Kernel.Ni_lrp rate in
      Printf.printf "  %-10.0f %12.0f %12.0f %14d %10d\n" rate bsd lrp discards
        ipq)
    [ 2_000.; 5_000.; 8_000.; 11_000.; 14_000.; 17_000.; 20_000. ];
  print_endline
    "\nBSD spends the whole CPU on interrupts and collapses (receiver\n\
     livelock); NI-LRP saturates and stays there, shedding the excess at\n\
     the NI channel before it costs the host anything."
