(* Gateway demo (paper section 3.5 and the firewall motivation of
   section 2.3): a multi-homed host forwards traffic between two networks
   via the IP-forwarding daemon, whose scheduling priority bounds how much
   of the machine transit traffic may consume.

   Run with:  dune exec examples/gateway.exe *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel
open Lrp_workload

let run arch ~fwd_nice ~flood_rate =
  let engine = Engine.create () in
  let net_a = Fabric.create engine () in
  let net_b = Fabric.create engine () in
  let cfg = Kernel.default_config arch in
  let gw_cfg = { cfg with Kernel.forwarding = true; Kernel.fwd_nice } in
  let client =
    Kernel.create engine net_a ~name:"client" ~ip:(Packet.ip_of_quad 10 0 0 10) cfg
  in
  let gw =
    Kernel.create engine net_a ~name:"gw" ~ip:(Packet.ip_of_quad 10 0 0 1) gw_cfg
  in
  ignore (Kernel.add_interface gw net_b ~ip:(Packet.ip_of_quad 10 0 1 1) ());
  let server =
    Kernel.create engine net_b ~name:"server" ~ip:(Packet.ip_of_quad 10 0 1 20) cfg
  in
  Fabric.set_default_gateway net_a ~ip:(Packet.ip_of_quad 10 0 0 1);
  Fabric.set_default_gateway net_b ~ip:(Packet.ip_of_quad 10 0 1 1);
  (* A local application competing on the gateway. *)
  let app_work = ref 0. in
  ignore
    (Cpu.spawn (Kernel.cpu gw) ~name:"local-app" (fun _ ->
         let rec loop () =
           Proc.compute 1_000.;
           app_work := !app_work +. 1_000.;
           loop ()
         in
         loop ()));
  (* A sink behind the gateway, and a flood through it. *)
  let sink = Blast.start_sink server ~port:9000 () in
  ignore
    (Blast.start_source engine (Kernel.nic client)
       ~src:(Kernel.ip_address client)
       ~dst:(Kernel.ip_address server, 9000)
       ~rate:flood_rate ~size:14 ~until:(Time.sec 1.) ());
  Engine.run engine ~until:(Time.sec 1.);
  (float_of_int sink.Blast.received, !app_work /. Time.sec 1.)

let () =
  print_endline
    "A flood transits a gateway that also runs a local application.\n";
  Printf.printf "  %-22s %14s %16s\n" "gateway kernel" "forwarded/s"
    "local app share";
  List.iter
    (fun (label, arch, nice) ->
      let fwd, share = run arch ~fwd_nice:nice ~flood_rate:20_000. in
      Printf.printf "  %-22s %14.0f %15.1f%%\n" label fwd (100. *. share))
    [ ("4.4BSD", Kernel.Bsd, 0);
      ("SOFT-LRP (nice 0)", Kernel.Soft_lrp, 0);
      ("SOFT-LRP (nice +10)", Kernel.Soft_lrp, 10);
      ("NI-LRP (nice 0)", Kernel.Ni_lrp, 0) ];
  print_endline
    "\nUnder BSD, forwarding runs at software-interrupt priority and the\n\
     local application is starved outright.  Under LRP, the forwarding\n\
     daemon competes like any process: its nice value is a policy knob\n\
     trading forwarded throughput against local work (section 3.5)."
