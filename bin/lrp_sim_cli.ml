(* Command-line front end: run any of the paper's experiments, or a single
   parameterised scenario, from the shell.

     lrp_sim table1|fig3|fig4|table2|fig5|mlfrr [--quick]
     lrp_sim blast --arch soft-lrp --rate 12000 --duration 2
     lrp_sim ablations
     lrp_sim gateway --arch bsd --rate 20000 *)

open Cmdliner
open Lrp_experiments
open Lrp_engine
open Lrp_net
open Lrp_kernel
open Lrp_workload

let quick =
  let doc = "Shrink workloads for a fast smoke run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let jobs =
  let doc =
    "Fan independent simulations out over $(docv) domains.  Results are \
     identical for any value; 1 runs everything sequentially."
  in
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let arch_conv =
  let parse = function
    | "bsd" -> Ok Kernel.Bsd
    | "soft-lrp" -> Ok Kernel.Soft_lrp
    | "ni-lrp" -> Ok Kernel.Ni_lrp
    | "early-demux" -> Ok Kernel.Early_demux
    | s -> Error (`Msg (Printf.sprintf "unknown architecture %S" s))
  in
  let print fmt a = Format.pp_print_string fmt (Kernel.arch_name a) in
  Arg.conv (parse, print)

let arch =
  let doc = "Kernel architecture: bsd, soft-lrp, ni-lrp or early-demux." in
  Arg.(value & opt arch_conv Kernel.Soft_lrp & info [ "arch" ] ~doc)

let rate =
  let doc = "Offered load, packets per second." in
  Arg.(value & opt float 10_000. & info [ "rate" ] ~doc)

let duration =
  let doc = "Run length, simulated seconds." in
  Arg.(value & opt float 1. & info [ "duration" ] ~doc)

(* --- paper experiments ------------------------------------------------- *)

let experiment name doc run =
  Cmd.v (Cmd.info name ~doc) Term.(const run $ quick $ jobs)

let table1_cmd =
  experiment "table1" "Latency/throughput microbenchmarks (Table 1)"
    (fun quick jobs -> Table1.print (Table1.run ~quick ~jobs ()))

let fig3_cmd =
  experiment "fig3" "Throughput vs offered load (Figure 3)"
    (fun quick jobs -> Fig3.print (Fig3.run ~quick ~jobs ()))

let mlfrr_cmd =
  experiment "mlfrr" "Maximum loss-free receive rate" (fun quick jobs ->
      Fig3.print_mlfrr
        (Fig3.mlfrr_all ~quick ~jobs
           [ Common.Bsd; Common.Soft_lrp; Common.Ni_lrp ]))

let fig4_cmd =
  experiment "fig4" "Latency with concurrent load (Figure 4)"
    (fun quick jobs -> Fig4.print (Fig4.run ~quick ~jobs ()))

let table2_cmd =
  experiment "table2" "Synthetic RPC server workload (Table 2)"
    (fun quick jobs -> Table2.print (Table2.run ~quick ~jobs ()))

let fig5_cmd =
  experiment "fig5" "HTTP throughput under SYN flood (Figure 5)"
    (fun quick jobs -> Fig5.print (Fig5.run ~quick ~jobs ()))

let accounting_cmd =
  experiment "accounting" "CPU accounting ledger and livelock detector"
    (fun quick jobs -> Accounting.print (Accounting.run ~quick ~jobs ()))

let ablations_cmd =
  let run jobs =
    Ablations.print_discard (Ablations.discard ~jobs ());
    Ablations.print_accounting (Ablations.accounting ~jobs ());
    Ablations.print_demux_cost (Ablations.demux_cost ~jobs ())
  in
  Cmd.v (Cmd.info "ablations" ~doc:"Design-choice ablations")
    Term.(const run $ jobs)

(* --- parameterised one-off scenarios ----------------------------------- *)

let blast_cmd =
  let run arch rate duration =
    let cfg = Kernel.default_config arch in
    let w, client, server = World.pair ~cfg () in
    let sink = Blast.start_sink server ~port:9000 () in
    let src =
      Blast.start_source (World.engine w) (Kernel.nic client)
        ~src:(Kernel.ip_address client)
        ~dst:(Kernel.ip_address server, 9000)
        ~rate ~size:14 ~until:(Time.sec duration) ()
    in
    World.run w ~until:(Time.sec duration);
    let st = Kernel.stats server in
    let cpu = Kernel.cpu server in
    Printf.printf "%s: offered %.0f pkts/s for %.1fs\n" (Kernel.arch_name arch)
      rate duration;
    Printf.printf "  sent %d, delivered %d (%.0f pkts/s)\n" src.Blast.sent
      sink.Blast.received
      (float_of_int sink.Blast.received /. duration);
    Printf.printf "  early discards %d, ipq drops %d, demux drops %d\n"
      (Kernel.early_discards server) st.Kernel.ipq_drops st.Kernel.demux_drops;
    Printf.printf
      "  server CPU: %.1f%% hardintr, %.1f%% softintr, %.1f%% user, %d switches\n"
      (100. *. Lrp_sim.Cpu.time_hard cpu /. Time.sec duration)
      (100. *. Lrp_sim.Cpu.time_soft cpu /. Time.sec duration)
      (100. *. Lrp_sim.Cpu.time_user cpu /. Time.sec duration)
      (Lrp_sim.Cpu.context_switches cpu)
  in
  Cmd.v
    (Cmd.info "blast" ~doc:"One UDP overload point with full CPU breakdown")
    Term.(const run $ arch $ rate $ duration)

let gateway_cmd =
  let run arch rate duration =
    let engine = Engine.create () in
    let net_a = Fabric.create engine () in
    let net_b = Fabric.create engine () in
    let cfg = Kernel.default_config arch in
    let gw_cfg = { cfg with Kernel.forwarding = true } in
    let client =
      Kernel.create engine net_a ~name:"client"
        ~ip:(Lrp_net.Packet.ip_of_quad 10 0 0 10) cfg
    in
    let gw =
      Kernel.create engine net_a ~name:"gw"
        ~ip:(Lrp_net.Packet.ip_of_quad 10 0 0 1) gw_cfg
    in
    ignore
      (Kernel.add_interface gw net_b ~ip:(Lrp_net.Packet.ip_of_quad 10 0 1 1) ());
    let server =
      Kernel.create engine net_b ~name:"server"
        ~ip:(Lrp_net.Packet.ip_of_quad 10 0 1 20) cfg
    in
    Fabric.set_default_gateway net_a ~ip:(Lrp_net.Packet.ip_of_quad 10 0 0 1);
    Fabric.set_default_gateway net_b ~ip:(Lrp_net.Packet.ip_of_quad 10 0 1 1);
    let sink = Blast.start_sink server ~port:9000 () in
    ignore
      (Blast.start_source engine (Kernel.nic client)
         ~src:(Kernel.ip_address client)
         ~dst:(Kernel.ip_address server, 9000)
         ~rate ~size:14 ~until:(Time.sec duration) ());
    Engine.run engine ~until:(Time.sec duration);
    Printf.printf "%s gateway: %.0f pkts/s transit for %.1fs\n"
      (Kernel.arch_name arch) rate duration;
    Printf.printf "  forwarded %d, delivered end-to-end %d\n"
      (Kernel.stats gw).Kernel.forwarded sink.Blast.received
  in
  Cmd.v (Cmd.info "gateway" ~doc:"Transit flood through an IP gateway")
    Term.(const run $ arch $ rate $ duration)

let trace_cmd =
  let module Trace = Lrp_trace.Trace in
  let trace_file =
    let doc = "Write the recorded trace to $(docv)." in
    Arg.(
      value & opt string "trace.json" & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let trace_format =
    let fmt_conv =
      Arg.conv
        ( (function
          | "chrome" -> Ok `Chrome
          | "csv" -> Ok `Csv
          | "text" -> Ok `Text
          | s -> Error (`Msg (Printf.sprintf "unknown trace format %S" s))),
          fun fmt f ->
            Format.pp_print_string fmt
              (match f with
              | `Chrome -> "chrome"
              | `Csv -> "csv"
              | `Text -> "text") )
    in
    let doc =
      "Trace sink: chrome (Perfetto-loadable trace_event JSON), csv, or \
       text."
    in
    Arg.(
      value & opt fmt_conv `Chrome
      & info [ "trace-format" ] ~docv:"FORMAT" ~doc)
  in
  let classes =
    let cls_conv =
      Arg.conv
        ( (function
          | "packet" -> Ok Trace.Packet_events
          | "sched" -> Ok Trace.Sched_events
          | "note" -> Ok Trace.Note_events
          | s -> Error (`Msg (Printf.sprintf "unknown event class %S" s))),
          fun fmt c ->
            Format.pp_print_string fmt
              (match c with
              | Trace.Packet_events -> "packet"
              | Trace.Sched_events -> "sched"
              | Trace.Note_events -> "note") )
    in
    let doc =
      "Record only these event classes (packet, sched, note); repeatable \
       or comma-separated.  Default: all."
    in
    Arg.(
      value
      & opt_all (Arg.list cls_conv) []
      & info [ "classes" ] ~docv:"CLASSES" ~doc)
  in
  let run arch rate duration trace_file trace_format classes =
    let cfg = Kernel.default_config arch in
    let w, client, server = World.pair ~cfg () in
    let tracer = Kernel.tracer server in
    Kernel.set_tracing server true;
    (match List.concat classes with
    | [] -> ()
    | cs -> Trace.set_filter tracer cs);
    let sink = Blast.start_sink server ~port:9000 () in
    let src =
      Blast.start_source (World.engine w) (Kernel.nic client)
        ~src:(Kernel.ip_address client)
        ~dst:(Kernel.ip_address server, 9000)
        ~rate ~size:14 ~until:(Time.sec duration) ()
    in
    World.run w ~until:(Time.sec duration);
    Trace.write_file tracer ~format:trace_format trace_file;
    Printf.printf "%s: offered %.0f pkts/s for %.1fs; sent %d, delivered %d\n"
      (Kernel.arch_name arch) rate duration src.Blast.sent sink.Blast.received;
    Printf.printf "  %d events buffered (%d overwritten) -> %s (%s)\n"
      (Trace.length tracer) (Trace.dropped tracer) trace_file
      (match trace_format with
      | `Chrome -> "chrome"
      | `Csv -> "csv"
      | `Text -> "text");
    (* Self-check: a chrome trace must round-trip through a JSON parser. *)
    (match trace_format with
    | `Chrome -> (
        let ic = open_in_bin trace_file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        match Lrp_trace.Json.parse s with
        | Ok _ -> Printf.printf "  chrome JSON validated (%d bytes)\n" n
        | Error e ->
            Printf.eprintf "  chrome JSON INVALID: %s\n" e;
            exit 1)
    | `Csv | `Text -> ());
    Format.printf "%a@."
      Trace.Report.pp
      (Trace.Report.stage_latency (Trace.events tracer))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one UDP overload point with structured tracing enabled and \
          write the event stream to a file")
    Term.(
      const run $ arch $ rate $ duration $ trace_file $ trace_format $ classes)

let top_cmd =
  let module Trace = Lrp_trace.Trace in
  let module Overload = Lrp_check.Overload in
  let module Ledger = Lrp_sim.Ledger in
  let dump_file =
    let doc =
      "Also write the server's packed flight-recorder dump to $(docv) \
       (binary; reload with Lrp_trace.Precorder.read_dump)."
    in
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"FILE" ~doc)
  in
  let run arch rate duration dump_file =
    let cfg = Kernel.default_config arch in
    let w, client, server = World.pair ~cfg () in
    Kernel.set_tracing server true;
    let det = Lrp_check.Overload.attach server in
    let sink = Blast.start_sink server ~port:9000 () in
    let src =
      Blast.start_source (World.engine w) (Kernel.nic client)
        ~src:(Kernel.ip_address client)
        ~dst:(Kernel.ip_address server, 9000)
        ~rate ~size:14 ~until:(Time.sec duration) ()
    in
    World.run w ~until:(Time.sec duration);
    Overload.detach det;
    let cpu = Kernel.cpu server in
    let led = Lrp_sim.Cpu.ledger cpu in
    Printf.printf "%s: offered %.0f pkts/s for %.1fs; sent %d, delivered %d\n"
      (Kernel.arch_name arch) rate duration src.Blast.sent sink.Blast.received;
    Printf.printf "\nCPU ledger (us charged per process):\n";
    Printf.printf "  %5s %-16s %10s %10s %10s %10s %12s\n" "pid" "name"
      "intr-vict" "soft-vict" "proto" "app" "misaccounted";
    List.iter
      (fun (r : Ledger.row) ->
        Printf.printf "  %5d %-16s %10.0f %10.0f %10.0f %10.0f %12.0f\n"
          r.Ledger.pid r.Ledger.name r.Ledger.intr_victim r.Ledger.soft_victim
          r.Ledger.proto r.Ledger.app (Ledger.misaccounted r))
      (Ledger.rows led);
    (match Ledger.flow_rows led with
    | [] -> ()
    | flows ->
        Printf.printf "\nPer-flow protocol cycles:\n";
        Printf.printf "  %6s %10s\n" "chan" "proto";
        List.iter
          (fun (f : Ledger.flow_row) ->
            Printf.printf "  %6d %10.0f\n" f.Ledger.flow f.Ledger.f_proto)
          flows);
    Printf.printf "\nOverload detector: %s\n"
      (Format.asprintf "%a" Overload.pp_report (Overload.report det));
    (match dump_file with
    | None -> ()
    | Some file ->
        (match Trace.packed (Kernel.tracer server) with
        | Some p ->
            Lrp_trace.Precorder.write_dump p file;
            Printf.printf "\nflight recorder: %d events -> %s\n"
              (Lrp_trace.Precorder.length p) file
        | None -> Printf.printf "\nflight recorder: no packed backend\n"))
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run one UDP overload point and report the per-process CPU \
          accounting ledger, per-flow protocol cycles and the livelock \
          detector's verdict")
    Term.(const run $ arch $ rate $ duration $ dump_file)

let cluster_cmd =
  let module Cluster = Lrp_experiments.Cluster in
  let shards =
    let doc = "Domains to shard the cluster across (1 = sequential)." in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let racks =
    let doc = "Racks (= shardable cells) in the spine-leaf topology." in
    Arg.(value & opt int Cluster.default_racks & info [ "racks" ] ~doc)
  in
  let hosts =
    let doc = "Hosts per rack." in
    Arg.(value
         & opt int Cluster.default_hosts_per_rack
         & info [ "hosts" ] ~doc)
  in
  let rate =
    let doc = "Per-host intra-rack blast rate, pkts/s (cross-rack runs at \
               half this)." in
    Arg.(value & opt float 2000. & info [ "rate" ] ~doc)
  in
  let duration_ms =
    let doc = "Simulated duration, milliseconds." in
    Arg.(value & opt float 200. & info [ "duration-ms" ] ~doc)
  in
  let out_file =
    let doc =
      "Write the shard-invariant report to $(docv); files produced at \
       different --shards must be byte-identical (CI diffs them)."
    in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let dump_file =
    let doc = "Write the merged per-rack recorder dump to $(docv)." in
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"FILE" ~doc)
  in
  let write file s =
    let oc = open_out file in
    output_string oc s;
    close_out oc
  in
  let run shards racks hosts rate duration_ms out_file dump_file =
    let r =
      Cluster.run ~racks ~hosts_per_rack:hosts ~shards ~rate
        ~duration:(Time.ms duration_ms) ()
    in
    Cluster.print r;
    (match out_file with
     | Some f -> write f (Cluster.report r)
     | None -> ());
    match dump_file with
    | Some f -> write f r.Cluster.dump
    | None -> ()
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run the sharded spine-leaf cluster experiment; results are \
          byte-identical at any --shards")
    Term.(
      const run $ shards $ racks $ hosts $ rate $ duration_ms $ out_file
      $ dump_file)

let dump_cmd =
  let module Trace = Lrp_trace.Trace in
  let module Precorder = Lrp_trace.Precorder in
  let file =
    let doc = "Flight-recorder binary dump (written by top --dump, or by a \
               failing fuzz run)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    match Precorder.read_dump file with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        exit 1
    | Ok p ->
        Printf.printf "# %s: %d events (%d overwritten before the dump)\n"
          file (Precorder.length p) (Precorder.dropped p);
        List.iter
          (fun (ts, seq, ev) ->
            Format.printf "%12.1f %8d  %a@." ts seq Trace.pp_event ev)
          (Trace.events_of_precorder p)
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Decode a packed flight-recorder binary dump back to typed events, \
          one per line")
    Term.(const run $ file)

let main () =
  let info = Cmd.info "lrp_sim" ~doc:"LRP (OSDI'96) reproduction harness" in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ table1_cmd; fig3_cmd; mlfrr_cmd; fig4_cmd; table2_cmd; fig5_cmd;
            accounting_cmd; ablations_cmd; blast_cmd; gateway_cmd; trace_cmd;
            top_cmd; cluster_cmd; dump_cmd ]))

let () = main ()
