(* lrp_allocheck — the zero-allocation and domain-escape prover.

     lrp_allocheck [--json] [--out FILE] [--conf FILE] [--root DIR]

   Reads the .cmt files dune left under _build, walks the hot-path entry
   points named in allocheck.conf (plus transitive callees inside the
   followed directories) for allocation points, and checks the
   cell-resident directories for stores that publish values across
   domains.  Exits 0 on a clean tree, 1 when there are findings, 2 on
   usage/configuration errors (including a build with no .cmt files).
   --json switches stdout to the machine-readable report; --out
   additionally writes the report to FILE (CI uploads it as an artifact
   on failure).  The analysis is documented in DESIGN.md §16. *)

let usage () =
  prerr_endline
    "usage: lrp_allocheck [--json] [--out FILE] [--conf FILE] [--root DIR]";
  prerr_endline "  --conf defaults to allocheck.conf under the root";
  prerr_endline "  --root defaults to the current directory";
  exit 2

let () =
  let json = ref false in
  let out = ref None in
  let conf = ref None in
  let root = ref "." in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse_args rest
    | "--out" :: file :: rest ->
        out := Some file;
        parse_args rest
    | "--conf" :: file :: rest ->
        conf := Some file;
        parse_args rest
    | "--root" :: dir :: rest ->
        root := dir;
        parse_args rest
    | _ -> usage ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let root = !root in
  let conf_path =
    match !conf with Some f -> f | None -> Filename.concat root "allocheck.conf"
  in
  let cfg =
    match Lrp_allocheck.Aconfig.load conf_path with
    | Ok cfg -> cfg
    | Error e ->
        Printf.eprintf "lrp_allocheck: %s: %s\n" conf_path e;
        exit 2
  in
  let findings, stats =
    Lrp_allocheck.Adriver.run ~root ~conf_name:(Filename.basename conf_path) cfg
  in
  if stats.Lrp_allocheck.Adriver.cmt_files = 0 then begin
    Printf.eprintf
      "lrp_allocheck: no .cmt files under %s — run 'dune build' first\n"
      (String.concat ", "
         (List.map (Filename.concat root) cfg.Lrp_allocheck.Aconfig.cmt_dirs));
    exit 2
  end;
  let report =
    if !json then Lrp_report.Finding.to_json findings
    else
      String.concat ""
        (List.map (fun f -> Lrp_report.Finding.to_text f ^ "\n") findings)
  in
  print_string report;
  if not !json then
    Printf.printf
      "lrp_allocheck: %d finding%s (%d hot-path functions, %d escape-checked, \
       %d files, %d cmt files)\n"
      (List.length findings)
      (if List.length findings = 1 then "" else "s")
      stats.Lrp_allocheck.Adriver.funcs_analyzed
      stats.Lrp_allocheck.Adriver.escape_funcs
      stats.Lrp_allocheck.Adriver.files_scanned
      stats.Lrp_allocheck.Adriver.cmt_files;
  (match !out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc
        (if !json then report else Lrp_report.Finding.to_json findings);
      close_out oc);
  exit (if findings = [] then 0 else 1)
