(* lrp_lint — the determinism-and-layering linter.

     lrp_lint [--json] [--out FILE] [PATH...]

   Scans the given files/directories (default: lib bin bench) and prints
   findings; exits 0 on a clean tree, 1 when there are findings, 2 on
   usage errors.  --json switches stdout to the machine-readable report;
   --out additionally writes the report to FILE (CI uploads it as an
   artifact on failure).  Rules are documented in DESIGN.md §11. *)

let usage () =
  prerr_endline "usage: lrp_lint [--json] [--out FILE] [PATH...]";
  prerr_endline "  PATH defaults to: lib bin bench";
  exit 2

let () =
  let json = ref false in
  let out = ref None in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse_args rest
    | "--out" :: file :: rest ->
        out := Some file;
        parse_args rest
    | ("--help" | "-h") :: _ | "--out" :: [] -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | path :: rest ->
        paths := path :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
  in
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "lrp_lint: no such path: %s\n" p;
        exit 2
      end)
    paths;
  let findings, stats = Lrp_lint.Driver.run paths in
  let report =
    if !json then Lrp_lint.Finding.to_json findings
    else
      String.concat ""
        (List.map
           (fun f -> Lrp_lint.Finding.to_text f ^ "\n")
           findings)
  in
  print_string report;
  if not !json then
    Printf.printf "lrp_lint: %d finding%s in %d .ml, %d .mli, %d dune files\n"
      (List.length findings)
      (if List.length findings = 1 then "" else "s")
      stats.Lrp_lint.Driver.ml_files stats.Lrp_lint.Driver.mli_files
      stats.Lrp_lint.Driver.dune_files;
  (match !out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc
        (if !json then report else Lrp_lint.Finding.to_json findings);
      close_out oc);
  exit (if findings = [] then 0 else 1)
