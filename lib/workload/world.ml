(** Scenario builder: an engine, a switching fabric and a few hosts.

    All the paper's experiments use two to four SPARCstation-20s on a
    private 155 Mbit/s ATM network; [make] builds exactly that. *)

open Lrp_engine
open Lrp_net
open Lrp_kernel

type t = {
  engine : Engine.t;
  fabric : Fabric.t;
  mutable hosts : (string * Kernel.t) list;
}

let make ?(seed = 42) ?bandwidth_mbps () =
  let engine = Engine.create ~seed () in
  let fabric = Fabric.create engine ?bandwidth_mbps () in
  { engine; fabric; hosts = [] }

let host_ip i = Packet.ip_of_quad 10 0 0 (10 + i)

(* [add_host w ~name cfg] attaches a new host running the given kernel
   configuration; IPs are assigned 10.0.0.10, .11, ... in order. *)
let add_host w ~name cfg =
  let ip = host_ip (List.length w.hosts) in
  let kern = Kernel.create w.engine w.fabric ~name ~ip cfg in
  w.hosts <- w.hosts @ [ (name, kern) ];
  kern

let engine w = w.engine
let fabric w = w.fabric

let kernel w name =
  match List.assoc_opt name w.hosts with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "World.kernel: no host %s" name)

let run w ~until = Engine.run w.engine ~until

(* Two-host worlds are the common case: a client and a server of the given
   architecture. *)
let pair ?seed ?(cfg = Kernel.default_config Kernel.Bsd) () =
  let w = make ?seed () in
  let client = add_host w ~name:"client" cfg in
  let server = add_host w ~name:"server" cfg in
  (w, client, server)
