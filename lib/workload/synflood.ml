(** SYN-flood generator (Figure 5).

    Injects TCP connection-establishment requests at a fixed rate to a
    victim port, from spoofed source addresses that do not exist on the
    fabric — so SYN-ACKs vanish and the victim's embryonic connections hang
    until they time out, exactly the attack pattern of the paper's
    experiment (no connection is ever established). *)

open Lrp_engine
open Lrp_net

type t = { mutable sent : int }

let start engine nic ~dst:(dip, dport) ~rate ~until
    ?(spoof_base = Packet.ip_of_quad 11 0 0 1) () =
  let t = { sent = 0 } in
  let interval = 1e6 /. rate in
  (* Re-arm one event handle per firing rather than scheduling a fresh
     closure per SYN (see Blast.start_source). *)
  let handle = ref None in
  let tick () =
    if Engine.now engine < until then begin
      (* A fresh spoofed (address, port) pair per SYN: every request looks
         like a new connection. *)
      let src = spoof_base + (t.sent mod 4096) in
      let src_port = 1024 + (t.sent mod 60_000) in
      let syn =
        Packet.tcp ~src ~dst:dip ~src_port ~dst_port:dport ~seq:0 ~ack_no:0
          ~flags:(Packet.flags ~syn:true ()) ~window:16_384
          (Payload.synthetic 0)
      in
      ignore (Nic.transmit nic syn);
      t.sent <- t.sent + 1;
      match !handle with
      | Some h -> Engine.reschedule_after engine h ~delay:interval
      | None -> ()
    end
  in
  handle := Some (Engine.schedule_after engine ~delay:interval tick);
  t
