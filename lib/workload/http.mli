(** HTTP server and closed-loop clients (Figure 5).

    Models NCSA httpd 1.5.1's process-per-request structure: the master
    accepts a connection, forks a child, and the child reads the request,
    does the filesystem/formatting work, writes the ~1300-byte document and
    closes.  Eight closed-loop clients saturate the server, as in the
    paper. *)

type server_stats = { mutable accepted : int; mutable served : int; }
val start_server :
  Lrp_kernel.Kernel.t ->
  ?port:int ->
  ?backlog:int ->
  ?doc_bytes:int ->
  ?service_us:float -> ?fork_us:float -> unit -> server_stats
type client_stats = {
  mutable completed : int;
  mutable failed : int;
  mutable bytes : int;
}
val start_client :
  Lrp_kernel.Kernel.t ->
  dst:Lrp_net.Packet.ip * int ->
  ?request_bytes:int -> ?doc_bytes:int -> id:int -> client_stats -> unit
val start_clients :
  Lrp_kernel.Kernel.t ->
  dst:Lrp_net.Packet.ip * int -> ?n:int -> unit -> client_stats
