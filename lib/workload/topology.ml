(** Multi-rack scenario builder for sharded simulation.

    A spine-leaf cluster: each rack is one {e cell} — its own engine,
    leaf fabric and hosts — and racks talk through a spine whose
    per-link latency lower-bounds cross-cell effect distance, making it
    the shard scheduler's lookahead window ({!Lrp_engine.Shardsim}).

        spine  (uplink_mbps per rack link, spine_latency_us each way)
       /  |  \
    rack rack rack        each rack: leaf fabric (155 Mbit/s ports)
    r=0  r=1  r=2         hosts 10.r.0.(10+slot)

    Cross-rack frames leave through the leaf's uplink into a per-cell
    outbox; [exchange] drains every outbox at epoch barriers and injects
    each frame into its destination rack at its ready time, in a fixed
    total order — so results are byte-identical at any shard count. *)

open Lrp_engine
open Lrp_net
open Lrp_kernel

type cell = {
  cell_id : int;
  engine : Engine.t;
  fabric : Fabric.t;
  kernels : Kernel.t array;
}

type t = {
  cells : cell array;
  racks : int;
  hosts_per_rack : int;
  lookahead : float;
}

(* Addressing scheme: rack in the second octet, slot in the last —
   10.r.0.(10+s) — so cross-rack routing is a shift and a mask. *)
let host_ip ~rack ~slot = Packet.ip_of_quad 10 rack 0 (10 + slot)

let rack_of ip = (ip lsr 16) land 0xff

let spine_leaf ?(seed = 42) ?(spine_latency_us = 100.) ?(uplink_mbps = 622.)
    ~racks ~hosts_per_rack ~cfg () =
  if racks < 1 || hosts_per_rack < 1 then
    invalid_arg "Topology.spine_leaf: racks and hosts_per_rack must be >= 1";
  if racks > 256 then invalid_arg "Topology.spine_leaf: racks > 256";
  let resolve ip =
    if (ip lsr 24) land 0xff <> 10 then -1
    else
      let r = rack_of ip in
      let s = (ip land 0xff) - 10 in
      if r < racks && s >= 0 && s < hosts_per_rack then r else -1
  in
  let latency _cell = spine_latency_us in
  let make_cell r =
    (* Each cell gets an independent seed stream; [Engine.create] also
       installs the cell's own Idspace, so the kernels built right below
       draw their ids from it — construction is serial and identical at
       every shard count. *)
    let engine = Engine.create ~seed:(Rng.split_seed ~seed ~index:r) () in
    let fabric = Fabric.create engine () in
    Fabric.set_uplink fabric ~cell:r ~resolve ~latency
      ~min_latency:spine_latency_us ~bandwidth_mbps:uplink_mbps ();
    let kernels =
      Array.init hosts_per_rack (fun s ->
          Kernel.create engine fabric
            ~name:(Printf.sprintf "r%d-h%d" r s)
            ~ip:(host_ip ~rack:r ~slot:s)
            cfg)
    in
    { cell_id = r; engine; fabric; kernels }
  in
  { cells = Array.init racks make_cell; racks; hosts_per_rack;
    lookahead = spine_latency_us }

let racks t = t.racks
let hosts_per_rack t = t.hosts_per_rack
let lookahead t = t.lookahead
let cells t = t.cells
let cell t r = t.cells.(r)

let kernel t ~rack ~slot = t.cells.(rack).kernels.(slot)

(* Run [f] on cell [r] with the cell's Idspace installed — required
   around any setup that mints ids (sockets, channels, connections)
   after construction, e.g. starting workloads. *)
let on_cell t r f =
  let saved = Idspace.current () in
  Idspace.use (Engine.ids t.cells.(r).engine);
  Fun.protect ~finally:(fun () -> Idspace.use saved)
  @@ fun () -> f t.cells.(r)

(* Barrier exchange: drain every cell's outbox in ascending cell order,
   then deliver per destination in ascending (ready, source, sequence)
   order.  Collection builds per-destination lists newest-first; the
   [List.rev] restores (source, sequence) order and the stable sort on
   ready time alone preserves it among ties — an explicit total order,
   no polymorphic compare. *)
let exchange t () =
  let pending = Array.make t.racks [] in
  let moved = ref 0 in
  for src = 0 to t.racks - 1 do
    moved :=
      !moved
      + Fabric.drain_outbox t.cells.(src).fabric
          (fun ~ready ~dst ~seq:_ pkt ->
            pending.(dst) <- (ready, pkt) :: pending.(dst))
  done;
  for dst = 0 to t.racks - 1 do
    match pending.(dst) with
    | [] -> ()
    | l ->
        let l =
          List.stable_sort
            (fun (r1, _) (r2, _) -> Float.compare r1 r2)
            (List.rev l)
        in
        List.iter
          (fun (ready, pkt) ->
            Fabric.inject_remote t.cells.(dst).fabric ~at:ready pkt)
          l
  done;
  !moved

let run ?(shards = 1) t ~until =
  let engines = Array.map (fun c -> c.engine) t.cells in
  let sim =
    Shardsim.create ~shards ~lookahead:t.lookahead ~exchange:(exchange t)
      engines
  in
  Shardsim.run sim ~until;
  sim
