(** Compute-bound background process.

    The paper runs low-priority (nice +20) infinite-loop processes during
    the latency experiments to keep the CPU out of the idle loop (working
    around a SunOS dispatch anomaly); the same trick keeps our comparisons
    clean, and spinners double as victims for fairness measurements. *)

val start :
  Lrp_sim.Cpu.t ->
  ?nice:int -> ?name:string -> ?working_set:float -> unit -> Lrp_sim.Proc.t
