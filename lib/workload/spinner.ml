(** Compute-bound background process.

    The paper runs low-priority (nice +20) infinite-loop processes during
    the latency experiments to keep the CPU out of the idle loop (working
    around a SunOS dispatch anomaly); the same trick keeps our comparisons
    clean, and spinners double as victims for fairness measurements. *)

open Lrp_sim

let start cpu ?(nice = 20) ?(name = "spinner") ?(working_set = 0.) () =
  Cpu.spawn cpu ~nice ~working_set ~name (fun _self ->
      let rec loop () =
        Proc.compute 1_000.;
        loop ()
      in
      loop ())
