(** Synthetic RPC server workload (Table 2).

    Three processes run on the server machine:

    - the {e worker}: performs an 11.5-CPU-second memory-bound computation
      in response to a single RPC; its working set covers a significant
      fraction of the L2 cache (modelled as a cache-reload penalty on every
      context switch onto the CPU);
    - two {e RPC servers}: short per-request computations ("Fast" /
      "Medium" / "Slow" variants).

    A client machine keeps several requests outstanding at each RPC server,
    spread uniformly in time so request arrival is uncorrelated with server
    scheduling (paper section 4.2).  Requests ride on UDP, like the paper's
    RPC facility. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel

type cls = Fast | Medium | Slow

let cls_name = function Fast -> "Fast" | Medium -> "Medium" | Slow -> "Slow"

(* Per-request server computation, us. *)
let service_time = function Fast -> 100. | Medium -> 180. | Slow -> 350.

type result = {
  mutable worker_started : float;
  mutable worker_finished : float option;
  mutable rpcs_completed : int;     (* responses seen by the client *)
  mutable window_rpcs : int;        (* completed while the worker ran *)
  worker_cpu : float;               (* the computation's CPU demand, us *)
}

(* An RPC server process: receive, compute, reply. *)
let start_rpc_server kern ~port ~service =
  ignore
    (Cpu.spawn (Kernel.cpu kern) ~name:(Printf.sprintf "rpcsrv:%d" port)
       ~working_set:30. (fun self ->
        let sock = Api.socket_dgram kern in
        Api.bind kern sock ~owner:(Some self) ~port;
        let rec loop () =
          let dg = Api.recvfrom kern ~self sock in
          Proc.compute service;
          Api.sendto kern ~self sock ~dst:dg.Api.dg_from (Payload.synthetic 32);
          loop ()
        in
        try loop () with Api.Socket_closed -> ()))

(* The worker process: one request, 11.5 s of CPU, one reply. *)
let start_worker kern ~port ~cpu_us ~working_set result =
  ignore
    (Cpu.spawn (Kernel.cpu kern) ~name:"worker" ~working_set (fun self ->
         let sock = Api.socket_dgram kern in
         Api.bind kern sock ~owner:(Some self) ~port;
         let dg = Api.recvfrom kern ~self sock in
         result.worker_started <- Engine.now (Kernel.engine kern);
         Proc.compute cpu_us;
         result.worker_finished <- Some (Engine.now (Kernel.engine kern));
         Api.sendto kern ~self sock ~dst:dg.Api.dg_from (Payload.synthetic 32)))

(* Client-side response collector for one RPC server. *)
let start_collector kern ~port ~completed result =
  let sock = Api.socket_dgram kern in
  ignore
    (Cpu.spawn (Kernel.cpu kern) ~name:(Printf.sprintf "collect:%d" port)
       (fun self ->
        Api.bind kern sock ~owner:(Some self) ~port;
        let rec loop () =
          let _dg = Api.recvfrom kern ~self sock in
          incr completed;
          result.rpcs_completed <- result.rpcs_completed + 1;
          (match result.worker_finished with
           | None when result.worker_started > 0. ->
               result.window_rpcs <- result.window_rpcs + 1
           | None | Some _ -> ());
          loop ()
        in
        try loop () with Api.Socket_closed -> ()))

type setup = {
  result : result;
  mutable injected : int;
}

(* [run world ~server ~client ~cls ()] wires the full Table-2 scenario and
   runs it to worker completion. *)
let run world ~server ~client ~cls ?(worker_cpu = Time.sec 11.5)
    ?(worker_ws = 300.) ?(outstanding_limit = 28) ?(until = Time.sec 120.) () =
  let engine = World.engine world in
  let result =
    { worker_started = 0.; worker_finished = None; rpcs_completed = 0;
      window_rpcs = 0; worker_cpu }
  in
  let service = service_time cls in
  (* Give every process time to bind its socket before traffic starts. *)
  let settle = Time.ms 50. in
  (* Server machine: worker on port 6000, RPC servers on 6001/6002. *)
  start_worker server ~port:6000 ~cpu_us:worker_cpu ~working_set:worker_ws
    result;
  start_rpc_server server ~port:6001 ~service;
  start_rpc_server server ~port:6002 ~service;
  (* Client machine: collectors on 7001/7002, worker reply on 7000. *)
  let done1 = ref 0 and done2 = ref 0 in
  let sent1 = ref 0 and sent2 = ref 0 in
  start_collector client ~port:7001 ~completed:done1 result;
  start_collector client ~port:7002 ~completed:done2 result;
  ignore
    (Cpu.spawn (Kernel.cpu client) ~name:"worker-client" (fun self ->
         let sock = Api.socket_dgram client in
         Api.bind client sock ~owner:(Some self) ~port:7000;
         Proc.sleep_for settle;
         Api.sendto client ~self sock
           ~dst:(Kernel.ip_address server, 6000)
           (Payload.synthetic 32);
         let _reply = Api.recvfrom client ~self sock in
         ()));
  (* In-kernel request injector: near-uniform in time, alternating between
     the two servers, capped outstanding so the servers never starve but
     arrivals stay uncorrelated with scheduling. *)
  let setup = { result; injected = 0 } in
  let sip = Kernel.ip_address server and cip = Kernel.ip_address client in
  (* The injection grid adapts to the servers' delivered rate so that (1)
     each server always has requests outstanding (slightly over-driven) and
     (2) arrivals stay near-uniform in time, uncorrelated with server
     scheduling — the paper's two conditions.  A hard cap bounds the queues
     if the estimate overshoots. *)
  let interval = ref (service /. 2.) in
  let last_done = ref 0 in
  let rec adapt () =
    if result.worker_finished = None && Engine.now engine < until then begin
      let completed = !done1 + !done2 in
      let delta = completed - !last_done in
      last_done := completed;
      if delta > 10 then begin
        let rate = float_of_int delta /. 0.1 (* per second over 100 ms *) in
        interval := Float.max 20. (1e6 /. (rate *. 1.25))
      end;
      ignore (Engine.schedule_after engine ~delay:(Time.ms 100.) adapt)
    end
  in
  ignore (Engine.schedule engine ~at:(settle +. Time.ms 100.) adapt);
  let jitter = Rng.split (Engine.rng engine) in
  let flip = ref false in
  let rec inject () =
    if result.worker_finished = None && Engine.now engine < until then begin
      let port, sent, completed =
        if !flip then (6001, sent1, done1) else (6002, sent2, done2)
      in
      flip := not !flip;
      if !sent - !completed < outstanding_limit then begin
        let reply_port = if port = 6001 then 7001 else 7002 in
        let pkt =
          Packet.udp ~src:cip ~dst:sip ~src_port:reply_port ~dst_port:port
            (Payload.synthetic 32)
        in
        ignore (Nic.transmit (Kernel.nic client) pkt);
        incr sent;
        setup.injected <- setup.injected + 1
      end;
      (* Jittered grid: keeps arrivals near-uniform and uncorrelated with
         completions even when the outstanding gate binds. *)
      let delay = !interval *. (0.5 +. Rng.uniform jitter) in
      ignore (Engine.schedule_after engine ~delay inject)
    end
  in
  ignore (Engine.schedule engine ~at:settle inject);
  Lrp_engine.Engine.run_while engine
    (fun () -> result.worker_finished = None)
    ~until;
  result

let worker_elapsed r =
  match r.worker_finished with
  | Some f -> f -. r.worker_started
  | None -> nan

let rpc_rate r =
  let e = worker_elapsed r in
  if Float.is_nan e || e <= 0. then 0.
  else float_of_int r.window_rpcs *. 1e6 /. e

let worker_share r =
  let e = worker_elapsed r in
  if Float.is_nan e || e <= 0. then 0. else r.worker_cpu /. e
