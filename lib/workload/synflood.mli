(** SYN-flood generator (Figure 5).

    Injects TCP connection-establishment requests at a fixed rate to a
    victim port, from spoofed source addresses that do not exist on the
    fabric — so SYN-ACKs vanish and the victim's embryonic connections hang
    until they time out, exactly the attack pattern of the paper's
    experiment (no connection is ever established). *)

type t = { mutable sent : int; }
val start :
  Lrp_engine.Engine.t ->
  Lrp_net.Nic.t ->
  dst:Lrp_net.Packet.ip * Lrp_net.Packet.port ->
  rate:float -> until:Lrp_engine.Time.t -> ?spoof_base:int -> unit -> t
