(** Sliding-window UDP throughput tool (Table 1).

    The paper measures UDP throughput "using a simple sliding-window
    protocol" with checksumming disabled.  Sender keeps [window] datagrams
    outstanding; the receiver acknowledges each datagram with a small
    reply. *)

type result = {
  mutable bytes_received : int;
  mutable datagrams : int;
  mutable first_rx : float;
  mutable last_rx : float;
}
val mbps : result -> float
val start_receiver : Lrp_kernel.Kernel.t -> port:int -> result -> unit
val start_sender :
  Lrp_kernel.Kernel.t ->
  dst:Lrp_net.Packet.ip * Lrp_net.Packet.port ->
  size:int -> window:int -> total:int -> unit
val run :
  World.t ->
  sender:Lrp_kernel.Kernel.t ->
  receiver:Lrp_kernel.Kernel.t ->
  port:Lrp_net.Packet.port ->
  ?size:int ->
  ?window:int -> total:int -> until:Lrp_engine.Time.t -> unit -> result
