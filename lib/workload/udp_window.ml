(** Sliding-window UDP throughput tool (Table 1).

    The paper measures UDP throughput "using a simple sliding-window
    protocol" with checksumming disabled.  Sender keeps [window] datagrams
    outstanding; the receiver acknowledges each datagram with a small
    reply. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel

type result = {
  mutable bytes_received : int;
  mutable datagrams : int;
  mutable first_rx : float;
  mutable last_rx : float;
}

let mbps r =
  if r.last_rx <= r.first_rx then 0.
  else float_of_int r.bytes_received *. 8. /. (r.last_rx -. r.first_rx)

(* Receiver: consume datagrams, ack each one. *)
let start_receiver kern ~port result =
  ignore
    (Cpu.spawn (Kernel.cpu kern) ~name:"udpwin-rx" (fun self ->
         let sock = Api.socket_dgram kern in
         Api.bind kern sock ~owner:(Some self) ~port;
         let rec loop () =
           let dg = Api.recvfrom kern ~self sock in
           let n = Payload.length dg.Api.dg_payload in
           if result.datagrams = 0 then
             result.first_rx <- Engine.now (Kernel.engine kern);
           result.bytes_received <- result.bytes_received + n;
           result.datagrams <- result.datagrams + 1;
           result.last_rx <- Engine.now (Kernel.engine kern);
           Api.sendto kern ~self sock ~dst:dg.Api.dg_from (Payload.synthetic 1);
           loop ()
         in
         try loop () with Api.Socket_closed -> ()))

(* Sender: keep [window] datagrams in flight until [total] are sent. *)
let start_sender kern ~dst ~size ~window ~total =
  ignore
    (Cpu.spawn (Kernel.cpu kern) ~name:"udpwin-tx" (fun self ->
         let sock = Api.socket_dgram kern in
         ignore (Api.bind_ephemeral kern sock ~owner:(Some self));
         let outstanding = ref 0 in
         let sent = ref 0 in
         let acked = ref 0 in
         while !acked < total do
           if !sent < total && !outstanding < window then begin
             Api.sendto kern ~self sock ~dst (Payload.synthetic size);
             incr sent;
             incr outstanding
           end
           else begin
             let _ack = Api.recvfrom kern ~self sock in
             incr acked;
             decr outstanding
           end
         done))

let run world ~sender ~receiver ~port ?(size = 8192) ?(window = 8)
    ~total ~until () =
  let result =
    { bytes_received = 0; datagrams = 0; first_rx = 0.; last_rx = 0. }
  in
  start_receiver receiver ~port result;
  start_sender sender ~dst:(Kernel.ip_address receiver, port) ~size ~window
    ~total;
  World.run world ~until;
  result
