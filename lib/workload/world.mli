(** Scenario builder: an engine, a switching fabric and a few hosts.

    All the paper's experiments use two to four SPARCstation-20s on a
    private 155 Mbit/s ATM network; [make] builds exactly that. *)

type t = {
  engine : Lrp_engine.Engine.t;
  fabric : Lrp_net.Fabric.t;
  mutable hosts : (string * Lrp_kernel.Kernel.t) list;
}
val make : ?seed:int -> ?bandwidth_mbps:float -> unit -> t
val host_ip : int -> int
(** Attach a host running the given kernel configuration; IPs are
    assigned 10.0.0.10, .11, ... in order. *)

val add_host :
  t -> name:string -> Lrp_kernel.Kernel.config -> Lrp_kernel.Kernel.t
val engine : t -> Lrp_engine.Engine.t
val fabric : t -> Lrp_net.Fabric.t
val kernel : t -> string -> Lrp_kernel.Kernel.t
val run : t -> until:Lrp_engine.Time.t -> unit
(** Advance virtual time. *)

val pair :
  ?seed:int ->
  ?cfg:Lrp_kernel.Kernel.config ->
  unit -> t * Lrp_kernel.Kernel.t * Lrp_kernel.Kernel.t
