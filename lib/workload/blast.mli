(** Open-loop UDP traffic source and sink.

    The source injects packets directly at the sender's NIC — the equivalent
    of the paper's in-kernel packet source, needed because a user-process
    sender would saturate its own CPU long before the interesting offered
    rates (the paper notes using an in-kernel source for the same reason).

    The sink is a real application process: a receive-and-discard loop over
    the socket API, exactly like the paper's blast server. *)

type source = { mutable sent : int; mutable stop_at : float; }
val start_source :
  Lrp_engine.Engine.t ->
  Lrp_net.Nic.t ->
  src:Lrp_net.Packet.ip ->
  dst:Lrp_net.Packet.ip * Lrp_net.Packet.port ->
  ?src_port:Lrp_net.Packet.port ->
  rate:float -> size:int -> until:float -> unit -> source
type sink = {
  sock : Lrp_kernel.Socket.t;
  mutable received : int;
  mutable last_rx_at : float;
}
val start_sink : Lrp_kernel.Kernel.t -> ?nice:int -> port:int -> unit -> sink
