(** TCP bulk-transfer throughput (Table 1): 24 MB with 32 KB socket
    buffers. *)

type result = {
  mutable bytes : int;
  mutable started : float;
  mutable finished : float option;
}
val mbps : result -> float
val run :
  World.t ->
  sender:Lrp_kernel.Kernel.t ->
  receiver:Lrp_kernel.Kernel.t ->
  port:int -> total:int -> until:Lrp_engine.Time.t -> unit -> result
