(** Open-loop UDP traffic source and sink.

    The source injects packets directly at the sender's NIC — the equivalent
    of the paper's in-kernel packet source, needed because a user-process
    sender would saturate its own CPU long before the interesting offered
    rates (the paper notes using an in-kernel source for the same reason).

    The sink is a real application process: a receive-and-discard loop over
    the socket API, exactly like the paper's blast server. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel

type source = {
  mutable sent : int;
  mutable stop_at : float;
}

(* [start_source engine nic ~src ~dst ~rate ~size ~until ()] injects
   [size]-byte UDP datagrams at [rate] packets/sec until [until]. *)
let start_source engine nic ~src ~dst:(dip, dport) ?(src_port = 7777)
    ~rate ~size ~until () =
  let t = { sent = 0; stop_at = until } in
  let interval = 1e6 /. rate in
  (* One event record and one thunk for the whole run: each firing re-arms
     the same handle instead of scheduling a fresh closure per packet. *)
  let handle = ref None in
  let tick () =
    if Engine.now engine < t.stop_at then begin
      let pkt =
        Packet.udp ~src ~dst:dip ~src_port ~dst_port:dport
          (Payload.synthetic size)
      in
      ignore (Nic.transmit nic pkt);
      t.sent <- t.sent + 1;
      match !handle with
      | Some h -> Engine.reschedule_after engine h ~delay:interval
      | None -> ()
    end
  in
  handle := Some (Engine.schedule_after engine ~delay:interval tick);
  t

type sink = {
  sock : Socket.t;
  mutable received : int;
  mutable last_rx_at : float;
}

(* [start_sink kern ~port ()] spawns the blast-server process: bind, then
   receive and discard in a loop. *)
let start_sink kern ?(nice = 0) ~port () =
  let sock = Api.socket_dgram kern in
  let sink = { sock; received = 0; last_rx_at = 0. } in
  let _proc =
    Cpu.spawn (Kernel.cpu kern) ~nice ~name:(Printf.sprintf "blast-sink:%d" port)
      (fun self ->
        Api.bind kern sock ~owner:(Some self) ~port;
        let rec loop () =
          let _dg = Api.recvfrom kern ~self sock in
          sink.received <- sink.received + 1;
          sink.last_rx_at <- Engine.now (Kernel.engine kern);
          loop ()
        in
        try loop () with Api.Socket_closed -> ())
  in
  sink
