(** Multi-rack spine-leaf scenario builder for sharded simulation.

    Each rack is one {e cell}: its own engine, leaf fabric and hosts.
    Racks exchange frames through a spine whose per-link latency is the
    shard scheduler's lookahead window, so {!run} produces byte-identical
    results at any [?shards] (see {!Lrp_engine.Shardsim}). *)

type cell = {
  cell_id : int;
  engine : Lrp_engine.Engine.t;
  fabric : Lrp_net.Fabric.t;
  kernels : Lrp_kernel.Kernel.t array;
}

type t

val host_ip : rack:int -> slot:int -> Lrp_net.Packet.ip
(** [10.rack.0.(10+slot)] — rack in the second octet, so cross-rack
    routing is a shift and a mask. *)

val rack_of : Lrp_net.Packet.ip -> int

val spine_leaf :
  ?seed:int ->
  ?spine_latency_us:float ->
  ?uplink_mbps:float ->
  racks:int -> hosts_per_rack:int -> cfg:Lrp_kernel.Kernel.config -> unit -> t
(** Build [racks] cells of [hosts_per_rack] hosts each, every rack's
    leaf uplinked to a spine with [spine_latency_us] (default 100us)
    one-way latency at [uplink_mbps] (default 622, OC-12).  Each cell's
    engine seeds from [Rng.split_seed seed rack].
    @raise Invalid_argument on non-positive dimensions or > 256 racks. *)

val racks : t -> int
val hosts_per_rack : t -> int
val lookahead : t -> float
val cells : t -> cell array
val cell : t -> int -> cell
val kernel : t -> rack:int -> slot:int -> Lrp_kernel.Kernel.t

val on_cell : t -> int -> (cell -> 'a) -> 'a
(** Run a setup function against cell [r] with that cell's {!Lrp_engine.Idspace}
    installed — required around anything that mints ids after
    construction (starting workloads, opening sockets). *)

val exchange : t -> unit -> int
(** Drain every cell's uplink outbox and inject each frame into its
    destination cell at its ready time, in ascending (ready, source,
    sequence) order; returns frames moved.  Exposed for custom
    coordinators — {!run} wires it into {!Lrp_engine.Shardsim}. *)

val run : ?shards:int -> t -> until:float -> Lrp_engine.Shardsim.t
(** Advance the whole cluster to [until] on [?shards] domains (default
    1) and return the coordinator for its epoch/event/critical-path
    counters.  Byte-identical results at any shard count. *)
