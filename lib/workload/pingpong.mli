(** UDP ping-pong: the paper's latency microbenchmark (Table 1) and the
    latency-under-load probe (Figure 4). *)

val start_server : Lrp_kernel.Kernel.t -> port:int -> Lrp_kernel.Socket.t
type client = {
  rtts : Lrp_stats.Stats.Samples.t;
  mutable rounds_done : int;
  mutable finished_at : float option;
}
val start_client :
  Lrp_kernel.Kernel.t ->
  dst:Lrp_net.Packet.ip * Lrp_net.Packet.port ->
  rounds:int -> ?size:int -> unit -> client
type probe = {
  probe_rtts : Lrp_stats.Stats.Samples.t;
  mutable probe_sent : int;
  mutable probe_lost : int;
}
val start_probe :
  Lrp_kernel.Kernel.t ->
  dst:Lrp_net.Packet.ip * Lrp_net.Packet.port ->
  ?size:int -> ?timeout:float -> until:Lrp_engine.Time.t -> unit -> probe
