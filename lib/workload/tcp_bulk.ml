(** TCP bulk-transfer throughput (Table 1): 24 MB with 32 KB socket
    buffers. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel

type result = {
  mutable bytes : int;
  mutable started : float;
  mutable finished : float option;
}

let mbps r =
  match r.finished with
  | Some f when f > r.started -> float_of_int r.bytes *. 8. /. (f -. r.started)
  | Some _ | None -> 0.

let run world ~sender ~receiver ~port ~total ~until () =
  let r = { bytes = 0; started = 0.; finished = None } in
  let engine = World.engine world in
  ignore
    (Cpu.spawn (Kernel.cpu receiver) ~name:"tcpbulk-rx" (fun self ->
         let lsock = Api.socket_stream receiver in
         Api.tcp_listen receiver ~self lsock ~port ~backlog:4;
         let conn = Api.tcp_accept receiver ~self lsock in
         r.started <- Engine.now engine;
         let rec drain () =
           match Api.tcp_recv receiver ~self conn ~max:65_536 with
           | `Data p ->
               r.bytes <- r.bytes + Payload.length p;
               drain ()
           | `Eof -> ()
         in
         drain ();
         r.finished <- Some (Engine.now engine);
         Api.close receiver ~self conn));
  ignore
    (Cpu.spawn (Kernel.cpu sender) ~name:"tcpbulk-tx" (fun self ->
         let sock = Api.socket_stream sender in
         match
           Api.tcp_connect sender ~self sock
             ~remote:(Kernel.ip_address receiver, port)
         with
         | `Refused -> ()
         | `Ok ->
             (* Send in 64 kB application writes. *)
             let chunk = 65_536 in
             let remaining = ref total in
             while !remaining > 0 do
               let n = min chunk !remaining in
               (match Api.tcp_send sender ~self sock (Payload.synthetic n) with
                | `Ok -> remaining := !remaining - n
                | `Closed -> remaining := 0)
             done;
             Api.close sender ~self sock));
  World.run world ~until;
  r
