(** UDP ping-pong: the paper's latency microbenchmark (Table 1) and the
    latency-under-load probe (Figure 4). *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel

(* Echo server: receive a datagram, send it straight back. *)
let start_server kern ~port =
  let sock = Api.socket_dgram kern in
  let _proc =
    Cpu.spawn (Kernel.cpu kern) ~name:(Printf.sprintf "pong:%d" port)
      (fun self ->
        Api.bind kern sock ~owner:(Some self) ~port;
        let rec loop () =
          let dg = Api.recvfrom kern ~self sock in
          Api.sendto kern ~self sock ~dst:dg.Api.dg_from dg.Api.dg_payload;
          loop ()
        in
        try loop () with Api.Socket_closed -> ())
  in
  sock

type client = {
  rtts : Lrp_stats.Stats.Samples.t;
  mutable rounds_done : int;
  mutable finished_at : float option;
}

(* Ping-pong client: [rounds] request/reply exchanges of [size] bytes. *)
let start_client kern ~dst ~rounds ?(size = 1) () =
  let t =
    { rtts = Lrp_stats.Stats.Samples.create (); rounds_done = 0;
      finished_at = None }
  in
  let engine = Kernel.engine kern in
  let sock = Api.socket_dgram kern in
  let _proc =
    Cpu.spawn (Kernel.cpu kern) ~name:"ping" (fun self ->
        ignore (Api.bind_ephemeral kern sock ~owner:(Some self));
        for _ = 1 to rounds do
          let t0 = Engine.now engine in
          Api.sendto kern ~self sock ~dst (Payload.synthetic size);
          let _reply = Api.recvfrom kern ~self sock in
          Lrp_stats.Stats.Samples.add t.rtts (Engine.now engine -. t0);
          t.rounds_done <- t.rounds_done + 1
        done;
        t.finished_at <- Some (Engine.now engine))
  in
  t

type probe = {
  probe_rtts : Lrp_stats.Stats.Samples.t;
  mutable probe_sent : int;
  mutable probe_lost : int;
}

(* Latency probe for the Figure-4 experiment: ping-pong continuously until
   [until], with a per-round timeout so that lost probes (e.g. BSD dropping
   at the shared IP queue under background load) don't wedge the client. *)
let start_probe kern ~dst ?(size = 1) ?(timeout = Time.ms 200.) ~until () =
  let t =
    { probe_rtts = Lrp_stats.Stats.Samples.create (); probe_sent = 0;
      probe_lost = 0 }
  in
  let engine = Kernel.engine kern in
  let sock = Api.socket_dgram kern in
  ignore
    (Cpu.spawn (Kernel.cpu kern) ~name:"probe" (fun self ->
         ignore (Api.bind_ephemeral kern sock ~owner:(Some self));
         let rec round () =
           if Engine.now engine < until then begin
             let t0 = Engine.now engine in
             Api.sendto kern ~self sock ~dst (Payload.synthetic size);
             t.probe_sent <- t.probe_sent + 1;
             (match Api.recvfrom_timeout kern ~self sock ~timeout with
              | Some _ ->
                  Lrp_stats.Stats.Samples.add t.probe_rtts
                    (Engine.now engine -. t0)
              | None -> t.probe_lost <- t.probe_lost + 1);
             round ()
           end
         in
         round ()));
  t
