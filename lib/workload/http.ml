(** HTTP server and closed-loop clients (Figure 5).

    Models NCSA httpd 1.5.1's process-per-request structure: the master
    accepts a connection, forks a child, and the child reads the request,
    does the filesystem/formatting work, writes the ~1300-byte document and
    closes.  Eight closed-loop clients saturate the server, as in the
    paper. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel

type server_stats = {
  mutable accepted : int;
  mutable served : int;
}

(* [start_server kern ~port ()] spawns the httpd master process. *)
let start_server kern ?(port = 80) ?(backlog = 5) ?(doc_bytes = 1300)
    ?(service_us = 4_000.) ?(fork_us = 900.) () =
  let st = { accepted = 0; served = 0 } in
  ignore
    (Cpu.spawn (Kernel.cpu kern) ~name:"httpd" (fun self ->
         let lsock = Api.socket_stream kern in
         Api.tcp_listen kern ~self lsock ~port ~backlog;
         let rec accept_loop () =
           let conn = Api.tcp_accept kern ~self lsock in
           st.accepted <- st.accepted + 1;
           (* fork() a child to serve the request. *)
           Proc.compute fork_us;
           let child =
             Cpu.spawn (Kernel.cpu kern)
               ~name:(Printf.sprintf "httpd-child%d" st.accepted)
               ~working_set:50.
               (fun child_self ->
                 (match Api.tcp_recv kern ~self:child_self conn ~max:4096 with
                  | `Data _request ->
                      Proc.compute service_us;
                      (match
                         Api.tcp_send kern ~self:child_self conn
                           (Payload.synthetic doc_bytes)
                       with
                       | `Ok -> st.served <- st.served + 1
                       | `Closed -> ())
                  | `Eof -> ());
                 Api.close kern ~self:child_self conn)
           in
           Api.set_owner kern conn ~owner:child;
           accept_loop ()
         in
         try accept_loop () with Api.Socket_closed -> ()));
  st

type client_stats = {
  mutable completed : int;
  mutable failed : int;
  mutable bytes : int;
}

(* One closed-loop HTTP client: connect, request, read the document,
   close, repeat. *)
let start_client kern ~dst ?(request_bytes = 100) ?(doc_bytes = 1300)
    ~id stats =
  ignore
    (Cpu.spawn (Kernel.cpu kern) ~name:(Printf.sprintf "http-client%d" id)
       (fun self ->
        let rec session () =
          let sock = Api.socket_stream kern in
          (match Api.tcp_connect kern ~self sock ~remote:dst with
           | `Refused ->
               stats.failed <- stats.failed + 1;
               Api.close kern ~self sock;
               (* Back off briefly before retrying, like a browser would. *)
               Proc.sleep_for (Time.ms 100.)
           | `Ok ->
               (match
                  Api.tcp_send kern ~self sock (Payload.synthetic request_bytes)
                with
                | `Closed -> stats.failed <- stats.failed + 1
                | `Ok ->
                    let rec read_doc got =
                      if got >= doc_bytes then begin
                        stats.completed <- stats.completed + 1;
                        stats.bytes <- stats.bytes + got
                      end
                      else
                        match Api.tcp_recv kern ~self sock ~max:65_536 with
                        | `Data p -> read_doc (got + Payload.length p)
                        | `Eof -> stats.failed <- stats.failed + 1
                    in
                    read_doc 0);
               Api.close kern ~self sock);
          session ()
        in
        session ()))

(* [start_clients kern ~dst ~n ()] returns aggregate stats for [n]
   closed-loop clients. *)
let start_clients kern ~dst ?(n = 8) () =
  let stats = { completed = 0; failed = 0; bytes = 0 } in
  for i = 1 to n do
    start_client kern ~dst ~id:i stats
  done;
  stats
