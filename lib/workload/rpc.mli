(** Synthetic RPC server workload (Table 2).

    Three processes run on the server machine:

    - the {e worker}: performs an 11.5-CPU-second memory-bound computation
      in response to a single RPC; its working set covers a significant
      fraction of the L2 cache (modelled as a cache-reload penalty on every
      context switch onto the CPU);
    - two {e RPC servers}: short per-request computations ("Fast" /
      "Medium" / "Slow" variants).

    A client machine keeps several requests outstanding at each RPC server,
    spread uniformly in time so request arrival is uncorrelated with server
    scheduling (paper section 4.2).  Requests ride on UDP, like the paper's
    RPC facility. *)

type cls = Fast | Medium | Slow
val cls_name : cls -> string
val service_time : cls -> float
type result = {
  mutable worker_started : float;
  mutable worker_finished : float option;
  mutable rpcs_completed : int;
  mutable window_rpcs : int;
  worker_cpu : float;
}
val start_rpc_server :
  Lrp_kernel.Kernel.t -> port:int -> service:float -> unit
val start_worker :
  Lrp_kernel.Kernel.t ->
  port:int -> cpu_us:float -> working_set:float -> result -> unit
val start_collector :
  Lrp_kernel.Kernel.t -> port:int -> completed:int ref -> result -> unit
type setup = { result : result; mutable injected : int; }
val run :
  World.t ->
  server:Lrp_kernel.Kernel.t ->
  client:Lrp_kernel.Kernel.t ->
  cls:cls ->
  ?worker_cpu:float ->
  ?worker_ws:float ->
  ?outstanding_limit:int -> ?until:Lrp_engine.Time.t -> unit -> result
val worker_elapsed : result -> float
val rpc_rate : result -> float
val worker_share : result -> float
