(** Measurement helpers for the experiment harnesses. *)

(** Streaming mean / min / max / stddev. *)

module Summary :
  sig
    type t = {
      mutable n : int;
      mutable sum : float;
      mutable sumsq : float;
      mutable min : float;
      mutable max : float;
    }
    val create : unit -> t
    val add : t -> float -> unit
    val count : t -> int
    val mean : t -> float
    val minimum : t -> float
    val maximum : t -> float
    val stddev : t -> float
    val pp : Format.formatter -> t -> unit
  end
(** Sample store with percentiles (used for latency distributions).

    Backed by a growable array with a cached sort: the first percentile
    query after a batch of [add]s sorts once; later queries are O(1).
    [percentile], [median] and [mean] return [nan] on an empty store
    (e.g. a probe whose packets were all lost) rather than raising;
    with a single sample they return that sample. *)

module Samples :
  sig
    type t
    val create : unit -> t
    val add : t -> float -> unit
    val count : t -> int
    val percentile : t -> float -> float
    val median : t -> float
    val mean : t -> float
  end
(** Windowed event-rate meter. *)

module Rate :
  sig
    type t = {
      mutable count : int;
      mutable window_start : float;
      mutable last_rate : float;
    }
    val create : unit -> t
    val mark : t -> unit
    val rate : t -> now:float -> float
    val total_since_reset : t -> int
  end
val mbps : bytes:int -> us:float -> float
(** Megabits per second from a byte count over a duration. *)

val pps : packets:int -> us:float -> float
