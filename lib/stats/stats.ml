(** Measurement helpers for the experiment harnesses. *)

(* --- streaming summary ------------------------------------------------ *)

module Summary = struct
  type t = {
    mutable n : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; sum = 0.; sumsq = 0.; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    t.sumsq <- t.sumsq +. (x *. x);
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
  let minimum t = if t.n = 0 then 0. else t.min
  let maximum t = if t.n = 0 then 0. else t.max

  let stddev t =
    if t.n < 2 then 0.
    else
      let m = mean t in
      let v = (t.sumsq /. float_of_int t.n) -. (m *. m) in
      sqrt (Float.max 0. v)

  let pp fmt t =
    Fmt.pf fmt "n=%d mean=%.1f min=%.1f max=%.1f sd=%.1f" t.n (mean t)
      (minimum t) (maximum t) (stddev t)
end

(* --- reservoir for percentiles ---------------------------------------- *)

module Samples = struct
  (* Growable array with a cached sort: [add] appends (amortised O(1),
     invalidating the cache); the first percentile query after a batch of
     adds sorts the filled prefix once, and subsequent queries are O(1).
     Statistical queries on an empty store return [nan] (never raise). *)
  type t = { mutable xs : float array; mutable n : int; mutable sorted : bool }

  let create () = { xs = [||]; n = 0; sorted = true }

  let add t x =
    (if t.n = Array.length t.xs then begin
       let cap = max 16 (2 * t.n) in
       let xs = Array.make cap 0. in
       Array.blit t.xs 0 xs 0 t.n;
       t.xs <- xs
     end);
    t.xs.(t.n) <- x;
    t.n <- t.n + 1;
    t.sorted <- false

  let count t = t.n

  let ensure_sorted t =
    if not t.sorted then begin
      (* Sort only the filled prefix; the spare capacity stays untouched. *)
      let a = Array.sub t.xs 0 t.n in
      Array.sort Float.compare a;
      Array.blit a 0 t.xs 0 t.n;
      t.sorted <- true
    end

  let percentile t p =
    if t.n = 0 then Float.nan
    else if t.n = 1 then t.xs.(0)
    else begin
      ensure_sorted t;
      let idx = int_of_float (Float.round (p /. 100. *. float_of_int (t.n - 1))) in
      t.xs.(max 0 (min (t.n - 1) idx))
    end

  let median t = percentile t 50.

  let mean t =
    if t.n = 0 then Float.nan
    else begin
      let sum = ref 0. in
      for i = 0 to t.n - 1 do
        sum := !sum +. t.xs.(i)
      done;
      !sum /. float_of_int t.n
    end
end

(* --- rate meter: events per second over a window ----------------------- *)

module Rate = struct
  type t = {
    mutable count : int;
    mutable window_start : float;  (* us *)
    mutable last_rate : float;     (* events per second *)
  }

  let create () = { count = 0; window_start = 0.; last_rate = 0. }

  let mark t = t.count <- t.count + 1

  (* [rate t ~now] finishes the current window and returns events/sec. *)
  let rate t ~now =
    let dt = (now -. t.window_start) /. 1e6 in
    if dt > 0. then t.last_rate <- float_of_int t.count /. dt;
    t.count <- 0;
    t.window_start <- now;
    t.last_rate

  let total_since_reset t = t.count
end

(* --- unit helpers ------------------------------------------------------ *)

let mbps ~bytes ~us = if us <= 0. then 0. else float_of_int bytes *. 8. /. us

let pps ~packets ~us = if us <= 0. then 0. else float_of_int packets *. 1e6 /. us
