(** Per-engine identifier streams.

    Packet idents and channel / connection / socket ids are drawn from the
    engine that owns the simulation, not from process-global counters, so a
    cell's id sequences depend only on its own allocation order.  This is
    what makes sharded runs ({!Shardsim}) byte-identical at any shard
    count: idents appear in recorder dumps, and a global counter would
    interleave differently under every domain schedule.

    The current space is domain-local: {!Engine.create} installs the new
    engine's space for the creating domain, and {!Shardsim} re-installs
    each cell's space before advancing it.  Single-simulation code never
    touches this module directly. *)

type t

val create : unit -> t
(** A fresh space with every stream at zero. *)

val current : unit -> t
(** The space installed on the calling domain (a per-domain default until
    the first {!use} / {!Engine.create}). *)

val use : t -> unit
(** Install [t] as the calling domain's current space. *)

val next_pkt_ident : unit -> int
(** Next IP ident from the current space (starting at 1). *)

val next_chan_id : unit -> int
val next_conn_id : unit -> int
val next_sock_id : unit -> int
