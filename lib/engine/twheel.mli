(** Two-tier pending-event queue: hierarchical timer wheel + {!Eheap}.

    Near-horizon events land in O(1) wheel buckets; far-horizon events
    overflow into the comparison heap.  All pops come from the heap, after
    [sync] has poured every bucket that could hold the global minimum, so
    firing order — (key, FIFO-seq) lexicographic — is exactly what a pure
    heap would produce.  Values are ints (the engine's packed handles), so
    the structure is fully unboxed and schedule/pop allocate nothing on the
    steady state. *)

type t

val create : ?wheel:bool -> unit -> t
(** [create ()] makes an empty queue.  [~wheel:false] disables the wheel
    entirely — every event goes straight to the heap — which must be
    observationally identical; the equivalence property test runs the two
    side by side. *)

val set_filter : t -> (int -> bool) -> unit
(** Install the liveness filter consulted when a bucket pours: entries for
    which the filter returns [false] (cancelled events) are dropped in O(1)
    instead of entering the heap.  The filter may free the entry's backing
    state.  Default accepts everything. *)

val length : t -> int
(** Entries currently queued (wheel residents + heap), including cancelled
    entries not yet dropped. *)

val is_empty : t -> bool

val add : t -> now:float -> key:float -> int -> unit
(** [add t ~now ~key v] schedules [v] at time [key].  [now] is the current
    virtual time; it lets an idle wheel snap its tick cursor forward so
    near-horizon events stay in the cheap path after a heap-only stretch.
    Requires [key >= now]. *)

val min_key_or : t -> default:float -> float
(** Smallest key queued, or [default] when empty.  Turns the wheel as
    needed; allocation-free. *)

val pop_min : t -> key_ref:float ref -> int
(** Remove the globally-minimal entry and return its value; its key is
    written through [key_ref] (no tuple allocation).
    @raise Invalid_argument when empty. *)

(** {2 Cell-based hot path}

    Non-flambda OCaml boxes every float that crosses a function boundary
    as an argument or return value, but float-array loads and stores stay
    unboxed.  The queue therefore owns a two-float scratch cell through
    which keys and times travel: with these entry points the steady-state
    schedule/fire cycle allocates zero minor words. *)

val cell : t -> float array
(** The queue's scratch cell (length 2).  [cell.(0)] carries the event key
    into {!add_cell} and out of {!pop_min_cell}; [cell.(1)] carries the
    current virtual time into {!add_cell}. *)

val add_cell : t -> int -> unit
(** {!add} reading [~key] from [cell.(0)] and [~now] from [cell.(1)]. *)

val min_key_leq : t -> float -> bool
(** [min_key_leq t bound] is [true] iff the queue is non-empty and its
    minimal key is [<= bound].  Allocation-free replacement for comparing
    {!min_key_or} against a bound. *)

val min_key_into : t -> cell:float array -> bool
(** [min_key_into t ~cell] writes the minimal key into [cell.(0)] and
    returns [true], or returns [false] (leaving [cell] alone) when the
    queue is empty.  Allocation-free replacement for {!min_key_or} when
    the key itself is needed (the float return of {!min_key_or} is
    boxed). *)

val pop_min_cell : t -> int
(** Remove the globally-minimal entry and return its value, leaving its
    key in [cell.(0)]; returns [-1] when the queue is empty (cancelled
    entries may be dropped on the way, so a non-[is_empty] queue can still
    come up empty here).  Stored values must be [>= 0]. *)

val pop_leq_cell : t -> bound:float -> int
(** {!pop_min_cell} gated on the bound: pops the globally-minimal entry
    iff its key is [<= bound], returning [-1] otherwise (empty queue, or
    minimum beyond the bound).  One wheel sync and one heap-root access
    where a {!min_key_leq} / {!pop_min_cell} pair pays two of each — the
    event loop's per-iteration operation. *)

val pop_boundcell : t -> int
(** {!pop_leq_cell} with the bound read out of [cell.(1)] instead of a
    float argument (boxed at every non-inlined call): the batched
    dispatch loop's per-event pop.  [cell.(1)] is only read by
    {!add_cell} at schedule time; re-write it before any pop that
    follows dispatched work. *)

(** {2 Routing statistics} — cumulative, for the metrics registry. *)

val scheduled_wheel : t -> int
(** Schedules that landed in a wheel bucket. *)

val scheduled_heap : t -> int
(** Schedules routed straight to the heap (past/overflow, or wheel off). *)

val skipped_at_pour : t -> int
(** Cancelled entries dropped by the filter at bucket-pour time — each one
    a heap insertion plus a heap pop avoided. *)
