(* Deterministic conservative-lookahead coordinator for sharded
   simulation.

   One simulation = many *cells*, each a self-contained engine (plus
   whatever the caller hangs off it: kernels, a leaf fabric, recorders).
   Cells interact only through a caller-supplied [exchange] step that the
   coordinator invokes single-threaded at epoch barriers.  A *shard* is a
   contiguous block of cells advanced by one domain; crucially the cell
   set and everything observable is fixed by the topology, and shards are
   just an execution grouping — which is why results are byte-identical
   at any shard count, including 1.

   Epoch protocol (classic conservative lookahead, CMB-style):

     d      = min over cells of Engine.next_key      (global min deadline)
     T_safe = min (d + lookahead) until
     advance every cell to T_safe (shards in parallel, each shard's cells
       in ascending index order); barrier; exchange cross-cell messages.

   Safety: [lookahead] must lower-bound the virtual-time distance between
   *sending* a cross-cell message and its earliest effect on another cell
   (for a network fabric: the minimum cross-link latency).  Every event
   executed in an epoch has time >= d, so any message it emits becomes
   visible at >= d + lookahead >= T_safe — no cell has advanced past
   T_safe, so barrier delivery can never rewind a cell.  Messages landing
   exactly at T_safe are injected at the barrier and processed in the
   next epoch, after local events already executed at that same
   timestamp; the tie-break is identical at every shard count because the
   epoch schedule itself is shard-independent (d depends only on cell
   states).

   Progress: T_safe > max cell clock whenever d is finite (lookahead is
   required positive), so every epoch either executes events, moves
   messages, or terminates the run.

   Determinism requirements on the caller:
   - a cell touches only its own state while advancing (the lint C2 rule
     keeps lib/engine and lib/net free of cross-cell module state, and
     Idspace makes id streams per-cell);
   - [exchange] runs at barriers only, visits source cells in a fixed
     order, and delivers messages in a fixed total order (Topology sorts
     by (ready time, source cell, sequence)).

   The coordinator also measures how much parallelism the decomposition
   exposes: [events_critical] sums, per epoch, the *maximum* events any
   one shard executed — the critical path of the epoch schedule.  With
   enough cores, wall-clock speedup over one shard approaches
   events_total / events_critical; unlike measured wall time the ratio is
   deterministic and machine-independent, so the perf gate can enforce it
   even on a single-core CI runner. *)

type t = {
  cells : Engine.t array;
  lookahead : float;
  exchange : unit -> int;
  shards : int;
  first_cell : int array;  (* shard s owns cells [first.(s), first.(s+1)) *)
  shard_events : int array;  (* per-shard events this epoch (scratch) *)
  key_cell : float array;  (* scratch for the next_key_into fold *)
  mutable team : Lrp_parallel.Team.t option;
  mutable epochs : int;
  mutable messages : int;
  mutable events_total : int;
  mutable events_critical : int;
}

let create ?(shards = 1) ~lookahead ~exchange cells =
  let n = Array.length cells in
  if n = 0 then invalid_arg "Shardsim.create: no cells";
  if not (lookahead > 0. && lookahead < Float.infinity) then
    invalid_arg "Shardsim.create: lookahead must be positive and finite";
  let shards = max 1 (min shards n) in
  (* Contiguous block partition: deterministic, and cells built
     rack-by-rack keep their locality. *)
  let first_cell = Array.init (shards + 1) (fun s -> s * n / shards) in
  { cells; lookahead; exchange; shards; first_cell;
    shard_events = Array.make shards 0; key_cell = [| 0. |]; team = None;
    epochs = 0; messages = 0; events_total = 0; events_critical = 0 }

let shards t = t.shards
let epochs t = t.epochs
let messages t = t.messages
let events_total t = t.events_total
let events_critical t = t.events_critical

let next_deadline t =
  (* [next_key_into] keeps the fold allocation-free: [Engine.next_key]
     would box one float per cell per epoch. *)
  let d = ref Float.infinity in
  for i = 0 to Array.length t.cells - 1 do
    if Engine.next_key_into t.cells.(i) ~cell:t.key_cell && t.key_cell.(0) < !d
    then d := t.key_cell.(0)
  done;
  !d

(* Advance every cell to [bound].  Each shard's cells run in ascending
   index order with the cell's own Idspace installed, so a cell's
   execution is a pure function of its state and the bound sequence —
   independent of the shard partition. *)
let advance t bound =
  let work s =
    let saved = Idspace.current () in
    let events = ref 0 in
    for i = t.first_cell.(s) to t.first_cell.(s + 1) - 1 do
      let e = t.cells.(i) in
      Idspace.use (Engine.ids e);
      let before = Engine.events_executed e in
      Engine.run e ~until:bound;
      events := !events + (Engine.events_executed e - before)
    done;
    Idspace.use saved;
    t.shard_events.(s) <- !events
  in
  (match t.team with
   | None -> work 0
   | Some team -> Lrp_parallel.Team.run team work);
  let total = ref 0 and critical = ref 0 in
  for s = 0 to t.shards - 1 do
    total := !total + t.shard_events.(s);
    if t.shard_events.(s) > !critical then critical := t.shard_events.(s)
  done;
  t.events_total <- t.events_total + !total;
  t.events_critical <- t.events_critical + !critical

let run t ~until =
  let saved = Idspace.current () in
  let team =
    if t.shards > 1 then Some (Lrp_parallel.Team.create ~size:t.shards)
    else None
  in
  t.team <- team;
  Fun.protect
    ~finally:(fun () ->
      t.team <- None;
      (match team with
       | Some tm -> Lrp_parallel.Team.shutdown tm
       | None -> ());
      Idspace.use saved)
  @@ fun () ->
  let rec loop () =
    let d = next_deadline t in
    if d <= until then begin
      advance t (Float.min (d +. t.lookahead) until);
      t.epochs <- t.epochs + 1;
      t.messages <- t.messages + t.exchange ();
      loop ()
    end
    else begin
      (* Nothing left below the horizon; cross-cell messages may still be
         in flight.  Drain mailboxes until quiescent, then snap clocks. *)
      let moved = t.exchange () in
      if moved > 0 then begin
        t.messages <- t.messages + moved;
        loop ()
      end
      else advance t until
    end
  in
  loop ()
