(* Array-backed binary min-heap.  Each entry carries a monotonically
   increasing sequence number so that equal keys compare FIFO.

   Entries are stored in three parallel arrays (keys / seqs / values)
   instead of an array of entry records: no per-insertion allocation, and
   the float keys live in a flat unboxed array.  Sift-up and sift-down move
   a hole through the tree and write the inserted entry exactly once,
   instead of swapping triples at every level. *)

type t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable vals : int array;
  mutable size : int;
  mutable next_seq : int;
}

let initial_capacity = 16

let create () =
  { keys = [||]; seqs = [||]; vals = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* Ensure room for one more entry. *)
let reserve t =
  let cap = Array.length t.seqs in
  if t.size = cap then begin
    let cap' = max initial_capacity (2 * cap) in
    let keys = Array.make cap' 0. in (* alloc: cold — amortized growth *)
    let seqs = Array.make cap' 0 in (* alloc: cold — amortized growth *)
    let vals = Array.make cap' 0 in (* alloc: cold — amortized growth *)
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.keys <- keys;
    t.seqs <- seqs;
    t.vals <- vals
  end

(* Insert with a caller-supplied sequence rank.  The timer wheel routes
   events through holding buckets and pours them into the heap only when
   their horizon comes up; carrying the schedule-time sequence through the
   pour keeps FIFO-among-equal-keys identical to a direct heap insertion. *)
(* [add_pre] with the key read out of [cell.(0)]: a float array load stays
   unboxed, where a float argument would be boxed at every call — this is
   the wheel's pour path, traversed once per event. *)
let[@inline] add_pre_cell t ~cell ~seq value =
  if t.size = Array.length t.seqs then reserve t;
  let key = cell.(0) in
  let i = ref t.size in
  t.size <- t.size + 1;
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let p = (!i - 1) / 2 in
    let pk = t.keys.(p) in
    if key < pk || (key = pk && seq < t.seqs.(p)) then begin
      t.keys.(!i) <- pk;
      t.seqs.(!i) <- t.seqs.(p);
      t.vals.(!i) <- t.vals.(p);
      i := p
    end
    else stop := true
  done;
  t.keys.(!i) <- key;
  t.seqs.(!i) <- seq;
  t.vals.(!i) <- value

let add_pre t ~key ~seq value =
  if t.size = Array.length t.seqs then reserve t;
  (* Walk the hole up from the new leaf, pulling parents down until the
     inserted entry fits. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let p = (!i - 1) / 2 in
    let pk = t.keys.(p) in
    if key < pk || (key = pk && seq < t.seqs.(p)) then begin
      t.keys.(!i) <- pk;
      t.seqs.(!i) <- t.seqs.(p);
      t.vals.(!i) <- t.vals.(p);
      i := p
    end
    else stop := true
  done;
  t.keys.(!i) <- key;
  t.seqs.(!i) <- seq;
  t.vals.(!i) <- value

let add t ~key value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  add_pre t ~key ~seq value

let min_key t = if t.size = 0 then None else Some t.keys.(0)

let[@inline] min_key_or t ~default =
  if t.size = 0 then default else t.keys.(0)

(* Allocation-free variant: the smallest key is written into [cell.(0)]
   (float-array-to-float-array, no box) instead of being returned. *)
let[@inline] min_key_into t ~cell =
  if t.size = 0 then false
  else begin
    cell.(0) <- t.keys.(0);
    true
  end

(* Remove the root: sift the hole down, then drop the displaced last entry
   into it.  The caller has already read the root's key/value. *)
let remove_top t =
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    let key = t.keys.(n) and seq = t.seqs.(n) in
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      let l = (2 * !i) + 1 in
      if l >= n then stop := true
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (t.keys.(r) < t.keys.(l)
               || (t.keys.(r) = t.keys.(l) && t.seqs.(r) < t.seqs.(l)))
          then r
          else l
        in
        let ck = t.keys.(c) in
        if ck < key || (ck = key && t.seqs.(c) < seq) then begin
          t.keys.(!i) <- ck;
          t.seqs.(!i) <- t.seqs.(c);
          t.vals.(!i) <- t.vals.(c);
          i := c
        end
        else stop := true
      end
    done;
    t.keys.(!i) <- key;
    t.seqs.(!i) <- seq;
    t.vals.(!i) <- t.vals.(n)
  end

let pop t =
  if t.size = 0 then None
  else begin
    let top_key = t.keys.(0) and top_val = t.vals.(0) in
    remove_top t;
    Some (top_key, top_val)
  end

let pop_min t =
  if t.size = 0 then invalid_arg "Eheap.pop_min: empty heap";
  let top_val = t.vals.(0) in
  remove_top t;
  top_val

(* Conditional pop: if the root's key is <= [bound], pop it — key into
   [cell.(0)], value returned; otherwise [default].  Fuses the
   min-compare and the pop that event loops would otherwise run as two
   separate root accesses. *)
let[@inline] pop_leq_into t ~bound ~cell ~default =
  if t.size = 0 || t.keys.(0) > bound then default
  else begin
    cell.(0) <- t.keys.(0);
    let top_val = t.vals.(0) in
    remove_top t;
    top_val
  end

(* [pop_leq_into] with the bound read out of [cell.(1)] instead of a
   float argument: the batched event loop pops once per event, and a
   float argument to a non-inlined call is boxed at every call site —
   two minor words per event that the cell load avoids. *)
let[@inline] pop_boundcell_into t ~cell ~default =
  if t.size = 0 || t.keys.(0) > cell.(1) then default
  else begin
    cell.(0) <- t.keys.(0);
    let top_val = t.vals.(0) in
    remove_top t;
    top_val
  end

(* Combined min-read + pop: writes the root's key into [cell.(0)] and
   returns its value, or [default] when the heap is empty.  One root
   access where the [min_key_into]-then-[pop_min] sequence pays two. *)
let[@inline] pop_min_into t ~cell ~default =
  if t.size = 0 then default
  else begin
    cell.(0) <- t.keys.(0);
    let top_val = t.vals.(0) in
    remove_top t;
    top_val
  end

let clear t =
  t.keys <- [||];
  t.seqs <- [||];
  t.vals <- [||];
  t.size <- 0
