(* Hierarchical timer wheel in front of {!Eheap}.

   The engine's dominant event pattern is short-horizon timers that are
   re-armed or cancelled before they fire (TCP retransmit/delack churn,
   per-packet NIC serialisation, CPU work segments).  A comparison heap
   pays an O(log n) sift on every schedule and again on every lazy-cancel
   pop; the wheel makes both O(1).

   Structure: [levels] wheels of [wheel_size] buckets each.  Level 0
   buckets span [granularity] microseconds of virtual time; each higher
   level is [wheel_size] times coarser.  An event lands in the finest
   level whose span still contains it; events beyond the top level's
   horizon overflow into the heap and are simply popped from there when
   their time comes (no heap-to-wheel migration is ever needed for
   correctness — the heap orders them exactly).

   Ordering is heap-equivalent by construction:

   - Every event is assigned a global sequence number at schedule time,
     whichever structure it lands in.  Bucket pours replay the original
     (key, seq) into the heap via {!Eheap.add_pre}, so FIFO among equal
     keys is decided exactly as if the event had been heap-inserted at
     schedule time.
   - All final pops come from the heap.  The invariant is: every pending
     event with key < low_edge (= cur_tick * granularity) lives in the
     heap.  [sync] turns the wheel — pouring due level-0 buckets and
     cascading higher-level buckets at their boundaries — until the heap
     minimum is strictly below low_edge (or the wheel is empty), at which
     point the heap minimum is the true global minimum: every wheel
     resident has key >= low_edge.  Equal keys can never straddle the
     pop boundary because the sync condition is strict.

   Cancellation stays lazy (the engine marks the slot), but the wheel
   consults a caller-installed [filter] when a bucket pours: entries the
   filter rejects are dropped in O(1) without ever touching the heap.
   This is the big win for TCP re-arm churn — a timer cancelled before
   its bucket comes up costs one array push and one filtered skip. *)

let bucket_bits = 8
let wheel_size = 1 lsl bucket_bits (* 256 buckets per level *)
let bucket_mask = wheel_size - 1
let levels = 3

let granularity = 16.0 (* us: level-0 bucket width *)
let inv_granularity = 1. /. granularity (* exact: granularity is a power of 2 *)

(* Level spans, in ticks: level 0 holds delta in [0, 2^8), level 1
   [2^8, 2^16), level 2 [2^16, 2^24); anything farther overflows. *)
let span_bits l = bucket_bits * (l + 1)
let top_span = 1 lsl (bucket_bits * levels)

type bucket = {
  mutable bkeys : float array;
  mutable bseqs : int array;
  mutable bvals : int array;
  mutable blen : int;
}

type t = {
  heap : Eheap.t; (* poured + overflow events, ordered by (key, seq) *)
  wheels : bucket array array; (* [level].(index) *)
  lcounts : int array; (* live entries per level, for empty-stretch jumps *)
  cell : float array;
  (* two-float scratch cell shared with the caller: [cell.(0)] carries the
     event key into [add_cell] and out of [pop_min_cell]; [cell.(1)]
     carries the current virtual time into [add_cell].  Float array
     loads/stores stay unboxed where float arguments and returns would be
     boxed at every call — this is what makes the steady-state
     schedule/fire cycle allocate zero minor words. *)
  mutable cur_tick : int;
  (* tick boundaries cached as floats, maintained by [set_tick]: the
     schedule and sync paths compare keys against them on every call, and
     recomputing [float_of_int cur_tick *. granularity] per operation is
     measurable on the hot path.  [edges] rather than mutable float fields:
     a float array keeps the stores unboxed in this mixed record.
       edges.(0) = low edge   = cur_tick * granularity
       edges.(1) = due edge   = (cur_tick + 1) * granularity
       edges.(2) = horizon    = (cur_tick + top_span) * granularity *)
  edges : float array;
  mutable wheel_count : int; (* entries currently resident in buckets *)
  mutable next_seq : int;
  mutable filter : int -> bool; (* false at pour time = drop the entry *)
  mutable use_wheel : bool;
  (* routing statistics, exposed for the metrics registry *)
  mutable n_wheel : int;   (* schedules routed to a bucket *)
  mutable n_heap : int;    (* schedules routed straight to the heap *)
  mutable n_skipped : int; (* cancelled entries dropped at pour time *)
}

let empty_bucket () =
  { bkeys = [||]; bseqs = [||]; bvals = [||]; blen = 0 }

let[@inline] set_tick t tick =
  t.cur_tick <- tick;
  let f = float_of_int tick in
  t.edges.(0) <- f *. granularity;
  t.edges.(1) <- (f +. 1.) *. granularity;
  t.edges.(2) <- float_of_int (tick + top_span) *. granularity

let create ?(wheel = true) () =
  let t =
    { heap = Eheap.create ();
      wheels =
        Array.init levels (fun _ ->
            Array.init wheel_size (fun _ -> empty_bucket ()));
      lcounts = Array.make levels 0;
      cell = Array.make 2 0.;
      cur_tick = 0; edges = Array.make 3 0.;
      wheel_count = 0; next_seq = 0;
      filter = (fun _ -> true); use_wheel = wheel;
      n_wheel = 0; n_heap = 0; n_skipped = 0 }
  in
  set_tick t 0;
  t

let cell t = t.cell

let set_filter t f = t.filter <- f

let length t = Eheap.length t.heap + t.wheel_count

let is_empty t = length t = 0

let scheduled_wheel t = t.n_wheel
let scheduled_heap t = t.n_heap
let skipped_at_pour t = t.n_skipped

let bucket_push b ~key ~seq v =
  let cap = Array.length b.bseqs in
  if b.blen = cap then begin
    let cap' = max 8 (2 * cap) in
    let bkeys = Array.make cap' 0. in (* alloc: cold — amortized growth *)
    let bseqs = Array.make cap' 0 in (* alloc: cold — amortized growth *)
    let bvals = Array.make cap' 0 in (* alloc: cold — amortized growth *)
    Array.blit b.bkeys 0 bkeys 0 b.blen;
    Array.blit b.bseqs 0 bseqs 0 b.blen;
    Array.blit b.bvals 0 bvals 0 b.blen;
    b.bkeys <- bkeys;
    b.bseqs <- bseqs;
    b.bvals <- bvals
  end;
  b.bkeys.(b.blen) <- key;
  b.bseqs.(b.blen) <- seq;
  b.bvals.(b.blen) <- v;
  b.blen <- b.blen + 1

(* Route one (cell.(0), seq, value) to its resting place given the
   current tick.  Used both for fresh schedules and for cascade
   redistribution.  The key travels in the scratch cell: a float-array
   load is unboxed where a float argument is boxed at every call.  The
   horizon test runs in floats before any int conversion, so huge keys
   never reach [int_of_float].

   Keys below the *due* edge — already expired, or expiring within the
   current tick — go straight to the heap: the bucket they would land in
   is the very next one poured, so bucketing them only adds a push, a
   pour, and a filter call to the path of every due-now event.  The sync
   invariant is unchanged: [sync] still pours the current tick's bucket
   before any key >= low edge is popped, so a heap-resident due event can
   never overtake an earlier (smaller seq) bucket resident with the same
   key. *)
let[@inline] place_cell t ~seq v =
  let key = t.cell.(0) in
  if key < t.edges.(1) || key >= t.edges.(2) then begin
    t.n_heap <- t.n_heap + 1;
    Eheap.add_pre_cell t.heap ~cell:t.cell ~seq v
  end
  else begin
    (* key >= 0 here (it is >= due edge >= 0), so truncation is floor *)
    let tick = int_of_float (key *. inv_granularity) in
    let delta = tick - t.cur_tick in
    let level =
      if delta < wheel_size then 0
      else if delta < 1 lsl span_bits 1 then 1
      else 2
    in
    let index = (tick lsr (bucket_bits * level)) land bucket_mask in
    t.n_wheel <- t.n_wheel + 1;
    t.wheel_count <- t.wheel_count + 1;
    t.lcounts.(level) <- t.lcounts.(level) + 1;
    bucket_push t.wheels.(level).(index) ~key ~seq v
  end

(* [add_cell t v] assigns the event its global sequence rank and routes
   it; the key arrives in [cell.(0)] and the current virtual time in
   [cell.(1)].  The time only matters when the wheel is idle: the
   current tick may lag far behind virtual time after a heap-only
   stretch, and snapping it forward (legal exactly when no bucket holds
   anything) keeps near-horizon schedules in the cheap path.  The snap
   itself is guarded by the cached due edge so the common case — virtual
   time still inside the current tick — costs one float compare, no
   conversion. *)
let[@inline] add_cell t v =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if not t.use_wheel then begin
    t.n_heap <- t.n_heap + 1;
    Eheap.add_pre_cell t.heap ~cell:t.cell ~seq v
  end
  else begin
    if t.wheel_count = 0 && t.cell.(1) >= t.edges.(1) then
      set_tick t (int_of_float (t.cell.(1) *. inv_granularity));
    place_cell t ~seq v
  end

let add t ~now ~key v =
  t.cell.(0) <- key;
  t.cell.(1) <- now;
  add_cell t v

(* Drain one bucket, re-routing live entries and dropping filtered ones.
   [into_heap] pours (level-0 expiry); otherwise entries are re-placed
   a level down (cascade).  Either way each entry keeps its original
   (key, seq), threaded through the scratch cell. *)
let drain_bucket t ~level ~into_heap =
  let b =
    t.wheels.(level).((t.cur_tick lsr (bucket_bits * level)) land bucket_mask)
  in
  let n = b.blen in
  if n > 0 then begin
    b.blen <- 0;
    t.wheel_count <- t.wheel_count - n;
    t.lcounts.(level) <- t.lcounts.(level) - n;
    for i = 0 to n - 1 do
      let v = b.bvals.(i) in
      if t.filter v then begin
        t.cell.(0) <- b.bkeys.(i);
        if into_heap then
          Eheap.add_pre_cell t.heap ~cell:t.cell ~seq:b.bseqs.(i) v
        else place_cell t ~seq:b.bseqs.(i) v
      end
      else t.n_skipped <- t.n_skipped + 1
    done
  end

(* Advance the wheel by one level-0 bucket: pour the due bucket, step the
   tick, and cascade any higher-level bucket whose boundary we crossed.
   When the lower levels are provably empty we jump straight to the next
   cascade boundary instead of stepping through empty buckets: every
   level-k resident's tick lies below the next level-(k+1) boundary, so
   an empty level means nothing can be due before that boundary. *)
let advance t =
  drain_bucket t ~level:0 ~into_heap:true;
  if t.lcounts.(0) > 0 then set_tick t (t.cur_tick + 1)
  else if t.lcounts.(1) > 0 then
    set_tick t ((t.cur_tick lor bucket_mask) + 1)
  else set_tick t ((t.cur_tick lor ((1 lsl span_bits 1) - 1)) + 1);
  if t.cur_tick land bucket_mask = 0 then begin
    drain_bucket t ~level:1 ~into_heap:false;
    if t.cur_tick land ((1 lsl span_bits 1) - 1) = 0 then
      drain_bucket t ~level:2 ~into_heap:false
  end

(* Turn the wheel until the heap's minimum is the true global minimum:
   strictly below the low edge (every wheel resident is >= the low edge),
   or the wheel is empty.  The heap minimum is read through the scratch
   cell — [Eheap.min_key_or]'s boxed float return would cost two minor
   words per step. *)
(* A loop (not recursion) so the all-heap fast case — wheel empty, one
   compare — inlines into the pop path. *)
let[@inline] sync t =
  while
    t.wheel_count > 0
    && (not (Eheap.min_key_into t.heap ~cell:t.cell)
       || t.cell.(0) >= t.edges.(0))
  do
    advance t
  done

let min_key_or t ~default =
  sync t;
  (* alloc: cold — compat accessor (boxed float return); hot callers use min_key_into *)
  Eheap.min_key_or t.heap ~default

let min_key_into t ~cell =
  sync t;
  Eheap.min_key_into t.heap ~cell

(* [true] iff the queue is non-empty and its minimal key is <= [bound].
   Allocation-free replacement for [min_key_or t ~default:infinity <=
   bound] (whose float return is boxed). *)
let[@inline] min_key_leq t bound =
  sync t;
  Eheap.min_key_into t.heap ~cell:t.cell && t.cell.(0) <= bound

(* Pop the globally-minimal entry, leaving its key in [cell.(0)].
   Returns -1 when the queue is empty (after filtered entries have been
   dropped) — values stored in the wheel must therefore be >= 0, which
   engine handles always are. *)
let[@inline] pop_min_cell t =
  sync t;
  Eheap.pop_min_into t.heap ~cell:t.cell ~default:(-1)

(* Pop the globally-minimal entry iff its key is <= [bound]; -1
   otherwise.  Fuses [min_key_leq] and [pop_min_cell] into one sync and
   one heap-root access — this is the event loop's per-iteration
   operation, so halving the queue traffic is directly visible in
   events/sec. *)
let[@inline] pop_leq_cell t ~bound =
  sync t;
  Eheap.pop_leq_into t.heap ~bound ~cell:t.cell ~default:(-1)

(* [pop_leq_cell] with the bound passed through [cell.(1)] instead of a
   float argument: the batched dispatch loop pops once per event with a
   bound freshly loaded from the scratch cell, and boxing that bound at
   every call would cost two minor words per event.  [cell.(1)] is
   otherwise only read by [add_cell] at schedule time, so the caller just
   re-writes it before any pop that follows dispatched work. *)
let[@inline] pop_boundcell t =
  sync t;
  Eheap.pop_boundcell_into t.heap ~cell:t.cell ~default:(-1)

let pop_min t ~key_ref =
  let v = pop_min_cell t in
  if v < 0 then invalid_arg "Twheel.pop_min: empty queue"; (* alloc: cold — error path *)
  key_ref := t.cell.(0);
  v
