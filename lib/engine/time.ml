type t = float

let zero = 0.

let us x = x

let ms x = x *. 1_000.

let sec x = x *. 1_000_000.

let to_sec t = t /. 1_000_000.

let to_ms t = t /. 1_000.

let pp fmt t =
  if Float.abs t >= 1_000_000. then Fmt.pf fmt "%.3fs" (to_sec t)
  else if Float.abs t >= 1_000. then Fmt.pf fmt "%.3fms" (to_ms t)
  else Fmt.pf fmt "%.1fus" t
