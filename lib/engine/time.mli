(** Simulated time.

    All simulated time in the repository is kept in microseconds, stored as a
    [float].  A double has 52 bits of mantissa, so microsecond-resolution
    times stay exact well beyond the few hundred simulated seconds any
    experiment runs for. *)

type t = float
(** Absolute simulated time, in microseconds since simulation start. *)

val zero : t

val us : float -> float
(** [us x] is [x] microseconds (identity; for readable call sites). *)

val ms : float -> float
(** [ms x] is [x] milliseconds expressed in microseconds. *)

val sec : float -> float
(** [sec x] is [x] seconds expressed in microseconds. *)

val to_sec : t -> float
(** [to_sec t] converts [t] to seconds. *)

val to_ms : t -> float
(** [to_ms t] converts [t] to milliseconds. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print a time with an adaptive unit (us / ms / s). *)
