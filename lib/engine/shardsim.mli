(** Deterministic conservative-lookahead coordinator for sharded
    simulation.

    A simulation is split into {e cells} — self-contained engines plus
    whatever the caller hangs off them — that interact only through a
    single-threaded [exchange] step at epoch barriers.  A {e shard} is a
    contiguous block of cells advanced by one domain per epoch; the epoch
    schedule (global min deadline [d], safe bound [d + lookahead]) depends
    only on cell states, so results are byte-identical at any shard count,
    including 1.  See shardsim.ml for the safety argument and the
    determinism obligations on [exchange]. *)

type t

val create :
  ?shards:int -> lookahead:float -> exchange:(unit -> int) ->
  Engine.t array -> t
(** [create ~shards ~lookahead ~exchange cells] partitions [cells] into
    [shards] contiguous blocks ([shards] is clamped to [1 .. #cells]).
    [lookahead] must lower-bound the virtual-time distance from sending a
    cross-cell message to its earliest effect (minimum cross-link
    latency); [exchange] moves all pending cross-cell messages, returning
    how many it moved — it runs only at barriers, on the coordinating
    domain.
    @raise Invalid_argument on zero cells or a non-positive lookahead. *)

val run : t -> until:float -> unit
(** Advance every cell to exactly [until] in lookahead-bounded epochs,
    exchanging cross-cell messages at each barrier and draining in-flight
    messages before returning.  Teams of domains are created per run and
    released on return (the underlying domains are pooled, so repeated
    runs do not respawn them). *)

val shards : t -> int

val epochs : t -> int
(** Barrier epochs executed so far — a function of cell states only,
    identical at every shard count. *)

val messages : t -> int
(** Cross-cell messages moved by [exchange] so far. *)

val events_total : t -> int
(** Events executed under this coordinator — shard-count-invariant. *)

val events_critical : t -> int
(** Critical path of the epoch schedule: per epoch, the maximum events a
    single shard executed, summed.  [events_total / events_critical] is
    the parallel speedup the decomposition exposes given enough cores —
    deterministic and machine-independent (unlike measured wall time), so
    perf gates can enforce it on any CI runner.  Depends on the partition:
    meaningful for [shards > 1]. *)
