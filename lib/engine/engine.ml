(* Event records live in a slot table (parallel arrays) and are recycled
   through a free stack instead of being allocated per [schedule].  A handle
   is an immediate int packing (generation, slot): the generation is bumped
   when a slot is freed, so a stale handle held after its event fired (or
   was cancelled) can never touch the slot's next occupant.

   The pending queue is a two-tier scheduler: a hierarchical timer wheel
   ({!Twheel}) routes near-horizon events into O(1) buckets and far-horizon
   events into the comparison heap; all pops come from the heap in exact
   (key, FIFO-seq) order, so firing order is byte-identical to a pure heap.

   Each slot holds one work item.  Conceptually the item is the variant

     | Packet_rx of nic * pkt      (NIC delivery / tx-complete)
     | Softint of cpu              (CPU segment completion)
     | Timer of conn               (TCP retransmit / delack / persist)
     | Thunk of (unit -> unit)

   but allocating that variant per event is exactly the cost the fast path
   removes, so it is flattened into the slot table: a dispatcher id (the
   constructor, registered once per call site as a {!target}) plus a
   uniformly-represented argument (the payload).  [Thunk] remains as the
   plain closure column for cold paths and external users.

   Slot states:
     free      — on the free stack, generation already bumped;
     pending   — scheduled, in the queue;
     cancelled — cancelled but still in the queue (lazy removal; wheel
                 buckets drop cancelled entries at pour time in O(1));
     firing    — popped, its work item is executing; [reschedule] may
                 re-arm it, otherwise the slot is freed afterwards. *)

let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1

let st_free = '\000'
let st_pending = '\001'
let st_cancelled = '\002'
let st_firing = '\003'

type handle = int

(* Never valid: slot 0xffffff with generation 0xffffff...; [valid] rejects
   it before any array access. *)
let none = -1

type 'a target = int

type timer_stats = {
  scheduled : int;        (* total events accepted by [schedule*] *)
  fired : int;            (* events whose work item actually ran *)
  cancelled : int;        (* events cancelled before firing *)
  routed_wheel : int;     (* schedules that landed in a wheel bucket *)
  routed_heap : int;      (* schedules that went straight to the heap *)
  pour_skipped : int;     (* cancelled entries dropped at bucket pour *)
}

(* The clock lives in a 1-slot float array: float arrays store doubles
   flat, so reads and writes of slot 0 stay unboxed, where a [mutable
   clock : float] field in the mixed record below would allocate a fresh
   box on every store (once per fired event).  The array (rather than a
   flat record) is deliberate: {!clock_cell} hands it to observers — the
   packed flight recorder stamps events by copying [cell.(0)] straight
   into its own float column, where the boxed-closure clock ({!clock})
   would allocate two words per read. *)
type t = {
  clock : float array;
  queue : Twheel.t;
  (* the queue's scratch cell ({!Twheel.cell}), cached here: keys travel
     through it instead of float arguments/returns, which non-flambda
     OCaml boxes at every call.  Per-engine, not global — engines run
     concurrently in separate domains during parallel sweeps. *)
  cell : float array;
  root_rng : Rng.t;
  mutable live_count : int;
  mutable executed : int;
  mutable n_scheduled : int;
  mutable n_cancelled : int;
  (* registered dispatchers for the typed fast path; each entry is the
     one-per-target closure that interprets the slot's argument *)
  mutable dispatchers : (Obj.t -> unit) array;
  mutable n_dispatchers : int;
  (* slot table *)
  mutable fns : (unit -> unit) array;
  mutable disp : int array;   (* dispatcher id, or -1 for a thunk *)
  mutable args : Obj.t array; (* dispatcher argument (unit for thunks) *)
  mutable state : Bytes.t;
  mutable gens : int array;
  mutable free : int array; (* stack of free slots *)
  mutable free_top : int;
  (* scratch column for {!run_batch}: handles of an equal-key run, popped
     together and dispatched through one loop.  Per-engine (engines run in
     separate domains during parallel sweeps) and reused across batches —
     it only ever grows, so the steady state allocates nothing. *)
  mutable batch : int array;
  mutable batch_active : bool;
  (* this engine's identifier streams (packet idents, channel / conn /
     socket ids); installed as the domain's current space at creation and
     re-installed by Shardsim before each advance window *)
  ids : Idspace.t;
}

let no_fn () = ()
let no_arg = Obj.repr 0

let create ?(seed = 42) ?(pure_heap = false) () =
  let queue = Twheel.create ~wheel:(not pure_heap) () in
  let t =
    { clock = [| Time.zero |]; queue; cell = Twheel.cell queue;
      root_rng = Rng.create seed;
      live_count = 0; executed = 0; n_scheduled = 0; n_cancelled = 0;
      dispatchers = [||]; n_dispatchers = 0;
      fns = [||]; disp = [||]; args = [||]; state = Bytes.empty; gens = [||];
      free = [||]; free_top = 0;
      batch = Array.make 16 0; batch_active = false;
      ids = Idspace.create () }
  in
  Idspace.use t.ids;
  (* Wheel buckets drop events cancelled before their horizon comes up;
     the filter recycles the slot, mirroring what [step] does when it pops
     a cancelled entry from the heap. *)
  Twheel.set_filter t.queue (fun h ->
      let slot = h land slot_mask in
      if Bytes.get t.state slot = st_cancelled then begin
        t.gens.(slot) <- t.gens.(slot) + 1;
        t.fns.(slot) <- no_fn;
        t.disp.(slot) <- -1;
        t.args.(slot) <- no_arg;
        Bytes.set t.state slot st_free;
        t.free.(t.free_top) <- slot;
        t.free_top <- t.free_top + 1;
        false
      end
      else true);
  t

let now t = t.clock.(0)
let clock t () = t.clock.(0)
let clock_cell t = t.clock

let rng t = t.root_rng
let ids t = t.ids

(* Earliest pending key, [infinity] when idle — the per-cell deadline
   Shardsim folds into its global epoch bound. *)
let next_key t =
  (* alloc: cold — compat accessor; per-epoch folds use next_key_into *)
  Twheel.min_key_or t.queue ~default:Float.infinity

let next_key_into t ~cell = Twheel.min_key_into t.queue ~cell

let target (type a) t (f : a -> unit) : a target =
  let id = t.n_dispatchers in
  let cap = Array.length t.dispatchers in
  if id = cap then begin
    let cap' = max 8 (2 * cap) in
    let d = Array.make cap' (fun (_ : Obj.t) -> ()) in (* alloc: cold — one-time registration *)
    Array.blit t.dispatchers 0 d 0 cap;
    t.dispatchers <- d
  end;
  (* Arguments are stored via [Obj.repr] (the identity on the value's
     uniform representation), so applying [f] magicked to [Obj.t -> unit]
     is exactly [f] on the original value. *)
  t.dispatchers.(id) <- (Obj.magic (f : a -> unit) : Obj.t -> unit);
  t.n_dispatchers <- id + 1;
  id

let grow t =
  let cap = Array.length t.gens in
  let cap' = max 16 (2 * cap) in
  if cap' > slot_mask then failwith "Engine: too many pending events"; (* alloc: cold — error path *)
  let fns = Array.make cap' no_fn in (* alloc: cold — amortized growth *)
  let disp = Array.make cap' (-1) in (* alloc: cold — amortized growth *)
  let args = Array.make cap' no_arg in (* alloc: cold — amortized growth *)
  let state = Bytes.make cap' st_free in (* alloc: cold — amortized growth *)
  let gens = Array.make cap' 0 in (* alloc: cold — amortized growth *)
  let free = Array.make cap' 0 in (* alloc: cold — amortized growth *)
  Array.blit t.fns 0 fns 0 cap;
  Array.blit t.disp 0 disp 0 cap;
  Array.blit t.args 0 args 0 cap;
  Bytes.blit t.state 0 state 0 cap;
  Array.blit t.gens 0 gens 0 cap;
  t.fns <- fns;
  t.disp <- disp;
  t.args <- args;
  t.state <- state;
  t.gens <- gens;
  t.free <- free;
  (* Newly created slots go on the free stack. *)
  t.free_top <- 0;
  for slot = cap' - 1 downto cap do
    t.free.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1
  done

let[@inline] alloc_slot t =
  if t.free_top = 0 then grow t;
  t.free_top <- t.free_top - 1;
  let slot = Array.unsafe_get t.free t.free_top in
  Bytes.unsafe_set t.state slot st_pending;
  slot

(* Clearing [args] prevents the freed slot from pinning the last event's
   payload (packets can be large); [fns] is left in place and overwritten
   by the slot's next thunk occupant — a steady-state loop re-arming the
   same static thunk through the same slot then skips the [caml_modify]
   write barrier entirely (see [schedule_cell]'s physical-equality check).
   The pinned closure is bounded by the slot table's size and is typically
   a static function.  [disp]/[args] are only dirty for typed events, so
   only that side is cleared. *)
let[@inline] free_slot t slot =
  Array.unsafe_set t.gens slot (Array.unsafe_get t.gens slot + 1);
  if Array.unsafe_get t.disp slot >= 0 then begin
    Array.unsafe_set t.disp slot (-1);
    Array.unsafe_set t.args slot no_arg
  end;
  Bytes.unsafe_set t.state slot st_free;
  Array.unsafe_set t.free t.free_top slot;
  t.free_top <- t.free_top + 1

(* The event's firing time arrives in [cell.(0)] (written by the public
   wrappers below); an [~at : float] parameter would be boxed at every
   call.  The error paths may allocate freely. *)
let[@inline never] schedule_in_past name t =
  invalid_arg (* alloc: cold — error path *)
    (Printf.sprintf "Engine.%s: at=%.3f is before now=%.3f" name
       t.cell.(0) t.clock.(0))

let[@inline] enqueue_cell t slot =
  let h = (t.gens.(slot) lsl slot_bits) lor slot in
  t.cell.(1) <- t.clock.(0);
  Twheel.add_cell t.queue h;
  t.live_count <- t.live_count + 1;
  t.n_scheduled <- t.n_scheduled + 1;
  h

let[@inline] schedule_cell t fn =
  if t.cell.(0) < t.clock.(0) then schedule_in_past "schedule" t;
  let slot = alloc_slot t in
  (* the recycled slot often still holds this exact (static) thunk *)
  if Array.unsafe_get t.fns slot != fn then t.fns.(slot) <- fn;
  enqueue_cell t slot

let schedule t ~at fn =
  t.cell.(0) <- at;
  schedule_cell t fn

let schedule_after t ~delay fn =
  t.cell.(0) <- t.clock.(0) +. delay;
  schedule_cell t fn

let[@inline] schedule_to_cell t tid v =
  if t.cell.(0) < t.clock.(0) then schedule_in_past "schedule_to" t;
  let slot = alloc_slot t in
  t.disp.(slot) <- tid;
  t.args.(slot) <- Obj.repr v;
  enqueue_cell t slot

let schedule_to t ~at (tid : _ target) v =
  t.cell.(0) <- at;
  schedule_to_cell t tid v

let schedule_to_after t ~delay tgt v =
  t.cell.(0) <- t.clock.(0) +. delay;
  schedule_to_cell t tgt v

(* Unboxed deadline path: the caller stores the deadline straight into
   [t.cell] (a float-array write never boxes) and schedules from it. *)
let deadline_cell t = t.cell

let schedule_to_staged t (tid : _ target) v = schedule_to_cell t tid v

(* A handle is valid while its generation matches the slot's: from
   [schedule] until the slot is freed (event fired without re-arm, or its
   cancelled entry left the queue). *)
let valid t h =
  let slot = h land slot_mask in
  slot < Array.length t.gens && t.gens.(slot) = h lsr slot_bits

let cancel t h =
  if valid t h then begin
    let slot = h land slot_mask in
    if Bytes.get t.state slot = st_pending then begin
      Bytes.set t.state slot st_cancelled;
      t.live_count <- t.live_count - 1;
      t.n_cancelled <- t.n_cancelled + 1
    end
  end

let is_pending t h =
  valid t h && Bytes.get t.state (h land slot_mask) = st_pending

(* As with [schedule_cell], the new firing time arrives in [cell.(0)]. *)
let reschedule_cell t h =
  if t.cell.(0) < t.clock.(0) then schedule_in_past "reschedule" t;
  let slot = h land slot_mask in
  if not (valid t h) || Bytes.get t.state slot <> st_firing then
    invalid_arg "Engine.reschedule: handle is not the currently-firing event"; (* alloc: cold — error path *)
  Bytes.set t.state slot st_pending;
  t.cell.(1) <- t.clock.(0);
  Twheel.add_cell t.queue h;
  t.live_count <- t.live_count + 1;
  t.n_scheduled <- t.n_scheduled + 1

let reschedule t h ~at =
  t.cell.(0) <- at;
  reschedule_cell t h

let reschedule_after t h ~delay =
  t.cell.(0) <- t.clock.(0) +. delay;
  reschedule_cell t h

let pending_events t = t.live_count

let events_executed t = t.executed

let timer_stats t =
  { scheduled = t.n_scheduled; fired = t.executed;
    cancelled = t.n_cancelled;
    routed_wheel = Twheel.scheduled_wheel t.queue;
    routed_heap = Twheel.scheduled_heap t.queue;
    pour_skipped = Twheel.skipped_at_pour t.queue }

(* Fire one popped handle whose key sits in [cell.(0)]: the shared body
   of [step] and [run_while].  Unsafe accesses: a popped handle's slot was
   written by [alloc_slot], so it is always below the table's capacity. *)
let[@inline] fire_popped t h =
  let slot = h land slot_mask in
  if Bytes.unsafe_get t.state slot = st_pending then begin
    Bytes.unsafe_set t.state slot st_firing;
    t.live_count <- t.live_count - 1;
    (* Read the key out of the scratch cell before dispatching — the
       work item may schedule and clobber it. *)
    t.clock.(0) <- t.cell.(0);
    t.executed <- t.executed + 1;
    let d = Array.unsafe_get t.disp slot in
    if d >= 0 then
      (Array.unsafe_get t.dispatchers d) (Array.unsafe_get t.args slot)
    else (Array.unsafe_get t.fns slot) ();
    (* Unless the work item re-armed itself, recycle the record. *)
    if Bytes.unsafe_get t.state slot = st_firing then free_slot t slot
  end
  else free_slot t slot (* cancelled: drop the queue entry *)

let[@inline] step t =
  (* [pop_min_cell] turns the wheel first, so cancelled bucket entries
     are filter-dropped before emptiness is decided: -1 here means truly
     nothing left, even if [is_empty] said otherwise a moment ago. *)
  let h = Twheel.pop_min_cell t.queue in
  if h < 0 then false
  else begin
    fire_popped t h;
    true
  end

let run_while t pred ~until =
  (* [pop_leq_cell] fuses the bound check and the pop into one wheel sync
     and one heap-root access per iteration.  A plain while over a
     deref-only ref (no closure, the ref compiles to a mutable variable)
     rather than a local [let rec loop], which would capture
     [pred]/[until] in a heap-allocated closure per call. *)
  let running = ref true in
  while !running && pred () do
    let h = Twheel.pop_leq_cell t.queue ~bound:until in
    if h >= 0 then fire_popped t h
    else begin
      (* Queue exhausted up to [until]: the virtual interval elapsed. *)
      if t.clock.(0) < until then t.clock.(0) <- until;
      running := false
    end
  done

(* Dispatch one batched handle: the body of [step] minus the pop and the
   clock write (the whole batch shares one key, written once). *)
let[@inline] dispatch_handle t h =
  let slot = h land slot_mask in
  if Bytes.unsafe_get t.state slot = st_pending then begin
    Bytes.unsafe_set t.state slot st_firing;
    t.live_count <- t.live_count - 1;
    t.executed <- t.executed + 1;
    let d = Array.unsafe_get t.disp slot in
    if d >= 0 then
      (Array.unsafe_get t.dispatchers d) (Array.unsafe_get t.args slot)
    else (Array.unsafe_get t.fns slot) ();
    if Bytes.unsafe_get t.state slot = st_firing then free_slot t slot
  end
  else free_slot t slot (* cancelled under the popped entry: drop it *)

(* Batched dispatch.  Pops the maximal run of *equal-key* ready events
   into the scratch column in one go, then dispatches them through a
   single loop — the wheel/heap bookkeeping (sync, root reads) is paid
   once per key instead of once per event.

   An equal-key run is the largest slice that can be pre-popped without
   risking reorder: the next queue minimum after popping key [k] is
   >= k, so [min_key_leq queue k] means *equal* — and anything a batched
   handler schedules at [k] receives a larger FIFO seq, placing it after
   the whole batch exactly as the one-at-a-time loop would.  A handler
   cancelling a not-yet-dispatched batch member is also preserved: the
   slot is marked cancelled and [dispatch_handle] frees it without firing,
   just as [step] does when it pops a cancelled entry.  Firing order is
   therefore byte-identical to [run]'s un-batched semantics.

   [batch_active] guards re-entrancy: an event that itself calls
   [run]/[run_batch] (nested simulation) falls back to the un-batched
   loop rather than clobbering the scratch column mid-iteration. *)
(* [snap] distinguishes {!run_batch} (clock advances to [until] when the
   queue runs dry first) from {!drain} ([until] is [infinity]; the clock
   stays at the last fired event). *)
let run_loop t ~until ~snap =
  if t.batch_active then run_while t (fun () -> true) ~until
  else begin
    t.batch_active <- true;
    (try
       let continue = ref true in
       while !continue do
         (* Bounds travel through [cell.(1)] ([Twheel.pop_boundcell]): a
            float argument to the pop would be re-boxed at every call —
            two minor words per event on the hottest loop in the tree.
            [cell.(1)] must be re-written here because dispatched work
            may have scheduled (which stores virtual time into it). *)
         t.cell.(1) <- until;
         let h0 = Twheel.pop_boundcell t.queue in
         if h0 < 0 then continue := false
         else begin
           let k = t.cell.(0) in
           t.batch.(0) <- h0;
           let n = ref 1 in
           let more = ref true in
           (* popping with the batch key as the bound: the queue minimum
              after popping [k] is >= k, so a hit means *equal* key.  No
              handler runs during collection, so one write suffices. *)
           t.cell.(1) <- k;
           while !more do
             let h = Twheel.pop_boundcell t.queue in
             if h < 0 then more := false
             else begin
               if !n = Array.length t.batch then begin
                 let b = Array.make (2 * !n) 0 in (* alloc: cold — amortized growth *)
                 Array.blit t.batch 0 b 0 !n;
                 t.batch <- b
               end;
               t.batch.(!n) <- h;
               incr n
             end
           done;
           t.clock.(0) <- k;
           let n = !n in
           for i = 0 to n - 1 do
             dispatch_handle t t.batch.(i)
           done
         end
       done
     with e ->
       t.batch_active <- false;
       raise e);
    t.batch_active <- false;
    if snap && t.clock.(0) < until then t.clock.(0) <- until
  end

let run_batch t ~until = run_loop t ~until ~snap:true
let run t ~until = run_loop t ~until ~snap:true

(* Takes no float argument ([infinity] is a static constant), so a hot
   caller pays no boxing for the bound — the whole
   schedule-batch-then-drain cycle stays at zero words per event. *)
let drain t = run_loop t ~until:infinity ~snap:false
