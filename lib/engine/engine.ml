(* Event records live in a slot table (parallel arrays) and are recycled
   through a free stack instead of being allocated per [schedule].  A handle
   is an immediate int packing (generation, slot): the generation is bumped
   when a slot is freed, so a stale handle held after its event fired (or
   was cancelled) can never touch the slot's next occupant.

   Slot states:
     free      — on the free stack, generation already bumped;
     pending   — scheduled, in the queue;
     cancelled — cancelled but still in the queue (lazy removal);
     firing    — popped, its thunk is executing; [reschedule] may re-arm it,
                 otherwise the slot is freed when the thunk returns. *)

let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1

let st_free = '\000'
let st_pending = '\001'
let st_cancelled = '\002'
let st_firing = '\003'

type handle = int

type t = {
  mutable clock : Time.t;
  queue : int Eheap.t;
  root_rng : Rng.t;
  mutable live_count : int;
  mutable executed : int;
  (* slot table *)
  mutable fns : (unit -> unit) array;
  mutable state : Bytes.t;
  mutable gens : int array;
  mutable free : int array; (* stack of free slots *)
  mutable free_top : int;
}

let no_fn () = ()

let create ?(seed = 42) () =
  { clock = Time.zero; queue = Eheap.create (); root_rng = Rng.create seed;
    live_count = 0; executed = 0;
    fns = [||]; state = Bytes.empty; gens = [||]; free = [||]; free_top = 0 }

let now t = t.clock
let clock t () = t.clock

let rng t = t.root_rng

let grow t =
  let cap = Array.length t.gens in
  let cap' = max 16 (2 * cap) in
  if cap' > slot_mask then failwith "Engine: too many pending events";
  let fns = Array.make cap' no_fn in
  let state = Bytes.make cap' st_free in
  let gens = Array.make cap' 0 in
  let free = Array.make cap' 0 in
  Array.blit t.fns 0 fns 0 cap;
  Bytes.blit t.state 0 state 0 cap;
  Array.blit t.gens 0 gens 0 cap;
  t.fns <- fns;
  t.state <- state;
  t.gens <- gens;
  t.free <- free;
  (* Newly created slots go on the free stack. *)
  t.free_top <- 0;
  for slot = cap' - 1 downto cap do
    t.free.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1
  done

let alloc_slot t fn =
  if t.free_top = 0 then grow t;
  t.free_top <- t.free_top - 1;
  let slot = t.free.(t.free_top) in
  t.fns.(slot) <- fn;
  Bytes.set t.state slot st_pending;
  slot

let free_slot t slot =
  t.gens.(slot) <- t.gens.(slot) + 1;
  t.fns.(slot) <- no_fn;
  Bytes.set t.state slot st_free;
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1

let schedule t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%.3f is before now=%.3f" at t.clock);
  let slot = alloc_slot t fn in
  let h = (t.gens.(slot) lsl slot_bits) lor slot in
  Eheap.add t.queue ~key:at h;
  t.live_count <- t.live_count + 1;
  h

let schedule_after t ~delay fn = schedule t ~at:(t.clock +. delay) fn

(* A handle is valid while its generation matches the slot's: from
   [schedule] until the slot is freed (event fired without re-arm, or its
   cancelled entry left the queue). *)
let valid t h =
  let slot = h land slot_mask in
  slot < Array.length t.gens && t.gens.(slot) = h lsr slot_bits

let cancel t h =
  if valid t h then begin
    let slot = h land slot_mask in
    if Bytes.get t.state slot = st_pending then begin
      Bytes.set t.state slot st_cancelled;
      t.live_count <- t.live_count - 1
    end
  end

let is_pending t h =
  valid t h && Bytes.get t.state (h land slot_mask) = st_pending

let reschedule t h ~at =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.reschedule: at=%.3f is before now=%.3f" at
         t.clock);
  let slot = h land slot_mask in
  if not (valid t h) || Bytes.get t.state slot <> st_firing then
    invalid_arg "Engine.reschedule: handle is not the currently-firing event";
  Bytes.set t.state slot st_pending;
  Eheap.add t.queue ~key:at h;
  t.live_count <- t.live_count + 1

let reschedule_after t h ~delay = reschedule t h ~at:(t.clock +. delay)

let pending_events t = t.live_count

let events_executed t = t.executed

let step t =
  if Eheap.is_empty t.queue then false
  else begin
    let at = Eheap.min_key_or t.queue ~default:t.clock in
    let h = Eheap.pop_min t.queue in
    let slot = h land slot_mask in
    if Bytes.get t.state slot = st_pending then begin
      Bytes.set t.state slot st_firing;
      t.live_count <- t.live_count - 1;
      t.clock <- at;
      t.executed <- t.executed + 1;
      t.fns.(slot) ();
      (* Unless the thunk re-armed itself, recycle the record. *)
      if Bytes.get t.state slot = st_firing then free_slot t slot
    end
    else free_slot t slot (* cancelled: drop the queue entry *);
    true
  end

let run_while t pred ~until =
  let rec loop () =
    if pred () then
      if Eheap.min_key_or t.queue ~default:infinity <= until then begin
        ignore (step t);
        loop ()
      end
      else if
        (* Queue exhausted up to [until]: the virtual interval elapsed. *)
        t.clock < until
      then t.clock <- until
  in
  loop ()

let run t ~until = run_while t (fun () -> true) ~until
