(* Event records live in a slot table (parallel arrays) and are recycled
   through a free stack instead of being allocated per [schedule].  A handle
   is an immediate int packing (generation, slot): the generation is bumped
   when a slot is freed, so a stale handle held after its event fired (or
   was cancelled) can never touch the slot's next occupant.

   The pending queue is a two-tier scheduler: a hierarchical timer wheel
   ({!Twheel}) routes near-horizon events into O(1) buckets and far-horizon
   events into the comparison heap; all pops come from the heap in exact
   (key, FIFO-seq) order, so firing order is byte-identical to a pure heap.

   Each slot holds one work item.  Conceptually the item is the variant

     | Packet_rx of nic * pkt      (NIC delivery / tx-complete)
     | Softint of cpu              (CPU segment completion)
     | Timer of conn               (TCP retransmit / delack / persist)
     | Thunk of (unit -> unit)

   but allocating that variant per event is exactly the cost the fast path
   removes, so it is flattened into the slot table: a dispatcher id (the
   constructor, registered once per call site as a {!target}) plus a
   uniformly-represented argument (the payload).  [Thunk] remains as the
   plain closure column for cold paths and external users.

   Slot states:
     free      — on the free stack, generation already bumped;
     pending   — scheduled, in the queue;
     cancelled — cancelled but still in the queue (lazy removal; wheel
                 buckets drop cancelled entries at pour time in O(1));
     firing    — popped, its work item is executing; [reschedule] may
                 re-arm it, otherwise the slot is freed afterwards. *)

let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1

let st_free = '\000'
let st_pending = '\001'
let st_cancelled = '\002'
let st_firing = '\003'

type handle = int

(* Never valid: slot 0xffffff with generation 0xffffff...; [valid] rejects
   it before any array access. *)
let none = -1

type 'a target = int

type timer_stats = {
  scheduled : int;        (* total events accepted by [schedule*] *)
  fired : int;            (* events whose work item actually ran *)
  cancelled : int;        (* events cancelled before firing *)
  routed_wheel : int;     (* schedules that landed in a wheel bucket *)
  routed_heap : int;      (* schedules that went straight to the heap *)
  pour_skipped : int;     (* cancelled entries dropped at bucket pour *)
}

(* The clock lives in a single-field float record: all-float records are
   flat, so reads and writes of [fv] stay unboxed, where a [mutable clock
   : float] field in the mixed record below would allocate a fresh box on
   every store (once per fired event). *)
type fclock = { mutable fv : float }

type t = {
  clock : fclock;
  queue : Twheel.t;
  (* the queue's scratch cell ({!Twheel.cell}), cached here: keys travel
     through it instead of float arguments/returns, which non-flambda
     OCaml boxes at every call.  Per-engine, not global — engines run
     concurrently in separate domains during parallel sweeps. *)
  cell : float array;
  root_rng : Rng.t;
  mutable live_count : int;
  mutable executed : int;
  mutable n_scheduled : int;
  mutable n_cancelled : int;
  (* registered dispatchers for the typed fast path; each entry is the
     one-per-target closure that interprets the slot's argument *)
  mutable dispatchers : (Obj.t -> unit) array;
  mutable n_dispatchers : int;
  (* slot table *)
  mutable fns : (unit -> unit) array;
  mutable disp : int array;   (* dispatcher id, or -1 for a thunk *)
  mutable args : Obj.t array; (* dispatcher argument (unit for thunks) *)
  mutable state : Bytes.t;
  mutable gens : int array;
  mutable free : int array; (* stack of free slots *)
  mutable free_top : int;
}

let no_fn () = ()
let no_arg = Obj.repr 0

let create ?(seed = 42) ?(pure_heap = false) () =
  let queue = Twheel.create ~wheel:(not pure_heap) () in
  let t =
    { clock = { fv = Time.zero }; queue; cell = Twheel.cell queue;
      root_rng = Rng.create seed;
      live_count = 0; executed = 0; n_scheduled = 0; n_cancelled = 0;
      dispatchers = [||]; n_dispatchers = 0;
      fns = [||]; disp = [||]; args = [||]; state = Bytes.empty; gens = [||];
      free = [||]; free_top = 0 }
  in
  (* Wheel buckets drop events cancelled before their horizon comes up;
     the filter recycles the slot, mirroring what [step] does when it pops
     a cancelled entry from the heap. *)
  Twheel.set_filter t.queue (fun h ->
      let slot = h land slot_mask in
      if Bytes.get t.state slot = st_cancelled then begin
        t.gens.(slot) <- t.gens.(slot) + 1;
        t.fns.(slot) <- no_fn;
        t.disp.(slot) <- -1;
        t.args.(slot) <- no_arg;
        Bytes.set t.state slot st_free;
        t.free.(t.free_top) <- slot;
        t.free_top <- t.free_top + 1;
        false
      end
      else true);
  t

let now t = t.clock.fv
let clock t () = t.clock.fv

let rng t = t.root_rng

let target (type a) t (f : a -> unit) : a target =
  let id = t.n_dispatchers in
  let cap = Array.length t.dispatchers in
  if id = cap then begin
    let cap' = max 8 (2 * cap) in
    let d = Array.make cap' (fun (_ : Obj.t) -> ()) in
    Array.blit t.dispatchers 0 d 0 cap;
    t.dispatchers <- d
  end;
  (* Arguments are stored via [Obj.repr] (the identity on the value's
     uniform representation), so applying [f] magicked to [Obj.t -> unit]
     is exactly [f] on the original value. *)
  t.dispatchers.(id) <- (Obj.magic (f : a -> unit) : Obj.t -> unit);
  t.n_dispatchers <- id + 1;
  id

let grow t =
  let cap = Array.length t.gens in
  let cap' = max 16 (2 * cap) in
  if cap' > slot_mask then failwith "Engine: too many pending events";
  let fns = Array.make cap' no_fn in
  let disp = Array.make cap' (-1) in
  let args = Array.make cap' no_arg in
  let state = Bytes.make cap' st_free in
  let gens = Array.make cap' 0 in
  let free = Array.make cap' 0 in
  Array.blit t.fns 0 fns 0 cap;
  Array.blit t.disp 0 disp 0 cap;
  Array.blit t.args 0 args 0 cap;
  Bytes.blit t.state 0 state 0 cap;
  Array.blit t.gens 0 gens 0 cap;
  t.fns <- fns;
  t.disp <- disp;
  t.args <- args;
  t.state <- state;
  t.gens <- gens;
  t.free <- free;
  (* Newly created slots go on the free stack. *)
  t.free_top <- 0;
  for slot = cap' - 1 downto cap do
    t.free.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1
  done

let alloc_slot t =
  if t.free_top = 0 then grow t;
  t.free_top <- t.free_top - 1;
  let slot = t.free.(t.free_top) in
  Bytes.set t.state slot st_pending;
  slot

let free_slot t slot =
  t.gens.(slot) <- t.gens.(slot) + 1;
  t.fns.(slot) <- no_fn;
  t.disp.(slot) <- -1;
  t.args.(slot) <- no_arg;
  Bytes.set t.state slot st_free;
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1

(* The event's firing time arrives in [cell.(0)] (written by the public
   wrappers below); an [~at : float] parameter would be boxed at every
   call.  The error paths may allocate freely. *)
let enqueue_cell t slot =
  let h = (t.gens.(slot) lsl slot_bits) lor slot in
  t.cell.(1) <- t.clock.fv;
  Twheel.add_cell t.queue h;
  t.live_count <- t.live_count + 1;
  t.n_scheduled <- t.n_scheduled + 1;
  h

let schedule_cell t fn =
  if t.cell.(0) < t.clock.fv then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%.3f is before now=%.3f"
         t.cell.(0) t.clock.fv);
  let slot = alloc_slot t in
  t.fns.(slot) <- fn;
  enqueue_cell t slot

let schedule t ~at fn =
  t.cell.(0) <- at;
  schedule_cell t fn

let schedule_after t ~delay fn =
  t.cell.(0) <- t.clock.fv +. delay;
  schedule_cell t fn

let schedule_to_cell t tid v =
  if t.cell.(0) < t.clock.fv then
    invalid_arg
      (Printf.sprintf "Engine.schedule_to: at=%.3f is before now=%.3f"
         t.cell.(0) t.clock.fv);
  let slot = alloc_slot t in
  t.disp.(slot) <- tid;
  t.args.(slot) <- Obj.repr v;
  enqueue_cell t slot

let schedule_to t ~at (tid : _ target) v =
  t.cell.(0) <- at;
  schedule_to_cell t tid v

let schedule_to_after t ~delay tgt v =
  t.cell.(0) <- t.clock.fv +. delay;
  schedule_to_cell t tgt v

(* A handle is valid while its generation matches the slot's: from
   [schedule] until the slot is freed (event fired without re-arm, or its
   cancelled entry left the queue). *)
let valid t h =
  let slot = h land slot_mask in
  slot < Array.length t.gens && t.gens.(slot) = h lsr slot_bits

let cancel t h =
  if valid t h then begin
    let slot = h land slot_mask in
    if Bytes.get t.state slot = st_pending then begin
      Bytes.set t.state slot st_cancelled;
      t.live_count <- t.live_count - 1;
      t.n_cancelled <- t.n_cancelled + 1
    end
  end

let is_pending t h =
  valid t h && Bytes.get t.state (h land slot_mask) = st_pending

(* As with [schedule_cell], the new firing time arrives in [cell.(0)]. *)
let reschedule_cell t h =
  if t.cell.(0) < t.clock.fv then
    invalid_arg
      (Printf.sprintf "Engine.reschedule: at=%.3f is before now=%.3f"
         t.cell.(0) t.clock.fv);
  let slot = h land slot_mask in
  if not (valid t h) || Bytes.get t.state slot <> st_firing then
    invalid_arg "Engine.reschedule: handle is not the currently-firing event";
  Bytes.set t.state slot st_pending;
  t.cell.(1) <- t.clock.fv;
  Twheel.add_cell t.queue h;
  t.live_count <- t.live_count + 1;
  t.n_scheduled <- t.n_scheduled + 1

let reschedule t h ~at =
  t.cell.(0) <- at;
  reschedule_cell t h

let reschedule_after t h ~delay =
  t.cell.(0) <- t.clock.fv +. delay;
  reschedule_cell t h

let pending_events t = t.live_count

let events_executed t = t.executed

let timer_stats t =
  { scheduled = t.n_scheduled; fired = t.executed;
    cancelled = t.n_cancelled;
    routed_wheel = Twheel.scheduled_wheel t.queue;
    routed_heap = Twheel.scheduled_heap t.queue;
    pour_skipped = Twheel.skipped_at_pour t.queue }

let step t =
  (* [pop_min_cell] turns the wheel first, so cancelled bucket entries
     are filter-dropped before emptiness is decided: -1 here means truly
     nothing left, even if [is_empty] said otherwise a moment ago. *)
  let h = Twheel.pop_min_cell t.queue in
  if h < 0 then false
  else begin
    let slot = h land slot_mask in
    if Bytes.get t.state slot = st_pending then begin
      Bytes.set t.state slot st_firing;
      t.live_count <- t.live_count - 1;
      (* Read the key out of the scratch cell before dispatching — the
         work item may schedule and clobber it. *)
      t.clock.fv <- t.cell.(0);
      t.executed <- t.executed + 1;
      let d = t.disp.(slot) in
      if d >= 0 then t.dispatchers.(d) t.args.(slot) else t.fns.(slot) ();
      (* Unless the work item re-armed itself, recycle the record. *)
      if Bytes.get t.state slot = st_firing then free_slot t slot
    end
    else free_slot t slot (* cancelled: drop the queue entry *);
    true
  end

let run_while t pred ~until =
  let rec loop () =
    if pred () then
      if Twheel.min_key_leq t.queue until then begin
        ignore (step t);
        loop ()
      end
      else if
        (* Queue exhausted up to [until]: the virtual interval elapsed. *)
        t.clock.fv < until
      then t.clock.fv <- until
  in
  loop ()

let run t ~until = run_while t (fun () -> true) ~until
