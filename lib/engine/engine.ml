type event = { mutable live : bool; fn : unit -> unit }

type handle = event

type t = {
  mutable clock : Time.t;
  queue : event Eheap.t;
  root_rng : Rng.t;
  mutable live_count : int;
  mutable executed : int;
}

let create ?(seed = 42) () =
  { clock = Time.zero; queue = Eheap.create (); root_rng = Rng.create seed;
    live_count = 0; executed = 0 }

let now t = t.clock

let rng t = t.root_rng

let schedule t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%.3f is before now=%.3f" at t.clock);
  let ev = { live = true; fn } in
  Eheap.add t.queue ~key:at ev;
  t.live_count <- t.live_count + 1;
  ev

let schedule_after t ~delay fn = schedule t ~at:(t.clock +. delay) fn

let cancel t ev =
  if ev.live then begin
    ev.live <- false;
    t.live_count <- t.live_count - 1
  end

let is_pending _t ev = ev.live

let pending_events t = t.live_count

let events_executed t = t.executed

let step t =
  match Eheap.pop t.queue with
  | None -> false
  | Some (at, ev) ->
      if ev.live then begin
        ev.live <- false;
        t.live_count <- t.live_count - 1;
        t.clock <- at;
        t.executed <- t.executed + 1;
        ev.fn ()
      end;
      true

let run_while t pred ~until =
  let rec loop () =
    if pred () then
      match Eheap.min_key t.queue with
      | Some key when key <= until ->
          ignore (step t);
          loop ()
      | Some _ | None -> ()
  in
  loop ();
  if t.clock < until then t.clock <- until

let run t ~until = run_while t (fun () -> true) ~until
