(** Discrete-event simulation engine.

    An engine owns the virtual clock and the pending-event queue.  Events are
    thunks executed at their scheduled virtual time; an event may schedule or
    cancel further events.  Time never goes backwards: scheduling in the past
    is an error. *)

type t

type handle
(** Identifies a scheduled event, for cancellation and re-arming.
    {!none} is a handle that was never issued — every operation on it is a
    safe no-op — so callers can store handles unboxed (no option).
    Cancellation is lazy: the slot stays in the queue but the thunk will
    not run.  Handles are immediate values (no allocation per event); a
    handle becomes stale once its event has fired without being re-armed,
    and all operations on a stale handle are safe no-ops or errors — they
    can never affect a later event that recycled the same record. *)

type 'a target
(** A registered event dispatcher for the closure-free fast path: one
    constructor of the engine's work-item variant (packet delivery, softint
    completion, TCP timer, ...), registered once per call site.  Scheduling
    to a target stores only (target id, argument) in the event's slot —
    zero minor words per event — where scheduling a thunk allocates a fresh
    closure per event. *)

val none : handle
(** The never-valid handle: [cancel]/[is_pending] on it are safe no-ops. *)

val create : ?seed:int -> ?pure_heap:bool -> unit -> t
(** Fresh engine with clock at zero and an empty queue.  [seed] initialises
    the engine's root RNG (default 42).  [~pure_heap:true] bypasses the
    timer wheel and runs every event through the comparison heap — same
    observable behaviour, used by the wheel-vs-heap equivalence tests. *)

val now : t -> Time.t
(** Current virtual time. *)

val clock : t -> unit -> Time.t
(** [clock t] is a closure reading the virtual clock — the [now] callback
    handed to per-kernel tracers and metrics registries, which must not
    depend on this module. *)

val clock_cell : t -> float array
(** The engine's clock as a 1-slot float array; [(clock_cell t).(0)] is
    [now t].  Reading the slot is an unboxed float-array load, where the
    {!clock} closure boxes its return per call — zero-allocation observers
    (the packed flight recorder) stamp events straight from it.  Callers
    must treat the array as read-only; writing it corrupts the clock. *)

val rng : t -> Rng.t
(** The engine's root RNG.  Long-lived components should [Rng.split] their
    own stream off it at setup time. *)

val ids : t -> Idspace.t
(** The engine's identifier streams (packet idents, channel / connection /
    socket ids).  [create] installs them as the creating domain's current
    {!Idspace}; {!Shardsim} re-installs each cell's space before advancing
    it, so ids stay a function of the cell's own allocation order at any
    shard count. *)

val next_key : t -> float
(** Virtual time of the earliest pending event, or [infinity] when the
    queue is empty — the per-cell deadline a sharded coordinator folds
    into its global epoch bound.  The float return is boxed; per-epoch
    folds use {!next_key_into}. *)

val next_key_into : t -> cell:float array -> bool
(** [next_key_into t ~cell] writes the earliest pending key into
    [cell.(0)] and returns [true], or returns [false] (leaving [cell]
    alone) when the queue is empty.  Allocation-free variant of
    {!next_key}. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule t ~at f] runs [f] at virtual time [at].
    @raise Invalid_argument if [at] is before [now t]. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] is [schedule t ~at:(now t +. delay) f]. *)

val target : t -> ('a -> unit) -> 'a target
(** [target t f] registers [f] as a dispatcher and returns its id.  Call
    once at component setup, not per event: the registry only grows.  [f]
    receives the argument passed to {!schedule_to}. *)

val schedule_to : t -> at:Time.t -> 'a target -> 'a -> handle
(** [schedule_to t ~at tgt v] runs the target's dispatcher on [v] at
    virtual time [at].  Behaviourally identical to
    [schedule t ~at (fun () -> f v)] but allocates no closure — the hot
    per-packet/per-segment path.
    @raise Invalid_argument if [at] is before [now t]. *)

val schedule_to_after : t -> delay:float -> 'a target -> 'a -> handle
(** [schedule_to_after t ~delay tgt v] is
    [schedule_to t ~at:(now t +. delay) tgt v]. *)

val deadline_cell : t -> float array
(** 1-slot staging cell for {!schedule_to_staged}.  A computed float
    passed as a [~delay]/[~at] argument is boxed at the call boundary (2
    minor words per event); a float-array store is not.  Zero-allocation
    senders write the absolute deadline into slot 0 and then call
    {!schedule_to_staged}.  The slot is consumed by the next schedule
    call of any kind — write it immediately before scheduling. *)

val schedule_to_staged : t -> 'a target -> 'a -> handle
(** [schedule_to_staged t tgt v] is
    [schedule_to t ~at:(deadline_cell t).(0) tgt v] without the float
    boxing.
    @raise Invalid_argument if the staged deadline is before [now t]. *)

val cancel : t -> handle -> unit
(** Cancel a pending event.  Cancelling an already-run or already-cancelled
    event is a no-op. *)

val reschedule : t -> handle -> at:Time.t -> unit
(** Re-arm the currently-firing event at a new time, from inside its own
    thunk.  The event record and thunk are reused — a periodic source pays
    no allocation per firing.  Only valid while the handle's thunk is
    executing (before it has been re-armed).
    @raise Invalid_argument if the handle is not the currently-firing
    event, or if [at] is in the past. *)

val reschedule_after : t -> handle -> delay:float -> unit
(** [reschedule_after t h ~delay] is [reschedule t h ~at:(now t +. delay)]. *)

val is_pending : t -> handle -> bool

val pending_events : t -> int
(** Number of live (non-cancelled) events still queued. *)

val events_executed : t -> int
(** Total events executed so far (for performance reporting). *)

type timer_stats = {
  scheduled : int;  (** total events accepted by the [schedule*] family *)
  fired : int;  (** events whose work item actually ran *)
  cancelled : int;  (** events cancelled before firing *)
  routed_wheel : int;  (** schedules that landed in a wheel bucket *)
  routed_heap : int;  (** schedules that went straight to the heap *)
  pour_skipped : int;  (** cancelled entries dropped at bucket-pour time *)
}

val timer_stats : t -> timer_stats
(** Cumulative scheduling/churn counters, for the metrics registry. *)

val run : t -> until:Time.t -> unit
(** Execute events in timestamp order until the queue is exhausted or the
    next event lies beyond [until].  The clock is left at the time of the
    last executed event, or at [until] if that is later.  Equivalent to —
    and implemented as — {!run_batch}. *)

val run_batch : t -> until:Time.t -> unit
(** Like {!run}, but pops each maximal run of equal-key ready events into
    a reusable scratch column and dispatches them through a single loop,
    paying the queue bookkeeping once per distinct timestamp instead of
    once per event.  Firing order is exactly (key, FIFO-seq) — an
    equal-key run is the largest pre-poppable slice that cannot be
    reordered by anything its own handlers schedule or cancel — so
    results are byte-identical to an un-batched event loop at any
    [--jobs] setting. *)

val drain : t -> unit
(** {!run} with an unbounded horizon: execute queued events until none
    remain, leaving the clock at the last executed event.  Beware
    self-re-arming handlers — they keep the queue non-empty and [drain]
    will not return.  Unlike {!run} this takes no time argument, so a
    caller in an allocation-free loop pays no float boxing. *)

val run_while : t -> (unit -> bool) -> until:Time.t -> unit
(** Like [run] but also stops (after the current event) once the predicate
    turns false.  When the predicate stops the loop early, the clock is
    left at the last executed event — it is {e not} advanced to [until],
    so events still queued before [until] keep their place and later
    schedules cannot be reordered past them. *)

val step : t -> bool
(** Execute the single next event.  Returns [false] if the queue was
    empty. *)
