(** Min-heap of timestamped entries with stable FIFO tie-breaking.

    The event queue of the simulator.  Entries inserted with equal keys pop
    in insertion order, which keeps simulations deterministic when many
    events share a timestamp. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> key:float -> 'a -> unit
(** [add t ~key v] inserts [v] with priority [key]. *)

val min_key : 'a t -> float option
(** Smallest key currently in the heap, if any. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest key (FIFO among equal
    keys). *)

val clear : 'a t -> unit
