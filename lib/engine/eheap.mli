(** Min-heap of timestamped entries with stable FIFO tie-breaking.

    The event queue of the simulator.  Entries inserted with equal keys pop
    in insertion order, which keeps simulations deterministic when many
    events share a timestamp. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> key:float -> 'a -> unit
(** [add t ~key v] inserts [v] with priority [key]. *)

val add_pre : 'a t -> key:float -> seq:int -> 'a -> unit
(** [add_pre t ~key ~seq v] inserts with an explicit tie-break rank instead
    of the heap's internal counter.  {!Twheel} assigns every event its rank
    at schedule time and replays it when a wheel bucket pours into the heap,
    so FIFO-among-equals is preserved across the detour.  Do not mix with
    {!add} on the same heap unless the caller's ranks are coordinated with
    the internal counter. *)

val add_pre_cell : 'a t -> cell:float array -> seq:int -> 'a -> unit
(** {!add_pre} with the key read from [cell.(0)] rather than passed as an
    argument.  A float argument is boxed at every (non-inlined) call; a
    float-array load is not, so the timer wheel's pour path — traversed
    once per event — allocates nothing. *)

val min_key : 'a t -> float option
(** Smallest key currently in the heap, if any. *)

val min_key_into : 'a t -> cell:float array -> bool
(** Write the smallest key into [cell.(0)] and return [true]; [false]
    (cell untouched) when the heap is empty.  Allocation-free counterpart
    of {!min_key_or} for callers that must avoid the boxed float return. *)

val min_key_or : 'a t -> default:float -> float
(** [min_key] without the option: the smallest key, or [default] when the
    heap is empty.  Allocation-free — for hot loops. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest key (FIFO among equal
    keys). *)

val pop_min : 'a t -> 'a
(** Remove the entry with the smallest key and return only its value —
    no option or tuple allocation.  @raise Invalid_argument if the heap is
    empty; pair with {!is_empty} or {!min_key_or} in hot loops. *)

val clear : 'a t -> unit
