(** Min-heap of timestamped entries with stable FIFO tie-breaking.

    The event queue of the simulator.  Entries inserted with equal keys pop
    in insertion order, which keeps simulations deterministic when many
    events share a timestamp.

    Values are ints (the engine's packed event handles): monomorphic
    [int array] value storage compiles to plain word stores, where a
    polymorphic ['a array] would pay the [caml_modify] write barrier on
    every sift step of the hot schedule/pop cycle. *)

type t

val create : unit -> t

val length : t -> int

val is_empty : t -> bool

val add : t -> key:float -> int -> unit
(** [add t ~key v] inserts [v] with priority [key]. *)

val add_pre : t -> key:float -> seq:int -> int -> unit
(** [add_pre t ~key ~seq v] inserts with an explicit tie-break rank instead
    of the heap's internal counter.  {!Twheel} assigns every event its rank
    at schedule time and replays it when a wheel bucket pours into the heap,
    so FIFO-among-equals is preserved across the detour.  Do not mix with
    {!add} on the same heap unless the caller's ranks are coordinated with
    the internal counter. *)

val add_pre_cell : t -> cell:float array -> seq:int -> int -> unit
(** {!add_pre} with the key read from [cell.(0)] rather than passed as an
    argument.  A float argument is boxed at every (non-inlined) call; a
    float-array load is not, so the timer wheel's pour path — traversed
    once per event — allocates nothing. *)

val min_key : t -> float option
(** Smallest key currently in the heap, if any. *)

val min_key_into : t -> cell:float array -> bool
(** Write the smallest key into [cell.(0)] and return [true]; [false]
    (cell untouched) when the heap is empty.  Allocation-free counterpart
    of {!min_key_or} for callers that must avoid the boxed float return. *)

val min_key_or : t -> default:float -> float
(** [min_key] without the option: the smallest key, or [default] when the
    heap is empty.  Allocation-free — for hot loops. *)

val pop : t -> (float * int) option
(** Remove and return the entry with the smallest key (FIFO among equal
    keys). *)

val pop_min : t -> int
(** Remove the entry with the smallest key and return only its value —
    no option or tuple allocation.  @raise Invalid_argument if the heap is
    empty; pair with {!is_empty} or {!min_key_or} in hot loops. *)

val pop_leq_into : t -> bound:float -> cell:float array -> default:int -> int
(** [pop_leq_into t ~bound ~cell ~default] pops the smallest entry iff its
    key is [<= bound]: key into [cell.(0)], value returned.  [default]
    (cell untouched) when the heap is empty or its minimum exceeds
    [bound].  One root access where a min-compare followed by a pop pays
    two — the event loop's inner operation. *)

val pop_boundcell_into : t -> cell:float array -> default:int -> int
(** {!pop_leq_into} with the bound read out of [cell.(1)] instead of a
    float argument (which a non-inlined call would box on every call):
    pops the smallest entry iff its key is [<= cell.(1)]. *)

val pop_min_into : t -> cell:float array -> default:int -> int
(** Combined {!min_key_into} + {!pop_min}: write the smallest key into
    [cell.(0)] and return its value, or [default] (cell untouched) when
    the heap is empty.  One root access instead of two on the pop path. *)

val clear : t -> unit
