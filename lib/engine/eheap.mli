(** Min-heap of timestamped entries with stable FIFO tie-breaking.

    The event queue of the simulator.  Entries inserted with equal keys pop
    in insertion order, which keeps simulations deterministic when many
    events share a timestamp. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> key:float -> 'a -> unit
(** [add t ~key v] inserts [v] with priority [key]. *)

val min_key : 'a t -> float option
(** Smallest key currently in the heap, if any. *)

val min_key_or : 'a t -> default:float -> float
(** [min_key] without the option: the smallest key, or [default] when the
    heap is empty.  Allocation-free — for hot loops. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest key (FIFO among equal
    keys). *)

val pop_min : 'a t -> 'a
(** Remove the entry with the smallest key and return only its value —
    no option or tuple allocation.  @raise Invalid_argument if the heap is
    empty; pair with {!is_empty} or {!min_key_or} in hot loops. *)

val clear : 'a t -> unit
