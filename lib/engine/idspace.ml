(* Per-engine identifier streams (packet idents, channel / connection /
   socket ids).

   These used to be process-global [Atomic] counters: unique across
   domains, but the *values* then depended on how many simulations were
   interleaving allocations.  That was harmless while idents only keyed
   per-host tables — but a sharded simulation (Shardsim) promises
   byte-identical recorder dumps at any shard count, and idents appear in
   the dumps.  So every engine now owns an id space, and installs it as
   the current one for the domain that is advancing it: a cell's ident
   sequence depends only on its own allocation order, never on what other
   cells (or other domains) are doing.

   The "current" space is domain-local state (Domain.DLS), not a global:
   two domains advancing different cells concurrently each see their own
   cell's space.  [Engine.create] installs the new engine's space, and
   Shardsim re-installs each cell's space before advancing it, so
   single-simulation code never has to think about this module. *)

type t = {
  mutable pkt_ident : int;
  mutable chan_id : int;
  mutable conn_id : int;
  mutable sock_id : int;
}

let create () = { pkt_ident = 0; chan_id = 0; conn_id = 0; sock_id = 0 }

(* Components created before any engine exists (standalone channels in
   unit tests, packets built at top level) draw from a per-domain default
   space. *)
let key = Domain.DLS.new_key create

let current () = Domain.DLS.get key
let use t = Domain.DLS.set key t

let next_pkt_ident () =
  let t = Domain.DLS.get key in
  t.pkt_ident <- t.pkt_ident + 1;
  t.pkt_ident

let next_chan_id () =
  let t = Domain.DLS.get key in
  t.chan_id <- t.chan_id + 1;
  t.chan_id

let next_conn_id () =
  let t = Domain.DLS.get key in
  t.conn_id <- t.conn_id + 1;
  t.conn_id

let next_sock_id () =
  let t = Domain.DLS.get key in
  t.sock_id <- t.sock_id + 1;
  t.sock_id
