type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let split_seed ~seed ~index =
  if index < 0 then invalid_arg "Rng.split_seed: index must be nonnegative";
  (* Two mixing rounds keep child streams independent even for adjacent
     indices (plain [seed + index] would give overlapping SplitMix64
     sequences, since the generator itself steps by adding a constant). *)
  let z =
    mix
      (Int64.add
         (mix (Int64.of_int seed))
         (Int64.mul (Int64.of_int (index + 1)) golden_gamma))
  in
  Int64.to_int (Int64.logand z 0x3FFF_FFFF_FFFF_FFFFL)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits so the conversion to OCaml's 63-bit int is
     non-negative. *)
  let r = Int64.to_int (Int64.logand (bits64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  r mod bound

let uniform t =
  (* 53 random bits scaled into [0, 1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r *. 0x1p-53

let float t bound = uniform t *. bound

let exponential t ~mean = -.mean *. log1p (-.uniform t)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
