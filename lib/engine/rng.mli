(** Deterministic pseudo-random number generator.

    A self-contained SplitMix64 implementation.  Every stochastic decision in
    the simulator draws from an explicit [Rng.t] so that simulation runs are
    reproducible from a seed, independent of the OCaml stdlib [Random]
    state. *)

type t

val create : int -> t
(** [create seed] makes a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator stream from [t], advancing
    [t].  Used to give each traffic source its own stream. *)

val split_seed : seed:int -> index:int -> int
(** [split_seed ~seed ~index] derives the seed of an independent child
    stream from a parent seed and a job index, deterministically: the same
    pair always yields the same child.  Used to give each job of a parallel
    experiment sweep its own reproducible stream, independent of how jobs
    are assigned to domains.  [index] must be nonnegative. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)].  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] is a uniform float in [\[0, bound)]. *)

val uniform : t -> float
(** [uniform t] is a uniform float in [\[0, 1)]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution.  Used for
    Poisson inter-arrival times in traffic generators. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
