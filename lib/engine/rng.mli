(** Deterministic pseudo-random number generator.

    A self-contained SplitMix64 implementation.  Every stochastic decision in
    the simulator draws from an explicit [Rng.t] so that simulation runs are
    reproducible from a seed, independent of the OCaml stdlib [Random]
    state. *)

type t

val create : int -> t
(** [create seed] makes a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator stream from [t], advancing
    [t].  Used to give each traffic source its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)].  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] is a uniform float in [\[0, bound)]. *)

val uniform : t -> float
(** [uniform t] is a uniform float in [\[0, 1)]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution.  Used for
    Poisson inter-arrival times in traffic generators. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
