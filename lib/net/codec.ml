(** Byte-level IPv4/UDP/TCP encoding.

    This is the faithful wire format used by the byte-level demultiplexer
    (paper section 3.2 requires a self-contained classifier that can run in
    NI firmware or an interrupt handler) and by the codec round-trip tests.
    The simulator's hot path passes structured {!Packet.t} values instead —
    a property test asserts the two demultiplexer implementations agree.

    Restrictions: fragments are encoded with the standard IPv4
    offset/more-fragments machinery; TCP options are not modelled (the
    header is a fixed 20 bytes). *)

let ipproto_icmp = 1
let ipproto_tcp = 6
let ipproto_udp = 17

(* Internet checksum (RFC 1071) over [len] bytes of [b] starting at [off]. *)
let internet_checksum b ~off ~len =
  let sum = ref 0 in
  let i = ref off in
  let last = off + len in
  while !i + 1 < last do
    sum := !sum + (Char.code (Bytes.get b !i) lsl 8) + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < last then sum := !sum + (Char.code (Bytes.get b !i) lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let put16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let put32 b off v =
  put16 b off ((v lsr 16) land 0xffff);
  put16 b (off + 2) (v land 0xffff)

let get16 b off =
  (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let get32 b off = (get16 b off lsl 16) lor get16 b (off + 2)

(* --- encode ----------------------------------------------------------- *)

let encode_ip_header b ~proto ~ident ~frag_off ~more_frags ~ttl ~src ~dst
    ~total_len =
  Bytes.set b 0 (Char.chr 0x45) (* version 4, IHL 5 *);
  Bytes.set b 1 '\000' (* TOS *);
  put16 b 2 total_len;
  put16 b 4 ident;
  let fl = (if more_frags then 0x2000 else 0) lor ((frag_off / 8) land 0x1fff) in
  put16 b 6 fl;
  Bytes.set b 8 (Char.chr (ttl land 0xff));
  Bytes.set b 9 (Char.chr proto);
  put16 b 10 0 (* checksum placeholder *);
  put32 b 12 src;
  put32 b 16 dst;
  put16 b 10 (internet_checksum b ~off:0 ~len:20)

let rec encode (pkt : Packet.t) =
  let open Packet in
  let ih = pkt.ip in
  match pkt.body with
  | Udp (u, payload) ->
      let plen = Payload.length payload in
      let total = ip_header_bytes + udp_header_bytes + plen in
      let b = Bytes.create total in
      encode_ip_header b ~proto:ipproto_udp ~ident:ih.ident ~frag_off:0
        ~more_frags:false ~ttl:ih.ttl ~src:ih.src ~dst:ih.dst ~total_len:total;
      put16 b 20 u.usrc_port;
      put16 b 22 u.udst_port;
      put16 b 24 (udp_header_bytes + plen);
      put16 b 26 0 (* UDP checksum: unused, as in the paper's tests *);
      Bytes.blit (Payload.to_bytes payload) 0 b 28 plen;
      b
  | Tcp (h, payload) ->
      let plen = Payload.length payload in
      let total = ip_header_bytes + tcp_header_bytes + plen in
      let b = Bytes.create total in
      encode_ip_header b ~proto:ipproto_tcp ~ident:ih.ident ~frag_off:0
        ~more_frags:false ~ttl:ih.ttl ~src:ih.src ~dst:ih.dst ~total_len:total;
      put16 b 20 h.tsrc_port;
      put16 b 22 h.tdst_port;
      put32 b 24 (h.seq land 0xffffffff);
      put32 b 28 (h.ack_no land 0xffffffff);
      Bytes.set b 32 (Char.chr 0x50) (* data offset 5 words *);
      let fl =
        (if h.flags.fin then 0x01 else 0)
        lor (if h.flags.syn then 0x02 else 0)
        lor (if h.flags.rst then 0x04 else 0)
        lor (if h.flags.psh then 0x08 else 0)
        lor if h.flags.ack then 0x10 else 0
      in
      Bytes.set b 33 (Char.chr fl);
      put16 b 34 h.window;
      put16 b 36 0 (* checksum *);
      put16 b 38 0 (* urgent *);
      Bytes.blit (Payload.to_bytes payload) 0 b 40 plen;
      put16 b 36 (internet_checksum b ~off:20 ~len:(tcp_header_bytes + plen));
      b
  | Icmp (kind, payload) ->
      let plen = Payload.length payload in
      let total = ip_header_bytes + 8 + plen in
      let b = Bytes.create total in
      encode_ip_header b ~proto:ipproto_icmp ~ident:ih.ident ~frag_off:0
        ~more_frags:false ~ttl:ih.ttl ~src:ih.src ~dst:ih.dst ~total_len:total;
      let ty =
        match kind with
        | Echo_request -> 8
        | Echo_reply -> 0
        | Dest_unreachable -> 3
        | Ttl_exceeded -> 11
      in
      Bytes.set b 20 (Char.chr ty);
      Bytes.fill b 21 7 '\000';
      Bytes.blit (Payload.to_bytes payload) 0 b 28 plen;
      b
  | Fragment f ->
      (* The fragment's [foff]/[flen] index the transport *payload*; on the
         wire, IP fragment offsets index the IP payload, whose first bytes
         are the transport header.  Fragment 0 therefore carries the
         transport header plus its payload slice. *)
      let whole_bytes = encode f.whole in
      let th = Packet.transport_header_bytes f.whole in
      let ip_payload_len = Bytes.length whole_bytes - ip_header_bytes in
      let ioff = if f.foff = 0 then 0 else th + f.foff in
      let ilen = if f.foff = 0 then th + f.flen else f.flen in
      if ioff < 0 || ioff + ilen > ip_payload_len then
        invalid_arg "Codec.encode: fragment out of range"
      else begin
        let total = ip_header_bytes + ilen in
        let b = Bytes.create total in
        let proto =
          match f.whole.body with
          | Udp _ -> ipproto_udp
          | Tcp _ -> ipproto_tcp
          | Icmp _ -> ipproto_icmp
          | Fragment _ -> invalid_arg "Codec.encode: nested fragment"
        in
        encode_ip_header b ~proto ~ident:ih.ident ~frag_off:ioff
          ~more_frags:(not f.last) ~ttl:ih.ttl ~src:ih.src ~dst:ih.dst
          ~total_len:total;
        Bytes.blit whole_bytes (ip_header_bytes + ioff) b ip_header_bytes ilen;
        b
      end

(* --- decode ----------------------------------------------------------- *)

type decoded = {
  d_src : int;
  d_dst : int;
  d_proto : int;
  d_ident : int;
  d_frag_off : int;
  d_more_frags : bool;
  d_ttl : int;
  d_src_port : int option;
  d_dst_port : int option;
  d_tcp_flags : Packet.tcp_flags option;
  d_seq : int option;
  d_ack : int option;
  d_window : int option;
  d_payload : Bytes.t;
}

exception Bad_packet of string

let decode b =
  if Bytes.length b < 20 then raise (Bad_packet "short IP header");
  if Char.code (Bytes.get b 0) <> 0x45 then raise (Bad_packet "bad version/IHL");
  if internet_checksum b ~off:0 ~len:20 <> 0 then
    raise (Bad_packet "IP checksum");
  let total_len = get16 b 2 in
  if total_len > Bytes.length b then raise (Bad_packet "truncated datagram");
  let ident = get16 b 4 in
  let fl = get16 b 6 in
  let more_frags = fl land 0x2000 <> 0 in
  let frag_off = (fl land 0x1fff) * 8 in
  let ttl = Char.code (Bytes.get b 8) in
  let proto = Char.code (Bytes.get b 9) in
  let src = get32 b 12 and dst = get32 b 16 in
  let first = frag_off = 0 in
  let base = 20 in
  let mk ?src_port ?dst_port ?tcp_flags ?seq ?ack ?window payload_off =
    { d_src = src; d_dst = dst; d_proto = proto; d_ident = ident;
      d_frag_off = frag_off; d_more_frags = more_frags; d_ttl = ttl;
      d_src_port = src_port; d_dst_port = dst_port; d_tcp_flags = tcp_flags;
      d_seq = seq; d_ack = ack; d_window = window;
      d_payload = Bytes.sub b payload_off (total_len - payload_off) }
  in
  if not first then mk base
  else if proto = ipproto_udp then begin
    if total_len < base + 8 then raise (Bad_packet "short UDP header");
    mk ~src_port:(get16 b 20) ~dst_port:(get16 b 22) (base + 8)
  end
  else if proto = ipproto_tcp then begin
    if total_len < base + 20 then raise (Bad_packet "short TCP header");
    let fl = Char.code (Bytes.get b 33) in
    let tcp_flags =
      { Packet.fin = fl land 0x01 <> 0; syn = fl land 0x02 <> 0;
        rst = fl land 0x04 <> 0; psh = fl land 0x08 <> 0;
        ack = fl land 0x10 <> 0 }
    in
    mk ~src_port:(get16 b 20) ~dst_port:(get16 b 22) ~tcp_flags
      ~seq:(get32 b 24) ~ack:(get32 b 28) ~window:(get16 b 34) (base + 20)
  end
  else if proto = ipproto_icmp then mk (base + 8)
  else mk base
