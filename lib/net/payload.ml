(** Packet payloads.

    Most simulated traffic only needs a length, but integrity tests (and the
    TCP stream reassembly tests) want real bytes.  A payload is therefore
    either synthetic (length + tag) or concrete bytes. *)

type t =
  | Synthetic of { len : int; tag : int }
  | Bytes of Bytes.t

let synthetic ?(tag = 0) len =
  if len < 0 then invalid_arg "Payload.synthetic: negative length";
  Synthetic { len; tag }

let of_string s = Bytes (Bytes.of_string s)

let of_bytes b = Bytes b

let length = function
  | Synthetic { len; _ } -> len
  | Bytes b -> Bytes.length b

let tag = function Synthetic { tag; _ } -> Some tag | Bytes _ -> None

let to_bytes = function
  | Synthetic { len; tag } ->
      (* Deterministic fill so encode/decode round-trips are checkable. *)
      Bytes.init len (fun i -> Char.chr ((tag + i) land 0xff))
  | Bytes b -> b

(* [sub t off len] is the slice used by IP fragmentation. *)
let sub t off len =
  match t with
  | Synthetic { tag; len = total } ->
      if off < 0 || len < 0 || off + len > total then
        invalid_arg "Payload.sub: out of range";
      Synthetic { len; tag = tag + off }
  | Bytes b -> Bytes (Bytes.sub b off len)

let equal a b =
  match (a, b) with
  | Synthetic x, Synthetic y -> x.len = y.len && x.tag = y.tag
  | Bytes x, Bytes y -> Bytes.equal x y
  | Synthetic _, Bytes _ | Bytes _, Synthetic _ ->
      Bytes.equal (to_bytes a) (to_bytes b)

let concat parts =
  match parts with
  | [ p ] -> p
  | _ ->
      (* Fragments of a synthetic payload with consecutive tags glue back
         into a synthetic payload; anything else goes through bytes. *)
      let rec synth_glue = function
        | Synthetic { len; tag } :: (Synthetic { tag = tag'; _ } :: _ as rest)
          when tag' = tag + len ->
            (match synth_glue rest with
             | Some total -> Some (len + total)
             | None -> None)
        | [ Synthetic { len; _ } ] -> Some len
        | [] -> Some 0
        | _ -> None
      in
      (match (parts, synth_glue parts) with
       | Synthetic { tag; _ } :: _, Some total -> Synthetic { len = total; tag }
       | _, _ -> Bytes (Bytes.concat Bytes.empty (List.map to_bytes parts)))

let pp fmt t =
  match t with
  | Synthetic { len; tag } -> Fmt.pf fmt "#%d(%dB)" tag len
  | Bytes b -> Fmt.pf fmt "bytes(%dB)" (Bytes.length b)
