(** Packet payloads.

    Most simulated traffic only needs a length, but integrity tests (and the
    TCP stream reassembly tests) want real bytes.  A payload is therefore
    either synthetic (length + tag) or concrete bytes. *)

type t =
  | Synthetic of { len : int; tag : int }
  | Bytes of Bytes.t

let synthetic ?(tag = 0) len =
  if len < 0 then invalid_arg "Payload.synthetic: negative length";
  Synthetic { len; tag }

let of_string s = Bytes (Bytes.of_string s)

let of_bytes b = Bytes b

let length = function
  | Synthetic { len; _ } -> len
  | Bytes b -> Bytes.length b

let tag = function Synthetic { tag; _ } -> Some tag | Bytes _ -> None

let to_bytes = function
  | Synthetic { len; tag } ->
      (* Deterministic fill so encode/decode round-trips are checkable. *)
      Bytes.init len (fun i -> Char.chr ((tag + i) land 0xff))
  | Bytes b -> b

(* [byte_sum t] is the sum of the payload's byte values.  Synthetic
   payloads have a closed form (the fill cycles through 0..255), so the
   hot path never materialises them; a single flipped byte always changes
   the sum, which is what checksum-based corruption detection needs. *)
let byte_sum = function
  | Bytes b -> Bytes.fold_left (fun acc c -> acc + Char.code c) 0 b
  | Synthetic { len; tag } ->
      let b0 = ((tag mod 256) + 256) mod 256 in
      let cycles = len / 256 and rem = len mod 256 in
      let rem_sum =
        let first = min rem (256 - b0) in
        (* [first] values b0..b0+first-1, then [rem-first] values 0.. *)
        let s1 = first * b0 + (first * (first - 1) / 2) in
        let m = rem - first in
        s1 + (m * (m - 1) / 2)
      in
      (cycles * 32640) + rem_sum

(* [sub t off len] is the slice used by IP fragmentation. *)
let sub t off len =
  match t with
  | Synthetic { tag; len = total } ->
      if off < 0 || len < 0 || off + len > total then
        invalid_arg "Payload.sub: out of range";
      Synthetic { len; tag = tag + off }
  | Bytes b -> Bytes (Bytes.sub b off len)

let equal a b =
  match (a, b) with
  | Synthetic x, Synthetic y -> x.len = y.len && x.tag = y.tag
  | Bytes x, Bytes y -> Bytes.equal x y
  | Synthetic _, Bytes _ | Bytes _, Synthetic _ ->
      Bytes.equal (to_bytes a) (to_bytes b)

let concat parts =
  match parts with
  | [ p ] -> p
  | _ ->
      (* Fragments of a synthetic payload with consecutive tags glue back
         into a synthetic payload; anything else goes through bytes. *)
      let rec synth_glue = function
        | Synthetic { len; tag } :: (Synthetic { tag = tag'; _ } :: _ as rest)
          when tag' = tag + len ->
            (match synth_glue rest with
             | Some total -> Some (len + total)
             | None -> None)
        | [ Synthetic { len; _ } ] -> Some len
        | [] -> Some 0
        | _ -> None
      in
      (match (parts, synth_glue parts) with
       | Synthetic { tag; _ } :: _, Some total -> Synthetic { len = total; tag }
       | _, _ -> Bytes (Bytes.concat Bytes.empty (List.map to_bytes parts)))

let pp fmt t =
  match t with
  | Synthetic { len; tag } -> Fmt.pf fmt "#%d(%dB)" tag len
  | Bytes b -> Fmt.pf fmt "bytes(%dB)" (Bytes.length b)
