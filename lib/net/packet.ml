(** Packet representation.

    Packets are structured records in the simulator's hot path; {!Codec}
    provides the faithful byte-level encoding used by the wire-format tests
    and the byte-level demultiplexer.  Header sizes follow IPv4/UDP/TCP so
    that wire-time calculations are realistic. *)

type ip = int
(** IPv4 address as a non-negative int (printed dotted-quad). *)

type port = int

let pp_ip fmt (a : ip) =
  Fmt.pf fmt "%d.%d.%d.%d"
    ((a lsr 24) land 0xff) ((a lsr 16) land 0xff) ((a lsr 8) land 0xff)
    (a land 0xff)

let ip_of_quad a b c d =
  (* [land] binds tighter than [lor]: without the parentheses only [d] was
     range-checked, silently accepting out-of-range upper octets. *)
  if (a lor b lor c lor d) land lnot 0xff <> 0 then invalid_arg "ip_of_quad";
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

type tcp_flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
}

let flags ?(syn = false) ?(ack = false) ?(fin = false) ?(rst = false)
    ?(psh = false) () =
  { syn; ack; fin; rst; psh }

let pp_flags fmt f =
  let s b c = if b then c else "" in
  Fmt.pf fmt "%s%s%s%s%s" (s f.syn "S") (s f.ack "A") (s f.fin "F") (s f.rst "R")
    (s f.psh "P")

type udp_header = { usrc_port : port; udst_port : port }

type tcp_header = {
  tsrc_port : port;
  tdst_port : port;
  seq : int;
  ack_no : int;
  flags : tcp_flags;
  window : int;
}

type icmp_kind = Echo_request | Echo_reply | Dest_unreachable | Ttl_exceeded

type ip_header = {
  src : ip;
  dst : ip;
  ident : int;       (* IP identification, for fragment reassembly *)
  ttl : int;
  csum : int;        (* sender-computed content checksum, see {!checksum} *)
}

type body =
  | Udp of udp_header * Payload.t
  | Tcp of tcp_header * Payload.t
  | Icmp of icmp_kind * Payload.t
  | Fragment of fragment
      (** One piece of a fragmented IP datagram.  [whole] is the original
          (unfragmented) packet so reassembly can reconstitute it; only the
          first fragment ([foff = 0]) "contains" the transport header. *)

and fragment = { whole : t; foff : int; flen : int; last : bool }

and t = { ip : ip_header; body : body }

let ip_header_bytes = 20
let udp_header_bytes = 8
let tcp_header_bytes = 20

let rec transport_header_bytes t =
  match t.body with
  | Udp _ -> udp_header_bytes
  | Tcp _ -> tcp_header_bytes
  | Icmp _ -> 8
  | Fragment f -> if f.foff = 0 then transport_header_bytes' f.whole.body else 0

and transport_header_bytes' = function
  | Udp _ -> udp_header_bytes
  | Tcp _ -> tcp_header_bytes
  | Icmp _ -> 8
  | Fragment _ -> 0

let payload_length t =
  match t.body with
  | Udp (_, p) | Tcp (_, p) | Icmp (_, p) -> Payload.length p
  | Fragment f -> f.flen

(* Total IP datagram bytes on the wire (header + transport header +
   payload). *)
let wire_bytes t =
  match t.body with
  | Udp (_, p) -> ip_header_bytes + udp_header_bytes + Payload.length p
  | Tcp (_, p) -> ip_header_bytes + tcp_header_bytes + Payload.length p
  | Icmp (_, p) -> ip_header_bytes + 8 + Payload.length p
  | Fragment f -> ip_header_bytes + transport_header_bytes t + f.flen

(* --- content checksum ------------------------------------------------- *)

(* Multiplicative mix over the fields that define a packet's *content*
   (addresses, transport header, payload bytes).  131 is odd, hence
   invertible mod 2^30, so two chains that differ in any single mixed value
   stay different — a one-byte payload flip or a header-field flip is always
   detected, not just probably detected.  [ident] and [ttl] are deliberately
   excluded: retransmits and duplicates of the same content must carry the
   same checksum. *)
let mix h v = ((h * 131) + v) land 0x3fffffff

let flag_bits f =
  (if f.syn then 1 else 0)
  lor (if f.ack then 2 else 0)
  lor (if f.fin then 4 else 0)
  lor (if f.rst then 8 else 0)
  lor (if f.psh then 16 else 0)

let icmp_kind_index = function
  | Echo_request -> 0
  | Echo_reply -> 1
  | Dest_unreachable -> 2
  | Ttl_exceeded -> 3

let rec body_sum = function
  | Udp (u, p) ->
      mix (mix (mix (mix 17 u.usrc_port) u.udst_port) (Payload.length p))
        (Payload.byte_sum p)
  | Tcp (h, p) ->
      let s = mix (mix (mix 6 h.tsrc_port) h.tdst_port) h.seq in
      let s = mix (mix (mix s h.ack_no) (flag_bits h.flags)) h.window in
      mix (mix s (Payload.length p)) (Payload.byte_sum p)
  | Icmp (k, p) ->
      mix (mix (mix 1 (icmp_kind_index k)) (Payload.length p))
        (Payload.byte_sum p)
  | Fragment f ->
      (* Fragments carry the whole datagram's checksum: it is checked after
         reassembly, like a real end-to-end transport checksum. *)
      body_sum f.whole.body

let checksum_of ~src ~dst body = mix (mix (body_sum body) src) dst

let checksum t = checksum_of ~src:t.ip.src ~dst:t.ip.dst t.body

let verify t = checksum t = t.ip.csum

(* --- constructors ---------------------------------------------------- *)

(* Idents come from the per-engine id space installed on this domain
   (Lrp_engine.Idspace): a cell's ident sequence is a function of its own
   packet-creation order, never of what other simulations — or other
   shards of the same simulation — are allocating.  The values only key
   per-host reassembly tables, but they appear in recorder dumps, so
   sharded runs need them byte-identical at any shard count. *)
let next_ident () = Lrp_engine.Idspace.next_pkt_ident () land 0xffff

let udp ~src ~dst ~src_port ~dst_port payload =
  let body = Udp ({ usrc_port = src_port; udst_port = dst_port }, payload) in
  { ip = { src; dst; ident = next_ident (); ttl = 64;
           csum = checksum_of ~src ~dst body };
    body }

let tcp ~src ~dst ~src_port ~dst_port ~seq ~ack_no ~flags ~window payload =
  let body =
    Tcp
      ( { tsrc_port = src_port; tdst_port = dst_port; seq; ack_no; flags;
          window },
        payload )
  in
  { ip = { src; dst; ident = next_ident (); ttl = 64;
           csum = checksum_of ~src ~dst body };
    body }

let icmp ~src ~dst kind payload =
  let body = Icmp (kind, payload) in
  { ip = { src; dst; ident = next_ident (); ttl = 64;
           csum = checksum_of ~src ~dst body };
    body }

(* A statically-allocated placeholder packet: ring buffers and arenas use
   it to fill slots that hold no frame, so an emptied slot never pins the
   last real packet that passed through it.  Never enters the data path. *)
let null =
  { ip = { src = 0; dst = 0; ident = 0; ttl = 0; csum = 0 };
    body = Icmp (Echo_request, Payload.synthetic 0) }

(* --- accessors used by demux and protocol code ----------------------- *)

let src t = t.ip.src
let dst t = t.ip.dst

(* Class-D (224.0.0.0/4) destination: delivered by the fabric to every
   attached host. *)
let is_multicast_addr (a : ip) = (a lsr 28) land 0xf = 0xe

let is_multicast t = is_multicast_addr t.ip.dst

let rec ports t =
  match t.body with
  | Udp (u, _) -> Some (u.usrc_port, u.udst_port)
  | Tcp (h, _) -> Some (h.tsrc_port, h.tdst_port)
  | Icmp _ -> None
  | Fragment f -> if f.foff = 0 then ports' f.whole else None

and ports' w =
  match w.body with
  | Udp (u, _) -> Some (u.usrc_port, u.udst_port)
  | Tcp (h, _) -> Some (h.tsrc_port, h.tdst_port)
  | Icmp _ | Fragment _ -> None

let is_tcp t =
  match t.body with
  | Tcp _ -> true
  | Fragment { whole = { body = Tcp _; _ }; _ } -> true
  | Udp _ | Icmp _ | Fragment _ -> false

let is_udp t =
  match t.body with
  | Udp _ -> true
  | Fragment { whole = { body = Udp _; _ }; _ } -> true
  | Tcp _ | Icmp _ | Fragment _ -> false

let is_fragment t = match t.body with Fragment _ -> true | Udp _ | Tcp _ | Icmp _ -> false

(* --- fault injection: payload corruption ------------------------------ *)

(* Flip one payload byte.  [to_bytes] of a [Bytes] payload returns the
   underlying buffer, which may be shared with the sender's retransmit
   queue — copy before mutating. *)
let flip_byte p ~off ~xor =
  let b = Bytes.copy (Payload.to_bytes p) in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor xor));
  Payload.of_bytes b

let corrupt t ~at ~xor =
  let at = abs at in
  let xor =
    let x = xor land 0xff in
    if x = 0 then 0x55 else x
  in
  (* [ip] (and with it the original [csum]) is kept verbatim: corruption
     changes content under an unchanged checksum, which is exactly what the
     receiver-side verify-and-drop path must detect. *)
  match t.body with
  | Udp (u, p) when Payload.length p > 0 ->
      Some { t with body = Udp (u, flip_byte p ~off:(at mod Payload.length p) ~xor) }
  | Tcp (h, p) when Payload.length p > 0 ->
      Some { t with body = Tcp (h, flip_byte p ~off:(at mod Payload.length p) ~xor) }
  | Tcp (h, p) ->
      (* Pure ACK/SYN/FIN: corrupt the acknowledgment number instead. *)
      Some { t with body = Tcp ({ h with ack_no = h.ack_no lxor xor }, p) }
  | Icmp (k, p) when Payload.length p > 0 ->
      Some { t with body = Icmp (k, flip_byte p ~off:(at mod Payload.length p) ~xor) }
  | Udp _ | Icmp _ -> None
  | Fragment f ->
      if f.flen <= 0 then None
      else
        (* Flip a byte inside this fragment's slice of the whole datagram's
           payload, so reassembly reconstitutes a corrupted whole. *)
        let off = f.foff + (at mod f.flen) in
        let whole = f.whole in
        let rebuilt body' =
          Some { t with body = Fragment { f with whole = { whole with body = body' } } }
        in
        (match whole.body with
         | Udp (u, p) when off < Payload.length p ->
             rebuilt (Udp (u, flip_byte p ~off ~xor))
         | Tcp (h, p) when off < Payload.length p ->
             rebuilt (Tcp (h, flip_byte p ~off ~xor))
         | Icmp (k, p) when off < Payload.length p ->
             rebuilt (Icmp (k, flip_byte p ~off ~xor))
         | Udp _ | Tcp _ | Icmp _ | Fragment _ -> None)

let pp fmt t =
  match t.body with
  | Udp (u, p) ->
      Fmt.pf fmt "UDP %a:%d > %a:%d %a" pp_ip t.ip.src u.usrc_port pp_ip
        t.ip.dst u.udst_port Payload.pp p
  | Tcp (h, p) ->
      Fmt.pf fmt "TCP %a:%d > %a:%d [%a] seq=%d ack=%d win=%d %a" pp_ip
        t.ip.src h.tsrc_port pp_ip t.ip.dst h.tdst_port pp_flags h.flags h.seq
        h.ack_no h.window Payload.pp p
  | Icmp (_, p) -> Fmt.pf fmt "ICMP %a > %a %a" pp_ip t.ip.src pp_ip t.ip.dst Payload.pp p
  | Fragment f ->
      Fmt.pf fmt "FRAG id=%d off=%d len=%d%s of (%a)" t.ip.ident f.foff f.flen
        (if f.last then " last" else "")
        pp_ip t.ip.dst
