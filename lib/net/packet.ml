(** Packet representation.

    Packets are structured records in the simulator's hot path; {!Codec}
    provides the faithful byte-level encoding used by the wire-format tests
    and the byte-level demultiplexer.  Header sizes follow IPv4/UDP/TCP so
    that wire-time calculations are realistic. *)

type ip = int
(** IPv4 address as a non-negative int (printed dotted-quad). *)

type port = int

let pp_ip fmt (a : ip) =
  Fmt.pf fmt "%d.%d.%d.%d"
    ((a lsr 24) land 0xff) ((a lsr 16) land 0xff) ((a lsr 8) land 0xff)
    (a land 0xff)

let ip_of_quad a b c d =
  (* [land] binds tighter than [lor]: without the parentheses only [d] was
     range-checked, silently accepting out-of-range upper octets. *)
  if (a lor b lor c lor d) land lnot 0xff <> 0 then invalid_arg "ip_of_quad";
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

type tcp_flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
}

let flags ?(syn = false) ?(ack = false) ?(fin = false) ?(rst = false)
    ?(psh = false) () =
  { syn; ack; fin; rst; psh }

let pp_flags fmt f =
  let s b c = if b then c else "" in
  Fmt.pf fmt "%s%s%s%s%s" (s f.syn "S") (s f.ack "A") (s f.fin "F") (s f.rst "R")
    (s f.psh "P")

type udp_header = { usrc_port : port; udst_port : port }

type tcp_header = {
  tsrc_port : port;
  tdst_port : port;
  seq : int;
  ack_no : int;
  flags : tcp_flags;
  window : int;
}

type icmp_kind = Echo_request | Echo_reply | Dest_unreachable | Ttl_exceeded

type ip_header = {
  src : ip;
  dst : ip;
  ident : int;       (* IP identification, for fragment reassembly *)
  ttl : int;
}

type body =
  | Udp of udp_header * Payload.t
  | Tcp of tcp_header * Payload.t
  | Icmp of icmp_kind * Payload.t
  | Fragment of fragment
      (** One piece of a fragmented IP datagram.  [whole] is the original
          (unfragmented) packet so reassembly can reconstitute it; only the
          first fragment ([foff = 0]) "contains" the transport header. *)

and fragment = { whole : t; foff : int; flen : int; last : bool }

and t = { ip : ip_header; body : body }

let ip_header_bytes = 20
let udp_header_bytes = 8
let tcp_header_bytes = 20

let rec transport_header_bytes t =
  match t.body with
  | Udp _ -> udp_header_bytes
  | Tcp _ -> tcp_header_bytes
  | Icmp _ -> 8
  | Fragment f -> if f.foff = 0 then transport_header_bytes' f.whole.body else 0

and transport_header_bytes' = function
  | Udp _ -> udp_header_bytes
  | Tcp _ -> tcp_header_bytes
  | Icmp _ -> 8
  | Fragment _ -> 0

let payload_length t =
  match t.body with
  | Udp (_, p) | Tcp (_, p) | Icmp (_, p) -> Payload.length p
  | Fragment f -> f.flen

(* Total IP datagram bytes on the wire (header + transport header +
   payload). *)
let wire_bytes t =
  match t.body with
  | Udp (_, p) -> ip_header_bytes + udp_header_bytes + Payload.length p
  | Tcp (_, p) -> ip_header_bytes + tcp_header_bytes + Payload.length p
  | Icmp (_, p) -> ip_header_bytes + 8 + Payload.length p
  | Fragment f -> ip_header_bytes + transport_header_bytes t + f.flen

(* --- constructors ---------------------------------------------------- *)

(* Atomic so that simulations running on concurrent domains still draw
   unique idents (the values themselves never influence behavior — idents
   only key per-host reassembly tables). *)
let ident_counter = Atomic.make 0

let next_ident () = (Atomic.fetch_and_add ident_counter 1 + 1) land 0xffff

let udp ~src ~dst ~src_port ~dst_port payload =
  { ip = { src; dst; ident = next_ident (); ttl = 64 };
    body = Udp ({ usrc_port = src_port; udst_port = dst_port }, payload) }

let tcp ~src ~dst ~src_port ~dst_port ~seq ~ack_no ~flags ~window payload =
  { ip = { src; dst; ident = next_ident (); ttl = 64 };
    body =
      Tcp
        ( { tsrc_port = src_port; tdst_port = dst_port; seq; ack_no; flags;
            window },
          payload ) }

let icmp ~src ~dst kind payload =
  { ip = { src; dst; ident = next_ident (); ttl = 64 }; body = Icmp (kind, payload) }

(* --- accessors used by demux and protocol code ----------------------- *)

let src t = t.ip.src
let dst t = t.ip.dst

(* Class-D (224.0.0.0/4) destination: delivered by the fabric to every
   attached host. *)
let is_multicast_addr (a : ip) = (a lsr 28) land 0xf = 0xe

let is_multicast t = is_multicast_addr t.ip.dst

let rec ports t =
  match t.body with
  | Udp (u, _) -> Some (u.usrc_port, u.udst_port)
  | Tcp (h, _) -> Some (h.tsrc_port, h.tdst_port)
  | Icmp _ -> None
  | Fragment f -> if f.foff = 0 then ports' f.whole else None

and ports' w =
  match w.body with
  | Udp (u, _) -> Some (u.usrc_port, u.udst_port)
  | Tcp (h, _) -> Some (h.tsrc_port, h.tdst_port)
  | Icmp _ | Fragment _ -> None

let is_tcp t =
  match t.body with
  | Tcp _ -> true
  | Fragment { whole = { body = Tcp _; _ }; _ } -> true
  | Udp _ | Icmp _ | Fragment _ -> false

let is_udp t =
  match t.body with
  | Udp _ -> true
  | Fragment { whole = { body = Udp _; _ }; _ } -> true
  | Tcp _ | Icmp _ | Fragment _ -> false

let is_fragment t = match t.body with Fragment _ -> true | Udp _ | Tcp _ | Icmp _ -> false

let pp fmt t =
  match t.body with
  | Udp (u, p) ->
      Fmt.pf fmt "UDP %a:%d > %a:%d %a" pp_ip t.ip.src u.usrc_port pp_ip
        t.ip.dst u.udst_port Payload.pp p
  | Tcp (h, p) ->
      Fmt.pf fmt "TCP %a:%d > %a:%d [%a] seq=%d ack=%d win=%d %a" pp_ip
        t.ip.src h.tsrc_port pp_ip t.ip.dst h.tdst_port pp_flags h.flags h.seq
        h.ack_no h.window Payload.pp p
  | Icmp (_, p) -> Fmt.pf fmt "ICMP %a > %a %a" pp_ip t.ip.src pp_ip t.ip.dst Payload.pp p
  | Fragment f ->
      Fmt.pf fmt "FRAG id=%d off=%d len=%d%s of (%a)" t.ip.ident f.foff f.flen
        (if f.last then " last" else "")
        pp_ip t.ip.dst
