(* Struct-of-arrays descriptor arena for in-flight received frames.

   Every frame sitting in an NI channel (or any other receive-side queue)
   is represented by a *descriptor*: a slot across parallel columns — the
   structured packet, its cached wire footprint — identified by a
   generation-checked integer handle.  Queues then carry plain ints
   through flat int rings instead of boxed packets through linked
   [Queue.t] cells: the per-packet costs this removes are the queue-cell
   allocation, the [take_opt] option allocation, and the repeated
   [Packet.wire_bytes] traversal (cached here in a column at admission).

   Handles pack (generation, slot) like {!Lrp_engine.Engine}'s event
   handles: the generation is bumped when a descriptor is released, so a
   stale handle held after release can never reach the slot's next
   occupant — double-release and use-after-release raise instead of
   corrupting another frame.  Slots are recycled through a free stack;
   the columns only ever grow, so the steady state allocates nothing per
   frame. *)

let slot_bits = 20
let slot_mask = (1 lsl slot_bits) - 1

type handle = int

let none = -1

type t = {
  mutable pkts : Packet.t array; (* the frame itself *)
  mutable bytes : int array; (* cached [Packet.wire_bytes] *)
  mutable gens : int array;
  mutable free : int array; (* stack of free slots *)
  mutable free_top : int;
  mutable live : int;
  mutable peak : int;
}

let create () =
  { pkts = [||]; bytes = [||]; gens = [||]; free = [||]; free_top = 0;
    live = 0; peak = 0 }

let grow t =
  let cap = Array.length t.gens in
  let cap' = max 16 (2 * cap) in
  if cap' > slot_mask then failwith "Parena: too many live frames"; (* alloc: cold — error path *)
  let pkts = Array.make cap' Packet.null in (* alloc: cold — amortized growth *)
  let bytes = Array.make cap' 0 in (* alloc: cold — amortized growth *)
  let gens = Array.make cap' 0 in (* alloc: cold — amortized growth *)
  let free = Array.make cap' 0 in (* alloc: cold — amortized growth *)
  Array.blit t.pkts 0 pkts 0 cap;
  Array.blit t.bytes 0 bytes 0 cap;
  Array.blit t.gens 0 gens 0 cap;
  t.pkts <- pkts;
  t.bytes <- bytes;
  t.gens <- gens;
  t.free <- free;
  t.free_top <- 0;
  for slot = cap' - 1 downto cap do
    t.free.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1
  done

let[@inline] acquire t pkt =
  if t.free_top = 0 then grow t;
  t.free_top <- t.free_top - 1;
  let slot = Array.unsafe_get t.free t.free_top in
  t.pkts.(slot) <- pkt;
  Array.unsafe_set t.bytes slot (Packet.wire_bytes pkt);
  t.live <- t.live + 1;
  if t.live > t.peak then t.peak <- t.live;
  ((Array.unsafe_get t.gens slot) lsl slot_bits) lor slot

let[@inline] valid t h =
  h >= 0
  &&
  let slot = h land slot_mask in
  slot < Array.length t.gens && Array.unsafe_get t.gens slot = h lsr slot_bits

let[@inline never] stale name =
  (* alloc: cold — error path *)
  invalid_arg (Printf.sprintf "Parena.%s: stale or invalid handle" name)

let[@inline] pkt t h =
  if not (valid t h) then stale "pkt";
  Array.unsafe_get t.pkts (h land slot_mask)

let[@inline] wire_bytes t h =
  if not (valid t h) then stale "wire_bytes";
  Array.unsafe_get t.bytes (h land slot_mask)

let[@inline] release t h =
  if not (valid t h) then stale "release";
  let slot = h land slot_mask in
  Array.unsafe_set t.gens slot (Array.unsafe_get t.gens slot + 1);
  t.pkts.(slot) <- Packet.null (* do not pin the released frame *);
  t.live <- t.live - 1;
  Array.unsafe_set t.free t.free_top slot;
  t.free_top <- t.free_top + 1

let live t = t.live
let peak t = t.peak
let capacity t = Array.length t.gens
