(** Mbuf pool model.

    BSD stores packets in fixed-size mbufs drawn from a global pool; the
    shared pool is one of the resources that traffic bursts for one socket
    can exhaust to the detriment of others (paper section 2.2).  We model
    the pool by counting: a packet of [n] bytes consumes
    [ceil (n / mbuf_size)] mbufs (minimum 1) until it is freed. *)

type t = {
  capacity : int;
  mbuf_size : int;
  mutable in_use : int;
  mutable peak : int;
  mutable failures : int;  (* allocation attempts that found the pool empty *)
}

let create ?(mbuf_size = 128) ~capacity () =
  if capacity <= 0 then invalid_arg "Mbuf.create: capacity must be positive";
  { capacity; mbuf_size; in_use = 0; peak = 0; failures = 0 }

let mbufs_for t bytes = max 1 ((bytes + t.mbuf_size - 1) / t.mbuf_size)

(* [alloc t ~bytes] reserves mbufs for a packet.  Returns [false] (and
   counts a failure) when the pool cannot cover the request. *)
let alloc t ~bytes =
  let n = mbufs_for t bytes in
  if t.in_use + n > t.capacity then begin
    t.failures <- t.failures + 1;
    false
  end
  else begin
    t.in_use <- t.in_use + n;
    if t.in_use > t.peak then t.peak <- t.in_use;
    true
  end

let free t ~bytes =
  let n = mbufs_for t bytes in
  if n > t.in_use then invalid_arg "Mbuf.free: more mbufs freed than in use";
  t.in_use <- t.in_use - n

let in_use t = t.in_use
let peak t = t.peak
let failures t = t.failures
let capacity t = t.capacity
let available t = t.capacity - t.in_use
