(** Mbuf pool model.

    BSD stores packets in fixed-size mbufs drawn from a global pool; the
    shared pool is one of the resources that traffic bursts for one socket
    can exhaust to the detriment of others (paper section 2.2).  We model
    the pool by counting: a packet of [n] bytes consumes
    [ceil (n / mbuf_size)] mbufs (minimum 1) until it is freed. *)

(* Handle rows: a reservation can optionally be held as a *handle* — a
   generation-checked int naming a slot in parallel (sizes, gens) columns,
   exactly the {!Parena} scheme.  The receive path reserves with
   {!alloc_h} and frees with {!free_h}, so the mbuf count to return is
   read from the slot instead of being recomputed from packet bytes at
   every free site; the byte-based {!alloc}/{!free} API remains for
   callers that track footprints themselves. *)

let slot_bits = 20
let slot_mask = (1 lsl slot_bits) - 1

type handle = int

let no_handle = -1

type t = {
  capacity : int;
  mbuf_size : int;
  mutable in_use : int;
  mutable peak : int;
  mutable failures : int;  (* allocation attempts that found the pool empty *)
  (* handle rows *)
  mutable sizes : int array; (* mbufs held by each live handle *)
  mutable gens : int array;
  mutable free_slots : int array;
  mutable free_top : int;
}

let create ?(mbuf_size = 128) ~capacity () =
  if capacity <= 0 then invalid_arg "Mbuf.create: capacity must be positive";
  { capacity; mbuf_size; in_use = 0; peak = 0; failures = 0;
    sizes = [||]; gens = [||]; free_slots = [||]; free_top = 0 }

let mbufs_for t bytes = max 1 ((bytes + t.mbuf_size - 1) / t.mbuf_size)

(* [alloc t ~bytes] reserves mbufs for a packet.  Returns [false] (and
   counts a failure) when the pool cannot cover the request. *)
let alloc t ~bytes =
  let n = mbufs_for t bytes in
  if t.in_use + n > t.capacity then begin
    t.failures <- t.failures + 1;
    false
  end
  else begin
    t.in_use <- t.in_use + n;
    if t.in_use > t.peak then t.peak <- t.in_use;
    true
  end

let free t ~bytes =
  let n = mbufs_for t bytes in
  if n > t.in_use then invalid_arg "Mbuf.free: more mbufs freed than in use"; (* alloc: cold — error path *)
  t.in_use <- t.in_use - n

(* --- handle-based reservations ---------------------------------------- *)

let grow_slots t =
  let cap = Array.length t.gens in
  let cap' = max 16 (2 * cap) in
  if cap' > slot_mask then failwith "Mbuf: too many live handles"; (* alloc: cold — error path *)
  let sizes = Array.make cap' 0 in (* alloc: cold — amortized growth *)
  let gens = Array.make cap' 0 in (* alloc: cold — amortized growth *)
  let free_slots = Array.make cap' 0 in (* alloc: cold — amortized growth *)
  Array.blit t.sizes 0 sizes 0 cap;
  Array.blit t.gens 0 gens 0 cap;
  t.sizes <- sizes;
  t.gens <- gens;
  t.free_slots <- free_slots;
  t.free_top <- 0;
  for slot = cap' - 1 downto cap do
    t.free_slots.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1
  done

(* [alloc_h t ~bytes] is {!alloc} returning a handle that remembers the
   mbuf count, or [no_handle] on pool exhaustion (failure counted). *)
let alloc_h t ~bytes =
  let n = mbufs_for t bytes in
  if t.in_use + n > t.capacity then begin
    t.failures <- t.failures + 1;
    no_handle
  end
  else begin
    t.in_use <- t.in_use + n;
    if t.in_use > t.peak then t.peak <- t.in_use;
    if t.free_top = 0 then grow_slots t;
    t.free_top <- t.free_top - 1;
    let slot = t.free_slots.(t.free_top) in
    t.sizes.(slot) <- n;
    (t.gens.(slot) lsl slot_bits) lor slot
  end

let[@inline] valid_h t h =
  h >= 0
  &&
  let slot = h land slot_mask in
  slot < Array.length t.gens && t.gens.(slot) = h lsr slot_bits

let[@inline never] stale name =
  (* alloc: cold — error path *)
  invalid_arg (Printf.sprintf "Mbuf.%s: stale or invalid handle" name)

let free_h t h =
  if not (valid_h t h) then stale "free_h";
  let slot = h land slot_mask in
  t.gens.(slot) <- t.gens.(slot) + 1;
  t.in_use <- t.in_use - t.sizes.(slot);
  t.sizes.(slot) <- 0;
  t.free_slots.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1

let in_use t = t.in_use
let peak t = t.peak
let failures t = t.failures
let capacity t = t.capacity
let available t = t.capacity - t.in_use
