(** ATM-like switching fabric connecting the hosts' NICs.

    A single output-buffered switch: a frame transmitted by a NIC reaches
    the switch after the source link's propagation delay, waits for the
    destination port to be free (per-port serialisation at link bandwidth),
    and arrives at the destination NIC after the switch latency plus the
    destination link's propagation delay.  Output ports have a bounded
    amount of buffering; overruns drop frames, which is the
    congestion-related loss the paper observed above 19,000 pkts/s on its
    ATM network. *)

open Lrp_engine

type port = {
  nic : Nic.t;
  rx_tgt : Packet.t Engine.target;  (* closure-free arrival event *)
  mutable busy_until : Time.t;
  mutable rx_frames : int;
  mutable drops : int;
}

type t = {
  engine : Engine.t;
  bandwidth : float;           (* bytes/us, per output port *)
  prop_delay : float;          (* per link, us *)
  switch_latency : float;      (* fixed forwarding latency, us *)
  buffer_us : float;           (* max queueing backlog per port, us *)
  ports : (Packet.ip, port) Hashtbl.t;
  mutable total_drops : int;
  mutable loss_rate : float;   (* random frame loss, for fault injection *)
  mutable loss_rng : Rng.t;
  mutable default_port : Packet.ip option;
      (* where frames for off-link destinations go: the router's
         attachment (a LAN's default gateway) *)
}

let create engine ?(bandwidth_mbps = 155.) ?(prop_delay = 5.)
    ?(switch_latency = 10.) ?(buffer_us = 10_000.) () =
  { engine; bandwidth = Nic.mbps_to_bytes_per_us bandwidth_mbps; prop_delay;
    switch_latency; buffer_us; ports = Hashtbl.create 8; total_drops = 0;
    loss_rate = 0.; loss_rng = Rng.split (Engine.rng engine);
    default_port = None }

let rec attach t nic =
  let ip = Nic.ip nic in
  if Hashtbl.mem t.ports ip then
    invalid_arg "Fabric.attach: duplicate IP address";
  let port =
    { nic; rx_tgt = Engine.target t.engine (fun pkt -> Nic.receive nic pkt);
      busy_until = Time.zero; rx_frames = 0; drops = 0 }
  in
  Hashtbl.replace t.ports ip port;
  Nic.set_deliver nic (fun pkt -> forward t pkt)

and forward t pkt =
  let now = Engine.now t.engine in
  if t.loss_rate > 0. && Rng.uniform t.loss_rng < t.loss_rate then
    (* Injected random loss (fault-injection tests). *)
    t.total_drops <- t.total_drops + 1
  else if Packet.is_multicast pkt then
    (* Multicast: replicate to every port except the sender's. *)
    Hashtbl.iter
      (fun ip port ->
        if ip <> Packet.src pkt then deliver_to t port pkt ~now)
      t.ports
  else
  match Hashtbl.find_opt t.ports (Packet.dst pkt) with
  | None ->
      (* Off-link destination: hand the frame to the default gateway's
         port if one is configured, else drop as a real switch would. *)
      (match t.default_port with
       | Some gw_ip ->
           (match Hashtbl.find_opt t.ports gw_ip with
            | Some port -> deliver_to t port pkt ~now
            | None -> t.total_drops <- t.total_drops + 1)
       | None -> t.total_drops <- t.total_drops + 1)
  | Some port -> deliver_to t port pkt ~now

and deliver_to t port pkt ~now =
  let ser = float_of_int (Packet.wire_bytes pkt) /. t.bandwidth in
  let start = Float.max now port.busy_until in
  if start -. now > t.buffer_us then begin
    (* Output buffer exhausted: congestion drop. *)
    port.drops <- port.drops + 1;
    t.total_drops <- t.total_drops + 1
  end
  else begin
    let departure = start +. ser in
    port.busy_until <- departure;
    port.rx_frames <- port.rx_frames + 1;
    let arrival = departure +. t.switch_latency +. t.prop_delay in
    ignore (Engine.schedule_to t.engine ~at:arrival port.rx_tgt pkt)
  end

let set_loss_rate t r = t.loss_rate <- r

(* [set_default_gateway t ~ip] routes frames for unknown destinations to
   the port attached as [ip] (a forwarding host). *)
let set_default_gateway t ~ip =
  if not (Hashtbl.mem t.ports ip) then
    invalid_arg "Fabric.set_default_gateway: no such port";
  t.default_port <- Some ip

let drops t = t.total_drops

let port_drops t ip =
  match Hashtbl.find_opt t.ports ip with Some p -> p.drops | None -> 0

(* Convenience: build a NIC and attach it in one step. *)
let make_nic t ~name ~ip ?bandwidth_mbps ?cellify ?ifq_limit () =
  let nic = Nic.create t.engine ~name ~ip ?bandwidth_mbps ?cellify ?ifq_limit () in
  attach t nic;
  nic
