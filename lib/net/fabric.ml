(** ATM-like switching fabric connecting the hosts' NICs.

    A single output-buffered switch: a frame transmitted by a NIC reaches
    the switch after the source link's propagation delay, waits for the
    destination port to be free (per-port serialisation at link bandwidth),
    and arrives at the destination NIC after the switch latency plus the
    destination link's propagation delay.  Output ports have a bounded
    amount of buffering; overruns drop frames, which is the
    congestion-related loss the paper observed above 19,000 pkts/s on its
    ATM network. *)

open Lrp_engine

(* --- link fault models ------------------------------------------------- *)

module Faults = struct
  type t = {
    loss : float;          (* uniform per-frame loss probability *)
    ge_loss_good : float;  (* Gilbert–Elliott: loss probability, Good state *)
    ge_loss_bad : float;   (* loss probability, Bad state (bursty loss) *)
    ge_p_gb : float;       (* per-frame P(Good -> Bad) *)
    ge_p_bg : float;       (* per-frame P(Bad -> Good) *)
    dup : float;           (* per-frame duplication probability *)
    corrupt : float;       (* per-frame payload-corruption probability *)
    reorder : float;       (* per-frame probability of being held back *)
    reorder_span : int;    (* max displacement of a held frame, in frames *)
    jitter_us : float;     (* max uniform extra per-frame delay *)
  }

  let none =
    { loss = 0.; ge_loss_good = 0.; ge_loss_bad = 0.; ge_p_gb = 0.;
      ge_p_bg = 0.; dup = 0.; corrupt = 0.; reorder = 0.; reorder_span = 3;
      jitter_us = 0. }

  let make ?(loss = 0.) ?(ge_loss_good = 0.) ?(ge_loss_bad = 0.)
      ?(ge_p_gb = 0.) ?(ge_p_bg = 0.) ?(dup = 0.) ?(corrupt = 0.)
      ?(reorder = 0.) ?(reorder_span = 3) ?(jitter_us = 0.) () =
    { loss; ge_loss_good; ge_loss_bad; ge_p_gb; ge_p_bg; dup; corrupt;
      reorder; reorder_span; jitter_us }

  let check_prob name p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg (Printf.sprintf "Fabric.Faults: %s=%g outside [0,1]" name p)

  let validate t =
    check_prob "loss" t.loss;
    check_prob "ge_loss_good" t.ge_loss_good;
    check_prob "ge_loss_bad" t.ge_loss_bad;
    check_prob "ge_p_gb" t.ge_p_gb;
    check_prob "ge_p_bg" t.ge_p_bg;
    check_prob "dup" t.dup;
    check_prob "corrupt" t.corrupt;
    check_prob "reorder" t.reorder;
    if t.reorder_span < 1 then
      invalid_arg "Fabric.Faults: reorder_span must be >= 1";
    if not (t.jitter_us >= 0.) then
      invalid_arg "Fabric.Faults: jitter_us must be >= 0"

  let is_none t =
    t.loss = 0. && t.ge_loss_good = 0. && t.ge_loss_bad = 0.
    && t.ge_p_gb = 0. && t.ge_p_bg = 0. && t.dup = 0. && t.corrupt = 0.
    && t.reorder = 0. && t.jitter_us = 0.
end

(* A frame held back for reordering.  [released] guards against double
   release (count-based release vs. the idle-link timeout flush). *)
type held = {
  hpkt : Packet.t;
  mutable countdown : int;  (* frames that must overtake before release *)
  mutable released : bool;
}

type fault_state = {
  mutable cfg : Faults.t;
  frng : Rng.t;             (* this link's private fault stream *)
  mutable ge_bad : bool;    (* Gilbert–Elliott channel state *)
  mutable fheld : held list;  (* reorder buffer, oldest first *)
  flush_tgt : held Lrp_engine.Engine.target;
      (* timeout release, so a held frame on an idle link still arrives *)
}

type port = {
  nic : Nic.t;
  rx_tgt : Packet.t Engine.target;  (* closure-free arrival event *)
  mutable busy_until : Time.t;
  mutable rx_frames : int;
  mutable drops : int;
  mutable fstate : fault_state option;
      (* [None] until faults are first configured: the fault-free fast path
         stays byte-for-byte the pre-fault-injection code, with zero extra
         RNG draws. *)
}

(* Cross-cell uplink: the spine side of a leaf fabric when the simulation
   is partitioned into cells (Lrp_engine.Shardsim).  A frame whose
   destination resolves to another cell serialises through the uplink
   port, then sits in the SoA outbox until the coordinator's barrier
   drains it towards the destination cell's fabric; [up_min_latency] is
   the conservative-lookahead bound the coordinator relies on, so every
   route latency [up_latency] returns must be >= it.  All uplink state is
   written only by the owning cell (while it advances) or at barriers —
   never by two domains at once. *)
type uplink = {
  up_cell : int;                    (* this fabric's cell id *)
  up_resolve : Packet.ip -> int;    (* destination cell, or -1 = off-net *)
  up_latency : int -> float;        (* spine route latency to a cell, us *)
  up_min_latency : float;
  up_bandwidth : float;             (* bytes/us *)
  up_buffer_us : float;             (* max uplink backlog, us *)
  mutable up_busy : Time.t;
  (* SoA outbox: parallel columns, drained at barriers in index order so
     per-source FIFO order is the column order. *)
  mutable ob_ready : float array;   (* earliest effect on the dest cell *)
  mutable ob_dst : int array;       (* destination cell *)
  mutable ob_pkt : Packet.t array;
  mutable ob_len : int;
  mutable up_tx : int;              (* frames sent cross-cell *)
  mutable up_rx : int;              (* frames injected from other cells *)
  mutable up_drops : int;           (* uplink backlog overflow *)
  inject_tgt : Packet.t Engine.target;
      (* closure-free arrival event for injected frames *)
}

type uplink_stats = {
  up_sent : int;
  up_received : int;
  up_dropped : int;
  up_backlog : int;   (* outbox entries awaiting the next barrier *)
}

type fault_stats = {
  offered : int;      (* frames presented to links (incl. pre-link drops) *)
  delivered : int;    (* frames scheduled into a destination NIC *)
  duplicated : int;   (* extra copies created by duplication faults *)
  fault_lost : int;   (* frames dropped by per-link loss (uniform + GE) *)
  corrupted : int;    (* frames altered in flight (still delivered) *)
  reordered : int;    (* frames held back for later release *)
  held_now : int;     (* frames currently in reorder buffers *)
}

type t = {
  engine : Engine.t;
  bandwidth : float;           (* bytes/us, per output port *)
  prop_delay : float;          (* per link, us *)
  switch_latency : float;      (* fixed forwarding latency, us *)
  buffer_us : float;           (* max queueing backlog per port, us *)
  ports : (Packet.ip, port) Hashtbl.t;
  mutable total_drops : int;
  mutable loss_rate : float;   (* random frame loss, for fault injection *)
  mutable loss_rng : Rng.t;
  mutable default_port : Packet.ip option;
      (* where frames for off-link destinations go: the router's
         attachment (a LAN's default gateway) *)
  mutable uplink : uplink option;
      (* cross-cell path, when this fabric is a leaf of a sharded
         topology; consulted for off-link destinations before the
         default gateway *)
  mutable offered : int;
  mutable delivered : int;
  mutable duplicated : int;
  mutable fault_lost : int;
  mutable corrupted : int;
  mutable reordered : int;
}

(* How long a held frame may wait for overtaking traffic before the timeout
   releases it anyway (idle link / end of run). *)
let reorder_flush_us = 2_000.

let create engine ?(bandwidth_mbps = 155.) ?(prop_delay = 5.)
    ?(switch_latency = 10.) ?(buffer_us = 10_000.) () =
  { engine; bandwidth = Nic.mbps_to_bytes_per_us bandwidth_mbps; prop_delay;
    switch_latency; buffer_us; ports = Hashtbl.create 8; total_drops = 0;
    loss_rate = 0.; loss_rng = Rng.split (Engine.rng engine);
    default_port = None; uplink = None; offered = 0; delivered = 0;
    duplicated = 0; fault_lost = 0; corrupted = 0; reordered = 0 }

let rec attach t nic =
  let ip = Nic.ip nic in
  if Hashtbl.mem t.ports ip then
    invalid_arg "Fabric.attach: duplicate IP address";
  let port =
    { nic; rx_tgt = Engine.target t.engine (fun pkt -> Nic.receive nic pkt);
      busy_until = Time.zero; rx_frames = 0; drops = 0; fstate = None }
  in
  Hashtbl.replace t.ports ip port;
  Nic.set_deliver nic (fun pkt -> forward t pkt)

and forward t pkt =
  let now = Engine.now t.engine in
  if t.loss_rate > 0. && Rng.uniform t.loss_rng < t.loss_rate then begin
    (* Injected random loss (fault-injection tests). *)
    t.offered <- t.offered + 1;
    t.total_drops <- t.total_drops + 1
  end
  else if Packet.is_multicast pkt then
    (* Multicast: replicate to every port except the sender's, in address
       order so the replication (and any induced queueing) is independent
       of hash-table layout. *)
    Lrp_det.Det.iter_sorted
      (fun ip port ->
        if ip <> Packet.src pkt then deliver_to t port pkt ~now)
      t.ports
  else
  match Hashtbl.find_opt t.ports (Packet.dst pkt) with
  | None ->
      (* Off-link destination: try the cross-cell uplink first (sharded
         topologies), then the default gateway, else drop as a real
         switch would. *)
      (match t.uplink with
       | Some up when
           (let c = up.up_resolve (Packet.dst pkt) in
            c >= 0 && c <> up.up_cell) ->
           uplink_forward t up pkt ~now
       | _ -> gateway_or_drop t pkt ~now)
  | Some port -> deliver_to t port pkt ~now

and gateway_or_drop t pkt ~now =
  match t.default_port with
  | Some gw_ip ->
      (match Hashtbl.find_opt t.ports gw_ip with
       | Some port -> deliver_to t port pkt ~now
       | None ->
           t.offered <- t.offered + 1;
           t.total_drops <- t.total_drops + 1)
  | None ->
      t.offered <- t.offered + 1;
      t.total_drops <- t.total_drops + 1

(* Cross-cell transmit: serialise on the uplink port, then park the frame
   in the outbox with its earliest effect time on the destination cell.
   The local offered/delivered/drop counters are left alone — their
   conservation invariant is per-fabric, and the cross-cell flow has its
   own conservation: sum of up_tx = sum of up_rx + outbox backlog. *)
and uplink_forward _t up pkt ~now =
  let dstc = up.up_resolve (Packet.dst pkt) in
  let ser = float_of_int (Packet.wire_bytes pkt) /. up.up_bandwidth in
  let start = Float.max now up.up_busy in
  if start -. now > up.up_buffer_us then
    up.up_drops <- up.up_drops + 1
  else begin
    let departure = start +. ser in
    up.up_busy <- departure;
    up.up_tx <- up.up_tx + 1;
    let ready = departure +. up.up_latency dstc in
    let n = up.ob_len in
    let cap = Array.length up.ob_ready in
    if n = cap then begin
      let cap' = if cap = 0 then 64 else cap * 2 in
      let ready' = Array.make cap' 0. in
      let dst' = Array.make cap' 0 in
      let pkt' = Array.make cap' Packet.null in
      Array.blit up.ob_ready 0 ready' 0 n;
      Array.blit up.ob_dst 0 dst' 0 n;
      Array.blit up.ob_pkt 0 pkt' 0 n;
      up.ob_ready <- ready';
      up.ob_dst <- dst';
      up.ob_pkt <- pkt'
    end;
    up.ob_ready.(n) <- ready;
    up.ob_dst.(n) <- dstc;
    up.ob_pkt.(n) <- pkt;
    up.ob_len <- n + 1
  end

and deliver_to t port pkt ~now =
  t.offered <- t.offered + 1;
  match port.fstate with
  | None -> deliver_frame t port pkt ~now
  | Some fs -> apply_faults t port fs pkt ~now

(* Link weather, applied per destination link before serialisation.  Each
   stochastic decision draws from the port's private [frng] only when the
   corresponding knob is non-zero, so a [Faults.none] configuration draws
   nothing and behaves exactly like an unconfigured port. *)
and apply_faults t port fs pkt ~now =
  let f = fs.cfg in
  (* Advance the Gilbert–Elliott channel once per frame. *)
  if f.Faults.ge_p_gb > 0. || f.Faults.ge_p_bg > 0. then begin
    let flip = if fs.ge_bad then f.Faults.ge_p_bg else f.Faults.ge_p_gb in
    if flip > 0. && Rng.uniform fs.frng < flip then fs.ge_bad <- not fs.ge_bad
  end;
  let ge_loss = if fs.ge_bad then f.Faults.ge_loss_bad else f.Faults.ge_loss_good in
  let lost_uniform = f.Faults.loss > 0. && Rng.uniform fs.frng < f.Faults.loss in
  let lost_ge =
    (not lost_uniform) && ge_loss > 0. && Rng.uniform fs.frng < ge_loss
  in
  if lost_uniform || lost_ge then begin
    t.fault_lost <- t.fault_lost + 1;
    t.total_drops <- t.total_drops + 1
  end
  else begin
    let pkt =
      if f.Faults.corrupt > 0. && Rng.uniform fs.frng < f.Faults.corrupt then
        match
          Packet.corrupt pkt ~at:(Rng.int fs.frng 65536)
            ~xor:(Rng.int fs.frng 256)
        with
        | Some bad ->
            t.corrupted <- t.corrupted + 1;
            bad
        | None -> pkt
      else pkt
    in
    if f.Faults.dup > 0. && Rng.uniform fs.frng < f.Faults.dup then begin
      (* The extra copy skips reorder/jitter: it arrives in order, the
         original may still be held back, which also covers the
         dup-then-reorder interleaving. *)
      t.duplicated <- t.duplicated + 1;
      deliver_frame t port pkt ~now
    end;
    if f.Faults.reorder > 0. && Rng.uniform fs.frng < f.Faults.reorder then begin
      (* Hold the frame until [countdown] later frames have overtaken it
         (bounded displacement), or the timeout fires on an idle link. *)
      let h =
        { hpkt = pkt; countdown = 1 + Rng.int fs.frng f.Faults.reorder_span;
          released = false }
      in
      t.reordered <- t.reordered + 1;
      fs.fheld <- fs.fheld @ [ h ];
      ignore
        (Engine.schedule_to t.engine ~at:(now +. reorder_flush_us)
           fs.flush_tgt h)
    end
    else begin
      let now =
        if f.Faults.jitter_us > 0. then
          now +. Rng.float fs.frng f.Faults.jitter_us
        else now
      in
      deliver_frame t port pkt ~now;
      (* This frame overtook everything still held; release frames whose
         displacement bound is reached. *)
      if fs.fheld <> [] then begin
        let rec tick acc = function
          | [] -> List.rev acc
          | h :: rest ->
              h.countdown <- h.countdown - 1;
              if h.countdown <= 0 then begin
                h.released <- true;
                deliver_frame t port h.hpkt ~now;
                tick acc rest
              end
              else tick (h :: acc) rest
        in
        fs.fheld <- tick [] fs.fheld
      end
    end
  end

and deliver_frame t port pkt ~now =
  let ser = float_of_int (Packet.wire_bytes pkt) /. t.bandwidth in
  let start = Float.max now port.busy_until in
  if start -. now > t.buffer_us then begin
    (* Output buffer exhausted: congestion drop. *)
    port.drops <- port.drops + 1;
    t.total_drops <- t.total_drops + 1
  end
  else begin
    let departure = start +. ser in
    port.busy_until <- departure;
    port.rx_frames <- port.rx_frames + 1;
    t.delivered <- t.delivered + 1;
    let arrival = departure +. t.switch_latency +. t.prop_delay in
    ignore (Engine.schedule_to t.engine ~at:arrival port.rx_tgt pkt)
  end

(* Timeout release of a held frame (idle link or end of run). *)
let flush_held t port h =
  if not h.released then begin
    h.released <- true;
    (match port.fstate with
     | Some fs -> fs.fheld <- List.filter (fun h' -> h' != h) fs.fheld
     | None -> ());
    deliver_frame t port h.hpkt ~now:(Engine.now t.engine)
  end

let set_loss_rate t r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Fabric.set_loss_rate: %g outside [0,1]" r);
  t.loss_rate <- r

let set_link_faults t ~ip f =
  Faults.validate f;
  match Hashtbl.find_opt t.ports ip with
  | None -> invalid_arg "Fabric.set_link_faults: no such port"
  | Some port -> (
      match port.fstate with
      | Some fs -> fs.cfg <- f  (* keep the RNG and channel state *)
      | None ->
          let fs =
            { cfg = f; frng = Rng.split t.loss_rng; ge_bad = false;
              fheld = [];
              flush_tgt = Engine.target t.engine (fun h -> flush_held t port h) }
          in
          port.fstate <- Some fs)

let set_faults t f =
  Faults.validate f;
  (* Deterministic split order regardless of hash-table iteration: visit the
     attached addresses in sorted order. *)
  Lrp_det.Det.sorted_keys t.ports
  |> List.iter (fun ip -> set_link_faults t ~ip f)

let fault_stats t =
  let held_now =
    Lrp_det.Det.fold_sorted
      (fun _ port acc ->
        match port.fstate with
        | Some fs -> acc + List.length fs.fheld
        | None -> acc)
      t.ports 0
  in
  { offered = t.offered; delivered = t.delivered; duplicated = t.duplicated;
    fault_lost = t.fault_lost; corrupted = t.corrupted;
    reordered = t.reordered; held_now }

(* [set_default_gateway t ~ip] routes frames for unknown destinations to
   the port attached as [ip] (a forwarding host). *)
let set_default_gateway t ~ip =
  if not (Hashtbl.mem t.ports ip) then
    invalid_arg "Fabric.set_default_gateway: no such port";
  t.default_port <- Some ip

let drops t = t.total_drops

let port_drops t ip =
  match Hashtbl.find_opt t.ports ip with Some p -> p.drops | None -> 0

(* --- cross-cell path (sharded topologies) ------------------------------ *)

(* Arrival of an injected frame on the destination cell: from here on it
   is an ordinary local delivery (destination leaf serialisation, faults,
   propagation), on the destination cell's own engine. *)
let inject_now t pkt =
  (match t.uplink with
   | Some up -> up.up_rx <- up.up_rx + 1
   | None -> ());
  let now = Engine.now t.engine in
  match Hashtbl.find_opt t.ports (Packet.dst pkt) with
  | Some port -> deliver_to t port pkt ~now
  | None -> gateway_or_drop t pkt ~now

let set_uplink t ~cell ~resolve ~latency ~min_latency
    ?(bandwidth_mbps = 622.) ?(buffer_us = 10_000.) () =
  if not (min_latency > 0. && min_latency < Float.infinity) then
    invalid_arg "Fabric.set_uplink: min_latency must be positive and finite";
  if cell < 0 then invalid_arg "Fabric.set_uplink: negative cell id";
  t.uplink <-
    Some
      { up_cell = cell; up_resolve = resolve; up_latency = latency;
        up_min_latency = min_latency;
        up_bandwidth = Nic.mbps_to_bytes_per_us bandwidth_mbps;
        up_buffer_us = buffer_us; up_busy = Time.zero;
        ob_ready = [||]; ob_dst = [||]; ob_pkt = [||]; ob_len = 0;
        up_tx = 0; up_rx = 0; up_drops = 0;
        inject_tgt = Engine.target t.engine (fun pkt -> inject_now t pkt) }

let uplink_exn t =
  match t.uplink with
  | Some up -> up
  | None -> invalid_arg "Fabric: no uplink configured"

let cell_id t = (uplink_exn t).up_cell

let uplink_min_latency t = (uplink_exn t).up_min_latency

(* Barrier-side drain: visit outbox entries in transmit order ([seq] is
   the per-source FIFO sequence the coordinator sorts on), then reset the
   columns.  Emptied packet slots are cleared so the outbox never pins a
   delivered frame.  Only the coordinating domain may call this, at a
   barrier. *)
let drain_outbox t f =
  match t.uplink with
  | None -> 0
  | Some up ->
      let n = up.ob_len in
      for i = 0 to n - 1 do
        f ~ready:up.ob_ready.(i) ~dst:up.ob_dst.(i) ~seq:i up.ob_pkt.(i);
        up.ob_pkt.(i) <- Packet.null
      done;
      up.ob_len <- 0;
      n

(* Barrier-side injection: schedule the frame's arrival on this (the
   destination) cell's engine at its ready time.  Safe because the
   coordinator only injects at barriers, when every cell clock is <= the
   ready time (the lookahead invariant). *)
let inject_remote t ~at pkt =
  ignore (Engine.schedule_to t.engine ~at (uplink_exn t).inject_tgt pkt)

let uplink_stats t =
  match t.uplink with
  | None -> { up_sent = 0; up_received = 0; up_dropped = 0; up_backlog = 0 }
  | Some up ->
      { up_sent = up.up_tx; up_received = up.up_rx;
        up_dropped = up.up_drops; up_backlog = up.ob_len }

(* Convenience: build a NIC and attach it in one step. *)
let make_nic t ~name ~ip ?bandwidth_mbps ?cellify ?ifq_limit () =
  let nic = Nic.create t.engine ~name ~ip ?bandwidth_mbps ?cellify ?ifq_limit () in
  attach t nic;
  nic
