(** Network interface model.

    The NIC is deliberately thin: it owns the transmit queue ("interface
    queue" in the paper's figures) and delivers received frames to a
    receive handler installed by the kernel architecture.  The handler runs
    in *NIC context* — an engine event with zero host-CPU cost.  What
    happens next is the architectural difference the paper studies:

    - BSD / Early-Demux / SOFT-LRP post hardware-interrupt work to the host
      CPU from the handler;
    - NI-LRP performs demultiplexing and early discard right in the handler
      (modelling the adaptor's embedded i960 CPU) and only interrupts the
      host when a receiver asked to be woken.

    Transmission models the 155 Mbit/s ATM link: per-packet serialisation
    delay with optional AAL5 cell quantisation, drained from a bounded
    interface queue. *)

type stats = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable rx_packets : int;
  mutable tx_drops : int;
}

(** One receive queue of the queued-RX mode: a bounded ring the NIC DMAs
    frames into at zero host cost, with a maskable interrupt and
    packet-count/timer coalescing. *)
type rxq = {
  q_id : int;
  ring : Packet.t array;
  mutable q_head : int;
  mutable q_count : int;
  mutable intr_on : bool;
  mutable timer : Lrp_engine.Engine.handle;
      (** armed coalesce timer; [Engine.none] when disarmed *)
  mutable q_rx : int;
  mutable q_drops : int;
  mutable q_kicks : int;
  mutable q_hwm : int;
}

type t = {
  nic_name : string;
  engine : Lrp_engine.Engine.t;
  ip : Packet.ip;
  bandwidth : float;
  cellify : bool;
  ifq_limit : int;
  txa : Parena.t;
      (** private TX descriptor arena; caches wire footprints at enqueue *)
  ifq : Parena.handle array;
      (** flat handle ring sized [ifq_limit]; empty slots hold
          [Parena.none] *)
  mutable ifq_head : int;
  mutable ifq_count : int;
  mutable tx_busy : bool;
  mutable rx_handler : Packet.t -> unit;
  mutable deliver : Packet.t -> unit;
  mutable tx_done : Packet.t Lrp_engine.Engine.target option;
      (** closure-free tx-complete event; registered on first transmit *)
  mutable rxq_timer_tgt : rxq Lrp_engine.Engine.target option;
      (** closure-free coalesce-timer expiry; registered on first arm *)
  stats : stats;
  mutable tracer : Lrp_trace.Trace.t;
  mutable rxqs : rxq array;
      (** queued-RX mode when non-empty; [[||]] = classic immediate mode *)
  mutable rx_steer : Packet.t -> int;
  mutable rx_kick : int -> unit;
  mutable coalesce_pkts : int;
  mutable coalesce_us : float;
}
val mbps_to_bytes_per_us : float -> float
(** Unit helper: link rate in Mbit/s to bytes per microsecond. *)

val create :
  Lrp_engine.Engine.t ->
  name:string ->
  ip:Packet.ip ->
  ?bandwidth_mbps:float -> ?cellify:bool -> ?ifq_limit:int -> unit -> t
val name : t -> string
val ip : t -> Packet.ip
val stats : t -> stats

(** Install the owning kernel's tracer; the NIC stamps a [Nic_rx] event
    per received frame. *)
val set_tracer : t -> Lrp_trace.Trace.t -> unit

(** Expose tx/rx packet and byte counts, tx drops and the instantaneous
    interface-queue length under [prefix]. *)
val register_metrics : t -> Lrp_trace.Metrics.t -> prefix:string -> unit
val set_rx_handler : t -> (Packet.t -> unit) -> unit
(** Install the kernel's receive path.  The handler runs in NI context
    (an engine event, zero host CPU); what it posts to the host CPU is the
    architectural difference the paper studies. *)

val set_deliver : t -> (Packet.t -> unit) -> unit
val footprint_of_bytes : t -> int -> int
(** Line bytes for a [wire_bytes]-sized datagram; with [cellify], AAL5
    cell quantisation (48 payload bytes per 53-byte cell).  Takes the
    byte count rather than the packet so the drain loop can reuse the
    arena-cached footprint. *)

val wire_footprint : t -> Packet.t -> int
(** [footprint_of_bytes] of the packet's [Packet.wire_bytes]. *)

val serialization_time : t -> Packet.t -> float
val drain : t -> unit
val transmit : t -> Packet.t -> bool
(** Driver if_output: enqueue on the interface queue and kick the
    transmitter; [false] on queue overflow. *)

val ifq_length : t -> int

val tx_arena : t -> Parena.t
(** The TX descriptor arena, for allocation accounting ([live]/[peak]). *)

(** {1 Queued RX (NAPI-era back-ends)} *)

val configure_rx_queues :
  t -> queues:int -> ring:int -> coalesce_pkts:int -> coalesce_us:float ->
  steer:(Packet.t -> int) -> kick:(int -> unit) -> unit
(** Switch the NIC into queued-RX mode: received frames are steered by
    [steer] into one of [queues] bounded rings of [ring] slots each (DMA,
    zero host cost; overflow drops are free and traced as [Ipq_drop]).
    An unmasked queue raises an interrupt — [kick q] — once
    [coalesce_pkts] frames are buffered, or [coalesce_us] after the first
    frame of a sub-threshold train (a [Coalesce_fire] trace event marks
    each).  [kick] runs in NIC context and is expected to mask the queue
    ({!rxq_disable_intr}) and schedule host-side polling. *)

val rx_queues : t -> int
(** Number of configured receive queues; [0] = classic immediate mode. *)

val rxq_pop : t -> int -> Packet.t
(** Dequeue the oldest frame of a queue, or {!Packet.null} when empty
    (zero host cost here; the caller charges its own poll costs). *)

val rxq_len : t -> int -> int

val rxq_enable_intr : t -> int -> unit
(** Unmask the queue's interrupt.  If frames arrived while it was masked
    the coalescing decision re-runs immediately — the classic NAPI
    re-enable race is closed inside the NIC. *)

val rxq_disable_intr : t -> int -> unit

val rxq_stats : t -> int -> int * int * int * int
(** [(rx, drops, kicks, hwm)] counters of one queue. *)

val receive : t -> Packet.t -> unit
