(** Struct-of-arrays descriptor arena for in-flight received frames.

    A frame sitting in a receive-side queue is a *descriptor*: a slot
    across parallel columns (structured packet, cached wire footprint)
    identified by a generation-checked integer handle.  Queues carry the
    handles through flat int rings — no queue-cell allocation, no option
    boxing, no repeated [wire_bytes] traversal.

    Handle validity: a handle is valid from {!acquire} until the matching
    {!release}; the generation is bumped at release, so stale handles
    (double release, use-after-release) raise [Invalid_argument] instead
    of touching the slot's next occupant.  Steady-state acquire/release
    allocates nothing. *)

type t

type handle = int

val none : handle
(** Never valid. *)

val create : unit -> t

val acquire : t -> Packet.t -> handle
(** Admit a frame: store it (and its cached [Packet.wire_bytes]) in a
    recycled slot and return the slot's handle. *)

val pkt : t -> handle -> Packet.t
(** The admitted frame.  @raise Invalid_argument on a stale handle. *)

val wire_bytes : t -> handle -> int
(** Cached wire footprint — saves the per-read body traversal.
    @raise Invalid_argument on a stale handle. *)

val release : t -> handle -> unit
(** Return the slot to the free list and invalidate the handle.
    @raise Invalid_argument on a stale handle. *)

val valid : t -> handle -> bool

val live : t -> int
(** Descriptors currently held. *)

val peak : t -> int
(** High-water mark of {!live}. *)

val capacity : t -> int
(** Current column length (grows on demand, never shrinks). *)
