(** Mbuf pool model.

    BSD stores packets in fixed-size mbufs drawn from a global pool; the
    shared pool is one of the resources that traffic bursts for one socket
    can exhaust to the detriment of others (paper section 2.2).  We model
    the pool by counting: a packet of [n] bytes consumes
    [ceil (n / mbuf_size)] mbufs (minimum 1) until it is freed. *)

(** The pool; a packet of [n] bytes consumes [ceil (n / mbuf_size)]
    mbufs (minimum 1) until freed. *)

type t
val create : ?mbuf_size:int -> capacity:int -> unit -> t
val mbufs_for : t -> int -> int
val alloc : t -> bytes:int -> bool
(** Reserve mbufs for a packet; [false] (and a counted failure) when the
    pool cannot cover the request. *)

val free : t -> bytes:int -> unit
(** Release a packet's mbufs.  @raise Invalid_argument on over-free. *)

(** {1 Handle-based reservations}

    A reservation can be held as a generation-checked handle whose slot
    remembers the mbuf count, so the free site needs no byte
    recomputation and cannot drift from the alloc site.  Stale handles
    (double free, use-after-free) raise. *)

type handle = int

val no_handle : handle
(** Never valid. *)

val alloc_h : t -> bytes:int -> handle
(** {!alloc} returning a handle, or [no_handle] on pool exhaustion (the
    failure is counted). *)

val free_h : t -> handle -> unit
(** Release a handle's reservation and invalidate the handle.
    @raise Invalid_argument on a stale handle. *)

val valid_h : t -> handle -> bool

val in_use : t -> int
val peak : t -> int
val failures : t -> int
val capacity : t -> int
val available : t -> int
