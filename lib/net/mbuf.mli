(** Mbuf pool model.

    BSD stores packets in fixed-size mbufs drawn from a global pool; the
    shared pool is one of the resources that traffic bursts for one socket
    can exhaust to the detriment of others (paper section 2.2).  We model
    the pool by counting: a packet of [n] bytes consumes
    [ceil (n / mbuf_size)] mbufs (minimum 1) until it is freed. *)

(** The pool; a packet of [n] bytes consumes [ceil (n / mbuf_size)]
    mbufs (minimum 1) until freed. *)

type t = {
  capacity : int;
  mbuf_size : int;
  mutable in_use : int;
  mutable peak : int;
  mutable failures : int;
}
val create : ?mbuf_size:int -> capacity:int -> unit -> t
val mbufs_for : t -> int -> int
val alloc : t -> bytes:int -> bool
(** Reserve mbufs for a packet; [false] (and a counted failure) when the
    pool cannot cover the request. *)

val free : t -> bytes:int -> unit
(** Release a packet's mbufs.  @raise Invalid_argument on over-free. *)

val in_use : t -> int
val peak : t -> int
val failures : t -> int
val capacity : t -> int
val available : t -> int
