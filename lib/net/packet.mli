(** Packet representation.

    Packets are structured records in the simulator's hot path; {!Codec}
    provides the faithful byte-level encoding used by the wire-format tests
    and the byte-level demultiplexer.  Header sizes follow IPv4/UDP/TCP so
    that wire-time calculations are realistic. *)

type ip = int
(** IPv4 address as a non-negative int (printed dotted-quad). *)

type port = int
val pp_ip : Format.formatter -> ip -> unit
val ip_of_quad : int -> int -> int -> int -> int
(** [ip_of_quad a b c d] is the address [a.b.c.d].
    @raise Invalid_argument on out-of-range octets. *)

type tcp_flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
}
val flags :
  ?syn:bool ->
  ?ack:bool -> ?fin:bool -> ?rst:bool -> ?psh:bool -> unit -> tcp_flags
val pp_flags : Format.formatter -> tcp_flags -> unit
type udp_header = { usrc_port : port; udst_port : port; }
type tcp_header = {
  tsrc_port : port;
  tdst_port : port;
  seq : int;
  ack_no : int;
  flags : tcp_flags;
  window : int;
}
type icmp_kind = Echo_request | Echo_reply | Dest_unreachable | Ttl_exceeded
type ip_header = {
  src : ip;
  dst : ip;
  ident : int;
  ttl : int;
  csum : int;  (** sender-computed content checksum; see {!checksum} *)
}
type body =
    Udp of udp_header * Payload.t
  | Tcp of tcp_header * Payload.t
  | Icmp of icmp_kind * Payload.t
  | Fragment of fragment
and fragment = { whole : t; foff : int; flen : int; last : bool; }
and t = { ip : ip_header; body : body; }
(** A packet.  [Fragment] carries a slice of [whole]'s payload; only the
    first fragment ([foff = 0]) "contains" the transport header. *)

val ip_header_bytes : int
val udp_header_bytes : int
val tcp_header_bytes : int
val transport_header_bytes : t -> int
(** Transport-header bytes this packet carries on the wire. *)

val transport_header_bytes' : body -> int
val payload_length : t -> int
val wire_bytes : t -> int
(** Total IP datagram size on the wire (IP header + transport header +
    payload slice). *)

val next_ident : unit -> int

(** {1 Content checksum} *)

val checksum : t -> int
(** Recompute the content checksum (addresses, transport header fields,
    payload bytes) of a packet.  [ident] and [ttl] are excluded so that
    retransmits of the same content checksum identically.  A fragment's
    checksum is that of the whole datagram, checked after reassembly.
    Any single-field or single-byte change yields a different value (the
    mix multiplier is invertible mod 2^30). *)

val verify : t -> bool
(** [verify t] is [checksum t = t.ip.csum] — true unless the packet was
    corrupted in flight. *)

val corrupt : t -> at:int -> xor:int -> t option
(** [corrupt t ~at ~xor] flips one payload byte (position [at mod length],
    pattern [xor land 0xff], forced non-zero) while keeping the carried
    checksum, so {!verify} fails on the result.  Payload-less TCP segments
    get their [ack_no] corrupted instead; fragments are corrupted within
    their slice of the whole.  [None] when the packet has no corruptible
    content (e.g. an empty UDP datagram). *)

(** {1 Constructors} *)

val udp :
  src:ip ->
  dst:ip -> src_port:port -> dst_port:port -> Payload.t -> t
val tcp :
  src:ip ->
  dst:ip ->
  src_port:port ->
  dst_port:port ->
  seq:int ->
  ack_no:int -> flags:tcp_flags -> window:int -> Payload.t -> t
val icmp : src:ip -> dst:ip -> icmp_kind -> Payload.t -> t

val null : t
(** Statically-allocated placeholder: ring buffers and arenas fill empty
    slots with it so they never pin a real packet.  Never enters the data
    path. *)

(** {1 Accessors used by demultiplexing and protocol code} *)

val src : t -> ip
val dst : t -> ip
val is_multicast_addr : ip -> bool
(** Class-D (224.0.0.0/4) test. *)

val is_multicast : t -> bool
val ports : t -> (port * port) option
(** [(src_port, dst_port)] when the packet carries (or is the first
    fragment of) a transport header. *)

val ports' : t -> (port * port) option
val is_tcp : t -> bool
val is_udp : t -> bool
val is_fragment : t -> bool
val pp : Format.formatter -> t -> unit
