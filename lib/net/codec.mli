(** Byte-level IPv4/UDP/TCP encoding.

    This is the faithful wire format used by the byte-level demultiplexer
    (paper section 3.2 requires a self-contained classifier that can run in
    NI firmware or an interrupt handler) and by the codec round-trip tests.
    The simulator's hot path passes structured {!Packet.t} values instead —
    a property test asserts the two demultiplexer implementations agree.

    Restrictions: fragments are encoded with the standard IPv4
    offset/more-fragments machinery; TCP options are not modelled (the
    header is a fixed 20 bytes). *)

val ipproto_icmp : int
val ipproto_tcp : int
val ipproto_udp : int
val internet_checksum : bytes -> off:int -> len:int -> int
(** RFC 1071 checksum over [len] bytes at [off]; verifying a checksummed
    region yields 0. *)

val put16 : bytes -> int -> int -> unit
val put32 : bytes -> int -> int -> unit
val get16 : bytes -> int -> int
val get32 : bytes -> int -> int
val encode_ip_header :
  bytes ->
  proto:int ->
  ident:int ->
  frag_off:int ->
  more_frags:bool -> ttl:int -> src:int -> dst:int -> total_len:int -> unit
val encode : Packet.t -> bytes
(** Wire-format encoding (IPv4 + UDP/TCP/ICMP, fragments included). *)

type decoded = {
  d_src : int;
  d_dst : int;
  d_proto : int;
  d_ident : int;
  d_frag_off : int;
  d_more_frags : bool;
  d_ttl : int;
  d_src_port : int option;
  d_dst_port : int option;
  d_tcp_flags : Packet.tcp_flags option;
  d_seq : int option;
  d_ack : int option;
  d_window : int option;
  d_payload : Bytes.t;
}
exception Bad_packet of string
val decode : bytes -> decoded
(** Parse and verify a wire-format datagram.
    @raise Bad_packet on malformed input. *)
