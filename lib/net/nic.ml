(** Network interface model.

    The NIC is deliberately thin: it owns the transmit queue ("interface
    queue" in the paper's figures) and delivers received frames to a
    receive handler installed by the kernel architecture.  The handler runs
    in *NIC context* — an engine event with zero host-CPU cost.  What
    happens next is the architectural difference the paper studies:

    - BSD / Early-Demux / SOFT-LRP post hardware-interrupt work to the host
      CPU from the handler;
    - NI-LRP performs demultiplexing and early discard right in the handler
      (modelling the adaptor's embedded i960 CPU) and only interrupts the
      host when a receiver asked to be woken.

    Transmission models the 155 Mbit/s ATM link: per-packet serialisation
    delay with optional AAL5 cell quantisation, drained from a bounded
    interface queue. *)

open Lrp_engine

type stats = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable rx_packets : int;
  mutable tx_drops : int;  (* interface queue overflow *)
}

(* One receive queue of the (optional) queued-RX mode: a bounded ring the
   NIC DMAs frames into at zero host cost, with a maskable interrupt and
   packet-count/timer coalescing.  The host only pays CPU when the kernel's
   [rx_kick] raises an interrupt and when its poll loop dequeues. *)
type rxq = {
  q_id : int;
  ring : Packet.t array;        (* bounded; [Packet.null] marks empty slots *)
  mutable q_head : int;
  mutable q_count : int;
  mutable intr_on : bool;       (* interrupt unmasked (NAPI masks it) *)
  mutable timer : Lrp_engine.Engine.handle;
      (* armed coalesce timer; [Engine.none] when disarmed.  A bare
         handle, not an option: arming a timer per sub-threshold train
         must not allocate. *)
  mutable q_rx : int;           (* frames DMAed into this ring *)
  mutable q_drops : int;        (* ring-overflow drops (zero host cost) *)
  mutable q_kicks : int;        (* interrupts raised *)
  mutable q_hwm : int;          (* ring occupancy high-watermark *)
}

type t = {
  nic_name : string;
  engine : Engine.t;
  ip : Packet.ip;
  bandwidth : float;        (* bytes per microsecond *)
  cellify : bool;           (* AAL5: pad to 48-byte cells, 53 on the wire *)
  ifq_limit : int;
  (* Transmit descriptors live in a private SoA arena; the interface
     queue is a flat ring of arena handles sized exactly [ifq_limit]
     (transmit drops at the limit, so it cannot overflow).  The arena
     caches each frame's [Packet.wire_bytes] at enqueue, so the drain
     loop computes serialisation time without re-walking the body.
     Emptied slots are reset to [Parena.none]. *)
  txa : Parena.t;
  ifq : Parena.handle array;
  mutable ifq_head : int;
  mutable ifq_count : int;
  mutable tx_busy : bool;
  mutable rx_handler : Packet.t -> unit;
  mutable deliver : Packet.t -> unit;  (* wired to the fabric *)
  mutable tx_done : Packet.t Engine.target option;
      (* closure-free tx-complete event; registered by [create] *)
  mutable rxq_timer_tgt : rxq Engine.target option;
      (* closure-free coalesce-timer expiry; registered on first arm *)
  stats : stats;
  mutable tracer : Lrp_trace.Trace.t;  (* owning kernel's; disabled default *)
  (* queued-RX mode (NAPI-era back-ends); [||] = classic immediate mode *)
  mutable rxqs : rxq array;
  mutable rx_steer : Packet.t -> int;  (* frame -> queue index (RSS hash) *)
  mutable rx_kick : int -> unit;       (* raise the interrupt for a queue *)
  mutable coalesce_pkts : int;
  mutable coalesce_us : float;
}

let mbps_to_bytes_per_us mbps = mbps *. 1e6 /. 8. /. 1e6

let create engine ~name ~ip ?(bandwidth_mbps = 155.) ?(cellify = true)
    ?(ifq_limit = 64) () =
  { nic_name = name; engine; ip;
    bandwidth = mbps_to_bytes_per_us bandwidth_mbps; cellify; ifq_limit;
    txa = Parena.create ();
    ifq = Array.make (max 1 ifq_limit) Parena.none;
    ifq_head = 0; ifq_count = 0; tx_busy = false;
    rx_handler = (fun _ -> ());
    deliver = (fun _ -> ());
    tx_done = None;
    rxq_timer_tgt = None;
    stats = { tx_packets = 0; tx_bytes = 0; rx_packets = 0; tx_drops = 0 };
    tracer = Lrp_trace.Trace.null ();
    rxqs = [||]; rx_steer = (fun _ -> 0); rx_kick = (fun _ -> ());
    coalesce_pkts = 1; coalesce_us = 0. }

let name t = t.nic_name
let ip t = t.ip
let stats t = t.stats
let set_tracer t tr = t.tracer <- tr

let register_metrics t m ~prefix =
  let module Metrics = Lrp_trace.Metrics in
  let gauge suffix f = Metrics.gauge m (prefix ^ suffix) f in
  gauge ".tx_packets" (fun () -> float_of_int t.stats.tx_packets);
  gauge ".tx_bytes" (fun () -> float_of_int t.stats.tx_bytes);
  gauge ".rx_packets" (fun () -> float_of_int t.stats.rx_packets);
  gauge ".tx_drops" (fun () -> float_of_int t.stats.tx_drops);
  gauge ".ifq_len" (fun () -> float_of_int t.ifq_count);
  let sum_rxq f () =
    float_of_int (Array.fold_left (fun acc q -> acc + f q) 0 t.rxqs)
  in
  gauge ".rxq_drops" (sum_rxq (fun q -> q.q_drops));
  gauge ".rxq_kicks" (sum_rxq (fun q -> q.q_kicks))

let set_rx_handler t f = t.rx_handler <- f

let set_deliver t f = t.deliver <- f

(* Wire footprint of a datagram: AAL5 packs the PDU (plus an 8-byte
   trailer) into 48-byte cells, each costing 53 bytes of line time. *)
let footprint_of_bytes t b =
  if t.cellify then
    let cells = (b + 8 + 47) / 48 in
    cells * 53
  else b

let wire_footprint t pkt = footprint_of_bytes t (Packet.wire_bytes pkt)

let serialization_time t pkt = float_of_int (wire_footprint t pkt) /. t.bandwidth

let rec drain t =
  if t.ifq_count = 0 then t.tx_busy <- false
  else begin
    let h = t.ifq.(t.ifq_head) in
    t.ifq.(t.ifq_head) <- Parena.none;
    let head' = t.ifq_head + 1 in
    t.ifq_head <- (if head' >= Array.length t.ifq then 0 else head');
    t.ifq_count <- t.ifq_count - 1;
    t.tx_busy <- true;
    let pkt = Parena.pkt t.txa h in
    let bytes = Parena.wire_bytes t.txa h in
    t.stats.tx_packets <- t.stats.tx_packets + 1;
    t.stats.tx_bytes <- t.stats.tx_bytes + bytes;
    (* Staged deadline: the serialisation delay is computed per frame, and
       passing it as a [~delay] argument would box it — the staging cell
       keeps the whole transmit cycle at 0.0 minor words. *)
    (Engine.deadline_cell t.engine).(0) <-
      (Engine.clock_cell t.engine).(0)
      +. (float_of_int (footprint_of_bytes t bytes) /. t.bandwidth);
    ignore (Engine.schedule_to_staged t.engine (tx_target t) pkt);
    Parena.release t.txa h
  end

(* Tx-complete dispatcher, registered on the first transmission: deliver
   the frame to the fabric and start the next one.  One registration per
   NIC; each subsequent tx-done event is closure-free. *)
and tx_target t =
  match t.tx_done with
  | Some g -> g
  | None ->
      let g =
        (* alloc: cold — one-time dispatcher registration *)
        Engine.target t.engine (fun pkt ->
            t.deliver pkt;
            drain t)
      in
      (* alloc: cold — one-time dispatcher registration *)
      t.tx_done <- Some g;
      g

(* [transmit t pkt] is the driver's if_output: admit the frame into the
   TX arena, enqueue its handle and kick the transmitter.  Returns
   [false] on queue overflow (checked before acquiring, so a dropped
   frame never touches the arena). *)
let transmit t pkt =
  if t.ifq_count >= t.ifq_limit then begin
    t.stats.tx_drops <- t.stats.tx_drops + 1;
    false
  end
  else begin
    let cap = Array.length t.ifq in
    let tail = t.ifq_head + t.ifq_count in
    let tail = if tail >= cap then tail - cap else tail in
    t.ifq.(tail) <- Parena.acquire t.txa pkt;
    t.ifq_count <- t.ifq_count + 1;
    if not t.tx_busy then drain t;
    true
  end

let ifq_length t = t.ifq_count

let tx_arena t = t.txa

(* --- queued RX (NAPI-era back-ends) ------------------------------------ *)

let rx_queues t = Array.length t.rxqs

let configure_rx_queues t ~queues ~ring ~coalesce_pkts ~coalesce_us ~steer
    ~kick =
  let queues = max 1 queues and ring = max 1 ring in
  t.rxqs <-
    Array.init queues (fun q_id ->
        { q_id; ring = Array.make ring Packet.null; q_head = 0; q_count = 0;
          intr_on = true; timer = Engine.none; q_rx = 0; q_drops = 0;
          q_kicks = 0; q_hwm = 0 });
  t.rx_steer <- steer;
  t.rx_kick <- kick;
  t.coalesce_pkts <- max 1 coalesce_pkts;
  t.coalesce_us <- coalesce_us

(* Raise the queue's interrupt: disarm any pending coalesce timer and hand
   the queue id to the kernel.  The kernel's kick is expected to mask the
   interrupt ([rxq_disable_intr]) and schedule a poll. *)
let rxq_fire t (q : rxq) =
  if q.timer != Engine.none then begin
    Engine.cancel t.engine q.timer;
    q.timer <- Engine.none
  end;
  Lrp_trace.Trace.coalesce_fire t.tracer ~q:q.q_id ~pending:q.q_count;
  q.q_kicks <- q.q_kicks + 1;
  t.rx_kick q.q_id

(* The coalesce timer's expiry, as a registered dispatcher so arming a
   timer passes the queue itself instead of building a thunk. *)
let rxq_timer_target t =
  match t.rxq_timer_tgt with
  | Some g -> g
  | None ->
      let g =
        (* alloc: cold — one-time dispatcher registration *)
        Engine.target t.engine (fun (q : rxq) ->
            q.timer <- Engine.none;
            if q.intr_on && q.q_count > 0 then rxq_fire t q)
      in
      (* alloc: cold — one-time dispatcher registration *)
      t.rxq_timer_tgt <- Some g;
      g

(* Coalescing decision, taken whenever the ring is non-empty with the
   interrupt unmasked: fire once [coalesce_pkts] frames are buffered (or
   coalescing is off), otherwise make sure the hold-off timer is armed so
   a sub-threshold train still gets delivered within [coalesce_us]. *)
let rxq_consider t (q : rxq) =
  if q.intr_on && q.q_count > 0 then begin
    if q.q_count >= t.coalesce_pkts || t.coalesce_us <= 0. then rxq_fire t q
    else if q.timer == Engine.none then begin
      (* Stage the deadline through the engine's float cell and pass the
         queue to the registered expiry dispatcher: arming the hold-off
         timer allocates nothing (the old thunk + handle option cost 7
         words per sub-threshold train). *)
      (Engine.deadline_cell t.engine).(0) <-
        (Engine.clock_cell t.engine).(0) +. t.coalesce_us;
      q.timer <- Engine.schedule_to_staged t.engine (rxq_timer_target t) q
    end
  end

let rxq_enable_intr t qi =
  let q = t.rxqs.(qi) in
  q.intr_on <- true;
  (* The NAPI race close: frames that arrived while the interrupt was
     masked must still raise one. *)
  rxq_consider t q

let rxq_disable_intr t qi = t.rxqs.(qi).intr_on <- false

let rxq_len t qi = t.rxqs.(qi).q_count

let rxq_pop t qi =
  let q = t.rxqs.(qi) in
  if q.q_count = 0 then Packet.null
  else begin
    let pkt = q.ring.(q.q_head) in
    q.ring.(q.q_head) <- Packet.null;
    let head' = q.q_head + 1 in
    q.q_head <- (if head' >= Array.length q.ring then 0 else head');
    q.q_count <- q.q_count - 1;
    pkt
  end

let rxq_stats t qi =
  let q = t.rxqs.(qi) in
  (q.q_rx, q.q_drops, q.q_kicks, q.q_hwm)

let rxq_receive t pkt =
  let nq = Array.length t.rxqs in
  let qi = t.rx_steer pkt in
  let qi = if qi < 0 || qi >= nq then 0 else qi in
  let q = t.rxqs.(qi) in
  let cap = Array.length q.ring in
  if q.q_count >= cap then begin
    (* Ring overflow: the NIC sheds the frame with zero host CPU — the
       property that keeps NAPI out of livelock. *)
    q.q_drops <- q.q_drops + 1;
    Lrp_trace.Trace.ipq_drop t.tracer ~pkt:pkt.Packet.ip.Packet.ident
      ~qlen:q.q_count
  end
  else begin
    let tail = q.q_head + q.q_count in
    let tail = if tail >= cap then tail - cap else tail in
    q.ring.(tail) <- pkt;
    q.q_count <- q.q_count + 1;
    q.q_rx <- q.q_rx + 1;
    if q.q_count > q.q_hwm then q.q_hwm <- q.q_count;
    rxq_consider t q
  end

(* Called by the fabric when a frame reaches this NIC. *)
let receive t pkt =
  t.stats.rx_packets <- t.stats.rx_packets + 1;
  Lrp_trace.Trace.nic_rx t.tracer ~pkt:pkt.Packet.ip.Packet.ident
    ~bytes:(Packet.wire_bytes pkt);
  if Array.length t.rxqs > 0 then rxq_receive t pkt else t.rx_handler pkt
