(** Network interface model.

    The NIC is deliberately thin: it owns the transmit queue ("interface
    queue" in the paper's figures) and delivers received frames to a
    receive handler installed by the kernel architecture.  The handler runs
    in *NIC context* — an engine event with zero host-CPU cost.  What
    happens next is the architectural difference the paper studies:

    - BSD / Early-Demux / SOFT-LRP post hardware-interrupt work to the host
      CPU from the handler;
    - NI-LRP performs demultiplexing and early discard right in the handler
      (modelling the adaptor's embedded i960 CPU) and only interrupts the
      host when a receiver asked to be woken.

    Transmission models the 155 Mbit/s ATM link: per-packet serialisation
    delay with optional AAL5 cell quantisation, drained from a bounded
    interface queue. *)

open Lrp_engine

type stats = {
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable rx_packets : int;
  mutable tx_drops : int;  (* interface queue overflow *)
}

type t = {
  nic_name : string;
  engine : Engine.t;
  ip : Packet.ip;
  bandwidth : float;        (* bytes per microsecond *)
  cellify : bool;           (* AAL5: pad to 48-byte cells, 53 on the wire *)
  ifq_limit : int;
  (* Transmit descriptors live in a private SoA arena; the interface
     queue is a flat ring of arena handles sized exactly [ifq_limit]
     (transmit drops at the limit, so it cannot overflow).  The arena
     caches each frame's [Packet.wire_bytes] at enqueue, so the drain
     loop computes serialisation time without re-walking the body.
     Emptied slots are reset to [Parena.none]. *)
  txa : Parena.t;
  ifq : Parena.handle array;
  mutable ifq_head : int;
  mutable ifq_count : int;
  mutable tx_busy : bool;
  mutable rx_handler : Packet.t -> unit;
  mutable deliver : Packet.t -> unit;  (* wired to the fabric *)
  mutable tx_done : Packet.t Engine.target option;
      (* closure-free tx-complete event; registered by [create] *)
  stats : stats;
  mutable tracer : Lrp_trace.Trace.t;  (* owning kernel's; disabled default *)
}

let mbps_to_bytes_per_us mbps = mbps *. 1e6 /. 8. /. 1e6

let create engine ~name ~ip ?(bandwidth_mbps = 155.) ?(cellify = true)
    ?(ifq_limit = 64) () =
  { nic_name = name; engine; ip;
    bandwidth = mbps_to_bytes_per_us bandwidth_mbps; cellify; ifq_limit;
    txa = Parena.create ();
    ifq = Array.make (max 1 ifq_limit) Parena.none;
    ifq_head = 0; ifq_count = 0; tx_busy = false;
    rx_handler = (fun _ -> ());
    deliver = (fun _ -> ());
    tx_done = None;
    stats = { tx_packets = 0; tx_bytes = 0; rx_packets = 0; tx_drops = 0 };
    tracer = Lrp_trace.Trace.null () }

let name t = t.nic_name
let ip t = t.ip
let stats t = t.stats
let set_tracer t tr = t.tracer <- tr

let register_metrics t m ~prefix =
  let module Metrics = Lrp_trace.Metrics in
  let gauge suffix f = Metrics.gauge m (prefix ^ suffix) f in
  gauge ".tx_packets" (fun () -> float_of_int t.stats.tx_packets);
  gauge ".tx_bytes" (fun () -> float_of_int t.stats.tx_bytes);
  gauge ".rx_packets" (fun () -> float_of_int t.stats.rx_packets);
  gauge ".tx_drops" (fun () -> float_of_int t.stats.tx_drops);
  gauge ".ifq_len" (fun () -> float_of_int t.ifq_count)

let set_rx_handler t f = t.rx_handler <- f

let set_deliver t f = t.deliver <- f

(* Wire footprint of a datagram: AAL5 packs the PDU (plus an 8-byte
   trailer) into 48-byte cells, each costing 53 bytes of line time. *)
let footprint_of_bytes t b =
  if t.cellify then
    let cells = (b + 8 + 47) / 48 in
    cells * 53
  else b

let wire_footprint t pkt = footprint_of_bytes t (Packet.wire_bytes pkt)

let serialization_time t pkt = float_of_int (wire_footprint t pkt) /. t.bandwidth

let rec drain t =
  if t.ifq_count = 0 then t.tx_busy <- false
  else begin
    let h = t.ifq.(t.ifq_head) in
    t.ifq.(t.ifq_head) <- Parena.none;
    let head' = t.ifq_head + 1 in
    t.ifq_head <- (if head' >= Array.length t.ifq then 0 else head');
    t.ifq_count <- t.ifq_count - 1;
    t.tx_busy <- true;
    let pkt = Parena.pkt t.txa h in
    let bytes = Parena.wire_bytes t.txa h in
    t.stats.tx_packets <- t.stats.tx_packets + 1;
    t.stats.tx_bytes <- t.stats.tx_bytes + bytes;
    (* Staged deadline: the serialisation delay is computed per frame, and
       passing it as a [~delay] argument would box it — the staging cell
       keeps the whole transmit cycle at 0.0 minor words. *)
    (Engine.deadline_cell t.engine).(0) <-
      (Engine.clock_cell t.engine).(0)
      +. (float_of_int (footprint_of_bytes t bytes) /. t.bandwidth);
    ignore (Engine.schedule_to_staged t.engine (tx_target t) pkt);
    Parena.release t.txa h
  end

(* Tx-complete dispatcher, registered on the first transmission: deliver
   the frame to the fabric and start the next one.  One registration per
   NIC; each subsequent tx-done event is closure-free. *)
and tx_target t =
  match t.tx_done with
  | Some g -> g
  | None ->
      let g =
        Engine.target t.engine (fun pkt ->
            t.deliver pkt;
            drain t)
      in
      t.tx_done <- Some g;
      g

(* [transmit t pkt] is the driver's if_output: admit the frame into the
   TX arena, enqueue its handle and kick the transmitter.  Returns
   [false] on queue overflow (checked before acquiring, so a dropped
   frame never touches the arena). *)
let transmit t pkt =
  if t.ifq_count >= t.ifq_limit then begin
    t.stats.tx_drops <- t.stats.tx_drops + 1;
    false
  end
  else begin
    let cap = Array.length t.ifq in
    let tail = t.ifq_head + t.ifq_count in
    let tail = if tail >= cap then tail - cap else tail in
    t.ifq.(tail) <- Parena.acquire t.txa pkt;
    t.ifq_count <- t.ifq_count + 1;
    if not t.tx_busy then drain t;
    true
  end

let ifq_length t = t.ifq_count

let tx_arena t = t.txa

(* Called by the fabric when a frame reaches this NIC. *)
let receive t pkt =
  t.stats.rx_packets <- t.stats.rx_packets + 1;
  Lrp_trace.Trace.nic_rx t.tracer ~pkt:pkt.Packet.ip.Packet.ident
    ~bytes:(Packet.wire_bytes pkt);
  t.rx_handler pkt
