(** ATM-like switching fabric connecting the hosts' NICs.

    A single output-buffered switch: a frame transmitted by a NIC reaches
    the switch after the source link's propagation delay, waits for the
    destination port to be free (per-port serialisation at link bandwidth),
    and arrives at the destination NIC after the switch latency plus the
    destination link's propagation delay.  Output ports have a bounded
    amount of buffering; overruns drop frames, which is the
    congestion-related loss the paper observed above 19,000 pkts/s on its
    ATM network. *)

(** Per-link fault models for deterministic fault injection.  All
    stochastic decisions draw from a per-port stream split off the
    fabric's fault RNG, so sweeps stay byte-identical at any [--jobs]. *)
module Faults : sig
  type t = {
    loss : float;          (** uniform per-frame loss probability *)
    ge_loss_good : float;  (** Gilbert–Elliott loss probability, Good state *)
    ge_loss_bad : float;   (** loss probability, Bad state (bursty loss) *)
    ge_p_gb : float;       (** per-frame P(Good -> Bad) *)
    ge_p_bg : float;       (** per-frame P(Bad -> Good) *)
    dup : float;           (** per-frame duplication probability *)
    corrupt : float;       (** per-frame payload-corruption probability *)
    reorder : float;       (** per-frame probability of being held back *)
    reorder_span : int;    (** max displacement of a held frame, in frames *)
    jitter_us : float;     (** max uniform extra per-frame delay *)
  }

  val none : t
  (** All fault probabilities zero; behaves exactly like an unconfigured
      link (zero extra RNG draws). *)

  val make :
    ?loss:float ->
    ?ge_loss_good:float ->
    ?ge_loss_bad:float ->
    ?ge_p_gb:float ->
    ?ge_p_bg:float ->
    ?dup:float ->
    ?corrupt:float ->
    ?reorder:float -> ?reorder_span:int -> ?jitter_us:float -> unit -> t

  val validate : t -> unit
  (** @raise Invalid_argument when any probability is outside [[0,1]],
      [reorder_span < 1], or [jitter_us < 0] (NaN included). *)

  val is_none : t -> bool
end

type held = { hpkt : Packet.t; mutable countdown : int; mutable released : bool; }

type fault_state = {
  mutable cfg : Faults.t;
  frng : Lrp_engine.Rng.t;
  mutable ge_bad : bool;
  mutable fheld : held list;
  flush_tgt : held Lrp_engine.Engine.target;
}

type port = {
  nic : Nic.t;
  rx_tgt : Packet.t Lrp_engine.Engine.target;
      (** closure-free arrival event for this port *)
  mutable busy_until : Lrp_engine.Time.t;
  mutable rx_frames : int;
  mutable drops : int;
  mutable fstate : fault_state option;
}

(** Cross-cell uplink for sharded topologies ({!Lrp_engine.Shardsim}).

    A fabric with an uplink is one {e cell}'s leaf switch: frames whose
    destination resolves to another cell are serialised onto the uplink
    (own bandwidth and bounded buffer) and appended to a per-cell SoA
    {e outbox} instead of being delivered locally.  The coordinator
    drains outboxes at epoch barriers ({!drain_outbox}) and injects each
    frame into the destination cell ({!inject_remote}) at its ready
    time; [up_min_latency] lower-bounds send-to-effect distance and is
    the shard scheduler's lookahead window. *)
type uplink = {
  up_cell : int;                       (** this fabric's cell id *)
  up_resolve : Packet.ip -> int;       (** destination cell, -1 = unknown *)
  up_latency : int -> float;           (** cross-link latency to a cell *)
  up_min_latency : float;              (** infimum of [up_latency] *)
  up_bandwidth : float;                (** uplink rate, bytes/us *)
  up_buffer_us : float;                (** uplink queue bound, us of backlog *)
  mutable up_busy : Lrp_engine.Time.t;
  mutable ob_ready : float array;      (** outbox: arrival deadline *)
  mutable ob_dst : int array;          (** outbox: destination cell *)
  mutable ob_pkt : Packet.t array;
  mutable ob_len : int;
  mutable up_tx : int;
  mutable up_rx : int;
  mutable up_drops : int;
  inject_tgt : Packet.t Lrp_engine.Engine.target;
}

type uplink_stats = {
  up_sent : int;      (** frames serialised onto the uplink *)
  up_received : int;  (** frames injected from other cells *)
  up_dropped : int;   (** uplink buffer overruns *)
  up_backlog : int;   (** outbox entries awaiting a barrier drain *)
}
(** Cross-cell conservation (over all cells): sum of [up_sent] = sum of
    [up_received] + sum of [up_backlog].  Deliberately separate from
    {!fault_stats} so the per-fabric conservation law is unchanged. *)

type fault_stats = {
  offered : int;      (** frames presented to links (incl. pre-link drops) *)
  delivered : int;    (** frames scheduled into a destination NIC *)
  duplicated : int;   (** extra copies created by duplication faults *)
  fault_lost : int;   (** frames dropped by per-link loss (uniform + GE) *)
  corrupted : int;    (** frames altered in flight (still delivered) *)
  reordered : int;    (** frames held back for later release *)
  held_now : int;     (** frames currently in reorder buffers *)
}
(** Conservation: [offered + duplicated
    = delivered + total fabric drops + held_now]. *)

type t = {
  engine : Lrp_engine.Engine.t;
  bandwidth : float;
  prop_delay : float;
  switch_latency : float;
  buffer_us : float;
  ports : (Packet.ip, port) Hashtbl.t;
  mutable total_drops : int;
  mutable loss_rate : float;
  mutable loss_rng : Lrp_engine.Rng.t;
  mutable default_port : Packet.ip option;
  mutable uplink : uplink option;
  mutable offered : int;
  mutable delivered : int;
  mutable duplicated : int;
  mutable fault_lost : int;
  mutable corrupted : int;
  mutable reordered : int;
}
(** Build the switch; per-port bandwidth defaults to 155 Mbit/s with a
    bounded output buffer (overruns are congestion drops). *)

val create :
  Lrp_engine.Engine.t ->
  ?bandwidth_mbps:float ->
  ?prop_delay:float -> ?switch_latency:float -> ?buffer_us:float -> unit -> t
val attach : t -> Nic.t -> unit
(** Register a NIC's address on the switch and wire its transmit side.
    @raise Invalid_argument on duplicate addresses. *)

val forward : t -> Packet.t -> unit
val deliver_to :
  t -> port -> Packet.t -> now:Lrp_engine.Time.t -> unit

val set_loss_rate : t -> float -> unit
(** Uniform random frame loss across the whole fabric, for fault-injection
    tests.  @raise Invalid_argument outside [[0,1]]. *)

val set_link_faults : t -> ip:Packet.ip -> Faults.t -> unit
(** Configure link weather on the path {e towards} the port attached as
    [ip].  The first configuration splits the port's private fault RNG off
    the fabric's fault stream; reconfiguring keeps RNG and channel state.
    @raise Invalid_argument on an unknown port or invalid faults. *)

val set_faults : t -> Faults.t -> unit
(** [set_link_faults] on every attached port, in deterministic (sorted
    address) order. *)

val fault_stats : t -> fault_stats

val set_default_gateway : t -> ip:Packet.ip -> unit
(** Route frames for off-link destinations to the port attached as [ip]
    (a forwarding host).  @raise Invalid_argument if no such port. *)

val drops : t -> int
val port_drops : t -> Packet.ip -> int

val set_uplink :
  t ->
  cell:int ->
  resolve:(Packet.ip -> int) ->
  latency:(int -> float) ->
  min_latency:float ->
  ?bandwidth_mbps:float -> ?buffer_us:float -> unit -> unit
(** Make this fabric a cell's leaf switch.  [resolve ip] gives the owning
    cell of an address (negative = not in the topology; falls back to the
    default-gateway/drop path), [latency c] the cross-link latency to cell
    [c], and [min_latency] a positive lower bound on [latency] — the
    shard scheduler's lookahead.  Uplink bandwidth defaults to 622 Mbit/s
    (OC-12 spine vs the 155 Mbit/s OC-3 leaves).
    @raise Invalid_argument on a non-positive or non-finite
    [min_latency]. *)

val cell_id : t -> int
(** @raise Invalid_argument when no uplink is configured (also below). *)

val uplink_min_latency : t -> float

val drain_outbox :
  t ->
  (ready:float -> dst:int -> seq:int -> Packet.t -> unit) -> int
(** Visit and clear this cell's outbox in transmit order; [seq] is the
    per-source FIFO sequence number, [ready] the frame's arrival deadline
    on cell [dst].  Returns the number of entries drained.  Coordinator
    only, at an epoch barrier. *)

val inject_remote : t -> at:float -> Packet.t -> unit
(** Schedule a frame drained from another cell's outbox to arrive on this
    (the destination) cell at its ready time.  Coordinator only, at a
    barrier: requires [at >=] every cell clock (the lookahead
    invariant). *)

val uplink_stats : t -> uplink_stats
(** All-zero when no uplink is configured. *)

val make_nic :
  t ->
  name:string ->
  ip:Packet.ip ->
  ?bandwidth_mbps:float ->
  ?cellify:bool -> ?ifq_limit:int -> unit -> Nic.t
