(** ATM-like switching fabric connecting the hosts' NICs.

    A single output-buffered switch: a frame transmitted by a NIC reaches
    the switch after the source link's propagation delay, waits for the
    destination port to be free (per-port serialisation at link bandwidth),
    and arrives at the destination NIC after the switch latency plus the
    destination link's propagation delay.  Output ports have a bounded
    amount of buffering; overruns drop frames, which is the
    congestion-related loss the paper observed above 19,000 pkts/s on its
    ATM network. *)

(** Per-link fault models for deterministic fault injection.  All
    stochastic decisions draw from a per-port stream split off the
    fabric's fault RNG, so sweeps stay byte-identical at any [--jobs]. *)
module Faults : sig
  type t = {
    loss : float;          (** uniform per-frame loss probability *)
    ge_loss_good : float;  (** Gilbert–Elliott loss probability, Good state *)
    ge_loss_bad : float;   (** loss probability, Bad state (bursty loss) *)
    ge_p_gb : float;       (** per-frame P(Good -> Bad) *)
    ge_p_bg : float;       (** per-frame P(Bad -> Good) *)
    dup : float;           (** per-frame duplication probability *)
    corrupt : float;       (** per-frame payload-corruption probability *)
    reorder : float;       (** per-frame probability of being held back *)
    reorder_span : int;    (** max displacement of a held frame, in frames *)
    jitter_us : float;     (** max uniform extra per-frame delay *)
  }

  val none : t
  (** All fault probabilities zero; behaves exactly like an unconfigured
      link (zero extra RNG draws). *)

  val make :
    ?loss:float ->
    ?ge_loss_good:float ->
    ?ge_loss_bad:float ->
    ?ge_p_gb:float ->
    ?ge_p_bg:float ->
    ?dup:float ->
    ?corrupt:float ->
    ?reorder:float -> ?reorder_span:int -> ?jitter_us:float -> unit -> t

  val validate : t -> unit
  (** @raise Invalid_argument when any probability is outside [[0,1]],
      [reorder_span < 1], or [jitter_us < 0] (NaN included). *)

  val is_none : t -> bool
end

type held = { hpkt : Packet.t; mutable countdown : int; mutable released : bool; }

type fault_state = {
  mutable cfg : Faults.t;
  frng : Lrp_engine.Rng.t;
  mutable ge_bad : bool;
  mutable fheld : held list;
  flush_tgt : held Lrp_engine.Engine.target;
}

type port = {
  nic : Nic.t;
  rx_tgt : Packet.t Lrp_engine.Engine.target;
      (** closure-free arrival event for this port *)
  mutable busy_until : Lrp_engine.Time.t;
  mutable rx_frames : int;
  mutable drops : int;
  mutable fstate : fault_state option;
}

type fault_stats = {
  offered : int;      (** frames presented to links (incl. pre-link drops) *)
  delivered : int;    (** frames scheduled into a destination NIC *)
  duplicated : int;   (** extra copies created by duplication faults *)
  fault_lost : int;   (** frames dropped by per-link loss (uniform + GE) *)
  corrupted : int;    (** frames altered in flight (still delivered) *)
  reordered : int;    (** frames held back for later release *)
  held_now : int;     (** frames currently in reorder buffers *)
}
(** Conservation: [offered + duplicated
    = delivered + total fabric drops + held_now]. *)

type t = {
  engine : Lrp_engine.Engine.t;
  bandwidth : float;
  prop_delay : float;
  switch_latency : float;
  buffer_us : float;
  ports : (Packet.ip, port) Hashtbl.t;
  mutable total_drops : int;
  mutable loss_rate : float;
  mutable loss_rng : Lrp_engine.Rng.t;
  mutable default_port : Packet.ip option;
  mutable offered : int;
  mutable delivered : int;
  mutable duplicated : int;
  mutable fault_lost : int;
  mutable corrupted : int;
  mutable reordered : int;
}
(** Build the switch; per-port bandwidth defaults to 155 Mbit/s with a
    bounded output buffer (overruns are congestion drops). *)

val create :
  Lrp_engine.Engine.t ->
  ?bandwidth_mbps:float ->
  ?prop_delay:float -> ?switch_latency:float -> ?buffer_us:float -> unit -> t
val attach : t -> Nic.t -> unit
(** Register a NIC's address on the switch and wire its transmit side.
    @raise Invalid_argument on duplicate addresses. *)

val forward : t -> Packet.t -> unit
val deliver_to :
  t -> port -> Packet.t -> now:Lrp_engine.Time.t -> unit

val set_loss_rate : t -> float -> unit
(** Uniform random frame loss across the whole fabric, for fault-injection
    tests.  @raise Invalid_argument outside [[0,1]]. *)

val set_link_faults : t -> ip:Packet.ip -> Faults.t -> unit
(** Configure link weather on the path {e towards} the port attached as
    [ip].  The first configuration splits the port's private fault RNG off
    the fabric's fault stream; reconfiguring keeps RNG and channel state.
    @raise Invalid_argument on an unknown port or invalid faults. *)

val set_faults : t -> Faults.t -> unit
(** [set_link_faults] on every attached port, in deterministic (sorted
    address) order. *)

val fault_stats : t -> fault_stats

val set_default_gateway : t -> ip:Packet.ip -> unit
(** Route frames for off-link destinations to the port attached as [ip]
    (a forwarding host).  @raise Invalid_argument if no such port. *)

val drops : t -> int
val port_drops : t -> Packet.ip -> int
(** Build a NIC and [attach] it in one step. *)

val make_nic :
  t ->
  name:string ->
  ip:Packet.ip ->
  ?bandwidth_mbps:float ->
  ?cellify:bool -> ?ifq_limit:int -> unit -> Nic.t
