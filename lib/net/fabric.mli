(** ATM-like switching fabric connecting the hosts' NICs.

    A single output-buffered switch: a frame transmitted by a NIC reaches
    the switch after the source link's propagation delay, waits for the
    destination port to be free (per-port serialisation at link bandwidth),
    and arrives at the destination NIC after the switch latency plus the
    destination link's propagation delay.  Output ports have a bounded
    amount of buffering; overruns drop frames, which is the
    congestion-related loss the paper observed above 19,000 pkts/s on its
    ATM network. *)

type port = {
  nic : Nic.t;
  rx_tgt : Packet.t Lrp_engine.Engine.target;
      (** closure-free arrival event for this port *)
  mutable busy_until : Lrp_engine.Time.t;
  mutable rx_frames : int;
  mutable drops : int;
}
type t = {
  engine : Lrp_engine.Engine.t;
  bandwidth : float;
  prop_delay : float;
  switch_latency : float;
  buffer_us : float;
  ports : (Packet.ip, port) Hashtbl.t;
  mutable total_drops : int;
  mutable loss_rate : float;
  mutable loss_rng : Lrp_engine.Rng.t;
  mutable default_port : Packet.ip option;
}
(** Build the switch; per-port bandwidth defaults to 155 Mbit/s with a
    bounded output buffer (overruns are congestion drops). *)

val create :
  Lrp_engine.Engine.t ->
  ?bandwidth_mbps:float ->
  ?prop_delay:float -> ?switch_latency:float -> ?buffer_us:float -> unit -> t
val attach : t -> Nic.t -> unit
(** Register a NIC's address on the switch and wire its transmit side.
    @raise Invalid_argument on duplicate addresses. *)

val forward : t -> Packet.t -> unit
val deliver_to :
  t -> port -> Packet.t -> now:Lrp_engine.Time.t -> unit
val set_loss_rate : t -> float -> unit
(** Random frame loss for fault-injection tests. *)

val set_default_gateway : t -> ip:Packet.ip -> unit
(** Route frames for off-link destinations to the port attached as [ip]
    (a forwarding host).  @raise Invalid_argument if no such port. *)

val drops : t -> int
val port_drops : t -> Packet.ip -> int
(** Build a NIC and [attach] it in one step. *)

val make_nic :
  t ->
  name:string ->
  ip:Packet.ip ->
  ?bandwidth_mbps:float ->
  ?cellify:bool -> ?ifq_limit:int -> unit -> Nic.t
