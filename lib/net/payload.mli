(** Packet payloads.

    Most simulated traffic only needs a length, but integrity tests (and the
    TCP stream reassembly tests) want real bytes.  A payload is therefore
    either synthetic (length + tag) or concrete bytes. *)

type t = Synthetic of { len : int; tag : int; } | Bytes of Bytes.t
(** Either a synthetic payload (length + tag; cheap, used by bulk traffic)
    or concrete bytes (integrity tests).  The two views agree:
    [to_bytes] of a synthetic payload is a deterministic fill. *)

val synthetic : ?tag:int -> int -> t
val of_string : string -> t
val of_bytes : Bytes.t -> t
val length : t -> int
val tag : t -> int option
val to_bytes : t -> Bytes.t

val byte_sum : t -> int
(** Sum of the payload's byte values; O(1) for synthetic payloads.  Used
    by {!Packet.checksum} so corruption of any single byte is
    detectable. *)

val sub : t -> int -> int -> t
(** [sub t off len] is the slice used by IP fragmentation and TCP
    segmentation.  @raise Invalid_argument when out of range. *)

val equal : t -> t -> bool
val concat : t list -> t
(** Reassemble slices; consecutive synthetic slices glue back without
    materialising bytes. *)

val pp : Format.formatter -> t -> unit
