(** Figure 5: HTTP server throughput under a SYN flood.

    Eight closed-loop HTTP clients saturate an NCSA-style process-per-
    request HTTP server while a third machine floods a dummy port on the
    server with TCP connection-establishment requests from spoofed
    addresses.  TIME_WAIT is shortened to 500 ms, as in the paper, to keep
    the PCB tables out of the picture.

    Paper shapes: BSD's HTTP throughput collapses steeply, entering
    livelock near 10,000 SYN/s (softint SYN processing starves the server
    processes; beyond ~6,400 SYN/s the shared IP queue also drops real HTTP
    traffic).  SOFT-LRP declines only with the demultiplexing overhead and
    still serves ~50 % of its maximum at 20,000 SYN/s; dummy SYNs die
    cheaply on the (backlog-disabled) listen channel and never cost HTTP
    traffic a packet. *)

type point = {
  syn_rate : float;
  http_per_sec : float;
  failed : int;
  syn_discards : int;
}
type row = { system : Common.system; points : point list; }
val measure :
  ?seed:int -> Common.system -> syn_rate:float -> duration:float -> point
val default_rates : float list
val run :
  ?quick:bool -> ?rates:float list -> ?jobs:int -> ?seed:int -> unit ->
  row list
(** [jobs] fans the (system, rate) grid out over that many domains;
    results are identical for any [jobs]. *)

val print : row list -> unit
