(** Table 2: synthetic RPC server workload.

    Measures throughput and fairness without overload: a memory-bound
    worker (11.5 s of CPU) completes alongside two RPC server processes
    driven at their maximal rate.  Paper results: the worker finishes in
    49.7/38.7/34.6 s (Fast case, BSD/SOFT-LRP/NI-LRP) while the RPC rate is
    equal or better under LRP; the worker's CPU share is 23-26 % under BSD
    versus 29-33 % (near the ideal 1/3) under LRP, showing BSD's
    mis-accounting penalises the compute-bound process. *)

open Lrp_engine

open Lrp_workload

type row = {
  system : Common.system;
  cls : Rpc.cls;
  worker_elapsed_s : float;
  rpcs_per_sec : float;
  worker_share : float;
}

let measure ?(seed = Common.default_seed) sys cls ~worker_cpu =
  let cfg = Common.config_of_system sys in
  let w = World.make ~seed () in
  let client = World.add_host w ~name:"client" cfg in
  let server = World.add_host w ~name:"server" cfg in
  let r = Rpc.run w ~server ~client ~cls ~worker_cpu () in
  { system = sys; cls;
    worker_elapsed_s = Time.to_sec (Rpc.worker_elapsed r);
    rpcs_per_sec = Rpc.rpc_rate r;
    worker_share = Rpc.worker_share r }

let run ?(quick = false) ?(jobs = 1) ?(seed = Common.default_seed) () =
  let worker_cpu = if quick then Time.sec 1.5 else Time.sec 11.5 in
  let classes = if quick then [ Rpc.Fast ] else [ Rpc.Fast; Rpc.Medium; Rpc.Slow ] in
  let tasks =
    List.concat_map
      (fun cls -> List.map (fun sys -> (cls, sys)) Common.table2_systems)
      classes
  in
  Common.sweep ~jobs
    (fun i (cls, sys) ->
      measure ~seed:(Common.job_seed ~seed ~index:i) sys cls ~worker_cpu)
    tasks

let paper =
  (* (class, system) -> (worker elapsed s, RPCs/sec) *)
  [ ((Rpc.Fast, Common.Bsd), (49.7, 3120.));
    ((Rpc.Fast, Common.Soft_lrp), (38.7, 3133.));
    ((Rpc.Fast, Common.Ni_lrp), (34.6, 3410.));
    ((Rpc.Medium, Common.Bsd), (47.1, 2712.));
    ((Rpc.Medium, Common.Soft_lrp), (37.9, 2759.));
    ((Rpc.Medium, Common.Ni_lrp), (34.1, 2783.));
    ((Rpc.Slow, Common.Bsd), (43.9, 2045.));
    ((Rpc.Slow, Common.Soft_lrp), (38.5, 2134.));
    ((Rpc.Slow, Common.Ni_lrp), (35.7, 2208.)) ]

let print rows =
  Common.print_title "Table 2: Synthetic RPC Server Workload (measured | paper)";
  Common.printf "  %-8s %-12s %20s %22s %14s\n" "RPC" "System"
    "Worker elapsed (s)" "Server (RPCs/sec)" "Worker share";
  List.iter
    (fun r ->
      let p_elapsed, p_rate =
        match List.assoc_opt (r.cls, r.system) paper with
        | Some v -> v
        | None -> (nan, nan)
      in
      Common.printf "  %-8s %-12s %10.1f | %6.1f %12.0f | %6.0f %13.0f%%\n"
        (Rpc.cls_name r.cls)
        (Common.system_name r.system)
        r.worker_elapsed_s p_elapsed r.rpcs_per_sec p_rate
        (100. *. r.worker_share))
    rows;
  Common.printf
    "\n  Paper: worker share 23-26%% under BSD vs 29-33%% under LRP\n\
    \  (ideal 1/3); LRP completes the worker 20-30%% sooner at equal or\n\
    \  better RPC rates.\n"
