(** CPU-accounting and overload-detector experiment.

    Two tables built on the per-cycle ledger ({!Lrp_sim.Ledger}) and the
    livelock detector ({!Lrp_check.Overload}), making the paper's
    resource-accounting argument (section 2.2) directly measurable:

    {b Table A — who gets charged.}  A UDP blast lands on a server that
    runs a receive-and-discard sink plus a nice +20 compute-bound victim
    process.  Under the eager architectures the per-packet protocol work
    runs at interrupt level and the tick accounting charges it to
    whatever process happened to be running — overwhelmingly the victim
    spinner — while under NI-LRP/SOFT-LRP the same work runs in
    receiver context and is charged, as [proto] cycles, to the
    receiver-side processes serving the flow.  The table shows each
    architecture's interrupt-level total, the victim's
    "charged-but-not-mine" cycles, and the receiver-context protocol
    cycles that replace them under LRP.

    {b Table B — when the detector speaks.}  The same workload across
    offered rates, BSD vs SOFT-LRP, with the detector attached.  Both
    systems eventually report {e overload} (delivery collapses below
    50 % of offered load — for LRP that is early discard doing its
    job), but only BSD crosses the {e livelock} threshold, where
    interrupt processing also monopolises the CPU. *)

open Lrp_engine
open Lrp_kernel
open Lrp_sim
open Lrp_workload
module Overload = Lrp_check.Overload

(* --- Table A: ledger attribution per architecture --------------------- *)

type arch_row = {
  system : Common.system;
  offered : int;          (* frames that reached the server's receive path *)
  delivered : int;        (* datagrams handed to the sink *)
  intr_total : float;     (* ledger Intr + Soft, us *)
  mischarged : float;
      (* interrupt cycles billed to some process's account — the paper's
         "inappropriate resource accounting", summed over processes *)
  victim_mis : float;     (* of which: the nice +20 spinner's share, us *)
  receiver_proto : float; (* receiver-context protocol cycles, us *)
  app_total : float;      (* application-class cycles, us *)
}

let blast_port = 9000

(* One server under blast with a sink and a nice +20 victim spinner;
   returns the server kernel, the victim pid and a stop closure. *)
let blast_world ?(seed = Common.default_seed) sys ~rate ~duration =
  let cfg = Common.config_of_system sys in
  let w = World.make ~seed () in
  let server = World.add_host w ~name:"B" cfg in
  let blaster = World.add_host w ~name:"C" cfg in
  let victim =
    Spinner.start (Kernel.cpu server) ~nice:20 ~name:"victim" ()
  in
  let sink = Blast.start_sink server ~port:blast_port () in
  ignore
    (Blast.start_source (World.engine w) (Kernel.nic blaster)
       ~src:(Kernel.ip_address blaster)
       ~dst:(Kernel.ip_address server, blast_port)
       ~rate ~size:14 ~until:duration ());
  (w, server, victim, sink)

let measure_arch ?(seed = Common.default_seed) sys ~rate ~duration =
  let w, server, victim, sink = blast_world ~seed sys ~rate ~duration in
  World.run w ~until:duration;
  let led = Cpu.ledger (Kernel.cpu server) in
  let mischarged, victim_mis =
    List.fold_left
      (fun (total, vict) (r : Ledger.row) ->
        if r.Ledger.pid < 0 then (total, vict) (* idle context: no account *)
        else
          let m = Ledger.misaccounted r in
          ( total +. m,
            if r.Ledger.pid = victim.Proc.pid then vict +. m else vict ))
      (0., 0.) (Ledger.rows led)
  in
  let s = Kernel.stats server in
  { system = sys;
    offered = s.Kernel.rx_frames;
    delivered = sink.Blast.received;
    intr_total = Ledger.total led Ledger.Intr +. Ledger.total led Ledger.Soft;
    mischarged; victim_mis;
    receiver_proto = Ledger.total led Ledger.Proto;
    app_total = Ledger.total led Ledger.App }

(* --- Table B: detector verdicts across offered rates ------------------ *)

type det_row = {
  d_system : Common.system;
  d_rate : float;
  d_offered : int;
  d_delivered : int;
  d_report : Overload.report;
}

let measure_detector ?(seed = Common.default_seed) sys ~rate ~duration =
  let w, server, _victim, sink = blast_world ~seed sys ~rate ~duration in
  let det = Overload.attach server in
  World.run w ~until:duration;
  Overload.detach det;
  let s = Kernel.stats server in
  { d_system = sys; d_rate = rate;
    d_offered = s.Kernel.rx_frames;
    d_delivered = sink.Blast.received;
    d_report = Overload.report det }

(* --- sweep ------------------------------------------------------------ *)

type result = { arch_rows : arch_row list; det_rows : det_row list }

let arch_systems = Common.fig3_systems (* Bsd, Ni_lrp, Soft_lrp, Early_demux *)
let det_systems = Common.fig5_systems (* Bsd, Soft_lrp *)
let default_det_rates = [ 4_000.; 14_000.; 20_000. ]

let run ?(quick = false) ?(jobs = 1) ?(seed = Common.default_seed) () =
  let duration = if quick then Time.ms 500. else Time.sec 1. in
  let arch_rate = 8_000. in
  let det_rates =
    if quick then [ 4_000.; 20_000. ] else default_det_rates
  in
  let det_tasks =
    List.concat_map
      (fun sys -> List.map (fun r -> (sys, r)) det_rates)
      det_systems
  in
  (* One flat sweep: arch tasks first, detector tasks after. *)
  let n_arch = List.length arch_systems in
  let results =
    Common.sweep ~jobs
      (fun i task ->
        let seed = Common.job_seed ~seed ~index:i in
        match task with
        | `Arch sys -> `Arch (measure_arch ~seed sys ~rate:arch_rate ~duration)
        | `Det (sys, r) -> `Det (measure_detector ~seed sys ~rate:r ~duration))
      (List.map (fun s -> `Arch s) arch_systems
       @ List.map (fun t -> `Det t) det_tasks)
  in
  let arch_rows =
    List.filteri (fun i _ -> i < n_arch) results
    |> List.map (function `Arch r -> r | `Det _ -> assert false)
  in
  let det_rows =
    List.filteri (fun i _ -> i >= n_arch) results
    |> List.map (function `Det r -> r | `Arch _ -> assert false)
  in
  { arch_rows; det_rows }

(* --- rendering -------------------------------------------------------- *)

let print { arch_rows; det_rows } =
  Common.print_title
    "Accounting: who pays for receive processing (8k pkts/s blast)";
  Common.printf "  %-12s %9s %9s %11s %11s %11s %11s %10s\n" "system"
    "offered" "delivered" "intr (us)" "mischarged" "victim-mis" "rx-proto"
    "app (us)";
  List.iter
    (fun r ->
      Common.printf "  %-12s %9d %9d %11.0f %11.0f %11.0f %11.0f %10.0f\n"
        (Common.system_name r.system)
        r.offered r.delivered r.intr_total r.mischarged r.victim_mis
        r.receiver_proto r.app_total)
    arch_rows;
  Common.printf
    "\n  mischarged: interrupt-level cycles billed to some process's\n\
    \  account (victim-mis: the nice +20 spinner's share; under eager\n\
    \  saturation the starved spinner rarely holds the CPU, so the bill\n\
    \  lands on whichever process does — here the sink).  LRP moves the\n\
    \  same work into receiver context (rx-proto), charged to the\n\
    \  processes that consume the data.\n";
  Common.print_title "Overload detector: BSD vs SOFT-LRP across offered load";
  Common.printf "  %-12s %10s %10s %10s %9s %9s %9s %11s\n" "system"
    "rate/s" "offered" "delivered" "overload" "livelock" "starved"
    "intr-share";
  List.iter
    (fun r ->
      let rep = r.d_report in
      Common.printf "  %-12s %10.0f %10d %10d %9d %9d %9d %11.2f\n"
        (Common.system_name r.d_system)
        r.d_rate r.d_offered r.d_delivered rep.Overload.overload_windows
        rep.Overload.livelock_windows rep.Overload.starved_windows
        rep.Overload.peak_intr_share)
    det_rows;
  Common.printf
    "\n  Both systems shed load under saturation (overload windows), but\n\
    \  only BSD's interrupt share crosses the livelock threshold: LRP\n\
    \  discards early, before host cycles are invested.\n"
