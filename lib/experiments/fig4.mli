(** Figure 4: latency under concurrent load.

    A client ping-pongs a short UDP message with a server process on
    machine B while machine C blasts UDP packets at a separate blast-server
    process on B.  Both machines in the ping-pong exchange run a nice +20
    compute-bound background process (the paper's workaround for a SunOS
    idle-loop anomaly; here it keeps the comparison honest the same way).

    Paper shapes: BSD's RTT rises steeply (hardware+software interrupt per
    background packet, ~60 us) with a scheduling-induced hump peaking
    ~1020 us near 6-7k pkts/s, and cannot be measured beyond 15k pkts/s
    because probes die at the shared IP queue; SOFT-LRP rises gently
    (~25 us interrupt incl. demux, hump ≤ ~750 us); NI-LRP is nearly
    flat.  LRP never loses a probe (traffic separation). *)

type point = {
  bg_rate : float;   (* background blast, pkts/s *)
  rtt_us : float;    (* median probe RTT *)
  rtt_mean : float;
  rtt_p99 : float;
  probes : int;
  lost : int;        (* probes lost (BSD's IP-queue drops) *)
}
type row = { system : Common.system; points : point list; }
val measure :
  ?seed:int -> Common.system ->
  bg_rate:float -> duration:Lrp_engine.Time.t -> point
val default_rates : float list
val run :
  ?quick:bool -> ?rates:float list -> ?jobs:int -> ?seed:int -> unit ->
  row list
(** [jobs] fans the (system, rate) grid out over that many domains;
    results are identical for any [jobs]. *)

val print : row list -> unit
