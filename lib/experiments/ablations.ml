(** Ablations of LRP's individual design choices.

    The paper argues (section 3) that early demultiplexing and lazy
    processing are {e both} necessary, and that the combination of early
    discard and receiver-priority accounting is what yields stability and
    fairness.  Each ablation here removes one ingredient:

    - {!discard}: LRP with effectively unbounded channel queues — overload
      is absorbed into memory instead of shed at the NI, so queues (and
      delivery staleness) grow without bound while throughput is unchanged;
    - {!accounting}: LRP whose APP threads charge themselves instead of the
      owning process — the network-intensive process effectively receives
      two scheduler shares and a compute-bound bystander is squeezed;
    - {!demux_cost}: SOFT-LRP's residual vulnerability — its livelock is
      postponed, not eliminated, and arrives sooner the more each
      interrupt-time classification costs. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_kernel
open Lrp_workload

(* --- early discard ----------------------------------------------------- *)

type discard_row = {
  bounded : bool;
  delivered : float;       (* pkts/s *)
  discards : int;
  backlog : int;           (* packets stranded in channels at the end *)
  queue_delay_ms : float;  (* rough staleness: backlog / delivery rate *)
}

let discard ?(rate = 20_000.) ?(duration = Time.sec 2.) ?(jobs = 1)
    ?(seed = Common.default_seed) () =
  let run seed bounded =
    let cfg = Kernel.default_config Kernel.Ni_lrp in
    let cfg =
      (* "Unbounded" has to stay finite: channels preallocate their ring,
         so give the ablated kernel room for every frame the source can
         offer rather than [max_int]. *)
      if bounded then cfg
      else { cfg with Kernel.channel_limit = 1 lsl 20 }
    in
    let w, client, server = World.pair ~seed ~cfg () in
    let sink = Blast.start_sink server ~port:9000 () in
    ignore
      (Blast.start_source (World.engine w) (Kernel.nic client)
         ~src:(Kernel.ip_address client)
         ~dst:(Kernel.ip_address server, 9000)
         ~rate ~size:14 ~until:duration ());
    World.run w ~until:duration;
    let delivered = float_of_int sink.Blast.received *. 1e6 /. duration in
    let backlog =
      List.fold_left
        (fun acc ch -> acc + Lrp_core.Channel.length ch)
        0 (Kernel.channels server)
    in
    { bounded; delivered; discards = Kernel.early_discards server; backlog;
      queue_delay_ms =
        (if delivered > 0. then float_of_int backlog /. delivered *. 1e3
         else 0.) }
  in
  Common.sweep ~jobs
    (fun i bounded -> run (Common.job_seed ~seed ~index:i) bounded)
    [ true; false ]

let print_discard rows =
  Common.print_title "Ablation: early packet discard (NI-LRP, 20k pkts/s)";
  Common.printf "  %-22s %12s %10s %10s %12s\n" "channels" "delivered/s"
    "discards" "backlog" "staleness";
  List.iter
    (fun r ->
      Common.printf "  %-22s %12.0f %10d %10d %9.0f ms\n"
        (if r.bounded then "bounded (LRP)" else "unbounded (ablated)")
        r.delivered r.discards r.backlog r.queue_delay_ms)
    rows;
  Common.printf
    "\n  Without early discard, overload is absorbed into queue memory:\n\
    \  every delivered packet is seconds stale and buffering grows without\n\
    \  bound; with discard, excess load is dropped at the NI for free.\n"

(* --- APP accounting ----------------------------------------------------- *)

type accounting_row = {
  fair : bool;
  hog_progress : float;        (* fraction of the CPU the bystander got *)
  receiver_share : float;      (* process + its APP thread, actual CPU *)
  receiver_billed : float;     (* what the scheduler charged the receiver *)
}

let accounting ?(duration = Time.sec 8.) ?(jobs = 1)
    ?(seed = Common.default_seed) () =
  let run seed fair =
    (* A small MSS and a cheap copy make per-segment protocol processing
       (the APP thread's work) dominate, so the accounting policy is what
       decides who gets billed.  The channel is deepened so a full window
       of small segments fits. *)
    let costs = { Cost.default with Cost.copy_per_byte = 0.01 } in
    let cfg = Kernel.default_config ~costs Kernel.Soft_lrp in
    let cfg =
      { cfg with Kernel.fair_app_accounting = fair; Kernel.mss = 512;
        Kernel.channel_limit = 256 }
    in
    let w, client, server = World.pair ~seed ~cfg () in
    (* A compute-bound bystander... *)
    let hog = Spinner.start (Kernel.cpu server) ~nice:0 ~name:"hog" () in
    (* ... and a process sinking a fast TCP stream. *)
    let receiver = ref None in
    ignore
      (Cpu.spawn (Kernel.cpu server) ~name:"netsink" (fun self ->
           receiver := Some self;
           let lsock = Api.socket_stream server in
           Api.tcp_listen server ~self lsock ~port:5001 ~backlog:4;
           let conn = Api.tcp_accept server ~self lsock in
           let rec drain () =
             match Api.tcp_recv server ~self conn ~max:65_536 with
             | `Data _ -> drain ()
             | `Eof -> ()
           in
           drain ()));
    ignore
      (Cpu.spawn (Kernel.cpu client) ~name:"tx" (fun self ->
           let sock = Api.socket_stream client in
           match
             Api.tcp_connect client ~self sock
               ~remote:(Kernel.ip_address server, 5001)
           with
           | `Refused -> ()
           | `Ok ->
               let rec pump () =
                 match Api.tcp_send client ~self sock (Payload.synthetic 65_536) with
                 | `Ok -> pump ()
                 | `Closed -> ()
               in
               pump ()));
    World.run w ~until:duration;
    let apps_cpu =
      let acc = ref 0. in
      Cpu.iter_procs (Kernel.cpu server) (fun p ->
          if String.length p.Proc.name >= 4 && String.sub p.Proc.name 0 4 = "app-"
          then acc := !acc +. p.Proc.cpu_time);
      !acc
    in
    let rx_cpu =
      match !receiver with Some p -> p.Proc.cpu_time | None -> 0.
    in
    (* What the decay-usage scheduler believes the receiver consumed: its
       charged ticks (one tick = 10 ms).  Under fair accounting this
       includes the APP thread's protocol processing; ablated, that work
       is billed to the (anonymous) APP thread instead. *)
    let billed =
      match !receiver with
      | Some p ->
          float_of_int (Lrp_sched.Sched.ticks_charged p.Proc.thread)
          *. Lrp_sched.Sched.tick_interval /. duration
      | None -> 0.
    in
    { fair;
      hog_progress = hog.Proc.cpu_time /. duration;
      receiver_share = (rx_cpu +. apps_cpu) /. duration;
      receiver_billed = billed }
  in
  Common.sweep ~jobs
    (fun i fair -> run (Common.job_seed ~seed ~index:i) fair)
    [ true; false ]

let print_accounting rows =
  Common.print_title
    "Ablation: APP-thread accounting (TCP sink vs compute-bound bystander)";
  Common.printf "  %-26s %14s %16s %16s\n" "accounting" "bystander CPU"
    "sink used CPU" "sink billed";
  List.iter
    (fun r ->
      Common.printf "  %-26s %13.1f%% %15.1f%% %15.1f%%\n"
        (if r.fair then "charged to receiver (LRP)" else "self-charged (ablated)")
        (100. *. r.hog_progress)
        (100. *. r.receiver_share)
        (100. *. r.receiver_billed))
    rows;
  Common.printf
    "\n  The receiving pipeline (process + APP thread) consumes the same\n\
    \  CPU either way, but with the ablated accounting the scheduler bills\n\
    \  the receiver for almost none of it: its priority never decays no\n\
    \  matter how much traffic it causes -- the paper's unfairness.\n"

(* --- soft-demux cost sensitivity ----------------------------------------- *)

type demux_row = { demux_us : float; delivered : float }

let demux_cost ?(rate = 20_000.) ?(duration = Time.sec 1.5)
    ?(costs = [ 4.; 8.; 16.; 32. ]) ?(jobs = 1)
    ?(seed = Common.default_seed) () =
  Common.sweep ~jobs
    (fun i demux_us ->
      let costs = { Cost.default with Cost.demux = demux_us } in
      let cfg = Kernel.default_config ~costs Kernel.Soft_lrp in
      let w, client, server =
        World.pair ~seed:(Common.job_seed ~seed ~index:i) ~cfg ()
      in
      let sink = Blast.start_sink server ~port:9000 () in
      ignore
        (Blast.start_source (World.engine w) (Kernel.nic client)
           ~src:(Kernel.ip_address client)
           ~dst:(Kernel.ip_address server, 9000)
           ~rate ~size:14 ~until:duration ());
      World.run w ~until:duration;
      { demux_us;
        delivered = float_of_int sink.Blast.received *. 1e6 /. duration })
    costs

let print_demux_cost rows =
  Common.print_title
    "Ablation: soft-demux cost sensitivity (SOFT-LRP at 20k pkts/s)";
  Common.printf "  %-12s %12s\n" "demux (us)" "delivered/s";
  List.iter
    (fun r -> Common.printf "  %-12.0f %12.0f\n" r.demux_us r.delivered)
    rows;
  Common.printf
    "\n  Soft demultiplexing postpones livelock rather than eliminating it\n\
    \  (paper section 4.2): throughput under overload falls roughly as\n\
    \  1 - rate * demux_cost, and an expensive classifier brings the\n\
    \  collapse within reach.\n"
