(** Ablations of LRP's individual design choices.

    The paper argues (section 3) that early demultiplexing and lazy
    processing are {e both} necessary, and that the combination of early
    discard and receiver-priority accounting is what yields stability and
    fairness.  Each ablation here removes one ingredient:

    - {!discard}: LRP with effectively unbounded channel queues — overload
      is absorbed into memory instead of shed at the NI, so queues (and
      delivery staleness) grow without bound while throughput is unchanged;
    - {!accounting}: LRP whose APP threads charge themselves instead of the
      owning process — the network-intensive process effectively receives
      two scheduler shares and a compute-bound bystander is squeezed;
    - {!demux_cost}: SOFT-LRP's residual vulnerability — its livelock is
      postponed, not eliminated, and arrives sooner the more each
      interrupt-time classification costs. *)

type discard_row = {
  bounded : bool;
  delivered : float;
  discards : int;
  backlog : int;
  queue_delay_ms : float;
}
val discard :
  ?rate:float -> ?duration:Lrp_engine.Time.t -> ?jobs:int -> ?seed:int ->
  unit -> discard_row list
val print_discard : discard_row list -> unit
type accounting_row = {
  fair : bool;
  hog_progress : float;
  receiver_share : float;
  receiver_billed : float;
}
val accounting :
  ?duration:Lrp_engine.Time.t -> ?jobs:int -> ?seed:int -> unit ->
  accounting_row list
val print_accounting : accounting_row list -> unit
type demux_row = { demux_us : float; delivered : float; }
val demux_cost :
  ?rate:float ->
  ?duration:Lrp_engine.Time.t -> ?costs:float list -> ?jobs:int ->
  ?seed:int -> unit -> demux_row list
val print_demux_cost : demux_row list -> unit
