(** Table 2: synthetic RPC server workload.

    Measures throughput and fairness without overload: a memory-bound
    worker (11.5 s of CPU) completes alongside two RPC server processes
    driven at their maximal rate.  Paper results: the worker finishes in
    49.7/38.7/34.6 s (Fast case, BSD/SOFT-LRP/NI-LRP) while the RPC rate is
    equal or better under LRP; the worker's CPU share is 23-26 % under BSD
    versus 29-33 % (near the ideal 1/3) under LRP, showing BSD's
    mis-accounting penalises the compute-bound process. *)

type row = {
  system : Common.system;
  cls : Lrp_workload.Rpc.cls;
  worker_elapsed_s : float;
  rpcs_per_sec : float;
  worker_share : float;
}
val measure :
  ?seed:int -> Common.system ->
  Lrp_workload.Rpc.cls -> worker_cpu:float -> row
val run : ?quick:bool -> ?jobs:int -> ?seed:int -> unit -> row list
(** [jobs] fans the (class, system) grid out over that many domains;
    results are identical for any [jobs]. *)

val paper :
  ((Lrp_workload.Rpc.cls * Common.system) * (float * float))
  list
val print : row list -> unit
