(** Figure 3: UDP throughput versus offered load (the livelock experiment).

    A client blasts 14-byte UDP datagrams at a fixed rate at a server
    process that receives and discards them.  The paper's shapes:

    - 4.4BSD peaks (~7,400 pkts/s) and then collapses toward livelock as
      the offered rate grows (~0 around 20,000 pkts/s);
    - NI-LRP climbs to its maximum (~11,000 pkts/s) and stays flat;
    - SOFT-LRP peaks in between (~9,800 pkts/s) and declines only slowly
      (the soft-demux cost per packet);
    - Early-Demux is stable but reaches only 40-65 % of SOFT-LRP's
      throughput in the overload region.

    The companion MLFRR measurement reports the maximum loss-free receive
    rate (paper: SOFT-LRP 9,210 vs BSD 6,380, +44 %). *)

open Lrp_engine
open Lrp_kernel
open Lrp_workload

type point = {
  offered : float;    (* pkts/s *)
  delivered : float;  (* pkts/s consumed by the server process *)
  discards : int;     (* early discards (LRP) *)
  ipq_drops : int;    (* BSD shared-queue drops *)
}

type row = { system : Common.system; points : point list }

(* One run: blast at [rate] for [duration]; delivered rate measured over
   the steady-state window (skipping warmup).  Returns the server kernel
   too so [measure_traced] can pull its tracer and metrics. *)
let measure_on ?(seed = Common.default_seed) ?(trace = false) sys ~rate
    ~duration =
  let cfg = Common.config_of_system sys in
  let w, client, server = World.pair ~seed ~cfg () in
  if trace then Kernel.set_tracing server true;
  let sink = Blast.start_sink server ~port:9000 () in
  let warmup = Time.ms 200. in
  ignore
    (Blast.start_source (World.engine w) (Kernel.nic client)
       ~src:(Kernel.ip_address client)
       ~dst:(Kernel.ip_address server, 9000)
       ~rate ~size:14 ~until:(warmup +. duration) ());
  (* Count deliveries only after warmup. *)
  World.run w ~until:warmup;
  let base = sink.Blast.received in
  World.run w ~until:(warmup +. duration);
  let delivered =
    float_of_int (sink.Blast.received - base) *. 1e6 /. duration
  in
  let st = Kernel.stats server in
  ({ offered = rate; delivered;
     discards = Kernel.early_discards server;
     ipq_drops = st.Kernel.ipq_drops },
   server)

let measure ?seed sys ~rate ~duration =
  fst (measure_on ?seed sys ~rate ~duration)

(* [measure] with the server kernel's structured tracer enabled for the
   whole run: returns the datapoint plus the tracer (ring buffer of
   packet-lifecycle events, ready for {!Lrp_trace.Trace.write_file} or
   {!Lrp_trace.Trace.Report.stage_latency}) and a metrics snapshot. *)
let measure_traced ?seed sys ~rate ~duration =
  let point, server = measure_on ?seed ~trace:true sys ~rate ~duration in
  (point, Kernel.tracer server,
   Lrp_trace.Metrics.snapshot (Kernel.metrics server))

let default_rates =
  [ 1_000.; 2_000.; 4_000.; 6_000.; 8_000.; 10_000.; 12_000.; 14_000.;
    16_000.; 18_000.; 20_000.; 22_000.; 25_000. ]

let run ?(quick = false) ?(rates = default_rates) ?(jobs = 1)
    ?(seed = Common.default_seed) () =
  let duration = if quick then Time.ms 400. else Time.sec 2. in
  let rates =
    if quick then [ 2_000.; 6_000.; 8_000.; 10_000.; 14_000.; 20_000. ] else rates
  in
  (* Every (system, rate) point is an independent simulation: fan the
     whole grid out as one flat job list. *)
  let tasks =
    List.concat_map
      (fun sys -> List.map (fun rate -> (sys, rate)) rates)
      Common.fig3_systems
  in
  let points =
    Common.sweep ~jobs
      (fun i (sys, rate) ->
        measure ~seed:(Common.job_seed ~seed ~index:i) sys ~rate ~duration)
      tasks
  in
  let tagged = List.map2 (fun (sys, _) p -> (sys, p)) tasks points in
  List.map
    (fun (sys, points) -> { system = sys; points })
    (Common.regroup Common.fig3_systems tagged)

(* Maximum Loss-Free Receive Rate: the highest offered rate at which
   (nearly) every packet is delivered.  Binary search over offered rates.
   The probes of one search are inherently sequential (each bound depends
   on the last verdict); [mlfrr_all] parallelises across systems. *)
let mlfrr ?(quick = false) ?(seed = Common.default_seed) sys =
  let duration = if quick then Time.ms 300. else Time.sec 1. in
  let probes = ref 0 in
  let loss_free rate =
    let probe_seed = Common.job_seed ~seed ~index:!probes in
    incr probes;
    let cfg = Common.config_of_system sys in
    let w, client, server = World.pair ~seed:probe_seed ~cfg () in
    let sink = Blast.start_sink server ~port:9000 () in
    let src =
      Blast.start_source (World.engine w) (Kernel.nic client)
        ~src:(Kernel.ip_address client)
        ~dst:(Kernel.ip_address server, 9000)
        ~rate ~size:14 ~until:duration ()
    in
    (* Drain time after the source stops. *)
    World.run w ~until:(duration +. Time.ms 100.);
    sink.Blast.received >= src.Blast.sent * 999 / 1000
  in
  let rec search lo hi =
    if hi -. lo <= 250. then lo
    else
      let mid = (lo +. hi) /. 2. in
      if loss_free mid then search mid hi else search lo mid
  in
  search 1_000. 25_000.

(* One binary search per system, searches running on separate domains. *)
let mlfrr_all ?(quick = false) ?(jobs = 1) ?(seed = Common.default_seed)
    systems =
  Common.sweep ~jobs
    (fun i sys -> (sys, mlfrr ~quick ~seed:(Common.job_seed ~seed ~index:i) sys))
    systems

let print rows =
  Common.print_title "Figure 3: Throughput versus offered load (14-byte UDP)";
  List.iter
    (fun r ->
      Common.printf "\n  [%s]\n" (Common.system_name r.system);
      Common.print_series ~xlabel:"offered(p/s)" ~ylabel:"delivered"
        ~ymax:12_000.
        (List.map (fun p -> (p.offered, p.delivered)) r.points))
    rows;
  Common.printf
    "\n  Paper shapes: BSD peaks ~7400 then collapses toward 0 by ~20k;\n\
    \  NI-LRP flat at ~11k; SOFT-LRP ~9.8k with a slow decline;\n\
    \  Early-Demux stable but 40-65%% of SOFT-LRP under overload.\n"

let print_mlfrr results =
  Common.print_title "MLFRR: maximum loss-free receive rate (pkts/s)";
  List.iter
    (fun (sys, rate) ->
      Common.printf "  %-12s %8.0f\n" (Common.system_name sys) rate)
    results;
  Common.printf "  Paper: 4.4BSD 6380, SOFT-LRP 9210 (+44%%).\n"
