(** Table 1: baseline round-trip latency and throughput.

    Demonstrates that LRP's overload robustness costs nothing at low load:
    RTT and UDP/TCP throughput are on par with 4.4BSD, and the SunOS/Fore
    profile trails on latency and UDP bandwidth.

    Paper values (SunOS/Fore, 4.4BSD, NI-LRP, SOFT-LRP):
    RTT 1006/855/840/864 us; UDP 64/82/92/86 Mbit/s; TCP 63/69/67/66. *)

type row = {
  system : Common.system;
  rtt_us : float;
  udp_mbps : float;
  tcp_mbps : float;
}
val measure_rtt : ?seed:int -> Common.system -> rounds:int -> float
val measure_udp : ?seed:int -> Common.system -> total:int -> float
val measure_tcp : ?seed:int -> Common.system -> total:int -> float
val run : ?quick:bool -> ?jobs:int -> ?seed:int -> unit -> row list
(** [jobs] fans the (system, metric) cells out over that many domains;
    results are identical for any [jobs]. *)

val paper : (Common.system * (float * float * float)) list
val print : row list -> unit
