(** CPU-accounting ledger and overload-detector experiment.

    Table A attributes every simulated cycle of a blast-loaded server
    via {!Lrp_sim.Ledger}, contrasting BSD's interrupt-level charging
    (billed to an innocent nice +20 victim) with LRP's receiver-context
    protocol charging.  Table B runs the {!Lrp_check.Overload} detector
    across offered rates: both architectures report overload when they
    shed load, but only the eager ones cross the livelock threshold. *)

type arch_row = {
  system : Common.system;
  offered : int;
  delivered : int;
  intr_total : float;
  mischarged : float;
      (** interrupt cycles billed to some process's account, us *)
  victim_mis : float;
      (** of which: the nice +20 victim spinner's share, us *)
  receiver_proto : float;
  app_total : float;
}

type det_row = {
  d_system : Common.system;
  d_rate : float;
  d_offered : int;
  d_delivered : int;
  d_report : Lrp_check.Overload.report;
}

type result = { arch_rows : arch_row list; det_rows : det_row list }

val measure_arch :
  ?seed:int -> Common.system -> rate:float -> duration:float -> arch_row

val measure_detector :
  ?seed:int -> Common.system -> rate:float -> duration:float -> det_row

val run : ?quick:bool -> ?jobs:int -> ?seed:int -> unit -> result

val print : result -> unit
