(** Figure 4: latency under concurrent load.

    A client ping-pongs a short UDP message with a server process on
    machine B while machine C blasts UDP packets at a separate blast-server
    process on B.  Both machines in the ping-pong exchange run a nice +20
    compute-bound background process (the paper's workaround for a SunOS
    idle-loop anomaly; here it keeps the comparison honest the same way).

    Paper shapes: BSD's RTT rises steeply (hardware+software interrupt per
    background packet, ~60 us) with a scheduling-induced hump peaking
    ~1020 us near 6-7k pkts/s, and cannot be measured beyond 15k pkts/s
    because probes die at the shared IP queue; SOFT-LRP rises gently
    (~25 us interrupt incl. demux, hump ≤ ~750 us); NI-LRP is nearly
    flat.  LRP never loses a probe (traffic separation). *)

open Lrp_engine
open Lrp_kernel
open Lrp_workload

type point = {
  bg_rate : float;      (* background blast, pkts/s *)
  rtt_us : float;       (* median probe RTT *)
  rtt_mean : float;
  rtt_p99 : float;
  probes : int;
  lost : int;
}

type row = { system : Common.system; points : point list }

let measure ?(seed = Common.default_seed) sys ~bg_rate ~duration =
  let cfg = Common.config_of_system sys in
  let w = World.make ~seed () in
  let client = World.add_host w ~name:"A" cfg in
  let server = World.add_host w ~name:"B" cfg in
  let blaster = World.add_host w ~name:"C" cfg in
  (* Ping-pong pair with background spinners on both machines. *)
  ignore (Spinner.start (Kernel.cpu client) ~nice:20 ());
  ignore (Spinner.start (Kernel.cpu server) ~nice:20 ());
  ignore (Pingpong.start_server server ~port:7);
  ignore (Blast.start_sink server ~port:9000 ());
  if bg_rate > 0. then
    ignore
      (Blast.start_source (World.engine w) (Kernel.nic blaster)
         ~src:(Kernel.ip_address blaster)
         ~dst:(Kernel.ip_address server, 9000)
         ~rate:bg_rate ~size:14 ~until:duration ());
  let probe =
    Pingpong.start_probe client ~dst:(Kernel.ip_address server, 7)
      ~until:duration ()
  in
  World.run w ~until:duration;
  { bg_rate;
    rtt_us = Lrp_stats.Stats.Samples.median probe.Pingpong.probe_rtts;
    rtt_mean = Lrp_stats.Stats.Samples.mean probe.Pingpong.probe_rtts;
    rtt_p99 = Lrp_stats.Stats.Samples.percentile probe.Pingpong.probe_rtts 99.;
    probes = probe.Pingpong.probe_sent;
    lost = probe.Pingpong.probe_lost }

let default_rates =
  [ 0.; 1_000.; 2_000.; 4_000.; 6_000.; 8_000.; 10_000.; 12_000.; 14_000.;
    16_000.; 18_000.; 20_000. ]

let run ?(quick = false) ?(rates = default_rates) ?(jobs = 1)
    ?(seed = Common.default_seed) () =
  let duration = if quick then Time.ms 500. else Time.sec 2. in
  let rates = if quick then [ 0.; 4_000.; 8_000.; 14_000. ] else rates in
  let tasks =
    List.concat_map
      (fun sys -> List.map (fun r -> (sys, r)) rates)
      Common.fig4_systems
  in
  let points =
    Common.sweep ~jobs
      (fun i (sys, r) ->
        measure ~seed:(Common.job_seed ~seed ~index:i) sys ~bg_rate:r ~duration)
      tasks
  in
  let tagged = List.map2 (fun (sys, _) p -> (sys, p)) tasks points in
  List.map
    (fun (sys, points) -> { system = sys; points })
    (Common.regroup Common.fig4_systems tagged)

let print rows =
  Common.print_title "Figure 4: Latency with concurrent load (UDP ping-pong RTT)";
  List.iter
    (fun r ->
      Common.printf "\n  [%s]\n" (Common.system_name r.system);
      Common.printf "  %-12s %-10s %-10s %-8s %s\n" "bg (pkts/s)" "RTT med"
        "RTT p99" "lost" "";
      List.iter
        (fun p ->
          if p.rtt_us = 0. && p.lost > 0 then
            Common.printf "  %-12.0f %-10s %-10s %-8d (unmeasurable: all probes lost)\n"
              p.bg_rate "-" "-" p.lost
          else begin
            let bar = int_of_float (p.rtt_us /. 1_500. *. 50.) in
            Common.printf "  %-12.0f %-10.0f %-10.0f %-8d %s\n" p.bg_rate
              p.rtt_us p.rtt_p99 p.lost
              (String.make (max 0 (min 60 bar)) '#')
          end)
        r.points)
    rows;
  Common.printf
    "\n  Paper shapes: BSD rises steeply (peak ~1020us, unmeasurable >15k);\n\
    \  SOFT-LRP gentle rise (peak ~750us); NI-LRP nearly flat; LRP loses\n\
    \  no probes (traffic separation).\n"
