(** Cluster experiment: spine-leaf rack topology under blast load,
    sharded across domains — the scale-out companion to the paper's
    single-switch experiments.  The digest is byte-identical at any
    [?shards]; bench and CI gate on it. *)

type result = {
  racks : int;
  hosts_per_rack : int;
  shards : int;
  sent : int;            (** frames injected by all sources *)
  delivered : int;       (** datagrams received by all sinks *)
  cross_frames : int;    (** frames that crossed the spine *)
  epochs : int;
  events : int;          (** engine events executed, all cells *)
  critical_events : int; (** critical path of the epoch schedule *)
  digest : int64;        (** FNV-1a over report + merged recorder dump *)
  dump : string;         (** merged slot-0 recorder dump, one per rack *)
}

val fnv1a64 : string -> int64

val default_racks : int
val default_hosts_per_rack : int

val run :
  ?seed:int ->
  ?racks:int ->
  ?hosts_per_rack:int ->
  ?shards:int ->
  ?rate:float -> ?duration:float -> ?trace:bool -> unit -> result
(** Defaults: 8 racks x 8 SOFT-LRP hosts, 200 ms, each host sinking on
    port 9000 and sourcing one intra-rack (at [rate], default 2000 pkt/s)
    and one cross-rack (at [rate/2]) blast stream; recorders on each
    rack's first host. *)

val report : result -> string
(** Shard-invariant text (no wall time, no shard count): [--out] files
    from different shard counts diff clean. *)

val speedup_available : result -> float
(** [events / critical_events] — the parallel speedup the epoch schedule
    exposes given enough cores; deterministic and machine-independent. *)

val print : result -> unit
(** [report] plus the run-dependent extras (shards, critical path,
    available speedup). *)
