(** Cluster experiment: a spine-leaf rack topology under blast load,
    sharded across domains.

    Not a figure from the paper — the scale-out companion to its
    single-switch experiments: 64 SOFT-LRP hosts in 8 racks, each host
    sinking UDP blasts while sourcing an intra-rack stream and a
    cross-rack stream through the spine.  The run is coordinated by
    {!Lrp_engine.Shardsim}; its digest (deterministic report plus the
    merged per-rack recorder dump) is byte-identical at any [?shards],
    which the bench and CI gates assert. *)

open Lrp_engine
open Lrp_net
open Lrp_kernel
open Lrp_workload

type result = {
  racks : int;
  hosts_per_rack : int;
  shards : int;
  sent : int;            (* frames injected by all sources *)
  delivered : int;       (* datagrams received by all sinks *)
  cross_frames : int;    (* frames that crossed the spine *)
  epochs : int;
  events : int;          (* engine events executed, all cells *)
  critical_events : int; (* critical path of the epoch schedule *)
  digest : int64;        (* FNV-1a over report + merged recorder dump *)
  dump : string;         (* merged slot-0 recorder dump, one per rack *)
}

(* FNV-1a 64-bit over a string; plain and dependency-free, good enough to
   compare two runs of the same binary byte-for-byte. *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let default_racks = 8
let default_hosts_per_rack = 8
let blast_port = 9000

let run ?(seed = Common.default_seed) ?(racks = default_racks)
    ?(hosts_per_rack = default_hosts_per_rack) ?(shards = 1)
    ?(rate = 2000.) ?(duration = Time.ms 200.) ?(trace = true) () =
  let cfg = Common.config_of_system Common.Soft_lrp in
  let topo =
    Topology.spine_leaf ~seed ~racks ~hosts_per_rack ~cfg ()
  in
  let sinks = ref [] in
  let sources = ref [] in
  for r = 0 to racks - 1 do
    Topology.on_cell topo r (fun (cell : Topology.cell) ->
        (* Recorders on the first host of each rack only: full rings on
           all 64 hosts would be ~128 MB for no extra coverage. *)
        if trace then Kernel.set_tracing cell.kernels.(0) true;
        Array.iter
          (fun k -> sinks := Blast.start_sink k ~port:blast_port () :: !sinks)
          cell.kernels;
        for s = 0 to hosts_per_rack - 1 do
          let k = cell.kernels.(s) in
          let src = Kernel.ip_address k in
          (* Intra-rack stream to the next slot: stays on the leaf, keeps
             per-epoch event density up. *)
          sources :=
            Blast.start_source cell.engine (Kernel.nic k) ~src
              ~dst:
                ( Topology.host_ip ~rack:r ~slot:((s + 1) mod hosts_per_rack),
                  blast_port )
              ~rate ~size:14 ~until:duration ()
            :: !sources;
          (* Cross-rack stream to the same slot one rack over: exercises
             the spine and the barrier exchange. *)
          sources :=
            Blast.start_source cell.engine (Kernel.nic k) ~src
              ~dst:(Topology.host_ip ~rack:((r + 1) mod racks) ~slot:s,
                    blast_port)
              ~rate:(rate /. 2.) ~size:14 ~until:duration ()
            :: !sources
        done)
  done;
  let sim = Topology.run ~shards topo ~until:duration in
  let sent =
    List.fold_left (fun a (s : Blast.source) -> a + s.Blast.sent) 0 !sources
  in
  let delivered =
    List.fold_left (fun a (s : Blast.sink) -> a + s.Blast.received) 0 !sinks
  in
  let cross_frames =
    Array.fold_left
      (fun a (c : Topology.cell) ->
        a + (Fabric.uplink_stats c.fabric).Fabric.up_sent)
      0 (Topology.cells topo)
  in
  let dump =
    if not trace then ""
    else begin
      let streams =
        Array.to_list
          (Array.map
             (fun (c : Topology.cell) ->
               (c.Topology.cell_id, Kernel.tracer c.Topology.kernels.(0)))
             (Topology.cells topo))
      in
      let buf = Buffer.create 4096 in
      let fmt = Format.formatter_of_buffer buf in
      List.iter
        (fun (stream, ts, seq, ev) ->
          Format.fprintf fmt "r%d %12.1f [%6d] %a@." stream ts seq
            Lrp_trace.Trace.pp_event ev)
        (Lrp_trace.Trace.merged_events streams);
      Format.pp_print_flush fmt ();
      Buffer.contents buf
    end
  in
  let report_text =
    Printf.sprintf
      "cluster racks=%d hosts/rack=%d sent=%d delivered=%d cross=%d \
       epochs=%d events=%d\n"
      racks hosts_per_rack sent delivered cross_frames (Shardsim.epochs sim)
      (Shardsim.events_total sim)
  in
  let digest = fnv1a64 (report_text ^ dump) in
  { racks; hosts_per_rack; shards; sent; delivered; cross_frames;
    epochs = Shardsim.epochs sim; events = Shardsim.events_total sim;
    critical_events = Shardsim.events_critical sim; digest; dump }

(* Deterministic report: everything shard-invariant (no wall time, no
   shard count), so `--out` files from different shard counts diff
   clean. *)
let report r =
  Printf.sprintf
    "cluster: racks=%d hosts/rack=%d\n\
     sent=%d delivered=%d cross_frames=%d\n\
     epochs=%d events=%d\n\
     digest=%Lx\n"
    r.racks r.hosts_per_rack r.sent r.delivered r.cross_frames r.epochs
    r.events r.digest

let speedup_available r =
  if r.critical_events = 0 then 1.
  else float_of_int r.events /. float_of_int r.critical_events

let print r =
  Common.printf "%s" (report r);
  Common.printf "shards=%d critical_events=%d speedup_available=%.2f\n"
    r.shards r.critical_events (speedup_available r)
