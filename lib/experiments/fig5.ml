(** Figure 5: HTTP server throughput under a SYN flood.

    Eight closed-loop HTTP clients saturate an NCSA-style process-per-
    request HTTP server while a third machine floods a dummy port on the
    server with TCP connection-establishment requests from spoofed
    addresses.  TIME_WAIT is shortened to 500 ms, as in the paper, to keep
    the PCB tables out of the picture.

    Paper shapes: BSD's HTTP throughput collapses steeply, entering
    livelock near 10,000 SYN/s (softint SYN processing starves the server
    processes; beyond ~6,400 SYN/s the shared IP queue also drops real HTTP
    traffic).  SOFT-LRP declines only with the demultiplexing overhead and
    still serves ~50 % of its maximum at 20,000 SYN/s; dummy SYNs die
    cheaply on the (backlog-disabled) listen channel and never cost HTTP
    traffic a packet. *)

open Lrp_engine
open Lrp_kernel
open Lrp_workload

type point = {
  syn_rate : float;
  http_per_sec : float;
  failed : int;
  syn_discards : int;  (* early discards at the dummy listener's channel *)
}

type row = { system : Common.system; points : point list }

let measure ?(seed = Common.default_seed) sys ~syn_rate ~duration =
  let tune cfg = { cfg with Kernel.time_wait = Time.ms 500. } in
  let cfg = Common.config_of_system ~tune sys in
  let w = World.make ~seed () in
  let server = World.add_host w ~name:"server" cfg in
  let clients = World.add_host w ~name:"clients" cfg in
  let attacker = World.add_host w ~name:"attacker" cfg in
  ignore (Http.start_server server ~port:80 ());
  (* The dummy server: listens on port 99, never accepts. *)
  ignore
    (Lrp_sim.Cpu.spawn (Kernel.cpu server) ~name:"dummy" (fun self ->
         let lsock = Api.socket_stream server in
         Api.tcp_listen server ~self lsock ~port:99 ~backlog:5;
         Lrp_sim.Proc.block (Lrp_sim.Proc.waitq "dummy.forever")));
  let stats =
    Http.start_clients clients ~dst:(Kernel.ip_address server, 80) ~n:8 ()
  in
  if syn_rate > 0. then
    ignore
      (Synflood.start (World.engine w) (Kernel.nic attacker)
         ~dst:(Kernel.ip_address server, 99)
         ~rate:syn_rate ~until:(Time.sec 1_000.) ());
  (* Warm up, then measure over the steady window. *)
  let warmup = Time.sec 2. in
  World.run w ~until:warmup;
  let base = stats.Http.completed in
  World.run w ~until:(warmup +. duration);
  let served = stats.Http.completed - base in
  let syn_discards =
    List.fold_left
      (fun acc ch ->
        acc + Lrp_core.Channel.discarded ch
        + Lrp_core.Channel.discarded_disabled ch)
      0 (Kernel.channels server)
  in
  { syn_rate;
    http_per_sec = float_of_int served *. 1e6 /. duration;
    failed = stats.Http.failed;
    syn_discards }

let default_rates =
  [ 0.; 1_000.; 2_000.; 4_000.; 6_000.; 8_000.; 10_000.; 12_000.; 14_000.;
    16_000.; 20_000. ]

let run ?(quick = false) ?(rates = default_rates) ?(jobs = 1)
    ?(seed = Common.default_seed) () =
  let duration = if quick then Time.sec 2. else Time.sec 8. in
  let rates = if quick then [ 0.; 6_000.; 12_000.; 20_000. ] else rates in
  let tasks =
    List.concat_map
      (fun sys -> List.map (fun r -> (sys, r)) rates)
      Common.fig5_systems
  in
  let points =
    Common.sweep ~jobs
      (fun i (sys, r) ->
        measure ~seed:(Common.job_seed ~seed ~index:i) sys ~syn_rate:r ~duration)
      tasks
  in
  let tagged = List.map2 (fun (sys, _) p -> (sys, p)) tasks points in
  List.map
    (fun (sys, points) -> { system = sys; points })
    (Common.regroup Common.fig5_systems tagged)

let print rows =
  Common.print_title "Figure 5: HTTP Server Throughput under SYN flood";
  List.iter
    (fun r ->
      Common.printf "\n  [%s]\n" (Common.system_name r.system);
      Common.printf "  %-14s %-12s %-10s\n" "SYN (pkts/s)" "HTTP (op/s)" "";
      let ymax =
        List.fold_left (fun acc p -> Float.max acc p.http_per_sec) 1. r.points
      in
      List.iter
        (fun p ->
          let bar = int_of_float (p.http_per_sec /. ymax *. 50.) in
          Common.printf "  %-14.0f %-12.1f %s\n" p.syn_rate p.http_per_sec
            (String.make (max 0 bar) '#'))
        r.points)
    rows;
  Common.printf
    "\n  Paper shapes: BSD collapses into livelock near 10k SYN/s;\n\
    \  SOFT-LRP still serves ~50%% of its maximum at 20k SYN/s.\n"
