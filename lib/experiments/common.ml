(** Shared pieces of the experiment harnesses. *)

open Lrp_kernel

(* The systems the paper compares.  "SunOS + Fore driver" is the BSD
   architecture with the vendor driver's (slower) cost profile.  The
   Napi / Napi_gro / Rss entries are the post-paper receiver back-ends
   the "modern" comparison adds to the grid. *)
type system =
  | Sunos_fore
  | Bsd
  | Ni_lrp
  | Soft_lrp
  | Early_demux
  | Napi
  | Napi_gro
  | Rss

let system_name = function
  | Sunos_fore -> "SunOS/Fore"
  | Bsd -> "4.4BSD"
  | Ni_lrp -> "NI-LRP"
  | Soft_lrp -> "SOFT-LRP"
  | Early_demux -> "Early-Demux"
  | Napi -> "NAPI"
  | Napi_gro -> "NAPI-GRO"
  | Rss -> "RSS"

let config_of_system ?(tune = fun (c : Kernel.config) -> c) sys =
  let cfg =
    match sys with
    | Sunos_fore -> Kernel.default_config ~costs:Cost.sunos_fore Kernel.Bsd
    | Bsd -> Kernel.default_config Kernel.Bsd
    | Ni_lrp -> Kernel.default_config Kernel.Ni_lrp
    | Soft_lrp -> Kernel.default_config Kernel.Soft_lrp
    | Early_demux -> Kernel.default_config Kernel.Early_demux
    | Napi -> Kernel.default_config Kernel.Napi
    | Napi_gro -> Kernel.default_config Kernel.Napi_gro
    | Rss -> Kernel.default_config Kernel.Rss
  in
  tune cfg

let table1_systems = [ Sunos_fore; Bsd; Ni_lrp; Soft_lrp ]
let fig3_systems = [ Bsd; Ni_lrp; Soft_lrp; Early_demux ]

let modern_systems =
  [ Bsd; Ni_lrp; Soft_lrp; Early_demux; Napi; Napi_gro; Rss ]
let fig4_systems = [ Bsd; Soft_lrp; Ni_lrp ]
let table2_systems = [ Bsd; Soft_lrp; Ni_lrp ]
let fig5_systems = [ Bsd; Soft_lrp ]

(* --- parallel sweeps --------------------------------------------------- *)

(* Root seed of every experiment.  Each simulation run of a sweep gets its
   own engine seeded by [job_seed]: runs are isolated (one engine, one
   world per job), so fanning the sweep out over domains cannot change any
   result — job index, not execution order, decides every stream. *)
let default_seed = 42

let job_seed ~seed ~index = Lrp_engine.Rng.split_seed ~seed ~index

(* [sweep ~jobs f items] maps [f index item] over [items] on [jobs]
   domains (1 = inline, today's sequential path), returning results in
   submission order. *)
let sweep ~jobs f items =
  Lrp_parallel.Pool.with_pool ~domains:jobs (fun p ->
      Lrp_parallel.Pool.map p
        (fun (i, x) -> f i x)
        (List.mapi (fun i x -> (i, x)) items))

(* Regroup a flattened sweep over [groups] x [cases] back into rows. *)
let regroup groups tagged =
  List.map
    (fun g ->
      (g, List.filter_map (fun (g', p) -> if g' = g then Some p else None) tagged))
    groups

(* --- plain-text rendering -------------------------------------------- *)

(* The experiment layer's one stdout sink: every figure/table renderer
   prints through here, so rule P1 has exactly one audited exemption and
   redirecting report output later means changing one line. *)
(* lint: stdout-ok — experiment report sink, the sole audited stdout writer *)
let printf fmt = Printf.printf fmt

let hr width = String.make width '-'

let print_title title =
  printf "\n%s\n%s\n" title (hr (String.length title))

let print_row fmt = printf fmt

(* Render an ASCII series plot: one line per x value, a bar whose length is
   proportional to y. *)
let print_series ~xlabel ~ylabel ~ymax rows =
  printf "  %-12s %-10s\n" xlabel ylabel;
  List.iter
    (fun (x, y) ->
      let bar_len =
        if ymax <= 0. then 0 else int_of_float (y /. ymax *. 50.)
      in
      printf "  %-12.0f %-10.0f %s\n" x y (String.make (max 0 bar_len) '#'))
    rows
