(** Modern receiver back-ends versus the paper's architectures.

    - {!run}: the Figure-3 UDP blast over all seven architectures
      (4.4BSD, NI-LRP, SOFT-LRP, Early-Demux, NAPI, NAPI-GRO, RSS);
    - {!run_reorder}: sweep the NIC's interrupt-coalescing hold-off on
      a multi-queue RSS kernel and count cross-flow arrival → delivery
      order inversions from the flight recorder, with and without
      wire-level reordering injected by the fault fabric. *)

type row = { system : Common.system; points : Fig3.point list }

val default_rates : float list

val run :
  ?quick:bool ->
  ?rates:float list -> ?jobs:int -> ?seed:int -> unit -> row list

type reorder_point = {
  coalesce_us : float;    (** NIC hold-off swept *)
  fabric_faults : bool;   (** wire-level reorder injected too? *)
  observed : int;         (** packets seen at NIC and at the socket *)
  inversions : int;       (** arrival-order → delivery-order inversions *)
  per_kpkt : float;       (** inversions per 1000 observed packets *)
}

val count_inversions : int array -> int
(** Number of pairs [i < j] with [a.(i) > a.(j)] (mergesort count; the
    array is sorted in place).  Exposed for the test suite. *)

val measure_reorder :
  ?seed:int ->
  coalesce_us:float ->
  fabric_faults:bool -> duration:float -> unit -> reorder_point

val default_coalesce_sweep : float list

val run_reorder :
  ?quick:bool ->
  ?sweep:float list -> ?jobs:int -> ?seed:int -> unit -> reorder_point list

val print : row list -> unit
val print_reorder : reorder_point list -> unit
