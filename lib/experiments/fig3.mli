(** Figure 3: UDP throughput versus offered load (the livelock experiment).

    A client blasts 14-byte UDP datagrams at a fixed rate at a server
    process that receives and discards them.  The paper's shapes:

    - 4.4BSD peaks (~7,400 pkts/s) and then collapses toward livelock as
      the offered rate grows (~0 around 20,000 pkts/s);
    - NI-LRP climbs to its maximum (~11,000 pkts/s) and stays flat;
    - SOFT-LRP peaks in between (~9,800 pkts/s) and declines only slowly
      (the soft-demux cost per packet);
    - Early-Demux is stable but reaches only 40-65 % of SOFT-LRP's
      throughput in the overload region.

    The companion MLFRR measurement reports the maximum loss-free receive
    rate (paper: SOFT-LRP 9,210 vs BSD 6,380, +44 %). *)

type point = {
  offered : float;
  delivered : float;
  discards : int;
  ipq_drops : int;
}
type row = { system : Common.system; points : point list; }
val measure :
  ?seed:int -> Common.system -> rate:float -> duration:float -> point

val measure_traced :
  ?seed:int -> Common.system -> rate:float -> duration:float ->
  point * Lrp_trace.Trace.t * (string * float) list
(** [measure] with the server kernel's structured tracer enabled for the
    whole run.  Also returns the tracer (for sinks or the stage-latency
    report) and the final metrics snapshot.  The datapoint is identical
    to an untraced [measure] with the same seed: tracing only records,
    it never perturbs the simulation. *)

val default_rates : float list

val run :
  ?quick:bool -> ?rates:float list -> ?jobs:int -> ?seed:int -> unit ->
  row list
(** Every (system, rate) point is an independent simulation; [jobs]
    (default 1) fans them out over that many domains.  Results are
    identical for any [jobs]: each point runs in its own engine seeded
    from [seed] and its job index. *)

val mlfrr : ?quick:bool -> ?seed:int -> Common.system -> float

val mlfrr_all :
  ?quick:bool -> ?jobs:int -> ?seed:int -> Common.system list ->
  (Common.system * float) list
(** One MLFRR binary search per system, searches running in parallel. *)

val print : row list -> unit
val print_mlfrr : (Common.system * float) list -> unit
