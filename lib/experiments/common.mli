(** Shared pieces of the experiment harnesses. *)

type system =
  | Sunos_fore
  | Bsd
  | Ni_lrp
  | Soft_lrp
  | Early_demux
  | Napi
  | Napi_gro
  | Rss

val system_name : system -> string
val config_of_system :
  ?tune:(Lrp_kernel.Kernel.config -> Lrp_kernel.Kernel.config) ->
  system -> Lrp_kernel.Kernel.config
val table1_systems : system list
val fig3_systems : system list

val modern_systems : system list
(** All seven receive architectures of the modern comparison: the four
    paper systems plus NAPI, NAPI-GRO and RSS. *)

val fig4_systems : system list
val table2_systems : system list
val fig5_systems : system list

val default_seed : int
(** Root seed of every experiment sweep (42, as everywhere else). *)

val job_seed : seed:int -> index:int -> int
(** Derive the engine seed of sweep job [index] from the root [seed]
    ({!Lrp_engine.Rng.split_seed}): deterministic whatever the pool size. *)

val sweep : jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [sweep ~jobs f items] maps [f index item] over [items] on [jobs]
    domains ([1] = inline sequential), results in submission order. *)

val regroup : 'g list -> ('g * 'p) list -> ('g * 'p list) list
(** Regroup a flattened sweep back into per-group rows, preserving
    order. *)

val hr : int -> string

val printf : ('a, out_channel, unit) format -> 'a
(** The experiment layer's single stdout sink (lint rule P1): all report
    rendering goes through here. *)

val print_title : string -> unit
val print_row : ('a, out_channel, unit) format -> 'a
val print_series :
  xlabel:string ->
  ylabel:string -> ymax:float -> (float * float) list -> unit
