(** Shared pieces of the experiment harnesses. *)

type system = Sunos_fore | Bsd | Ni_lrp | Soft_lrp | Early_demux
val system_name : system -> string
val config_of_system :
  ?tune:(Lrp_kernel.Kernel.config -> Lrp_kernel.Kernel.config) ->
  system -> Lrp_kernel.Kernel.config
val table1_systems : system list
val fig3_systems : system list
val fig4_systems : system list
val table2_systems : system list
val fig5_systems : system list
val hr : int -> string
val print_title : string -> unit
val print_row : ('a, out_channel, unit) format -> 'a
val print_series :
  xlabel:string ->
  ylabel:string -> ymax:float -> (float * float) list -> unit
