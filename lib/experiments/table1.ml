(** Table 1: baseline round-trip latency and throughput.

    Demonstrates that LRP's overload robustness costs nothing at low load:
    RTT and UDP/TCP throughput are on par with 4.4BSD, and the SunOS/Fore
    profile trails on latency and UDP bandwidth.

    Paper values (SunOS/Fore, 4.4BSD, NI-LRP, SOFT-LRP):
    RTT 1006/855/840/864 us; UDP 64/82/92/86 Mbit/s; TCP 63/69/67/66. *)

open Lrp_engine
open Lrp_kernel
open Lrp_workload

type row = {
  system : Common.system;
  rtt_us : float;
  udp_mbps : float;
  tcp_mbps : float;
}

let measure_rtt ?(seed = Common.default_seed) sys ~rounds =
  let cfg = Common.config_of_system sys in
  let w, client, server = World.pair ~seed ~cfg () in
  ignore (Pingpong.start_server server ~port:7);
  let cl =
    Pingpong.start_client client ~dst:(Kernel.ip_address server, 7) ~rounds ()
  in
  World.run w ~until:(Time.sec 60.);
  Lrp_stats.Stats.Samples.mean cl.Pingpong.rtts

let measure_udp ?(seed = Common.default_seed) sys ~total =
  let cfg = Common.config_of_system sys in
  let w, client, server = World.pair ~seed ~cfg () in
  let r =
    Udp_window.run w ~sender:client ~receiver:server ~port:5002 ~total
      ~until:(Time.sec 60.) ()
  in
  Udp_window.mbps r

let measure_tcp ?(seed = Common.default_seed) sys ~total =
  let cfg = Common.config_of_system sys in
  let w, client, server = World.pair ~seed ~cfg () in
  let r =
    Tcp_bulk.run w ~sender:client ~receiver:server ~port:5003 ~total
      ~until:(Time.sec 120.) ()
  in
  Tcp_bulk.mbps r

(* [run ()] measures all three microbenchmarks for each system.  [quick]
   shrinks the workload for use in the test suite.  Every (system, metric)
   cell is an independent simulation, so the whole table fans out as one
   flat job list. *)
type metric = Rtt | Udp | Tcp

let run ?(quick = false) ?(jobs = 1) ?(seed = Common.default_seed) () =
  let rounds = if quick then 200 else 10_000 in
  let udp_total = if quick then 400 else 3_000 in
  let tcp_total = if quick then 2_000_000 else 24 * 1024 * 1024 in
  let tasks =
    List.concat_map
      (fun sys -> [ (sys, Rtt); (sys, Udp); (sys, Tcp) ])
      Common.table1_systems
  in
  let cells =
    Common.sweep ~jobs
      (fun i (sys, metric) ->
        let seed = Common.job_seed ~seed ~index:i in
        match metric with
        | Rtt -> measure_rtt ~seed sys ~rounds
        | Udp -> measure_udp ~seed sys ~total:udp_total
        | Tcp -> measure_tcp ~seed sys ~total:tcp_total)
      tasks
  in
  let value sys metric =
    let rec find ts cs =
      match (ts, cs) with
      | (s, m) :: _, v :: _ when s = sys && m = metric -> v
      | _ :: ts, _ :: cs -> find ts cs
      | _ -> assert false
    in
    find tasks cells
  in
  List.map
    (fun sys ->
      { system = sys;
        rtt_us = value sys Rtt;
        udp_mbps = value sys Udp;
        tcp_mbps = value sys Tcp })
    Common.table1_systems

let paper =
  [ (Common.Sunos_fore, (1006., 64., 63.)); (Common.Bsd, (855., 82., 69.));
    (Common.Ni_lrp, (840., 92., 67.)); (Common.Soft_lrp, (864., 86., 66.)) ]

let print rows =
  Common.print_title
    "Table 1: Throughput and Latency (measured | paper)";
  Common.printf "  %-12s %22s %22s %22s\n" "System" "RTT (us)"
    "UDP (Mbit/s)" "TCP (Mbit/s)";
  List.iter
    (fun r ->
      let p_rtt, p_udp, p_tcp =
        match List.assoc_opt r.system paper with
        | Some v -> v
        | None -> (nan, nan, nan)
      in
      Common.printf "  %-12s %12.0f | %6.0f %12.1f | %6.1f %12.1f | %6.1f\n"
        (Common.system_name r.system) r.rtt_us p_rtt r.udp_mbps p_udp
        r.tcp_mbps p_tcp)
    rows
