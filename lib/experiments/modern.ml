(** Modern receiver back-ends versus the paper's four architectures.

    Two experiments:

    - {b Throughput comparison} — the Figure-3 blast (14-byte UDP at a
      fixed offered rate against a receive-and-discard server) run over
      all {e seven} architectures: the paper's 4.4BSD / NI-LRP /
      SOFT-LRP / Early-Demux plus the post-paper NAPI, NAPI-GRO and RSS
      back-ends.  Expected shapes: BSD collapses toward livelock; NAPI
      holds a flat plateau under its poll budget (interrupts masked
      while polling, excess work deferred to ksoftirqd); NAPI-GRO
      exceeds SOFT-LRP at high segment rates because receive-offload
      amortises per-packet protocol cost across a coalesced train;
      NI-LRP stays highest (the demux runs on the adaptor).

    - {b Coalescing versus reorder} — interrupt coalescing and
      multi-queue RSS trade latency for batching, and batching reorders
      {e across} flows: a queue holding frames for its coalescing timer
      delivers them after younger frames of another queue whose timer
      fired first.  We steer four UDP flows through an RSS kernel,
      sweep the coalescing hold-off, and count arrival-order →
      delivery-order inversions from the server's flight recorder
      ([Nic_rx] versus [Sock_enqueue] sequence).  Per-flow order is
      always preserved (one flow = one FIFO ring), so every inversion
      counted is cross-flow.  A fault-fabric variant adds wire-level
      reordering on the server link to show the two sources compose. *)

open Lrp_engine
open Lrp_kernel
open Lrp_net
open Lrp_workload
module Trace = Lrp_trace.Trace

type row = { system : Common.system; points : Fig3.point list }

(* Fig. 3's sweep plus two higher rates: the modern back-ends hold their
   plateau well past the point where the LRP variants start to slide, and
   the tail is where that shows. *)
let default_rates = Fig3.default_rates @ [ 28_000.; 30_000. ]

(* --- seven-way throughput comparison ----------------------------------- *)

let run ?(quick = false) ?(rates = default_rates) ?(jobs = 1)
    ?(seed = Common.default_seed) () =
  let duration = if quick then Time.ms 400. else Time.sec 2. in
  let rates =
    if quick then
      [ 2_000.; 6_000.; 8_000.; 10_000.; 14_000.; 20_000.; 25_000.; 30_000. ]
    else rates
  in
  let tasks =
    List.concat_map
      (fun sys -> List.map (fun rate -> (sys, rate)) rates)
      Common.modern_systems
  in
  let points =
    Common.sweep ~jobs
      (fun i (sys, rate) ->
        Fig3.measure ~seed:(Common.job_seed ~seed ~index:i) sys ~rate ~duration)
      tasks
  in
  let tagged = List.map2 (fun (sys, _) p -> (sys, p)) tasks points in
  List.map
    (fun (sys, points) -> { system = sys; points })
    (Common.regroup Common.modern_systems tagged)

(* --- coalescing versus cross-flow reorder ------------------------------ *)

type reorder_point = {
  coalesce_us : float;    (* NIC hold-off swept *)
  fabric_faults : bool;   (* wire-level reorder injected too? *)
  observed : int;         (* packets seen both at NIC and at the socket *)
  inversions : int;       (* arrival-order -> delivery-order inversions *)
  per_kpkt : float;       (* inversions per 1000 observed packets *)
}

(* Count inversions of [a] (mergesort count, O(n log n)): pairs i < j
   with [a.(i) > a.(j)].  Applied to the arrival indices listed in
   delivery order, this is exactly the number of packet pairs delivered
   in the opposite order to their wire arrival. *)
let count_inversions a =
  let n = Array.length a in
  let buf = Array.make n 0 in
  let inv = ref 0 in
  let rec sort lo hi =
    (* sorts a.(lo..hi-1) *)
    if hi - lo > 1 then begin
      let mid = (lo + hi) / 2 in
      sort lo mid;
      sort mid hi;
      Array.blit a lo buf lo (hi - lo);
      let i = ref lo and j = ref mid in
      for k = lo to hi - 1 do
        if !i < mid && (!j >= hi || buf.(!i) <= buf.(!j)) then begin
          a.(k) <- buf.(!i);
          incr i
        end else begin
          a.(k) <- buf.(!j);
          (* every element still waiting on the left is a pair out of
             order with the one we just took from the right *)
          inv := !inv + (mid - !i);
          incr j
        end
      done
    end
  in
  sort 0 n;
  !inv

(* Four constant-rate flows with coprime-ish rates so the queues'
   coalescing timers drift out of phase instead of firing in lockstep. *)
let reorder_flow_rates = [ 1_350.; 1_450.; 1_550.; 1_650. ]

let measure_reorder ?(seed = Common.default_seed) ~coalesce_us ~fabric_faults
    ~duration () =
  let cfg =
    Common.config_of_system Common.Rss
      ~tune:(fun c ->
        { c with
          Kernel.coalesce_us;
          (* count threshold parked above the ring so only the timer
             (the swept knob) ever raises the interrupt *)
          Kernel.coalesce_pkts = c.Kernel.rx_ring })
  in
  let w, client, server = World.pair ~seed ~cfg () in
  if fabric_faults then
    Fabric.set_link_faults (World.fabric w)
      ~ip:(Kernel.ip_address server)
      (Fabric.Faults.make ~reorder:0.05 ~reorder_span:8 ());
  Kernel.set_tracing server true;
  (* Packet-lifecycle events only: keeps the recorder window wide enough
     to hold the whole run's Nic_rx/Sock_enqueue pairs. *)
  Trace.set_filter (Kernel.tracer server) [ Trace.Packet_events ];
  let sink = Blast.start_sink server ~port:9000 () in
  List.iteri
    (fun i rate ->
      ignore
        (Blast.start_source (World.engine w) (Kernel.nic client)
           ~src:(Kernel.ip_address client)
           ~dst:(Kernel.ip_address server, 9000)
           ~src_port:(2000 + i) ~rate ~size:14 ~until:duration ()))
    reorder_flow_rates;
  (* Drain time after the sources stop. *)
  World.run w ~until:(duration +. Time.ms 50.);
  ignore sink.Blast.received;
  (* Arrival index per packet ident, then the delivery sequence mapped
     through it. *)
  let events = Trace.events (Kernel.tracer server) in
  let arrival = Hashtbl.create 4096 in
  let next = ref 0 in
  List.iter
    (fun (_, _, ev) ->
      match ev with
      | Trace.Nic_rx { pkt; _ } when not (Hashtbl.mem arrival pkt) ->
          Hashtbl.add arrival pkt !next;
          incr next
      | _ -> ())
    events;
  let delivery =
    List.filter_map
      (fun (_, _, ev) ->
        match ev with
        | Trace.Sock_enqueue { pkt; _ } -> Hashtbl.find_opt arrival pkt
        | _ -> None)
      events
  in
  let seq = Array.of_list delivery in
  let observed = Array.length seq in
  let inversions = count_inversions seq in
  { coalesce_us; fabric_faults; observed; inversions;
    per_kpkt =
      (if observed = 0 then 0.
       else 1000. *. float_of_int inversions /. float_of_int observed) }

let default_coalesce_sweep = [ 0.; 100.; 250.; 500.; 1_000. ]

let run_reorder ?(quick = false) ?(sweep = default_coalesce_sweep)
    ?(jobs = 1) ?(seed = Common.default_seed) () =
  let duration = if quick then Time.ms 500. else Time.sec 2. in
  let tasks =
    List.concat_map
      (fun fab -> List.map (fun c -> (c, fab)) sweep)
      [ false; true ]
  in
  Common.sweep ~jobs
    (fun i (coalesce_us, fabric_faults) ->
      measure_reorder
        ~seed:(Common.job_seed ~seed ~index:i)
        ~coalesce_us ~fabric_faults ~duration ())
    tasks

(* --- rendering --------------------------------------------------------- *)

let print rows =
  Common.print_title
    "Modern comparison: throughput versus offered load (14-byte UDP)";
  List.iter
    (fun r ->
      Common.printf "\n  [%s]\n" (Common.system_name r.system);
      Common.print_series ~xlabel:"offered(p/s)" ~ylabel:"delivered"
        ~ymax:12_000.
        (List.map (fun (p : Fig3.point) -> (p.Fig3.offered, p.Fig3.delivered))
           r.points))
    rows;
  Common.printf
    "\n  Expected shapes: BSD collapses toward livelock; NAPI holds a\n\
    \  flat plateau under its poll budget; NAPI-GRO exceeds SOFT-LRP at\n\
    \  high segment rates (receive offload amortises per-packet cost);\n\
    \  NI-LRP highest (demux on the adaptor).\n"

let print_reorder points =
  Common.print_title
    "Coalescing versus cross-flow reorder (RSS, 4 queues, 4 flows)";
  Common.printf "  %-12s %-10s %-10s %-10s %s\n" "coalesce_us" "fabric"
    "observed" "inversions" "per-kpkt";
  List.iter
    (fun p ->
      Common.printf "  %-12.0f %-10s %-10d %-10d %8.1f\n" p.coalesce_us
        (if p.fabric_faults then "reorder" else "clean")
        p.observed p.inversions p.per_kpkt)
    points;
  Common.printf
    "\n  Per-flow order is FIFO throughout; every inversion is\n\
    \  cross-flow, induced by per-queue batching (and, in the fault\n\
    \  variant, by wire-level reordering on the server link).\n"
