(** Trace-driven invariant oracle.

    Consumes the packet-lifecycle event stream of one kernel's tracer and
    mechanically checks conservation and ordering invariants that must hold
    on every architecture, under any network weather the fabric's fault
    layer can produce — including duplication, so all per-packet bounds are
    stated against the number of times that packet actually {e arrived} at
    the NIC, not against 1.

    Invariants (per packet ident [p], socket [s]):

    - {b no over-delivery}: sock-enqueues of [(p, s)] <= NIC arrivals of [p]
      (a kernel may deliver a duplicated packet twice only if the network
      really presented it twice);
    - {b copyout bound}: copyouts of [(p, s)] <= sock-enqueues of [(p, s)];
    - {b demux bound}: demux events of [p] <= arrivals of [p], and likewise
      early discards <= arrivals;
    - {b drop accounting}: ipq-enqueues + ipq-drops + mbuf-drops <= arrivals;
    - {b provenance}: every sock-enqueue of [p] is preceded by a
      proto-deliver of [p], and — on architectures that demultiplex
      ([require_demux]) — by a demux of [p];
    - {b GRO accounting}: every receive-offload merge absorbs a packet
      that arrived, at most once per arrival, and into a head segment
      that itself arrived — merged segments are terminal outcomes, so
      they still satisfy conservation;
    - {b no ghosts}: every post-arrival event concerns a packet that has
      actually arrived.

    A tracer whose ring wrapped ([Trace.dropped > 0]) lost the oldest
    events; the oracle then reports [ring_wrapped = true] and skips the
    checks rather than raise false alarms. *)

module Trace = Lrp_trace.Trace

type verdict = {
  ok : bool;
  ring_wrapped : bool;
  packets : int;         (* distinct packet idents seen arriving *)
  arrivals : int;        (* total NIC arrivals *)
  enqueued : int;        (* total socket enqueues *)
  violations : string list;  (* empty iff [ok] *)
}

let pp_verdict fmt v =
  if v.ring_wrapped then
    Format.fprintf fmt "oracle: inconclusive (trace ring wrapped)"
  else begin
    Format.fprintf fmt "oracle: %s — %d packets, %d arrivals, %d enqueued"
      (if v.ok then "ok" else "VIOLATED")
      v.packets v.arrivals v.enqueued;
    List.iter (fun s -> Format.fprintf fmt "@.  - %s" s) v.violations
  end

(* Counter table keyed by packet ident (or (ident, sock) pairs encoded by
   the caller). *)
let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
let count tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)

let check ?(require_demux = false) events =
  let violations = ref [] in
  let max_reported = 20 in
  let reported = ref 0 in
  let violate fmt =
    Printf.ksprintf
      (fun s ->
        incr reported;
        if !reported <= max_reported then violations := s :: !violations)
      fmt
  in
  let arrivals = Hashtbl.create 256 in
  let demuxes = Hashtbl.create 256 in
  let discards = Hashtbl.create 64 in
  let ipq = Hashtbl.create 256 in       (* enqueues + drops per pkt *)
  let mbuf = Hashtbl.create 64 in
  let proto = Hashtbl.create 256 in
  let gro = Hashtbl.create 64 in        (* absorbed-by-merge per pkt *)
  let enq = Hashtbl.create 256 in       (* (pkt, sock) -> count *)
  let copied = Hashtbl.create 256 in    (* (pkt, sock) -> count *)
  let total_arrivals = ref 0 in
  let total_enqueued = ref 0 in
  let seen p = Hashtbl.mem arrivals p in
  let ghost name p =
    if not (seen p) then violate "%s of packet %d that never arrived" name p
  in
  List.iter
    (fun (_, _, ev) ->
      match ev with
      | Trace.Nic_rx { pkt; _ } ->
          incr total_arrivals;
          bump arrivals pkt
      | Trace.Demux { pkt; _ } ->
          ghost "demux" pkt;
          bump demuxes pkt
      | Trace.Early_discard { pkt; _ } ->
          ghost "early-discard" pkt;
          bump discards pkt
      | Trace.Ipq_enqueue { pkt; _ } | Trace.Ipq_drop { pkt; _ } ->
          ghost "ipq event" pkt;
          bump ipq pkt
      | Trace.Mbuf_drop { pkt } | Trace.Csum_drop { pkt } ->
          ghost "drop" pkt;
          bump mbuf pkt
      | Trace.Proto_deliver { pkt; _ } ->
          ghost "proto-deliver" pkt;
          bump proto pkt
      | Trace.Sock_enqueue { pkt; sock } ->
          ghost "sock-enqueue" pkt;
          if count proto pkt = 0 then
            violate "sock-enqueue of packet %d without a proto-deliver" pkt;
          if require_demux && count demuxes pkt = 0 then
            violate "sock-enqueue of packet %d without a demux" pkt;
          incr total_enqueued;
          bump enq (pkt, sock);
          if count enq (pkt, sock) > count arrivals pkt then
            violate
              "double delivery: packet %d enqueued %d times on socket %d \
               but arrived %d times"
              pkt
              (count enq (pkt, sock))
              sock (count arrivals pkt)
      | Trace.Sock_drop { pkt; _ } -> ghost "sock-drop" pkt
      | Trace.Syscall_copyout { pkt; sock; _ } ->
          bump copied (pkt, sock);
          if count copied (pkt, sock) > count enq (pkt, sock) then
            violate
              "copyout of packet %d on socket %d exceeds its %d enqueues"
              pkt sock
              (count enq (pkt, sock))
      | Trace.Gro_merge { pkt; into } ->
          ghost "gro-merge" pkt;
          if not (seen into) then
            violate "gro-merge of packet %d into head %d that never arrived"
              pkt into;
          bump gro pkt
      | Trace.Gro_flush { pkt; _ } -> ghost "gro-flush" pkt
      | Trace.Softint_begin _ | Trace.Softint_end _ | Trace.Intr_enter _
      | Trace.Intr_exit _ | Trace.Ctx_switch _ | Trace.Thread_state _
      | Trace.Note _ | Trace.Alarm _ | Trace.Poll_begin _ | Trace.Poll_end _
      | Trace.Coalesce_fire _ -> ())
    events;
  (* End-of-stream count bounds, in packet-id order so any violation list
     is reproducible. *)
  Lrp_det.Det.iter_sorted
    (fun pkt n ->
      if n > count arrivals pkt then
        violate "packet %d demuxed %d times but arrived %d times" pkt n
          (count arrivals pkt))
    demuxes;
  Lrp_det.Det.iter_sorted
    (fun pkt n ->
      if n > count arrivals pkt then
        violate "packet %d early-discarded %d times but arrived %d times"
          pkt n (count arrivals pkt))
    discards;
  Lrp_det.Det.iter_sorted
    (fun pkt n ->
      if n > count arrivals pkt then
        violate "packet %d has %d ipq events but arrived %d times" pkt n
          (count arrivals pkt))
    ipq;
  Lrp_det.Det.iter_sorted
    (fun pkt n ->
      if n > count arrivals pkt then
        violate "packet %d dropped (mbuf/csum) %d times but arrived %d times"
          pkt n (count arrivals pkt))
    mbuf;
  Lrp_det.Det.iter_sorted
    (fun pkt n ->
      if n > count arrivals pkt then
        violate "packet %d gro-merged %d times but arrived %d times" pkt n
          (count arrivals pkt))
    gro;
  let violations =
    let vs = List.rev !violations in
    if !reported > max_reported then
      vs @ [ Printf.sprintf "(%d further violations suppressed)" (!reported - max_reported) ]
    else vs
  in
  { ok = violations = []; ring_wrapped = false;
    packets = Hashtbl.length arrivals; arrivals = !total_arrivals;
    enqueued = !total_enqueued; violations }

let check_tracer ?require_demux tr =
  if Trace.dropped tr > 0 then
    { ok = true; ring_wrapped = true; packets = 0; arrivals = 0;
      enqueued = 0; violations = [] }
  else check ?require_demux (Trace.events tr)
