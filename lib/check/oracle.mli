(** Trace-driven invariant oracle.

    Checks conservation and ordering invariants over one kernel's
    packet-lifecycle event stream (see {!Lrp_trace.Trace}).  All per-packet
    bounds are stated against the number of NIC arrivals of that packet, so
    the oracle is sound under network-injected duplication: a kernel may
    deliver a packet twice only if the network presented it twice. *)

type verdict = {
  ok : bool;             (** no violation found (vacuously true when
                             [ring_wrapped]) *)
  ring_wrapped : bool;   (** tracer lost events; checks were skipped *)
  packets : int;         (** distinct packet idents seen arriving *)
  arrivals : int;        (** total NIC arrivals *)
  enqueued : int;        (** total socket enqueues *)
  violations : string list;  (** human-readable, empty iff [ok] *)
}

val pp_verdict : Format.formatter -> verdict -> unit

val check :
  ?require_demux:bool -> (float * int * Lrp_trace.Trace.event) list -> verdict
(** [check events] runs the invariants over a tracer's event list
    (oldest first, as {!Lrp_trace.Trace.events} returns it).
    [require_demux] additionally demands a demux event before any
    sock-enqueue — true of the LRP and Early-Demux architectures, not of
    BSD, whose receive path has no demultiplexing step. *)

val check_tracer : ?require_demux:bool -> Lrp_trace.Trace.t -> verdict
(** [check] on the tracer's buffered events; reports
    [ring_wrapped = true] (and checks nothing) if the ring overwrote
    events, rather than raise false alarms on a truncated stream. *)
