(** Random fault scripts for the differential fuzz harness.

    A script is a deterministic function of its seed; replaying a failing
    run means re-running with the same seed.  {!save} writes a
    human-readable JSON dump (the CI repro artifact). *)

type step = { at_us : float; faults : Lrp_net.Fabric.Faults.t }

type t = { seed : int; steps : step list }

val generate : seed:int -> duration_us:float -> t
(** Deterministically derive a script (1–3 timed weather regimes, the
    first at t=0) from [seed].  Knob ranges are moderate so workloads
    still make progress. *)

val apply : t -> fabric:Lrp_net.Fabric.t -> engine:Lrp_engine.Engine.t -> unit
(** Schedule each step's [Fabric.set_faults] switch at its time. *)

val to_json : t -> Lrp_trace.Json.t

val save : t -> string -> unit
(** Write [to_json] to a file, for failure repro artifacts. *)
