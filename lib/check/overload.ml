(** Livelock / overload detector (paper sections 2.2 and 6.1).

    Samples a kernel at a fixed virtual-time period and compares, per
    window, the work the network {e offered} (frames reaching the
    receive path) against the work the host {e delivered} (datagrams and
    segments handed to endpoints, plus forwarded packets):

    - {b overload}: offered load is substantial and delivery collapsed
      below a configured fraction of it.  This fires for any
      architecture shedding load — including LRP doing early discard,
      which is the intended behaviour under overload;
    - {b livelock}: an overloaded window in which interrupt-level
      processing also monopolised the CPU.  This is the BSD-specific
      pathology the paper demonstrates (figures 4–6): the host is
      saturated with eager interrupt work while useful throughput drops
      toward zero.  LRP keeps interrupt share small at the same offered
      load, so this alarm separates the architectures;
    - {b starvation}: substantial offered load while the ledger shows
      process-context work (application + receiver protocol) got almost
      no CPU — the user-visible face of livelock.

    Verdicts are emitted into the kernel's flight recorder as
    {!Lrp_trace.Trace.Alarm} events, so a post-mortem dump shows when
    the collapse began; queue high-watermarks (shared IP queue, NI
    channels, socket queues) are tracked for the same forensic use.
    The detector only reads counters the kernel already maintains — it
    never touches packets or scheduling, so it cannot perturb the
    simulation beyond its own (constant, per-window) sampling event. *)

open Lrp_engine
open Lrp_sim
open Lrp_kernel
module Trace = Lrp_trace.Trace

type config = {
  window : float;         (* sampling period, simulated microseconds *)
  min_offered : int;      (* frames/window below which no verdict is made *)
  collapse_frac : float;  (* delivered < frac * offered  =>  overload *)
  livelock_share : float; (* overloaded + intr share >= this => livelock *)
  starve_share : float;   (* process-work share <= this => starvation *)
}

let default_config =
  { window = 10_000.; min_offered = 20; collapse_frac = 0.5;
    livelock_share = 0.8; starve_share = 0.05 }

type report = {
  mutable samples : int;           (* windows examined *)
  mutable judged : int;            (* windows with offered >= min_offered *)
  mutable overload_windows : int;
  mutable livelock_windows : int;
  mutable starved_windows : int;
  mutable peak_offered : int;      (* max offered frames in one window *)
  mutable worst_delivery : float;
      (* min delivered/offered across judged windows; 1. if none judged *)
  mutable peak_intr_share : float; (* max interrupt share across judged *)
  mutable peak_poll_share : float;
      (* max NAPI-poll share across judged windows.  The NAPI-vs-BSD
         discriminator: a budgeted NAPI kernel under overload moves its
         poll cycles into ksoftirqd (process context), so its interrupt
         share stays below [livelock_share] while the poll share shows
         where the cycles went; with a pathological budget the poll
         cycles stay at softirq level and the livelock verdict fires,
         exactly as it does for BSD's eager interrupt work. *)
  mutable ipq_hwm : int;
  mutable chan_hwm : int;          (* deepest NI channel occupancy *)
  mutable sock_hwm : int;          (* deepest socket-queue occupancy *)
}

type t = {
  kernel : Kernel.t;
  cfg : config;
  rep : report;
  mutable ev : Engine.handle;
  (* previous-sample counters, delta'd each window *)
  mutable p_offered : int;
  mutable p_delivered : int;
  mutable p_hard : float;
  mutable p_soft : float;
  mutable p_proc : float;  (* ledger App + Proto *)
  mutable p_poll : float;  (* ledger Poll *)
}

let report t = t.rep
let livelocked t = t.rep.livelock_windows > 0
let overloaded t = t.rep.overload_windows > 0

let delivered_count (s : Kernel.kstats) =
  s.Kernel.udp_delivered + s.Kernel.tcp_delivered + s.Kernel.forwarded

(* One sampling window: delta the kernel's counters and classify. *)
let sample t =
  let k = t.kernel in
  let s = Kernel.stats k in
  let cpu = Kernel.cpu k in
  let led = Cpu.ledger cpu in
  let rep = t.rep in
  let cfg = t.cfg in
  let offered = s.Kernel.rx_frames in
  let delivered = delivered_count s in
  let hard = Cpu.time_hard cpu and soft = Cpu.time_soft cpu in
  let proc = Ledger.total led Ledger.App +. Ledger.total led Ledger.Proto in
  let poll = Ledger.total led Ledger.Poll in
  let d_off = offered - t.p_offered in
  let d_del = delivered - t.p_delivered in
  let d_intr = hard -. t.p_hard +. (soft -. t.p_soft) in
  let d_proc = proc -. t.p_proc in
  let d_poll = poll -. t.p_poll in
  t.p_offered <- offered;
  t.p_delivered <- delivered;
  t.p_hard <- hard;
  t.p_soft <- soft;
  t.p_proc <- proc;
  t.p_poll <- poll;
  rep.samples <- rep.samples + 1;
  if d_off > rep.peak_offered then rep.peak_offered <- d_off;
  (* Queue high-watermarks (new maxima recorded as alarm events). *)
  let tracer = Kernel.tracer k in
  if s.Kernel.ipq_hwm > rep.ipq_hwm then begin
    rep.ipq_hwm <- s.Kernel.ipq_hwm;
    Trace.alarm tracer ~alarm:Trace.Queue_watermark ~a:0 ~b:rep.ipq_hwm
  end;
  List.iter
    (fun ch ->
      let h = Lrp_core.Channel.high_watermark ch in
      if h > rep.chan_hwm then begin
        rep.chan_hwm <- h;
        Trace.alarm tracer ~alarm:Trace.Queue_watermark ~a:1 ~b:h
      end)
    (Kernel.channels k);
  Lrp_det.Det.iter_sorted
    (fun _port (sock : Socket.t) ->
      let h = sock.Socket.stats.Socket.rx_hwm in
      if h > rep.sock_hwm then begin
        rep.sock_hwm <- h;
        Trace.alarm tracer ~alarm:Trace.Queue_watermark ~a:2 ~b:h
      end)
    k.Kernel.udp_ports;
  if d_off >= cfg.min_offered then begin
    rep.judged <- rep.judged + 1;
    let ratio = float_of_int d_del /. float_of_int d_off in
    if ratio < rep.worst_delivery then rep.worst_delivery <- ratio;
    let intr_share = d_intr /. cfg.window in
    let proc_share = d_proc /. cfg.window in
    let poll_share = d_poll /. cfg.window in
    if intr_share > rep.peak_intr_share then rep.peak_intr_share <- intr_share;
    if poll_share > rep.peak_poll_share then rep.peak_poll_share <- poll_share;
    if ratio < cfg.collapse_frac then begin
      rep.overload_windows <- rep.overload_windows + 1;
      Trace.alarm tracer ~alarm:Trace.Overload ~a:d_off ~b:d_del;
      if intr_share >= cfg.livelock_share then begin
        rep.livelock_windows <- rep.livelock_windows + 1;
        Trace.alarm tracer ~alarm:Trace.Livelock ~a:d_off
          ~b:(int_of_float (intr_share *. 100.))
      end
    end;
    if proc_share <= cfg.starve_share then begin
      rep.starved_windows <- rep.starved_windows + 1;
      Trace.alarm tracer ~alarm:Trace.Starvation
        ~a:(int_of_float (proc_share *. 100.))
        ~b:(int_of_float (intr_share *. 100.))
    end
  end

let attach ?(config = default_config) k =
  let t =
    { kernel = k; cfg = config;
      rep =
        { samples = 0; judged = 0; overload_windows = 0; livelock_windows = 0;
          starved_windows = 0; peak_offered = 0; worst_delivery = 1.;
          peak_intr_share = 0.; peak_poll_share = 0.; ipq_hwm = 0;
          chan_hwm = 0; sock_hwm = 0 };
      ev = Engine.none;
      p_offered = 0; p_delivered = 0; p_hard = 0.; p_soft = 0.; p_proc = 0.;
      p_poll = 0. }
  in
  let engine = Kernel.engine k in
  t.ev <-
    Engine.schedule_after engine ~delay:config.window (fun () ->
        sample t;
        Engine.reschedule_after engine t.ev ~delay:config.window);
  t

let detach t = Engine.cancel (Kernel.engine t.kernel) t.ev

let pp_report fmt (r : report) =
  Fmt.pf fmt
    "windows=%d judged=%d overload=%d livelock=%d starved=%d \
     peak_offered=%d worst_delivery=%.2f peak_intr_share=%.2f \
     peak_poll_share=%.2f hwm(ipq=%d chan=%d sock=%d)"
    r.samples r.judged r.overload_windows r.livelock_windows
    r.starved_windows r.peak_offered r.worst_delivery r.peak_intr_share
    r.peak_poll_share r.ipq_hwm r.chan_hwm r.sock_hwm
