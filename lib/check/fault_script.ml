(** Random fault scripts for the differential fuzz harness.

    A script is a deterministic function of its seed: a small set of timed
    steps, each switching the fabric's link weather to a freshly drawn
    {!Lrp_net.Fabric.Faults} mix.  Replaying a script means re-running with
    the same seed — the JSON dump written next to a failing run is for
    human diagnosis, not for parsing back. *)

open Lrp_engine
module Fabric = Lrp_net.Fabric
module Json = Lrp_trace.Json

type step = { at_us : float; faults : Fabric.Faults.t }

type t = { seed : int; steps : step list }

(* Knob ranges are deliberately moderate: heavy enough to exercise loss /
   burst-loss / dup / corrupt / reorder / jitter paths, light enough that
   workloads still make progress and runs stay short. *)
let gen_faults rng =
  let maybe p bound = if Rng.uniform rng < p then Rng.float rng bound else 0. in
  Fabric.Faults.make
    ~loss:(maybe 0.5 0.15)
    ~ge_loss_good:(maybe 0.3 0.02)
    ~ge_loss_bad:(maybe 0.5 0.8)
    ~ge_p_gb:(maybe 0.5 0.2)
    ~ge_p_bg:(0.2 +. Rng.float rng 0.6)
    ~dup:(maybe 0.5 0.15)
    ~corrupt:(maybe 0.5 0.15)
    ~reorder:(maybe 0.5 0.3)
    ~reorder_span:(1 + Rng.int rng 4)
    ~jitter_us:(maybe 0.4 300.)
    ()

let generate ~seed ~duration_us =
  let rng = Rng.create (0x5caff01d lxor seed) in
  let n_steps = 1 + Rng.int rng 3 in
  let steps =
    List.init n_steps (fun i ->
        (* First step at t=0 so the whole run sees weather; later steps
           switch regimes mid-run. *)
        let at_us =
          if i = 0 then 0. else Rng.float rng (0.8 *. duration_us)
        in
        { at_us; faults = gen_faults rng })
    |> List.sort (fun a b -> compare a.at_us b.at_us)
  in
  { seed; steps }

let apply t ~fabric ~engine =
  List.iter
    (fun { at_us; faults } ->
      ignore
        (Engine.schedule engine ~at:at_us (fun () ->
             Fabric.set_faults fabric faults)))
    t.steps

let faults_json (f : Fabric.Faults.t) =
  Json.Obj
    [ ("loss", Json.Num f.loss);
      ("ge_loss_good", Json.Num f.ge_loss_good);
      ("ge_loss_bad", Json.Num f.ge_loss_bad);
      ("ge_p_gb", Json.Num f.ge_p_gb);
      ("ge_p_bg", Json.Num f.ge_p_bg);
      ("dup", Json.Num f.dup);
      ("corrupt", Json.Num f.corrupt);
      ("reorder", Json.Num f.reorder);
      ("reorder_span", Json.Num (float_of_int f.reorder_span));
      ("jitter_us", Json.Num f.jitter_us) ]

let to_json t =
  Json.Obj
    [ ("seed", Json.Num (float_of_int t.seed));
      ( "steps",
        Json.Arr
          (List.map
             (fun s ->
               Json.Obj
                 [ ("at_us", Json.Num s.at_us);
                   ("faults", faults_json s.faults) ])
             t.steps) ) ]

let save t path =
  let buf = Buffer.create 512 in
  Json.to_buffer buf (to_json t);
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  output_char oc '\n';
  close_out oc
