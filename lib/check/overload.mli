(** Livelock / overload detector.

    Attach to a kernel to sample it every [window] simulated
    microseconds and classify each window from counters the kernel
    already maintains:

    - {b overload} — offered load was substantial ([>= min_offered]
      frames) but delivered work (UDP datagrams + TCP segments +
      forwarded packets) fell below [collapse_frac] of it.  Any
      load-shedding architecture triggers this, including LRP early
      discard doing its job;
    - {b livelock} — an overloaded window whose interrupt-level CPU
      share (hard + soft) was at least [livelock_share].  Only the
      eager architectures exhibit this; it is the detector's
      BSD-vs-LRP discriminator;
    - {b starvation} — substantial offered load while process-context
      work (ledger [App] + [Proto]) got at most [starve_share] of the
      window.

    Each verdict (and each new queue high-watermark) is emitted into
    the kernel's tracer as an {!Lrp_trace.Trace.Alarm} event, so the
    flight recorder shows when the collapse began. *)

type config = {
  window : float;         (** sampling period, simulated microseconds *)
  min_offered : int;      (** frames/window below which no verdict is made *)
  collapse_frac : float;  (** delivered < frac × offered ⇒ overload *)
  livelock_share : float; (** overloaded ∧ intr share ≥ this ⇒ livelock *)
  starve_share : float;   (** process-work share ≤ this ⇒ starvation *)
}

val default_config : config
(** 10 ms window, 20 frames minimum, collapse below 50 % delivery,
    livelock at ≥ 80 % interrupt share, starvation at ≤ 5 % process
    share. *)

type report = {
  mutable samples : int;
  mutable judged : int;  (** windows with offered ≥ [min_offered] *)
  mutable overload_windows : int;
  mutable livelock_windows : int;
  mutable starved_windows : int;
  mutable peak_offered : int;
  mutable worst_delivery : float;
      (** min delivered/offered over judged windows ([1.] if none) *)
  mutable peak_intr_share : float;
  mutable peak_poll_share : float;
      (** max NAPI-poll share (ledger [Poll]) over judged windows.  The
          NAPI-vs-BSD discriminator: a budgeted NAPI kernel under
          overload defers polling to ksoftirqd (process context), so its
          interrupt share stays under [livelock_share] while this field
          shows where the cycles went; a pathological budget keeps the
          poll cycles at softirq level and livelock fires as for BSD. *)
  mutable ipq_hwm : int;
  mutable chan_hwm : int;
  mutable sock_hwm : int;
}

type t

val attach : ?config:config -> Lrp_kernel.Kernel.t -> t
(** Install the periodic sampler on the kernel's engine.  The detector
    reads counters only; its sole simulation footprint is one timer
    event per window. *)

val detach : t -> unit
(** Cancel the sampling event. *)

val report : t -> report
val overloaded : t -> bool
val livelocked : t -> bool

val pp_report : Format.formatter -> report -> unit
