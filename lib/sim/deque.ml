type 'a t = {
  mutable front : 'a list;
  mutable back : 'a list;  (* reversed *)
  mutable size : int;
}

let create () = { front = []; back = []; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let push_back t x =
  t.back <- x :: t.back;
  t.size <- t.size + 1

let push_front t x =
  t.front <- x :: t.front;
  t.size <- t.size + 1

let pop_front t =
  match t.front with
  | x :: rest ->
      t.front <- rest;
      t.size <- t.size - 1;
      Some x
  | [] ->
      (match List.rev t.back with
       | [] -> None
       | x :: rest ->
           t.front <- rest;
           t.back <- [];
           t.size <- t.size - 1;
           Some x)

let clear t =
  t.front <- [];
  t.back <- [];
  t.size <- 0
