(** Simulated processes.

    A process is an OCaml function run as an effect-handled coroutine.  Host
    OCaml execution is instantaneous in virtual time; simulated CPU
    consumption happens only where the code performs {!compute}.  This makes
    costs explicit: kernel code paths state how many microseconds of the
    simulated CPU they burn, and the CPU model (see {!Cpu}) interleaves,
    preempts and charges those segments.

    The effects here are the complete interface between process code and the
    CPU model:

    - [compute d] — consume [d] microseconds of CPU, preemptibly;
    - [block wq] — sleep until another party wakes the queue;
    - [sleep_for d] — sleep for [d] microseconds of virtual time;
    - [yield ()] — go to the back of the run queue without sleeping. *)

open Lrp_engine

type t = {
  pid : int;
  name : string;
  thread : Lrp_sched.Sched.thread;
  working_set_us : float;
      (** Cache-reload penalty paid when this process is switched onto the
          CPU after a different process ran (models the paper's
          memory-locality effects, e.g. the Table-2 worker whose working set
          covers 35 % of the L2 cache). *)
  mutable pending : pending;
  mutable work_left : float;
  mutable k : (unit, unit) Effect.Deep.continuation option;
  mutable exited : bool;
  mutable cpu_time : float;  (** total simulated CPU consumed, microseconds *)
  mutable overhead_time : float;
      (** part of [cpu_time] that was context-switch / cache-reload
          overhead rather than useful work *)
  exit_waiters : waitq;
  mutable started_at : Time.t;
  mutable exited_at : Time.t;
  mutable last_on_cpu : Time.t;
      (** last instant this process occupied the CPU (for the cache-reload
          model: eviction grows with absence) *)
  mutable lcls : int;
      (** ledger class of the current compute segment: 0 = app, 1 =
          receiver-context protocol work (set by {!Cpu.compute_proto}),
          2 = NAPI poll work (set by {!Cpu.compute_poll}) *)
  mutable lflow : int;
      (** channel/flow id the current protocol segment serves, or [-1] *)
}

and pending =
  | Start of (t -> unit)  (** never dispatched yet *)
  | Work                  (** owes [work_left] microseconds of CPU *)
  | Resume                (** continuation ready to run instantly *)
  | Blocked               (** waiting on a {!waitq} or timer *)
  | Done                  (** body returned *)

and waitq = { wq_name : string; mutable waiters : t list }

type _ Effect.t +=
  | Compute : float -> unit Effect.t
  | Block : waitq -> unit Effect.t
  | Sleep : float -> unit Effect.t
  | Yield : unit Effect.t

val compute : float -> unit
(** [compute d] consumes [d] simulated microseconds of CPU (no-op when
    [d <= 0]).  Must be called from process context. *)

val block : waitq -> unit
(** Sleep until {!Cpu.wakeup_one} or {!Cpu.wakeup_all} targets the queue. *)

val sleep_for : float -> unit
(** Sleep for a fixed amount of virtual time. *)

val yield : unit -> unit

val waitq : string -> waitq
(** Fresh empty wait queue. *)

val waitq_remove : waitq -> t -> unit
(** Remove a specific process from a wait queue (used by timed waits). *)
