(** Small FIFO deque (amortised O(1)) used for interrupt work queues, which
    need "push the preempted item back at the front" in addition to normal
    FIFO behaviour. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push_back : 'a t -> 'a -> unit
val push_front : 'a t -> 'a -> unit
val pop_front : 'a t -> 'a option
val clear : 'a t -> unit
