(** Single-CPU host execution model.

    The CPU multiplexes three dispatch levels, highest first:

    + hardware-interrupt work,
    + software-interrupt work,
    + user processes (chosen by the 4.3BSD scheduler in {!Lrp_sched.Sched}).

    Hardware-interrupt work preempts everything; software interrupts preempt
    user processes but not hardware interrupts; user processes preempt each
    other according to scheduler priority.  Preempted work resumes where it
    left off.  This is exactly the BSD structure that produces receiver
    livelock: interrupt-level work can starve every process (paper
    section 2.2).

    Time accounting follows BSD: a 10 ms clock tick charges [p_cpu] to the
    current process — and when the tick lands in interrupt context, to the
    process that was interrupted, reproducing the paper's "inappropriate
    resource accounting".  Exact (microsecond) per-context times are also
    tracked for reporting.

    Context-switch model: switching the CPU to a different user process costs
    [ctx_switch_cost] plus the incoming process's [working_set_us]
    (cache-reload penalty), charged to the incoming process. *)

open Lrp_engine
module Sched = Lrp_sched.Sched

type t

val create :
  Engine.t -> ?ctx_switch_cost:float -> ?start_clock:bool -> name:string ->
  unit -> t
(** [create engine ~name ()] makes a CPU driven by [engine]'s clock.
    [ctx_switch_cost] defaults to 0; [start_clock] (default true) installs
    the periodic scheduler tick and decay events. *)

val name : t -> string
val engine : t -> Engine.t
val sched : t -> Sched.t

(** {1 Processes} *)

val spawn :
  t -> ?nice:int -> ?working_set:float -> name:string -> (Proc.t -> unit) ->
  Proc.t
(** Create a process and make it runnable now.  The body runs as a coroutine
    performing {!Proc.compute} / {!Proc.block} effects. *)

val join : Proc.t -> unit
(** Block the calling process until [p] exits (process context only). *)

val wakeup_one : t -> Proc.waitq -> bool
(** Wake the longest-waiting process on the queue.  Returns [false] if the
    queue was empty.  Callable from any context. *)

val wakeup_all : t -> Proc.waitq -> int

val proc_count : t -> int

(** {1 Interrupt work} *)

val post_hard :
  t -> ?label:string -> ?tpkt:int -> cost:float -> (unit -> unit) -> unit
(** Enqueue hardware-interrupt work: after [cost] microseconds of CPU at
    hardware-interrupt level, [action] runs (instantaneously).  The action
    typically moves a packet between queues and posts further work.
    [tpkt] is the packet ident this work processes (for tracing; default
    [-1] = none). *)

val post_soft :
  t -> ?label:string -> ?tpkt:int -> ?poll:bool -> cost:float ->
  (unit -> unit) -> unit
(** Enqueue software-interrupt work (BSD's softnet level).  When [tpkt] is
    given, the tracer brackets the timed segment in
    [Softint_begin]/[Softint_end] events keyed by that packet.  [poll]
    (default false) marks the work as a NAPI poll round: it still runs
    and preempts at softirq level, but its cycles are ledgered as
    {!Ledger.Poll} instead of [Soft]. *)

val set_account : t -> Proc.t -> owner:Proc.t option -> unit
(** Redirect scheduler charging for a process (LRP's APP thread runs at its
    owning process's priority and charges CPU to it). *)

(** {1 Accounting ledger} *)

val compute_proto : t -> ?flow:int -> float -> unit
(** [compute_proto t ~flow d] is {!Proc.compute}[ d] with the segment
    attributed to receiver-context protocol work serving channel [flow]
    in the CPU's {!Ledger} (LRP's lazy protocol processing, the UDP
    helper, the forwarding daemon).  Plain [Proc.compute] segments are
    attributed as application work.  Process context only. *)

val compute_poll : t -> ?flow:int -> float -> unit
(** [compute_poll t d] is {!Proc.compute}[ d] with the segment attributed
    to NAPI poll work in the CPU's {!Ledger} (ksoftirqd's process-context
    polling).  Process context only. *)

val ledger : t -> Ledger.t
(** The CPU's always-on cycle-accounting ledger.  Interrupt-level cycles
    are recorded against the interrupted victim ({!curproc}), reproducing
    BSD's mis-accounting; process cycles split into protocol vs
    application work. *)

(** {1 Introspection / statistics} *)

val self_running : t -> Proc.t option
(** The user process currently executing, if any. *)

val curproc : t -> Proc.t option
(** BSD's [curproc]: the process whose context the CPU is in, which during
    interrupt handling is the (possibly unrelated) interrupted process. *)

val hard_pending : t -> int
val soft_pending : t -> int

val time_hard : t -> float
(** Exact microseconds spent at hardware-interrupt level so far. *)

val time_soft : t -> float
val time_user : t -> float

val time_poll : t -> float
(** Microseconds of NAPI poll work so far.  Informational slice: poll
    cycles are already included in {!time_soft} (softirq rounds) or
    {!time_user} (ksoftirqd), so the conservation law
    [elapsed = hard + soft + user + idle] is unchanged. *)

val time_idle : t -> float
val context_switches : t -> int
val softirq_dispatches : t -> int
val hardirq_dispatches : t -> int

val utilization : t -> float
(** Fraction of elapsed time the CPU was not idle. *)

val iter_procs : t -> (Proc.t -> unit) -> unit
(** Iterate over live (not yet reaped) processes. *)

(** {1 Observability} *)

val set_tracer : t -> Lrp_trace.Trace.t -> unit
(** Install the owning kernel's tracer.  The CPU records interrupt
    enter/exit spans, per-packet software-interrupt spans, context switches
    and thread state changes into it; with no (or a disabled) tracer every
    emission is a single branch. *)

val register_metrics : t -> Lrp_trace.Metrics.t -> prefix:string -> unit
(** Expose CPU time split, dispatch/switch counts, process count and the
    scheduler's gauges under [prefix]. *)
