open Lrp_engine
module Sched = Lrp_sched.Sched
module Trace = Lrp_trace.Trace

(* [tpkt] is the packet ident this work processes, or -1: it keys the
   tracer's per-packet software-interrupt spans.  [wpoll] marks NAPI
   poll rounds: they run at softirq level but their cycles are ledgered
   as [Poll], not [Soft]. *)
type work = { label : string; mutable left : float; tpkt : int;
              wpoll : bool; action : unit -> unit }

type who = Whard of work | Wsoft of work | Wuser of Proc.t

type running = {
  r_who : who;
  mutable r_left : float;
  mutable r_started : Time.t;
  mutable r_ev : Engine.handle option;
}

type t = {
  cpu_name : string;
  engine : Engine.t;
  sched : Sched.t;
  ctx_switch_cost : float;
  hardq : work Deque.t;
  softq : work Deque.t;
  procs : (int, Proc.t) Hashtbl.t;  (* keyed by scheduler tid *)
  mutable next_pid : int;
  mutable running : running option;
  mutable cur : Proc.t option;      (* BSD curproc *)
  mutable last_user : int;          (* pid last on CPU, for cache penalty *)
  mutable in_dispatch : bool;
  mutable redo : bool;
  mutable force_resched : bool;
  (* registered engine targets (closure-free schedule path); filled in by
     [create] right after the record is built *)
  mutable seg_tgt : unit Engine.target option;
  mutable wake_tgt : Proc.t Engine.target option;
  (* statistics *)
  mutable t_hard : float;
  mutable t_soft : float;
  mutable t_user : float;
  (* informational slice: poll cycles inside t_soft/t_user, so the
     time-conservation law (elapsed = hard + soft + user + idle) is
     untouched *)
  mutable t_poll : float;
  mutable n_ctx_switch : int;
  mutable n_soft_dispatch : int;
  mutable n_hard_dispatch : int;
  created_at : Time.t;
  mutable tracer : Trace.t;  (* owning kernel's tracer; disabled by default *)
  ledger : Ledger.t;
  (* class hints for the next [Proc.Compute] segment, set by
     [compute_proto] / [compute_poll] and latched into the process by the
     effect handler *)
  mutable hint_proto : bool;
  mutable hint_poll : bool;
  mutable hint_flow : int;
}

let name t = t.cpu_name
let engine t = t.engine
let sched t = t.sched
let set_tracer t tr = t.tracer <- tr

(* Trace bracketing for interrupt-level work.  Emitters are no-ops on a
   disabled tracer, so these cost one branch each on the hot path. *)

let trace_work_begin t level (w : work) =
  Trace.intr_enter t.tracer ~level ~label:w.label;
  if w.tpkt >= 0 && level = Trace.Soft then
    Trace.softint_begin t.tracer ~pkt:w.tpkt

let trace_work_end t level (w : work) =
  if w.tpkt >= 0 && level = Trace.Soft then
    Trace.softint_end t.tracer ~pkt:w.tpkt;
  Trace.intr_exit t.tracer ~level ~label:w.label

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

(* BSD's curproc at the instant interrupt cycles are charged: the ledger's
   "victim" pid, or -1 when the interrupt preempted an idle CPU. *)
let victim_pid t =
  match t.cur with Some p -> p.Proc.pid | None -> -1

let charge t who elapsed =
  if elapsed > 0. then
    match who with
    | Whard _ ->
        t.t_hard <- t.t_hard +. elapsed;
        Ledger.charge t.ledger Ledger.Intr ~pid:(victim_pid t) ~flow:(-1)
          elapsed
    | Wsoft w ->
        t.t_soft <- t.t_soft +. elapsed;
        if w.wpoll then begin
          t.t_poll <- t.t_poll +. elapsed;
          Ledger.charge t.ledger Ledger.Poll ~pid:(victim_pid t) ~flow:(-1)
            elapsed
        end
        else
          Ledger.charge t.ledger Ledger.Soft ~pid:(victim_pid t) ~flow:(-1)
            elapsed
    | Wuser p ->
        t.t_user <- t.t_user +. elapsed;
        p.Proc.cpu_time <- p.Proc.cpu_time +. elapsed;
        p.Proc.last_on_cpu <- Engine.now t.engine;
        if p.Proc.lcls = 1 then
          Ledger.charge t.ledger Ledger.Proto ~pid:p.Proc.pid
            ~flow:p.Proc.lflow elapsed
        else if p.Proc.lcls = 2 then begin
          t.t_poll <- t.t_poll +. elapsed;
          Ledger.charge t.ledger Ledger.Poll ~pid:p.Proc.pid
            ~flow:p.Proc.lflow elapsed
        end
        else
          Ledger.charge t.ledger Ledger.App ~pid:p.Proc.pid ~flow:(-1) elapsed

(* ------------------------------------------------------------------ *)
(* Dispatch machinery                                                  *)
(* ------------------------------------------------------------------ *)

let class_of = function Whard _ -> 2 | Wsoft _ -> 1 | Wuser _ -> 0

let best_class t =
  if not (Deque.is_empty t.hardq) then 2
  else if not (Deque.is_empty t.softq) then 1
  else match Sched.pick t.sched with Some _ -> 0 | None -> -1

let stop_running t =
  match t.running with
  | None -> ()
  | Some r ->
      let now = Engine.now t.engine in
      let elapsed = now -. r.r_started in
      charge t r.r_who elapsed;
      (match r.r_ev with Some ev -> Engine.cancel t.engine ev | None -> ());
      let left = Float.max 0. (r.r_left -. elapsed) in
      (match r.r_who with
       | Whard w ->
           w.left <- left;
           trace_work_end t Trace.Hard w;
           Deque.push_front t.hardq w
       | Wsoft w ->
           w.left <- left;
           (* Preempted: close the span; re-dispatch opens a new one. *)
           trace_work_end t Trace.Soft w;
           Deque.push_front t.softq w
       | Wuser p -> p.Proc.work_left <- left);
      t.running <- None

(* Targets are registered by [create] before any event can fire. *)
let seg_target t =
  match t.seg_tgt with Some g -> g | None -> assert false

let wake_target t =
  match t.wake_tgt with Some g -> g | None -> assert false

let rec segment_done t () =
  let r = match t.running with Some r -> r | None -> assert false in
  charge t r.r_who r.r_left;
  r.r_ev <- None;
  t.running <- None;
  (match r.r_who with
   | Whard w ->
       w.action ();
       trace_work_end t Trace.Hard w
   | Wsoft w ->
       w.action ();
       trace_work_end t Trace.Soft w
   | Wuser p ->
       p.Proc.work_left <- 0.;
       p.Proc.pending <- Proc.Resume;
       run_instant t p)

(* Run a process's host-side code until its next effect.  Instantaneous in
   virtual time.  Must execute with [in_dispatch] set. *)
and run_instant t (p : Proc.t) =
  let step =
    match p.Proc.pending with
    | Proc.Start body ->
        p.Proc.pending <- Proc.Blocked;
        fun () -> Effect.Deep.match_with (fun () -> body p) () (handler t p)
    | Proc.Resume ->
        let k = match p.Proc.k with Some k -> k | None -> assert false in
        p.Proc.k <- None;
        p.Proc.pending <- Proc.Blocked;
        fun () -> Effect.Deep.continue k ()
    | Proc.Work | Proc.Blocked | Proc.Done -> assert false
  in
  step ();
  match p.Proc.pending with
  | Proc.Done -> reap t p
  | Proc.Work | Proc.Blocked | Proc.Resume -> ()
  | Proc.Start _ -> assert false

and reap t (p : Proc.t) =
  let now = Engine.now t.engine in
  Trace.thread_state t.tracer ~pid:p.Proc.pid ~state:Trace.Exited;
  p.Proc.exited <- true;
  p.Proc.exited_at <- now;
  Sched.exit_thread t.sched p.Proc.thread;
  Hashtbl.remove t.procs (Sched.tid p.Proc.thread);
  (match t.cur with Some q when q.Proc.pid = p.Proc.pid -> t.cur <- None | _ -> ());
  let waiters = p.Proc.exit_waiters.Proc.waiters in
  p.Proc.exit_waiters.Proc.waiters <- [];
  List.iter (fun (q : Proc.t) -> wake t q) waiters

and wake t (q : Proc.t) =
  if not q.Proc.exited then begin
    Trace.thread_state t.tracer ~pid:q.Proc.pid ~state:Trace.Runnable;
    q.Proc.pending <- Proc.Resume;
    Sched.make_runnable t.sched ~now:(Engine.now t.engine) q.Proc.thread;
    (* BSD preemption point: a wakeup may preempt a worse-priority curproc. *)
    t.force_resched <- true;
    t.redo <- true
  end

and handler : type r. t -> Proc.t -> (r, unit) Effect.Deep.handler =
  fun t p ->
  let open Effect.Deep in
  {
    retc = (fun _ -> p.Proc.pending <- Proc.Done);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Proc.Compute d ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.Proc.k <- Some k;
                p.Proc.work_left <- d;
                (* Latch the ledger class for this segment; it survives
                   preemption splits because [charge] reads it from the
                   process, not from the (consumed) hint. *)
                p.Proc.lcls <-
                  (if t.hint_proto then 1 else if t.hint_poll then 2 else 0);
                p.Proc.lflow <- t.hint_flow;
                t.hint_proto <- false;
                t.hint_poll <- false;
                t.hint_flow <- -1;
                p.Proc.pending <- Proc.Work)
        | Proc.Block wq ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.Proc.k <- Some k;
                p.Proc.pending <- Proc.Blocked;
                wq.Proc.waiters <- wq.Proc.waiters @ [ p ];
                Trace.thread_state t.tracer ~pid:p.Proc.pid
                  ~state:Trace.Sleeping;
                Sched.sleep t.sched ~now:(Engine.now t.engine) p.Proc.thread)
        | Proc.Sleep d ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.Proc.k <- Some k;
                p.Proc.pending <- Proc.Blocked;
                Trace.thread_state t.tracer ~pid:p.Proc.pid
                  ~state:Trace.Sleeping;
                Sched.sleep t.sched ~now:(Engine.now t.engine) p.Proc.thread;
                ignore
                  (Engine.schedule_to_after t.engine ~delay:d (wake_target t) p))
        | Proc.Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                p.Proc.k <- Some k;
                p.Proc.pending <- Proc.Resume;
                Sched.requeue t.sched p.Proc.thread;
                t.force_resched <- true)
        | _ -> None);
  }

and begin_timed t (p : Proc.t) =
  let now = Engine.now t.engine in
  if t.last_user <> p.Proc.pid then begin
    (* Cache-reload penalty: eviction is proportional to how long other
       work occupied the CPU, capped by this process's working set.  This
       keeps the model from compounding reloads into a livelock when a
       process is preempted mid-reload. *)
    let absence = Float.max 0. (now -. p.Proc.last_on_cpu) in
    let reload = Float.min p.Proc.working_set_us (0.5 *. absence) in
    let overhead = t.ctx_switch_cost +. reload in
    if overhead > 0. then begin
      p.Proc.work_left <- p.Proc.work_left +. overhead;
      p.Proc.overhead_time <- p.Proc.overhead_time +. overhead
    end;
    t.n_ctx_switch <- t.n_ctx_switch + 1;
    Trace.ctx_switch t.tracer ~from_pid:t.last_user ~to_pid:p.Proc.pid;
    t.last_user <- p.Proc.pid
  end;
  t.cur <- Some p;
  let r = { r_who = Wuser p; r_left = p.Proc.work_left; r_started = now; r_ev = None } in
  t.running <- Some r;
  r.r_ev <-
    Some (Engine.schedule_to_after t.engine ~delay:r.r_left (seg_target t) ())

and begin_work t who (w : work) =
  let now = Engine.now t.engine in
  (match who with
   | `Hard -> t.n_hard_dispatch <- t.n_hard_dispatch + 1
   | `Soft -> t.n_soft_dispatch <- t.n_soft_dispatch + 1);
  let lvl = match who with `Hard -> Trace.Hard | `Soft -> Trace.Soft in
  trace_work_begin t lvl w;
  let r_who = match who with `Hard -> Whard w | `Soft -> Wsoft w in
  let r = { r_who; r_left = w.left; r_started = now; r_ev = None } in
  t.running <- Some r;
  if w.left <= 0. then begin
    (* Zero-cost work completes immediately. *)
    t.running <- None;
    w.action ();
    trace_work_end t lvl w;
    t.redo <- true
  end
  else
    r.r_ev <-
      Some (Engine.schedule_to_after t.engine ~delay:w.left (seg_target t) ())

and start_best t =
  if not (Deque.is_empty t.hardq) then
    match Deque.pop_front t.hardq with
    | Some w -> begin_work t `Hard w
    | None -> assert false
  else if not (Deque.is_empty t.softq) then
    match Deque.pop_front t.softq with
    | Some w -> begin_work t `Soft w
    | None -> assert false
  else
    match Sched.pick t.sched with
    | None -> () (* idle *)
    | Some th ->
        (match Hashtbl.find_opt t.procs (Sched.tid th) with
         | None -> assert false
         | Some p ->
             (match p.Proc.pending with
              | Proc.Work -> begin_timed t p
              | Proc.Start _ | Proc.Resume ->
                  (* Host-side code is free in virtual time: run it now, then
                     re-evaluate.  [last_user] is left alone so the switch
                     penalty lands on the first timed segment. *)
                  t.cur <- Some p;
                  run_instant t p;
                  t.redo <- true
              | Proc.Blocked | Proc.Done -> assert false))

and do_dispatch t =
  (match t.running with
   | None -> start_best t
   | Some r ->
       let b = best_class t in
       let c = class_of r.r_who in
       if b > c then begin
         stop_running t;
         start_best t
       end
       else if c = 0 && b = 0 then begin
         (* User-user preemption only at BSD's preemption points (wakeup,
            tick, yield), flagged via [force_resched] — not on every
            dispatch event. *)
         let p = match r.r_who with Wuser p -> p | Whard _ | Wsoft _ -> assert false in
         if t.force_resched && Sched.should_preempt t.sched ~current:p.Proc.thread
         then begin
           stop_running t;
           start_best t
         end
       end);
  t.force_resched <- false

(* All entry points funnel through [guarded]: mutations run immediately, and
   a single non-reentrant dispatch loop then brings the CPU to a fixed
   point. *)
and guarded t f =
  if t.in_dispatch then begin
    f ();
    t.redo <- true
  end
  else begin
    t.in_dispatch <- true;
    f ();
    do_dispatch t;
    while t.redo do
      t.redo <- false;
      do_dispatch t
    done;
    t.in_dispatch <- false
  end

(* ------------------------------------------------------------------ *)
(* Clock: scheduler tick (10 ms) and usage decay (1 s)                 *)
(* ------------------------------------------------------------------ *)

let charged_proc t =
  match t.running with
  | Some { r_who = Wuser p; _ } -> Some p
  | Some { r_who = Whard _ | Wsoft _; _ } -> t.cur (* mis-accounting: the interrupted one *)
  | None -> None

let tick t =
  guarded t (fun () ->
      (match charged_proc t with
       | Some p -> Sched.charge_tick t.sched p.Proc.thread
       | None -> ());
      (match t.running with
       | Some { r_who = Wuser p; _ } when Sched.quantum_expired p.Proc.thread ->
           Sched.requeue t.sched p.Proc.thread
       | Some _ | None -> ());
      (* Ticks are a BSD preemption point: priorities were just
         recomputed. *)
      t.force_resched <- true)

let decay t = guarded t (fun () -> Sched.decay t.sched)

(* Periodic clocks re-arm their own event record ([reschedule_after]), so a
   long run pays one slot and one closure total per clock, not one per
   firing. *)
let install_periodic engine ~delay fn =
  let h = ref None in
  let ev =
    Engine.schedule_after engine ~delay (fun () ->
        fn ();
        match !h with
        | Some ev -> Engine.reschedule_after engine ev ~delay
        | None -> assert false)
  in
  h := Some ev

let install_tick t =
  install_periodic t.engine ~delay:Sched.tick_interval (fun () -> tick t)

let install_decay t =
  install_periodic t.engine ~delay:Sched.decay_interval (fun () -> decay t)

let create engine ?(ctx_switch_cost = 0.) ?(start_clock = true) ~name () =
  let t =
    { cpu_name = name; engine; sched = Sched.create (); ctx_switch_cost;
      hardq = Deque.create (); softq = Deque.create ();
      procs = Hashtbl.create 17; next_pid = 1; running = None; cur = None;
      last_user = -1; in_dispatch = false; redo = false; force_resched = false;
      t_hard = 0.; t_soft = 0.; t_user = 0.; t_poll = 0.; n_ctx_switch = 0;
      n_soft_dispatch = 0; n_hard_dispatch = 0; created_at = Engine.now engine;
      tracer = Trace.null (); seg_tgt = None; wake_tgt = None;
      ledger = Ledger.create (); hint_proto = false; hint_poll = false;
      hint_flow = -1 }
  in
  (* One dispatcher per work-item kind, registered once; [segment_done t]
     is hoisted so firing a segment allocates nothing either. *)
  let segdone = segment_done t in
  t.seg_tgt <- Some (Engine.target engine (fun () -> guarded t segdone));
  t.wake_tgt <-
    Some (Engine.target engine (fun p -> guarded t (fun () -> wake t p)));
  if start_clock then begin
    install_tick t;
    install_decay t
  end;
  t

(* ------------------------------------------------------------------ *)
(* Public operations                                                   *)
(* ------------------------------------------------------------------ *)

let spawn t ?(nice = 0) ?(working_set = 0.) ~name body =
  let thread = Sched.add_thread t.sched ~nice ~name () in
  let p : Proc.t =
    { Proc.pid = t.next_pid; name; thread; working_set_us = working_set;
      pending = Proc.Start body; work_left = 0.; k = None; exited = false;
      cpu_time = 0.; overhead_time = 0.;
      exit_waiters = Proc.waitq (name ^ ".exit");
      started_at = Engine.now t.engine; exited_at = Time.zero;
      last_on_cpu = Engine.now t.engine; lcls = 0; lflow = -1 }
  in
  t.next_pid <- t.next_pid + 1;
  Hashtbl.add t.procs (Sched.tid thread) p;
  Ledger.set_name t.ledger ~pid:p.Proc.pid name;
  Trace.thread_state t.tracer ~pid:p.Proc.pid ~state:Trace.Spawned;
  guarded t (fun () ->
      Sched.make_runnable t.sched ~now:(Engine.now t.engine) thread);
  p

let join (p : Proc.t) = if not p.Proc.exited then Proc.block p.Proc.exit_waiters

let wakeup_one t (wq : Proc.waitq) =
  match wq.Proc.waiters with
  | [] -> false
  | p :: rest ->
      wq.Proc.waiters <- rest;
      guarded t (fun () -> wake t p);
      true

let wakeup_all t (wq : Proc.waitq) =
  let ws = wq.Proc.waiters in
  wq.Proc.waiters <- [];
  guarded t (fun () -> List.iter (wake t) ws);
  List.length ws

let proc_count t = Hashtbl.length t.procs

let post_hard t ?(label = "hardintr") ?(tpkt = -1) ~cost action =
  guarded t (fun () ->
      Deque.push_back t.hardq
        { label; left = cost; tpkt; wpoll = false; action })

let post_soft t ?(label = "softintr") ?(tpkt = -1) ?(poll = false) ~cost action =
  guarded t (fun () ->
      Deque.push_back t.softq
        { label; left = cost; tpkt; wpoll = poll; action })

(* [compute_proto] is [Proc.compute] with ledger attribution: the segment
   is receiver-context protocol work serving [flow].  The hint is consumed
   synchronously by the Compute effect handler (or cleared below when the
   cost is zero and no effect fires), so it cannot leak onto another
   process's segment. *)
let compute_proto t ?(flow = -1) cost =
  t.hint_proto <- true;
  t.hint_flow <- flow;
  Proc.compute cost;
  t.hint_proto <- false;
  t.hint_flow <- -1

(* [compute_poll] is the process-context analogue for ksoftirqd: the
   segment is NAPI poll work, ledgered as [Poll] against the polling
   process itself (Linux charges ksoftirqd, not the victim). *)
let compute_poll t ?(flow = -1) cost =
  t.hint_poll <- true;
  t.hint_flow <- flow;
  Proc.compute cost;
  t.hint_poll <- false;
  t.hint_flow <- -1

let ledger t = t.ledger

let set_account t (p : Proc.t) ~owner =
  ignore t;
  Sched.set_account p.Proc.thread
    (Option.map (fun (o : Proc.t) -> o.Proc.thread) owner)

let self_running t =
  match t.running with Some { r_who = Wuser p; _ } -> Some p | Some _ | None -> None

let curproc t = t.cur

let hard_pending t = Deque.length t.hardq
let soft_pending t = Deque.length t.softq
let time_hard t = t.t_hard
let time_soft t = t.t_soft
let time_user t = t.t_user
let time_poll t = t.t_poll

let time_idle t =
  let elapsed = Engine.now t.engine -. t.created_at in
  Float.max 0. (elapsed -. t.t_hard -. t.t_soft -. t.t_user)

let context_switches t = t.n_ctx_switch
let softirq_dispatches t = t.n_soft_dispatch
let hardirq_dispatches t = t.n_hard_dispatch

let utilization t =
  let elapsed = Engine.now t.engine -. t.created_at in
  if elapsed <= 0. then 0. else (t.t_hard +. t.t_soft +. t.t_user) /. elapsed

(* Sorted by pid so callers observe processes in a reproducible order. *)
let iter_procs t f = Lrp_det.Det.iter_sorted (fun _ p -> f p) t.procs

let register_metrics t m ~prefix =
  let module Metrics = Lrp_trace.Metrics in
  Metrics.gauge m (prefix ^ ".time_hard_us") (fun () -> t.t_hard);
  Metrics.gauge m (prefix ^ ".time_soft_us") (fun () -> t.t_soft);
  Metrics.gauge m (prefix ^ ".time_user_us") (fun () -> t.t_user);
  Metrics.gauge m (prefix ^ ".time_idle_us") (fun () -> time_idle t);
  Metrics.gauge m (prefix ^ ".ctx_switches") (fun () ->
      float_of_int t.n_ctx_switch);
  Metrics.gauge m (prefix ^ ".hard_dispatches") (fun () ->
      float_of_int t.n_hard_dispatch);
  Metrics.gauge m (prefix ^ ".soft_dispatches") (fun () ->
      float_of_int t.n_soft_dispatch);
  Metrics.gauge m (prefix ^ ".procs") (fun () ->
      float_of_int (Hashtbl.length t.procs));
  Sched.register_metrics t.sched m ~prefix:(prefix ^ ".sched")
