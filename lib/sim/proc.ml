open Lrp_engine
module Sched = Lrp_sched.Sched

type t = {
  pid : int;
  name : string;
  thread : Sched.thread;
  working_set_us : float;
  mutable pending : pending;
  mutable work_left : float;
  mutable k : (unit, unit) Effect.Deep.continuation option;
  mutable exited : bool;
  mutable cpu_time : float;
  mutable overhead_time : float;
  exit_waiters : waitq;
  mutable started_at : Time.t;
  mutable exited_at : Time.t;
  mutable last_on_cpu : Time.t;
  mutable lcls : int;
  mutable lflow : int;
}

and pending = Start of (t -> unit) | Work | Resume | Blocked | Done

and waitq = { wq_name : string; mutable waiters : t list }

type _ Effect.t +=
  | Compute : float -> unit Effect.t
  | Block : waitq -> unit Effect.t
  | Sleep : float -> unit Effect.t
  | Yield : unit Effect.t

let compute d = if d > 0. then Effect.perform (Compute d)

let block wq = Effect.perform (Block wq)

let sleep_for d = Effect.perform (Sleep d)

let yield () = Effect.perform Yield

let waitq wq_name = { wq_name; waiters = [] }

let waitq_remove wq p =
  wq.waiters <- List.filter (fun q -> q.pid <> p.pid) wq.waiters
