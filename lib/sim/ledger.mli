(** Per-cycle CPU accounting ledger.

    Mirrors every microsecond the CPU model charges into
    {class} × {process} × {flow} cells, making the paper's resource-
    accounting claim measurable: under BSD, receive-side protocol cycles
    accrue at interrupt level against the *interrupted* process (the
    [intr_victim]/[soft_victim] columns — "charged but not mine"), while
    under NI-LRP/SOFT-LRP they accrue as [proto] cycles against the
    process that actually receives the data, attributed to its channel.

    The ledger is always on: {!charge} is float-array arithmetic plus one
    int-keyed hash probe, allocation-free after a pid/flow's first
    sighting (the [ledger_overhead] bench entry pins this).  It observes
    accounting only — it never schedules — so it cannot perturb results. *)

type t

(** Charge classes.  [Intr]/[Soft] cycles are recorded against the
    interrupted victim (BSD [curproc], or pid [-1] when the CPU was
    idle); [Proto] is protocol work in a process's own context; [Poll]
    is NAPI-style budgeted poll work (softirq poll rounds and ksoftirqd
    process-context polling — kept apart from [Soft] so the overload
    detector can tell a polling kernel from an interrupt-drowned one);
    [App] is everything else. *)
type cls = Intr | Soft | Proto | Poll | App

val create : unit -> t

val charge : t -> cls -> pid:int -> flow:int -> float -> unit
(** [charge t cls ~pid ~flow d] adds [d] microseconds.  [flow] is the
    served channel id, or [-1] for none (interrupt and plain app work). *)

val set_name : t -> pid:int -> string -> unit
(** Attach a display name to a pid (done at spawn, so rows outlive their
    processes). *)

val total : t -> cls -> float
val grand_total : t -> float

type row = {
  pid : int;
  name : string;
  intr_victim : float;  (** hard-interrupt cycles charged while this pid was curproc *)
  soft_victim : float;  (** soft-interrupt cycles charged while this pid was curproc *)
  proto : float;        (** receiver-context protocol cycles of this pid *)
  poll : float;         (** NAPI poll cycles (softirq rounds against the
                            victim pid, ksoftirqd rounds against its own) *)
  app : float;          (** this pid's own application cycles *)
}

val misaccounted : row -> float
(** Cycles charged to this process that belong to interrupt-level work —
    the paper's mis-accounting metric ([intr_victim + soft_victim]). *)

type flow_row = { flow : int; f_soft : float; f_proto : float; f_poll : float }

val rows : t -> row list
(** Per-process rows, pid-sorted (pid [-1] is the idle context). *)

val flow_rows : t -> flow_row list
(** Per-flow/channel rows, id-sorted. *)
