(* Per-cycle CPU accounting ledger.

   Every simulated microsecond the CPU charges is mirrored here under one
   of four classes, keyed by the process it was *charged to* and (for
   receiver-context protocol work) the flow/channel it served:

     - Intr / Soft: interrupt-level work.  The pid column records BSD's
       "curproc at the time" — the interrupted victim — which is exactly
       the paper's mis-accounting: under BSD all receive-side protocol
       cycles land in these columns against whoever happened to be
       running, while under LRP the protocol cycles move to the Proto
       class against the receiving process itself.
     - Proto: protocol processing performed in a process's own context
       (LRP's lazy receiver processing, the UDP helper, the forwarding
       daemon), attributed to the owning pid and the channel it drained.
     - Poll: NAPI-style budgeted poll cycles — softirq poll rounds and
       ksoftirqd process-context polling.  Kept distinct from Soft so the
       overload detector can discriminate a NAPI kernel spending its CPU
       in accountable poll work from a BSD kernel drowning in eager
       interrupt-level processing.
     - App: everything else a process computes.

   Idle is derived by the caller (elapsed minus the grand total).  Rows
   are plain float arrays so the charge path allocates nothing beyond the
   first sighting of a pid/flow. *)

type cls = Intr | Soft | Proto | Poll | App

let idx = function Intr -> 0 | Soft -> 1 | Proto -> 2 | Poll -> 3 | App -> 4

type prow = { mutable p_name : string; pcols : float array }

type t = {
  totals : float array;                  (* 5 class totals, us *)
  pids : (int, prow) Hashtbl.t;          (* pid -> columns; -1 = idle ctx *)
  flows : (int, float array) Hashtbl.t;  (* flow/channel id -> columns *)
}

let create () =
  { totals = Array.make 5 0.;
    pids = Hashtbl.create 17;
    flows = Hashtbl.create 17 }

let prow t pid =
  match Hashtbl.find t.pids pid with
  | r -> r
  | exception Not_found ->
      let r =
        { p_name = (if pid < 0 then "(idle)" else "?"); pcols = Array.make 5 0. }
      in
      Hashtbl.add t.pids pid r;
      r

let frow t flow =
  match Hashtbl.find t.flows flow with
  | c -> c
  | exception Not_found ->
      let c = Array.make 5 0. in
      Hashtbl.add t.flows flow c;
      c

let set_name t ~pid name = (prow t pid).p_name <- name

let charge t cls ~pid ~flow d =
  if d > 0. then begin
    let i = idx cls in
    t.totals.(i) <- t.totals.(i) +. d;
    let r = prow t pid in
    r.pcols.(i) <- r.pcols.(i) +. d;
    if flow >= 0 then begin
      let c = frow t flow in
      c.(i) <- c.(i) +. d
    end
  end

let total t cls = t.totals.(idx cls)

let grand_total t =
  t.totals.(0) +. t.totals.(1) +. t.totals.(2) +. t.totals.(3) +. t.totals.(4)

type row = {
  pid : int;
  name : string;
  intr_victim : float;
  soft_victim : float;
  proto : float;
  poll : float;
  app : float;
}

let misaccounted r = r.intr_victim +. r.soft_victim

type flow_row = { flow : int; f_soft : float; f_proto : float; f_poll : float }

let rows t =
  let acc = ref [] in
  Lrp_det.Det.iter_sorted
    (fun pid (r : prow) ->
      acc :=
        { pid; name = r.p_name; intr_victim = r.pcols.(0);
          soft_victim = r.pcols.(1); proto = r.pcols.(2);
          poll = r.pcols.(3); app = r.pcols.(4) }
        :: !acc)
    t.pids;
  List.rev !acc

let flow_rows t =
  let acc = ref [] in
  Lrp_det.Det.iter_sorted
    (fun flow (c : float array) ->
      acc := { flow; f_soft = c.(1); f_proto = c.(2); f_poll = c.(3) } :: !acc)
    t.flows;
  List.rev !acc
