(** Per-kernel metrics registry.

    Components (kernel, CPU, scheduler, NICs, protocol state) register
    named instruments at creation time; experiments and the bench harness
    pull a deterministic, name-sorted snapshot at the end of a run.

    A registry is plain mutable state owned by one kernel — never shared
    across domains — so parallel sweeps stay race-free, mirroring the
    per-kernel tracer.  Three instrument kinds:

    - {e counters}: monotonically increasing ints, pushed by the owner;
    - {e gauges}: [unit -> float] callbacks sampled at snapshot time
      (the common case here — most interesting values already live in
      simulator state, so registration is just exposing them);
    - {e histograms}: {!Lrp_stats.Stats.Samples} distributions, expanded
      in the snapshot into [.count], [.mean], [.p50] and [.p99] entries. *)

type t

type counter

val create : unit -> t

val counter : t -> string -> counter
(** Register (or return the existing) counter under [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> string -> (unit -> float) -> unit
(** Register a pull gauge.  Re-registering a name replaces the callback. *)

val histogram : t -> string -> Lrp_stats.Stats.Samples.t
(** Register (or return the existing) histogram under [name]. *)

val observe : Lrp_stats.Stats.Samples.t -> float -> unit
(** Alias for [Samples.add], for call-site symmetry with [incr]. *)

val snapshot : t -> (string * float) list
(** All instruments, sorted by name.  Gauges are sampled now; histograms
    expand to four derived entries; empty histograms report [nan] for the
    statistical entries (and 0 for [.count]). *)
