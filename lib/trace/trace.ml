module Samples = Lrp_stats.Stats.Samples

type intr_level = Hard | Soft

type thread_state = Spawned | Runnable | Sleeping | Exited

type alarm = Overload | Livelock | Starvation | Queue_watermark

type event =
  | Nic_rx of { pkt : int; bytes : int }
  | Demux of { pkt : int; chan : int; flow : int }
  | Ipq_enqueue of { pkt : int; qlen : int }
  | Ipq_drop of { pkt : int; qlen : int }
  | Early_discard of { pkt : int; chan : int }
  | Softint_begin of { pkt : int }
  | Softint_end of { pkt : int }
  | Proto_deliver of { pkt : int; conn : int; in_proc : bool }
  | Sock_enqueue of { pkt : int; sock : int }
  | Sock_drop of { pkt : int; sock : int }
  | Syscall_copyout of { pkt : int; sock : int; bytes : int }
  | Csum_drop of { pkt : int }
  | Mbuf_drop of { pkt : int }
  | Intr_enter of { level : intr_level; label : string }
  | Intr_exit of { level : intr_level; label : string }
  | Ctx_switch of { from_pid : int; to_pid : int }
  | Thread_state of { pid : int; state : thread_state }
  | Note of string
  | Alarm of { alarm : alarm; a : int; b : int }
  | Poll_begin of { q : int; pending : int }
  | Poll_end of { q : int; served : int }
  | Coalesce_fire of { q : int; pending : int }
  | Gro_merge of { pkt : int; into : int }
  | Gro_flush of { pkt : int; segs : int }

type cls = Packet_events | Sched_events | Note_events

let class_of_event = function
  | Nic_rx _ | Demux _ | Ipq_enqueue _ | Ipq_drop _ | Early_discard _
  | Softint_begin _ | Softint_end _ | Proto_deliver _ | Sock_enqueue _
  | Sock_drop _ | Syscall_copyout _ | Csum_drop _ | Mbuf_drop _
  | Gro_merge _ | Gro_flush _ ->
      Packet_events
  | Intr_enter _ | Intr_exit _ | Ctx_switch _ | Thread_state _
  | Poll_begin _ | Poll_end _ | Coalesce_fire _ ->
      Sched_events
  | Note _ | Alarm _ -> Note_events

let bit = function Packet_events -> 1 | Sched_events -> 2 | Note_events -> 4
let all_mask = 7

type entry = { ts : float; seq : int; ev : event }

let dummy_entry = { ts = 0.; seq = -1; ev = Note "" }

type t = {
  tr_name : string;
  now : unit -> float;
  cap : int;
  mutable on : bool;
  mutable mask : int;
  mutable buf : entry array;  (* [||] until the first recorded event *)
  mutable head : int;         (* next write slot *)
  mutable count : int;        (* live entries, <= cap *)
  mutable seq : int;
  mutable lost : int;
  mutable packed : Precorder.t option;
      (* when set, events go into the packed SoA ring (zero allocation per
         record) instead of the typed entry ring; [events] decodes them
         back, so every sink below works unchanged *)
}

let create ?(capacity = 65536) ~name ~now () =
  { tr_name = name; now; cap = max 1 capacity; on = false; mask = all_mask;
    buf = [||]; head = 0; count = 0; seq = 0; lost = 0; packed = None }

let null () = create ~capacity:1 ~name:"null" ~now:(fun () -> 0.) ()

let name t = t.tr_name
let enabled t = t.on
let set_enabled t b = t.on <- b
let set_filter t classes = t.mask <- List.fold_left (fun m c -> m lor bit c) 0 classes

let use_packed t ~clock =
  t.packed <- Some (Precorder.create ~capacity:t.cap ~clock ())

let packed t = t.packed

let length t =
  match t.packed with Some p -> Precorder.length p | None -> t.count

let dropped t =
  match t.packed with Some p -> Precorder.dropped p | None -> t.lost

let clear t =
  (match t.packed with Some p -> Precorder.clear p | None -> ());
  t.head <- 0;
  t.count <- 0;
  t.seq <- 0;
  t.lost <- 0

let record t ev =
  (* alloc: cold — lazy first-use sizing *)
  if Array.length t.buf = 0 then t.buf <- Array.make t.cap dummy_entry;
  if t.count = t.cap then t.lost <- t.lost + 1 else t.count <- t.count + 1;
  (* alloc: cold — untyped ring entry; the packed recorder is the hot sink *)
  t.buf.(t.head) <- { ts = t.now (); seq = t.seq; ev };
  t.seq <- t.seq + 1;
  t.head <- (t.head + 1) mod t.cap

(* --- packed encoding ---------------------------------------------------- *)

(* Kind codes for the packed backend.  These are part of the binary dump
   format (DESIGN.md §13): never renumber, only append. *)

let k_nic_rx = 0
let k_demux = 1
let k_ipq_enqueue = 2
let k_ipq_drop = 3
let k_early_discard = 4
let k_softint_begin = 5
let k_softint_end = 6
let k_proto_deliver = 7
let k_sock_enqueue = 8
let k_sock_drop = 9
let k_syscall_copyout = 10
let k_csum_drop = 11
let k_mbuf_drop = 12
let k_intr_enter = 13
let k_intr_exit = 14
let k_ctx_switch = 15
let k_thread_state = 16
let k_note = 17
let k_alarm = 18
let k_poll_begin = 19
let k_poll_end = 20
let k_coalesce_fire = 21
let k_gro_merge = 22
let k_gro_flush = 23

let level_code = function Hard -> 0 | Soft -> 1
let level_of_code c = if c = 0 then Hard else Soft

let state_code = function
  | Spawned -> 0
  | Runnable -> 1
  | Sleeping -> 2
  | Exited -> 3

let state_of_code = function
  | 0 -> Spawned
  | 1 -> Runnable
  | 2 -> Sleeping
  | _ -> Exited

let alarm_code = function
  | Overload -> 0
  | Livelock -> 1
  | Starvation -> 2
  | Queue_watermark -> 3

let alarm_of_code = function
  | 0 -> Overload
  | 1 -> Livelock
  | 2 -> Starvation
  | _ -> Queue_watermark

(* Lossless packed -> typed decode; the inverse of the emitters below. *)
let event_of_packed p ~kind ~ident ~a ~b =
  match kind with
  | 0 -> Nic_rx { pkt = ident; bytes = a }
  | 1 -> Demux { pkt = ident; chan = a; flow = b }
  | 2 -> Ipq_enqueue { pkt = ident; qlen = a }
  | 3 -> Ipq_drop { pkt = ident; qlen = a }
  | 4 -> Early_discard { pkt = ident; chan = a }
  | 5 -> Softint_begin { pkt = ident }
  | 6 -> Softint_end { pkt = ident }
  | 7 -> Proto_deliver { pkt = ident; conn = a; in_proc = b = 1 }
  | 8 -> Sock_enqueue { pkt = ident; sock = a }
  | 9 -> Sock_drop { pkt = ident; sock = a }
  | 10 -> Syscall_copyout { pkt = ident; sock = a; bytes = b }
  | 11 -> Csum_drop { pkt = ident }
  | 12 -> Mbuf_drop { pkt = ident }
  | 13 ->
      Intr_enter { level = level_of_code a; label = Precorder.get_string p b }
  | 14 ->
      Intr_exit { level = level_of_code a; label = Precorder.get_string p b }
  | 15 -> Ctx_switch { from_pid = a; to_pid = b }
  | 16 -> Thread_state { pid = a; state = state_of_code b }
  | 17 -> Note (Precorder.get_string p a)
  | 18 -> Alarm { alarm = alarm_of_code ident; a; b }
  | 19 -> Poll_begin { q = ident; pending = a }
  | 20 -> Poll_end { q = ident; served = a }
  | 21 -> Coalesce_fire { q = ident; pending = a }
  | 22 -> Gro_merge { pkt = ident; into = a }
  | 23 -> Gro_flush { pkt = ident; segs = a }
  | k -> Note (Printf.sprintf "unknown-kind-%d" k)

let events_of_precorder p =
  let acc = ref [] in
  Precorder.iter p (fun ~ts ~seq ~kind ~ident ~a ~b ->
      acc := (ts, seq, event_of_packed p ~kind ~ident ~a ~b) :: !acc);
  List.rev !acc

let events t =
  match t.packed with
  | Some p -> events_of_precorder p
  | None ->
      let start = (t.head - t.count + t.cap * 2) mod t.cap in
      List.init t.count (fun i ->
          let e = t.buf.((start + i) mod t.cap) in
          (e.ts, e.seq, e.ev))

(* Merge per-cell recorder streams into one timeline keyed by
   (timestamp, stream id, sequence).  The key is a total order — (stream,
   seq) is unique — and the comparator is explicit field-by-field, so the
   merged dump is deterministic and identical however the streams were
   produced (any shard count). *)
let merged_events streams =
  let all =
    List.concat_map
      (fun (stream, t) ->
        List.map (fun (ts, seq, ev) -> (stream, ts, seq, ev)) (events t))
      streams
  in
  List.sort
    (fun (s1, ts1, q1, _) (s2, ts2, q2, _) ->
      let c = Float.compare ts1 ts2 in
      if c <> 0 then c
      else
        let c = Int.compare s1 s2 in
        if c <> 0 then c else Int.compare q1 q2)
    all

(* Emitters check [on] and the class filter before allocating the event, so
   a disabled tracer costs one branch and zero allocation per call site.
   With the packed backend installed, an *enabled* tracer also allocates
   nothing: each emitter writes four words into the SoA ring instead of
   building the variant (the typed branch remains for tracers without a
   packed ring — tests, mock clocks). *)

let want t c = t.on && t.mask land bit c <> 0

let nic_rx t ~pkt ~bytes =
  if want t Packet_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_nic_rx ~ident:pkt ~a:bytes ~b:(-1)
    | None -> record t (Nic_rx { pkt; bytes }) (* alloc: cold — untyped tracing fallback; packed sink is the hot path *)

let demux t ~pkt ~chan ~flow =
  if want t Packet_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_demux ~ident:pkt ~a:chan ~b:flow
    | None -> record t (Demux { pkt; chan; flow })

let ipq_enqueue t ~pkt ~qlen =
  if want t Packet_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_ipq_enqueue ~ident:pkt ~a:qlen ~b:(-1)
    | None -> record t (Ipq_enqueue { pkt; qlen })

let ipq_drop t ~pkt ~qlen =
  if want t Packet_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_ipq_drop ~ident:pkt ~a:qlen ~b:(-1)
    | None -> record t (Ipq_drop { pkt; qlen }) (* alloc: cold — untyped tracing fallback; packed sink is the hot path *)

let early_discard t ~pkt ~chan =
  if want t Packet_events then
    match t.packed with
    | Some p ->
        Precorder.record p ~kind:k_early_discard ~ident:pkt ~a:chan ~b:(-1)
    | None -> record t (Early_discard { pkt; chan })

let softint_begin t ~pkt =
  if want t Packet_events then
    match t.packed with
    | Some p ->
        Precorder.record p ~kind:k_softint_begin ~ident:pkt ~a:(-1) ~b:(-1)
    | None -> record t (Softint_begin { pkt })

let softint_end t ~pkt =
  if want t Packet_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_softint_end ~ident:pkt ~a:(-1) ~b:(-1)
    | None -> record t (Softint_end { pkt })

let proto_deliver t ~pkt ~conn ~in_proc =
  if want t Packet_events then
    match t.packed with
    | Some p ->
        Precorder.record p ~kind:k_proto_deliver ~ident:pkt ~a:conn
          ~b:(if in_proc then 1 else 0)
    | None -> record t (Proto_deliver { pkt; conn; in_proc })

let sock_enqueue t ~pkt ~sock =
  if want t Packet_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_sock_enqueue ~ident:pkt ~a:sock ~b:(-1)
    | None -> record t (Sock_enqueue { pkt; sock })

let sock_drop t ~pkt ~sock =
  if want t Packet_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_sock_drop ~ident:pkt ~a:sock ~b:(-1)
    | None -> record t (Sock_drop { pkt; sock })

let syscall_copyout t ~pkt ~sock ~bytes =
  if want t Packet_events then
    match t.packed with
    | Some p ->
        Precorder.record p ~kind:k_syscall_copyout ~ident:pkt ~a:sock ~b:bytes
    | None -> record t (Syscall_copyout { pkt; sock; bytes })

let csum_drop t ~pkt =
  if want t Packet_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_csum_drop ~ident:pkt ~a:(-1) ~b:(-1)
    | None -> record t (Csum_drop { pkt })

let mbuf_drop t ~pkt =
  if want t Packet_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_mbuf_drop ~ident:pkt ~a:(-1) ~b:(-1)
    | None -> record t (Mbuf_drop { pkt })

let intr_enter t ~level ~label =
  if want t Sched_events then
    match t.packed with
    | Some p ->
        Precorder.record p ~kind:k_intr_enter ~ident:(-1)
          ~a:(level_code level) ~b:(Precorder.intern p label)
    | None -> record t (Intr_enter { level; label })

let intr_exit t ~level ~label =
  if want t Sched_events then
    match t.packed with
    | Some p ->
        Precorder.record p ~kind:k_intr_exit ~ident:(-1) ~a:(level_code level)
          ~b:(Precorder.intern p label)
    | None -> record t (Intr_exit { level; label })

let ctx_switch t ~from_pid ~to_pid =
  if want t Sched_events then
    match t.packed with
    | Some p ->
        Precorder.record p ~kind:k_ctx_switch ~ident:(-1) ~a:from_pid ~b:to_pid
    | None -> record t (Ctx_switch { from_pid; to_pid })

let thread_state t ~pid ~state =
  if want t Sched_events then
    match t.packed with
    | Some p ->
        Precorder.record p ~kind:k_thread_state ~ident:(-1) ~a:pid
          ~b:(state_code state)
    | None -> record t (Thread_state { pid; state })

let alarm t ~alarm:al ~a ~b =
  if want t Note_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_alarm ~ident:(alarm_code al) ~a ~b
    | None -> record t (Alarm { alarm = al; a; b })

let poll_begin t ~q ~pending =
  if want t Sched_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_poll_begin ~ident:q ~a:pending ~b:(-1)
    | None -> record t (Poll_begin { q; pending })

let poll_end t ~q ~served =
  if want t Sched_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_poll_end ~ident:q ~a:served ~b:(-1)
    | None -> record t (Poll_end { q; served })

let coalesce_fire t ~q ~pending =
  if want t Sched_events then
    match t.packed with
    | Some p ->
        Precorder.record p ~kind:k_coalesce_fire ~ident:q ~a:pending ~b:(-1)
    | None -> record t (Coalesce_fire { q; pending }) (* alloc: cold — untyped tracing fallback; packed sink is the hot path *)

let gro_merge t ~pkt ~into =
  if want t Packet_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_gro_merge ~ident:pkt ~a:into ~b:(-1)
    | None -> record t (Gro_merge { pkt; into })

let gro_flush t ~pkt ~segs =
  if want t Packet_events then
    match t.packed with
    | Some p -> Precorder.record p ~kind:k_gro_flush ~ident:pkt ~a:segs ~b:(-1)
    | None -> record t (Gro_flush { pkt; segs })

let note t s =
  if want t Note_events then
    match t.packed with
    | Some p ->
        Precorder.record p ~kind:k_note ~ident:(-1) ~a:(Precorder.intern p s)
          ~b:(-1)
    | None -> record t (Note s)

let notef t fmt =
  if want t Note_events then Printf.ksprintf (fun s -> note t s) fmt
  else Printf.ifprintf () fmt

(* --- sinks ------------------------------------------------------------- *)

let level_name = function Hard -> "hard" | Soft -> "soft"

let state_name = function
  | Spawned -> "spawned"
  | Runnable -> "runnable"
  | Sleeping -> "sleeping"
  | Exited -> "exited"

let alarm_name = function
  | Overload -> "overload"
  | Livelock -> "livelock"
  | Starvation -> "starvation"
  | Queue_watermark -> "queue-watermark"

let pp_event fmt = function
  | Nic_rx { pkt; bytes } -> Format.fprintf fmt "nic-rx pkt=%d bytes=%d" pkt bytes
  | Demux { pkt; chan; flow } ->
      Format.fprintf fmt "demux pkt=%d chan=%d flow=%d" pkt chan flow
  | Ipq_enqueue { pkt; qlen } ->
      Format.fprintf fmt "ipq-enqueue pkt=%d qlen=%d" pkt qlen
  | Ipq_drop { pkt; qlen } -> Format.fprintf fmt "ipq-drop pkt=%d qlen=%d" pkt qlen
  | Early_discard { pkt; chan } ->
      Format.fprintf fmt "early-discard pkt=%d chan=%d" pkt chan
  | Softint_begin { pkt } -> Format.fprintf fmt "softint-begin pkt=%d" pkt
  | Softint_end { pkt } -> Format.fprintf fmt "softint-end pkt=%d" pkt
  | Proto_deliver { pkt; conn; in_proc } ->
      Format.fprintf fmt "proto-deliver pkt=%d conn=%d ctx=%s" pkt conn
        (if in_proc then "proc" else "softint")
  | Sock_enqueue { pkt; sock } ->
      Format.fprintf fmt "sock-enqueue pkt=%d sock=%d" pkt sock
  | Sock_drop { pkt; sock } -> Format.fprintf fmt "sock-drop pkt=%d sock=%d" pkt sock
  | Syscall_copyout { pkt; sock; bytes } ->
      Format.fprintf fmt "syscall-copyout pkt=%d sock=%d bytes=%d" pkt sock bytes
  | Csum_drop { pkt } -> Format.fprintf fmt "csum-drop pkt=%d" pkt
  | Mbuf_drop { pkt } -> Format.fprintf fmt "mbuf-drop pkt=%d" pkt
  | Intr_enter { level; label } ->
      Format.fprintf fmt "intr-enter %s %s" (level_name level) label
  | Intr_exit { level; label } ->
      Format.fprintf fmt "intr-exit %s %s" (level_name level) label
  | Ctx_switch { from_pid; to_pid } ->
      Format.fprintf fmt "ctx-switch %d -> %d" from_pid to_pid
  | Thread_state { pid; state } ->
      Format.fprintf fmt "thread %d %s" pid (state_name state)
  | Note s -> Format.fprintf fmt "note %s" s
  | Alarm { alarm; a; b } ->
      Format.fprintf fmt "alarm %s a=%d b=%d" (alarm_name alarm) a b
  | Poll_begin { q; pending } ->
      Format.fprintf fmt "poll-begin q=%d pending=%d" q pending
  | Poll_end { q; served } ->
      Format.fprintf fmt "poll-end q=%d served=%d" q served
  | Coalesce_fire { q; pending } ->
      Format.fprintf fmt "coalesce-fire q=%d pending=%d" q pending
  | Gro_merge { pkt; into } ->
      Format.fprintf fmt "gro-merge pkt=%d into=%d" pkt into
  | Gro_flush { pkt; segs } ->
      Format.fprintf fmt "gro-flush pkt=%d segs=%d" pkt segs

let to_text buf t =
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "# trace %s: %d events (%d overwritten)@." t.tr_name
    (length t) (dropped t);
  List.iter
    (fun (ts, seq, ev) ->
      Format.fprintf fmt "%12.1f [%6d] %a@." ts seq pp_event ev)
    (events t);
  Format.pp_print_flush fmt ()

(* CSV: event-specific int arguments land in generic [a]/[b] columns and
   strings in [detail]; the event name disambiguates. *)
let csv_fields = function
  | Nic_rx { pkt; bytes } -> ("nic-rx", pkt, bytes, -1, "")
  | Demux { pkt; chan; flow } -> ("demux", pkt, chan, flow, "")
  | Ipq_enqueue { pkt; qlen } -> ("ipq-enqueue", pkt, qlen, -1, "")
  | Ipq_drop { pkt; qlen } -> ("ipq-drop", pkt, qlen, -1, "")
  | Early_discard { pkt; chan } -> ("early-discard", pkt, chan, -1, "")
  | Softint_begin { pkt } -> ("softint-begin", pkt, -1, -1, "")
  | Softint_end { pkt } -> ("softint-end", pkt, -1, -1, "")
  | Proto_deliver { pkt; conn; in_proc } ->
      ("proto-deliver", pkt, conn, (if in_proc then 1 else 0), "")
  | Sock_enqueue { pkt; sock } -> ("sock-enqueue", pkt, sock, -1, "")
  | Sock_drop { pkt; sock } -> ("sock-drop", pkt, sock, -1, "")
  | Syscall_copyout { pkt; sock; bytes } -> ("syscall-copyout", pkt, sock, bytes, "")
  | Csum_drop { pkt } -> ("csum-drop", pkt, -1, -1, "")
  | Mbuf_drop { pkt } -> ("mbuf-drop", pkt, -1, -1, "")
  | Intr_enter { level; label } -> ("intr-enter", -1, -1, -1, level_name level ^ ":" ^ label)
  | Intr_exit { level; label } -> ("intr-exit", -1, -1, -1, level_name level ^ ":" ^ label)
  | Ctx_switch { from_pid; to_pid } -> ("ctx-switch", -1, from_pid, to_pid, "")
  | Thread_state { pid; state } -> ("thread-state", -1, pid, -1, state_name state)
  | Note s -> ("note", -1, -1, -1, s)
  | Alarm { alarm; a; b } -> ("alarm", -1, a, b, alarm_name alarm)
  | Poll_begin { q; pending } -> ("poll-begin", -1, q, pending, "")
  | Poll_end { q; served } -> ("poll-end", -1, q, served, "")
  | Coalesce_fire { q; pending } -> ("coalesce-fire", -1, q, pending, "")
  | Gro_merge { pkt; into } -> ("gro-merge", pkt, into, -1, "")
  | Gro_flush { pkt; segs } -> ("gro-flush", pkt, segs, -1, "")

let cls_name = function
  | Packet_events -> "packet"
  | Sched_events -> "sched"
  | Note_events -> "note"

let to_csv buf t =
  Buffer.add_string buf "seq,ts_us,class,event,pkt,a,b,detail\n";
  List.iter
    (fun (ts, seq, ev) ->
      let nm, pkt, a, b, detail = csv_fields ev in
      (* The detail column only ever holds identifier-ish strings, but keep
         the quoting honest anyway. *)
      let detail =
        if String.exists (fun c -> c = ',' || c = '"' || c = '\n') detail then
          "\"" ^ String.concat "\"\"" (String.split_on_char '"' detail) ^ "\""
        else detail
      in
      Buffer.add_string buf
        (Printf.sprintf "%d,%.3f,%s,%s,%d,%d,%d,%s\n" seq ts
           (cls_name (class_of_event ev)) nm pkt a b detail))
    (events t)

(* --- Chrome trace_event sink ------------------------------------------- *)

(* Track (thread) ids inside the single "host" process.  Fixed tracks for
   the CPU contexts, then one per channel and one per socket. *)
let tid_nic = 0
let tid_hard = 1
let tid_soft = 2
let tid_proc = 3
let tid_chan c = 100 + c
let tid_sock s = 10000 + s

let chrome_json t =
  let pid = 1 in
  let evs = events t in
  let items = ref [] in
  let emit e = items := e :: !items in
  let meta name args = Json.Obj ([ ("ph", Json.Str "M"); ("pid", Json.Num (float_of_int pid)); ("name", Json.Str name) ] @ args) in
  let thread_meta tid nm =
    meta "thread_name"
      [ ("tid", Json.Num (float_of_int tid));
        ("args", Json.Obj [ ("name", Json.Str nm) ]) ]
  in
  emit (meta "process_name" [ ("args", Json.Obj [ ("name", Json.Str t.tr_name) ]) ]);
  emit (thread_meta tid_nic "nic");
  emit (thread_meta tid_hard "hardintr");
  emit (thread_meta tid_soft "softintr");
  emit (thread_meta tid_proc "process");
  (* Name the per-channel / per-socket tracks we are about to use. *)
  let named = Hashtbl.create 16 in
  let ensure_track tid nm =
    if not (Hashtbl.mem named tid) then begin
      Hashtbl.add named tid ();
      emit (thread_meta tid nm)
    end
  in
  List.iter
    (fun (_, _, ev) ->
      match ev with
      | Demux { chan; _ } | Early_discard { chan; _ } when chan >= 0 ->
          ensure_track (tid_chan chan) (Printf.sprintf "chan %d" chan)
      | Sock_enqueue { sock; _ } | Sock_drop { sock; _ }
      | Syscall_copyout { sock; _ } when sock >= 0 ->
          ensure_track (tid_sock sock) (Printf.sprintf "sock %d" sock)
      | _ -> ())
    evs;
  (* The ring may have overwritten a "B" whose "E" survived; drop unmatched
     closes so the slice stacks stay well-formed. *)
  let depth = Hashtbl.create 8 in
  let get_depth tid = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
  let base ph name tid ts args =
    Json.Obj
      ([ ("ph", Json.Str ph); ("name", Json.Str name);
         ("pid", Json.Num (float_of_int pid));
         ("tid", Json.Num (float_of_int tid)); ("ts", Json.Num ts) ]
      @ (if args = [] then [] else [ ("args", Json.Obj args) ]))
  in
  let num i = Json.Num (float_of_int i) in
  let instant ?(args = []) name tid ts =
    emit (base "i" name tid ts (args @ [ ("s", Json.Str "t") ]))
  in
  let span_begin name tid ts args =
    Hashtbl.replace depth tid (get_depth tid + 1);
    emit (base "B" name tid ts args)
  in
  let span_end name tid ts =
    let d = get_depth tid in
    if d > 0 then begin
      Hashtbl.replace depth tid (d - 1);
      emit (base "E" name tid ts [])
    end
  in
  List.iter
    (fun (ts, _, ev) ->
      match ev with
      | Nic_rx { pkt; bytes } ->
          instant ~args:[ ("pkt", num pkt); ("bytes", num bytes) ] "nic-rx" tid_nic ts
      | Demux { pkt; chan; flow } ->
          instant
            ~args:[ ("pkt", num pkt); ("flow", num flow) ]
            "demux"
            (if chan >= 0 then tid_chan chan else tid_hard)
            ts
      | Ipq_enqueue { pkt; qlen } ->
          instant ~args:[ ("pkt", num pkt); ("qlen", num qlen) ] "ipq-enqueue" tid_hard ts
      | Ipq_drop { pkt; qlen } ->
          instant ~args:[ ("pkt", num pkt); ("qlen", num qlen) ] "ipq-drop" tid_hard ts
      | Early_discard { pkt; chan } ->
          instant ~args:[ ("pkt", num pkt) ] "early-discard"
            (if chan >= 0 then tid_chan chan else tid_hard)
            ts
      | Softint_begin { pkt } ->
          span_begin (Printf.sprintf "pkt %d" pkt) tid_soft ts [ ("pkt", num pkt) ]
      | Softint_end { pkt } -> ignore pkt; span_end "pkt" tid_soft ts
      | Proto_deliver { pkt; conn; in_proc } ->
          instant
            ~args:[ ("pkt", num pkt); ("conn", num conn) ]
            "proto-deliver"
            (if in_proc then tid_proc else tid_soft)
            ts
      | Sock_enqueue { pkt; sock } ->
          instant ~args:[ ("pkt", num pkt) ] "sock-enqueue" (tid_sock sock) ts
      | Sock_drop { pkt; sock } ->
          instant ~args:[ ("pkt", num pkt) ] "sock-drop" (tid_sock sock) ts
      | Syscall_copyout { pkt; sock; bytes } ->
          instant
            ~args:[ ("pkt", num pkt); ("bytes", num bytes) ]
            "copyout" (tid_sock sock) ts
      | Csum_drop { pkt } ->
          instant ~args:[ ("pkt", num pkt) ] "csum-drop" tid_hard ts
      | Mbuf_drop { pkt } ->
          instant ~args:[ ("pkt", num pkt) ] "mbuf-drop" tid_hard ts
      | Intr_enter { level; label } ->
          span_begin label
            (match level with Hard -> tid_hard | Soft -> tid_soft)
            ts []
      | Intr_exit { level; label } ->
          span_end label (match level with Hard -> tid_hard | Soft -> tid_soft) ts
      | Ctx_switch { from_pid; to_pid } ->
          instant
            ~args:[ ("from", num from_pid); ("to", num to_pid) ]
            "ctx-switch" tid_proc ts
      | Thread_state { pid = p; state } ->
          instant
            ~args:[ ("pid", num p); ("state", Json.Str (state_name state)) ]
            "thread-state" tid_proc ts
      | Note s -> instant ~args:[ ("text", Json.Str s) ] "note" tid_proc ts
      | Alarm { alarm; a; b } ->
          instant
            ~args:[ ("a", num a); ("b", num b) ]
            ("alarm:" ^ alarm_name alarm) tid_proc ts
      | Poll_begin { q; pending } ->
          span_begin
            (Printf.sprintf "poll q%d" q)
            tid_soft ts
            [ ("q", num q); ("pending", num pending) ]
      | Poll_end { q; served } ->
          ignore served;
          span_end (Printf.sprintf "poll q%d" q) tid_soft ts
      | Coalesce_fire { q; pending } ->
          instant
            ~args:[ ("q", num q); ("pending", num pending) ]
            "coalesce-fire" tid_nic ts
      | Gro_merge { pkt; into } ->
          instant ~args:[ ("pkt", num pkt); ("into", num into) ] "gro-merge"
            tid_soft ts
      | Gro_flush { pkt; segs } ->
          instant ~args:[ ("pkt", num pkt); ("segs", num segs) ] "gro-flush"
            tid_soft ts)
    evs;
  (* Close spans still open at the end of the buffered window so every
     "B" has a matching "E" (a run can end mid-interrupt). *)
  let last_ts = match List.rev evs with (ts, _, _) :: _ -> ts | [] -> 0. in
  (* Sorted by track id: the synthetic close events land in the JSON in a
     stable order, keeping the sink byte-reproducible. *)
  Lrp_det.Det.iter_sorted
    (fun tid d ->
      for _ = 1 to d do
        emit (base "E" "trace-end" tid last_ts [])
      done)
    depth;
  Json.Obj [ ("traceEvents", Json.Arr (List.rev !items)) ]

let to_chrome buf t = Json.to_buffer buf (chrome_json t)

let write_file t ~format path =
  let buf = Buffer.create 4096 in
  (match format with
  | `Chrome -> to_chrome buf t
  | `Csv -> to_csv buf t
  | `Text -> to_text buf t);
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc

(* --- per-packet stage-latency breakdown -------------------------------- *)

module Report = struct
  type marks = {
    mutable m_nic : float;
    mutable m_q : float;      (* ipq or per-channel queue entry *)
    mutable m_sb : float;     (* softint span begin *)
    mutable m_se : float;     (* softint span end *)
    mutable m_proto : float;
    mutable m_in_proc : bool;
    mutable m_sock : float;
  }

  type t = {
    stages : (string * Samples.t) list;
    packets : int;
  }

  let stage_names = [ "queue-wait"; "softint-proto"; "proc-proto"; "sockq-wait"; "total" ]

  let stage_latency evs =
    let stages = List.map (fun n -> (n, Samples.create ())) stage_names in
    let stage n = List.assoc n stages in
    let packets = ref 0 in
    let marks : (int, marks) Hashtbl.t = Hashtbl.create 256 in
    let fresh ts =
      { m_nic = ts; m_q = Float.nan; m_sb = Float.nan; m_se = Float.nan;
        m_proto = Float.nan; m_in_proc = false; m_sock = Float.nan }
    in
    let find pkt = Hashtbl.find_opt marks pkt in
    List.iter
      (fun (ts, _, ev) ->
        match ev with
        | Nic_rx { pkt; _ } -> Hashtbl.replace marks pkt (fresh ts)
        | Ipq_enqueue { pkt; _ } | Demux { pkt; _ } -> (
            match find pkt with
            | Some m when Float.is_nan m.m_q -> m.m_q <- ts
            | _ -> ())
        | Softint_begin { pkt } -> (
            match find pkt with Some m -> m.m_sb <- ts | None -> ())
        | Softint_end { pkt } -> (
            match find pkt with Some m -> m.m_se <- ts | None -> ())
        | Proto_deliver { pkt; in_proc; _ } -> (
            match find pkt with
            | Some m ->
                if Float.is_nan m.m_proto then begin
                  m.m_proto <- ts;
                  m.m_in_proc <- in_proc
                end
            | None -> ())
        | Sock_enqueue { pkt; _ } -> (
            match find pkt with Some m -> m.m_sock <- ts | None -> ())
        | Syscall_copyout { pkt; _ } -> (
            match find pkt with
            | Some m ->
                incr packets;
                Hashtbl.remove marks pkt;
                let ok x = not (Float.is_nan x) in
                let proto_start = if ok m.m_sb then m.m_sb else m.m_proto in
                if ok m.m_q && ok proto_start then
                  Samples.add (stage "queue-wait") (proto_start -. m.m_q);
                if ok m.m_sb && ok m.m_se then
                  Samples.add (stage "softint-proto") (m.m_se -. m.m_sb);
                if m.m_in_proc && ok m.m_proto && ok m.m_sock then
                  Samples.add (stage "proc-proto") (m.m_sock -. m.m_proto);
                if ok m.m_sock then
                  Samples.add (stage "sockq-wait") (ts -. m.m_sock);
                Samples.add (stage "total") (ts -. m.m_nic)
            | None -> ())
        | Ipq_drop _ | Early_discard _ | Sock_drop _ | Csum_drop _
        | Mbuf_drop _ | Intr_enter _ | Intr_exit _ | Ctx_switch _
        | Thread_state _ | Note _ | Alarm _ | Poll_begin _ | Poll_end _
        | Coalesce_fire _ | Gro_merge _ | Gro_flush _ -> ())
      evs;
    { stages; packets = !packets }

  let pp fmt t =
    Format.fprintf fmt "stage-latency over %d packets (us):@." t.packets;
    Format.fprintf fmt "  %-14s %8s %10s %10s %10s@." "stage" "count" "mean"
      "p50" "p99";
    List.iter
      (fun (nm, s) ->
        Format.fprintf fmt "  %-14s %8d %10.2f %10.2f %10.2f@." nm
          (Samples.count s) (Samples.mean s) (Samples.percentile s 50.)
          (Samples.percentile s 99.))
      t.stages
end
