type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- emission ---------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_num buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x when not (Float.is_finite x) -> Buffer.add_string buf "null"
  | Num x -> add_num buf x
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do incr pos done
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape");
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* Decode as UTF-8 bytes; surrogate pairs are not recombined,
                 which is fine for the ASCII traces we emit. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | c -> fail (Printf.sprintf "bad escape %C" c));
          loop ()
      | c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    while (match peek () with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
    do advance () done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some x -> x
    | None -> (pos := start; fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> Str (parse_string ())
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); Arr [])
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Obj [])
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ field () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            items := field () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
    | '-' | '0' .. '9' -> Num (parse_number ())
    | '\255' -> fail "unexpected end of input"
    | c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* --- accessors --------------------------------------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_list = function Arr xs -> xs | _ -> []
