(** Structured packet-lifecycle and scheduler tracing.

    One tracer per simulated kernel: a bounded ring buffer of typed events,
    each stamped with the owning engine's virtual time and a monotonically
    increasing sequence number.  There is deliberately no global tracer —
    parallel sweeps run one simulation per domain, and every kernel records
    only into its own buffer, so tracing can never perturb results or race
    across domains.

    Zero cost when disabled: every emitter takes immediate arguments and
    checks {!enabled} (plus the event-class filter) {e before} allocating
    the event, so a disabled tracer costs one branch per call site and
    allocates nothing.  The ring's backing array itself is only allocated
    on the first recorded event. *)

type t

type intr_level = Hard | Soft

type thread_state = Spawned | Runnable | Sleeping | Exited

(** Overload-detector alarm kinds (see {!Lrp_check.Overload}): sliding
    windows where delivered throughput collapsed against offered load
    ([Overload]), with the CPU additionally saturated at interrupt level
    ([Livelock]) or user progress starved ([Starvation]); queue
    high-watermark reports ([Queue_watermark]). *)
type alarm = Overload | Livelock | Starvation | Queue_watermark

(** Packet lifecycle events carry the packet's IP ident ([pkt]); [chan],
    [conn] and [sock] are channel / connection / socket ids, [-1] when not
    applicable. *)
type event =
  | Nic_rx of { pkt : int; bytes : int }
  | Demux of { pkt : int; chan : int; flow : int }
  | Ipq_enqueue of { pkt : int; qlen : int }
  | Ipq_drop of { pkt : int; qlen : int }
  | Early_discard of { pkt : int; chan : int }
  | Softint_begin of { pkt : int }
  | Softint_end of { pkt : int }
  | Proto_deliver of { pkt : int; conn : int; in_proc : bool }
  | Sock_enqueue of { pkt : int; sock : int }
  | Sock_drop of { pkt : int; sock : int }
  | Syscall_copyout of { pkt : int; sock : int; bytes : int }
  | Csum_drop of { pkt : int }
      (** Receiver dropped the packet: content checksum mismatch. *)
  | Mbuf_drop of { pkt : int }
      (** Receiver dropped the packet: mbuf pool exhausted. *)
  | Intr_enter of { level : intr_level; label : string }
  | Intr_exit of { level : intr_level; label : string }
  | Ctx_switch of { from_pid : int; to_pid : int }
  | Thread_state of { pid : int; state : thread_state }
  | Note of string
  | Alarm of { alarm : alarm; a : int; b : int }
      (** Structured detector alarm.  For [Overload]/[Livelock]: [a] =
          offered packets in the window, [b] = delivered (or for
          [Livelock], interrupt CPU share in percent).  For [Starvation]:
          [a] = user CPU share in percent, [b] = interrupt share in
          percent.  For [Queue_watermark]: [a] = queue code (0 = shared IP
          queue, 1 = channel, 2 = socket), [b] = high-watermark. *)
  | Poll_begin of { q : int; pending : int }
      (** A NAPI poll round starts on NIC queue [q] with [pending] packets
          waiting in its ring. *)
  | Poll_end of { q : int; served : int }
      (** The poll round on queue [q] ends having dequeued [served]
          packets (served < budget means the ring drained and the queue's
          interrupt was re-enabled). *)
  | Coalesce_fire of { q : int; pending : int }
      (** The NIC's interrupt-coalescing threshold (packet count or
          timer) fired for queue [q] and raised an interrupt covering
          [pending] buffered packets. *)
  | Gro_merge of { pkt : int; into : int }
      (** Receive-offload aggregation absorbed segment [pkt] into the
          held super-segment whose ident is [into]; [pkt] terminates here
          (its bytes travel on in [into]). *)
  | Gro_flush of { pkt : int; segs : int }
      (** The held super-segment [pkt], made of [segs] wire segments,
          was handed to protocol processing. *)

(** Event classes, for filtering at record time. *)
type cls = Packet_events | Sched_events | Note_events

val class_of_event : event -> cls

val create : ?capacity:int -> name:string -> now:(unit -> float) -> unit -> t
(** [create ~name ~now ()] makes a tracer recording up to [capacity]
    (default 65536) events; older events are overwritten once full.
    [now] supplies virtual-time stamps.  Starts disabled. *)

val null : unit -> t
(** A tracer that is disabled and records nothing; cheap placeholder for
    components created without a kernel. *)

val name : t -> string
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val set_filter : t -> cls list -> unit
(** Record only the given classes (default: all). *)

val use_packed : t -> clock:float array -> unit
(** Install the packed flight-recorder backend: subsequent events are
    encoded into a {!Precorder} SoA ring (four word stores, zero minor
    allocation per event) instead of the typed entry ring, with
    timestamps copied from [clock.(0)] (pass the owning engine's
    {!Lrp_engine.Engine.clock_cell}).  {!events} decodes packed entries
    back to typed ones, so every sink works unchanged.  Events recorded
    before the switch are discarded. *)

val packed : t -> Precorder.t option
(** The packed backend, when installed — for binary dumps
    ({!Precorder.write_dump}). *)

val events_of_precorder : Precorder.t -> (float * int * event) list
(** Decode a packed ring (e.g. one read back from a binary dump) to typed
    events, oldest first. *)

val clear : t -> unit
val length : t -> int

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val events : t -> (float * int * event) list
(** Buffer contents, oldest first, as [(virtual-time, seq, event)]. *)

val merged_events : (int * t) list -> (int * float * int * event) list
(** Merge labelled recorder streams into one timeline as
    [(stream, virtual-time, seq, event)], ordered by (time, stream, seq)
    with an explicit field-by-field comparator — a total order, so the
    merged dump of a sharded run is byte-identical at any shard count. *)

(* --- emitters (no-ops unless enabled and class passes the filter) ------ *)

val nic_rx : t -> pkt:int -> bytes:int -> unit
val demux : t -> pkt:int -> chan:int -> flow:int -> unit
val ipq_enqueue : t -> pkt:int -> qlen:int -> unit
val ipq_drop : t -> pkt:int -> qlen:int -> unit
val early_discard : t -> pkt:int -> chan:int -> unit
val softint_begin : t -> pkt:int -> unit
val softint_end : t -> pkt:int -> unit
val proto_deliver : t -> pkt:int -> conn:int -> in_proc:bool -> unit
val sock_enqueue : t -> pkt:int -> sock:int -> unit
val sock_drop : t -> pkt:int -> sock:int -> unit
val syscall_copyout : t -> pkt:int -> sock:int -> bytes:int -> unit
val csum_drop : t -> pkt:int -> unit
val mbuf_drop : t -> pkt:int -> unit
val intr_enter : t -> level:intr_level -> label:string -> unit
val intr_exit : t -> level:intr_level -> label:string -> unit
val ctx_switch : t -> from_pid:int -> to_pid:int -> unit
val thread_state : t -> pid:int -> state:thread_state -> unit
val alarm : t -> alarm:alarm -> a:int -> b:int -> unit
val poll_begin : t -> q:int -> pending:int -> unit
val poll_end : t -> q:int -> served:int -> unit
val coalesce_fire : t -> q:int -> pending:int -> unit
val gro_merge : t -> pkt:int -> into:int -> unit
val gro_flush : t -> pkt:int -> segs:int -> unit
val note : t -> string -> unit

val notef : t -> ('a, unit, string, unit) format4 -> 'a
(** Formatted {!note}.  When the tracer is disabled the format arguments
    are consumed without building the string. *)

(* --- sinks ------------------------------------------------------------- *)

val pp_event : Format.formatter -> event -> unit

val to_text : Buffer.t -> t -> unit
(** Human-readable dump, one event per line. *)

val to_csv : Buffer.t -> t -> unit
(** [seq,ts_us,class,event,pkt,a,b,detail] rows with a header line. *)

val chrome_json : t -> Json.t
(** Chrome [trace_event] document ({["{\"traceEvents\": [...]}"]}),
    loadable in Perfetto / about://tracing.  Interrupt activity becomes
    duration ("B"/"E") slices and lifecycle events instants, spread over
    one track per CPU context (nic / hardintr / softintr / process) plus
    one per channel and per socket. *)

val to_chrome : Buffer.t -> t -> unit

val write_file : t -> format:[ `Chrome | `Csv | `Text ] -> string -> unit

(* --- per-packet stage-latency breakdown -------------------------------- *)

module Report : sig
  (** Reconstructs each packet's NIC-arrival → copyout timeline from the
      event stream and aggregates per-stage latency distributions:

      - ["queue-wait"]: enqueue (shared IP queue or per-channel queue) to
        the start of protocol processing;
      - ["softint-proto"]: protocol processing done in software-interrupt
        context (BSD's big term; absent under LRP);
      - ["proc-proto"]: protocol processing done in the receiver's own
        context (LRP's lazy processing; absent under BSD);
      - ["sockq-wait"]: socket queue to copyout;
      - ["total"]: NIC arrival to copyout.

      Only packets with a complete NIC-arrival → copyout timeline within
      the buffered window contribute. *)

  type t = {
    stages : (string * Lrp_stats.Stats.Samples.t) list;  (* fixed order *)
    packets : int;  (* complete packet timelines seen *)
  }

  val stage_latency : (float * int * event) list -> t

  val pp : Format.formatter -> t -> unit
end
