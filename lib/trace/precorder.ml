(* Packed flight recorder: the storage and codec layer under Trace's
   packed backend.

   Events live in four parallel ring columns (SoA, like the packet arenas
   in lib/core): an int kind, a flat float timestamp, an int ident (the
   packet ident, or -1) and one int packing the event's two small
   arguments the way Flowtab packs flow keys.  Recording an event is four
   array stores and a handful of int ops — no allocation — and the
   timestamp comes straight out of the owner's 1-slot clock array
   ({!Lrp_engine.Engine.clock_cell} for kernels), so no boxed-closure
   clock read happens on the record path either.

   This module knows nothing about {!Trace.event}; Trace assigns the kind
   codes and performs the lossless packed->typed decode
   ([Trace.events_of_precorder]).  Strings (interrupt labels, notes) are
   interned here into a small id table so the columns stay all-int. *)

type t = {
  cap : int;
  clock : float array;  (* owner's clock; slot 0 is "now" *)
  mutable kcol : int array;    (* [||] until the first recorded event *)
  mutable tcol : float array;
  mutable icol : int array;
  mutable acol : int array;
  mutable head : int;   (* next write slot *)
  mutable count : int;  (* live entries, <= cap *)
  mutable seq : int;    (* total events ever recorded *)
  mutable lost : int;   (* overwritten *)
  (* string interning: label/note strings -> small ids.  Steady-state
     labels are a handful of constants, so the table stops growing (and
     the record path stops allocating) almost immediately. *)
  stab : (string, int) Hashtbl.t;
  mutable strs : string array;
  mutable nstr : int;
}

let create ?(capacity = 65536) ~clock () =
  { cap = max 1 capacity; clock; kcol = [||]; tcol = [||]; icol = [||];
    acol = [||]; head = 0; count = 0; seq = 0; lost = 0;
    stab = Hashtbl.create 16; strs = [||]; nstr = 0 }

let capacity t = t.cap
let length t = t.count
let dropped t = t.lost
let recorded t = t.seq

let clear t =
  t.head <- 0;
  t.count <- 0;
  t.seq <- 0;
  t.lost <- 0

(* --- argument packing --------------------------------------------------- *)

(* Two small ints in one word, Flowtab-style.  The +1 offset makes the -1
   "not applicable" sentinel encodable; each argument gets 31 bits, so the
   packed word fits a 63-bit OCaml int with a bit to spare. *)

let arg_max = (1 lsl 31) - 2

let pack ~a ~b = ((a + 1) lsl 31) lor (b + 1)
let unpack_a arg = (arg lsr 31) - 1
let unpack_b arg = (arg land 0x7FFF_FFFF) - 1

(* --- record path -------------------------------------------------------- *)

let grow t =
  t.kcol <- Array.make t.cap 0; (* alloc: cold — lazy first-use sizing *)
  t.tcol <- Array.make t.cap 0.; (* alloc: cold — lazy first-use sizing *)
  t.icol <- Array.make t.cap 0; (* alloc: cold — lazy first-use sizing *)
  t.acol <- Array.make t.cap 0 (* alloc: cold — lazy first-use sizing *)

let record t ~kind ~ident ~a ~b =
  if Array.length t.kcol = 0 then grow t;
  let i = t.head in
  t.kcol.(i) <- kind;
  t.tcol.(i) <- t.clock.(0);
  t.icol.(i) <- ident;
  t.acol.(i) <- ((a + 1) lsl 31) lor (b + 1);
  t.head <- (if i + 1 = t.cap then 0 else i + 1);
  if t.count = t.cap then t.lost <- t.lost + 1 else t.count <- t.count + 1;
  t.seq <- t.seq + 1

(* --- string interning --------------------------------------------------- *)

let intern t s =
  match Hashtbl.find t.stab s with
  | id -> id
  | exception Not_found ->
      let id = t.nstr in
      let n = Array.length t.strs in
      if id = n then begin
        let strs = Array.make (max 8 (2 * n)) "" in
        Array.blit t.strs 0 strs 0 n;
        t.strs <- strs
      end;
      t.strs.(id) <- s;
      t.nstr <- id + 1;
      Hashtbl.add t.stab s id;
      id

let get_string t id =
  if id >= 0 && id < t.nstr then t.strs.(id) else "?"

(* --- reading ------------------------------------------------------------ *)

let iter t f =
  let start = (t.head - t.count + (2 * t.cap)) mod t.cap in
  let seq0 = t.seq - t.count in
  for i = 0 to t.count - 1 do
    let j = (start + i) mod t.cap in
    let arg = t.acol.(j) in
    f ~ts:t.tcol.(j) ~seq:(seq0 + i) ~kind:t.kcol.(j) ~ident:t.icol.(j)
      ~a:(unpack_a arg) ~b:(unpack_b arg)
  done

(* --- binary dump -------------------------------------------------------- *)

(* Fixed-width little-endian int64 words after an 8-byte magic:

     "LRPREC01"
     count seq lost nstr                      (4 words)
     for each interned string: byte-length, then the bytes 0-padded
       to an 8-byte boundary
     count records x 4 words: kind, Int64.bits_of_float ts, ident,
       packed arg

   Records are emitted oldest-first, so a reader reconstructs exactly the
   surviving window (sequence numbers restart at [seq - count]). *)

let magic = "LRPREC01"

let add_word buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Buffer.add_bytes buf b

let add_int buf v = add_word buf (Int64.of_int v)

let dump_to_buffer buf t =
  Buffer.add_string buf magic;
  add_int buf t.count;
  add_int buf t.seq;
  add_int buf t.lost;
  add_int buf t.nstr;
  for i = 0 to t.nstr - 1 do
    let s = t.strs.(i) in
    add_int buf (String.length s);
    Buffer.add_string buf s;
    let pad = (8 - (String.length s mod 8)) mod 8 in
    Buffer.add_string buf (String.make pad '\000')
  done;
  iter t (fun ~ts ~seq:_ ~kind ~ident ~a ~b ->
      add_int buf kind;
      add_word buf (Int64.bits_of_float ts);
      add_int buf ident;
      add_int buf (pack ~a ~b))

let write_dump t path =
  let buf = Buffer.create 4096 in
  dump_to_buffer buf t;
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = Error (Printf.sprintf "%s at byte %d" msg !pos) in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let word () =
    if !pos + 8 > len then fail "truncated dump"
    else begin
      let v = String.get_int64_le s !pos in
      pos := !pos + 8;
      Ok v
    end
  in
  let int () =
    let* v = word () in
    Ok (Int64.to_int v)
  in
  if len < 8 || String.sub s 0 8 <> magic then fail "bad magic"
  else begin
    pos := 8;
    let* count = int () in
    let* seq = int () in
    let* lost = int () in
    let* nstr = int () in
    if count < 0 || nstr < 0 then fail "negative count"
    else begin
      let t = create ~capacity:(max 1 count) ~clock:[| 0. |] () in
      let rec strings i =
        if i = nstr then Ok ()
        else
          let* n = int () in
          let padded = n + ((8 - (n mod 8)) mod 8) in
          if n < 0 || !pos + padded > len then fail "truncated string table"
          else begin
            ignore (intern t (String.sub s !pos n));
            pos := !pos + padded;
            strings (i + 1)
          end
      in
      let* () = strings 0 in
      let rec records i =
        if i = count then Ok ()
        else
          let* kind = int () in
          let* bits = word () in
          let* ident = int () in
          let* arg = int () in
          record t ~kind ~ident ~a:(unpack_a arg) ~b:(unpack_b arg);
          (* [record] stamped from the dummy clock; restore the dump's
             timestamp. *)
          t.tcol.((t.head + t.cap - 1) mod t.cap) <- Int64.float_of_bits bits;
          records (i + 1)
      in
      let* () = records 0 in
      if !pos <> len then fail "trailing bytes"
      else begin
        (* Reconstruct the pre-dump counters: [record] above counted from
           zero. *)
        t.seq <- seq;
        t.lost <- lost;
        Ok t
      end
    end
  end

let read_dump path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      of_string s
