(** Minimal JSON support for trace sinks and bench output.

    The repository deliberately has no third-party JSON dependency, so the
    Chrome-trace sink needs its own emitter and — for the round-trip checks
    demanded by the tests and the CLI's self-validation — a small parser.
    The parser accepts the full JSON grammar (RFC 8259) minus niceties we
    never emit: it reads numbers with [float_of_string], and decodes the
    escape sequences the emitter produces (plus [\uXXXX], kept as bytes). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** Escape a string's contents for embedding between double quotes. *)

val to_buffer : Buffer.t -> t -> unit
(** Emit compact (whitespace-free) JSON. Non-finite numbers become [null]. *)

val to_string : t -> string

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.  The error
    string includes the byte offset where parsing failed. *)

(* Accessors used by tests and the CLI's trace validation. *)

val member : string -> t -> t option
(** [member k (Obj ...)] looks up key [k]; [None] on missing key or non-object. *)

val to_list : t -> t list
(** Contents of an [Arr]; [] for anything else. *)
