(** Packed flight recorder: SoA ring storage for trace events.

    The zero-allocation backend behind {!Trace}'s packed mode.  Each event
    is four fixed-width words spread over parallel ring columns — int
    kind, flat float timestamp, int ident, and one int packing the
    event's two small arguments ([a]/[b], each 31 bits with a [-1]
    sentinel, Flowtab-style).  {!record} performs four array stores and no
    allocation; the timestamp is copied from the owner's 1-slot clock
    array ({!Lrp_engine.Engine.clock_cell} for simulations), avoiding the
    boxed float a [unit -> float] clock closure would allocate per read.

    This module is pure storage plus codec: kind codes and their mapping
    to {!Trace.event} are owned by {!Trace} ([Trace.events_of_precorder]
    decodes losslessly), keeping the layering one-directional. *)

type t

val create : ?capacity:int -> clock:float array -> unit -> t
(** [create ~clock ()] makes a recorder holding up to [capacity] (default
    65536) events; older events are overwritten once full.  [clock] is the
    owner's 1-slot time array; slot 0 is read at each {!record}.  Columns
    are allocated lazily on the first recorded event. *)

val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val recorded : t -> int
(** Total events ever recorded (monotone; sequence numbers come from it). *)

val clear : t -> unit

val record : t -> kind:int -> ident:int -> a:int -> b:int -> unit
(** Append one event stamped with the current clock value.  [a] and [b]
    must lie in [[-1, 2{^31} - 2]]; out-of-range values are truncated by
    the packing.  Allocation-free after the first call. *)

val arg_max : int
(** Largest representable argument value. *)

val intern : t -> string -> int
(** Intern a string (interrupt label, note text) and return its id.
    Allocation-free once the string has been seen. *)

val get_string : t -> int -> string
(** The string for an interned id; ["?"] for unknown ids. *)

val iter :
  t ->
  (ts:float -> seq:int -> kind:int -> ident:int -> a:int -> b:int -> unit) ->
  unit
(** Visit surviving events oldest-first with reconstructed sequence
    numbers ([recorded t - length t] onward). *)

(** {1 Binary dump}

    Fixed-width little-endian int64 words: an 8-byte magic ["LRPREC01"],
    the [count]/[recorded]/[dropped]/string-table sizes, the interned
    strings (length-prefixed, zero-padded to 8-byte words), then four
    words per event — kind, [Int64.bits_of_float] timestamp, ident,
    packed argument.  The CI fuzz job uploads these dumps on failure;
    {!read_dump} + [Trace.events_of_precorder] recover the typed events. *)

val dump_to_buffer : Buffer.t -> t -> unit
val write_dump : t -> string -> unit

val of_string : string -> (t, string) result
(** Parse a dump; the error string includes the failing byte offset. *)

val read_dump : string -> (t, string) result
