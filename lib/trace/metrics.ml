module Samples = Lrp_stats.Stats.Samples

type counter = { mutable count : int }

type instrument =
  | Counter of counter
  | Gauge of (unit -> float)
  | Histogram of Samples.t

type t = { mutable instruments : (string * instrument) list }

let create () = { instruments = [] }

let register t name inst =
  t.instruments <- (name, inst) :: List.remove_assoc name t.instruments

let counter t name =
  match List.assoc_opt name t.instruments with
  | Some (Counter c) -> c
  | _ ->
      let c = { count = 0 } in
      register t name (Counter c);
      c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let counter_value c = c.count

let gauge t name f = register t name (Gauge f)

let histogram t name =
  match List.assoc_opt name t.instruments with
  | Some (Histogram h) -> h
  | _ ->
      let h = Samples.create () in
      register t name (Histogram h);
      h

let observe = Samples.add

let snapshot t =
  let rows =
    List.concat_map
      (fun (name, inst) ->
        match inst with
        | Counter c -> [ (name, float_of_int c.count) ]
        | Gauge f -> [ (name, f ()) ]
        | Histogram h ->
            [ (name ^ ".count", float_of_int (Samples.count h));
              (name ^ ".mean", Samples.mean h);
              (name ^ ".p50", Samples.percentile h 50.);
              (name ^ ".p99", Samples.percentile h 99.) ])
      t.instruments
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows
