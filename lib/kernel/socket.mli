(** Socket objects.

    Pure state: behaviour lives in {!Kernel} and {!Api}.  A socket's receive
    plumbing depends on the architecture:

    - under BSD and Early-Demux, [udp_rcv] holds fully-processed datagrams
      put there by software-interrupt protocol processing;
    - under LRP, raw packets sit in the socket's NI [chan] until a receiver
      processes them lazily; [udp_rcv] then only holds datagrams processed
      on its behalf by the minimal-priority helper thread (section 3.3);
    - TCP sockets delegate stream state to their {!Lrp_proto.Tcp.conn};
      reassembled stream data lives in the connection's receive buffer. *)

type kind = Dgram | Stream
type udp_datagram = {
  dg_payload : Lrp_net.Payload.t;
  dg_from : Lrp_net.Packet.ip * int;
  dg_pkt : int;  (** originating packet's IP ident, for tracing *)
  dg_mbuf : int;
      (** mbuf-pool handle backing this datagram until copyout, or
          [Lrp_net.Mbuf.no_handle] on paths that account by bytes *)
}
type stats = {
  mutable rx_delivered : int;
  mutable rx_sockq_drops : int;
  mutable tx_packets : int;
  mutable rx_hwm : int;  (** deepest socket-queue occupancy observed *)
}
type t = {
  id : int;
  kind : kind;
  mutable port : int option;
  mutable remote : (Lrp_net.Packet.ip * int) option;
  udp_rcv : udp_datagram Queue.t;
  udp_rcv_limit : int;
  recv_wait : Lrp_sim.Proc.waitq;
  send_wait : Lrp_sim.Proc.waitq;
  accept_wait : Lrp_sim.Proc.waitq;
  mutable chan : Lrp_core.Channel.t option;
  mutable tcp : Lrp_proto.Tcp.conn option;
  mutable owner : Lrp_sim.Proc.t option;
  mutable closed : bool;
  stats : stats;
}
val create : ?udp_rcv_limit:int -> kind -> t
val port_exn : t -> int
val deposit_udp : t -> udp_datagram -> bool
val pp : Format.formatter -> t -> unit
