(** CPU cost model (microseconds per operation).

    The absolute values are a model of a mid-1990s workstation (the paper's
    60 MHz SuperSPARC SPARCstation-20); the paper reports the two numbers
    that matter most directly:

    - BSD: hardware + software interrupt, including protocol processing,
      ≈ 60 us per packet;
    - SOFT-LRP: hardware interrupt including demultiplexing ≈ 25 us.

    Our defaults reproduce those two aggregates and spread the remainder
    over the operations the simulator charges individually.  Experiments
    compare *shapes* across architectures — every kernel uses the same
    table, so relative results are meaningful even where absolute
    calibration is approximate.

    The [eager_penalty] multiplier models the cache/locality cost of
    processing each packet in a fresh software-interrupt activation;
    [lazy_locality] models the batch-processing locality gain the paper
    credits for part of LRP's throughput advantage (section 4.2 argues the
    gains "must be due in large part to factors such as reduced context
    switching, software interrupt dispatch, and improved memory access
    locality"). *)

type t = {
  hard_rx : float;
  soft_dispatch : float;
  demux : float;
  ni_wakeup_intr : float;
  ni_channel_access : float;
  ip_in : float;
  udp_in : float;
  tcp_in : float;
  pcb_lookup : float;
  reasm_per_frag : float;
  ip_forward : float;
  ip_out : float;
  udp_out : float;
  tcp_out : float;
  driver_tx : float;
  syscall : float;
  sockq : float;
  sockbuf_append : float;
  sockbuf_op : float;
  mbuf_free : float;
  ipq_op : float;
  copy_per_byte : float;
  wakeup : float;
  ctx_switch : float;
  fork : float;
  eager_penalty : float;
  lazy_locality : float;
  napi_irq : float;
  poll_dequeue : float;
  poll_loop : float;
  gro_merge : float;
}
val default : t
val sunos_fore : t
val bsd_udp_interrupt_cost : t -> float
val soft_lrp_interrupt_cost : t -> float
val pp : Format.formatter -> t -> unit
