(** Socket objects.

    Pure state: behaviour lives in {!Kernel} and {!Api}.  A socket's receive
    plumbing depends on the architecture:

    - under BSD and Early-Demux, [udp_rcv] holds fully-processed datagrams
      put there by software-interrupt protocol processing;
    - under LRP, raw packets sit in the socket's NI [chan] until a receiver
      processes them lazily; [udp_rcv] then only holds datagrams processed
      on its behalf by the minimal-priority helper thread (section 3.3);
    - TCP sockets delegate stream state to their {!Lrp_proto.Tcp.conn};
      reassembled stream data lives in the connection's receive buffer. *)

open Lrp_net
open Lrp_sim

type kind = Dgram | Stream

type udp_datagram = {
  dg_payload : Payload.t;
  dg_from : Packet.ip * int;
  dg_pkt : int;  (* originating packet's IP ident, for tracing *)
  dg_mbuf : int;
      (* mbuf-pool handle backing this datagram until copyout, or
         [Mbuf.no_handle] on paths that account by bytes *)
}

type stats = {
  mutable rx_delivered : int;   (* datagrams handed to the application *)
  mutable rx_sockq_drops : int; (* datagrams dropped at a full socket queue *)
  mutable tx_packets : int;
  mutable rx_hwm : int;         (* deepest socket-queue occupancy observed *)
}

type t = {
  id : int;
  kind : kind;
  mutable port : int option;
  mutable remote : (Packet.ip * int) option;  (* connected-UDP peer *)
  udp_rcv : udp_datagram Queue.t;
  udp_rcv_limit : int;  (* socket-queue limit, in datagrams *)
  recv_wait : Proc.waitq;
  send_wait : Proc.waitq;
  accept_wait : Proc.waitq;
  mutable chan : Lrp_core.Channel.t option;  (* LRP architectures *)
  mutable tcp : Lrp_proto.Tcp.conn option;
  mutable owner : Proc.t option;
  mutable closed : bool;
  stats : stats;
}

(* Socket ids come from the per-engine id space installed on this domain
   (Lrp_engine.Idspace): per-cell sequences, independent of other
   simulations or shards allocating concurrently. *)

let create ?(udp_rcv_limit = 64) kind =
  let id = Lrp_engine.Idspace.next_sock_id () in
  { id; kind; port = None; remote = None; udp_rcv = Queue.create ();
    udp_rcv_limit;
    recv_wait = Proc.waitq (Printf.sprintf "sock%d.recv" id);
    send_wait = Proc.waitq (Printf.sprintf "sock%d.send" id);
    accept_wait = Proc.waitq (Printf.sprintf "sock%d.accept" id);
    chan = None; tcp = None; owner = None; closed = false;
    stats = { rx_delivered = 0; rx_sockq_drops = 0; tx_packets = 0;
              rx_hwm = 0 } }

let port_exn t =
  match t.port with
  | Some p -> p
  | None -> invalid_arg "socket is not bound"

(* Deposit a ready datagram in the socket queue (BSD softint path or the
   LRP helper thread).  Returns [false] and counts a drop when full. *)
let deposit_udp t dg =
  if Queue.length t.udp_rcv >= t.udp_rcv_limit then begin
    t.stats.rx_sockq_drops <- t.stats.rx_sockq_drops + 1;
    false
  end
  else begin
    Queue.add dg t.udp_rcv;
    let depth = Queue.length t.udp_rcv in
    if depth > t.stats.rx_hwm then t.stats.rx_hwm <- depth;
    true
  end

let pp fmt t =
  Fmt.pf fmt "sock%d(%s%s)" t.id
    (match t.kind with Dgram -> "udp" | Stream -> "tcp")
    (match t.port with Some p -> Printf.sprintf ":%d" p | None -> "")
