(** CPU cost model (microseconds per operation).

    The absolute values are a model of a mid-1990s workstation (the paper's
    60 MHz SuperSPARC SPARCstation-20); the paper reports the two numbers
    that matter most directly:

    - BSD: hardware + software interrupt, including protocol processing,
      ≈ 60 us per packet;
    - SOFT-LRP: hardware interrupt including demultiplexing ≈ 25 us.

    Our defaults reproduce those two aggregates and spread the remainder
    over the operations the simulator charges individually.  Experiments
    compare *shapes* across architectures — every kernel uses the same
    table, so relative results are meaningful even where absolute
    calibration is approximate.

    The [eager_penalty] multiplier models the cache/locality cost of
    processing each packet in a fresh software-interrupt activation;
    [lazy_locality] models the batch-processing locality gain the paper
    credits for part of LRP's throughput advantage (section 4.2 argues the
    gains "must be due in large part to factors such as reduced context
    switching, software interrupt dispatch, and improved memory access
    locality"). *)

type t = {
  (* interrupt path *)
  hard_rx : float;        (* driver hardware-interrupt work per packet *)
  soft_dispatch : float;  (* posting + dispatching a software interrupt *)
  demux : float;          (* early-demux classification (soft demux) *)
  ni_wakeup_intr : float; (* NI-LRP host interrupt, only to wake a receiver *)
  ni_channel_access : float;
      (* NI-LRP only: per-packet cost of reading a packet out of the
         NI-resident channel across the I/O bus.  Soft demux keeps channels
         in host memory and does not pay this. *)
  (* protocol processing *)
  ip_in : float;
  udp_in : float;
  tcp_in : float;         (* per segment, includes typical ACK emission *)
  pcb_lookup : float;     (* BSD's PCB lookup (bypassed under early demux) *)
  reasm_per_frag : float;
  ip_forward : float;     (* forwarding decision + header rewrite *)
  ip_out : float;
  udp_out : float;
  tcp_out : float;        (* per emitted segment *)
  driver_tx : float;      (* handing a packet to the interface *)
  (* socket / syscall *)
  syscall : float;        (* entering + leaving the kernel *)
  sockq : float;          (* one NI-channel queue operation (LRP) *)
  sockbuf_append : float; (* BSD socket-buffer append (softint side) *)
  sockbuf_op : float;     (* BSD socket-buffer dequeue with mbuf chain
                             walking (app side, sbappendaddr and friends) *)
  mbuf_free : float;      (* releasing a packet's mbuf chain *)
  ipq_op : float;         (* shared IP queue enqueue or dequeue *)
  copy_per_byte : float;
  wakeup : float;         (* sleep/wakeup machinery *)
  (* process *)
  ctx_switch : float;
  fork : float;
  (* locality model *)
  eager_penalty : float;  (* >= 1: protocol work in interrupt context *)
  lazy_locality : float;  (* <= 1: batched protocol work in process context *)
  (* NAPI-era receive path *)
  napi_irq : float;       (* mitigated interrupt: ack + mask + schedule poll;
                             no per-packet work happens here *)
  poll_dequeue : float;   (* pulling one packet off a NIC ring in the poll
                             loop (descriptor read + mbuf setup) *)
  poll_loop : float;      (* fixed overhead of one poll round *)
  gro_merge : float;      (* absorbing one segment into a held GRO train *)
}

(* 4.4BSD / LRP kernels with the paper's custom ATM driver. *)
let default =
  { hard_rx = 15.; soft_dispatch = 10.; demux = 8.; ni_wakeup_intr = 5.;
    ni_channel_access = 7.;
    ip_in = 8.; udp_in = 10.; tcp_in = 35.; pcb_lookup = 7.;
    reasm_per_frag = 6.; ip_forward = 14.; ip_out = 8.; udp_out = 10.;
    tcp_out = 25.;
    driver_tx = 12.;
    syscall = 55.; sockq = 6.; sockbuf_append = 4.; sockbuf_op = 15.;
    mbuf_free = 8.; ipq_op = 2.;
    copy_per_byte = 0.085; wakeup = 8.;
    ctx_switch = 18.; fork = 900.;
    eager_penalty = 1.2; lazy_locality = 0.9;
    napi_irq = 6.; poll_dequeue = 9.; poll_loop = 2.; gro_merge = 2. }

(* The vendor SunOS kernel with the Fore ATM driver: same architecture as
   BSD but a slower driver and copy path (Table 1 shows it well behind the
   4.4BSD-Lite-based kernels; the paper attributes this to known Fore driver
   performance problems). *)
let sunos_fore =
  { default with
    hard_rx = 45.; driver_tx = 45.; copy_per_byte = 0.11; syscall = 65. }

(* Aggregate receive-path interrupt cost under BSD (for documentation and
   calibration tests): hardware interrupt + softint dispatch + eager
   protocol processing. *)
let bsd_udp_interrupt_cost t =
  t.hard_rx +. t.soft_dispatch
  +. (t.eager_penalty *. (t.ip_in +. t.udp_in +. t.pcb_lookup))
  +. (2. *. t.ipq_op) +. t.sockbuf_append

(* Aggregate receive-path interrupt cost under SOFT-LRP: hardware interrupt
   including demultiplexing and the channel enqueue. *)
let soft_lrp_interrupt_cost t = t.hard_rx +. t.demux

let pp fmt t =
  Fmt.pf fmt
    "bsd-intr/pkt=%.1fus soft-lrp-intr/pkt=%.1fus syscall=%.1fus ctxsw=%.1fus"
    (bsd_udp_interrupt_cost t) (soft_lrp_interrupt_cost t) t.syscall
    t.ctx_switch
