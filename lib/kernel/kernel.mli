(** Simulated host kernel, parameterised by network-subsystem architecture.

    One [Kernel.t] per host.  It owns the CPU, the NIC, the protocol state
    (PCBs, reassembly, TCP connections) and implements the four receive
    architectures the paper compares:

    - {b Bsd}: eager interrupt-driven processing.  The hardware interrupt
      stores the packet and appends it to the shared IP queue; a software
      interrupt performs IP + transport processing and deposits data on the
      socket queue; the application finally copies it out in a receive
      system call (section 2.1).
    - {b Soft_lrp}: LRP with demultiplexing in the interrupt handler: the
      hardware interrupt classifies the packet onto its NI channel (early
      discard if full); all protocol processing happens lazily in the
      receiver's context or in an APP thread charged to the receiver.
    - {b Ni_lrp}: like [Soft_lrp], but classification and discard happen on
      the network interface itself at zero host cost; the host is
      interrupted only when a blocked receiver must be woken.
    - {b Early_demux}: the control experiment of section 4.2 — early
      demultiplexing and early discard like SOFT-LRP, but protocol
      processing stays eager in software-interrupt context like BSD.

    Three modern (post-paper) back-ends extend the comparison to the
    receive architectures that eventually shipped in mainstream kernels:

    - {b Napi}: interrupt mitigation with budgeted polling and NIC-level
      interrupt coalescing; budget exhaustion defers polling to a
      fairly-scheduled ksoftirqd process.
    - {b Napi_gro}: [Napi] plus receive-offload aggregation of
      consecutive in-order same-flow TCP segments (and same-flow UDP
      datagram trains) at the poll loop.
    - {b Rss}: receive-side scaling: flows hash over the packed flow key
      onto several receive rings, each with its own NAPI poll context.

    All architectures share the same protocol code ({!Lrp_proto.Tcp},
    {!Lrp_proto.Ip}) and the same cost table, exactly as the paper's kernels
    shared the 4.4BSD networking code.  Syscall-level behaviour (the socket
    API) lives in {!Api}. *)

type arch = Bsd | Soft_lrp | Ni_lrp | Early_demux | Napi | Napi_gro | Rss
(** The four receive architectures of the paper's evaluation, plus the
    three modern back-ends. *)

val arch_name : arch -> string
val is_lrp : arch -> bool

val is_napi : arch -> bool
(** The NAPI-family back-ends ([Napi], [Napi_gro], [Rss]): the NIC runs
    in queued-RX mode and the host polls. *)

type config = {
  arch : arch;
  costs : Cost.t;
  mtu : int;
  ip_queue_limit : int;
  channel_limit : int;
  udp_rcv_limit : int;
  mbuf_capacity : int;
  mss : int;
  sock_buf : int;
  time_wait : float;
  initial_rto : float;
  max_syn_retries : int;
  udp_helper : bool;
  forwarding : bool;
  fwd_nice : int;
  fair_app_accounting : bool;
  napi_budget : int;
      (** frames per poll round before deferring to ksoftirqd; a
          pathologically high budget keeps all polling at softirq level
          and reintroduces livelock *)
  rx_queues : int;  (** NIC receive rings (RSS steers across more than 1) *)
  rx_ring : int;  (** slots per receive ring *)
  coalesce_pkts : int;
      (** raise the interrupt after this many buffered frames... *)
  coalesce_us : float;  (** ... or this long after the first one *)
}
val default_config : ?costs:Cost.t -> arch -> config
(** The paper's testbed defaults: ATM MTU 9180, 32-packet channels,
    32 kB socket buffers, the UDP helper on, forwarding off.  NAPI-family
    defaults: budget 64, 256-slot rings, 8-packet / 30 us coalescing, and
    4 queues under [Rss] (1 otherwise). *)

type kstats = {
  mutable rx_frames : int;
  mutable ipq_drops : int;
  mutable mbuf_drops : int;
  mutable no_port_drops : int;
  mutable demux_drops : int;
  mutable edemux_early_drops : int;
  mutable udp_delivered : int;
  mutable tcp_delivered : int;
      (** TCP segments fed to their connection's state machine (with
          {!kstats.udp_delivered} and [forwarded], the "delivered work"
          numerator of the overload detector) *)
  mutable rx_wrong_peer : int;
  mutable forwarded : int;
  mutable fwd_drops : int;
  mutable rsts_sent : int;
  mutable csum_drops : int;
  mutable ipq_hwm : int;
      (** deepest shared-IP-queue depth observed (BSD path) *)
}
type job = Jchan of Lrp_core.Channel.t | Jtimer of (unit -> unit)
type app = {
  app_owner : Lrp_sim.Proc.t;
  jobs : job Queue.t;
  app_wq : Lrp_sim.Proc.waitq;
  mutable app_proc : Lrp_sim.Proc.t option;
  chan_pending : (int, unit) Hashtbl.t;
}

(** Per-receive-queue NAPI poll context: the "scheduled" bit, the
    packets served since the interrupt was masked (a softirq polling
    episode defers to ksoftirqd once this reaches the budget), the
    ksoftirqd hand-off flag and the ksoftirqd process itself. *)
type napi = {
  nq : int;
  mutable poll_on : bool;
  mutable episode : int;
  mutable last_poll : float;
  mutable in_ksoftirqd : bool;
  ksoftirqd_wq : Lrp_sim.Proc.waitq;
  mutable ksoftirqd : Lrp_sim.Proc.t option;
}
type t = {
  kname : string;
  engine : Lrp_engine.Engine.t;
  cpu : Lrp_sim.Cpu.t;
  nic : Lrp_net.Nic.t;
  mutable interfaces : (Lrp_net.Packet.ip * int * Lrp_net.Nic.t) list;
  cfg : config;
  c : Cost.t;
  ip_addr : Lrp_net.Packet.ip;
  mutable ipq_len : int;
  mbufs : Lrp_net.Mbuf.t;
  udp_ports : (int, Socket.t) Hashtbl.t;
  tcp_conns : (Lrp_net.Packet.ip * int * int, Lrp_proto.Tcp.conn) Hashtbl.t;
  tcp_listeners : (int, Lrp_proto.Tcp.conn) Hashtbl.t;
  conn_sock : (int, Socket.t) Hashtbl.t;
  conn_owner : (int, Lrp_sim.Proc.t) Hashtbl.t;
  parena : Lrp_net.Parena.t;
      (** shared RX descriptor arena backing every NI channel's ring *)
  chantab : Lrp_core.Chantab.t;
  chan_sock : (int, Socket.t) Hashtbl.t;
  mcast_members : (int, Socket.t list ref) Hashtbl.t;
  chan_conn : (int, Lrp_proto.Tcp.conn) Hashtbl.t;
  conn_chan : (int, Lrp_core.Channel.t) Hashtbl.t;
  mutable all_channels : Lrp_core.Channel.t list;
  apps : (int, app) Hashtbl.t;
  helper_wq : Lrp_sim.Proc.waitq;
  mutable helper_proc : Lrp_sim.Proc.t option;
  fwd_wq : Lrp_sim.Proc.waitq;
  mutable fwd_proc : Lrp_sim.Proc.t option;
  mutable udp_channels : Lrp_core.Channel.t list;
  mutable napi : napi array;
      (** one per RX queue; [[||]] unless NAPI-family *)
  mutable napi_grace_tgt : Lrp_sim.Proc.waitq Lrp_engine.Engine.target option;
      (** closure-free grace-poll re-arm; registered on first IRQ
          deferral *)
  reasm : Lrp_proto.Ip.Reasm.t;
  mutable tcp_env : Lrp_proto.Tcp.env option;
  mutable timer_tgt : Lrp_proto.Tcp.timer Lrp_engine.Engine.target option;
  mutable rcvto_tgt : (Socket.t * bool ref) Lrp_engine.Engine.target option;
  mutable eph_port : int;
  stats : kstats;
  tracer : Lrp_trace.Trace.t;
  metrics : Lrp_trace.Metrics.t;
}
val name : t -> string
val cpu : t -> Lrp_sim.Cpu.t
val engine : t -> Lrp_engine.Engine.t
val nic : t -> Lrp_net.Nic.t
val config : t -> config
val costs : t -> Cost.t
val stats : t -> kstats
val arch : t -> arch
val ip_address : t -> Lrp_net.Packet.ip
val chantab : t -> Lrp_core.Chantab.t
val mbufs : t -> Lrp_net.Mbuf.t
val channels : t -> Lrp_core.Channel.t list
val lrp_mode : t -> bool
val now : t -> Lrp_engine.Time.t
val is_local_addr : t -> Lrp_net.Packet.ip -> bool
val route : t -> int -> Lrp_net.Nic.t
val drop_channel : t -> int -> unit
(** Forget a deallocated channel by id (bookkeeping for the reporting
    list). *)

val early_discards : t -> int

val tracer : t -> Lrp_trace.Trace.t
(** The kernel's structured tracer.  Disabled by default; enable with
    {!set_tracing} (or {!Lrp_trace.Trace.set_enabled}) to record packet
    lifecycle and scheduler events into the per-kernel ring buffer. *)

val metrics : t -> Lrp_trace.Metrics.t
(** The kernel's metrics registry.  Kernel, CPU, NIC, reassembly and TCP
    instruments are registered at construction; snapshot with
    {!Lrp_trace.Metrics.snapshot}. *)

val set_tracing : t -> bool -> unit
val tracing : t -> bool

val trc : t -> ('a, unit, string, unit) format4 -> 'a
(** Formatted note into the kernel's tracer ([Note] event class); a no-op
    when tracing is disabled. *)

val tcp_env_exn : t -> Lrp_proto.Tcp.env
val ip_output : t -> Lrp_net.Packet.t -> unit
val seg_out_cost : t -> float
val free_rx_mbufs : t -> int -> unit
val free_rx_pkt : t -> mh:Lrp_net.Mbuf.handle -> int -> unit
(* Free a received packet's mbuf reservation: by handle when the receive
   path carried one, by bytes otherwise.  A no-op under the LRP
   architectures, which never draw RX packets from the mbuf pool. *)
val udp_send_cost : t -> frags:int -> float
val wake_all : t -> Lrp_sim.Proc.waitq -> unit
val recv_timeout_target :
  t -> (Socket.t * bool ref) Lrp_engine.Engine.target
(* Typed recvfrom-timeout expiry dispatcher (registered on first use):
   sets the flag and wakes the socket's receive waiters. *)
val wake_one : t -> Lrp_sim.Proc.waitq -> unit
val sock_of_conn : t -> Lrp_proto.Tcp.conn -> Socket.t option
val update_listen_gate : t -> Lrp_proto.Tcp.conn -> unit
val app_loop : t -> app -> unit
val drain_tcp_channel : t -> Lrp_core.Channel.t -> unit
val tcp_deliver :
  t ->
  Lrp_proto.Tcp.conn ->
  Lrp_net.Packet.t -> ctx:[< `Proc | `Soft > `Proc ] -> unit
val app_for : t -> Lrp_sim.Proc.t -> app
val orphan_drain : t -> Lrp_core.Channel.t -> unit -> unit
val app_post_chan : t -> Lrp_proto.Tcp.conn -> Lrp_core.Channel.t -> unit
val app_post_timer : t -> Lrp_proto.Tcp.conn -> (unit -> unit) -> unit
val register_conn :
  t -> Lrp_proto.Tcp.conn -> owner:Lrp_sim.Proc.t option -> unit
val deregister_conn : t -> Lrp_proto.Tcp.conn -> unit
val make_tcp_env : t -> Lrp_proto.Tcp.env
val datagram_of :
  ?mh:Lrp_net.Mbuf.handle -> Lrp_net.Packet.t -> Socket.udp_datagram
val peer_accepts :
  t -> Socket.t -> Socket.udp_datagram -> bool
val deposit_and_wake :
  t -> Socket.t -> Socket.udp_datagram -> unit
val deliver_udp_ready :
  ?mh:Lrp_net.Mbuf.handle -> t -> Lrp_net.Packet.t -> unit
val icmp_reply : t -> Lrp_net.Packet.t -> unit
val deliver_tcp :
  t -> Lrp_net.Packet.t -> ctx:[< `Proc | `Soft > `Proc ] -> unit
val bsd_transport_input :
  ?mh:Lrp_net.Mbuf.handle -> t -> Lrp_net.Packet.t -> unit
val transport_cost : t -> Lrp_net.Packet.t -> skip_pcb:bool -> float
val bsd_soft_cost : t -> Lrp_net.Packet.t -> float
val bsd_softnet :
  ?mh:Lrp_net.Mbuf.handle -> t -> Lrp_net.Packet.t -> unit -> unit
val bsd_driver_rx : t -> Lrp_net.Packet.t -> unit -> unit

val rss_steer : Lrp_net.Packet.t -> queues:int -> int
(** RSS queue placement: a deterministic integer mix over the packed
    flow key ([hi]/[lo] as the Flowtab probe packs them) — no tuple
    allocation, no structural hashing, stable across seeds and shard
    counts.  Fragments steer by IP ident so one datagram's pieces share
    a ring. *)

val ni_wake : t -> (unit -> unit) -> unit
val lrp_classify_rx : t -> Lrp_net.Packet.t -> unit
val edemux_rx : t -> Lrp_net.Packet.t -> unit -> unit
val rx_dispatch : t -> Lrp_net.Packet.t -> unit
val drain_frag_channel : t -> charge:(float -> unit) -> Lrp_net.Packet.t list
val lrp_process_udp_raw :
  t -> charge:(float -> unit) -> Lrp_net.Packet.t -> Lrp_net.Packet.t list

(** [proto_charge t ch] is the [~charge] function receiver-context
    callers should pass: {!Lrp_sim.Proc.compute} with the segment
    attributed as protocol work on channel [ch] in the CPU's
    {!Lrp_sim.Ledger}. *)
val proto_charge : t -> Lrp_core.Channel.t -> float -> unit
val helper_loop : t -> 'a
val fwd_daemon_loop : t -> 'a
val create :
  Lrp_engine.Engine.t ->
  Lrp_net.Fabric.t -> name:string -> ip:Lrp_net.Packet.ip -> config -> t
val fresh_port : t -> int
val add_interface :
  t ->
  Lrp_net.Fabric.t ->
  ip:Lrp_net.Packet.ip -> ?masklen:int -> unit -> Lrp_net.Nic.t
