(** Socket system calls.

    Every function here runs in simulated process context (inside a
    {!Lrp_sim.Proc} coroutine) and charges CPU through {!Lrp_sim.Proc.compute}.
    This is where the architectural difference on the receive path is most
    visible:

    - under BSD / Early-Demux, [recvfrom] finds fully-processed datagrams on
      the socket queue (deposited by software interrupts) and merely copies
      them out;
    - under LRP, [recvfrom] takes {e raw packets} off the socket's NI
      channel and performs IP and UDP processing right here, in the
      receiving process's context, at its priority, charged to it —
      the "lazy receiver processing" the paper is named after
      (section 3.3). *)

type dgram =
  Socket.udp_datagram = {
  dg_payload : Lrp_net.Payload.t;
  dg_from : Lrp_net.Packet.ip * int;
  dg_pkt : int;  (** originating packet's IP ident, for tracing *)
  dg_mbuf : int;
      (** mbuf-pool handle backing this datagram until copyout, or
          [Lrp_net.Mbuf.no_handle] on paths that account by bytes *)
}
(** A received datagram: payload plus source address. *)

exception Socket_closed
(** Raised by blocking calls when the socket is closed underneath them. *)

val c : Kernel.t -> Cost.t
(** The kernel's cost table (shorthand used by the syscall bodies). *)

val frag_count : Kernel.t -> header:int -> bytes:int -> int
(** Number of IP fragments a datagram with [header] transport-header bytes
    and [bytes] of payload needs under the kernel's MTU. *)

(** {1 Socket lifecycle} *)

val socket_dgram : Kernel.t -> Socket.t
(** Create an (unbound) UDP socket. *)

val socket_stream : 'a -> Socket.t
(** Create an (unconnected) TCP socket. *)

val bind :
  Kernel.t -> Socket.t -> owner:Lrp_sim.Proc.t option -> port:int -> unit
(** Bind a datagram socket to a local port.  Under LRP this creates the
    socket's NI channel (section 3.1).
    @raise Invalid_argument if the port is in use. *)

val bind_ephemeral :
  Kernel.t -> Socket.t -> owner:Lrp_sim.Proc.t option -> int
(** Bind to a fresh ephemeral port and return it. *)

val join_group :
  Kernel.t -> Socket.t -> owner:Lrp_sim.Proc.t option ->
  group:Lrp_net.Packet.ip -> port:int -> unit
(** Subscribe a datagram socket to a multicast group.  All members of the
    group on this host share a single NI channel (section 3.1); the first
    joiner creates it.
    @raise Invalid_argument if [group] is not a class-D address. *)

val leave_group : Kernel.t -> Socket.t -> port:int -> unit
(** Drop group membership; the last member's departure deallocates the
    shared channel. *)

val close : Kernel.t -> self:Lrp_sim.Proc.t -> Socket.t -> unit
(** Close a socket: releases ports/channels, initiates TCP teardown, and
    wakes any blocked callers (they observe {!Socket_closed} or EOF). *)

(** {1 UDP} *)

val sendto :
  Kernel.t -> self:Lrp_sim.Proc.t -> Socket.t ->
  dst:Lrp_net.Packet.ip * Lrp_net.Packet.port -> Lrp_net.Payload.t -> unit
(** Transmit a datagram (auto-binding an ephemeral source port if needed).
    Charged: syscall + copy + UDP/IP output + driver, per fragment. *)

val send_dgram :
  Kernel.t -> self:Lrp_sim.Proc.t -> Socket.t -> Lrp_net.Payload.t -> unit
(** [sendto] to the connected-UDP default destination.
    @raise Invalid_argument if the socket has none. *)

val udp_connect : 'a -> Socket.t -> remote:Lrp_net.Packet.ip * int -> unit
(** Set the default destination and enable peer filtering: datagrams from
    any other source are silently discarded (BSD connected-UDP
    semantics). *)

val pop_ready : Kernel.t -> Socket.t -> Socket.udp_datagram option
(** Dequeue an already-processed datagram from the socket queue, charging
    the dequeue + copy.  Internal building block of the receive calls. *)

val recvfrom :
  Kernel.t -> self:Lrp_sim.Proc.t -> Socket.t -> Socket.udp_datagram
(** Block until a datagram is available.  Under LRP this is where protocol
    processing happens: raw packets are taken off the NI channel and run
    through IP/UDP in the caller's context. *)

val recvfrom_timeout :
  Kernel.t -> self:Lrp_sim.Proc.t -> Socket.t -> timeout:float ->
  Socket.udp_datagram option
(** [recvfrom] with a deadline; [None] if nothing arrived in time. *)

val try_recvfrom :
  Kernel.t -> self:Lrp_sim.Proc.t -> Socket.t -> Socket.udp_datagram option
(** Non-blocking receive: [None] when nothing is available right now. *)

(** {1 TCP} *)

val tcp_listen :
  Kernel.t -> self:Lrp_sim.Proc.t -> Socket.t -> port:int -> backlog:int ->
  unit
(** Passive open.  [backlog] bounds embryonic + accepted-but-unclaimed
    connections; under LRP, exceeding it disables the listen channel so
    further SYNs die at the NI (section 3.4). *)

val listener_exn : Socket.t -> Lrp_proto.Tcp.conn
(** The listening connection behind a socket (introspection / tests). *)

val conn_exn : Socket.t -> Lrp_proto.Tcp.conn
(** The connection behind a connected stream socket. *)

val tcp_accept : Kernel.t -> self:Lrp_sim.Proc.t -> Socket.t -> Socket.t
(** Block until an established connection is available; returns a fresh
    socket owned by [self] (APP work for it is charged to [self]). *)

val tcp_connect :
  Kernel.t -> self:Lrp_sim.Proc.t -> Socket.t ->
  remote:Lrp_net.Packet.ip * int -> [> `Ok | `Refused ]
(** Active open; blocks until established ([`Ok]) or refused / timed out
    after the SYN retry budget ([`Refused]). *)

val tcp_send :
  Kernel.t -> self:Lrp_sim.Proc.t -> Socket.t -> Lrp_net.Payload.t ->
  [> `Closed | `Ok ]
(** Queue the whole payload, blocking while the send buffer is full.
    [`Closed] if the connection dies first. *)

val tcp_recv :
  Kernel.t -> self:Lrp_sim.Proc.t -> Socket.t -> max:int ->
  [> `Data of Lrp_net.Payload.t | `Eof ]
(** Block for stream data (at most [max] bytes); [`Eof] after the peer's
    FIN once the buffer is drained.  Reading may emit a window update. *)

val set_owner : Kernel.t -> Socket.t -> owner:Lrp_sim.Proc.t -> unit
(** Hand a connected socket to another process (e.g. an HTTP child after
    fork): subsequent APP work is scheduled at — and charged to — the new
    owner. *)
