(** Simulated host kernel, parameterised by network-subsystem architecture.

    One [Kernel.t] per host.  It owns the CPU, the NIC, the protocol state
    (PCBs, reassembly, TCP connections) and implements the four receive
    architectures the paper compares:

    - {b Bsd}: eager interrupt-driven processing.  The hardware interrupt
      stores the packet and appends it to the shared IP queue; a software
      interrupt performs IP + transport processing and deposits data on the
      socket queue; the application finally copies it out in a receive
      system call (section 2.1).
    - {b Soft_lrp}: LRP with demultiplexing in the interrupt handler: the
      hardware interrupt classifies the packet onto its NI channel (early
      discard if full); all protocol processing happens lazily in the
      receiver's context or in an APP thread charged to the receiver.
    - {b Ni_lrp}: like [Soft_lrp], but classification and discard happen on
      the network interface itself at zero host cost; the host is
      interrupted only when a blocked receiver must be woken.
    - {b Early_demux}: the control experiment of section 4.2 — early
      demultiplexing and early discard like SOFT-LRP, but protocol
      processing stays eager in software-interrupt context like BSD.

    Three modern (post-paper) back-ends extend the comparison to the
    receive architectures that eventually shipped in mainstream kernels:

    - {b Napi}: interrupt mitigation with budgeted polling.  The first
      frame raises a (cheap) interrupt that masks the queue and schedules
      a softirq poll; the poll dequeues up to [napi_budget] frames per
      round, re-enables the interrupt when the ring drains, and defers to
      a fairly-scheduled ksoftirqd process when the budget is exhausted
      with backlog remaining.  The NIC adds configurable interrupt
      coalescing (packet-count threshold / hold-off timer).
    - {b Napi_gro}: [Napi] plus receive-offload aggregation: consecutive
      in-order same-flow TCP segments are merged at the poll loop into
      one large segment before protocol processing (flushed on flow
      change, PSH, out-of-order arrival or budget exhaustion); same-flow
      UDP datagram trains share one protocol pass.
    - {b Rss}: receive-side scaling — the NIC hashes flows over the
      packed flow key onto [rx_queues] receive rings, each running its
      own [Napi] poll context.

    All architectures share the same protocol code ({!Lrp_proto.Tcp},
    {!Lrp_proto.Ip}) and the same cost table, exactly as the paper's kernels
    shared the 4.4BSD networking code.  Syscall-level behaviour (the socket
    API) lives in {!Api}. *)

open Lrp_engine
open Lrp_sim
open Lrp_net
open Lrp_proto
open Lrp_core
module Trace = Lrp_trace.Trace
module Metrics = Lrp_trace.Metrics

type arch = Bsd | Soft_lrp | Ni_lrp | Early_demux | Napi | Napi_gro | Rss

let arch_name = function
  | Bsd -> "4.4BSD"
  | Soft_lrp -> "SOFT-LRP"
  | Ni_lrp -> "NI-LRP"
  | Early_demux -> "Early-Demux"
  | Napi -> "NAPI"
  | Napi_gro -> "NAPI-GRO"
  | Rss -> "RSS"

let is_lrp = function
  | Soft_lrp | Ni_lrp -> true
  | Bsd | Early_demux | Napi | Napi_gro | Rss -> false

(* The NAPI-family back-ends run the NIC in queued-RX mode and poll. *)
let is_napi = function
  | Napi | Napi_gro | Rss -> true
  | Bsd | Soft_lrp | Ni_lrp | Early_demux -> false

type config = {
  arch : arch;
  costs : Cost.t;
  mtu : int;
  ip_queue_limit : int;       (* BSD shared IP queue, packets *)
  channel_limit : int;        (* LRP per-channel queue, packets *)
  udp_rcv_limit : int;        (* socket queue, datagrams *)
  mbuf_capacity : int;
  mss : int;
  sock_buf : int;             (* TCP send/receive buffer, bytes *)
  time_wait : float;
  initial_rto : float;
  max_syn_retries : int;
  udp_helper : bool;          (* LRP minimal-priority protocol thread *)
  forwarding : bool;          (* act as an IP gateway (section 3.5) *)
  fwd_nice : int;             (* priority of the LRP forwarding daemon *)
  fair_app_accounting : bool;
      (* charge APP-thread CPU to the owning process (section 3.4); turning
         this off is the accounting ablation: the APP thread is scheduled
         and charged as an independent thread, BSD-style *)
  (* --- NAPI-family knobs (Napi / Napi_gro / Rss only) --- *)
  napi_budget : int;          (* frames per poll round before deferring to
                                 ksoftirqd; a pathologically high budget
                                 keeps all polling at softirq level and
                                 reintroduces livelock *)
  rx_queues : int;            (* NIC receive rings (RSS steers across >1) *)
  rx_ring : int;              (* slots per receive ring *)
  coalesce_pkts : int;        (* interrupt after this many buffered frames *)
  coalesce_us : float;        (* ... or this long after the first one *)
}

let default_config ?(costs = Cost.default) arch =
  { arch; costs; mtu = 9180 (* ATM AAL5 *); ip_queue_limit = 50;
    channel_limit = 32; udp_rcv_limit = 32; mbuf_capacity = 4096;
    mss = 9140; sock_buf = 32 * 1024; time_wait = Lrp_engine.Time.sec 30.;
    initial_rto = Lrp_engine.Time.sec 1.5; max_syn_retries = 4;
    udp_helper = true; forwarding = false; fwd_nice = 0;
    fair_app_accounting = true;
    napi_budget = 64; rx_queues = (match arch with Rss -> 4 | _ -> 1);
    rx_ring = 256; coalesce_pkts = 8; coalesce_us = 30. }

type kstats = {
  mutable rx_frames : int;          (* frames seen by the receive path *)
  mutable ipq_drops : int;          (* BSD shared IP queue overflow *)
  mutable mbuf_drops : int;
  mutable no_port_drops : int;      (* no endpoint (BSD, after processing) *)
  mutable demux_drops : int;        (* no endpoint (LRP, at demux time) *)
  mutable edemux_early_drops : int; (* Early-Demux interrupt-time discards *)
  mutable udp_delivered : int;      (* datagrams deposited for applications *)
  mutable tcp_delivered : int;      (* TCP segments fed to their connection *)
  mutable rx_wrong_peer : int;      (* dropped by connected-UDP filtering *)
  mutable forwarded : int;          (* packets forwarded to another network *)
  mutable fwd_drops : int;          (* not ours and not forwarding *)
  mutable rsts_sent : int;
  mutable csum_drops : int;         (* content-checksum mismatches *)
  mutable ipq_hwm : int;            (* deepest shared-IP-queue depth seen *)
}

type job = Jchan of Channel.t | Jtimer of (unit -> unit)

type app = {
  app_owner : Proc.t;
  jobs : job Queue.t;
  app_wq : Proc.waitq;
  mutable app_proc : Proc.t option;
  chan_pending : (int, unit) Hashtbl.t;  (* channel ids with a queued job *)
}

(* Per-receive-queue NAPI poll context (Napi / Napi_gro / Rss).  [poll_on]
   is the NAPI "scheduled" bit: set from the mitigated interrupt until the
   ring truly drains, so at most one poll chain runs per queue.  [episode]
   counts packets served since the interrupt was masked; once a softirq
   polling episode has served a whole budget with backlog remaining,
   polling is handed to the queue's ksoftirqd process, which repolls under
   the fair scheduler until the ring drains — the mechanism that keeps a
   sane budget out of livelock (poll cycles compete with applications
   instead of preempting them). *)
type napi = {
  nq : int;                              (* receive-queue index *)
  mutable poll_on : bool;
  mutable episode : int;                 (* packets served this episode *)
  mutable last_poll : float;             (* when the last poll round ended *)
  mutable in_ksoftirqd : bool;
  ksoftirqd_wq : Proc.waitq;
  mutable ksoftirqd : Proc.t option;
}

(* A kick arriving within this many microseconds of the previous poll
   round's end continues the same polling {e episode} (the softirq level
   never really went quiet — Linux's "softirq storm"); a longer gap
   starts a fresh one.  Without this, a load whose per-packet softirq
   cost sits just below the interarrival time drains the ring on every
   round, resets the budget, and services the whole flood at interrupt
   priority — exactly the starvation NAPI exists to stop. *)
let napi_storm_gap = 60.

(* How long ksoftirqd holds the interrupt masked and sleeps before a
   grace poll when it finds the ring momentarily empty.  Longer than the
   storm gap on purpose: each grace poll then gathers a few frames, so
   the ksoftirqd/application alternation pays its context switches per
   small batch instead of per packet. *)
let napi_repoll = 500.

type t = {
  kname : string;
  engine : Engine.t;
  cpu : Cpu.t;
  nic : Nic.t;  (* primary interface *)
  mutable interfaces : (Packet.ip * int * Nic.t) list;
      (* (address, prefix length, nic); multi-homed gateways have several *)
  cfg : config;
  c : Cost.t;
  ip_addr : Packet.ip;
  (* --- BSD path state --- *)
  mutable ipq_len : int;
  mbufs : Mbuf.t;
  (* --- endpoint tables --- *)
  udp_ports : (int, Socket.t) Hashtbl.t;
  tcp_conns : (Packet.ip * int * int, Tcp.conn) Hashtbl.t; (* src,sport,dport *)
  tcp_listeners : (int, Tcp.conn) Hashtbl.t;
  conn_sock : (int, Socket.t) Hashtbl.t;   (* conn id -> socket *)
  conn_owner : (int, Proc.t) Hashtbl.t;    (* conn id -> owning process *)
  (* --- LRP state --- *)
  parena : Parena.t;
      (* shared RX descriptor arena; every NI channel's ring draws its
         frame descriptors from here *)
  chantab : Chantab.t;
  chan_sock : (int, Socket.t) Hashtbl.t;   (* channel id -> socket (UDP) *)
  mcast_members : (int, Socket.t list ref) Hashtbl.t;
      (* multicast port -> member sockets; all share one NI channel
         (section 3.1) *)
  chan_conn : (int, Tcp.conn) Hashtbl.t;   (* channel id -> connection *)
  conn_chan : (int, Channel.t) Hashtbl.t;  (* connection id -> its channel *)
  mutable all_channels : Channel.t list;
  apps : (int, app) Hashtbl.t;             (* owner pid -> APP thread *)
  helper_wq : Proc.waitq;
  mutable helper_proc : Proc.t option;
  fwd_wq : Proc.waitq;
  mutable fwd_proc : Proc.t option;
  mutable udp_channels : Channel.t list;   (* scanned by the helper *)
  (* --- NAPI state --- *)
  mutable napi : napi array;   (* one per RX queue; [||] unless NAPI-family *)
  mutable napi_grace_tgt : Proc.waitq Engine.target option;
      (* closure-free grace-poll re-arm; registered on first IRQ deferral *)
  (* --- shared protocol state --- *)
  reasm : Ip.Reasm.t;
  mutable tcp_env : Tcp.env option;
  mutable timer_tgt : Tcp.timer Engine.target option;
      (* closure-free TCP timer expiry event; registered on first arm *)
  mutable rcvto_tgt : (Socket.t * bool ref) Engine.target option;
      (* closure-free recvfrom-timeout expiry event; registered on first
         use.  The argument pairs the blocked socket with the caller's
         expiry flag, so arming a timeout allocates one pair instead of a
         capturing closure. *)
  mutable eph_port : int;
  stats : kstats;
  (* --- observability (per-kernel: parallel sweeps never share these) --- *)
  tracer : Trace.t;
  metrics : Metrics.t;
}

let name t = t.kname
let cpu t = t.cpu
let engine t = t.engine
let nic t = t.nic
let config t = t.cfg
let costs t = t.c
let stats t = t.stats
let arch t = t.cfg.arch
let ip_address t = t.ip_addr
let chantab t = t.chantab
let mbufs t = t.mbufs
let channels t = t.all_channels
let lrp_mode t = is_lrp t.cfg.arch
let now t = Engine.now t.engine

(* Is [addr] one of this host's own addresses? *)
let is_local_addr t addr =
  List.exists (fun (ip, _, _) -> ip = addr) t.interfaces

(* Longest-prefix-match routing across this host's interfaces; the primary
   interface is the default route. *)
let route t dst =
  let matches (ip, masklen, _) =
    masklen > 0 && ip lsr (32 - masklen) = dst lsr (32 - masklen)
  in
  let best =
    List.fold_left
      (fun acc ((_, masklen, _) as entry) ->
        if matches entry then
          match acc with
          | Some (_, best_len, _) when best_len >= masklen -> acc
          | Some _ | None -> Some entry
        else acc)
      None t.interfaces
  in
  match best with Some (_, _, nic) -> nic | None -> t.nic

(* Forget a deallocated channel (reporting list). *)
let drop_channel t chid =
  t.all_channels <-
    List.filter (fun ch -> Channel.id ch <> chid) t.all_channels

let early_discards t =
  List.fold_left
    (fun acc ch -> acc + Channel.discarded ch + Channel.discarded_disabled ch)
    0 t.all_channels

let tracer t = t.tracer
let metrics t = t.metrics

let set_tracing t on = Trace.set_enabled t.tracer on
let tracing t = Trace.enabled t.tracer

let trc t fmt =
  if Trace.enabled t.tracer then
    Printf.ksprintf (fun s -> Trace.note t.tracer s) fmt
  else Printf.ifprintf () fmt

let tcp_env_exn t =
  match t.tcp_env with Some e -> e | None -> assert false

(* ------------------------------------------------------------------ *)
(* Output path                                                          *)
(* ------------------------------------------------------------------ *)

(* Hand a datagram to IP output: fragment to the MTU and enqueue on the
   interface.  Pure state manipulation; CPU cost is charged by the caller
   (process context for sends; interrupt/APP context for protocol-generated
   segments). *)
let ip_output t pkt =
  let nic = route t (Packet.dst pkt) in
  let frags = Ip.fragment pkt ~mtu:t.cfg.mtu in
  List.iter (fun f -> ignore (Nic.transmit nic f)) frags

(* Per-segment transmit cost (protocol output + driver). *)
let seg_out_cost t = t.c.Cost.tcp_out +. t.c.Cost.ip_out +. t.c.Cost.driver_tx

(* Free a packet's mbufs.  LRP receive paths never allocate from the mbuf
   pool (packets live in NI channel buffers), so the free is conditional on
   the architecture that allocated. *)
let free_rx_mbufs t bytes =
  match t.cfg.arch with
  | Bsd | Early_demux | Napi | Napi_gro | Rss -> Mbuf.free t.mbufs ~bytes
  | Soft_lrp | Ni_lrp -> ()

(* Handle-aware variant: the mbuf kernels' non-fragment receive path
   carries the pool handle from the driver's {!Mbuf.alloc_h} all the way
   to the free site, so the count returned is the count reserved — no
   per-site byte recomputation to drift.  Fragments (whose reassembled
   whole has a different wire footprint than the sum of its pieces) stay
   on byte accounting with [mh = Mbuf.no_handle]. *)
let free_rx_pkt t ~mh bytes =
  match t.cfg.arch with
  | Bsd | Early_demux | Napi | Napi_gro | Rss ->
      if mh >= 0 then Mbuf.free_h t.mbufs mh else Mbuf.free t.mbufs ~bytes
  | Soft_lrp | Ni_lrp -> ()

(* Receiver-side content-checksum verification.  Corrupted packets die at
   the first transport-level touch: counted, traced, and never delivered,
   never answered (no RST / ICMP reply for garbage). *)
let csum_ok t (pkt : Packet.t) =
  Packet.verify pkt
  ||
  begin
    t.stats.csum_drops <- t.stats.csum_drops + 1;
    Trace.csum_drop t.tracer ~pkt:pkt.Packet.ip.Packet.ident;
    false
  end

(* Cost of sending one UDP datagram from process context (excluding the
   per-byte copy, which the API adds). *)
let udp_send_cost t ~frags =
  t.c.Cost.udp_out +. (float_of_int frags *. (t.c.Cost.ip_out +. t.c.Cost.driver_tx))

(* ------------------------------------------------------------------ *)
(* Wakeup helpers                                                       *)
(* ------------------------------------------------------------------ *)

let wake_all t wq = ignore (Cpu.wakeup_all t.cpu wq)
let wake_one t wq = ignore (Cpu.wakeup_one t.cpu wq)

(* Grace-poll re-arm of the NAPI IRQ-deferral window: wake the queue's
   ksoftirqd waitq after [napi_repoll], through a registered dispatcher
   and a staged deadline so a deferral cycle allocates nothing (the
   inline [schedule_after ... (fun () -> ...)] form cost a thunk plus a
   boxed delay per grace poll). *)
let napi_grace_rearm t (n : napi) =
  let g =
    match t.napi_grace_tgt with
    | Some g -> g
    | None ->
        let g =
          (* alloc: cold — one-time dispatcher registration *)
          Engine.target t.engine (fun wq -> wake_one t wq)
        in
        (* alloc: cold — one-time dispatcher registration *)
        t.napi_grace_tgt <- Some g;
        g
  in
  (Engine.deadline_cell t.engine).(0) <-
    (Engine.clock_cell t.engine).(0) +. napi_repoll;
  ignore (Engine.schedule_to_staged t.engine g n.ksoftirqd_wq)

let sock_of_conn t conn = Hashtbl.find_opt t.conn_sock conn.Tcp.id

(* LRP gates the listening socket's channel on the backlog: once exceeded,
   protocol processing is disabled and further SYNs die cheaply at the NI
   channel (section 3.4). *)
let update_listen_gate t (listener : Tcp.conn) =
  if lrp_mode t then
    match Hashtbl.find_opt t.conn_chan listener.Tcp.id with
    | None -> ()
    | Some ch ->
        let load =
          listener.Tcp.syn_pending + Queue.length listener.Tcp.accept_queue
        in
        if load >= listener.Tcp.backlog then Channel.disable_processing ch
        else Channel.enable_processing ch

(* ------------------------------------------------------------------ *)
(* APP threads: asynchronous protocol processing for TCP (section 3.4)  *)
(* ------------------------------------------------------------------ *)

let rec app_loop t app =
  match Queue.take_opt app.jobs with
  | Some job ->
      (match job with
       | Jchan ch ->
           Hashtbl.remove app.chan_pending (Channel.id ch);
           trc t "app %s: drain chan %d (len=%d)" app.app_owner.Proc.name
             (Channel.id ch) (Channel.length ch);
           drain_tcp_channel t ch
       | Jtimer f ->
           Cpu.compute_proto t.cpu (t.c.Cost.lazy_locality *. t.c.Cost.tcp_in);
           f ());
      app_loop t app
  | None ->
      if app.app_owner.Proc.exited then
        (* The APP thread dies with its process. *)
        Hashtbl.remove t.apps app.app_owner.Proc.pid
      else begin
        trc t "app %s: block" app.app_owner.Proc.name;
        Proc.block app.app_wq;
        app_loop t app
      end

and drain_tcp_channel t ch =
  let pkt = Channel.pop ch in
  if pkt != Packet.null then begin
    Cpu.compute_proto t.cpu ~flow:(Channel.id ch)
      ((match t.cfg.arch with
        | Ni_lrp -> t.c.Cost.ni_channel_access
        | Bsd | Soft_lrp | Early_demux | Napi | Napi_gro | Rss -> 0.)
       +. (t.c.Cost.lazy_locality *. (t.c.Cost.ip_in +. t.c.Cost.tcp_in)));
    (match Hashtbl.find_opt t.chan_conn (Channel.id ch) with
     | None -> () (* connection vanished: discard *)
     | Some conn ->
         tcp_deliver t conn pkt ~ctx:`Proc;
         if Tcp.state conn = Tcp.Listen then update_listen_gate t conn);
    drain_tcp_channel t ch
  end

(* Deliver a (non-fragment) TCP segment to its connection, charging for any
   extra segments the state machine emitted beyond the one emission already
   included in [tcp_in]. *)
and tcp_deliver t conn pkt ~ctx =
  if csum_ok t pkt then begin
    Trace.proto_deliver t.tracer ~pkt:pkt.Packet.ip.Packet.ident
      ~conn:conn.Tcp.id
      ~in_proc:(match ctx with `Proc -> true | `Soft -> false);
    let before = conn.Tcp.segs_sent in
    Tcp.input conn pkt;
    t.stats.tcp_delivered <- t.stats.tcp_delivered + 1;
    let extra = conn.Tcp.segs_sent - before - 1 in
    if extra > 0 then begin
      let cost = float_of_int extra *. seg_out_cost t in
      match ctx with
      | `Proc -> Cpu.compute_proto t.cpu (t.c.Cost.lazy_locality *. cost)
      | `Soft -> Cpu.post_soft t.cpu ~label:"tcp-tx" ~cost (fun () -> ())
    end
  end

and app_for t (owner : Proc.t) =
  match Hashtbl.find_opt t.apps owner.Proc.pid with
  | Some app -> app
  | None ->
      let app =
        { app_owner = owner; jobs = Queue.create ();
          app_wq = Proc.waitq (Printf.sprintf "app.%s" owner.Proc.name);
          app_proc = None; chan_pending = Hashtbl.create 8 }
      in
      Hashtbl.replace t.apps owner.Proc.pid app;
      let proc =
        Cpu.spawn t.cpu ~name:(Printf.sprintf "app-%s" owner.Proc.name)
          (fun _self -> app_loop t app)
      in
      (* Scheduled at the owner's priority; CPU usage charged to the owner
         (paper section 3.4).  The accounting ablation skips this. *)
      if t.cfg.fair_app_accounting then
        Cpu.set_account t.cpu proc ~owner:(Some owner);
      app.app_proc <- Some proc;
      app

(* Orphaned connections (the owning process exited with the connection
   still draining — a normal close-behind-exit) have no APP thread left, so
   their protocol processing falls back to software-interrupt level, as in
   the paper's prototype where a kernel process owns TCP processing. *)
let rec orphan_drain t ch () =
  let pkt = Channel.pop ch in
  if pkt != Packet.null then begin
    (match Hashtbl.find_opt t.chan_conn (Channel.id ch) with
     | Some conn -> tcp_deliver t conn pkt ~ctx:`Soft
     | None -> ());
    if not (Channel.is_empty ch) then
      Cpu.post_soft t.cpu ~label:"tcp-orphan"
        ~cost:(t.c.Cost.soft_dispatch
               +. (t.c.Cost.eager_penalty *. (t.c.Cost.ip_in +. t.c.Cost.tcp_in)))
        (orphan_drain t ch)
  end

let app_post_chan t conn ch =
  let fallback () =
    Cpu.post_soft t.cpu ~label:"tcp-orphan"
      ~cost:(t.c.Cost.soft_dispatch
             +. (t.c.Cost.eager_penalty *. (t.c.Cost.ip_in +. t.c.Cost.tcp_in)))
      (orphan_drain t ch)
  in
  match Hashtbl.find_opt t.conn_owner conn.Tcp.id with
  | None -> fallback ()
  | Some owner ->
      if owner.Proc.exited then fallback ()
      else begin
        let app = app_for t owner in
        if not (Hashtbl.mem app.chan_pending (Channel.id ch)) then begin
          Hashtbl.replace app.chan_pending (Channel.id ch) ();
          Queue.add (Jchan ch) app.jobs;
          trc t "post chan %d job for %s" (Channel.id ch) owner.Proc.name
        end;
        wake_one t app.app_wq
      end

let app_post_timer t conn f =
  match Hashtbl.find_opt t.conn_owner conn.Tcp.id with
  | Some owner when not owner.Proc.exited ->
      let app = app_for t owner in
      Queue.add (Jtimer f) app.jobs;
      wake_one t app.app_wq
  | Some _ | None ->
      (* Orphaned connection (e.g. TIME_WAIT after exit): fall back to
         software-interrupt context so it still makes progress. *)
      Cpu.post_soft t.cpu ~label:"tcp-timer"
        ~cost:(t.c.Cost.soft_dispatch +. t.c.Cost.tcp_in) (fun () -> f ())

(* ------------------------------------------------------------------ *)
(* Connection registration                                              *)
(* ------------------------------------------------------------------ *)

let register_conn t conn ~owner =
  match conn.Tcp.remote with
  | None -> invalid_arg "register_conn: no remote"
  | Some (rip, rport) ->
      Hashtbl.replace t.tcp_conns (rip, rport, conn.Tcp.local_port) conn;
      (match owner with
       | Some o -> Hashtbl.replace t.conn_owner conn.Tcp.id o
       | None -> ());
      if lrp_mode t then begin
        let ch =
          Channel.create ~arena:t.parena ~limit:t.cfg.channel_limit
            ~name:(Printf.sprintf "tcp:%d<-%d" conn.Tcp.local_port rport) ()
        in
        Chantab.add_tcp t.chantab ~src:rip ~src_port:rport
          ~dst_port:conn.Tcp.local_port ch;
        Hashtbl.replace t.chan_conn (Channel.id ch) conn;
        Hashtbl.replace t.conn_chan conn.Tcp.id ch;
        t.all_channels <- ch :: t.all_channels
      end

let deregister_conn t conn =
  match conn.Tcp.remote with
  | None -> ()
  | Some (rip, rport) ->
      (match Hashtbl.find_opt t.tcp_conns (rip, rport, conn.Tcp.local_port) with
       | Some c when c.Tcp.id = conn.Tcp.id ->
           Hashtbl.remove t.tcp_conns (rip, rport, conn.Tcp.local_port)
       | Some _ | None -> ());
      if lrp_mode t then begin
        Chantab.remove_tcp t.chantab ~src:rip ~src_port:rport
          ~dst_port:conn.Tcp.local_port;
        let stale =
          Lrp_det.Det.fold_sorted
            (fun chid c acc -> if c.Tcp.id = conn.Tcp.id then chid :: acc else acc)
            t.chan_conn []
        in
        List.iter (Hashtbl.remove t.chan_conn) stale;
        List.iter (drop_channel t) stale;
        Hashtbl.remove t.conn_chan conn.Tcp.id
      end

(* ------------------------------------------------------------------ *)
(* TCP environment                                                      *)
(* ------------------------------------------------------------------ *)

(* Engine-time expiry of an armed TCP timer: hand the expiry to the
   architecture's protocol-processing context.  The generation snapshot
   makes a stop/re-arm that happens while the posted work is still queued
   drop the stale delivery, exactly as the old per-arm record's [cancelled]
   flag did. *)
let fire_tcp_timer t tm =
  let gen = Tcp.timer_gen tm in
  match t.cfg.arch with
  | Bsd | Early_demux | Napi | Napi_gro | Rss ->
      Cpu.post_soft t.cpu ~label:"tcp-timer"
        ~cost:(t.c.Cost.soft_dispatch
               +. (t.c.Cost.eager_penalty *. t.c.Cost.tcp_in))
        (fun () -> Tcp.timer_fired tm ~gen)
  | Soft_lrp | Ni_lrp ->
      app_post_timer t (Tcp.timer_conn tm) (fun () -> Tcp.timer_fired tm ~gen)

(* Typed dispatcher for [Api.recvfrom_timeout] deadlines: registered once
   per kernel, so arming a timeout allocates a (socket, flag) pair instead
   of a capturing closure (the engine's typed fast path). *)
let recv_timeout_target t =
  match t.rcvto_tgt with
  | Some g -> g
  | None ->
      let g =
        Engine.target t.engine (fun (sock, expired) ->
            expired := true;
            wake_all t sock.Socket.recv_wait)
      in
      t.rcvto_tgt <- Some g;
      g

let timer_target t =
  match t.timer_tgt with
  | Some g -> g
  | None ->
      let g = Engine.target t.engine (fun tm -> fire_tcp_timer t tm) in
      t.timer_tgt <- Some g;
      g

let make_tcp_env t =
  { Tcp.now = (fun () -> Engine.now t.engine);
    emit = (fun pkt -> ip_output t pkt);
    start_timer =
      (fun tm delay ->
        tm.Tcp.cookie <-
          Engine.schedule_to_after t.engine ~delay (timer_target t) tm);
    stop_timer = (fun tm -> Engine.cancel t.engine tm.Tcp.cookie);
    on_readable =
      (fun conn ->
        match sock_of_conn t conn with
        | Some s -> wake_all t s.Socket.recv_wait
        | None -> ());
    on_writable =
      (fun conn ->
        match sock_of_conn t conn with
        | Some s -> wake_all t s.Socket.send_wait
        | None -> ());
    on_established =
      (fun conn ->
        match sock_of_conn t conn with
        | Some s ->
            wake_all t s.Socket.send_wait;
            wake_all t s.Socket.recv_wait
        | None -> ());
    on_accept_ready =
      (fun listener _child ->
        match sock_of_conn t listener with
        | Some s -> wake_all t s.Socket.accept_wait
        | None -> ());
    on_syn_received =
      (fun listener child ->
        let owner = Hashtbl.find_opt t.conn_owner listener.Tcp.id in
        register_conn t child ~owner);
    on_connect_failed =
      (fun conn ->
        match sock_of_conn t conn with
        | Some s ->
            wake_all t s.Socket.send_wait;
            wake_all t s.Socket.recv_wait
        | None -> ());
    on_reset =
      (fun conn ->
        match sock_of_conn t conn with
        | Some s ->
            wake_all t s.Socket.send_wait;
            wake_all t s.Socket.recv_wait;
            wake_all t s.Socket.accept_wait
        | None -> ());
    on_time_wait =
      (fun conn ->
        (* NI-LRP deallocates the channel on entry to TIME_WAIT so that NI
           channel slots scale to busy servers (section 4.2). *)
        if t.cfg.arch = Ni_lrp then
          match conn.Tcp.remote with
          | Some (rip, rport) ->
              Chantab.remove_tcp t.chantab ~src:rip ~src_port:rport
                ~dst_port:conn.Tcp.local_port;
              let stale =
                Lrp_det.Det.fold_sorted
                  (fun chid c acc ->
                    if c.Tcp.id = conn.Tcp.id then chid :: acc else acc)
                  t.chan_conn []
              in
              List.iter (Hashtbl.remove t.chan_conn) stale;
              List.iter (drop_channel t) stale
          | None -> ());
    on_closed =
      (fun conn ->
        deregister_conn t conn;
        Hashtbl.remove t.conn_owner conn.Tcp.id;
        match sock_of_conn t conn with
        | Some s ->
            wake_all t s.Socket.send_wait;
            wake_all t s.Socket.recv_wait
        | None -> ());
    mss = t.cfg.mss;
    time_wait_duration = t.cfg.time_wait;
    initial_rto = t.cfg.initial_rto;
    max_syn_retries = t.cfg.max_syn_retries }

(* ------------------------------------------------------------------ *)
(* Shared delivery helpers                                              *)
(* ------------------------------------------------------------------ *)

let datagram_of ?(mh = Mbuf.no_handle) (pkt : Packet.t) =
  match pkt.Packet.body with
  | Packet.Udp (u, payload) ->
      { Socket.dg_payload = payload;
        dg_from = (pkt.Packet.ip.Packet.src, u.Packet.usrc_port);
        dg_pkt = pkt.Packet.ip.Packet.ident;
        dg_mbuf = mh }
  | Packet.Tcp _ | Packet.Icmp _ | Packet.Fragment _ ->
      invalid_arg "datagram_of: not a UDP datagram"

(* Deposit a fully-processed UDP datagram on its socket queue and wake a
   receiver.  Shared by the BSD softint path, the Early-Demux softint path
   and the LRP helper thread. *)
(* Connected-UDP semantics: a socket with a default peer only accepts
   datagrams from that peer. *)
let peer_accepts t (sock : Socket.t) (dg : Socket.udp_datagram) =
  match sock.Socket.remote with
  | Some peer when peer <> dg.Socket.dg_from ->
      t.stats.rx_wrong_peer <- t.stats.rx_wrong_peer + 1;
      false
  | Some _ | None -> true

(* Trace the terminal outcome of a deposit attempt. *)
let trace_deposit t (sock : Socket.t) (dg : Socket.udp_datagram) ok =
  if ok then
    Trace.sock_enqueue t.tracer ~pkt:dg.Socket.dg_pkt ~sock:sock.Socket.id
  else Trace.sock_drop t.tracer ~pkt:dg.Socket.dg_pkt ~sock:sock.Socket.id

let deposit_and_wake t sock dg =
  if peer_accepts t sock dg then begin
    let ok = Socket.deposit_udp sock dg in
    trace_deposit t sock dg ok;
    if ok then begin
      t.stats.udp_delivered <- t.stats.udp_delivered + 1;
      wake_one t sock.Socket.recv_wait
    end
  end

let deliver_udp_ready ?(mh = Mbuf.no_handle) t (pkt : Packet.t) =
  if not (csum_ok t pkt) then free_rx_pkt t ~mh (Packet.wire_bytes pkt)
  else
  match pkt.Packet.body with
  | Packet.Udp (u, _) ->
      if Packet.is_multicast pkt then begin
        (* One copy per member socket of the group (section 3.1).  Under
           the mbuf-based kernels the original chain is released and a
           duplicate is allocated per deposited copy, so each receiver's
           copyout frees exactly one chain. *)
        free_rx_pkt t ~mh (Packet.wire_bytes pkt);
        match Hashtbl.find_opt t.mcast_members u.Packet.udst_port with
        | None -> t.stats.no_port_drops <- t.stats.no_port_drops + 1
        | Some members ->
            List.iter
              (fun sock ->
                let dg = datagram_of pkt in
                if peer_accepts t sock dg then begin
                  let dup_h =
                    match t.cfg.arch with
                    | Bsd | Early_demux | Napi | Napi_gro | Rss ->
                        Mbuf.alloc_h t.mbufs ~bytes:(Packet.wire_bytes pkt)
                    | Soft_lrp | Ni_lrp -> Mbuf.no_handle
                  in
                  let dup_ok =
                    match t.cfg.arch with
                    | Bsd | Early_demux | Napi | Napi_gro | Rss -> dup_h >= 0
                    | Soft_lrp | Ni_lrp -> true
                  in
                  if dup_ok then begin
                    let dg = { dg with Socket.dg_mbuf = dup_h } in
                    let ok = Socket.deposit_udp sock dg in
                    trace_deposit t sock dg ok;
                    if ok then begin
                      t.stats.udp_delivered <- t.stats.udp_delivered + 1;
                      wake_one t sock.Socket.recv_wait
                    end
                    else free_rx_pkt t ~mh:dup_h (Packet.wire_bytes pkt)
                  end
                  else begin
                    t.stats.mbuf_drops <- t.stats.mbuf_drops + 1;
                    Trace.mbuf_drop t.tracer ~pkt:pkt.Packet.ip.Packet.ident
                  end
                end)
              !members
      end
      else
        (match Hashtbl.find_opt t.udp_ports u.Packet.udst_port with
         | None ->
             t.stats.no_port_drops <- t.stats.no_port_drops + 1;
             free_rx_pkt t ~mh (Packet.wire_bytes pkt)
         | Some sock ->
             let dg = datagram_of ~mh pkt in
             if not (peer_accepts t sock dg) then
               free_rx_pkt t ~mh (Packet.wire_bytes pkt)
             else begin
               let ok = Socket.deposit_udp sock dg in
               trace_deposit t sock dg ok;
               if ok then begin
                 t.stats.udp_delivered <- t.stats.udp_delivered + 1;
                 wake_one t sock.Socket.recv_wait
               end
               else
                 (* Socket queue overflow: the BSD drop point. *)
                 free_rx_pkt t ~mh (Packet.wire_bytes pkt)
             end)
  | Packet.Tcp _ | Packet.Icmp _ | Packet.Fragment _ -> ()

let icmp_reply t (pkt : Packet.t) =
  if not (csum_ok t pkt) then ()
  else
  match pkt.Packet.body with
  | Packet.Icmp (Packet.Echo_request, payload) ->
      ip_output t
        (Packet.icmp ~src:t.ip_addr ~dst:pkt.Packet.ip.Packet.src
           Packet.Echo_reply payload)
  | Packet.Icmp _ | Packet.Udp _ | Packet.Tcp _ | Packet.Fragment _ -> ()

let deliver_tcp t (pkt : Packet.t) ~ctx =
  match Packet.ports pkt with
  | None -> ()
  | Some (sport, dport) ->
      (match Hashtbl.find_opt t.tcp_conns (pkt.Packet.ip.Packet.src, sport, dport) with
       | Some conn -> tcp_deliver t conn pkt ~ctx
       | None ->
           (match Hashtbl.find_opt t.tcp_listeners dport with
            | Some listener -> tcp_deliver t listener pkt ~ctx
            | None ->
                (* Don't answer garbage with a RST. *)
                if csum_ok t pkt then begin
                  t.stats.rsts_sent <- t.stats.rsts_sent + 1;
                  Tcp.send_rst_for pkt ~emit:(fun p -> ip_output t p)
                end))

(* Transport-level processing of a complete (reassembled) datagram; runs in
   softint context under BSD / Early-Demux. *)
let bsd_transport_input ?(mh = Mbuf.no_handle) t (pkt : Packet.t) =
  match pkt.Packet.body with
  | Packet.Udp _ ->
      Trace.proto_deliver t.tracer ~pkt:pkt.Packet.ip.Packet.ident ~conn:(-1)
        ~in_proc:false;
      deliver_udp_ready ~mh t pkt
  | Packet.Tcp _ ->
      free_rx_pkt t ~mh (Packet.wire_bytes pkt);
      deliver_tcp t pkt ~ctx:`Soft
  | Packet.Icmp _ ->
      free_rx_pkt t ~mh (Packet.wire_bytes pkt);
      icmp_reply t pkt
  | Packet.Fragment _ -> assert false

(* Cost of eager transport processing for a complete datagram. *)
let transport_cost t (pkt : Packet.t) ~skip_pcb =
  let pcb = if skip_pcb then 0. else t.c.Cost.pcb_lookup in
  let base =
    match pkt.Packet.body with
    | Packet.Udp _ -> t.c.Cost.udp_in +. pcb
    | Packet.Tcp _ -> t.c.Cost.tcp_in +. pcb
    | Packet.Icmp _ -> t.c.Cost.udp_in
    | Packet.Fragment _ -> 0.
  in
  t.c.Cost.eager_penalty *. base

(* ------------------------------------------------------------------ *)
(* BSD receive path                                                     *)
(* ------------------------------------------------------------------ *)

let bsd_soft_cost t (pkt : Packet.t) =
  if not (is_local_addr t (Packet.dst pkt)) && not (Packet.is_multicast pkt)
  then
    (* Transit packet: IP forwarding (or discard) in softint context. *)
    t.c.Cost.soft_dispatch +. t.c.Cost.ipq_op
    +. (t.c.Cost.eager_penalty *. (t.c.Cost.ip_in +. t.c.Cost.ip_forward))
  else
  let frag_extra =
    if Packet.is_fragment pkt then t.c.Cost.eager_penalty *. t.c.Cost.reasm_per_frag
    else 0.
  in
  let transport =
    if Packet.is_fragment pkt then 0.
    else transport_cost t pkt ~skip_pcb:false
  in
  t.c.Cost.soft_dispatch +. t.c.Cost.ipq_op
  +. (t.c.Cost.eager_penalty *. t.c.Cost.ip_in)
  +. frag_extra +. transport +. t.c.Cost.sockbuf_append

let bsd_softnet ?(mh = Mbuf.no_handle) t pkt () =
  t.ipq_len <- t.ipq_len - 1;
  if not (is_local_addr t (Packet.dst pkt)) && not (Packet.is_multicast pkt)
  then begin
    free_rx_pkt t ~mh (Packet.wire_bytes pkt);
    if t.cfg.forwarding then begin
      t.stats.forwarded <- t.stats.forwarded + 1;
      ip_output t pkt
    end
    else t.stats.fwd_drops <- t.stats.fwd_drops + 1
  end
  else
  match Ip.Reasm.insert t.reasm ~now:(now t) pkt with
  | None -> () (* incomplete datagram; fragments wait in the reassembler *)
  | Some whole ->
      if Packet.is_fragment pkt then
        (* Completion discovered while processing a fragment: the transport
           processing is a separate softint activation.  Fragments arrive
           without a handle ([mh = no_handle]); the whole is freed by
           bytes, as its pieces were allocated. *)
        Cpu.post_soft t.cpu ~label:"ip-reasm-complete"
          ~tpkt:whole.Packet.ip.Packet.ident
          ~cost:(transport_cost t whole ~skip_pcb:false)
          (fun () -> bsd_transport_input t whole)
      else bsd_transport_input ~mh t whole

let bsd_driver_rx t pkt () =
  (* Non-fragment datagrams carry their mbuf reservation as a handle from
     here to the copyout (or drop) site; fragment reservations are
     recounted by bytes because the reassembled whole's footprint differs
     from the sum of its pieces. *)
  let is_frag = Packet.is_fragment pkt in
  let mh =
    if is_frag then Mbuf.no_handle
    else Mbuf.alloc_h t.mbufs ~bytes:(Packet.wire_bytes pkt)
  in
  let alloc_ok =
    if is_frag then Mbuf.alloc t.mbufs ~bytes:(Packet.wire_bytes pkt)
    else mh >= 0
  in
  if not alloc_ok then begin
    t.stats.mbuf_drops <- t.stats.mbuf_drops + 1;
    Trace.mbuf_drop t.tracer ~pkt:pkt.Packet.ip.Packet.ident
  end
  else if t.ipq_len >= t.cfg.ip_queue_limit then begin
    (* The shared IP queue is full: the drop point that couples unrelated
       sockets under BSD (section 2.2). *)
    t.stats.ipq_drops <- t.stats.ipq_drops + 1;
    Trace.ipq_drop t.tracer ~pkt:pkt.Packet.ip.Packet.ident ~qlen:t.ipq_len;
    free_rx_pkt t ~mh (Packet.wire_bytes pkt)
  end
  else begin
    t.ipq_len <- t.ipq_len + 1;
    if t.ipq_len > t.stats.ipq_hwm then t.stats.ipq_hwm <- t.ipq_len;
    Trace.ipq_enqueue t.tracer ~pkt:pkt.Packet.ip.Packet.ident
      ~qlen:t.ipq_len;
    Cpu.post_soft t.cpu ~label:"softnet" ~tpkt:pkt.Packet.ip.Packet.ident
      ~cost:(bsd_soft_cost t pkt) (bsd_softnet ~mh t pkt)
  end

(* ------------------------------------------------------------------ *)
(* NAPI receive path (Napi / Napi_gro / Rss)                            *)
(* ------------------------------------------------------------------ *)

(* RSS steering: hash the packed flow key — the same [hi]/[lo] integer
   packing the Flowtab demux probe uses, so steering allocates nothing
   and performs no structural hashing — onto a queue index.  A pure
   function of packet fields, so queue placement is seed-stable and
   shard-count independent.  Fragments (including the first) steer by IP
   ident so every piece of one datagram lands on the same ring. *)
let rss_steer pkt ~queues =
  let sp, dp =
    if Packet.is_fragment pkt then (pkt.Packet.ip.Packet.ident land 0xffff, 0)
    else
      match Packet.ports pkt with Some (s, d) -> (s, d) | None -> (0, 0)
  in
  let hi = (Packet.src pkt lsl 2) lxor Packet.dst pkt in
  let lo = (sp lsl 16) lor (dp land 0xffff) in
  let h = hi lxor (lo * 0x9E37_79B1) in
  let h = h lxor (h lsr 16) in
  (h land max_int) mod queues

(* Protocol-processing cost of one polled packet: the BSD softint work
   minus the parts the poll loop does not repeat per packet (softirq
   dispatch, shared-IP-queue churn).  The per-packet ring dequeue is
   charged separately ([poll_dequeue]). *)
let napi_proto_cost t pkt =
  bsd_soft_cost t pkt -. t.c.Cost.soft_dispatch -. t.c.Cost.ipq_op

(* One entry of a poll batch: a packet ready for eager protocol
   processing, its mbuf reservation (made at dequeue time, as the driver
   would), and whether it is an IP fragment (fragments stay on byte
   accounting; see [bsd_driver_rx]). *)
type poll_item = { pi_pkt : Packet.t; pi_mh : Mbuf.handle; pi_frag : bool }

(* GRO train cap, the analogue of the 64 kB aggregation limit. *)
let gro_max_segs = 16

(* Pull up to [napi_budget] frames off ring [qi], reserve their mbufs,
   and — under [Napi_gro] — run receive-offload aggregation.  Returns the
   batch in delivery order, the CPU cost of processing it, and the number
   of frames served (the poll loop's "work done" that is compared against
   the budget). *)
let napi_collect t qi =
  let budget = t.cfg.napi_budget in
  let gro = t.cfg.arch = Napi_gro in
  let items = ref [] (* reversed *) in
  let cost = ref 0. in
  let served = ref 0 in
  let add_item pkt mh frag =
    items := { pi_pkt = pkt; pi_mh = mh; pi_frag = frag } :: !items
  in
  (* Admit one packet the BSD way: reserve its mbufs (drop on pool
     exhaustion) and charge full eager protocol processing. *)
  let admit pkt =
    let frag = Packet.is_fragment pkt in
    let bytes = Packet.wire_bytes pkt in
    let mh = if frag then Mbuf.no_handle else Mbuf.alloc_h t.mbufs ~bytes in
    let ok = if frag then Mbuf.alloc t.mbufs ~bytes else mh >= 0 in
    if not ok then begin
      t.stats.mbuf_drops <- t.stats.mbuf_drops + 1;
      Trace.mbuf_drop t.tracer ~pkt:pkt.Packet.ip.Packet.ident
    end
    else begin
      cost := !cost +. napi_proto_cost t pkt;
      add_item pkt mh frag
    end
  in
  (* The held GRO train: [train_rev] newest-first, [train_head] the first
     segment.  A train never survives the poll round. *)
  let train_rev = ref [] in
  let train_len = ref 0 in
  let train_head = ref Packet.null in
  let train_udp = ref false in
  let train_next_seq = ref 0 in
  (* A segment is TCP-mergeable when aggregation cannot change what the
     shared protocol code would compute: local unicast, checksum already
     verified (GRO runs after hardware checksum validation), carries
     data, and no connection-state flags. *)
  let tcp_mergeable pkt =
    (not (Packet.is_fragment pkt))
    && (not (Packet.is_multicast pkt))
    && is_local_addr t (Packet.dst pkt)
    && Packet.verify pkt
    && (match pkt.Packet.body with
        | Packet.Tcp (h, pl) ->
            Payload.length pl > 0
            && not
                 (h.Packet.flags.Packet.syn || h.Packet.flags.Packet.fin
                || h.Packet.flags.Packet.rst)
        | Packet.Udp _ | Packet.Icmp _ | Packet.Fragment _ -> false)
  in
  let udp_mergeable pkt =
    (not (Packet.is_fragment pkt))
    && (not (Packet.is_multicast pkt))
    && is_local_addr t (Packet.dst pkt)
    && Packet.verify pkt
    && (match pkt.Packet.body with
        | Packet.Udp _ -> true
        | Packet.Tcp _ | Packet.Icmp _ | Packet.Fragment _ -> false)
  in
  let same_flow a b =
    Packet.src a = Packet.src b
    && Packet.dst a = Packet.dst b
    &&
    match a.Packet.body, b.Packet.body with
    | Packet.Tcp (x, _), Packet.Tcp (y, _) ->
        x.Packet.tsrc_port = y.Packet.tsrc_port
        && x.Packet.tdst_port = y.Packet.tdst_port
    | Packet.Udp (x, _), Packet.Udp (y, _) ->
        x.Packet.usrc_port = y.Packet.usrc_port
        && x.Packet.udst_port = y.Packet.udst_port
    | _ -> false
  in
  (* Merge a TCP train into one super-segment: head's ident and seq, last
     segment's ack/window (and PSH), payloads glued, content checksum
     recomputed so the merged segment still verifies. *)
  let merge_train ps =
    let head = List.hd ps in
    let last = List.nth ps (List.length ps - 1) in
    match head.Packet.body, last.Packet.body with
    | Packet.Tcp (th, _), Packet.Tcp (tl, _) ->
        let payload =
          Payload.concat
            (List.map
               (fun p ->
                 match p.Packet.body with
                 | Packet.Tcp (_, pl) -> pl
                 | _ -> assert false)
               ps)
        in
        let hdr =
          { th with
            Packet.ack_no = tl.Packet.ack_no;
            window = tl.Packet.window;
            flags =
              { th.Packet.flags with Packet.psh = tl.Packet.flags.Packet.psh } }
        in
        let merged =
          { Packet.ip = head.Packet.ip; body = Packet.Tcp (hdr, payload) }
        in
        { merged with
          Packet.ip =
            { merged.Packet.ip with Packet.csum = Packet.checksum merged } }
    | _ -> assert false
  in
  let flush () =
    (match List.rev !train_rev with
     | [] -> ()
     | [ p ] -> admit p
     | head :: rest as ps ->
         let hid = head.Packet.ip.Packet.ident in
         List.iter
           (fun p ->
             Trace.gro_merge t.tracer ~pkt:p.Packet.ip.Packet.ident ~into:hid)
           rest;
         if !train_udp then begin
           (* UDP receive offload (fraglist-style): the train shares one
              IP/UDP protocol pass; each datagram is still deposited
              individually.  The head pays full cost; absorbed datagrams
              pay merge + deposit. *)
           admit head;
           List.iter
             (fun p ->
               let bytes = Packet.wire_bytes p in
               let mh = Mbuf.alloc_h t.mbufs ~bytes in
               if mh < 0 then begin
                 t.stats.mbuf_drops <- t.stats.mbuf_drops + 1;
                 Trace.mbuf_drop t.tracer ~pkt:p.Packet.ip.Packet.ident
               end
               else begin
                 cost :=
                   !cost +. t.c.Cost.gro_merge +. t.c.Cost.sockbuf_append;
                 add_item p mh false
               end)
             rest
         end
         else begin
           (* TCP: one merged super-segment enters protocol processing;
              its wire footprint differs from any single reservation, so
              it stays on byte accounting. *)
           let merged = merge_train ps in
           let bytes = Packet.wire_bytes merged in
           if not (Mbuf.alloc t.mbufs ~bytes) then begin
             t.stats.mbuf_drops <- t.stats.mbuf_drops + 1;
             Trace.mbuf_drop t.tracer ~pkt:hid
           end
           else begin
             cost :=
               !cost +. napi_proto_cost t merged
               +. (float_of_int (List.length rest) *. t.c.Cost.gro_merge);
             add_item merged Mbuf.no_handle false
           end
         end;
         Trace.gro_flush t.tracer ~pkt:hid ~segs:!train_len);
    train_rev := [];
    train_len := 0;
    train_head := Packet.null
  in
  let rec consider pkt =
    if !train_len = 0 then begin
      if tcp_mergeable pkt then begin
        train_rev := [ pkt ];
        train_len := 1;
        train_head := pkt;
        train_udp := false;
        match pkt.Packet.body with
        | Packet.Tcp (h, pl) ->
            train_next_seq := h.Packet.seq + Payload.length pl;
            if h.Packet.flags.Packet.psh then flush ()
        | _ -> ()
      end
      else if udp_mergeable pkt then begin
        train_rev := [ pkt ];
        train_len := 1;
        train_head := pkt;
        train_udp := true
      end
      else admit pkt
    end
    else if !train_udp then begin
      if udp_mergeable pkt && same_flow !train_head pkt then begin
        train_rev := pkt :: !train_rev;
        incr train_len;
        if !train_len >= gro_max_segs then flush ()
      end
      else begin
        flush ();
        consider pkt
      end
    end
    else if
      tcp_mergeable pkt
      && same_flow !train_head pkt
      && (match pkt.Packet.body with
          | Packet.Tcp (h, _) -> h.Packet.seq = !train_next_seq
          | _ -> false)
    then begin
      train_rev := pkt :: !train_rev;
      incr train_len;
      match pkt.Packet.body with
      | Packet.Tcp (h, pl) ->
          train_next_seq := h.Packet.seq + Payload.length pl;
          (* PSH marks an application-visible boundary: merge, then
             flush, as Linux GRO does. *)
          if h.Packet.flags.Packet.psh || !train_len >= gro_max_segs then
            flush ()
      | _ -> ()
    end
    else begin
      flush ();
      consider pkt
    end
  in
  let rec loop k =
    if k < budget then begin
      let pkt = Nic.rxq_pop t.nic qi in
      if pkt != Packet.null then begin
        incr served;
        cost := !cost +. t.c.Cost.poll_dequeue;
        if gro then consider pkt else admit pkt;
        loop (k + 1)
      end
    end
  in
  loop 0;
  if gro then flush ();
  (List.rev !items, !cost, !served)

(* Deliver one polled item: the same terminal processing as the BSD
   softint path, minus the shared IP queue. *)
let napi_deliver t { pi_pkt = pkt; pi_mh = mh; pi_frag = frag } =
  if not (is_local_addr t (Packet.dst pkt)) && not (Packet.is_multicast pkt)
  then begin
    free_rx_pkt t ~mh (Packet.wire_bytes pkt);
    if t.cfg.forwarding then begin
      t.stats.forwarded <- t.stats.forwarded + 1;
      ip_output t pkt
    end
    else t.stats.fwd_drops <- t.stats.fwd_drops + 1
  end
  else
    match Ip.Reasm.insert t.reasm ~now:(now t) pkt with
    | None -> () (* incomplete datagram; fragments wait in the reassembler *)
    | Some whole ->
        if frag then
          (* Completion discovered while processing a fragment: transport
             processing is a separate softint activation, as under BSD. *)
          Cpu.post_soft t.cpu ~label:"ip-reasm-complete"
            ~tpkt:whole.Packet.ip.Packet.ident
            ~cost:(transport_cost t whole ~skip_pcb:false)
            (fun () -> bsd_transport_input t whole)
        else bsd_transport_input ~mh t whole

(* The softirq poll chain.  Each round is two softirq work items: a fixed
   [poll_loop] charge whose action dequeues the batch (so the batch
   reflects the ring at dequeue time), then a batch-sized charge whose
   action runs protocol processing and decides how to continue:

   - ring empty -> this polling episode is over: unmask the interrupt
     (frames that slipped in while masked re-raise it immediately; the
     re-enable race is closed in the NIC);
   - episode served >= budget with backlog -> the softirq level has done
     its fair quantum of work: hand polling to ksoftirqd;
   - otherwise -> another softirq round.

   Unmasking only on a {e truly} empty ring is what prevents the
   interrupt storm: a "served < budget" test would re-enable while
   arrivals during delivery still sit in the ring, and sustained load
   would then be serviced entirely at interrupt priority. *)
let rec napi_post_poll t n =
  Cpu.post_soft t.cpu ~label:"napi-poll" ~poll:true ~cost:t.c.Cost.poll_loop
    (fun () -> napi_softirq_round t n)

and napi_softirq_round t n =
  Trace.poll_begin t.tracer ~q:n.nq ~pending:(Nic.rxq_len t.nic n.nq);
  let batch, cost, served = napi_collect t n.nq in
  Cpu.post_soft t.cpu ~label:"napi-poll" ~poll:true ~cost (fun () ->
      List.iter (napi_deliver t) batch;
      Trace.poll_end t.tracer ~q:n.nq ~served;
      n.episode <- n.episode + served;
      n.last_poll <- Engine.now t.engine;
      if n.episode >= t.cfg.napi_budget then begin
        n.in_ksoftirqd <- true;
        wake_one t n.ksoftirqd_wq
      end
      else if Nic.rxq_len t.nic n.nq = 0 then begin
        (* Ring drained with budget to spare: unmask.  [episode] is kept —
           if the next kick lands within [napi_storm_gap] it continues
           this episode, so a sustained flood still reaches the budget
           and defers to ksoftirqd. *)
        n.poll_on <- false;
        Nic.rxq_enable_intr t.nic n.nq
      end
      else napi_post_poll t n)

(* The mitigated interrupt: ack, mask the queue, schedule the poll —
   constant cost, no per-packet work (the NAPI contract). *)
let napi_kick t qi =
  Cpu.post_hard t.cpu ~label:"napi-irq" ~cost:t.c.Cost.napi_irq (fun () ->
      Nic.rxq_disable_intr t.nic qi;
      let n = t.napi.(qi) in
      if not n.poll_on then begin
        n.poll_on <- true;
        (* A quiet spell since the last poll round ends the episode; a
           kick inside the storm gap continues it (and its budget). *)
        if Engine.now t.engine -. n.last_poll > napi_storm_gap then
          n.episode <- 0;
        napi_post_poll t n
      end)

(* Process-context polling: once a softirq chain defers, the queue's
   ksoftirqd repolls under the fair scheduler — poll cycles now compete
   with application processes instead of preempting them, and the ledger
   attributes them to {!Ledger.Poll} via {!Cpu.compute_poll}.

   An empty ring does not immediately end the hand-off: the interrupt
   stays masked and the next poll is deferred by half the storm gap
   (Linux's [napi_defer_hard_irqs]/[gro_flush_timeout] IRQ deferral).
   Without the grace poll, a flood whose interarrival time exceeds one
   poll cycle would momentarily drain the ring, bounce straight back to
   interrupt mode, and re-earn the deferral 64 packets later — spending
   most of its life back at softirq priority. *)
let ksoftirqd_loop t n =
  let rec wait () =
    if not n.in_ksoftirqd then begin
      Proc.block n.ksoftirqd_wq;
      wait ()
    end
    else poll 0

  and poll quiet =
    Trace.poll_begin t.tracer ~q:n.nq ~pending:(Nic.rxq_len t.nic n.nq);
    Cpu.compute_poll t.cpu t.c.Cost.poll_loop;
    let batch, cost, served = napi_collect t n.nq in
    Cpu.compute_poll t.cpu cost;
    List.iter (napi_deliver t) batch;
    Trace.poll_end t.tracer ~q:n.nq ~served;
    if served > 0 || Nic.rxq_len t.nic n.nq > 0 then poll 0
    else if quiet >= 1 then begin
      (* Two consecutive quiet polls: back to interrupt mode. *)
      n.in_ksoftirqd <- false;
      n.poll_on <- false;
      n.episode <- 0;
      Nic.rxq_enable_intr t.nic n.nq;
      wait ()
    end
    else begin
      (* IRQ deferral: hold the interrupt masked, sleep [napi_repoll],
         grace poll.  Only this timer targets the waitq while
         [in_ksoftirqd] is set, so the wake below cannot be stolen. *)
      napi_grace_rearm t n;
      Proc.block n.ksoftirqd_wq;
      poll (quiet + 1)
    end
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* LRP receive path (shared by SOFT-LRP and NI-LRP)                     *)
(* ------------------------------------------------------------------ *)

(* Wake a consumer from NI context.  Under soft demux we are already in a
   hardware interrupt, so the wake is immediate; under NI demux the NI must
   raise a (cheap) host interrupt to do it. *)
let ni_wake t f =
  match t.cfg.arch with
  | Ni_lrp -> Cpu.post_hard t.cpu ~label:"ni-intr" ~cost:t.c.Cost.ni_wakeup_intr f
  | Soft_lrp | Bsd | Early_demux | Napi | Napi_gro | Rss -> f ()

let lrp_classify_rx t pkt =
  if not (is_local_addr t (Packet.dst pkt)) && not (Packet.is_multicast pkt)
  then begin
    (* Transit packet: demultiplexed straight onto the IP-forwarding
       daemon's channel (section 3.5), or discarded if this host is not a
       gateway. *)
    if t.cfg.forwarding then begin
      if Channel.enqueue_code (Chantab.fwd_channel t.chantab) pkt
         = Channel.queued_was_empty
      then ni_wake t (fun () -> wake_one t t.fwd_wq)
    end
    else t.stats.fwd_drops <- t.stats.fwd_drops + 1
  end
  else
  (* Classification runs without materialising the [Demux.flow] variant:
     [resolve_slot] does the packed-key probe straight off the packet
     fields and answers with an int slot code, and the
     constant-constructor class drives the wake logic — the whole demux
     decision allocates nothing. *)
  let cls = Demux.class_of_packet pkt in
  let slot = Chantab.resolve_slot t.chantab pkt in
  if slot = Chantab.slot_none then begin
      Trace.demux t.tracer ~pkt:pkt.Packet.ip.Packet.ident ~chan:(-1)
        ~flow:(Demux.flow_id_of_packet pkt);
      (match cls with
       | Demux.Tcp_class ->
           (* No endpoint: the protocol-proxy daemon answers with an RST on
              its own time (section 3.5). *)
           if Channel.enqueue_code (Chantab.icmp_channel t.chantab) pkt
              = Channel.queued_was_empty
              && t.cfg.udp_helper
           then ni_wake t (fun () -> wake_one t t.helper_wq)
       | Demux.Udp_class | Demux.Frag_class | Demux.Icmp_class ->
           t.stats.demux_drops <- t.stats.demux_drops + 1)
  end
  else
      let ch = Chantab.channel_of_slot t.chantab slot in
      Trace.demux t.tracer ~pkt:pkt.Packet.ip.Packet.ident
        ~chan:(Channel.id ch) ~flow:(Demux.flow_id_of_packet pkt);
      let code = Channel.enqueue_code ch pkt in
      (if code = Channel.discarded_code then
         (* Early packet discard, counted per channel. *)
         Trace.early_discard t.tracer ~pkt:pkt.Packet.ip.Packet.ident
           ~chan:(Channel.id ch)
       else
         let was_empty = code = Channel.queued_was_empty in
         (match cls with
            | Demux.Udp_class ->
                let dst_port_of_flow = Demux.udp_dst_port_of_packet pkt in
                if Channel.interrupt_requested ch then begin
                  Channel.clear_interrupt_request ch;
                  match Hashtbl.find_opt t.mcast_members dst_port_of_flow with
                  | Some members ->
                      ni_wake t (fun () ->
                          List.iter
                            (fun (m : Socket.t) ->
                              wake_one t m.Socket.recv_wait)
                            !members)
                  | None ->
                      (match Hashtbl.find_opt t.chan_sock (Channel.id ch) with
                       | Some sock ->
                           ni_wake t (fun () ->
                               wake_one t sock.Socket.recv_wait)
                       | None -> ())
                end
                else if t.cfg.udp_helper && was_empty then
                  (* Nobody is waiting: let the minimal-priority protocol
                     thread pick it up if the CPU is otherwise idle
                     (section 3.3). *)
                  ni_wake t (fun () -> wake_one t t.helper_wq)
            | Demux.Tcp_class ->
                trc t "rx tcp chan %d len=%d trans=%s" (Channel.id ch)
                  (Channel.length ch)
                  (if was_empty then "empty" else "ne");
                (* The APP thread drains until empty, so only the
                   empty-to-non-empty transition needs a notification —
                   under NI demux that keeps host interrupts rare. *)
                if was_empty then
                  (match Hashtbl.find_opt t.chan_conn (Channel.id ch) with
                   | Some conn -> ni_wake t (fun () -> app_post_chan t conn ch)
                   | None -> trc t "rx tcp chan %d: NO CONN" (Channel.id ch))
            | Demux.Frag_class ->
                (* Fragments needing reassembly: the helper integrates them
                   if no receiver does it lazily first. *)
                if t.cfg.udp_helper && was_empty then
                  ni_wake t (fun () -> wake_one t t.helper_wq)
            | Demux.Icmp_class ->
                if t.cfg.udp_helper && was_empty then
                  ni_wake t (fun () -> wake_one t t.helper_wq)))

(* ------------------------------------------------------------------ *)
(* Early-Demux receive path                                             *)
(* ------------------------------------------------------------------ *)

let edemux_rx t pkt () =
  if not (is_local_addr t (Packet.dst pkt)) && not (Packet.is_multicast pkt)
  then begin
    if t.cfg.forwarding then
      Cpu.post_soft t.cpu ~label:"ip-forward"
        ~cost:(t.c.Cost.soft_dispatch
               +. (t.c.Cost.eager_penalty
                   *. (t.c.Cost.ip_in +. t.c.Cost.ip_forward)))
        (fun () ->
          t.stats.forwarded <- t.stats.forwarded + 1;
          ip_output t pkt)
    else t.stats.fwd_drops <- t.stats.fwd_drops + 1
  end
  else
  let flow = Demux.flow_of_packet pkt in
  Trace.demux t.tracer ~pkt:pkt.Packet.ip.Packet.ident ~chan:(-1)
    ~flow:(Demux.flow_id flow);
  let drop () =
    t.stats.edemux_early_drops <- t.stats.edemux_early_drops + 1;
    Trace.early_discard t.tracer ~pkt:pkt.Packet.ip.Packet.ident ~chan:(-1)
  in
  let eager_process ~skip_pcb =
    let frag_extra =
      if Packet.is_fragment pkt then
        t.c.Cost.eager_penalty *. t.c.Cost.reasm_per_frag
      else 0.
    in
    let transport =
      if Packet.is_fragment pkt then 0. else transport_cost t pkt ~skip_pcb
    in
    let cost =
      t.c.Cost.soft_dispatch
      +. (t.c.Cost.eager_penalty *. t.c.Cost.ip_in)
      +. frag_extra +. transport +. t.c.Cost.sockbuf_append
    in
    let is_frag = Packet.is_fragment pkt in
    let mh =
      if is_frag then Mbuf.no_handle
      else Mbuf.alloc_h t.mbufs ~bytes:(Packet.wire_bytes pkt)
    in
    let alloc_ok =
      if is_frag then Mbuf.alloc t.mbufs ~bytes:(Packet.wire_bytes pkt)
      else mh >= 0
    in
    if not alloc_ok then begin
      t.stats.mbuf_drops <- t.stats.mbuf_drops + 1;
      Trace.mbuf_drop t.tracer ~pkt:pkt.Packet.ip.Packet.ident
    end
    else
      Cpu.post_soft t.cpu ~label:"softnet" ~tpkt:pkt.Packet.ip.Packet.ident
        ~cost (fun () ->
          match Ip.Reasm.insert t.reasm ~now:(now t) pkt with
          | None -> ()
          | Some whole ->
              if is_frag then
                Cpu.post_soft t.cpu ~label:"ip-reasm-complete"
                  ~tpkt:whole.Packet.ip.Packet.ident
                  ~cost:(transport_cost t whole ~skip_pcb)
                  (fun () -> bsd_transport_input t whole)
              else bsd_transport_input ~mh t whole)
  in
  match flow with
  | Demux.Udp_flow { dst_port; _ } ->
      (match Hashtbl.find_opt t.udp_ports dst_port with
       | None -> drop ()
       | Some sock ->
           (* Early discard on a full receiver queue — but processing stays
              eager. *)
           if Queue.length sock.Socket.udp_rcv >= sock.Socket.udp_rcv_limit
           then drop ()
           else eager_process ~skip_pcb:true)
  | Demux.Tcp_flow { src; src_port; dst_port; syn_only } ->
      (match Hashtbl.find_opt t.tcp_conns (src, src_port, dst_port) with
       | Some conn ->
           if conn.Tcp.rcvq_bytes >= conn.Tcp.rcv_buf_limit then drop ()
           else eager_process ~skip_pcb:true
       | None ->
           if syn_only then
             match Hashtbl.find_opt t.tcp_listeners dst_port with
             | Some l ->
                 if l.Tcp.syn_pending + Queue.length l.Tcp.accept_queue
                    >= l.Tcp.backlog
                 then drop ()
                 else eager_process ~skip_pcb:true
             | None ->
                 (* No endpoint: process eagerly so TCP answers with an
                    RST, as the BSD code this kernel is derived from does. *)
                 eager_process ~skip_pcb:true
           else eager_process ~skip_pcb:true)
  | Demux.Frag_flow _ -> eager_process ~skip_pcb:true
  | Demux.Icmp_flow -> eager_process ~skip_pcb:true
  | Demux.Other_flow _ -> drop ()

(* ------------------------------------------------------------------ *)
(* NIC receive dispatch                                                 *)
(* ------------------------------------------------------------------ *)

let rx_dispatch t pkt =
  t.stats.rx_frames <- t.stats.rx_frames + 1;
  match t.cfg.arch with
  | Bsd ->
      Cpu.post_hard t.cpu ~label:"rx-intr" ~tpkt:pkt.Packet.ip.Packet.ident
        ~cost:(t.c.Cost.hard_rx +. t.c.Cost.ipq_op)
        (bsd_driver_rx t pkt)
  | Soft_lrp ->
      (* Soft demux: classification runs in the hardware interrupt. *)
      Cpu.post_hard t.cpu ~label:"rx-demux" ~tpkt:pkt.Packet.ip.Packet.ident
        ~cost:(t.c.Cost.hard_rx +. t.c.Cost.demux)
        (fun () -> lrp_classify_rx t pkt)
  | Ni_lrp ->
      (* NI demux: classification runs on the interface's embedded
         processor — zero host CPU. *)
      lrp_classify_rx t pkt
  | Early_demux ->
      Cpu.post_hard t.cpu ~label:"rx-demux" ~tpkt:pkt.Packet.ip.Packet.ident
        ~cost:(t.c.Cost.hard_rx +. t.c.Cost.demux)
        (edemux_rx t pkt)
  | Napi | Napi_gro | Rss ->
      (* Only non-queued interfaces reach this handler (the primary NIC
         runs in queued-RX mode and hands frames to the poll loop without
         going through it); secondary interfaces of a multi-homed host
         fall back to the eager BSD path. *)
      Cpu.post_hard t.cpu ~label:"rx-intr" ~tpkt:pkt.Packet.ip.Packet.ident
        ~cost:(t.c.Cost.hard_rx +. t.c.Cost.ipq_op)
        (bsd_driver_rx t pkt)

(* ------------------------------------------------------------------ *)
(* Lazy UDP protocol processing (LRP receive path, section 3.3)         *)
(* ------------------------------------------------------------------ *)

(* Pull any queued fragments for pending reassemblies out of the special
   fragment channel and integrate them.  Completions are delivered to their
   socket queues.  Runs in process context; the caller charges per-fragment
   cost through [charge]. *)
let drain_frag_channel t ~charge =
  let frag_ch = Chantab.frag_channel t.chantab in
  let frags = Channel.extract frag_ch (fun _ -> true) in
  List.fold_left
    (fun completed pkt ->
      charge (t.c.Cost.reasm_per_frag +. t.c.Cost.ip_in);
      match Ip.Reasm.insert t.reasm ~now:(now t) pkt with
      | None -> completed
      | Some whole -> whole :: completed)
    [] frags

(* Process one raw packet taken from a UDP channel, in the current process
   context.  Returns completed datagrams (usually one; fragments may
   complete zero or several including via the fragment channel). *)
let lrp_process_udp_raw t ~charge pkt =
  (* Lazy protocol processing starts here, in the receiver's own context;
     the deposit that follows the charges closes the proc-proto stage. *)
  Trace.proto_deliver t.tracer ~pkt:pkt.Packet.ip.Packet.ident ~conn:(-1)
    ~in_proc:true;
  (* Channel buffer management, plus the NI-memory access under NI
     demux. *)
  charge
    (t.c.Cost.sockq
     +. (match t.cfg.arch with
         | Ni_lrp -> t.c.Cost.ni_channel_access
         | Bsd | Soft_lrp | Early_demux | Napi | Napi_gro | Rss -> 0.));
  charge
    (t.c.Cost.lazy_locality
     *. (t.c.Cost.ip_in
         +. if Packet.is_fragment pkt then t.c.Cost.reasm_per_frag else 0.));
  match Ip.Reasm.insert t.reasm ~now:(now t) pkt with
  | Some whole ->
      charge (t.c.Cost.lazy_locality *. t.c.Cost.udp_in);
      [ whole ]
  | None ->
      (* Missing fragments: check the special fragment channel
         (section 3.2). *)
      let completed = drain_frag_channel t ~charge in
      List.iter (fun _ -> charge (t.c.Cost.lazy_locality *. t.c.Cost.udp_in)) completed;
      completed

(* ------------------------------------------------------------------ *)
(* LRP helper thread (minimal priority, section 3.3)                    *)
(* ------------------------------------------------------------------ *)

(* Receiver-context protocol charge: a {!Proc.compute} whose segment the
   ledger attributes to protocol work on channel [ch] (section 3.3's
   accounting claim made measurable).  Syscall-path callers pass this as
   the [~charge] of {!lrp_process_udp_raw}. *)
let proto_charge t ch d = Cpu.compute_proto t.cpu ~flow:(Channel.id ch) d

let helper_loop t =
  let charge d = Cpu.compute_proto t.cpu d in
  let rec pass () =
    let worked = ref false in
    (* Integrate any stray fragments. *)
    (match drain_frag_channel t ~charge with
     | [] -> ()
     | completed ->
         worked := true;
         List.iter
           (fun whole ->
             Trace.proto_deliver t.tracer ~pkt:whole.Packet.ip.Packet.ident
               ~conn:(-1) ~in_proc:true;
             charge (t.c.Cost.lazy_locality *. t.c.Cost.udp_in);
             deliver_udp_ready t whole)
           completed);
    (* Process one packet from each backlogged UDP channel — but only while
       the destination socket queue has room.  A full socket queue means the
       receiver is not keeping up, and leaving packets in the channel is
       what lets it fill and shed further load at the NI instead of burning
       host CPU on datagrams that would be dropped anyway. *)
    List.iter
      (fun ch ->
        let room =
          match Hashtbl.find_opt t.chan_sock (Channel.id ch) with
          | Some sock ->
              Queue.length sock.Socket.udp_rcv < sock.Socket.udp_rcv_limit
          | None -> false
        in
        if room then begin
          let pkt = Channel.pop ch in
          if pkt != Packet.null then begin
            worked := true;
            let completed =
              lrp_process_udp_raw t ~charge:(proto_charge t ch) pkt
            in
            List.iter (deliver_udp_ready t) completed
          end
        end)
      t.udp_channels;
    (* Protocol-proxy daemon duties: ICMP echo and RSTs for TCP segments
       with no endpoint (section 3.5). *)
    (let pkt = Channel.pop (Chantab.icmp_channel t.chantab) in
     if pkt != Packet.null then begin
       worked := true;
       charge (t.c.Cost.lazy_locality *. (t.c.Cost.ip_in +. t.c.Cost.udp_in));
       match pkt.Packet.body with
       | Packet.Tcp _ ->
           t.stats.rsts_sent <- t.stats.rsts_sent + 1;
           Tcp.send_rst_for pkt ~emit:(fun p -> ip_output t p)
       | Packet.Udp _ | Packet.Icmp _ | Packet.Fragment _ ->
           (match Ip.Reasm.insert t.reasm ~now:(now t) pkt with
            | Some whole -> icmp_reply t whole
            | None -> ())
     end);
    if !worked then pass ()
    else begin
      Proc.block t.helper_wq;
      pass ()
    end
  in
  pass ()

(* ------------------------------------------------------------------ *)
(* IP-forwarding daemon (section 3.5)                                   *)
(* ------------------------------------------------------------------ *)

(* A proxy daemon owns the forwarding channel: transit packets are charged
   to it, and its scheduling priority bounds the resources the host spends
   on forwarding. *)
let fwd_daemon_loop t =
  let ch = Chantab.fwd_channel t.chantab in
  let rec loop () =
    let pkt = Channel.pop ch in
    if pkt != Packet.null then begin
      Cpu.compute_proto t.cpu ~flow:(Channel.id ch)
        (t.c.Cost.lazy_locality *. (t.c.Cost.ip_in +. t.c.Cost.ip_forward));
      t.stats.forwarded <- t.stats.forwarded + 1;
      ip_output t pkt;
      loop ()
    end
    else begin
      Proc.block t.fwd_wq;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

let create engine fabric ~name ~ip cfg =
  let cpu =
    Cpu.create engine ~ctx_switch_cost:cfg.costs.Cost.ctx_switch ~name ()
  in
  let nic = Fabric.make_nic fabric ~name:(name ^ ".nic") ~ip () in
  let tracer = Trace.create ~name ~now:(Engine.clock engine) () in
  (* Flight recorder: every kernel records into the packed SoA ring, so
     enabling tracing costs no per-event allocation (the timestamp is
     read straight from the engine's clock cell). *)
  Trace.use_packed tracer ~clock:(Engine.clock_cell engine);
  let metrics = Metrics.create () in
  let parena = Parena.create () in
  let t =
    { kname = name; engine; cpu; nic; cfg; c = cfg.costs; ip_addr = ip;
      tracer; metrics;
      ipq_len = 0; mbufs = Mbuf.create ~capacity:cfg.mbuf_capacity ();
      parena;
      interfaces = [];
      udp_ports = Hashtbl.create 64; tcp_conns = Hashtbl.create 256;
      tcp_listeners = Hashtbl.create 16; conn_sock = Hashtbl.create 256;
      conn_owner = Hashtbl.create 256; chantab = Chantab.create ~arena:parena ();
      chan_sock = Hashtbl.create 64; mcast_members = Hashtbl.create 8;
      chan_conn = Hashtbl.create 256;
      conn_chan = Hashtbl.create 256;
      all_channels = []; apps = Hashtbl.create 16;
      helper_wq = Proc.waitq (name ^ ".udp-helper"); helper_proc = None;
      fwd_wq = Proc.waitq (name ^ ".ipfwdd"); fwd_proc = None;
      udp_channels = []; napi = [||]; napi_grace_tgt = None;
      reasm = Ip.Reasm.create ();
      tcp_env = None; timer_tgt = None; rcvto_tgt = None;
      eph_port = 20_000;
      stats =
        { rx_frames = 0; ipq_drops = 0; mbuf_drops = 0; no_port_drops = 0;
          demux_drops = 0; edemux_early_drops = 0; udp_delivered = 0;
          tcp_delivered = 0;
          rx_wrong_peer = 0; forwarded = 0; fwd_drops = 0; rsts_sent = 0;
          csum_drops = 0; ipq_hwm = 0 } }
  in
  t.interfaces <- [ (ip, 24, nic) ];
  t.tcp_env <- Some (make_tcp_env t);
  t.all_channels <-
    [ Chantab.frag_channel t.chantab; Chantab.icmp_channel t.chantab;
      Chantab.fwd_channel t.chantab ];
  Nic.set_rx_handler nic (fun pkt -> rx_dispatch t pkt);
  Cpu.set_tracer cpu tracer;
  Nic.set_tracer nic tracer;
  (* Expose kernel state as pull gauges; components register their own
     instruments under their prefixes.  All callbacks read only this
     kernel's state, so snapshots stay race-free under parallel sweeps. *)
  let g nm f = Metrics.gauge metrics nm (fun () -> float_of_int (f ())) in
  g "kernel.rx_frames" (fun () -> t.stats.rx_frames);
  g "kernel.ipq_drops" (fun () -> t.stats.ipq_drops);
  g "kernel.mbuf_drops" (fun () -> t.stats.mbuf_drops);
  g "kernel.no_port_drops" (fun () -> t.stats.no_port_drops);
  g "kernel.demux_drops" (fun () -> t.stats.demux_drops);
  g "kernel.edemux_early_drops" (fun () -> t.stats.edemux_early_drops);
  g "kernel.udp_delivered" (fun () -> t.stats.udp_delivered);
  g "kernel.tcp_delivered" (fun () -> t.stats.tcp_delivered);
  g "kernel.ipq_hwm" (fun () -> t.stats.ipq_hwm);
  g "kernel.rx_wrong_peer" (fun () -> t.stats.rx_wrong_peer);
  g "kernel.forwarded" (fun () -> t.stats.forwarded);
  g "kernel.fwd_drops" (fun () -> t.stats.fwd_drops);
  g "kernel.rsts_sent" (fun () -> t.stats.rsts_sent);
  g "kernel.csum_drops" (fun () -> t.stats.csum_drops);
  g "kernel.ipq_len" (fun () -> t.ipq_len);
  g "kernel.channels" (fun () -> List.length t.all_channels);
  g "kernel.early_discards" (fun () -> early_discards t);
  List.iter
    (fun key ->
      g ("tcp." ^ key) (fun () ->
          Lrp_det.Det.fold_sorted
            (fun _ conn acc -> acc + List.assoc key (Tcp.counters conn))
            t.tcp_conns 0))
    [ "segs_sent"; "segs_rcvd"; "bytes_sent"; "bytes_rcvd"; "retransmits";
      "syn_drops_backlog" ];
  (* Engine timer-churn counters: how many events were scheduled/fired/
     cancelled-before-fire, how schedules split between wheel buckets and
     the heap, and how many cancelled entries the wheel dropped at pour
     time (each one a heap round-trip avoided). *)
  g "engine.timers_scheduled" (fun () ->
      (Engine.timer_stats engine).Engine.scheduled);
  g "engine.timers_fired" (fun () -> (Engine.timer_stats engine).Engine.fired);
  g "engine.timers_cancelled" (fun () ->
      (Engine.timer_stats engine).Engine.cancelled);
  g "engine.sched_wheel" (fun () ->
      (Engine.timer_stats engine).Engine.routed_wheel);
  g "engine.sched_heap" (fun () ->
      (Engine.timer_stats engine).Engine.routed_heap);
  g "engine.pour_skipped" (fun () ->
      (Engine.timer_stats engine).Engine.pour_skipped);
  Cpu.register_metrics cpu metrics ~prefix:"cpu";
  Nic.register_metrics nic metrics ~prefix:"nic";
  Ip.Reasm.register_metrics t.reasm metrics ~prefix:"reasm";
  (* Periodic reassembly pruning (ip_slowtimo); re-arms its own event. *)
  let slowtimo_ev = ref Engine.none in
  slowtimo_ev :=
    Engine.schedule_after engine ~delay:(Time.sec 5.) (fun () ->
        ignore (Ip.Reasm.prune t.reasm ~now:(now t));
        Engine.reschedule_after engine !slowtimo_ev ~delay:(Time.sec 5.));
  if is_napi cfg.arch then begin
    let queues = max 1 cfg.rx_queues in
    (* [rx_frames] (the overload detector's offered-load numerator) is
       counted in the steer callback: under queued RX the NIC DMAs frames
       straight into its rings and the kernel's dispatch handler never
       sees them. *)
    let steer =
      if queues = 1 then (fun _pkt ->
        t.stats.rx_frames <- t.stats.rx_frames + 1;
        0)
      else (fun pkt ->
        t.stats.rx_frames <- t.stats.rx_frames + 1;
        rss_steer pkt ~queues)
    in
    t.napi <-
      Array.init queues (fun qi ->
          { nq = qi; poll_on = false; episode = 0; last_poll = neg_infinity;
            in_ksoftirqd = false;
            ksoftirqd_wq =
              Proc.waitq (Printf.sprintf "%s.ksoftirqd/%d" name qi);
            ksoftirqd = None });
    Nic.configure_rx_queues nic ~queues ~ring:cfg.rx_ring
      ~coalesce_pkts:cfg.coalesce_pkts ~coalesce_us:cfg.coalesce_us ~steer
      ~kick:(fun qi -> napi_kick t qi);
    Array.iter
      (fun n ->
        let p =
          Cpu.spawn cpu ~name:(Printf.sprintf "%s.ksoftirqd/%d" name n.nq)
            (fun _self -> ksoftirqd_loop t n)
        in
        n.ksoftirqd <- Some p)
      t.napi
  end;
  if lrp_mode t && cfg.udp_helper then begin
    let p =
      Cpu.spawn cpu ~nice:20 ~name:(name ^ ".udp-helper") (fun _self ->
          helper_loop t)
    in
    t.helper_proc <- Some p
  end;
  if lrp_mode t && cfg.forwarding then begin
    let p =
      Cpu.spawn cpu ~nice:cfg.fwd_nice ~name:(name ^ ".ipfwdd") (fun _self ->
          fwd_daemon_loop t)
    in
    t.fwd_proc <- Some p
  end;
  t

(* Allocate an ephemeral port. *)
let fresh_port t =
  let rec try_port () =
    t.eph_port <- (if t.eph_port >= 65_000 then 20_000 else t.eph_port + 1);
    if Hashtbl.mem t.udp_ports t.eph_port
       || Hashtbl.mem t.tcp_listeners t.eph_port
    then try_port ()
    else t.eph_port
  in
  try_port ()


(* [add_interface t fabric ~ip ~masklen] attaches an additional interface
   (multi-homed gateway).  The same receive architecture runs on every
   interface. *)
let add_interface t fabric ~ip ?(masklen = 24) () =
  let nic =
    Fabric.make_nic fabric ~name:(Printf.sprintf "%s.nic%d" t.kname
                                    (List.length t.interfaces)) ~ip ()
  in
  Nic.set_rx_handler nic (fun pkt -> rx_dispatch t pkt);
  Nic.set_tracer nic t.tracer;
  Nic.register_metrics nic t.metrics
    ~prefix:(Printf.sprintf "nic%d" (List.length t.interfaces));
  t.interfaces <- t.interfaces @ [ (ip, masklen, nic) ];
  nic
