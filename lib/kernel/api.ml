(** Socket system calls.

    Every function here runs in simulated process context (inside a
    {!Lrp_sim.Proc} coroutine) and charges CPU through {!Lrp_sim.Proc.compute}.
    This is where the architectural difference on the receive path is most
    visible:

    - under BSD / Early-Demux, [recvfrom] finds fully-processed datagrams on
      the socket queue (deposited by software interrupts) and merely copies
      them out;
    - under LRP, [recvfrom] takes {e raw packets} off the socket's NI
      channel and performs IP and UDP processing right here, in the
      receiving process's context, at its priority, charged to it —
      the "lazy receiver processing" the paper is named after
      (section 3.3). *)

open Lrp_sim
open Lrp_net
open Lrp_proto
open Lrp_core

type dgram = Socket.udp_datagram = {
  dg_payload : Payload.t;
  dg_from : Packet.ip * int;
  dg_pkt : int;
  dg_mbuf : int;
}

exception Socket_closed

let c (k : Kernel.t) = Kernel.costs k

(* Number of IP fragments a datagram of [bytes] payload needs. *)
let frag_count (k : Kernel.t) ~header ~bytes =
  let mtu = (Kernel.config k).Kernel.mtu in
  let total = Packet.ip_header_bytes + header + bytes in
  if total <= mtu then 1
  else
    let cap = (mtu - Packet.ip_header_bytes) / 8 * 8 in
    (header + bytes + cap - 1) / cap

(* ------------------------------------------------------------------ *)
(* Socket lifecycle                                                     *)
(* ------------------------------------------------------------------ *)

let socket_dgram k =
  ignore k;
  Socket.create ~udp_rcv_limit:(Kernel.config k).Kernel.udp_rcv_limit
    Socket.Dgram

let socket_stream k =
  ignore k;
  Socket.create Socket.Stream

(* [bind k sock ~owner ~port] binds a datagram socket to a local port.
   Under LRP this also creates the socket's NI channel (section 3.1). *)
let bind k (sock : Socket.t) ~owner ~port =
  if sock.Socket.kind <> Socket.Dgram then
    invalid_arg "Api.bind: datagram sockets only";
  if Hashtbl.mem k.Kernel.udp_ports port then invalid_arg "Api.bind: port in use";
  if Hashtbl.mem k.Kernel.mcast_members port then
    invalid_arg "Api.bind: port in use by a multicast group";
  sock.Socket.port <- Some port;
  sock.Socket.owner <- owner;
  Hashtbl.replace k.Kernel.udp_ports port sock;
  if Kernel.lrp_mode k then begin
    let ch =
      Channel.create ~arena:k.Kernel.parena
        ~limit:(Kernel.config k).Kernel.channel_limit
        ~name:(Printf.sprintf "udp:%d" port) ()
    in
    Chantab.add_udp (Kernel.chantab k) ~port ch;
    Hashtbl.replace k.Kernel.chan_sock (Channel.id ch) sock;
    sock.Socket.chan <- Some ch;
    k.Kernel.all_channels <- ch :: k.Kernel.all_channels;
    k.Kernel.udp_channels <- ch :: k.Kernel.udp_channels
  end

let bind_ephemeral k sock ~owner =
  let port = Kernel.fresh_port k in
  bind k sock ~owner ~port;
  port

(* [join_group k sock ~owner ~group ~port] subscribes a datagram socket to
   a multicast group.  All members of the group share a single NI channel
   (paper section 3.1); the first joiner creates it. *)
let join_group k (sock : Socket.t) ~owner ~group ~port =
  if not (Packet.is_multicast_addr group) then
    invalid_arg "Api.join_group: not a multicast address";
  if sock.Socket.kind <> Socket.Dgram then
    invalid_arg "Api.join_group: datagram sockets only";
  if Hashtbl.mem k.Kernel.udp_ports port then
    invalid_arg "Api.join_group: port bound by a unicast socket";
  sock.Socket.port <- Some port;
  sock.Socket.owner <- owner;
  let members =
    match Hashtbl.find_opt k.Kernel.mcast_members port with
    | Some m -> m
    | None ->
        let m = ref [] in
        Hashtbl.replace k.Kernel.mcast_members port m;
        if Kernel.lrp_mode k then begin
          (* One shared channel for the whole group. *)
          let ch =
            Channel.create ~arena:k.Kernel.parena
              ~limit:(Kernel.config k).Kernel.channel_limit
              ~name:(Printf.sprintf "udp-mcast:%d" port) ()
          in
          Chantab.add_udp (Kernel.chantab k) ~port ch;
          k.Kernel.all_channels <- ch :: k.Kernel.all_channels;
          k.Kernel.udp_channels <- ch :: k.Kernel.udp_channels
        end;
        m
  in
  members := sock :: !members;
  (* Members read raw packets from the shared channel. *)
  if Kernel.lrp_mode k then begin
    match Chantab.resolve (Kernel.chantab k)
            (Lrp_proto.Demux.Udp_flow { src = 0; src_port = 0; dst_port = port })
    with
    | Some ch -> sock.Socket.chan <- Some ch
    | None -> ()
  end

let leave_group k (sock : Socket.t) ~port =
  match Hashtbl.find_opt k.Kernel.mcast_members port with
  | None -> ()
  | Some members ->
      members := List.filter (fun s -> s.Socket.id <> sock.Socket.id) !members;
      sock.Socket.chan <- None;
      if !members = [] then begin
        Hashtbl.remove k.Kernel.mcast_members port;
        if Kernel.lrp_mode k then begin
          Chantab.remove_udp (Kernel.chantab k) ~port;
          k.Kernel.udp_channels <-
            List.filter
              (fun ch -> Channel.name ch <> Printf.sprintf "udp-mcast:%d" port)
              k.Kernel.udp_channels
        end
      end

(* ------------------------------------------------------------------ *)
(* UDP send                                                             *)
(* ------------------------------------------------------------------ *)

let sendto k ~(self : Proc.t) (sock : Socket.t) ~dst:(dip, dport) payload =
  if sock.Socket.closed then raise Socket_closed;
  let sport =
    match sock.Socket.port with
    | Some p -> p
    | None -> bind_ephemeral k sock ~owner:(Some self)
  in
  let len = Payload.length payload in
  let frags = frag_count k ~header:Packet.udp_header_bytes ~bytes:len in
  Proc.compute
    ((c k).Cost.syscall
     +. ((c k).Cost.copy_per_byte *. float_of_int len)
     +. Kernel.udp_send_cost k ~frags);
  let pkt =
    Packet.udp ~src:(Kernel.ip_address k) ~dst:dip ~src_port:sport
      ~dst_port:dport payload
  in
  sock.Socket.stats.Socket.tx_packets <- sock.Socket.stats.Socket.tx_packets + 1;
  Kernel.ip_output k pkt

let send_dgram k ~self sock payload =
  match sock.Socket.remote with
  | Some dst -> sendto k ~self sock ~dst payload
  | None -> invalid_arg "Api.send_dgram: socket has no default destination"

let udp_connect _k (sock : Socket.t) ~remote = sock.Socket.remote <- Some remote

(* ------------------------------------------------------------------ *)
(* UDP receive                                                          *)
(* ------------------------------------------------------------------ *)

let pop_ready k (sock : Socket.t) =
  match Queue.take_opt sock.Socket.udp_rcv with
  | None -> None
  | Some dg ->
      let len = Payload.length dg.Socket.dg_payload in
      let dequeue_cost =
        (* BSD dequeues from the socket buffer, walking and freeing the
           mbuf chain; LRP's ready queue is a plain channel-style queue. *)
        if Kernel.lrp_mode k then (c k).Cost.sockq
        else (c k).Cost.sockbuf_op +. (c k).Cost.mbuf_free
      in
      Proc.compute
        (dequeue_cost +. ((c k).Cost.copy_per_byte *. float_of_int len));
      (* The copyout frees the mbuf chain: by the handle carried from the
         driver's allocation when the datagram has one, else by its wire
         footprint (non-fragment UDP: IP + UDP headers + payload). *)
      Kernel.free_rx_pkt k ~mh:dg.Socket.dg_mbuf
        (len + Packet.ip_header_bytes + Packet.udp_header_bytes);
      sock.Socket.stats.Socket.rx_delivered <-
        sock.Socket.stats.Socket.rx_delivered + 1;
      Lrp_trace.Trace.syscall_copyout (Kernel.tracer k)
        ~pkt:dg.Socket.dg_pkt ~sock:sock.Socket.id ~bytes:len;
      Some dg

(* [recvfrom k ~self sock] blocks until a datagram is available and returns
   it.  Under LRP, performs the protocol processing lazily here. *)
let recvfrom k ~(self : Proc.t) (sock : Socket.t) =
  ignore self;
  if sock.Socket.kind <> Socket.Dgram then
    invalid_arg "Api.recvfrom: datagram sockets only";
  Proc.compute (c k).Cost.syscall;
  let rec loop () =
    if sock.Socket.closed then raise Socket_closed;
    match pop_ready k sock with
    | Some dg -> dg
    | None ->
        (match sock.Socket.chan with
         | Some ch when Kernel.lrp_mode k ->
             (* LRP: take a raw packet off the NI channel and process it
                now, in our own context. *)
             (let pkt = Channel.pop ch in
              if pkt != Packet.null then begin
                let completed =
                  Kernel.lrp_process_udp_raw k ~charge:(Kernel.proto_charge k ch) pkt
                in
                List.iter (Kernel.deliver_udp_ready k) completed;
                loop ()
              end
              else begin
                Channel.request_interrupt ch;
                Proc.block sock.Socket.recv_wait;
                loop ()
              end)
         | Some _ | None ->
             Proc.block sock.Socket.recv_wait;
             loop ())
  in
  loop ()

(* [recvfrom_timeout k ~self sock ~timeout] is [recvfrom] with a deadline:
   [None] if no datagram arrived in time. *)
let recvfrom_timeout k ~(self : Proc.t) (sock : Socket.t) ~timeout =
  ignore self;
  Proc.compute (c k).Cost.syscall;
  let engine = Kernel.engine k in
  let deadline = Lrp_engine.Engine.now engine +. timeout in
  let expired = ref false in
  (* Typed fast path: the expiry event carries (sock, expired) to a
     per-kernel dispatcher instead of capturing them in a closure. *)
  let timer =
    Lrp_engine.Engine.schedule_to engine ~at:deadline
      (Kernel.recv_timeout_target k) (sock, expired)
  in
  let finish v =
    Lrp_engine.Engine.cancel engine timer;
    v
  in
  let rec loop () =
    if sock.Socket.closed then finish None
    else
      match pop_ready k sock with
      | Some dg -> finish (Some dg)
      | None ->
          if !expired then finish None
          else
            (match sock.Socket.chan with
             | Some ch when Kernel.lrp_mode k ->
                 (let pkt = Lrp_core.Channel.pop ch in
                  if pkt != Packet.null then begin
                    let completed =
                      Kernel.lrp_process_udp_raw k ~charge:(Kernel.proto_charge k ch) pkt
                    in
                    List.iter (Kernel.deliver_udp_ready k) completed;
                    loop ()
                  end
                  else begin
                    Lrp_core.Channel.request_interrupt ch;
                    Proc.block sock.Socket.recv_wait;
                    loop ()
                  end)
             | Some _ | None ->
                 Proc.block sock.Socket.recv_wait;
                 loop ())
  in
  loop ()

(* Non-blocking variant: [None] when nothing is available right now. *)
let try_recvfrom k ~(self : Proc.t) (sock : Socket.t) =
  ignore self;
  Proc.compute (c k).Cost.syscall;
  let rec drain_chan () =
    match sock.Socket.chan with
    | Some ch when Kernel.lrp_mode k ->
        (let pkt = Channel.pop ch in
         if pkt != Packet.null then begin
           let completed =
             Kernel.lrp_process_udp_raw k ~charge:(Kernel.proto_charge k ch) pkt
           in
           List.iter (Kernel.deliver_udp_ready k) completed;
           match pop_ready k sock with
           | Some dg -> Some dg
           | None -> drain_chan ()
         end
         else None)
    | Some _ | None -> None
  in
  match pop_ready k sock with Some dg -> Some dg | None -> drain_chan ()

(* ------------------------------------------------------------------ *)
(* TCP                                                                  *)
(* ------------------------------------------------------------------ *)

let tcp_listen k ~(self : Proc.t) (sock : Socket.t) ~port ~backlog =
  if sock.Socket.kind <> Socket.Stream then
    invalid_arg "Api.tcp_listen: stream sockets only";
  if Hashtbl.mem k.Kernel.tcp_listeners port then
    invalid_arg "Api.tcp_listen: port in use";
  Proc.compute (c k).Cost.syscall;
  let cfg = Kernel.config k in
  let listener =
    Tcp.create_listener (Kernel.tcp_env_exn k) ~local_ip:(Kernel.ip_address k)
      ~local_port:port ~sndq_limit:cfg.Kernel.sock_buf
      ~rcv_buf_limit:cfg.Kernel.sock_buf ~backlog ()
  in
  sock.Socket.port <- Some port;
  sock.Socket.tcp <- Some listener;
  sock.Socket.owner <- Some self;
  Hashtbl.replace k.Kernel.tcp_listeners port listener;
  Hashtbl.replace k.Kernel.conn_sock listener.Tcp.id sock;
  Hashtbl.replace k.Kernel.conn_owner listener.Tcp.id self;
  if Kernel.lrp_mode k then begin
    let ch =
      Channel.create ~arena:k.Kernel.parena ~limit:cfg.Kernel.channel_limit
        ~name:(Printf.sprintf "tcp-listen:%d" port) ()
    in
    Chantab.add_tcp_listen (Kernel.chantab k) ~port ch;
    Hashtbl.replace k.Kernel.chan_conn (Channel.id ch) listener;
    Hashtbl.replace k.Kernel.conn_chan listener.Tcp.id ch;
    k.Kernel.all_channels <- ch :: k.Kernel.all_channels
  end

let listener_exn (sock : Socket.t) =
  match sock.Socket.tcp with
  | Some conn when Tcp.state conn = Tcp.Listen -> conn
  | Some _ | None -> invalid_arg "not a listening socket"

let conn_exn (sock : Socket.t) =
  match sock.Socket.tcp with
  | Some conn -> conn
  | None -> invalid_arg "not a connected stream socket"

(* [tcp_accept k ~self sock] blocks until an established connection is
   available and returns a fresh socket for it, owned by [self]. *)
let tcp_accept k ~(self : Proc.t) (sock : Socket.t) =
  let listener = listener_exn sock in
  Proc.compute (c k).Cost.syscall;
  let rec loop () =
    if sock.Socket.closed then raise Socket_closed;
    match Tcp.accept_pop listener with
    | Some conn ->
        Kernel.update_listen_gate k listener;
        Proc.compute (c k).Cost.sockq;
        let ns = Socket.create Socket.Stream in
        ns.Socket.port <- sock.Socket.port;
        ns.Socket.remote <- conn.Tcp.remote;
        ns.Socket.tcp <- Some conn;
        ns.Socket.owner <- Some self;
        Hashtbl.replace k.Kernel.conn_sock conn.Tcp.id ns;
        Hashtbl.replace k.Kernel.conn_owner conn.Tcp.id self;
        ns
    | None ->
        Proc.block sock.Socket.accept_wait;
        loop ()
  in
  loop ()

(* [tcp_connect k ~self sock ~remote] performs an active open and blocks
   until established or failed. *)
let tcp_connect k ~(self : Proc.t) (sock : Socket.t) ~remote =
  if sock.Socket.kind <> Socket.Stream then
    invalid_arg "Api.tcp_connect: stream sockets only";
  let cfg = Kernel.config k in
  let local_port = Kernel.fresh_port k in
  Proc.compute ((c k).Cost.syscall +. Kernel.seg_out_cost k);
  let conn =
    Tcp.create_active (Kernel.tcp_env_exn k) ~local_ip:(Kernel.ip_address k)
      ~local_port ~remote ~sndq_limit:cfg.Kernel.sock_buf
      ~rcv_buf_limit:cfg.Kernel.sock_buf ()
  in
  sock.Socket.port <- Some local_port;
  sock.Socket.remote <- Some remote;
  sock.Socket.tcp <- Some conn;
  sock.Socket.owner <- Some self;
  Hashtbl.replace k.Kernel.conn_sock conn.Tcp.id sock;
  Kernel.register_conn k conn ~owner:(Some self);
  let rec wait () =
    match Tcp.state conn with
    | Tcp.Established -> `Ok
    | Tcp.Closed -> `Refused
    | Tcp.Syn_sent | Tcp.Syn_received | Tcp.Listen | Tcp.Fin_wait_1
    | Tcp.Fin_wait_2 | Tcp.Close_wait | Tcp.Last_ack | Tcp.Closing
    | Tcp.Time_wait ->
        Proc.block sock.Socket.send_wait;
        wait ()
  in
  wait ()

(* [tcp_send k ~self sock payload] queues the whole payload, blocking as the
   send buffer fills.  Returns [`Closed] if the connection dies first. *)
let tcp_send k ~(self : Proc.t) (sock : Socket.t) payload =
  ignore self;
  let conn = conn_exn sock in
  Proc.compute (c k).Cost.syscall;
  let rec push payload =
    let before = conn.Tcp.segs_sent in
    match Tcp.send conn payload with
    | `Sent n ->
        let emitted = conn.Tcp.segs_sent - before in
        Proc.compute
          (((c k).Cost.copy_per_byte *. float_of_int n)
           +. (float_of_int emitted *. Kernel.seg_out_cost k));
        let len = Payload.length payload in
        if n < len then push (Payload.sub payload n (len - n)) else `Ok
    | `Full ->
        Proc.block sock.Socket.send_wait;
        push payload
    | `Closed -> `Closed
  in
  push payload

(* [tcp_recv k ~self sock ~max] blocks for data; [`Eof] at end of stream. *)
let tcp_recv k ~(self : Proc.t) (sock : Socket.t) ~max =
  ignore self;
  let conn = conn_exn sock in
  Proc.compute (c k).Cost.syscall;
  let rec loop () =
    let before = conn.Tcp.segs_sent in
    match Tcp.recv conn ~max with
    | `Data payload ->
        let emitted = conn.Tcp.segs_sent - before in
        Proc.compute
          ((c k).Cost.sockq
           +. ((c k).Cost.copy_per_byte
               *. float_of_int (Payload.length payload))
           +. (float_of_int emitted *. Kernel.seg_out_cost k));
        `Data payload
    | `Eof -> `Eof
    | `Wait ->
        Proc.block sock.Socket.recv_wait;
        loop ()
  in
  loop ()

(* Hand a connected socket to another process (e.g. an HTTP server child
   after fork): future APP work is charged to the new owner. *)
let set_owner k (sock : Socket.t) ~(owner : Proc.t) =
  sock.Socket.owner <- Some owner;
  match sock.Socket.tcp with
  | Some conn -> Hashtbl.replace k.Kernel.conn_owner conn.Tcp.id owner
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Close                                                                *)
(* ------------------------------------------------------------------ *)

let close k ~(self : Proc.t) (sock : Socket.t) =
  ignore self;
  if not sock.Socket.closed then begin
    Proc.compute (c k).Cost.syscall;
    sock.Socket.closed <- true;
    (match sock.Socket.kind with
     | Socket.Dgram ->
         (match sock.Socket.port with
          | Some port ->
              Hashtbl.remove k.Kernel.udp_ports port;
              if Kernel.lrp_mode k then begin
                (match sock.Socket.chan with
                 | Some ch ->
                     Chantab.remove_udp (Kernel.chantab k) ~port;
                     Hashtbl.remove k.Kernel.chan_sock (Channel.id ch);
                     Kernel.drop_channel k (Channel.id ch);
                     k.Kernel.udp_channels <-
                       List.filter
                         (fun c -> Channel.id c <> Channel.id ch)
                         k.Kernel.udp_channels
                 | None -> ())
              end
          | None -> ())
     | Socket.Stream ->
         (match sock.Socket.tcp with
          | Some conn ->
              if Tcp.state conn = Tcp.Listen then begin
                (match sock.Socket.port with
                 | Some port ->
                     Hashtbl.remove k.Kernel.tcp_listeners port;
                     if Kernel.lrp_mode k then begin
                       Chantab.remove_tcp_listen (Kernel.chantab k) ~port;
                       match Hashtbl.find_opt k.Kernel.conn_chan conn.Tcp.id with
                       | Some ch ->
                           Hashtbl.remove k.Kernel.chan_conn (Channel.id ch);
                           Hashtbl.remove k.Kernel.conn_chan conn.Tcp.id;
                           Kernel.drop_channel k (Channel.id ch)
                       | None -> ()
                     end
                 | None -> ());
                Tcp.close conn
              end
              else begin
                let before = conn.Tcp.segs_sent in
                Tcp.close conn;
                let emitted = conn.Tcp.segs_sent - before in
                if emitted > 0 then
                  Proc.compute
                    (float_of_int emitted *. Kernel.seg_out_cost k)
              end
          | None -> ()));
    Kernel.wake_all k sock.Socket.recv_wait;
    Kernel.wake_all k sock.Socket.send_wait;
    Kernel.wake_all k sock.Socket.accept_wait
  end
