(** 4.3BSD-style decay-usage process scheduler.

    This reimplements the scheduling policy the paper's results depend on:

    - each clock tick charges one unit of [p_cpu] to the thread that is
      current (or to the thread it accounts to, see {!set_account}),
    - the user priority is recomputed as
      [PUSER + p_cpu/4 + 2*nice], clamped to [\[PUSER, 127\]]
      (lower numbers mean better priority),
    - once per second every thread's [p_cpu] decays by
      [2*load / (2*load + 1)],
    - threads sleeping longer than a second have their [p_cpu] decayed for
      the time they slept when they wake, which is why interactive threads
      get good priority,
    - a 100 ms quantum round-robins threads of equal priority.

    BSD's mis-accounting of network processing (paper section 2.2) arises
    when the simulator charges ticks spent in interrupt context to whatever
    thread happened to be current; LRP's fair accounting arises when
    protocol-processing time is charged to the receiving thread, possibly
    via the {!set_account} redirection used by the APP thread. *)

open Lrp_engine

type t

type thread

(** {1 Tunables (4.3BSD values)} *)

val tick_interval : float
(** Interval between scheduler ticks, microseconds (10 ms). *)

val decay_interval : float
(** Interval between usage decays, microseconds (1 s). *)

val quantum_ticks : int
(** Ticks per round-robin quantum (10 ticks = 100 ms). *)

val priority_user : int
(** PUSER, the best user priority (50). *)

(** {1 Construction} *)

val create : unit -> t

val add_thread : t -> ?nice:int -> name:string -> unit -> thread
(** New thread in the sleeping state.  [nice] defaults to 0 and is clamped
    to [-20, 20]. *)

val set_account : thread -> thread option -> unit
(** [set_account th (Some owner)] makes ticks charged to [th] accrue to
    [owner]'s [p_cpu] instead, and makes [th]'s priority mirror [owner]'s.
    Used by LRP's asynchronous-protocol-processing thread, which is
    "scheduled at its process's priority and its CPU usage is charged to its
    process" (paper section 3.4). *)

(** {1 Inspection} *)

val name : thread -> string
val tid : thread -> int
val nice : thread -> int
val priority : thread -> int
val p_cpu : thread -> float
val is_runnable : thread -> bool
val is_sleeping : thread -> bool
val ticks_charged : thread -> int
(** Total ticks charged to this thread since creation (accounting view:
    includes redirected charges from other threads). *)

val runnable_count : t -> int

(** {1 State transitions (driven by the CPU model)} *)

val make_runnable : t -> now:Time.t -> thread -> unit
(** Move a sleeping thread to the run queue, applying the wakeup [p_cpu]
    decay for the time it slept. *)

val sleep : t -> now:Time.t -> thread -> unit
(** Remove the thread from the run queue and record the sleep start. *)

val exit_thread : t -> thread -> unit

val pick : t -> thread option
(** Best-priority runnable thread (FIFO among equals).  Does not change any
    state. *)

val should_preempt : t -> current:thread -> bool
(** True when some runnable thread has strictly better priority than
    [current]. *)

val requeue : t -> thread -> unit
(** Move a runnable thread behind its equal-priority peers (end of
    quantum). *)

(** {1 Clock hooks (driven by the simulator's periodic events)} *)

val charge_tick : t -> thread -> unit
(** One scheduler tick elapsed with [thread] current: charge its [p_cpu]
    (or its accounting target's), recompute priority, advance its quantum.
    Use {!quantum_expired} afterwards to decide on a round-robin. *)

val quantum_expired : thread -> bool

val reset_quantum : thread -> unit

val decay : t -> unit
(** Once-per-second usage decay and priority recomputation for all threads.
    The load average is smoothed internally from the runnable count. *)

val load_average : t -> float

val register_metrics : t -> Lrp_trace.Metrics.t -> prefix:string -> unit
(** Expose load average, runnable count and thread count as pull gauges
    under [prefix]. *)

val pp_thread : Format.formatter -> thread -> unit
